package galsim

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	r, err := Run(Options{Benchmark: "compress", Instructions: 15_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Machine != Base {
		t.Errorf("default machine = %q", r.Machine)
	}
	if r.Committed != 15_000 {
		t.Errorf("committed = %d", r.Committed)
	}
	if r.SimSeconds <= 0 || r.IPC <= 0 || r.MIPS <= 0 {
		t.Error("performance metrics not populated")
	}
	if r.EnergyJoules <= 0 || r.PowerWatts <= 0 {
		t.Error("energy metrics not populated")
	}
	if len(r.EnergyBreakdown) < 15 {
		t.Errorf("breakdown has %d blocks", len(r.EnergyBreakdown))
	}
}

func TestRunValidation(t *testing.T) {
	cases := []Options{
		{},                                   // missing benchmark
		{Benchmark: "nope"},                  // unknown benchmark
		{Benchmark: "gcc", Machine: "weird"}, // unknown machine
		{Benchmark: "gcc", Machine: GALS, Slowdowns: map[string]float64{"warp": 2}},
		{Benchmark: "gcc", Machine: GALS, Slowdowns: map[string]float64{"fp": 0.5}},
		{Benchmark: "gcc", Machine: Base, Slowdowns: map[string]float64{"fp": 2}},
	}
	for i, o := range cases {
		if _, err := Run(o); err == nil {
			t.Errorf("case %d: no error for %+v", i, o)
		}
	}
}

func TestGALSSlower(t *testing.T) {
	base, err := Run(Options{Benchmark: "li", Machine: Base, Instructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	gals, err := Run(Options{Benchmark: "li", Machine: GALS, Instructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	rel := base.RelativePerformance(gals)
	if rel >= 1 || rel < 0.75 {
		t.Errorf("relative performance = %.3f, want (0.75, 1)", rel)
	}
	if gals.EnergyBreakdown["global-clock"] != 0 {
		t.Error("GALS burned global clock energy")
	}
	if base.EnergyBreakdown["global-clock"] <= 0 {
		t.Error("base burned no global clock energy")
	}
}

func TestUniformBaseSlowdown(t *testing.T) {
	fast, _ := Run(Options{Benchmark: "compress", Instructions: 10_000})
	slow, err := Run(Options{Benchmark: "compress", Instructions: 10_000,
		Slowdowns: map[string]float64{"all": 2}})
	if err != nil {
		t.Fatal(err)
	}
	ratio := slow.SimSeconds / fast.SimSeconds
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("uniform 2x slowdown changed runtime by %.2fx", ratio)
	}
	if slow.EnergyJoules >= fast.EnergyJoules {
		t.Error("uniform slowdown with voltage scaling did not save energy")
	}
}

func TestVoltageScalingToggle(t *testing.T) {
	o := Options{Benchmark: "perl", Machine: GALS, Instructions: 10_000,
		Slowdowns: map[string]float64{"fp": 3}}
	dvs, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o.DisableVoltageScaling = true
	freqOnly, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if dvs.EnergyJoules >= freqOnly.EnergyJoules {
		t.Error("voltage scaling did not reduce energy")
	}
	if dvs.SimSeconds != freqOnly.SimSeconds {
		t.Error("voltage scaling changed timing")
	}
}

func TestBenchmarksAndDescribe(t *testing.T) {
	names := Benchmarks()
	if len(names) < 12 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	for _, n := range names {
		info, err := Describe(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Name != n || info.Suite == "" || info.Description == "" {
			t.Errorf("incomplete info for %s: %+v", n, info)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Error("Describe accepted unknown benchmark")
	}
	fp, _ := Describe("fpppp")
	if !strings.Contains(fp.Description, "fpppp") || fp.BranchFrac > 0.03 {
		t.Errorf("fpppp info wrong: %+v", fp)
	}
}

func TestMemoryOrderingOptions(t *testing.T) {
	for _, mode := range []string{"perfect", "conservative", "addr-match"} {
		r, err := Run(Options{Benchmark: "vortex", Instructions: 8_000, MemoryOrdering: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.Committed != 8_000 {
			t.Errorf("%s committed %d", mode, r.Committed)
		}
	}
	if _, err := Run(Options{Benchmark: "gcc", MemoryOrdering: "psychic"}); err == nil {
		t.Error("unknown memory ordering accepted")
	}
}

func TestLinkStyleOptions(t *testing.T) {
	fifo, err := Run(Options{Benchmark: "compress", Machine: GALS, Instructions: 10_000, LinkStyle: "fifo"})
	if err != nil {
		t.Fatal(err)
	}
	stretch, err := Run(Options{Benchmark: "compress", Machine: GALS, Instructions: 10_000, LinkStyle: "stretch"})
	if err != nil {
		t.Fatal(err)
	}
	if stretch.SimSeconds <= fifo.SimSeconds {
		t.Errorf("stretch (%.2gs) not slower than fifo (%.2gs)", stretch.SimSeconds, fifo.SimSeconds)
	}
	if _, err := Run(Options{Benchmark: "gcc", LinkStyle: "telepathy"}); err == nil {
		t.Error("unknown link style accepted")
	}
}

func TestOnCommitTracing(t *testing.T) {
	var events []CommitEvent
	r, err := Run(Options{
		Benchmark:    "li",
		Instructions: 2_000,
		OnCommit:     func(e CommitEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(events)) != r.Committed {
		t.Fatalf("hook saw %d events, committed %d", len(events), r.Committed)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatal("commit events out of program order")
		}
	}
	for _, e := range events[:10] {
		if e.CommitTimeNs < e.FetchTimeNs || e.SlipNs <= 0 || e.Class == "" {
			t.Fatalf("malformed event %+v", e)
		}
	}
}

func TestDomainNames(t *testing.T) {
	names := DomainNames()
	if len(names) != 5 || names[0] != "fetch" || names[4] != "mem" {
		t.Errorf("DomainNames = %v", names)
	}
}

func TestOptionsValidate(t *testing.T) {
	good := Options{Benchmark: "gcc", Machine: GALS, Slowdowns: map[string]float64{"fp": 2}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	bad := Options{Benchmark: "gcc", Machine: GALS, Slowdowns: map[string]float64{"warp": 2}}
	err := bad.Validate()
	if err == nil {
		t.Fatal("unknown domain accepted")
	}
	// The message must list the valid domains so callers can self-correct.
	for _, d := range DomainNames() {
		if !strings.Contains(err.Error(), d) {
			t.Errorf("error %q does not list domain %q", err, d)
		}
	}
}

func TestRunManyMatchesRun(t *testing.T) {
	opts := []Options{
		{Benchmark: "gcc", Instructions: 8_000},
		{Benchmark: "gcc", Machine: GALS, Instructions: 8_000},
		{Benchmark: "swim", Machine: GALS, Instructions: 8_000, Slowdowns: map[string]float64{"fp": 2}},
		{Benchmark: "gcc", Instructions: 8_000}, // duplicate of [0]: served from cache
	}
	many, err := RunMany(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != len(opts) {
		t.Fatalf("got %d results for %d option sets", len(many), len(opts))
	}
	for i, o := range opts {
		serial, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(many[i], serial) {
			t.Errorf("results[%d] diverges from serial Run:\nparallel: %+v\nserial:   %+v", i, many[i], serial)
		}
	}
	if many[0].Machine != Base || many[1].Machine != GALS {
		t.Errorf("machines = %v, %v", many[0].Machine, many[1].Machine)
	}
}

// TestRunManyOnLocalBackend: the explicit-backend entry point with the
// shared local backend is exactly RunMany.
func TestRunManyOnLocalBackend(t *testing.T) {
	opts := []Options{
		{Benchmark: "gcc", Instructions: 6_000},
		{Benchmark: "gcc", Machine: GALS, Instructions: 6_000},
	}
	viaBackend, err := RunManyOn(context.Background(), LocalBackend(), opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunMany(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaBackend, direct) {
		t.Error("RunManyOn(LocalBackend()) diverges from RunMany")
	}
}

func TestRunManyValidation(t *testing.T) {
	_, err := RunMany(context.Background(), []Options{
		{Benchmark: "gcc", Instructions: 5_000},
		{Benchmark: "nope"},
	})
	if err == nil || !strings.Contains(err.Error(), "options[1]") {
		t.Errorf("bad option set not attributed to its index: %v", err)
	}
	_, err = RunMany(context.Background(), []Options{
		{Benchmark: "gcc", OnCommit: func(CommitEvent) {}},
	})
	if err == nil || !strings.Contains(err.Error(), "OnCommit") {
		t.Errorf("OnCommit not rejected: %v", err)
	}
	if res, err := RunMany(context.Background(), nil); err != nil || res != nil {
		t.Errorf("empty input: %v, %v", res, err)
	}
}

func TestRunManyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := []Options{{Benchmark: "applu", Instructions: 50_000, WorkloadSeed: 12345}}
	if _, err := RunMany(ctx, opts); err == nil {
		t.Error("cancelled context produced results")
	}
}
