package galsim_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"galsim"
)

// TestRunWithSampling: the public sampling surface — Options.SampleInterval
// produces a Result.Samples series aligned to interval boundaries, and the
// CSV export is rectangular with the documented header.
func TestRunWithSampling(t *testing.T) {
	r, err := galsim.Run(galsim.Options{
		Benchmark:      "gcc",
		Machine:        galsim.GALS,
		Instructions:   8_000,
		SampleInterval: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) == 0 {
		t.Fatal("sampled run returned no samples")
	}
	for i, s := range r.Samples {
		if s.Cycle%1_000 != 0 {
			t.Errorf("sample %d at cycle %d, not on an interval boundary", i, s.Cycle)
		}
		if i > 0 && s.Committed < r.Samples[i-1].Committed {
			t.Errorf("sample %d committed count regressed", i)
		}
	}

	var csv strings.Builder
	if err := galsim.WriteSamplesCSV(&csv, r.Samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(r.Samples)+1 {
		t.Fatalf("CSV has %d lines for %d samples", len(lines), len(r.Samples))
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "cycle" || header[len(header)-1] != "stall_loads_blocked" {
		t.Errorf("CSV header = %v", header)
	}
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Errorf("CSV row %d has %d fields, header has %d", i, got, len(header))
		}
	}

	// Off by default: no samples, identical results to a sampled run.
	plain, err := galsim.Run(galsim.Options{
		Benchmark: "gcc", Machine: galsim.GALS, Instructions: 8_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Samples != nil {
		t.Error("unsampled run carries samples")
	}
	if plain.IPC != r.IPC || plain.EnergyJoules != r.EnergyJoules {
		t.Error("sampling changed simulation results")
	}

	// Validation floor surfaces through the public API.
	if err := (galsim.Options{Benchmark: "gcc", SampleInterval: 7}).Validate(); err == nil {
		t.Error("SampleInterval=7 validated")
	}
}

// TestRunManyProgress: the progress callback covers the whole batch and
// reports the duplicate option set as a cache hit.
func TestRunManyProgress(t *testing.T) {
	opts := []galsim.Options{
		{Benchmark: "gcc", Instructions: 2_000},
		{Benchmark: "swim", Instructions: 2_000},
		{Benchmark: "gcc", Instructions: 2_000}, // dup of [0]
	}
	var (
		mu   sync.Mutex
		last galsim.Progress
		n    int
	)
	results, err := galsim.RunManyProgress(context.Background(), opts, func(p galsim.Progress) {
		mu.Lock()
		last = p
		n++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(opts) {
		t.Fatalf("got %d results", len(results))
	}
	if n != len(opts) {
		t.Errorf("got %d progress snapshots, want %d", n, len(opts))
	}
	if last.Completed != len(opts) || last.Total != len(opts) || last.Failed != 0 {
		t.Errorf("terminal progress = %+v", last)
	}
	if last.CacheHits == 0 {
		t.Errorf("duplicate options produced no cache hit: %+v", last)
	}
}
