// Command galsim runs one benchmark on one machine configuration and prints
// its statistics: the interactive front door to the simulator.
//
// Examples:
//
//	galsim -bench gcc -machine gals
//	galsim -bench perl -machine gals -slow fp=3,fetch=1.1 -n 200000
//	galsim -profile phases.json -machine gals -dyn-dvfs
//	galsim -bench gcc -record gcc.trace
//	galsim -replay gcc.trace -machine gals
//	galsim -bench gcc -machine gals -dyn-dvfs -sample 2000 -sample-out gcc.csv
//	galsim -bench gcc -machine gals -dyn-dvfs -timeline gcc-trace.json
//	galsim -bench gcc -machine gals -timeline last.json -timeline-flight 65536 -timeline-stall 10000
//	galsim -list
//	galsim -config
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"galsim"
)

func main() {
	var (
		bench       = flag.String("bench", "compress", "benchmark name (-list to enumerate)")
		profile     = flag.String("profile", "", "JSON file with a custom (possibly phased) workload profile, instead of -bench")
		replay      = flag.String("replay", "", "trace file to replay as the workload, instead of -bench")
		record      = flag.String("record", "", "record the run's instruction stream to this trace file")
		machine     = flag.String("machine", "base", `machine: "base", "gals", or a MachineSpec JSON file defining a custom clock-domain topology`)
		n           = flag.Uint64("n", 0, "instructions to commit (0 = default: 100000, or the recorded length for -replay)")
		slow        = flag.String("slow", "", `per-domain clock slowdowns, e.g. "fp=3,fetch=1.1" (gals) or "all=1.5" (base)`)
		noDVS       = flag.Bool("no-dvs", false, "disable voltage scaling of slowed domains")
		seed        = flag.Int64("seed", 42, "workload seed")
		phaseSeed   = flag.Int64("phase-seed", 1, "GALS clock phase seed")
		trace       = flag.Uint64("trace", 0, "print the first N committed instructions")
		warmup      = flag.Uint64("warmup", 0, "capture a full-state snapshot after N committed instructions (requires -snapshot-out)")
		snapOut     = flag.String("snapshot-out", "", "write the -warmup snapshot to this file")
		snapIn      = flag.String("snapshot-in", "", "resume the run from this snapshot file (same configuration; results identical to a cold run)")
		memOrder    = flag.String("mem-order", "perfect", "memory disambiguation: perfect, conservative, addr-match")
		linkStyle   = flag.String("links", "fifo", "GALS link style: fifo or stretch")
		dynDVFS     = flag.Bool("dyn-dvfs", false, "enable the online per-domain DVFS controller (gals only)")
		sample      = flag.Uint64("sample", 0, "sample per-domain occupancy/IPC/DVFS state every N decode cycles (0 = off, min 100)")
		sampleOut   = flag.String("sample-out", "", "write the sample series to this file (default stdout after the run summary)")
		sampleFmt   = flag.String("sample-format", "csv", "sample encoding: csv or json")
		timelineOut = flag.String("timeline", "",
			"write a Perfetto-loadable microarchitecture timeline (Chrome trace-event JSON) to this file")
		tlFlight = flag.Int("timeline-flight", 0,
			"flight-recorder mode: keep only the last N timeline events (0 = record from the start)")
		tlStall = flag.Uint64("timeline-stall", 0,
			"mark the timeline when the pipeline makes no progress for N decode cycles (0 = off)")
		tlDetail = flag.Bool("timeline-detail", false,
			"record per-item FIFO push/pop instants in the timeline (larger files, finer causality)")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		config  = flag.Bool("config", false, "print the machine configuration (paper Tables 2-3) and exit")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	)
	flag.Parse()

	if *list {
		for _, name := range galsim.Benchmarks() {
			info, _ := galsim.Describe(name)
			fmt.Println(info.Description)
		}
		return
	}
	if *config {
		printConfig()
		return
	}

	// -bench has a non-empty default that yields to -profile/-replay; an
	// *explicitly* passed -bench alongside either is a conflict the user
	// should hear about, exactly as the library API would report it.
	// -machine likewise defaults to "base", but the default must reach the
	// library as "no machine chosen": replaying a trace recorded on another
	// topology errors loudly unless the machine is an explicit choice.
	benchSet, machineSet := false, false
	flag.Visit(func(f *flag.Flag) {
		benchSet = benchSet || f.Name == "bench"
		machineSet = machineSet || f.Name == "machine"
	})
	if !machineSet {
		*machine = ""
	}
	if benchSet && (*profile != "" || *replay != "") {
		fmt.Fprintln(os.Stderr, "galsim: -bench, -profile and -replay are mutually exclusive; pass exactly one")
		os.Exit(2)
	}

	slowdowns, err := galsim.ParseSlowdowns(*slow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim:", err)
		os.Exit(2)
	}

	machineSpec, machineName, err := resolveMachineFlag(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim:", err)
		os.Exit(2)
	}

	opts := galsim.Options{
		Benchmark:             *bench,
		Trace:                 *replay,
		RecordTrace:           *record,
		Machine:               galsim.Machine(machineName),
		MachineSpec:           machineSpec,
		Instructions:          *n,
		Slowdowns:             slowdowns,
		DisableVoltageScaling: *noDVS,
		WorkloadSeed:          *seed,
		PhaseSeed:             *phaseSeed,
		MemoryOrdering:        *memOrder,
		LinkStyle:             *linkStyle,
		DynamicDVFS:           *dynDVFS,
		SampleInterval:        *sample,
		Warmup:                *warmup,
		SnapshotOut:           *snapOut,
		SnapshotIn:            *snapIn,
	}
	if *sampleFmt != "csv" && *sampleFmt != "json" {
		fmt.Fprintf(os.Stderr, "galsim: -sample-format %q: want csv or json\n", *sampleFmt)
		os.Exit(2)
	}
	if (*tlFlight > 0 || *tlStall > 0 || *tlDetail) && *timelineOut == "" {
		fmt.Fprintln(os.Stderr, "galsim: -timeline-flight/-timeline-stall/-timeline-detail require -timeline FILE")
		os.Exit(2)
	}
	if *timelineOut != "" {
		opts.Timeline = &galsim.TimelineOptions{
			MaxEvents:      *tlFlight,
			FlightRecorder: *tlFlight > 0,
			StallThreshold: *tlStall,
			Detail:         *tlDetail,
		}
	}
	if *profile != "" || *replay != "" {
		opts.Benchmark = "" // -bench's default yields to an explicit source
	}
	if *profile != "" {
		data, err := os.ReadFile(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(2)
		}
		spec, err := galsim.ParseWorkloadProfile(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(2)
		}
		opts.Profile = &spec
	}
	if *trace > 0 {
		remaining := *trace
		fmt.Printf("%-8s %-10s %-8s %10s %10s %8s\n", "seq", "pc", "class", "fetch(ns)", "commit(ns)", "slip")
		opts.OnCommit = func(e galsim.CommitEvent) {
			if remaining == 0 {
				return
			}
			remaining--
			fmt.Printf("%-8d %#-10x %-8s %10.1f %10.1f %8.1f\n",
				e.Seq, e.PC, e.Class, e.FetchTimeNs, e.CommitTimeNs, e.SlipNs)
		}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	res, err := galsim.Run(opts)
	if err != nil {
		// os.Exit skips defers: flush the CPU profile first so a failing run
		// still leaves a readable profile (no-op when profiling is off).
		pprof.StopCPUProfile()
		// A flight recorder's whole point is the post-mortem: dump whatever
		// the ring holds so the failure window can be inspected in Perfetto.
		if res.Timeline != nil && res.Timeline.Len() > 0 {
			if werr := writeTimeline(res.Timeline, *timelineOut); werr == nil {
				fmt.Fprintf(os.Stderr, "galsim: wrote post-mortem timeline (%d events) to %s\n",
					res.Timeline.Len(), *timelineOut)
			}
		}
		fmt.Fprintln(os.Stderr, "galsim:", err)
		os.Exit(1)
	}
	printResult(res)
	if res.Timeline != nil {
		if err := writeTimeline(res.Timeline, *timelineOut); err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(1)
		}
		fmt.Printf("  timeline    %d events -> %s (open at https://ui.perfetto.dev)\n",
			res.Timeline.Len(), *timelineOut)
	}
	if *sample > 0 {
		if err := writeSamples(res.Samples, *sampleOut, *sampleFmt); err != nil {
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(1)
		}
	}
	if *memProf != "" {
		// os.Exit skips defers: flush the CPU profile before any error exit
		// so -cpuprofile output stays readable (no-op when profiling is off).
		f, err := os.Create(*memProf)
		if err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(2)
		}
		runtime.GC() // a clean picture of what the run left behind
		if err := pprof.WriteHeapProfile(f); err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintln(os.Stderr, "galsim:", err)
			os.Exit(2)
		}
		f.Close()
	}
}

// writeTimeline saves the recorder's events as Chrome trace-event JSON.
func writeTimeline(tl *galsim.Timeline, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSamples emits the interval series: CSV via the library's shared
// column layout, or a JSON array. An empty path writes to stdout, after the
// run summary.
func writeSamples(samples []galsim.Sample, path, format string) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(samples)
	}
	return galsim.WriteSamplesCSV(w, samples)
}

// resolveMachineFlag interprets -machine: a built-in machine name stays a
// name; anything else is read as a MachineSpec JSON file.
func resolveMachineFlag(v string) (*galsim.MachineSpec, string, error) {
	for _, name := range append(galsim.Machines(), "") {
		if v == name {
			return nil, v, nil
		}
	}
	data, err := os.ReadFile(v)
	if err != nil {
		return nil, "", fmt.Errorf("-machine %q is neither a built-in machine (%s) nor a readable spec file: %v",
			v, strings.Join(galsim.Machines(), ", "), err)
	}
	spec, err := galsim.ParseMachineSpec(data)
	if err != nil {
		return nil, "", fmt.Errorf("-machine %s: %v", v, err)
	}
	return &spec, "", nil
}

func printResult(r galsim.Result) {
	fmt.Printf("%s on %s machine: %d instructions\n", r.Benchmark, r.Machine, r.Committed)
	fmt.Printf("  time        %.3f us   IPC %.2f   %.0f MIPS\n", r.SimSeconds*1e6, r.IPC, r.MIPS)
	fmt.Printf("  slip        %.2f ns   (%.1f%% in FIFOs)\n", r.AvgSlipNs, 100*r.FIFOSlipShare)
	fmt.Printf("  speculation %.1f%% wrong-path fetched, %.1f%% branch mispredict rate\n",
		100*r.MisspeculationFrac, 100*r.BranchMispredictRate)
	fmt.Printf("  energy      %.3f mJ   power %.2f W\n", r.EnergyJoules*1e3, r.PowerWatts)
	fmt.Printf("  caches      L1I %.1f%%  L1D %.1f%%  L2 %.1f%%\n",
		100*r.L1IHitRate, 100*r.L1DHitRate, 100*r.L2HitRate)
	fmt.Printf("  occupancy   intRAT %.1f  fpRAT %.1f  ROB %.1f\n",
		r.IntRATOccupancy, r.FPRATOccupancy, r.ROBOccupancy)
	if r.Retunes > 0 {
		fmt.Printf("  dvfs        %d retunes; final slowdowns int %.2f, fp %.2f, mem %.2f\n",
			r.Retunes, r.FinalSlowdowns["int"], r.FinalSlowdowns["fp"], r.FinalSlowdowns["mem"])
	}
	fmt.Println("  energy breakdown (mJ):")
	type kv struct {
		name string
		pj   float64
	}
	var rows []kv
	for name, pj := range r.EnergyBreakdown {
		rows = append(rows, kv{name, pj})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pj != rows[j].pj {
			return rows[i].pj > rows[j].pj
		}
		return rows[i].name < rows[j].name // deterministic order for equal-energy rows
	})
	for _, row := range rows {
		if row.pj == 0 {
			continue
		}
		fmt.Printf("    %-14s %.4f\n", row.name, row.pj*1e-9)
	}
}

func printConfig() {
	fmt.Print(`Machine configuration (paper Tables 2 and 3)

Pipeline stages (Table 2)           GALS clock domains
  1  Fetch from I-cache               1
  2  Decode                           2
  3  Register rename, regfile read    2
  4  Dispatch into issue queue        2, 3/4/5
  5  Issue to functional unit         3/4/5
  6  Execute                          3/4/5
  7  Wakeup, writeback                3/4/5
  8  Regfile write, commit            3/4/5, 2

Microarchitecture (Table 3)
  Fetch and decode rate   4 inst/cycle
  Integer issue queue     20 entries, 4 ALUs
  FP issue queue          16 entries, 4 FP units
  Memory issue queue      16 entries, 2 ports
  Rename registers        72 integer + 72 FP (beyond 32+32 architectural)
  L1 data cache           16KB 4-way, 1-cycle latency
  L1 instruction cache    16KB direct-mapped, 1-cycle latency
  L2 unified cache        256KB 4-way, 6-cycle latency
  Nominal clock           1 GHz at 1.65 V (alpha = 1.6, Vt = 0.35 V)
  Mixed-clock FIFOs       16 entries, two-flop flag synchronizers
`)
}
