// Command experiments regenerates the paper's evaluation artifacts — every
// table and figure of §5 plus Table 1 — and prints them as text tables.
//
// Examples:
//
//	experiments                # everything
//	experiments -fig 5         # just Figure 5
//	experiments -fig 12 -n 200000
//	experiments -fig phase
package main

import (
	"flag"
	"fmt"
	"os"

	"galsim/internal/experiments"
	"galsim/internal/report"
)

func main() {
	var (
		fig  = flag.String("fig", "all", `artifact: "all", "table1", "5".."13", "phase", "ablations", or "dvfs"`)
		n    = flag.Uint64("n", 60_000, "instructions per run")
		seed = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Instructions = *n
	cfg.WorkloadSeed = *seed

	needCorpus := map[string]bool{"all": true, "5": true, "6": true, "7": true, "8": true, "9": true}
	var corpus *experiments.Corpus
	if needCorpus[*fig] {
		fmt.Fprintf(os.Stderr, "running corpus: %d benchmarks x 2 machines x %d instructions...\n",
			len(benchCount(cfg)), cfg.Instructions)
		corpus = experiments.RunCorpus(cfg)
	}

	emit := func(t *report.Table) { t.Render(os.Stdout) }

	run := func(id string) {
		switch id {
		case "table1":
			emit(experiments.Table1Skew())
		case "5":
			emit(experiments.Fig5Performance(corpus))
		case "6":
			emit(experiments.Fig6Slip(corpus))
		case "7":
			emit(experiments.Fig7RelativeSlip(corpus))
		case "8":
			emit(experiments.Fig8Speculation(corpus))
		case "9":
			emit(experiments.Fig9EnergyPower(corpus))
		case "10":
			emit(experiments.Fig10Breakdown(cfg, "compress"))
		case "11":
			emit(experiments.Fig11SelectiveSlowdown(cfg))
		case "12":
			emit(experiments.Fig12IjpegSweep(cfg))
		case "13":
			emit(experiments.Fig13GccSlowdown(cfg))
		case "phase":
			emit(experiments.PhaseSensitivity(cfg, "li", 8))
		case "dvfs":
			emit(experiments.DynamicDVFSDemo(cfg))
		case "ablations":
			emit(experiments.AblationLinkStyle(cfg, "gcc"))
			emit(experiments.AblationSyncEdges(cfg, "compress"))
			emit(experiments.AblationFIFOCapacity(cfg, "swim"))
			emit(experiments.AblationClockPhases(cfg, "li"))
			emit(experiments.AblationPredictor(cfg, "gcc"))
			emit(experiments.AblationDisambiguation(cfg, "vortex"))
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q\n", id)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, id := range []string{"table1", "5", "6", "7", "8", "9", "10", "11", "12", "13", "phase", "ablations", "dvfs"} {
			run(id)
		}
		return
	}
	run(*fig)
}

func benchCount(cfg experiments.Config) []string {
	if len(cfg.Benchmarks) > 0 {
		return cfg.Benchmarks
	}
	// mirrors experiments.Config.benchmarks, which is unexported
	return allBenchmarks
}

var allBenchmarks = []string{
	"adpcm", "applu", "compress", "epic", "fpppp", "g721", "gcc", "go",
	"ijpeg", "li", "m88ksim", "mpeg2", "perl", "swim", "vortex",
}
