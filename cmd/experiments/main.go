// Command experiments regenerates the paper's evaluation artifacts — every
// table and figure of §5 plus Table 1 — and prints them as text tables.
//
// Examples:
//
//	experiments                # everything
//	experiments -fig 5         # just Figure 5
//	experiments -fig 12 -n 200000
//	experiments -fig phase
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"galsim/internal/experiments"
)

func main() {
	var (
		fig  = flag.String("fig", "all", fmt.Sprintf(`artifact: "all" or one of %v`, experiments.Artifacts()))
		n    = flag.Uint64("n", 60_000, "instructions per run")
		seed = flag.Int64("seed", 42, "workload seed (0 selects the default, 42)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Instructions = *n
	cfg.WorkloadSeed = *seed

	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.Artifacts()
		fmt.Fprintf(os.Stderr, "regenerating %s at %d instructions per run...\n",
			strings.Join(ids, ", "), cfg.Instructions)
	}
	for _, id := range ids {
		tables, err := experiments.Regenerate(cfg, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	}
}
