// Command galsim-fleet runs the distributed campaign coordinator: it
// accepts the same /run and /sweep requests as galsimd but shards the work
// into jobs and dispatches them across a fleet of galsimd workers, merging
// results deterministically (by unit index, never arrival order) so the
// output is byte-identical to a single-process run.
//
// Workers enroll with galsimd's -join flag, or -spawn starts in-process
// workers for a single-machine fleet:
//
//	galsim-fleet -addr :9090 -spawn 3
//	curl -s -X POST localhost:9090/sweep \
//	    -d '{"benchmarks":["gcc","perl"],"instructions":20000,
//	         "slowdown_grid":[{},{"fp":1.5},{"fp":3}],"machines":["gals"]}'
//	curl -s localhost:9090/stats          # aggregated fleet stats
//
// Multi-process on one machine:
//
//	galsim-fleet -addr :9090
//	galsimd -addr :8081 -join http://localhost:9090
//	galsimd -addr :8082 -join http://localhost:9090
//	galsimd -addr :8083 -join http://localhost:9090
//
// Fleet endpoints served alongside the galsimd API:
//
//	POST /join           worker registration
//	POST /jobs/lease     job lease (long-polls while the queue is idle)
//	POST /jobs/complete  streamed per-job completions
//	GET  /stats          fleet-wide cache counters, queue depth, per-worker health
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/cluster"
	"galsim/internal/httpjson"
	"galsim/internal/machine"
	"galsim/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "per-job worker lease; an expired lease re-queues the job on the surviving fleet")
		maxAttempts = flag.Int("max-attempts", 3, "dispatch attempts per job before its campaign fails")
		spawn       = flag.Int("spawn", 0, "in-process workers to start (single-machine fleet; 0 = external workers only)")
		spawnSlots  = flag.Int("spawn-slots", 0, "concurrent jobs per spawned worker (0 = GOMAXPROCS split across spawned workers)")
		maxUnits    = flag.Int("max-sweep-units", 4096, "reject sweeps expanding beyond this many units (0 = unlimited)")
		machineFile = flag.String("machine", "", "MachineSpec JSON file(s) to pre-register, comma-separated; /run and /sweep requests may then reference them by name")
		gracePd     = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		rdTimeout   = flag.Duration("read-timeout", 60*time.Second, "request read timeout (must exceed the lease long-poll)")
		wrTimeout   = flag.Duration("write-timeout", 10*time.Minute, "response write timeout (long sweeps stream slowly)")
		idleTimout  = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
	)
	flag.Parse()

	coord := cluster.NewCoordinator(cluster.Config{
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
	})
	// The local engine serves /experiments and validation; campaign batches
	// go through the coordinator.
	engine := campaign.NewEngine(0)
	svc := service.New(engine)
	svc.MaxSweepUnits = *maxUnits
	svc.Backend = coord

	if *machineFile != "" {
		for _, path := range strings.Split(*machineFile, ",") {
			data, err := os.ReadFile(strings.TrimSpace(path))
			if err != nil {
				log.Fatalf("galsim-fleet: -machine: %v", err)
			}
			spec, err := machine.Parse(data)
			if err != nil {
				log.Fatalf("galsim-fleet: -machine %s: %v", path, err)
			}
			if _, err := svc.RegisterMachine(spec); err != nil {
				log.Fatalf("galsim-fleet: -machine %s: %v", path, err)
			}
			log.Printf("galsim-fleet: registered machine %q (%d domains, digest %.12s)",
				spec.Name, len(spec.Domains), spec.Digest())
		}
	}

	mux := http.NewServeMux()
	coord.Register(mux) // fleet endpoints; its GET /stats shadows the service's per-process one
	mux.Handle("/", svc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("galsim-fleet: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *spawn > 0 {
		self := selfURL(ln.Addr())
		slots := *spawnSlots
		if slots <= 0 {
			slots = max(1, runtime.GOMAXPROCS(0) / *spawn)
		}
		for i := 1; i <= *spawn; i++ {
			wk := &cluster.Worker{
				Coordinator: self,
				ID:          fmt.Sprintf("local-%d", i),
				Engine:      campaign.NewEngine(slots),
				Slots:       slots,
				Logf:        log.Printf,
			}
			go func() {
				if err := wk.Run(ctx); err != nil && ctx.Err() == nil {
					log.Printf("galsim-fleet: worker %s: %v", wk.ID, err)
				}
			}()
		}
		log.Printf("galsim-fleet: spawned %d in-process workers (%d slots each)", *spawn, slots)
	} else {
		log.Printf("galsim-fleet: no local workers; sweeps wait until galsimd workers -join")
	}

	httpSrv := &http.Server{
		Handler:           http.Handler(panicGuard(mux)),
		ReadTimeout:       *rdTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *wrTimeout,
		IdleTimeout:       *idleTimout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("galsim-fleet: coordinating on %s (lease TTL %s, %d attempts/job)", ln.Addr(), *leaseTTL, *maxAttempts)

	select {
	case err := <-errc:
		log.Fatalf("galsim-fleet: %v", err)
	case <-ctx.Done():
	}

	log.Printf("galsim-fleet: shutting down (grace %s)", *gracePd)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePd)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("galsim-fleet: shutdown: %v", err)
	}
	st := coord.Stats()
	log.Printf("galsim-fleet: at exit: %d workers (%d alive), %d jobs done, %d lease expiries, %d job failures",
		st.Workers, st.Alive, st.JobsDone, st.LeaseExpiries, st.JobFailures)
}

// selfURL turns the bound listener address into a URL the spawned local
// workers can dial: wildcard hosts become loopback.
func selfURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// panicGuard mirrors the service handler's recover middleware for the
// fleet endpoints, which are mounted outside the service mux.
func panicGuard(h http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				httpjson.Error(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
		}()
		h.ServeHTTP(w, r)
	}
}
