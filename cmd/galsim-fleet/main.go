// Command galsim-fleet runs the distributed campaign coordinator: it
// accepts the same /run and /sweep requests as galsimd but shards the work
// into jobs and dispatches them across a fleet of galsimd workers, merging
// results deterministically (by unit index, never arrival order) so the
// output is byte-identical to a single-process run.
//
// Workers enroll with galsimd's -join flag, or -spawn starts in-process
// workers for a single-machine fleet:
//
//	galsim-fleet -addr :9090 -spawn 3
//	curl -s -X POST localhost:9090/sweep \
//	    -d '{"benchmarks":["gcc","perl"],"instructions":20000,
//	         "slowdown_grid":[{},{"fp":1.5},{"fp":3}],"machines":["gals"]}'
//	curl -s localhost:9090/stats          # aggregated fleet stats
//	curl -s localhost:9090/metrics        # fleet + service Prometheus page
//
// Multi-process on one machine:
//
//	galsim-fleet -addr :9090
//	galsimd -addr :8081 -join http://localhost:9090
//	galsimd -addr :8082 -join http://localhost:9090
//	galsimd -addr :8083 -join http://localhost:9090
//
// Fleet endpoints served alongside the galsimd API:
//
//	POST /join           worker registration
//	POST /jobs/lease     job lease (long-polls while the queue is idle)
//	POST /jobs/complete  streamed per-job completions
//	GET  /stats          fleet-wide cache counters, queue depth, uptime, per-worker health
//	GET  /metrics        Prometheus text exposition (fleet queue/lease/job
//	                     metrics merged with the service's HTTP metrics)
//
// Every sweep is traced: the coordinator stamps jobs with a W3C traceparent,
// workers ship their execution spans back, and GET /sweeps/{id}/trace (from
// the service API beneath) serves the whole sweep — coordinator, every
// worker, and in-sim stall windows — as one Perfetto-loadable trace.
//
// Logging is structured (log/slog; -log-level, -log-format). Campaign
// submissions are logged with a request ID that every job of the campaign
// carries to its worker, so one sweep's lifecycle is greppable across the
// whole fleet.
//
// Durability and multi-tenancy:
//
//	-journal DIR        write-ahead journal; a crashed/killed coordinator
//	                    resumes unfinished sweeps on restart
//	-tenants FILE       per-tenant API keys, token-bucket rate limits and
//	                    queued-unit quotas on /run, /sweep and the fleet
//	                    endpoints (401/429 with Retry-After)
//	-max-queued-jobs N  bound the global job queue; overflow answers 429
//	-drain-timeout D    spawned workers finish in-flight jobs on shutdown
//	-checkpoint-every N spawned workers post a full-state job checkpoint every
//	                    N committed instructions; a job that loses its worker
//	                    (or, with -journal, its coordinator) resumes from the
//	                    last checkpoint instead of restarting
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"galsim/internal/admission"
	"galsim/internal/campaign"
	"galsim/internal/cluster"
	"galsim/internal/httpjson"
	"galsim/internal/machine"
	"galsim/internal/service"
	"galsim/internal/telemetry"
	"galsim/internal/timeline"
	"galsim/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "per-job worker lease; an expired lease re-queues the job on the surviving fleet")
		maxAttempts = flag.Int("max-attempts", 3, "dispatch attempts per job before its campaign fails")
		spawn       = flag.Int("spawn", 0, "in-process workers to start (single-machine fleet; 0 = external workers only)")
		spawnSlots  = flag.Int("spawn-slots", 0, "concurrent jobs per spawned worker (0 = GOMAXPROCS split across spawned workers)")
		maxUnits    = flag.Int("max-sweep-units", 4096, "reject sweeps expanding beyond this many units (0 = unlimited)")
		machineFile = flag.String("machine", "", "MachineSpec JSON file(s) to pre-register, comma-separated; /run and /sweep requests may then reference them by name")
		gracePd     = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		rdTimeout   = flag.Duration("read-timeout", 60*time.Second, "request read timeout (must exceed the lease long-poll)")
		wrTimeout   = flag.Duration("write-timeout", 10*time.Minute, "response write timeout (long sweeps stream slowly)")
		idleTimout  = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
		logLevel    = flag.String("log-level", "info", "log threshold: debug|info|warn|error")
		logFormat   = flag.String("log-format", "text", "log encoding: text|json")
		enablePprof = flag.Bool("pprof", false,
			"serve Go runtime profiles under /debug/pprof/ (off by default; enable only on trusted networks)")
		tlEvents = flag.Int("timeline-events", 0,
			"flight-recorder ring size for traced jobs on spawned workers (0 = small default, negative = no in-sim spans)")
		maxSpans = flag.Int("max-spans", 0,
			"trace spans retained for GET /sweeps/{id}/trace (0 = default window)")
		journalDir = flag.String("journal", "",
			"directory for the crash-safe campaign journal (WAL); unfinished sweeps resume after a restart (empty = in-memory only)")
		journalSync = flag.Int("journal-sync", 1,
			"fsync the journal every Nth append (1 = every record is durable before it is acknowledged; negative = never, the OS decides)")
		tenantsFile = flag.String("tenants", "",
			"tenant API-key config JSON (see internal/admission); gates /run, /sweep and the fleet endpoints behind per-tenant rate limits and queued-unit quotas")
		maxQueued = flag.Int("max-queued-jobs", 0,
			"reject new campaigns with 429 once this many jobs are queued or in flight (0 = unbounded)")
		drainTime = flag.Duration("drain-timeout", 30*time.Second,
			"on shutdown, spawned workers finish and report their in-flight jobs for at most this long (0 = abandon them to the lease TTL)")
		ckptEvery = flag.Uint64("checkpoint-every", 0,
			"spawned workers post a full-state job checkpoint every N committed instructions; a job that outlives its worker (or this coordinator, with -journal) resumes from the last checkpoint instead of restarting (0 = off)")
	)
	flag.Parse()

	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		flag.Usage()
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	// The local engine serves /experiments and validation; campaign batches
	// go through the coordinator. The coordinator shares the service's
	// metrics registry so the shadowing GET /metrics covers both.
	engine := campaign.NewEngine(0)
	svc := service.New(engine)
	svc.MaxSweepUnits = *maxUnits
	svc.Log = log
	// One span collector shared between the coordinator (which records
	// campaign/lease spans and folds worker spans in) and the service
	// (which serves them on GET /sweeps/{id}/trace).
	spans := timeline.NewSpanCollector(*maxSpans)
	svc.Spans = spans

	// Durability: with -journal, every campaign and completion is written
	// ahead to a WAL so a crashed coordinator resumes unfinished sweeps on
	// restart instead of losing them.
	var journal *cluster.JournalStore
	if *journalDir != "" {
		journal, err = cluster.OpenJournal(*journalDir, wal.Options{SyncEvery: *journalSync})
		if err != nil {
			fatal("-journal unusable", "dir", *journalDir, "error", err)
		}
		defer journal.Close() //nolint:errcheck // best-effort on exit paths
	}

	// Multi-tenancy: with -tenants, API keys, token buckets and queued-unit
	// quotas gate the service and fleet endpoints.
	var gate *admission.Controller
	if *tenantsFile != "" {
		admCfg, err := admission.LoadConfig(*tenantsFile)
		if err != nil {
			fatal("-tenants invalid", "file", *tenantsFile, "error", err)
		}
		gate = admission.NewController(admCfg, admission.Options{Metrics: svc.Metrics(), Log: log})
		svc.Admission = gate
		log.Info("admission control enabled", "tenants", len(admCfg.Tenants))
	}

	coordCfg := cluster.Config{
		LeaseTTL:      *leaseTTL,
		MaxAttempts:   *maxAttempts,
		MaxQueuedJobs: *maxQueued,
		Metrics:       svc.Metrics(),
		Log:           log,
		Spans:         spans,
	}
	if journal != nil {
		coordCfg.Store = journal
	}
	if gate != nil {
		coordCfg.Admission = gate
	}
	coord := cluster.NewCoordinator(coordCfg)
	svc.Backend = coord

	// Replay the journal before serving: unfinished campaigns re-enter the
	// queue with their completed units prefilled, so a restarted fleet picks
	// up a half-done sweep where the crash left it.
	if journal != nil {
		resumed, err := coord.Recover()
		if err != nil {
			fatal("journal recovery failed", "dir", *journalDir, "error", err)
		}
		for _, r := range resumed {
			log.Info("resumed campaign from journal", "campaign", r.ID,
				"request_id", r.RequestID, "units", r.Units, "prefilled", r.PrefilledUnits)
		}
	}

	if *machineFile != "" {
		for _, path := range strings.Split(*machineFile, ",") {
			data, err := os.ReadFile(strings.TrimSpace(path))
			if err != nil {
				fatal("-machine unreadable", "error", err)
			}
			spec, err := machine.Parse(data)
			if err != nil {
				fatal("-machine invalid", "file", path, "error", err)
			}
			if _, err := svc.RegisterMachine(spec); err != nil {
				fatal("-machine rejected", "file", path, "error", err)
			}
			log.Info("registered machine", "name", spec.Name,
				"domains", len(spec.Domains), "digest", spec.Digest()[:12])
		}
	}

	mux := http.NewServeMux()
	coord.Register(mux) // fleet endpoints; GET /stats and /metrics shadow the service's
	if *enablePprof {
		telemetry.RegisterPprof(mux)
		log.Info("runtime profiles enabled at /debug/pprof/")
	}
	mux.Handle("/", svc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "error", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var workerWG sync.WaitGroup
	if *spawn > 0 {
		self := selfURL(ln.Addr())
		slots := *spawnSlots
		if slots <= 0 {
			slots = max(1, runtime.GOMAXPROCS(0) / *spawn)
		}
		// Spawned workers authenticate like any external worker when the
		// fleet endpoints are gated: an internal tenant with no rate limit.
		workerKey := ""
		if gate != nil {
			workerKey = gate.AddInternalTenant("fleet-local")
		}
		for i := 1; i <= *spawn; i++ {
			wk := &cluster.Worker{
				Coordinator:     self,
				ID:              fmt.Sprintf("local-%d", i),
				Engine:          campaign.NewEngine(slots),
				Slots:           slots,
				APIKey:          workerKey,
				DrainTimeout:    *drainTime,
				CheckpointEvery: *ckptEvery,
				Log:             log,
				Metrics:         svc.Metrics(), // galsim_worker_* aggregates across the spawned workers
				TimelineEvents:  *tlEvents,
			}
			workerWG.Add(1)
			go func() {
				defer workerWG.Done()
				if err := wk.Run(ctx); err != nil && ctx.Err() == nil {
					log.Error("worker failed", "worker", wk.ID, "error", err)
				}
			}()
		}
		log.Info("spawned in-process workers", "workers", *spawn, "slots_each", slots)
	} else {
		log.Info("no local workers; sweeps wait until galsimd workers -join")
	}

	httpSrv := &http.Server{
		Handler:           http.Handler(panicGuard(mux)),
		ReadTimeout:       *rdTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *wrTimeout,
		IdleTimeout:       *idleTimout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Info("coordinating", "addr", ln.Addr().String(),
		"lease_ttl", leaseTTL.String(), "max_attempts", *maxAttempts,
		"journal", *journalDir, "tenants", *tenantsFile != "")

	select {
	case err := <-errc:
		fatal("serve failed", "error", err)
	case <-ctx.Done():
	}

	log.Info("shutting down", "grace", gracePd.String())
	// Order matters: spawned workers drain their in-flight jobs by POSTing
	// completions (and checkpoints) back to this very server. Shutting the
	// HTTP server down first would close the listener underneath them, so
	// finished work — already journaled as leased, not as done — would be
	// thrown away to the lease TTL. Wait for the drain (bounded by the
	// workers' own DrainTimeout, plus slack for the final completion posts)
	// before taking the listener down; only then stop serving.
	if *spawn > 0 {
		drained := make(chan struct{})
		go func() { workerWG.Wait(); close(drained) }()
		select {
		case <-drained:
			log.Info("spawned workers drained")
		case <-time.After(*drainTime + 5*time.Second):
			log.Warn("spawned workers still draining past their timeout; shutting down anyway")
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePd)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("shutdown incomplete", "error", err)
	}
	st := coord.Stats()
	log.Info("fleet at exit", "workers", st.Workers, "alive", st.Alive,
		"jobs_done", st.JobsDone, "lease_expiries", st.LeaseExpiries,
		"job_failures", st.JobFailures, "uptime_seconds", st.UptimeSeconds)
}

// selfURL turns the bound listener address into a URL the spawned local
// workers can dial: wildcard hosts become loopback.
func selfURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// panicGuard mirrors the service handler's recover middleware for the
// fleet endpoints, which are mounted outside the service mux.
func panicGuard(h http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				httpjson.Error(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
		}()
		h.ServeHTTP(w, r)
	}
}
