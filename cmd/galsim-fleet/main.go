// Command galsim-fleet runs the distributed campaign coordinator: it
// accepts the same /run and /sweep requests as galsimd but shards the work
// into jobs and dispatches them across a fleet of galsimd workers, merging
// results deterministically (by unit index, never arrival order) so the
// output is byte-identical to a single-process run.
//
// Workers enroll with galsimd's -join flag, or -spawn starts in-process
// workers for a single-machine fleet:
//
//	galsim-fleet -addr :9090 -spawn 3
//	curl -s -X POST localhost:9090/sweep \
//	    -d '{"benchmarks":["gcc","perl"],"instructions":20000,
//	         "slowdown_grid":[{},{"fp":1.5},{"fp":3}],"machines":["gals"]}'
//	curl -s localhost:9090/stats          # aggregated fleet stats
//	curl -s localhost:9090/metrics        # fleet + service Prometheus page
//
// Multi-process on one machine:
//
//	galsim-fleet -addr :9090
//	galsimd -addr :8081 -join http://localhost:9090
//	galsimd -addr :8082 -join http://localhost:9090
//	galsimd -addr :8083 -join http://localhost:9090
//
// Fleet endpoints served alongside the galsimd API:
//
//	POST /join           worker registration
//	POST /jobs/lease     job lease (long-polls while the queue is idle)
//	POST /jobs/complete  streamed per-job completions
//	GET  /stats          fleet-wide cache counters, queue depth, uptime, per-worker health
//	GET  /metrics        Prometheus text exposition (fleet queue/lease/job
//	                     metrics merged with the service's HTTP metrics)
//
// Every sweep is traced: the coordinator stamps jobs with a W3C traceparent,
// workers ship their execution spans back, and GET /sweeps/{id}/trace (from
// the service API beneath) serves the whole sweep — coordinator, every
// worker, and in-sim stall windows — as one Perfetto-loadable trace.
//
// Logging is structured (log/slog; -log-level, -log-format). Campaign
// submissions are logged with a request ID that every job of the campaign
// carries to its worker, so one sweep's lifecycle is greppable across the
// whole fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/cluster"
	"galsim/internal/httpjson"
	"galsim/internal/machine"
	"galsim/internal/service"
	"galsim/internal/telemetry"
	"galsim/internal/timeline"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "per-job worker lease; an expired lease re-queues the job on the surviving fleet")
		maxAttempts = flag.Int("max-attempts", 3, "dispatch attempts per job before its campaign fails")
		spawn       = flag.Int("spawn", 0, "in-process workers to start (single-machine fleet; 0 = external workers only)")
		spawnSlots  = flag.Int("spawn-slots", 0, "concurrent jobs per spawned worker (0 = GOMAXPROCS split across spawned workers)")
		maxUnits    = flag.Int("max-sweep-units", 4096, "reject sweeps expanding beyond this many units (0 = unlimited)")
		machineFile = flag.String("machine", "", "MachineSpec JSON file(s) to pre-register, comma-separated; /run and /sweep requests may then reference them by name")
		gracePd     = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		rdTimeout   = flag.Duration("read-timeout", 60*time.Second, "request read timeout (must exceed the lease long-poll)")
		wrTimeout   = flag.Duration("write-timeout", 10*time.Minute, "response write timeout (long sweeps stream slowly)")
		idleTimout  = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
		logLevel    = flag.String("log-level", "info", "log threshold: debug|info|warn|error")
		logFormat   = flag.String("log-format", "text", "log encoding: text|json")
		enablePprof = flag.Bool("pprof", false,
			"serve Go runtime profiles under /debug/pprof/ (off by default; enable only on trusted networks)")
		tlEvents = flag.Int("timeline-events", 0,
			"flight-recorder ring size for traced jobs on spawned workers (0 = small default, negative = no in-sim spans)")
		maxSpans = flag.Int("max-spans", 0,
			"trace spans retained for GET /sweeps/{id}/trace (0 = default window)")
	)
	flag.Parse()

	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		flag.Usage()
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	// The local engine serves /experiments and validation; campaign batches
	// go through the coordinator. The coordinator shares the service's
	// metrics registry so the shadowing GET /metrics covers both.
	engine := campaign.NewEngine(0)
	svc := service.New(engine)
	svc.MaxSweepUnits = *maxUnits
	svc.Log = log
	// One span collector shared between the coordinator (which records
	// campaign/lease spans and folds worker spans in) and the service
	// (which serves them on GET /sweeps/{id}/trace).
	spans := timeline.NewSpanCollector(*maxSpans)
	svc.Spans = spans
	coord := cluster.NewCoordinator(cluster.Config{
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		Metrics:     svc.Metrics(),
		Log:         log,
		Spans:       spans,
	})
	svc.Backend = coord

	if *machineFile != "" {
		for _, path := range strings.Split(*machineFile, ",") {
			data, err := os.ReadFile(strings.TrimSpace(path))
			if err != nil {
				fatal("-machine unreadable", "error", err)
			}
			spec, err := machine.Parse(data)
			if err != nil {
				fatal("-machine invalid", "file", path, "error", err)
			}
			if _, err := svc.RegisterMachine(spec); err != nil {
				fatal("-machine rejected", "file", path, "error", err)
			}
			log.Info("registered machine", "name", spec.Name,
				"domains", len(spec.Domains), "digest", spec.Digest()[:12])
		}
	}

	mux := http.NewServeMux()
	coord.Register(mux) // fleet endpoints; GET /stats and /metrics shadow the service's
	if *enablePprof {
		telemetry.RegisterPprof(mux)
		log.Info("runtime profiles enabled at /debug/pprof/")
	}
	mux.Handle("/", svc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "error", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *spawn > 0 {
		self := selfURL(ln.Addr())
		slots := *spawnSlots
		if slots <= 0 {
			slots = max(1, runtime.GOMAXPROCS(0) / *spawn)
		}
		for i := 1; i <= *spawn; i++ {
			wk := &cluster.Worker{
				Coordinator:    self,
				ID:             fmt.Sprintf("local-%d", i),
				Engine:         campaign.NewEngine(slots),
				Slots:          slots,
				Log:            log,
				Metrics:        svc.Metrics(), // galsim_worker_* aggregates across the spawned workers
				TimelineEvents: *tlEvents,
			}
			go func() {
				if err := wk.Run(ctx); err != nil && ctx.Err() == nil {
					log.Error("worker failed", "worker", wk.ID, "error", err)
				}
			}()
		}
		log.Info("spawned in-process workers", "workers", *spawn, "slots_each", slots)
	} else {
		log.Info("no local workers; sweeps wait until galsimd workers -join")
	}

	httpSrv := &http.Server{
		Handler:           http.Handler(panicGuard(mux)),
		ReadTimeout:       *rdTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *wrTimeout,
		IdleTimeout:       *idleTimout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Info("coordinating", "addr", ln.Addr().String(),
		"lease_ttl", leaseTTL.String(), "max_attempts", *maxAttempts)

	select {
	case err := <-errc:
		fatal("serve failed", "error", err)
	case <-ctx.Done():
	}

	log.Info("shutting down", "grace", gracePd.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePd)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("shutdown incomplete", "error", err)
	}
	st := coord.Stats()
	log.Info("fleet at exit", "workers", st.Workers, "alive", st.Alive,
		"jobs_done", st.JobsDone, "lease_expiries", st.LeaseExpiries,
		"job_failures", st.JobFailures, "uptime_seconds", st.UptimeSeconds)
}

// selfURL turns the bound listener address into a URL the spawned local
// workers can dial: wildcard hosts become loopback.
func selfURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// panicGuard mirrors the service handler's recover middleware for the
// fleet endpoints, which are mounted outside the service mux.
func panicGuard(h http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				httpjson.Error(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
		}()
		h.ServeHTTP(w, r)
	}
}
