// Command galsim-trace records, inspects, and replays workload instruction
// traces: the operational front door to the record/replay subsystem.
//
//	galsim-trace record -bench gcc -o gcc.trace            # record a run
//	galsim-trace record -profile phases.json -o ph.trace   # custom workload
//	galsim-trace inspect gcc.trace                         # header + digest
//	galsim-trace stats gcc.trace                           # stream statistics
//	galsim-trace replay gcc.trace -machine gals            # re-run the trace
//	galsim-trace replay gcc.trace -machine gals -timeline t.json  # + Perfetto timeline
//	galsim-trace fast-forward gcc.trace -at 50000 -o warm.gsnp -machine gals  # snapshot at N
//	galsim-trace replay gcc.trace -machine gals -from warm.gsnp  # resume past the prefix
//
// A replayed trace driven through a machine configured identically to the
// recording reproduces its results exactly; driven through a different
// machine, it answers "what would this exact instruction stream have done
// there".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"galsim"
	"galsim/internal/isa"
	"galsim/internal/snapshot"
	"galsim/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "fast-forward":
		err = cmdFastForward(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "galsim-trace: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: galsim-trace <command> [flags]

commands:
  record   run a workload and record its instruction stream to a trace file
  inspect  print a trace's header, provenance and content digest
  stats    decode a trace and print stream statistics (mix, branches, memory)
  replay   replay a trace through a machine and print the run's results
  fast-forward
           replay a trace up to instruction N and save a full-state snapshot;
           later replays resume from it with -from, skipping the warm-up prefix

run "galsim-trace <command> -h" for the command's flags
`)
}

// machineFlags holds the run-configuration flags shared by record and
// replay.
type machineFlags struct {
	fs        *flag.FlagSet
	machine   *string
	n         *uint64
	slow      *string
	noDVS     *bool
	seed      *int64
	phaseSeed *int64
	memOrder  *string
	linkStyle *string
	dynDVFS   *bool
	sample    *uint64
	sampleOut *string
	sampleFmt *string
	timeline  *string
	tlFlight  *int
}

func addMachineFlags(fs *flag.FlagSet) *machineFlags {
	return &machineFlags{
		fs:        fs,
		machine:   fs.String("machine", "base", `machine: "base", "gals", or a MachineSpec JSON file`),
		n:         fs.Uint64("n", 0, "instructions to commit (0 = default: 100000, or the recorded length for replay)"),
		slow:      fs.String("slow", "", `per-domain clock slowdowns, e.g. "fp=3,fetch=1.1"`),
		noDVS:     fs.Bool("no-dvs", false, "disable voltage scaling of slowed domains"),
		seed:      fs.Int64("seed", 42, "workload seed (ignored by replay)"),
		phaseSeed: fs.Int64("phase-seed", 1, "GALS clock phase seed"),
		memOrder:  fs.String("mem-order", "perfect", "memory disambiguation: perfect, conservative, addr-match"),
		linkStyle: fs.String("links", "fifo", "GALS link style: fifo or stretch"),
		dynDVFS:   fs.Bool("dyn-dvfs", false, "enable the online per-domain DVFS controller (gals only)"),
		sample:    fs.Uint64("sample", 0, "sample per-domain occupancy/IPC/DVFS state every N decode cycles (0 = off, min 100)"),
		sampleOut: fs.String("sample-out", "", "write the sample series to this file (default stdout after the summary)"),
		sampleFmt: fs.String("sample-format", "csv", "sample encoding: csv or json"),
		timeline: fs.String("timeline", "",
			"write a Perfetto-loadable microarchitecture timeline (Chrome trace-event JSON) to this file"),
		tlFlight: fs.Int("timeline-flight", 0,
			"flight-recorder mode: keep only the last N timeline events (0 = record from the start)"),
	}
}

// emitSamples writes a run's interval series per the -sample-* flags; a
// no-op unless -sample was set.
func (m *machineFlags) emitSamples(samples []galsim.Sample) error {
	if *m.sample == 0 {
		return nil
	}
	var w io.Writer = os.Stdout
	if *m.sampleOut != "" {
		f, err := os.Create(*m.sampleOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *m.sampleFmt {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(samples)
	case "csv":
		return galsim.WriteSamplesCSV(w, samples)
	}
	return fmt.Errorf("-sample-format %q: want csv or json", *m.sampleFmt)
}

// emitTimeline saves a run's timeline per the -timeline flags; a no-op
// unless -timeline was set.
func (m *machineFlags) emitTimeline(tl *galsim.Timeline) error {
	if tl == nil || *m.timeline == "" {
		return nil
	}
	f, err := os.Create(*m.timeline)
	if err != nil {
		return err
	}
	if err := tl.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  timeline    %d events -> %s (open at https://ui.perfetto.dev)\n", tl.Len(), *m.timeline)
	return nil
}

func (m *machineFlags) options() (galsim.Options, error) {
	slowdowns, err := galsim.ParseSlowdowns(*m.slow)
	if err != nil {
		return galsim.Options{}, err
	}
	// The "base" default must reach the library as "no machine chosen":
	// replaying a trace recorded on another topology errors loudly unless
	// the machine is an explicit choice. Anything that is not a built-in
	// name is read as a MachineSpec JSON file.
	name := ""
	var spec *galsim.MachineSpec
	m.fs.Visit(func(f *flag.Flag) {
		if f.Name == "machine" {
			name = *m.machine
		}
	})
	builtin := name == ""
	for _, b := range galsim.Machines() {
		builtin = builtin || name == b
	}
	if !builtin {
		data, err := os.ReadFile(name)
		if err != nil {
			return galsim.Options{}, fmt.Errorf("-machine %q is neither a built-in machine (%s) nor a readable spec file: %v",
				name, strings.Join(galsim.Machines(), ", "), err)
		}
		parsed, err := galsim.ParseMachineSpec(data)
		if err != nil {
			return galsim.Options{}, fmt.Errorf("-machine %s: %v", name, err)
		}
		spec, name = &parsed, ""
	}
	opts := galsim.Options{
		Machine:               galsim.Machine(name),
		MachineSpec:           spec,
		Instructions:          *m.n,
		Slowdowns:             slowdowns,
		DisableVoltageScaling: *m.noDVS,
		WorkloadSeed:          *m.seed,
		PhaseSeed:             *m.phaseSeed,
		MemoryOrdering:        *m.memOrder,
		LinkStyle:             *m.linkStyle,
		DynamicDVFS:           *m.dynDVFS,
		SampleInterval:        *m.sample,
	}
	if *m.timeline != "" {
		opts.Timeline = &galsim.TimelineOptions{
			MaxEvents:      *m.tlFlight,
			FlightRecorder: *m.tlFlight > 0,
		}
	}
	return opts, nil
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "", "built-in benchmark to record (see galsim -list)")
	profilePath := fs.String("profile", "", "JSON file with a custom (possibly phased) workload profile")
	out := fs.String("o", "", "output trace file (required)")
	mf := addMachineFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *out == "" {
		return fmt.Errorf("record: -o is required")
	}
	opts, err := mf.options()
	if err != nil {
		return err
	}
	opts.Benchmark = *bench
	opts.RecordTrace = *out
	if *profilePath != "" {
		data, err := os.ReadFile(*profilePath)
		if err != nil {
			return err
		}
		spec, err := galsim.ParseWorkloadProfile(data)
		if err != nil {
			return err
		}
		opts.Profile = &spec
	}
	res, err := galsim.Run(opts)
	if err != nil {
		return err
	}
	t, err := trace.Load(*out)
	if err != nil {
		return fmt.Errorf("recorded trace failed to validate: %w", err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d committed, %.3f us simulated\n", res.Benchmark, res.Committed, res.SimSeconds*1e6)
	fmt.Printf("  %s: %d bytes, %d instructions (%d wrong-path, %d excursions)\n",
		*out, info.Size(), t.Stats.Instrs, t.Stats.WrongPath, t.Stats.Excursions)
	if err := mf.emitTimeline(res.Timeline); err != nil {
		return err
	}
	return mf.emitSamples(res.Samples)
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args) //nolint:errcheck
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect: usage: galsim-trace inspect <file>")
	}
	path := fs.Arg(0)
	meta, err := trace.ReadMeta(path)
	if err != nil {
		return err
	}
	digest, err := trace.FileDigest(path)
	if err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("trace    %s (%d bytes)\n", path, info.Size())
	fmt.Printf("version  %d\n", trace.Version)
	fmt.Printf("workload %s\n", meta.Name)
	fmt.Printf("recorded %d committed instructions\n", meta.Instructions)
	fmt.Printf("sha256   %s\n", digest)
	if meta.MachineDigest != "" {
		fmt.Printf("machine  %s\n", meta.MachineDigest)
	}
	if len(meta.SpecJSON) > 0 {
		fmt.Printf("spec     %s\n", meta.SpecJSON)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	mf := addMachineFlags(fs)
	// Accept the trace file before the flags, as replay does.
	var file string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file, args = args[0], args[1:]
	}
	fs.Parse(args) //nolint:errcheck
	if file == "" && fs.NArg() == 1 {
		file = fs.Arg(0)
	}
	if file == "" || fs.NArg() > 1 {
		return fmt.Errorf("stats: usage: galsim-trace stats <file> [flags]")
	}
	t, err := trace.Load(file)
	if err != nil {
		return err
	}
	s := t.Stats
	fmt.Printf("workload %s: %d records\n", t.Meta.Name, s.Records)
	fmt.Printf("  correct path  %d instructions, pc range %#x..%#x\n", s.Instrs, s.MinPC, s.MaxPC)
	fmt.Printf("  wrong path    %d instructions in %d excursions (%.1f%% of fetch)\n",
		s.WrongPath, s.Excursions, 100*float64(s.WrongPath)/float64(s.Instrs+s.WrongPath))
	if s.Branches > 0 {
		fmt.Printf("  branches      %d (%.1f%%), %.1f%% taken\n",
			s.Branches, 100*float64(s.Branches)/float64(s.Instrs), 100*float64(s.BranchTaken)/float64(s.Branches))
	}
	fmt.Printf("  memory ops    %d (%.1f%%)\n", s.MemOps, 100*float64(s.MemOps)/float64(s.Instrs))
	fmt.Println("  class mix:")
	for c := 0; c < isa.NumClasses; c++ {
		if s.ByClass[c] == 0 {
			continue
		}
		fmt.Printf("    %-8s %8d  %5.1f%%\n", isa.Class(c), s.ByClass[c], 100*float64(s.ByClass[c])/float64(s.Instrs))
	}
	// With -sample, additionally replay the trace through a machine (the
	// machine flags match replay's) and emit the interval time-series.
	if *mf.sample > 0 {
		opts, err := mf.options()
		if err != nil {
			return err
		}
		opts.Trace = file
		res, err := galsim.Run(opts)
		if err != nil {
			return err
		}
		if err := mf.emitTimeline(res.Timeline); err != nil {
			return err
		}
		return mf.emitSamples(res.Samples)
	}
	return nil
}

func cmdFastForward(args []string) error {
	fs := flag.NewFlagSet("fast-forward", flag.ExitOnError)
	at := fs.Uint64("at", 0, "instruction count to snapshot at (required; must be below the replay budget)")
	out := fs.String("o", "", "output snapshot file (required)")
	mf := addMachineFlags(fs)
	// Accept the trace file before the flags, as replay does.
	var file string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file, args = args[0], args[1:]
	}
	fs.Parse(args) //nolint:errcheck
	if file == "" && fs.NArg() == 1 {
		file = fs.Arg(0)
	}
	if file == "" || fs.NArg() > 1 {
		return fmt.Errorf("fast-forward: usage: galsim-trace fast-forward <file> -at N -o snap.gsnp [flags]")
	}
	if *at == 0 {
		return fmt.Errorf("fast-forward: -at N is required")
	}
	if *out == "" {
		return fmt.Errorf("fast-forward: -o is required")
	}
	opts, err := mf.options()
	if err != nil {
		return err
	}
	opts.Trace = file
	opts.Warmup = *at
	opts.SnapshotOut = *out
	res, err := galsim.Run(opts)
	if err != nil {
		return err
	}
	if _, err := snapshot.ReadFile(*out); err != nil {
		return fmt.Errorf("written snapshot failed to validate: %w", err)
	}
	digest, err := snapshot.FileDigest(*out)
	if err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("fast-forwarded %s to instruction %d (full replay: %d committed, %.3f us)\n",
		file, *at, res.Committed, res.SimSeconds*1e6)
	fmt.Printf("  %s: %d bytes, digest %s\n", *out, info.Size(), digest)
	fmt.Printf("  resume with: galsim-trace replay %s -from %s [same machine flags]\n", file, *out)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	mf := addMachineFlags(fs)
	from := fs.String("from", "", "resume from a fast-forward snapshot file instead of replaying the warm-up prefix")
	// Accept the trace file before the flags (flag.Parse stops at the first
	// non-flag argument): galsim-trace replay x.trace -machine gals.
	var file string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file, args = args[0], args[1:]
	}
	fs.Parse(args) //nolint:errcheck
	if file == "" && fs.NArg() == 1 {
		file = fs.Arg(0)
	}
	if file == "" || fs.NArg() > 1 {
		return fmt.Errorf("replay: usage: galsim-trace replay <file> [flags]")
	}
	opts, err := mf.options()
	if err != nil {
		return err
	}
	opts.Trace = file
	opts.SnapshotIn = *from
	res, err := galsim.Run(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s machine: %d instructions\n", res.Benchmark, res.Machine, res.Committed)
	fmt.Printf("  time        %.3f us   IPC %.2f   %.0f MIPS\n", res.SimSeconds*1e6, res.IPC, res.MIPS)
	fmt.Printf("  slip        %.2f ns   (%.1f%% in FIFOs)\n", res.AvgSlipNs, 100*res.FIFOSlipShare)
	fmt.Printf("  energy      %.3f mJ   power %.2f W\n", res.EnergyJoules*1e3, res.PowerWatts)
	fmt.Printf("  caches      L1I %.1f%%  L1D %.1f%%  L2 %.1f%%\n",
		100*res.L1IHitRate, 100*res.L1DHitRate, 100*res.L2HitRate)
	if res.Retunes > 0 {
		fmt.Printf("  dvfs        %d retunes; final slowdowns int %.2f, fp %.2f, mem %.2f\n",
			res.Retunes, res.FinalSlowdowns["int"], res.FinalSlowdowns["fp"], res.FinalSlowdowns["mem"])
	}
	if err := mf.emitTimeline(res.Timeline); err != nil {
		return err
	}
	return mf.emitSamples(res.Samples)
}
