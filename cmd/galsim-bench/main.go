// Command galsim-bench measures simulator throughput and writes the numbers
// to a JSON file, so performance can be tracked across commits with one
// command and compared against a recorded baseline:
//
//	go run ./cmd/galsim-bench -out BENCH.json
//	go run ./cmd/galsim-bench -label pr3 -baseline seed.json -out BENCH_pr3.json
//
// Two benchmarks run, mirroring the repo's go-test benchmarks:
//
//   - throughput/gals and throughput/base: one core simulating gcc for a
//     fixed instruction count (BenchmarkSimulatorThroughput), reported as
//     simulated instructions per wall-clock second plus the standard
//     ns/op, allocs/op and B/op;
//   - sweep/serial: a cold-cache campaign over several benchmarks on both
//     machines through one worker (BenchmarkSweep/serial), the end-to-end
//     figure the campaign engine and galsimd inherit;
//   - sampler/off and sampler/on: the GALS core with interval sampling
//     disabled versus sampling every 1000 decode cycles, establishing the
//     observability overhead (sampler_regression in the report; the PR 6
//     acceptance bound is <= 5%);
//   - timeline/off and timeline/on: the GALS core with the event tracer
//     detached versus attached in flight-recorder detail mode, the cost a
//     fleet worker pays on traced jobs (timeline_regression; the PR 7
//     acceptance bound is <= 5%);
//   - sweep/grid-cold and sweep/grid-warm: a convergence-grid sweep (three
//     budgets per operating point) without and with warm-up snapshot
//     sharing, the PR 9 wall-clock win (warm_sharing_speedup in the
//     report);
//   - snapshot/encode and snapshot/decode: envelope round-trip cost of a
//     warmed full-machine snapshot, the per-checkpoint price a fleet
//     worker pays on long jobs;
//   - explore/evolve-cold and explore/evolve-warm: a seeded evolutionary
//     design-space search (galsim-explore's engine) on a cold engine,
//     without and with warm-up prefix sharing, reported as candidate
//     evaluations per second plus the generation cache-hit rate (the
//     fraction of sweep units served from the content-addressed cache —
//     duplicate mutants and builtin-equal candidates are free).
//
// Every report stamps the canonical machine digests of the machines the
// benchmarks exercise (and each single-machine measurement carries its
// machine's name and digest), so BENCH artifacts are provenance-comparable
// across PRs: a digest change means the machine itself changed, not just
// the code under it.
//
// When -baseline names a previous output file, the report embeds it and
// computes per-benchmark speedup (baseline ns/op ÷ current ns/op) and the
// allocation reduction, which is how BENCH_pr3.json records its
// before/after comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/explore"
	"galsim/internal/machine"
	"galsim/internal/pipeline"
	"galsim/internal/snapshot"
	"galsim/internal/timeline"
	"galsim/internal/workload"
)

// Measurement is one benchmark's result. Machine/MachineDigest identify
// the machine a single-machine benchmark pins (multi-machine benchmarks
// leave them empty; see Report.Machines for the full set).
type Measurement struct {
	Name            string  `json:"name"`
	Machine         string  `json:"machine,omitempty"`
	MachineDigest   string  `json:"machine_digest,omitempty"`
	Iterations      int     `json:"iterations"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	SimInstrsPerSec float64 `json:"sim_instrs_per_sec,omitempty"`
	EvalsPerSec     float64 `json:"evals_per_sec,omitempty"`
	CacheHitRate    float64 `json:"cache_hit_rate,omitempty"`
}

// MachineStamp records one machine's provenance: its name and canonical
// content digest (machine.Spec.Digest).
type MachineStamp struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
}

// Report is the file schema.
type Report struct {
	Label     string    `json:"label"`
	Timestamp time.Time `json:"timestamp"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`

	// Machines stamps the canonical digest of every builtin machine the
	// benchmarks exercise, so reports are comparable across PRs: a digest
	// change means the machine changed, not just the code under it.
	Machines []MachineStamp `json:"machines,omitempty"`

	Benchmarks []Measurement `json:"benchmarks"`

	// SamplerRegression is the throughput cost of interval sampling:
	// 1 - (sampler/on ÷ sampler/off sim-instrs/s). Positive = slower with
	// sampling enabled.
	SamplerRegression float64 `json:"sampler_regression,omitempty"`

	// TimelineRegression is the throughput cost of the event tracer:
	// 1 - (timeline/on ÷ timeline/off sim-instrs/s). Positive = slower with
	// the tracer attached (flight ring, detail mode).
	TimelineRegression float64 `json:"timeline_regression,omitempty"`

	// ExploreEvalsPerSec and ExploreCacheHitRate summarize the
	// explore/evolve-cold benchmark: candidate evaluations per second and
	// the fraction of its sweep units served from the content-addressed
	// cache (duplicate mutants and builtin-equal candidates are free).
	ExploreEvalsPerSec  float64 `json:"explore_evals_per_sec,omitempty"`
	ExploreCacheHitRate float64 `json:"explore_cache_hit_rate,omitempty"`

	// ExploreWarmSharingRatio is explore/evolve-warm evals/s over
	// explore/evolve-cold evals/s: search throughput with warm-up prefix
	// sharing enabled versus without. Distinct candidate machines never
	// share a warm prefix, so a value near 1.0 is the expected result —
	// it verifies the warm path costs nothing when it cannot share.
	ExploreWarmSharingRatio float64 `json:"explore_warm_sharing_ratio,omitempty"`

	// WarmSharingSpeedup is sweep/grid-warm throughput over sweep/grid-cold
	// throughput: how much faster a convergence-grid sweep gets when grid
	// points sharing a workload prefix fork one warmed snapshot instead of
	// each re-simulating the warm-up. > 1 means sharing pays.
	WarmSharingSpeedup float64 `json:"warm_sharing_speedup,omitempty"`

	// Baseline, when present, is the report this run is compared against;
	// Speedup and AllocReduction are keyed by benchmark name.
	Baseline       *Report            `json:"baseline,omitempty"`
	Speedup        map[string]float64 `json:"speedup,omitempty"`
	AllocReduction map[string]float64 `json:"alloc_reduction,omitempty"`
}

func measure(name string, r testing.BenchmarkResult) Measurement {
	m := Measurement{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if v, ok := r.Extra["sim-instrs/s"]; ok {
		m.SimInstrsPerSec = v
	}
	if v, ok := r.Extra["evals/s"]; ok {
		m.EvalsPerSec = v
	}
	if v, ok := r.Extra["cache-hit-rate"]; ok {
		m.CacheHitRate = v
	}
	return m
}

// benchThroughput is BenchmarkSimulatorThroughput: raw simulation speed of
// one core, in simulated instructions per wall-clock second.
func benchThroughput(kind pipeline.Kind, instrs uint64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		prof, err := workload.ByName("gcc")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := pipeline.DefaultConfig(kind)
			pipeline.NewCore(cfg, prof).Run(instrs)
		}
		b.ReportMetric(float64(instrs*uint64(b.N))/b.Elapsed().Seconds(), "sim-instrs/s")
	}
}

// benchSampler is the sampler-overhead pair: the GALS core with interval
// sampling off (interval 0) or on. The two runs differ only in
// Config.SampleInterval, so their throughput ratio isolates the sampler.
func benchSampler(interval, instrs uint64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		prof, err := workload.ByName("gcc")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := pipeline.DefaultConfig(pipeline.GALS)
			cfg.SampleInterval = interval
			pipeline.NewCore(cfg, prof).Run(instrs)
		}
		b.ReportMetric(float64(instrs*uint64(b.N))/b.Elapsed().Seconds(), "sim-instrs/s")
	}
}

// benchTimeline is the timeline-overhead pair: the GALS core with the
// event tracer detached versus attached with a flight ring at standard
// detail (the configuration a fleet worker uses for traced jobs; -detail
// adds per-transfer FIFO events and costs more). The two runs differ only
// in AttachTimeline, so their throughput ratio isolates the tracer — the
// PR 7 acceptance bound is <= 5%.
func benchTimeline(on bool, instrs uint64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		prof, err := workload.ByName("gcc")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := pipeline.DefaultConfig(pipeline.GALS)
			core := pipeline.NewCore(cfg, prof)
			if on {
				rec := timeline.NewRecorder(timeline.Options{MaxEvents: 1024, Flight: true})
				core.AttachTimeline(rec, false, 0)
			}
			core.Run(instrs)
		}
		b.ReportMetric(float64(instrs*uint64(b.N))/b.Elapsed().Seconds(), "sim-instrs/s")
	}
}

// benchSweep is BenchmarkSweep/serial: a cold-cache campaign through one
// worker, the figure the sweep and experiment layers inherit.
func benchSweep(instrs uint64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		sweep := campaign.Sweep{
			Benchmarks:   []string{"compress", "gcc", "li", "perl", "swim", "fpppp"},
			Machines:     []string{"base", "gals"},
			Instructions: instrs,
		}
		units, err := sweep.Units()
		if err != nil {
			b.Fatal(err)
		}
		total := float64(len(units)) * float64(instrs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := campaign.NewEngine(1) // fresh engine: cold cache, serial
			if _, err := e.RunAll(context.Background(), units); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(total*float64(b.N)/b.Elapsed().Seconds(), "sim-instrs/s")
	}
}

// benchSweepGrid is the warm-sharing pair: a convergence-grid sweep (three
// instruction budgets per operating point) run cold versus with Warmup set,
// where budgets sharing a prefix fork one warmed snapshot. Both report
// throughput against the nominal (cold) instruction total, so the warm run's
// sim-instrs/s directly reflects the wall-clock saved by sharing. The warm-up
// has to dominate the snapshot round-trip (~12ms encode+decode at these
// machine sizes, see snapshot/encode and snapshot/decode) for sharing to
// pay, so this benchmark uses convergence-study-sized budgets; at short
// warm-ups sharing is a net loss, which the -warmup flag lets you measure.
func benchSweepGrid(warmup uint64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		sweep := campaign.Sweep{
			Benchmarks:       []string{"gcc", "swim"},
			Machines:         []string{"base", "gals"},
			InstructionsGrid: []uint64{30_000, 36_000, 42_000},
			Warmup:           warmup,
		}
		var nominal float64
		for _, n := range sweep.InstructionsGrid {
			nominal += float64(n) * float64(len(sweep.Benchmarks)*len(sweep.Machines))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := campaign.NewEngine(1) // fresh engine: cold cache, serial
			if _, err := e.RunSweep(context.Background(), sweep); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(nominal*float64(b.N)/b.Elapsed().Seconds(), "sim-instrs/s")
	}
}

// benchExplore is the design-space-search pair: a seeded evolutionary
// search (the galsim-explore engine) scored on a fresh serial campaign
// engine per iteration, without and with warm-up prefix sharing. It
// reports candidate evaluations per second and the generation cache-hit
// rate — the fraction of sweep units served from the content-addressed
// cache, where duplicate mutants and builtin-equal candidates become
// free. The warm variant sets Sweep.Warmup on every generation; distinct
// candidate machines never share a warm prefix, so its evals/s should
// track the cold variant's (see Report.ExploreWarmSharingRatio).
func benchExplore(warmup uint64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		spec := explore.SearchSpec{
			Name:         "bench",
			Seed:         7,
			Strategy:     explore.StrategyEvolutionary,
			Workloads:    []string{"gcc"},
			Instructions: 4_000,
			Warmup:       warmup,
			Budget:       explore.BudgetSpec{Population: 6, MaxGenerations: 3},
		}
		var evals, units, hits int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := &explore.Explorer{Evaluator: explore.BackendEvaluator{Backend: campaign.NewEngine(1)}}
			res, err := x.Run(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			evals += res.Evaluations
			units += res.Exec.Units
			hits += res.Exec.CacheHits
		}
		b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "evals/s")
		if units > 0 {
			b.ReportMetric(float64(hits)/float64(units), "cache-hit-rate")
		}
	}
}

// warmedSnapshot runs the GALS gcc point for instrs committed instructions
// and returns the captured full-machine snapshot, the subject of the
// snapshot encode/decode benchmarks.
func warmedSnapshot(instrs uint64) (*snapshot.Snapshot, error) {
	spec := campaign.RunSpec{Benchmark: "gcc", Machine: "gals", Instructions: 2 * instrs}.Canonical()
	var sn *snapshot.Snapshot
	_, err := campaign.ExecuteOpts(spec, campaign.ExecOpts{
		CheckpointEvery: instrs,
		OnSnapshot: func(s *snapshot.Snapshot) {
			if sn == nil {
				sn = s
			}
		},
	})
	if err == nil && sn == nil {
		err = fmt.Errorf("no snapshot captured at %d instructions", instrs)
	}
	return sn, err
}

// benchSnapshotEncode measures the envelope serialization of a warmed
// snapshot — the cost a fleet worker pays at every checkpoint cadence tick.
func benchSnapshotEncode(instrs uint64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		sn, err := warmedSnapshot(instrs)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sn.EncodeBytes(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSnapshotDecode measures envelope validation plus state decode — the
// restore-side cost paid when a follower forks a shared warm snapshot or a
// worker resumes a checkpointed job.
func benchSnapshotDecode(instrs uint64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		sn, err := warmedSnapshot(instrs)
		if err != nil {
			b.Fatal(err)
		}
		blob, err := sn.EncodeBytes()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := snapshot.DecodeBytes(blob); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func main() {
	var (
		out       = flag.String("out", "BENCH.json", "output file")
		label     = flag.String("label", "current", "label recorded in the report")
		baseline  = flag.String("baseline", "", "previous report to embed and compare against")
		instrs    = flag.Uint64("n", 20_000, "instructions per throughput run")
		sweepN    = flag.Uint64("sweep-n", 4_000, "instructions per sweep unit")
		sampleIvl = flag.Uint64("sample-interval", 1_000, "decode-cycle interval for the sampler/on benchmark")
		warmup    = flag.Uint64("warmup", 24_000, "warm-up prefix for the sweep/grid-warm benchmark (must stay below the smallest grid budget, 30000)")
		repeat    = flag.Int("repeat", 3, "runs per benchmark; the fastest is recorded (best-of-N damps scheduler noise)")
	)
	flag.Parse()

	rep := Report{
		Label:     *label,
		Timestamp: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	digests := map[string]string{}
	for _, ms := range machine.Builtins() {
		digests[ms.Name] = ms.Digest()
		rep.Machines = append(rep.Machines, MachineStamp{Name: ms.Name, Digest: ms.Digest()})
	}

	// The machine column names the single builtin a benchmark pins (its
	// stamp lands on the measurement); multi-machine and search benchmarks
	// leave it empty and are covered by Report.Machines.
	benches := []struct {
		name    string
		machine string
		fn      func(b *testing.B)
	}{
		{"throughput/gals", "gals", benchThroughput(pipeline.GALS, *instrs)},
		{"throughput/base", "base", benchThroughput(pipeline.Base, *instrs)},
		{"sweep/serial", "", benchSweep(*sweepN)},
		{"sampler/off", "gals", benchSampler(0, *instrs)},
		{"sampler/on", "gals", benchSampler(*sampleIvl, *instrs)},
		{"timeline/off", "gals", benchTimeline(false, *instrs)},
		{"timeline/on", "gals", benchTimeline(true, *instrs)},
		{"sweep/grid-cold", "", benchSweepGrid(0)},
		{"sweep/grid-warm", "", benchSweepGrid(*warmup)},
		{"snapshot/encode", "gals", benchSnapshotEncode(*instrs)},
		{"snapshot/decode", "gals", benchSnapshotDecode(*instrs)},
		{"explore/evolve-cold", "", benchExplore(0)},
		{"explore/evolve-warm", "", benchExplore(2_000)},
	}
	if *repeat < 1 {
		*repeat = 1
	}
	// Rounds are interleaved — every benchmark once per round, best result
	// kept — so slow machine drift lands on all benchmarks alike instead of
	// poisoning the off/on regression ratios.
	best := make([]Measurement, len(benches))
	for round := 0; round < *repeat; round++ {
		fmt.Fprintf(os.Stderr, "round %d/%d...\n", round+1, *repeat)
		for i, bb := range benches {
			m := measure(bb.name, testing.Benchmark(bb.fn))
			if bb.machine != "" {
				m.Machine = bb.machine
				m.MachineDigest = digests[bb.machine]
			}
			if round == 0 || m.NsPerOp < best[i].NsPerOp {
				best[i] = m
			}
		}
	}
	for _, m := range best {
		fmt.Fprintf(os.Stderr, "%s: %d iterations, %d ns/op, %d allocs/op, %d B/op, %.0f sim-instrs/s\n",
			m.Name, m.Iterations, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.SimInstrsPerSec)
		rep.Benchmarks = append(rep.Benchmarks, m)
	}
	var samplerOff, samplerOn, tlOff, tlOn, gridCold, gridWarm float64
	var exploreCold, exploreWarm float64
	for _, m := range rep.Benchmarks {
		switch m.Name {
		case "sampler/off":
			samplerOff = m.SimInstrsPerSec
		case "sampler/on":
			samplerOn = m.SimInstrsPerSec
		case "timeline/off":
			tlOff = m.SimInstrsPerSec
		case "timeline/on":
			tlOn = m.SimInstrsPerSec
		case "sweep/grid-cold":
			gridCold = m.SimInstrsPerSec
		case "sweep/grid-warm":
			gridWarm = m.SimInstrsPerSec
		case "explore/evolve-cold":
			exploreCold = m.EvalsPerSec
			rep.ExploreEvalsPerSec = m.EvalsPerSec
			rep.ExploreCacheHitRate = m.CacheHitRate
		case "explore/evolve-warm":
			exploreWarm = m.EvalsPerSec
		}
	}
	if samplerOff > 0 {
		rep.SamplerRegression = 1 - samplerOn/samplerOff
		fmt.Fprintf(os.Stderr, "sampler regression: %.2f%%\n", 100*rep.SamplerRegression)
	}
	if tlOff > 0 {
		rep.TimelineRegression = 1 - tlOn/tlOff
		fmt.Fprintf(os.Stderr, "timeline regression: %.2f%%\n", 100*rep.TimelineRegression)
	}
	if gridCold > 0 {
		rep.WarmSharingSpeedup = gridWarm / gridCold
		fmt.Fprintf(os.Stderr, "warm sharing speedup: %.2fx\n", rep.WarmSharingSpeedup)
	}
	if exploreCold > 0 {
		rep.ExploreWarmSharingRatio = exploreWarm / exploreCold
		fmt.Fprintf(os.Stderr, "explore: %.1f evals/s, cache-hit rate %.2f, warm/cold ratio %.2fx\n",
			rep.ExploreEvalsPerSec, rep.ExploreCacheHitRate, rep.ExploreWarmSharingRatio)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsim-bench:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "galsim-bench: parsing baseline:", err)
			os.Exit(1)
		}
		base.Baseline = nil // keep one level of nesting
		rep.Baseline = &base
		rep.Speedup = map[string]float64{}
		rep.AllocReduction = map[string]float64{}
		for _, bm := range base.Benchmarks {
			for _, cm := range rep.Benchmarks {
				if cm.Name != bm.Name {
					continue
				}
				if cm.NsPerOp != 0 {
					rep.Speedup[cm.Name] = float64(bm.NsPerOp) / float64(cm.NsPerOp)
				}
				if bm.AllocsPerOp != 0 {
					rep.AllocReduction[cm.Name] = 1 - float64(cm.AllocsPerOp)/float64(bm.AllocsPerOp)
				}
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "galsim-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
