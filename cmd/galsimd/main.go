// Command galsimd serves the GALS simulator over HTTP: a long-running
// campaign service that executes single runs, declarative sweeps, and the
// paper's experiment drivers on a shared worker pool, memoizing every
// completed simulation in a content-addressed cache so concurrent clients
// asking for overlapping work pay for it once.
//
// Examples:
//
//	galsimd -addr :8080
//	curl -s localhost:8080/benchmarks
//	curl -s -X POST localhost:8080/run \
//	    -d '{"benchmark":"gcc","machine":"gals","slowdowns":{"fp":3}}'
//	curl -s -X POST localhost:8080/sweep \
//	    -d '{"benchmarks":["gcc","perl"],"instructions":20000,
//	         "slowdown_grid":[{},{"fp":1.5},{"fp":3}],"machines":["gals"]}'
//	curl -s -X POST localhost:8080/machines -d @my-machine.json
//	curl -s -X POST localhost:8080/run \
//	    -d '{"benchmark":"gcc","machine":"my-machine"}'
//	curl -s 'localhost:8080/experiments/5?format=text'
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics    # Prometheus text exposition
//
// Logging is structured (log/slog): -log-level selects the threshold and
// -log-format switches between human-readable text and JSON lines. Every
// request is access-logged with a request ID (adopted from X-Request-Id
// when present) and counted in the /metrics registry.
//
// Worker mode: -join enrolls the process in a galsim-fleet coordinator's
// worker pool. The worker loop shares this server's engine, so fleet jobs
// and direct HTTP requests are served from one result cache; worker job
// metrics land on the same /metrics page. With -checkpoint-every N the
// worker posts a full-machine snapshot to the coordinator every N committed
// instructions, so a job this process dies holding resumes from its last
// checkpoint on the next worker instead of restarting.
//
//	galsimd -addr :8081 -join http://coordinator:9090 -checkpoint-every 1000000
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"galsim/internal/admission"
	"galsim/internal/campaign"
	"galsim/internal/cluster"
	"galsim/internal/service"
	"galsim/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS)")
		maxUnits    = flag.Int("max-sweep-units", 4096, "reject sweeps expanding beyond this many units (0 = unlimited)")
		gracePd     = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		rdTimeout   = flag.Duration("read-timeout", 30*time.Second, "request read timeout")
		wrTimeout   = flag.Duration("write-timeout", 10*time.Minute, "response write timeout (long sweeps stream slowly)")
		idleTimout  = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
		logLevel    = flag.String("log-level", "info", "log threshold: debug|info|warn|error")
		logFormat   = flag.String("log-format", "text", "log encoding: text|json")
		enablePprof = flag.Bool("pprof", false,
			"serve Go runtime profiles under /debug/pprof/ (off by default; enable only on trusted networks)")
		join        = flag.String("join", "", "coordinator base URL to pull fleet jobs from (e.g. http://host:9090)")
		workerID    = flag.String("worker-id", "", "worker name reported to the coordinator (default host-pid-xxxx)")
		workerSlots = flag.Int("worker-slots", 0, "concurrent fleet jobs to pull (0 = the engine's worker-pool width)")
		tlEvents    = flag.Int("timeline-events", 0,
			"flight-recorder ring size for traced fleet jobs (0 = small default, negative = no in-sim spans)")
		apiKey = flag.String("api-key", "",
			"tenant API key sent to an admission-gated coordinator (with -join)")
		drainTime = flag.Duration("drain-timeout", 30*time.Second,
			"on shutdown, finish and report in-flight fleet jobs for at most this long (0 = abandon them to the lease TTL)")
		ckptEvery = flag.Uint64("checkpoint-every", 0,
			"with -join, post a resumable snapshot to the coordinator every N committed instructions (0 = no checkpointing)")
		tenantsFile = flag.String("tenants", "",
			"tenant API-key config JSON (see internal/admission); gates POST /run and /sweep behind per-tenant rate limits and queued-unit quotas")
	)
	flag.Parse()

	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		flag.Usage()
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	engine := campaign.NewEngine(*workers)
	srv := service.New(engine)
	srv.MaxSweepUnits = *maxUnits
	srv.Log = log
	if *tenantsFile != "" {
		admCfg, err := admission.LoadConfig(*tenantsFile)
		if err != nil {
			fatal("-tenants invalid", "file", *tenantsFile, "error", err)
		}
		srv.Admission = admission.NewController(admCfg, admission.Options{Metrics: srv.Metrics(), Log: log})
		log.Info("admission control enabled", "tenants", len(admCfg.Tenants))
	}

	var handler http.Handler = srv
	if *enablePprof {
		mux := http.NewServeMux()
		telemetry.RegisterPprof(mux)
		mux.Handle("/", srv)
		handler = mux
		log.Info("runtime profiles enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *rdTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *wrTimeout,
		IdleTimeout:       *idleTimout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("galsimd serving", "addr", *addr, "workers", engine.Workers())

	workerDone := make(chan struct{})
	if *join != "" {
		wk := &cluster.Worker{
			Coordinator:     *join,
			ID:              *workerID,
			Addr:            *addr,
			Engine:          engine, // shared with the HTTP handlers: one cache for fleet and direct work
			Slots:           *workerSlots,
			APIKey:          *apiKey,
			DrainTimeout:    *drainTime,
			Log:             log,
			Metrics:         srv.Metrics(), // worker job metrics on the same /metrics page
			TimelineEvents:  *tlEvents,
			CheckpointEvery: *ckptEvery,
		}
		go func() {
			defer close(workerDone)
			if err := wk.Run(ctx); err != nil && ctx.Err() == nil {
				log.Error("fleet worker failed", "error", err)
			}
		}()
	} else {
		close(workerDone)
	}

	select {
	case err := <-errc:
		fatal("serve failed", "error", err)
	case <-ctx.Done():
	}

	log.Info("shutting down", "grace", gracePd.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePd)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("shutdown incomplete", "error", err)
	}
	select {
	case <-workerDone: // worker drained (-drain-timeout) or abandoned its jobs to their leases
	case <-shutdownCtx.Done():
	}
	st := engine.Stats()
	log.Info("cache at exit", "entries", st.Entries, "hits", st.Hits, "misses", st.Misses)
}
