// Command skewtable prints the paper's Table 1 (global clock skew across
// process generations) together with this repository's Monte-Carlo skew
// estimates, and optionally sweeps the tree model's parameters.
//
// Examples:
//
//	skewtable
//	skewtable -sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"galsim/internal/clocktree"
	"galsim/internal/experiments"
)

func main() {
	sweep := flag.Bool("sweep", false, "also sweep buffer-variation sigma in the tree model")
	flag.Parse()

	experiments.Table1Skew().Render(os.Stdout)

	if *sweep {
		fmt.Println("Monte-Carlo H-tree skew vs per-buffer delay variation (8 levels, 50ps buffers):")
		for _, sigma := range []float64{0.01, 0.02, 0.04, 0.08, 0.12} {
			cfg := clocktree.DefaultTree()
			cfg.SigmaFrac = sigma
			mean, worst, err := clocktree.Estimate(cfg, 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, "skewtable:", err)
				os.Exit(1)
			}
			fmt.Printf("  sigma %4.0f%%: mean %6.1f ps, worst %6.1f ps\n", sigma*100, mean, worst)
		}
	}
}
