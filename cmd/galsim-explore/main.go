// Command galsim-explore searches the machine design space: it reads a
// declarative JSON SearchSpec (strategy, search space over clock-domain
// partitionings / frequencies / DVFS policy / link geometry, budget,
// fitness weights), scores generations of candidate machines through the
// campaign engine — locally, or on a galsim-fleet via -backend — and
// emits the Pareto frontier with dominance ranks plus the best design's
// full machine spec.
//
// The search is fully deterministic: the same spec and seed produce
// byte-identical result JSON on any backend at any worker count, so a
// frontier artifact is reproducible and diffable across PRs.
//
// Examples:
//
//	galsim-explore -spec search.json
//	galsim-explore -spec search.json -format json -o frontier.json
//	galsim-explore -spec search.json -best-machine best.json
//	galsim-explore -spec search.json -backend http://fleet:9090 -api-key team-a
//	echo '{"strategy":"grid","instructions":20000}' | galsim-explore -spec -
//
// With -backend, each generation is POSTed as one /sweep to the fleet
// front end, so the fleet's progress tracker (GET /sweeps) shows every
// generation live, and its workers' shared caches dedupe repeated
// designs across searches.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/explore"
	"galsim/internal/report"
	"galsim/internal/service"
	"galsim/internal/telemetry"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "search spec JSON file (\"-\" = stdin; required)")
		backend   = flag.String("backend", "", "galsimd/galsim-fleet base URL to evaluate generations on (default: in-process engine)")
		apiKey    = flag.String("api-key", "", "tenant API key for an admission-gated -backend")
		workers   = flag.Int("workers", 0, "local simulation worker pool width (0 = GOMAXPROCS; ignored with -backend)")
		outPath   = flag.String("o", "", "write the full search result JSON here (\"-\" = stdout)")
		bestPath  = flag.String("best-machine", "", "write the best design's machine spec JSON here")
		format    = flag.String("format", "text", "stdout rendering: text (frontier table) | json (full result)")
		metrics   = flag.String("metrics", "", "serve galsim_explore_* metrics at this address while searching (e.g. :9091)")
		logLevel  = flag.String("log-level", "info", "log threshold: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log encoding: text|json")
	)
	flag.Parse()

	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim-explore:", err)
		os.Exit(2)
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "galsim-explore: -spec is required (a search spec JSON file, or - for stdin)")
		os.Exit(2)
	}
	var data []byte
	if *specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*specPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim-explore:", err)
		os.Exit(2)
	}
	spec, err := explore.Parse(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim-explore:", err)
		os.Exit(2)
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "galsim-explore:", err)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		srv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("metrics server failed", "err", err)
			}
		}()
		defer srv.Close()
		log.Info("serving metrics", "addr", *metrics)
	}

	x := &explore.Explorer{Metrics: reg, Log: log}
	if *backend != "" {
		x.Evaluator = &httpEvaluator{
			base:   strings.TrimRight(*backend, "/"),
			apiKey: *apiKey,
			client: &http.Client{Timeout: 30 * time.Minute},
			log:    log,
		}
	} else {
		x.Evaluator = explore.BackendEvaluator{Backend: campaign.NewEngine(*workers)}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := x.Run(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim-explore:", err)
		os.Exit(1)
	}

	resJSON, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "galsim-explore:", err)
		os.Exit(1)
	}
	resJSON = append(resJSON, '\n')
	if *outPath != "" && *outPath != "-" {
		if err := os.WriteFile(*outPath, resJSON, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "galsim-explore:", err)
			os.Exit(1)
		}
	}
	if *bestPath != "" && res.Best.Machine != nil {
		b, err := json.MarshalIndent(res.Best.Machine, "", "  ")
		if err == nil {
			err = os.WriteFile(*bestPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "galsim-explore:", err)
			os.Exit(1)
		}
	}
	switch *format {
	case "json":
		if *outPath == "" || *outPath == "-" {
			os.Stdout.Write(resJSON)
		}
	case "text":
		renderText(os.Stdout, res)
	default:
		fmt.Fprintf(os.Stderr, "galsim-explore: unknown -format %q (text|json)\n", *format)
		os.Exit(2)
	}
}

// renderText prints the frontier as a fixed-width table plus a summary of
// the best design.
func renderText(w io.Writer, res *explore.Result) {
	objs := res.Spec.Fitness.Objectives
	tbl := &report.Table{
		ID:    "Pareto frontier",
		Title: fmt.Sprintf("%d generations, %d evaluations, %d distinct designs", res.Generations, res.Evaluations, len(res.Points)),
		Note: fmt.Sprintf("relative to %s (digest %.12s); lower is better, fitness = weighted mean",
			res.BaselineMachine, res.BaselineDigest),
		Headers: append(append([]string{"machine", "domains", "gen"}, relHeaders(objs)...), "fitness", "digest"),
	}
	for _, p := range res.Frontier {
		cells := []string{p.MachineName, strconv.Itoa(p.Domains), strconv.Itoa(p.Generation)}
		for _, o := range objs {
			cells = append(cells, report.F(p.Relative[o]))
		}
		cells = append(cells, report.F(p.Fitness), p.MachineDigest[:12])
		tbl.AddRow(cells...)
	}
	tbl.Render(w)
	fmt.Fprintf(w, "\nbest: %s (fitness %s", res.Best.MachineName, report.F(res.Best.Fitness))
	for _, o := range objs {
		fmt.Fprintf(w, ", %s %s", o, report.F(res.Best.Relative[o]))
	}
	fmt.Fprintln(w, ")")
	if res.Exhausted {
		fmt.Fprintln(w, "search space exhausted before the evaluation budget")
	}
}

func relHeaders(objs []string) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = "rel-" + o
	}
	return out
}

// httpEvaluator scores generations on a remote galsimd or galsim-fleet
// front end: one POST /sweep per generation. Unit results come back in
// expansion order, so the artifact stays byte-identical to a local run;
// the remote's progress tracker exposes each generation under GET /sweeps.
type httpEvaluator struct {
	base   string
	apiKey string
	client *http.Client
	log    interface {
		Warn(msg string, args ...any)
	}
}

// busyRetries bounds retries against an admission-gated backend that
// answers 429 with Retry-After.
const busyRetries = 10

func (h *httpEvaluator) EvaluateSweep(ctx context.Context, s campaign.Sweep, fn campaign.ProgressFunc) ([]campaign.UnitResult, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= busyRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/sweep", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if h.apiKey != "" {
			req.Header.Set("Authorization", "Bearer "+h.apiKey)
		}
		resp, err := h.client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			delay := retryAfter(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("backend busy (429)")
			h.log.Warn("backend busy, retrying generation", "attempt", attempt+1, "delay", delay)
			select {
			case <-time.After(delay):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return nil, fmt.Errorf("backend: %s: %s", resp.Status, bytes.TrimSpace(msg))
		}
		var out service.SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, fmt.Errorf("backend: decode sweep response: %w", err)
		}
		if fn != nil {
			fn(campaign.Progress{Total: out.Units, Completed: out.Units})
		}
		return out.Results, nil
	}
	return nil, fmt.Errorf("backend stayed busy after %d retries: %w", busyRetries, lastErr)
}

// retryAfter parses a Retry-After header, defaulting to a second.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 && n <= 300 {
			return time.Duration(n) * time.Second
		}
	}
	return time.Second
}
