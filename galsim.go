// Package galsim is a cycle-accurate power/performance simulator for
// Globally Asynchronous Locally Synchronous (GALS) superscalar processors:
// a from-scratch reproduction of Iyer & Marculescu, "Power and Performance
// Evaluation of Globally Asynchronous Locally Synchronous Processors"
// (ISCA 2002).
//
// The package simulates a 4-wide out-of-order machine in two variants — a
// fully synchronous baseline and a 5-clock-domain GALS design communicating
// through mixed-clock FIFOs — over synthetic Spec95/Mediabench-like
// workloads, with Wattch-style energy accounting and per-domain dynamic
// voltage/frequency scaling.
//
// Quick start:
//
//	base, _ := galsim.Run(galsim.Options{Benchmark: "gcc", Machine: galsim.Base})
//	gals, _ := galsim.Run(galsim.Options{Benchmark: "gcc", Machine: galsim.GALS})
//	fmt.Printf("relative performance: %.3f\n", base.SimSeconds/gals.SimSeconds)
//
// Per-domain frequency scaling with automatic voltage selection (the
// paper's multiple-clock, multiple-voltage experiments):
//
//	r, _ := galsim.Run(galsim.Options{
//	    Benchmark: "gcc",
//	    Machine:   galsim.GALS,
//	    Slowdowns: map[string]float64{"fetch": 1.1, "fp": 3.0},
//	})
package galsim

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"galsim/internal/campaign"
	"galsim/internal/isa"
	"galsim/internal/machine"
	"galsim/internal/pipeline"
	"galsim/internal/power"
	"galsim/internal/trace"
	"galsim/internal/workload"
)

// Machine names a built-in machine variant. Deprecated in favour of
// MachineSpec, which can express any clock-domain partitioning; the two
// built-in names keep working and resolve to the equivalent built-in specs.
type Machine string

// Machine variants.
const (
	// Base is the fully synchronous processor: one global clock, a
	// hierarchical clock distribution network (global grid + five local
	// grids), and ordinary pipe stages between logic blocks.
	Base Machine = "base"
	// GALS is the globally asynchronous locally synchronous processor: five
	// independent clock domains (fetch, decode, integer, FP, memory) joined
	// by mixed-clock FIFOs; no global clock grid.
	GALS Machine = "gals"
)

// MachineSpec is a declarative machine: named clock domains (each with a
// nominal frequency, an optional voltage table and a DVFS policy), an
// assignment of every pipeline structure — fetch, decode/rename/ROB/commit,
// integer, FP, load/store — to a domain, and per-link synchronization FIFO
// settings. The two classic variants are just the built-in specs named
// "base" and "gals" (see BuiltinMachine); any other partitioning of the
// pipeline is a spec you can write — the design space the paper explores.
// Its JSON form is accepted by Options.MachineSpec, the galsimd /machines
// endpoint and the galsim -machine flag.
type MachineSpec = machine.Spec

// ClockDomainSpec declares one clock domain of a MachineSpec.
type ClockDomainSpec = machine.DomainSpec

// MachineLinkSpec overrides one link class's synchronization FIFO geometry
// in a MachineSpec.
type MachineLinkSpec = machine.LinkSpec

// VoltagePoint is one entry of a clock domain's voltage table.
type VoltagePoint = machine.VoltPoint

// UnknownMachineError reports a Machine name that names no built-in spec
// (and, on the galsimd service, no uploaded one). Options.Validate returns
// it (errors.As-able) so callers can list the alternatives.
type UnknownMachineError = machine.UnknownError

// ParseMachineSpec decodes and validates a JSON machine spec (the format
// accepted by the galsimd /machines endpoint and the -machine <file.json>
// CLI flag). Unknown fields are rejected so typos fail loudly.
func ParseMachineSpec(data []byte) (MachineSpec, error) {
	return machine.Parse(data)
}

// Machines returns the built-in machine names. The returned slice is a
// fresh copy on every call; callers may mutate it freely.
func Machines() []string { return machine.BuiltinNames() }

// BuiltinMachine returns a built-in machine as a full MachineSpec — the
// natural starting point for a custom topology ("" selects base). Running
// an unmodified built-in spec is bit-identical to naming it via
// Options.Machine and hits the same result-cache entries.
func BuiltinMachine(name string) (MachineSpec, error) {
	return machine.ByName(name)
}

// MachineStructures lists the pipeline structures a MachineSpec assigns to
// clock domains, in pipeline order. The returned slice is a fresh copy on
// every call.
func MachineStructures() []string { return machine.Structures() }

// DomainNames lists the clock domain names of the built-in gals machine —
// the keys its runs accept in Options.Slowdowns — in pipeline order. A
// custom machine's runs key slowdowns by its own MachineSpec.DomainNames.
// The returned slice is a fresh copy on every call; callers may mutate it
// freely.
func DomainNames() []string { return campaign.DomainNames() }

// Benchmarks returns the available synthetic benchmark names (stand-ins for
// the paper's Spec95 and Mediabench workloads), sorted by suite then name.
// The returned slice is a fresh copy on every call; callers may mutate it
// freely.
func Benchmarks() []string { return workload.Names() }

// WorkloadProfile is a user-defined workload: a named sequence of
// instruction-mix phases the generator cycles through (see Options.Profile).
// A single-phase profile behaves like a custom benchmark; multiple phases
// give the run time-varying behaviour that DynamicDVFS can react to. Its
// JSON form is accepted by the galsimd service and the galsim-trace CLI.
type WorkloadProfile = workload.ProfileSpec

// WorkloadPhase is one phase of a WorkloadProfile: either a built-in
// benchmark referenced by name or an inline PhaseProfile, running for a
// given number of instructions.
type WorkloadPhase = workload.PhaseSpec

// PhaseProfile statistically characterizes one phase (or one whole custom
// benchmark): instruction mix, branch population behaviour, dependency
// distances, and code/data footprints. It is validated exactly like the
// built-in benchmarks.
type PhaseProfile = workload.Profile

// Mix gives the fraction of dynamic instructions in each class; the
// remainder is plain integer ALU work.
type Mix = workload.Mix

// PatternMix describes the behavioural population of static branches.
type PatternMix = workload.PatternMix

// ParseWorkloadProfile decodes and validates a JSON workload profile (the
// format accepted by the galsimd /workloads endpoint and the galsim-trace
// -profile flag). Unknown fields are rejected so typos fail loudly.
func ParseWorkloadProfile(data []byte) (WorkloadProfile, error) {
	return workload.ParseSpec(data)
}

// ParseSlowdowns parses the CLI syntax for Options.Slowdowns —
// comma-separated domain=factor pairs such as "fp=3,fetch=1.1" — used by
// the galsim and galsim-trace front ends. An empty string yields nil.
// Domain names and factor ranges are checked later by Options.Validate,
// which knows the machine variant.
func ParseSlowdowns(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("galsim: bad slowdown entry %q (want domain=factor)", part)
		}
		f, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("galsim: bad slowdown factor in %q: %v", part, err)
		}
		out[kv[0]] = f
	}
	return out, nil
}

// BenchmarkInfo describes one benchmark's statistical profile.
type BenchmarkInfo struct {
	Name        string
	Suite       string
	BranchFrac  float64
	FPFrac      float64
	MemFrac     float64
	CodeBytes   int
	DataBytes   int
	Description string
}

// Describe returns a benchmark's profile summary.
func Describe(name string) (BenchmarkInfo, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return BenchmarkInfo{}, err
	}
	return BenchmarkInfo{
		Name:       p.Name,
		Suite:      p.Suite,
		BranchFrac: p.Mix.Branch,
		FPFrac:     p.Mix.FPFrac(),
		MemFrac:    p.Mix.MemFrac(),
		CodeBytes:  p.CodeFootprint,
		DataBytes:  p.DataWorkingSet,
		Description: fmt.Sprintf("%s (%s): %.0f%% branches, %.0f%% FP, %.0f%% memory",
			p.Name, p.Suite, 100*p.Mix.Branch, 100*p.Mix.FPFrac(), 100*p.Mix.MemFrac()),
	}, nil
}

// Options configures one simulation run. Zero values select defaults: the
// base machine, 100 000 instructions, full-speed clocks, voltage scaling
// enabled.
type Options struct {
	// Benchmark is the built-in workload name (see Benchmarks). Exactly one
	// of Benchmark, Profile and Trace must be set.
	Benchmark string
	// Profile runs a user-defined (possibly phased) workload instead of a
	// built-in benchmark. Identical profile contents produce identical
	// cache identities under RunMany, regardless of pointer or path.
	Profile *WorkloadProfile
	// Trace replays a recorded instruction trace file (see RecordTrace and
	// cmd/galsim-trace) as the workload. When Instructions is zero the
	// replay defaults to the recorded run's committed-instruction count.
	// Requesting more instructions than the trace records is an error under
	// the recorded configuration (wrapping the stream would fabricate
	// provenance; see campaign.TraceLengthError) but wraps the trace for an
	// explicitly divergent what-if replay. WorkloadSeed is ignored (the
	// stream is fixed).
	Trace string
	// RecordTrace, when non-empty, records the workload stream delivered to
	// the pipeline — including wrong-path fetches — to this file, for later
	// replay via Trace. Recording never alters the run's results. Supported
	// by Run only (RunMany may serve results from cache, where there is no
	// stream to record).
	RecordTrace string
	// Warmup, when non-zero, captures a snapshot of the full machine state —
	// pipeline, caches, predictor, clocks, workload position — at the first
	// decode-cycle boundary with at least this many committed instructions,
	// written to SnapshotOut. Capture is a pure observation: the run's
	// results are byte-identical with or without it. Supported by Run only.
	Warmup uint64
	// SnapshotOut is the file the Warmup capture is written to (a versioned,
	// CRC-checked envelope; see internal/snapshot). Requires Warmup.
	SnapshotOut string
	// SnapshotIn resumes the run from a snapshot file captured under this
	// exact configuration (any instruction budget): the machine restores at
	// the snapshot's committed-instruction count and runs on to
	// Instructions, producing results byte-identical to a cold-start run. A
	// snapshot from any other configuration is rejected. The snapshot's
	// content joins the run's cache identity under RunMany.
	SnapshotIn string
	// Machine names a built-in processor variant (default Base).
	//
	// Deprecated: prefer MachineSpec, which can express any clock-domain
	// topology; Machine remains as an alias resolving to the built-in spec
	// of the same name. Setting both is an error.
	Machine Machine
	// MachineSpec runs a user-defined machine: a named clock-domain
	// topology over the pipeline structures (see MachineSpec). Identical
	// spec contents produce identical cache identities under RunMany and
	// across a galsim-fleet, regardless of pointer or upload path.
	MachineSpec *MachineSpec
	// Instructions is the number committed before the run ends (default
	// 100000).
	Instructions uint64
	// Slowdowns stretches named clock domains: 1.1 = 10% slower clock, 3 =
	// one-third frequency. Keys are DomainNames entries. The base machine
	// accepts only a uniform slowdown under the key "all".
	Slowdowns map[string]float64
	// DisableVoltageScaling keeps every domain at nominal supply voltage
	// even when slowed (frequency-only scaling); by default a slowed
	// domain's voltage is reduced per the paper's Equation 1.
	DisableVoltageScaling bool
	// WorkloadSeed seeds the synthetic instruction stream (default 42).
	WorkloadSeed int64
	// PhaseSeed seeds the random starting phases of the GALS local clocks
	// (default 1).
	PhaseSeed int64
	// MemoryOrdering selects the load/store disambiguation policy:
	// "perfect" (default; the study's oracle model), "conservative" (loads
	// wait for all older stores' addresses), or "addr-match" (loads wait
	// only on same-address older stores).
	MemoryOrdering string
	// LinkStyle selects the GALS inter-domain communication mechanism:
	// "fifo" (default; Chelcea-Nowick mixed-clock FIFOs) or "stretch"
	// (stretchable-clock handshakes, the §3.2 alternative).
	LinkStyle string
	// DynamicDVFS enables the online per-domain frequency/voltage controller
	// (GALS only): every few thousand cycles, execution domains with nearly
	// empty issue queues are slowed (and their voltage dropped), bottleneck
	// domains sped back up — the application-driven dynamic scaling the
	// paper's conclusion anticipates.
	DynamicDVFS bool
	// SampleInterval enables interval sampling: every this many decode-domain
	// cycles the simulator snapshots per-domain IPC, issue-queue occupancy,
	// FIFO depths, stall deltas and DVFS slowdowns into Result.Samples. Zero
	// (the default) disables sampling entirely — the hot path is untouched.
	// Values below 100 cycles are rejected by Validate.
	SampleInterval uint64
	// OnCommit, when non-nil, is invoked for every committed instruction in
	// program order — a tracing hook.
	OnCommit func(CommitEvent)
	// Timeline, when non-nil, attaches a microarchitecture event tracer to
	// the run: DVFS retunes, mixed-clock FIFO stall and backpressure
	// windows, squash/recovery spans and structure-occupancy transitions,
	// exportable as Chrome trace-event JSON via Result.Timeline. Like
	// OnCommit and RecordTrace it observes one execution, so it is
	// supported by Run only and never alters results or cache identities.
	Timeline *TimelineOptions
}

// TimelineOptions configures the tracer attached by Options.Timeline.
// The zero value records up to the default event cap and stops.
type TimelineOptions struct {
	// MaxEvents bounds the event buffer (default 1<<20).
	MaxEvents int
	// FlightRecorder keeps the last MaxEvents events instead of the first:
	// a cheap always-on crash/stall recorder dumped on demand.
	FlightRecorder bool
	// StallThreshold, in decode cycles without a commit, marks the
	// recorder triggered (see Timeline.Triggered) so front ends can dump
	// the flight buffer exactly when a pathological stall happens. 0
	// disables the trigger.
	StallThreshold uint64
	// Detail additionally records per-instruction push/pop instants on the
	// cross-domain links — finer causality at several times the event rate.
	Detail bool
}

// CommitEvent describes one committed instruction for tracing.
type CommitEvent struct {
	Seq          uint64
	PC           uint64
	Class        string
	FetchTimeNs  float64
	IssueTimeNs  float64
	CommitTimeNs float64
	SlipNs       float64
}

// Result reports one run's measurements.
type Result struct {
	Benchmark string
	Machine   Machine

	// Instruction counts.
	Committed        uint64
	Fetched          uint64
	WrongPathFetched uint64

	// Performance.
	SimSeconds float64 // simulated wall-clock time
	IPC        float64 // committed instructions per decode-domain cycle
	MIPS       float64 // committed instructions per simulated microsecond

	// Latency analysis (paper Figures 6-7).
	AvgSlipNs     float64 // mean fetch-to-commit latency
	FIFOSlipShare float64 // share of slip spent in inter-stage links

	// Speculation (paper Figure 8).
	MisspeculationFrac   float64 // wrong-path fraction of all fetched
	BranchMispredictRate float64 // mispredictions per correct-path branch

	// Energy and power (paper Figures 9-10).
	EnergyJoules    float64
	PowerWatts      float64
	EnergyBreakdown map[string]float64 // pJ by macro-block name

	// Structure occupancies.
	IntRATOccupancy float64
	FPRATOccupancy  float64
	ROBOccupancy    float64

	// Cache hit rates.
	L1IHitRate float64
	L1DHitRate float64
	L2HitRate  float64

	// Dynamic DVFS activity (zero unless Options.DynamicDVFS).
	Retunes        uint64
	FinalSlowdowns map[string]float64 // domain name -> final clock slowdown

	// Samples is the interval time-series (nil unless
	// Options.SampleInterval > 0). See WriteSamplesCSV for tabular export.
	Samples []Sample

	// Timeline is the event tracer attached via Options.Timeline (nil
	// otherwise); write it out with Timeline.WriteTrace and load the JSON
	// in Perfetto.
	Timeline *Timeline
}

// RelativePerformance returns other's speed normalized to r (values < 1
// mean other is slower), assuming equal instruction counts.
func (r Result) RelativePerformance(other Result) float64 {
	return r.SimSeconds / other.SimSeconds
}

// Validate reports the first problem with the options without running
// anything: unknown benchmarks, machines, memory orderings, link styles,
// malformed MachineSpecs, and slowdown keys outside the machine's domain
// names all produce errors that list the accepted values. An unknown
// Machine name is reported as an UnknownMachineError (errors.As-able)
// naming the built-ins. Run, RunMany and the galsimd HTTP API all surface
// the same messages.
func (o Options) Validate() error {
	_, err := o.spec()
	return err
}

// spec translates the options into a canonical campaign unit.
func (o Options) spec() (campaign.RunSpec, error) {
	if o.Benchmark == "" && o.Profile == nil && o.Trace == "" {
		return campaign.RunSpec{}, fmt.Errorf("galsim: Options.Benchmark is required (one of %v) unless Options.Profile or Options.Trace is set", Benchmarks())
	}
	spec := campaign.RunSpec{
		Benchmark:      o.Benchmark,
		Profile:        o.Profile,
		Machine:        string(o.Machine),
		MachineSpec:    o.MachineSpec,
		Instructions:   o.Instructions,
		Slowdowns:      o.Slowdowns,
		FreqOnly:       o.DisableVoltageScaling,
		WorkloadSeed:   o.WorkloadSeed,
		PhaseSeed:      o.PhaseSeed,
		MemoryOrdering: o.MemoryOrdering,
		LinkStyle:      o.LinkStyle,
		DynamicDVFS:    o.DynamicDVFS,
		SampleInterval: o.SampleInterval,
	}
	if o.Trace != "" {
		spec.Trace = &campaign.TraceRef{Path: o.Trace}
		if o.Instructions == 0 {
			// Replays default to the recorded run's length. Validate (below)
			// reports unreadable or malformed files.
			if meta, err := trace.ReadMeta(o.Trace); err == nil {
				spec.Instructions = meta.Instructions
			}
		}
	}
	if o.SnapshotIn != "" {
		spec.Snapshot = &campaign.SnapshotRef{Path: o.SnapshotIn}
	}
	if o.SnapshotOut != "" && o.Warmup == 0 {
		return campaign.RunSpec{}, fmt.Errorf("galsim: Options.SnapshotOut requires Options.Warmup to say when to capture")
	}
	if o.Warmup > 0 && o.SnapshotOut == "" {
		return campaign.RunSpec{}, fmt.Errorf("galsim: Options.Warmup requires Options.SnapshotOut to receive the capture")
	}
	if err := spec.Validate(); err != nil {
		return campaign.RunSpec{}, err
	}
	if o.Warmup > 0 {
		if budget := spec.Canonical().Instructions; o.Warmup >= budget {
			return campaign.RunSpec{}, fmt.Errorf("galsim: Options.Warmup (%d) must be below the run's %d-instruction budget", o.Warmup, budget)
		}
	}
	return spec, nil
}

// Run executes one simulation.
func Run(o Options) (Result, error) {
	spec, err := o.spec()
	if err != nil {
		return Result{}, err
	}
	var hook func(*isa.Instr)
	if o.OnCommit != nil {
		user := o.OnCommit
		hook = func(in *isa.Instr) {
			user(CommitEvent{
				Seq:          uint64(in.Seq),
				PC:           in.PC,
				Class:        in.Class.String(),
				FetchTimeNs:  in.FetchTime.Nanoseconds(),
				IssueTimeNs:  in.IssueTime.Nanoseconds(),
				CommitTimeNs: in.CommitTime.Nanoseconds(),
				SlipNs:       in.Slip().Nanoseconds(),
			})
		}
	}
	var tap campaign.TimelineTap
	if o.Timeline != nil {
		tap = campaign.TimelineTap{
			Recorder:       NewTimeline(o.Timeline.MaxEvents, o.Timeline.FlightRecorder),
			Detail:         o.Timeline.Detail,
			StallThreshold: o.Timeline.StallThreshold,
		}
	}
	execOpts := campaign.ExecOpts{
		OnCommit:    hook,
		Tap:         tap,
		Warmup:      o.Warmup,
		SnapshotOut: o.SnapshotOut,
	}
	var st pipeline.Stats
	if o.RecordTrace != "" {
		f, err := os.Create(o.RecordTrace)
		if err != nil {
			return Result{}, fmt.Errorf("galsim: creating trace file: %w", err)
		}
		execOpts.TraceOut = f
		st, err = campaign.ExecuteOpts(spec, execOpts)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("galsim: closing trace file: %w", cerr)
		}
		if err != nil {
			os.Remove(o.RecordTrace) // don't leave a truncated trace behind
			// A failed run still returns the timeline: the flight recorder's
			// whole point is a post-mortem of the events leading to failure.
			return Result{Timeline: tap.Recorder}, err
		}
	} else {
		if st, err = campaign.ExecuteOpts(spec, execOpts); err != nil {
			return Result{Timeline: tap.Recorder}, err
		}
	}
	r := resultFrom(spec.WorkloadName(), o, st)
	r.Timeline = tap.Recorder
	return r, nil
}

// Backend executes batches of simulation units and returns their stats in
// input order: the process-local campaign engine (worker pool plus
// content-addressed result cache) or a distributed fleet coordinator that
// shards the batch across galsimd workers. Every backend is deterministic —
// results are byte-identical across backends, worker counts and retries.
type Backend = campaign.Backend

// LocalBackend returns the process-wide shared engine as a Backend: the
// default execution substrate of RunMany.
func LocalBackend() Backend { return campaign.Shared() }

// RunMany executes the given runs concurrently on a worker pool sized to
// GOMAXPROCS and returns their results in input order. Identical option
// sets — within one call or across calls — are simulated only once and
// served from an in-memory cache. Cancelling ctx stops scheduling new runs
// promptly and returns the context's error. Options.OnCommit is not
// supported (per-instruction tracing is inherently serial; use Run).
func RunMany(ctx context.Context, opts []Options) ([]Result, error) {
	return RunManyOn(ctx, campaign.Shared(), opts)
}

// RunManyOn is RunMany on an explicit execution backend. Within this
// module the two backends are LocalBackend (the shared engine — RunMany's
// substrate) and the cluster coordinator used by cmd/galsim-fleet, which
// fans the batch out across a galsimd worker fleet; external callers
// wanting distributed execution should drive a galsim-fleet coordinator's
// HTTP API instead. Results arrive in input order either way,
// byte-identical across backends.
func RunManyOn(ctx context.Context, b Backend, opts []Options) ([]Result, error) {
	return RunManyProgressOn(ctx, b, opts, nil)
}

// RunManyProgress is RunMany with live progress reporting: fn (when non-nil)
// receives a snapshot after every finished unit — completed, failed and
// cache-served counts out of the batch total. fn is called from worker
// goroutines and must be safe for concurrent use.
func RunManyProgress(ctx context.Context, opts []Options, fn ProgressFunc) ([]Result, error) {
	return RunManyProgressOn(ctx, campaign.Shared(), opts, fn)
}

// RunManyProgressOn is RunManyProgress on an explicit execution backend.
// Backends without native progress support still work: fn then receives a
// single terminal snapshot.
func RunManyProgressOn(ctx context.Context, b Backend, opts []Options, fn ProgressFunc) ([]Result, error) {
	if len(opts) == 0 {
		return nil, nil
	}
	specs := make([]campaign.RunSpec, len(opts))
	for i, o := range opts {
		if o.OnCommit != nil {
			return nil, fmt.Errorf("galsim: RunMany does not support Options.OnCommit; use Run for traced runs")
		}
		if o.RecordTrace != "" {
			return nil, fmt.Errorf("galsim: RunMany does not support Options.RecordTrace; use Run to record a trace")
		}
		if o.Timeline != nil {
			return nil, fmt.Errorf("galsim: RunMany does not support Options.Timeline; use Run for timeline-traced runs")
		}
		if o.Warmup != 0 || o.SnapshotOut != "" {
			return nil, fmt.Errorf("galsim: RunMany does not support Options.Warmup/SnapshotOut; use Run to capture a snapshot (Options.SnapshotIn is fine: it is part of the run's identity)")
		}
		spec, err := o.spec()
		if err != nil {
			return nil, fmt.Errorf("galsim: options[%d]: %w", i, err)
		}
		specs[i] = spec
	}
	stats, err := campaign.RunAllOn(ctx, b, specs, fn)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(opts))
	for i, o := range opts {
		results[i] = resultFrom(specs[i].WorkloadName(), o, stats[i])
	}
	return results, nil
}

func resultFrom(name string, o Options, st pipeline.Stats) Result {
	switch {
	case o.MachineSpec != nil:
		o.Machine = Machine(o.MachineSpec.Name)
	case o.Machine == "":
		o.Machine = Base
	}
	breakdown := map[string]float64{}
	for _, b := range power.Blocks() {
		breakdown[b.String()] = st.EnergyBreakdown[b]
	}
	finalSlow := map[string]float64{}
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		finalSlow[d.String()] = st.FinalSlowdowns[d]
	}
	return Result{
		Benchmark:            name,
		Machine:              o.Machine,
		Committed:            st.Committed,
		Fetched:              st.Fetched,
		WrongPathFetched:     st.WrongPathFetched,
		SimSeconds:           st.SimTime.Seconds(),
		IPC:                  st.IPC(),
		MIPS:                 st.InstrPerSecond() / 1e6,
		AvgSlipNs:            st.AvgSlip().Nanoseconds(),
		FIFOSlipShare:        st.FIFOSlipShare(),
		MisspeculationFrac:   st.MisspeculationFrac(),
		BranchMispredictRate: st.MispredictRate(),
		EnergyJoules:         st.EnergyJoules(),
		PowerWatts:           st.AvgPowerWatts(),
		EnergyBreakdown:      breakdown,
		IntRATOccupancy:      st.AvgIntRAT,
		FPRATOccupancy:       st.AvgFPRAT,
		ROBOccupancy:         st.ROB.AvgOccupancy,
		L1IHitRate:           st.L1I.HitRate(),
		L1DHitRate:           st.L1D.HitRate(),
		L2HitRate:            st.L2.HitRate(),
		Retunes:              st.Retunes,
		FinalSlowdowns:       finalSlow,
		Samples:              st.Samples,
	}
}
