package timeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// tsMicros formats femtoseconds of sim time as microseconds with
// picosecond precision, the unit of the Chrome trace-event "ts" field.
// Fixed precision keeps the output bit-stable for golden fixtures.
func tsMicros(ts simFS) string {
	return strconv.FormatFloat(float64(ts)/1e9, 'f', 6, 64)
}

type simFS = int64

// WriteTrace writes the retained events as Chrome trace-event JSON
// (JSON Array Format), loadable in Perfetto. The output is deterministic:
// track metadata in registration order, events in record order, and no
// map iteration anywhere.
//
// Flight-recorder dumps may have lost the begin of an open window or the
// end of a truncated one; the writer drops orphan E events and closes
// still-open B events at the final timestamp so the stream always has
// matched B/E pairs.
func (r *Recorder) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Track metadata: process and thread names. Counter tracks carry
	// their name on each C event instead of a thread_name record.
	for i, p := range r.procs {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			i+1, strconv.Quote(p)))
	}
	for i, t := range r.tracks {
		if t.counter {
			continue
		}
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			t.proc+1, i+1, strconv.Quote(t.name)))
	}

	events := r.Events()
	depth := make([]int, len(r.tracks))
	type open struct {
		track TrackID
		name  NameID
	}
	var stack []open
	var last simFS
	for _, ev := range events {
		t := r.tracks[ev.Track]
		pid, tid := t.proc+1, int(ev.Track)+1
		ts := tsMicros(simFS(ev.TS))
		last = simFS(ev.TS)
		switch ev.Kind {
		case KindCounter:
			emit(fmt.Sprintf(`{"ph":"C","pid":%d,"ts":%s,"name":%s,"args":{"value":%d}}`,
				pid, ts, strconv.Quote(t.name), ev.Arg))
		case KindInstant:
			emit(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%s,"args":{"v":%d}}`,
				pid, tid, ts, strconv.Quote(r.names[ev.Name]), ev.Arg))
		case KindBegin:
			depth[ev.Track]++
			stack = append(stack, open{ev.Track, ev.Name})
			emit(fmt.Sprintf(`{"ph":"B","pid":%d,"tid":%d,"ts":%s,"name":%s,"args":{"v":%d}}`,
				pid, tid, ts, strconv.Quote(r.names[ev.Name]), ev.Arg))
		case KindEnd:
			if depth[ev.Track] == 0 {
				continue // orphan end: its begin fell off the flight ring
			}
			depth[ev.Track]--
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].track == ev.Track {
					stack = append(stack[:i], stack[i+1:]...)
					break
				}
			}
			emit(fmt.Sprintf(`{"ph":"E","pid":%d,"tid":%d,"ts":%s,"name":%s}`,
				pid, tid, ts, strconv.Quote(r.names[ev.Name])))
		}
	}
	// Close windows still open at the end of the dump, innermost first.
	for i := len(stack) - 1; i >= 0; i-- {
		o := stack[i]
		t := r.tracks[o.track]
		emit(fmt.Sprintf(`{"ph":"E","pid":%d,"tid":%d,"ts":%s,"name":%s}`,
			t.proc+1, int(o.track)+1, tsMicros(last), strconv.Quote(r.names[o.name])))
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// TraceJSON renders WriteTrace to a byte slice.
func (r *Recorder) TraceJSON() []byte {
	var buf bytes.Buffer
	r.WriteTrace(&buf) // cannot fail on a bytes.Buffer
	return buf.Bytes()
}

// traceEvent is the subset of the Chrome trace-event schema Validate
// inspects.
type traceEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Name string  `json:"name"`
}

// Validate checks that data is well-formed trace-event JSON: it parses as
// a JSON array, timestamps are non-decreasing per (pid,tid) track, and
// every E matches an open B on its track (with the same name, LIFO
// order). X (complete) and i (instant) events only need monotonic ts;
// M (metadata) events are skipped.
func Validate(data []byte) error {
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace is not a JSON array of events: %w", err)
	}
	type key struct{ pid, tid int }
	lastTS := map[key]float64{}
	stacks := map[key][]string{}
	for i, ev := range events {
		switch ev.Ph {
		case "M":
			continue
		case "B", "E", "i", "X", "C":
		default:
			return fmt.Errorf("event %d: unsupported phase %q", i, ev.Ph)
		}
		k := key{ev.Pid, ev.Tid}
		if ev.Ph == "C" {
			// Counter tracks are keyed by name, not tid.
			k = key{ev.Pid, -1}
		}
		if prev, ok := lastTS[k]; ok && ev.Ts < prev {
			return fmt.Errorf("event %d (%s %q): ts %v < previous %v on pid=%d tid=%d",
				i, ev.Ph, ev.Name, ev.Ts, prev, ev.Pid, ev.Tid)
		}
		lastTS[k] = ev.Ts
		switch ev.Ph {
		case "B":
			stacks[k] = append(stacks[k], ev.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("event %d: E %q with no open B on pid=%d tid=%d", i, ev.Name, ev.Pid, ev.Tid)
			}
			top := st[len(st)-1]
			if ev.Name != "" && top != ev.Name {
				return fmt.Errorf("event %d: E %q does not match open B %q on pid=%d tid=%d", i, ev.Name, top, ev.Pid, ev.Tid)
			}
			stacks[k] = st[:len(st)-1]
		case "X":
			if ev.Dur < 0 {
				return fmt.Errorf("event %d: X %q with negative dur", i, ev.Name)
			}
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("unclosed B %q on pid=%d tid=%d", st[len(st)-1], k.pid, k.tid)
		}
	}
	return nil
}
