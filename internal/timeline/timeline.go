// Package timeline is an opt-in, ring-buffered event tracer for the
// simulator and the fleet around it. It follows the same discipline as the
// interval sampler: value-typed records, no allocation on the hot path
// after setup, and — when tracing is off — a single predictable branch at
// every tap site (`if c.tl != nil`), so the allocation-free simulation
// path is untouched.
//
// Two layers share the package:
//
//   - Recorder captures microarchitectural events (clock retunes, FIFO
//     stall windows, squash/recovery spans, occupancy transitions) in sim
//     time and exports them as Chrome trace-event JSON loadable in
//     Perfetto: one track per clock domain, one per cross-domain link,
//     plus counter tracks for structure occupancy.
//   - Span / SpanCollector record wall-clock spans across the fleet
//     (service → coordinator → worker → engine) under one W3C trace ID,
//     rendered in the same trace-event JSON so a sweep's critical path is
//     visible in one Perfetto view.
//
// A Recorder is single-goroutine, like the simulator core it instruments.
// SpanCollector is safe for concurrent use.
package timeline

import "galsim/internal/simtime"

// Kind classifies an Event. The values map onto Chrome trace-event
// phases: instant (i), duration begin/end (B/E) and counter (C).
type Kind uint8

const (
	KindInstant Kind = iota
	KindBegin
	KindEnd
	KindCounter
)

// TrackID identifies a timeline row registered with RegisterTrack.
type TrackID uint16

// NameID identifies an interned event name.
type NameID uint16

// Event is one value-typed trace record. 24 bytes; events live in one
// preallocated slice, so recording is a bounds check and a store.
type Event struct {
	TS    simtime.Time // femtoseconds of simulated time
	Arg   int64        // counter value, sequence number, or ppm slowdown
	Name  NameID
	Track TrackID
	Kind  Kind
}

// Options configures a Recorder.
type Options struct {
	// MaxEvents bounds the buffer. 0 means DefaultMaxEvents.
	MaxEvents int
	// Flight selects flight-recorder mode: when the buffer fills, the
	// oldest events are overwritten so the last MaxEvents are always
	// retained cheaply. Off (the default) the buffer stops growing and
	// further events are counted as dropped.
	Flight bool
}

// DefaultMaxEvents is the buffer cap when Options.MaxEvents is 0.
const DefaultMaxEvents = 1 << 20

// Recorder captures events into a preallocated ring. It is not safe for
// concurrent use; the simulator is single-goroutine and so is its tracer.
type Recorder struct {
	flight    bool
	max       int
	events    []Event
	head      int // next overwrite position once the ring is full (flight)
	dropped   uint64
	triggered bool

	procs  []string
	tracks []trackInfo
	names  []string
}

type trackInfo struct {
	proc    int
	name    string
	counter bool
}

// NewRecorder returns a Recorder. Small buffers (flight rings) are
// preallocated to their full cap so recording never reallocates; large
// caps start at 4096 events and grow geometrically up to the cap, never
// beyond.
func NewRecorder(o Options) *Recorder {
	max := o.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	initial := 4096
	if initial > max {
		initial = max
	}
	return &Recorder{
		flight: o.Flight,
		max:    max,
		events: make([]Event, 0, initial),
	}
}

// Flight reports whether the recorder is in flight-recorder mode.
func (r *Recorder) Flight() bool { return r.flight }

// RegisterTrack adds a timeline row under the named process and returns
// its ID. Counter tracks render as Perfetto counter tracks; others as
// threads. Call during setup, not on the hot path.
func (r *Recorder) RegisterTrack(process, name string, counter bool) TrackID {
	proc := -1
	for i, p := range r.procs {
		if p == process {
			proc = i
			break
		}
	}
	if proc < 0 {
		proc = len(r.procs)
		r.procs = append(r.procs, process)
	}
	r.tracks = append(r.tracks, trackInfo{proc: proc, name: name, counter: counter})
	return TrackID(len(r.tracks) - 1)
}

// InternName registers an event name and returns its ID. Call during
// setup, not on the hot path.
func (r *Recorder) InternName(s string) NameID {
	for i, n := range r.names {
		if n == s {
			return NameID(i)
		}
	}
	r.names = append(r.names, s)
	return NameID(len(r.names) - 1)
}

// Record appends one event. In flight mode a full ring overwrites the
// oldest event; otherwise a full buffer counts drops.
func (r *Recorder) Record(ts simtime.Time, kind Kind, track TrackID, name NameID, arg int64) {
	if len(r.events) < r.max {
		r.events = append(r.events, Event{TS: ts, Arg: arg, Name: name, Track: track, Kind: kind})
		return
	}
	if !r.flight {
		r.dropped++
		return
	}
	r.events[r.head] = Event{TS: ts, Arg: arg, Name: name, Track: track, Kind: kind}
	r.head++
	if r.head == r.max {
		r.head = 0
	}
	r.dropped++ // in flight mode: count of overwritten events
}

// Len is the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped is the number of events lost to the cap (full mode) or
// overwritten (flight mode).
func (r *Recorder) Dropped() uint64 { return r.dropped }

// MarkTriggered flags the recorder for an on-demand dump — for example
// when a stall exceeded the configured threshold. Front ends check
// Triggered after a run to decide whether to write the flight buffer.
func (r *Recorder) MarkTriggered() { r.triggered = true }

// Triggered reports whether MarkTriggered was called.
func (r *Recorder) Triggered() bool { return r.triggered }

// Events returns the retained events in record order (unwrapping the
// flight ring). The returned slice aliases internal storage in full mode.
func (r *Recorder) Events() []Event {
	if !r.flight || len(r.events) < r.max || r.head == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.head:]...)
	out = append(out, r.events[:r.head]...)
	return out
}

// TrackName returns the registered name of a track, for tests and for
// converting sim events to fleet spans.
func (r *Recorder) TrackName(id TrackID) string {
	if int(id) >= len(r.tracks) {
		return ""
	}
	return r.tracks[id].name
}

// EventName returns the interned string of a name ID.
func (r *Recorder) EventName(id NameID) string {
	if int(id) >= len(r.names) {
		return ""
	}
	return r.names[id]
}
