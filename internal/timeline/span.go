package timeline

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Span is one wall-clock operation in the fleet, linked into a trace by
// TraceID and ParentID. Spans travel over the cluster wire protocol
// (CompleteRequest.Spans), so the type is JSON-tagged and value-only.
type Span struct {
	TraceID     string            `json:"trace_id"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	Name        string            `json:"name"`
	Service     string            `json:"service"`
	StartUnixNs int64             `json:"start_unix_ns"`
	EndUnixNs   int64             `json:"end_unix_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// NewTraceID returns a random 32-hex-digit W3C trace ID.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a random 16-hex-digit W3C span ID.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("timeline: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// FormatTraceParent renders a W3C traceparent header value
// (version 00, sampled flag set).
func FormatTraceParent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceParent parses a W3C traceparent header value. It accepts any
// version, requires the standard field widths, and rejects the all-zero
// IDs the spec reserves as invalid.
func ParseTraceParent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return "", "", false
	}
	ver, tr, sp := parts[0], parts[1], parts[2]
	if len(ver) != 2 || !isHex(ver) || ver == "ff" {
		return "", "", false
	}
	if len(tr) != 32 || !isHex(tr) || tr == strings.Repeat("0", 32) {
		return "", "", false
	}
	if len(sp) != 16 || !isHex(sp) || sp == strings.Repeat("0", 16) {
		return "", "", false
	}
	return strings.ToLower(tr), strings.ToLower(sp), true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case '0' <= c && c <= '9', 'a' <= c && c <= 'f', 'A' <= c && c <= 'F':
		default:
			return false
		}
	}
	return true
}

// DefaultMaxSpans bounds a SpanCollector when the configured cap is 0.
const DefaultMaxSpans = 1 << 14

// SpanCollector is a bounded, concurrency-safe store of finished spans,
// shared between the service, the coordinator and in-process workers.
type SpanCollector struct {
	mu      sync.Mutex
	max     int
	spans   []Span
	dropped uint64
}

// NewSpanCollector returns a collector retaining at most max spans
// (DefaultMaxSpans when max <= 0).
func NewSpanCollector(max int) *SpanCollector {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &SpanCollector{max: max}
}

// Add records finished spans, dropping (and counting) any beyond the cap.
func (c *SpanCollector) Add(spans ...Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range spans {
		if len(c.spans) >= c.max {
			c.dropped += uint64(len(spans) - i)
			return
		}
		c.spans = append(c.spans, s)
	}
}

// ForTrace returns a copy of all spans recorded under the trace ID.
func (c *SpanCollector) ForTrace(traceID string) []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Span
	for _, s := range c.spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Snapshot returns a copy of every retained span, across all traces.
func (c *SpanCollector) Snapshot() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Len is the number of retained spans.
func (c *SpanCollector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Dropped is the number of spans lost to the cap.
func (c *SpanCollector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// WriteSpansTrace renders spans as Chrome trace-event JSON: one Perfetto
// process per Service, X (complete) events laid out in non-overlapping
// lanes, timestamps rebased to the earliest span start. Output is
// deterministic for a given span set.
func WriteSpansTrace(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.StartUnixNs != b.StartUnixNs {
			return a.StartUnixNs < b.StartUnixNs
		}
		return a.SpanID < b.SpanID
	})

	var base int64
	for i, s := range sorted {
		if i == 0 || s.StartUnixNs < base {
			base = s.StartUnixNs
		}
	}

	pids := map[string]int{}
	var services []string
	for _, s := range sorted {
		if _, ok := pids[s.Service]; !ok {
			pids[s.Service] = len(services) + 1
			services = append(services, s.Service)
		}
	}

	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	for i, svc := range services {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			i+1, strconv.Quote(svc)))
	}

	// Greedy lane assignment per service: a span takes the first lane
	// whose previous occupant ended at or before its start.
	laneEnds := map[string][]int64{}
	for _, s := range sorted {
		lanes := laneEnds[s.Service]
		lane := -1
		for i, end := range lanes {
			if end <= s.StartUnixNs {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[lane] = s.EndUnixNs
		laneEnds[s.Service] = lanes

		ts := float64(s.StartUnixNs-base) / 1e3
		dur := float64(s.EndUnixNs-s.StartUnixNs) / 1e3
		if dur < 0 {
			dur = 0
		}
		var args strings.Builder
		fmt.Fprintf(&args, `"span_id":%s`, strconv.Quote(s.SpanID))
		if s.ParentID != "" {
			fmt.Fprintf(&args, `,"parent_id":%s`, strconv.Quote(s.ParentID))
		}
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&args, `,%s:%s`, strconv.Quote(k), strconv.Quote(s.Attrs[k]))
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{%s}}`,
			pids[s.Service], lane+1,
			strconv.FormatFloat(ts, 'f', 3, 64),
			strconv.FormatFloat(dur, 'f', 3, 64),
			strconv.Quote(s.Name), args.String()))
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// SimSpans converts the matched B/E windows of a recorder dump into
// spans under the given trace, rebasing simulated time linearly onto the
// [startNs, endNs] wall-clock window of the enclosing span. This is how
// a worker ships a job's in-sim stall and recovery windows back to the
// coordinator so they appear, correctly parented, in the fleet trace.
// At most max spans are returned (0 means no limit).
func (r *Recorder) SimSpans(traceID, parentID, service string, startNs, endNs int64, max int) []Span {
	events := r.Events()
	if len(events) == 0 {
		return nil
	}
	t0 := int64(events[0].TS)
	t1 := int64(events[len(events)-1].TS)
	scale := 0.0
	if t1 > t0 {
		scale = float64(endNs-startNs) / float64(t1-t0)
	}
	rebase := func(ts int64) int64 {
		return startNs + int64(float64(ts-t0)*scale)
	}
	type open struct {
		name NameID
		ts   int64
	}
	begins := map[TrackID][]open{}
	var out []Span
	for _, ev := range events {
		switch ev.Kind {
		case KindBegin:
			begins[ev.Track] = append(begins[ev.Track], open{ev.Name, int64(ev.TS)})
		case KindEnd:
			st := begins[ev.Track]
			if len(st) == 0 {
				continue
			}
			b := st[len(st)-1]
			begins[ev.Track] = st[:len(st)-1]
			if max > 0 && len(out) >= max {
				continue
			}
			out = append(out, Span{
				TraceID:     traceID,
				SpanID:      NewSpanID(),
				ParentID:    parentID,
				Name:        r.EventName(b.name) + " " + r.TrackName(ev.Track),
				Service:     service,
				StartUnixNs: rebase(b.ts),
				EndUnixNs:   rebase(int64(ev.TS)),
			})
		}
	}
	return out
}
