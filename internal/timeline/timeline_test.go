package timeline

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"galsim/internal/simtime"
)

// rec builds a recorder with one process, one plain track and one counter
// track, plus two interned names.
func testRecorder(o Options) (*Recorder, TrackID, TrackID, NameID, NameID) {
	r := NewRecorder(o)
	trk := r.RegisterTrack("sim", "domain fetch", false)
	ctr := r.RegisterTrack("sim", "occ rob", true)
	stall := r.InternName("stall")
	push := r.InternName("push")
	return r, trk, ctr, stall, push
}

func TestRecorderFullModeDrops(t *testing.T) {
	r, trk, _, stall, _ := testRecorder(Options{MaxEvents: 4})
	for i := 0; i < 6; i++ {
		r.Record(simtime.Time(i), KindInstant, trk, stall, int64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.Arg != int64(i) {
			t.Fatalf("full mode keeps the first events: got arg %d at %d", ev.Arg, i)
		}
	}
}

func TestRecorderFlightWrap(t *testing.T) {
	r, trk, _, stall, _ := testRecorder(Options{MaxEvents: 4, Flight: true})
	for i := 0; i < 10; i++ {
		r.Record(simtime.Time(i), KindInstant, trk, stall, int64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	evs := r.Events()
	want := []int64{6, 7, 8, 9}
	for i, ev := range evs {
		if ev.Arg != want[i] {
			t.Fatalf("flight ring keeps the last events in order: got %d at %d, want %d", ev.Arg, i, want[i])
		}
		if i > 0 && evs[i].TS < evs[i-1].TS {
			t.Fatalf("unwrapped ring is not time-ordered at %d", i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6 overwritten", r.Dropped())
	}
}

func TestWriteTraceValidates(t *testing.T) {
	r, trk, ctr, stall, push := testRecorder(Options{})
	r.Record(0, KindCounter, ctr, 0, 3)
	r.Record(100, KindBegin, trk, stall, 0)
	r.Record(150, KindInstant, trk, push, 7)
	r.Record(200, KindEnd, trk, stall, 0)
	r.Record(300, KindCounter, ctr, 0, 5)
	data := r.TraceJSON()
	if err := Validate(data); err != nil {
		t.Fatalf("Validate: %v\n%s", err, data)
	}
	for _, want := range []string{`"process_name"`, `"thread_name"`, `"domain fetch"`, `"occ rob"`, `"ph":"B"`, `"ph":"E"`, `"ph":"i"`, `"ph":"C"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("trace missing %s:\n%s", want, data)
		}
	}
}

// TestWriteTraceNormalizesFlightDump covers the two truncation artifacts of
// a flight ring: an E whose B fell off the front (dropped) and a B whose E
// never arrived (closed at the final timestamp).
func TestWriteTraceNormalizesFlightDump(t *testing.T) {
	r, trk, _, stall, push := testRecorder(Options{})
	r.Record(100, KindEnd, trk, stall, 0)  // orphan end
	r.Record(200, KindBegin, trk, push, 0) // never closed
	r.Record(250, KindInstant, trk, stall, 0)
	data := r.TraceJSON()
	if err := Validate(data); err != nil {
		t.Fatalf("normalized dump must validate: %v\n%s", err, data)
	}
	s := string(data)
	if strings.Contains(s, `"ph":"E","pid":1,"tid":1,"ts":0.000100`) {
		t.Fatalf("orphan E survived:\n%s", s)
	}
	if !strings.Contains(s, `"ph":"E"`) {
		t.Fatalf("open B was not auto-closed:\n%s", s)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"non-monotonic": `[{"ph":"i","pid":1,"tid":1,"ts":5,"name":"a"},{"ph":"i","pid":1,"tid":1,"ts":4,"name":"b"}]`,
		"orphan end":    `[{"ph":"E","pid":1,"tid":1,"ts":1,"name":"a"}]`,
		"name mismatch": `[{"ph":"B","pid":1,"tid":1,"ts":1,"name":"a"},{"ph":"E","pid":1,"tid":1,"ts":2,"name":"b"}]`,
		"unclosed":      `[{"ph":"B","pid":1,"tid":1,"ts":1,"name":"a"}]`,
		"negative dur":  `[{"ph":"X","pid":1,"tid":1,"ts":1,"dur":-2,"name":"a"}]`,
		"not an array":  `{"ph":"B"}`,
	}
	for name, data := range cases {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", name)
		}
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr, sp := NewTraceID(), NewSpanID()
	h := FormatTraceParent(tr, sp)
	gotTr, gotSp, ok := ParseTraceParent(h)
	if !ok || gotTr != tr || gotSp != sp {
		t.Fatalf("round trip failed: %q -> (%q, %q, %v)", h, gotTr, gotSp, ok)
	}
	bad := []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-" + sp + "-01",
		"00-" + tr + "-" + strings.Repeat("0", 16) + "-01",
		"ff-" + tr + "-" + sp + "-01",
		"zz-" + tr + "-" + sp + "-01",
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceParent(h); ok {
			t.Errorf("ParseTraceParent accepted %q", h)
		}
	}
}

func TestSpanCollectorBounds(t *testing.T) {
	c := NewSpanCollector(3)
	mk := func(id string) Span { return Span{TraceID: "t", SpanID: id, Service: "s"} }
	c.Add(mk("a"), mk("b"))
	c.Add(mk("c"), mk("d"), mk("e"))
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want cap 3", c.Len())
	}
	if c.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", c.Dropped())
	}
	if got := len(c.ForTrace("t")); got != 3 {
		t.Fatalf("ForTrace = %d spans, want 3", got)
	}
	if got := len(c.ForTrace("other")); got != 0 {
		t.Fatalf("ForTrace(other) = %d spans, want 0", got)
	}
}

// TestSpanCollectorConcurrent hammers the collector from many goroutines;
// run under -race this is the data-race regression test for the one
// concurrent structure in the package.
func TestSpanCollectorConcurrent(t *testing.T) {
	c := NewSpanCollector(10000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Add(Span{TraceID: fmt.Sprintf("t%d", g%2), SpanID: NewSpanID(), Service: "w"})
				_ = c.ForTrace("t0")
				_ = c.Len()
				_ = c.Dropped()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", c.Len(), 8*200)
	}
}

func TestWriteSpansTraceLanesAndValidity(t *testing.T) {
	spans := []Span{
		{TraceID: "t", SpanID: "s1", Name: "campaign", Service: "coordinator", StartUnixNs: 1000, EndUnixNs: 9000},
		{TraceID: "t", SpanID: "s2", ParentID: "s1", Name: "job lease", Service: "coordinator", StartUnixNs: 2000, EndUnixNs: 5000},
		{TraceID: "t", SpanID: "s3", ParentID: "s1", Name: "job lease", Service: "coordinator", StartUnixNs: 2500, EndUnixNs: 6000},
		{TraceID: "t", SpanID: "s4", ParentID: "s2", Name: "execute", Service: "worker w1", StartUnixNs: 2100, EndUnixNs: 4900,
			Attrs: map[string]string{"job_id": "1", "benchmark": "gcc"}},
	}
	var buf bytes.Buffer
	if err := WriteSpansTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("Validate: %v\n%s", err, buf.Bytes())
	}
	s := buf.String()
	// The two overlapping leases must land on different lanes of the same
	// coordinator process.
	if !strings.Contains(s, `"tid":2`) {
		t.Fatalf("overlapping spans share a lane:\n%s", s)
	}
	for _, want := range []string{`"parent_id":"s1"`, `"benchmark":"gcc"`, `"name":"campaign"`, `"name":"execute"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("spans trace missing %s:\n%s", want, s)
		}
	}
}

func TestSimSpansRebase(t *testing.T) {
	r, trk, _, stall, _ := testRecorder(Options{})
	r.Record(0, KindInstant, trk, stall, 0)
	r.Record(1000, KindBegin, trk, stall, 0)
	r.Record(2000, KindEnd, trk, stall, 0)
	r.Record(4000, KindInstant, trk, stall, 0)
	spans := r.SimSpans("trace", "parent", "worker w1", 10_000, 14_000, 0)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.TraceID != "trace" || sp.ParentID != "parent" || sp.Service != "worker w1" {
		t.Fatalf("span identity wrong: %+v", sp)
	}
	// Sim time [0,4000] maps onto wall [10000,14000]; the window [1000,2000]
	// lands at [11000,12000].
	if sp.StartUnixNs != 11_000 || sp.EndUnixNs != 12_000 {
		t.Fatalf("rebase wrong: [%d,%d], want [11000,12000]", sp.StartUnixNs, sp.EndUnixNs)
	}
	if !strings.Contains(sp.Name, "stall") || !strings.Contains(sp.Name, "domain fetch") {
		t.Fatalf("span name %q should carry event and track names", sp.Name)
	}
}

func TestSimSpansCap(t *testing.T) {
	r, trk, _, stall, _ := testRecorder(Options{})
	for i := 0; i < 10; i++ {
		r.Record(simtime.Time(i*10), KindBegin, trk, stall, 0)
		r.Record(simtime.Time(i*10+5), KindEnd, trk, stall, 0)
	}
	if got := len(r.SimSpans("t", "p", "s", 0, 1000, 3)); got != 3 {
		t.Fatalf("cap ignored: got %d spans, want 3", got)
	}
}
