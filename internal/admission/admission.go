// Package admission is the multi-tenant front door for galsimd and
// galsim-fleet: per-tenant API keys, token-bucket rate limits, and queued-
// unit quotas, declared in one JSON config file. A Controller answers
// rejected requests itself — 401 for unknown keys, 429 with a Retry-After
// hint for throttles and exhausted quotas — so handlers stay a one-line
// gate:
//
//	tenant, ok := ctrl.Admit(w, r)
//	if !ok {
//	    return
//	}
//
// Everything is observable as the galsim_admission_* metric family, labeled
// per tenant (names come from the operator's config, so label cardinality
// is bounded by the tenant list, never by traffic).
package admission

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"galsim/internal/httpjson"
	"galsim/internal/telemetry"
)

// Error codes carried in rejected responses (see httpjson.ErrorCode).
const (
	CodeUnauthorized = "unauthorized"
	CodeThrottled    = "rate_limited"
	CodeQuota        = "quota_exceeded"
)

// Tenant declares one tenant's identity and limits.
type Tenant struct {
	// Name labels the tenant in logs and metrics; unique, required.
	Name string `json:"name"`
	// Key is the bearer token presented in the Authorization header;
	// unique, required, and never logged.
	Key string `json:"key"`
	// RatePerSec refills this tenant's token bucket (requests/second
	// sustained; 0 = unlimited).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity — how many requests may arrive back to
	// back before the sustained rate applies (default max(RatePerSec, 1)).
	Burst float64 `json:"burst,omitempty"`
	// MaxQueuedUnits caps how many sweep units this tenant may have queued
	// at once across all its in-flight requests (0 = unlimited).
	MaxQueuedUnits int `json:"max_queued_units,omitempty"`
}

// Config is the -tenants file: the full tenant list.
type Config struct {
	Tenants []Tenant `json:"tenants"`
}

// ParseConfig decodes and validates a tenants file.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("admission: parsing tenants config: %w", err)
	}
	if len(cfg.Tenants) == 0 {
		return Config{}, fmt.Errorf("admission: tenants config declares no tenants")
	}
	names := map[string]bool{}
	keys := map[string]bool{}
	for i, t := range cfg.Tenants {
		if t.Name == "" {
			return Config{}, fmt.Errorf("admission: tenant %d has no name", i)
		}
		if t.Key == "" {
			return Config{}, fmt.Errorf("admission: tenant %q has no key", t.Name)
		}
		if names[t.Name] {
			return Config{}, fmt.Errorf("admission: duplicate tenant name %q", t.Name)
		}
		if keys[t.Key] {
			return Config{}, fmt.Errorf("admission: tenant %q reuses another tenant's key", t.Name)
		}
		if t.RatePerSec < 0 || t.Burst < 0 || t.MaxQueuedUnits < 0 {
			return Config{}, fmt.Errorf("admission: tenant %q has a negative limit", t.Name)
		}
		names[t.Name] = true
		keys[t.Key] = true
	}
	return cfg, nil
}

// LoadConfig reads and validates a tenants file from disk.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("admission: reading tenants config: %w", err)
	}
	return ParseConfig(data)
}

// Options tunes a Controller; the zero value is production defaults.
type Options struct {
	// Now overrides the clock (token-bucket tests).
	Now func() time.Time
	// Metrics receives the galsim_admission_* family (nil skips metrics).
	Metrics *telemetry.Registry
	// Log receives admission decisions at debug/warn level; nil uses
	// slog.Default().
	Log *slog.Logger
}

// tenantState is one tenant's live bucket and quota accounting.
type tenantState struct {
	cfg    Tenant
	tokens float64   // current bucket fill
	last   time.Time // last refill instant
	queued int       // units currently admitted and not yet released
}

// Controller enforces a Config. Safe for concurrent use.
type Controller struct {
	now func() time.Time
	log *slog.Logger

	mu     sync.Mutex
	byKey  map[string]*tenantState
	byName map[string]*tenantState

	requests  telemetry.Counter // labels: tenant, outcome (ok|throttled|quota)
	rejected  telemetry.Counter // label: reason (no_key|unknown_key)
	metricsOn bool
}

// NewController builds a controller over a validated config.
func NewController(cfg Config, opt Options) *Controller {
	now := opt.Now
	if now == nil {
		now = time.Now
	}
	log := opt.Log
	if log == nil {
		log = slog.Default()
	}
	c := &Controller{now: now, log: log,
		byKey: map[string]*tenantState{}, byName: map[string]*tenantState{}}
	start := now()
	for _, t := range cfg.Tenants {
		if t.RatePerSec > 0 && t.Burst == 0 {
			t.Burst = math.Max(t.RatePerSec, 1)
		}
		st := &tenantState{cfg: t, tokens: t.Burst, last: start}
		c.byKey[t.Key] = st
		c.byName[t.Name] = st
	}
	if opt.Metrics != nil {
		c.requests = opt.Metrics.Counter("galsim_admission_requests_total",
			"Admission decisions, by tenant and outcome.", "tenant", "outcome")
		c.rejected = opt.Metrics.Counter("galsim_admission_unauthorized_total",
			"Requests rejected before tenant resolution, by reason.", "reason")
		opt.Metrics.GaugeFunc("galsim_admission_tenants",
			"Tenants declared in the admission config.",
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return float64(len(c.byKey))
			})
		c.metricsOn = true
	}
	return c
}

// AddInternalTenant registers an unlimited tenant with a fresh random key
// and returns that key. Fleet front ends use it for the workers they spawn
// themselves, so operator tenant budgets are never charged for (or able to
// starve) the fleet's own control traffic.
func (c *Controller) AddInternalTenant(name string) string {
	key := "internal-" + telemetry.NewRequestID()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &tenantState{cfg: Tenant{Name: name, Key: key}, last: c.now()}
	c.byKey[key] = st
	c.byName[name] = st
	return key
}

// keyFrom extracts the presented API key: "Authorization: Bearer <key>"
// canonically, with X-Api-Key accepted for curl ergonomics.
func keyFrom(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if k, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
		return "" // a malformed scheme is not a key
	}
	return strings.TrimSpace(r.Header.Get("X-Api-Key"))
}

// Admit authenticates and rate-limits one request. On success it returns
// the tenant name; on failure it has already answered the request (401
// unknown/missing key, 429 + Retry-After when the tenant's bucket is dry)
// and returns ok=false.
func (c *Controller) Admit(w http.ResponseWriter, r *http.Request) (tenant string, ok bool) {
	key := keyFrom(r)
	if key == "" {
		if c.metricsOn {
			c.rejected.Inc("no_key")
		}
		httpjson.ErrorCode(w, http.StatusUnauthorized, CodeUnauthorized,
			fmt.Errorf("missing API key; send 'Authorization: Bearer <key>'"))
		return "", false
	}
	c.mu.Lock()
	st, found := c.byKey[key]
	if !found {
		c.mu.Unlock()
		if c.metricsOn {
			c.rejected.Inc("unknown_key")
		}
		c.log.Warn("admission: unknown API key", "path", r.URL.Path)
		httpjson.ErrorCode(w, http.StatusUnauthorized, CodeUnauthorized,
			fmt.Errorf("unknown API key"))
		return "", false
	}
	name := st.cfg.Name
	retry, admitted := c.takeTokenLocked(st)
	c.mu.Unlock()
	if !admitted {
		if c.metricsOn {
			c.requests.Inc(name, "throttled")
		}
		c.log.Warn("admission: tenant throttled", "tenant", name, "path", r.URL.Path,
			"retry_after_s", retry)
		writeRetryAfter(w, retry)
		httpjson.ErrorCode(w, http.StatusTooManyRequests, CodeThrottled,
			fmt.Errorf("tenant %s is over its %.3g req/s rate; retry after %ds", name, st.cfg.RatePerSec, retry))
		return "", false
	}
	if c.metricsOn {
		c.requests.Inc(name, "ok")
	}
	return name, true
}

// takeTokenLocked refills st's bucket to now and takes one token, reporting
// the whole seconds to wait when none is available. c.mu must be held.
func (c *Controller) takeTokenLocked(st *tenantState) (retryAfter int, ok bool) {
	if st.cfg.RatePerSec <= 0 {
		return 0, true // unlimited tenant
	}
	now := c.now()
	if dt := now.Sub(st.last).Seconds(); dt > 0 {
		st.tokens = math.Min(st.cfg.Burst, st.tokens+dt*st.cfg.RatePerSec)
	}
	st.last = now
	if st.tokens >= 1 {
		st.tokens--
		return 0, true
	}
	// Whole seconds until one token accrues, floored at 1 so the client
	// actually backs off.
	wait := (1 - st.tokens) / st.cfg.RatePerSec
	return int(math.Max(1, math.Ceil(wait))), false
}

// AcquireUnits charges n queued units against the tenant's quota. On
// success the caller owes a matching ReleaseUnits once the work leaves the
// queue (use defer). On failure the request has been answered with 429 and
// a Retry-After hint, and false is returned. Unknown tenants (an admission-
// less code path) are unlimited.
func (c *Controller) AcquireUnits(w http.ResponseWriter, tenant string, n int) bool {
	c.mu.Lock()
	st := c.stateByNameLocked(tenant)
	if st == nil || st.cfg.MaxQueuedUnits <= 0 {
		if st != nil {
			st.queued += n
		}
		c.mu.Unlock()
		return true
	}
	if st.queued+n > st.cfg.MaxQueuedUnits {
		queued := st.queued
		c.mu.Unlock()
		if c.metricsOn {
			c.requests.Inc(tenant, "quota")
		}
		c.log.Warn("admission: tenant over queued-unit quota", "tenant", tenant,
			"queued_units", queued, "requested_units", n, "quota", st.cfg.MaxQueuedUnits)
		writeRetryAfter(w, quotaRetryAfterSeconds)
		httpjson.ErrorCode(w, http.StatusTooManyRequests, CodeQuota,
			fmt.Errorf("tenant %s has %d units queued and asked for %d more, over its quota of %d; retry when current sweeps finish",
				tenant, queued, n, st.cfg.MaxQueuedUnits))
		return false
	}
	st.queued += n
	c.mu.Unlock()
	return true
}

// ReleaseUnits returns n units of quota (the work completed or failed).
func (c *Controller) ReleaseUnits(tenant string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.stateByNameLocked(tenant); st != nil {
		st.queued -= n
		if st.queued < 0 {
			st.queued = 0
		}
	}
}

// QueuedUnits reports a tenant's currently charged units (tests, stats).
func (c *Controller) QueuedUnits(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.stateByNameLocked(tenant); st != nil {
		return st.queued
	}
	return 0
}

// quotaRetryAfterSeconds is the Retry-After hint for quota rejections:
// quota frees when queued sweeps finish, which (unlike a token bucket) has
// no closed-form ETA, so a modest constant nudge is honest.
const quotaRetryAfterSeconds = 5

func (c *Controller) stateByNameLocked(tenant string) *tenantState {
	return c.byName[tenant]
}

func writeRetryAfter(w http.ResponseWriter, seconds int) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", seconds))
}

// RetryAfterBusy stamps a Retry-After hint on a 429 caused by backend
// backpressure (campaign.ErrBackendBusy): queue depth drains on job
// completion, so like quota there is no closed-form ETA.
func RetryAfterBusy(w http.ResponseWriter) { writeRetryAfter(w, quotaRetryAfterSeconds) }
