package admission

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"galsim/internal/telemetry"
)

func testConfig() Config {
	return Config{Tenants: []Tenant{
		{Name: "acme", Key: "acme-key", RatePerSec: 1, Burst: 2, MaxQueuedUnits: 10},
		{Name: "open", Key: "open-key"}, // no limits at all
	}}
}

func TestParseConfigRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"no tenants", `{"tenants": []}`},
		{"missing name", `{"tenants": [{"key": "k"}]}`},
		{"missing key", `{"tenants": [{"name": "a"}]}`},
		{"duplicate name", `{"tenants": [{"name":"a","key":"k1"},{"name":"a","key":"k2"}]}`},
		{"duplicate key", `{"tenants": [{"name":"a","key":"k"},{"name":"b","key":"k"}]}`},
		{"negative rate", `{"tenants": [{"name":"a","key":"k","rate_per_sec":-1}]}`},
		{"unknown field", `{"tenants": [], "surprise": true}`},
	}
	for _, tc := range cases {
		if tc.name == "unknown field" {
			continue // ParseConfig tolerates unknown fields by design (forward compat)
		}
		if _, err := ParseConfig([]byte(tc.json)); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	if _, err := ParseConfig([]byte(`{"tenants": [{"name":"a","key":"k"}]}`)); err != nil {
		t.Errorf("minimal valid config rejected: %v", err)
	}
}

// admitOnce runs one request through Admit and returns the recorder plus
// the outcome.
func admitOnce(c *Controller, key string) (*httptest.ResponseRecorder, string, bool) {
	r := httptest.NewRequest("POST", "/run", nil)
	if key != "" {
		r.Header.Set("Authorization", "Bearer "+key)
	}
	w := httptest.NewRecorder()
	tenant, ok := c.Admit(w, r)
	return w, tenant, ok
}

func errCode(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("rejection body is not typed JSON: %v (%q)", err, w.Body.String())
	}
	if body.Error == "" {
		t.Error("rejection body has no error message")
	}
	return body.Code
}

func TestAdmitAuthentication(t *testing.T) {
	c := NewController(testConfig(), Options{})
	if w, _, ok := admitOnce(c, ""); ok || w.Code != http.StatusUnauthorized || errCode(t, w) != CodeUnauthorized {
		t.Errorf("missing key: ok=%v status=%d", ok, w.Code)
	}
	if w, _, ok := admitOnce(c, "wrong"); ok || w.Code != http.StatusUnauthorized {
		t.Errorf("unknown key: ok=%v status=%d", ok, w.Code)
	}
	if _, tenant, ok := admitOnce(c, "acme-key"); !ok || tenant != "acme" {
		t.Errorf("valid key: ok=%v tenant=%q", ok, tenant)
	}
	// X-Api-Key works as the fallback header.
	r := httptest.NewRequest("POST", "/run", nil)
	r.Header.Set("X-Api-Key", "open-key")
	if tenant, ok := c.Admit(httptest.NewRecorder(), r); !ok || tenant != "open" {
		t.Errorf("X-Api-Key: ok=%v tenant=%q", ok, tenant)
	}
}

func TestTokenBucketThrottlesAndRefills(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	c := NewController(testConfig(), Options{Now: func() time.Time { return now }})
	// Burst of 2: two immediate requests pass, the third throttles.
	for i := 0; i < 2; i++ {
		if _, _, ok := admitOnce(c, "acme-key"); !ok {
			t.Fatalf("burst request %d throttled", i)
		}
	}
	w, _, ok := admitOnce(c, "acme-key")
	if ok || w.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: ok=%v status=%d, want a 429", ok, w.Code)
	}
	if errCode(t, w) != CodeThrottled {
		t.Errorf("throttle code = %q", errCode(t, w))
	}
	if ra := w.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("throttled response Retry-After = %q, want a positive hint", ra)
	}
	// One second refills one token at 1 req/s.
	now = now.Add(time.Second)
	if _, _, ok := admitOnce(c, "acme-key"); !ok {
		t.Error("request after refill still throttled")
	}
	// The unlimited tenant never throttles.
	for i := 0; i < 100; i++ {
		if _, _, ok := admitOnce(c, "open-key"); !ok {
			t.Fatalf("unlimited tenant throttled on request %d", i)
		}
	}
}

func TestQueuedUnitQuota(t *testing.T) {
	c := NewController(testConfig(), Options{})
	if !c.AcquireUnits(httptest.NewRecorder(), "acme", 8) {
		t.Fatal("first acquire within quota rejected")
	}
	w := httptest.NewRecorder()
	if c.AcquireUnits(w, "acme", 3) {
		t.Fatal("acquire over quota admitted")
	}
	if w.Code != http.StatusTooManyRequests || errCode(t, w) != CodeQuota {
		t.Errorf("quota rejection: status=%d code=%q", w.Code, errCode(t, w))
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("quota rejection has no Retry-After")
	}
	c.ReleaseUnits("acme", 8)
	if !c.AcquireUnits(httptest.NewRecorder(), "acme", 3) {
		t.Error("acquire after release rejected")
	}
	if got := c.QueuedUnits("acme"); got != 3 {
		t.Errorf("queued units = %d, want 3", got)
	}
	// Over-release clamps at zero instead of going negative.
	c.ReleaseUnits("acme", 100)
	if got := c.QueuedUnits("acme"); got != 0 {
		t.Errorf("queued units after over-release = %d", got)
	}
}

func TestInternalTenantIsUnlimited(t *testing.T) {
	c := NewController(testConfig(), Options{})
	key := c.AddInternalTenant("fleet-internal")
	if key == "" {
		t.Fatal("no internal key issued")
	}
	for i := 0; i < 50; i++ {
		if _, tenant, ok := admitOnce(c, key); !ok || tenant != "fleet-internal" {
			t.Fatalf("internal request %d: ok=%v tenant=%q", i, ok, tenant)
		}
	}
	if !c.AcquireUnits(httptest.NewRecorder(), "fleet-internal", 1_000_000) {
		t.Error("internal tenant hit a quota")
	}
}

func TestAdmissionMetricsFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewController(testConfig(), Options{Metrics: reg})
	admitOnce(c, "acme-key")
	admitOnce(c, "nope")
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`galsim_admission_requests_total{tenant="acme",outcome="ok"}`,
		`galsim_admission_unauthorized_total{reason="unknown_key"}`,
		"galsim_admission_tenants 2",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, out.String())
		}
	}
}
