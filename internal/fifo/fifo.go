// Package fifo implements the communication fabric between pipeline stages:
// the synchronous pipe stages of the base processor and the mixed-clock
// asynchronous FIFOs (after Chelcea & Nowick) that replace them between
// clock domains in the GALS processor (paper §3.2, Figure 2).
//
// Both implementations satisfy the same Link interface, so the pipeline is
// wired identically for the two machines and only the link factory differs —
// exactly the paper's methodology ("in the synchronous version,
// communication between successive logic blocks is done using regular pipe
// stages; in the GALS model, asynchronous FIFOs have been used").
//
// Synchronization model. The Chelcea–Nowick FIFO exposes an empty flag
// synchronized into the consumer's clock and a full flag synchronized into
// the producer's clock, each through a two-flop synchronizer. We model that
// as visibility latency:
//
//   - an item enqueued at time t can first be observed (and dequeued) by
//     the consumer at the SyncEdges-th consumer clock edge strictly after t;
//   - the space freed by a dequeue at time t can first be observed by the
//     producer at the SyncEdges-th producer clock edge strictly after t.
//
// With SyncEdges = 2 (the default, a two-flop synchronizer) a crossing costs
// between one and two consumer cycles depending on clock alignment — low
// latency and full throughput in the steady state, matching the behaviour
// the paper reports for this design, while still charging the latency that
// produces the GALS performance gap.
//
// Squash. When a branch misprediction is repaired, in-flight wrong-path
// entries must be discarded. FlushYoungerThan removes every entry younger
// than a sequence number. Space freed by a flush is made visible to the
// producer immediately: in hardware the squash signal resets the FIFO
// pointers, and the producer is itself stalled/redirected during recovery,
// so modeling an extra synchronizer delay here would change nothing
// observable.
package fifo

import (
	"fmt"

	"galsim/internal/clock"
	"galsim/internal/isa"
	"galsim/internal/simtime"
)

// Link is a unidirectional, capacity-bounded, order-preserving channel
// between two pipeline stages. Implementations are not safe for concurrent
// use; the simulator is single-threaded.
type Link[T any] interface {
	// Name returns the link's diagnostic name.
	Name() string
	// CanPut reports whether the producer, observing at time now, sees room
	// for one more item.
	CanPut(now simtime.Time) bool
	// Put enqueues an item carrying the given sequence number. It panics if
	// CanPut(now) is false — producers must check first, as hardware does.
	Put(now simtime.Time, seq isa.Seq, item T)
	// CanGet reports whether the consumer, observing at time now, sees at
	// least one item.
	CanGet(now simtime.Time) bool
	// Peek returns the head item without removing it; ok is false when
	// CanGet(now) is false.
	Peek(now simtime.Time) (item T, ok bool)
	// Get removes and returns the head item. wait is the time the item spent
	// in the link (now − enqueue time); ok is false when CanGet(now) is false.
	Get(now simtime.Time) (item T, wait simtime.Duration, ok bool)
	// FlushYoungerThan discards every entry with sequence number > seq and
	// returns the number discarded.
	FlushYoungerThan(seq isa.Seq) int
	// FlushMatching discards every entry whose payload matches the
	// predicate and returns the number discarded. Squash logic uses this
	// with a wrong-path predicate, since post-recovery correct-path entries
	// can carry sequence numbers above the squashing branch's.
	FlushMatching(doomed func(T) bool) int
	// Len returns the number of physically present entries (independent of
	// synchronized visibility).
	Len() int
	// Stats returns the link's activity counters.
	Stats() Stats
}

// Stats counts link activity; the power model charges energy per Put/Get
// and the slip analysis aggregates TotalWait.
type Stats struct {
	Puts      uint64
	Gets      uint64
	Flushed   uint64
	TotalWait simtime.Duration // summed over all Gets
	// OccupancySum accumulates Len() sampled at each Put and Get, for a
	// cheap occupancy estimate: OccupancySum / (Puts+Gets).
	OccupancySum uint64
}

// AvgWait returns the mean residency of dequeued items.
func (s Stats) AvgWait() simtime.Duration {
	if s.Gets == 0 {
		return 0
	}
	return s.TotalWait / simtime.Duration(s.Gets)
}

type entry[T any] struct {
	item      T
	seq       isa.Seq
	enqueued  simtime.Time
	visibleAt simtime.Time
}

// queue is the storage shared by every Link implementation: a ring buffer
// sized to the link's rated capacity at construction. Hardware FIFOs are
// circular buffers of a configured depth, and modeling them the same way
// makes the per-item path allocation- and copy-free: a dequeue advances the
// head index instead of shifting the slice, and in steady state the backing
// array never grows. (The backing array can exceed the rated capacity:
// StretchLink admits a new transaction while older items await visibility,
// so its physical occupancy is not bounded by cap; push grows the ring on
// demand and the occupancy soon restabilizes.)
type queue[T any] struct {
	name  string
	cap   int        // rated capacity (the CanPut bound)
	buf   []entry[T] // backing ring; len(buf) >= cap
	head  int        // index of the oldest entry
	n     int        // occupancy
	stats Stats
}

func newQueue[T any](name string, capacity int) queue[T] {
	return queue[T]{name: name, cap: capacity, buf: make([]entry[T], capacity)}
}

func (q *queue[T]) Name() string { return q.name }
func (q *queue[T]) Len() int     { return q.n }
func (q *queue[T]) Stats() Stats { return q.stats }

// slot maps a logical position (0 = head) to a buffer index.
func (q *queue[T]) slot(i int) int {
	i += q.head
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	return i
}

func (q *queue[T]) headEntry() *entry[T] { return &q.buf[q.head] }

func (q *queue[T]) headVisible(now simtime.Time) bool {
	return q.n > 0 && q.buf[q.head].visibleAt <= now
}

func (q *queue[T]) push(e entry[T]) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[q.slot(q.n)] = e
	q.n++
	q.stats.Puts++
	q.stats.OccupancySum += uint64(q.n)
}

// grow doubles the backing ring, relinearizing entries so head returns to
// index 0. Only reachable through links whose physical occupancy can exceed
// the rated capacity (see the queue comment).
func (q *queue[T]) grow() {
	nb := make([]entry[T], 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[q.slot(i)]
	}
	q.buf = nb
	q.head = 0
}

func (q *queue[T]) pop(now simtime.Time) (T, simtime.Duration, bool) {
	var zero T
	if !q.headVisible(now) {
		return zero, 0, false
	}
	e := &q.buf[q.head]
	item := e.item
	wait := now - e.enqueued
	*e = entry[T]{} // do not pin the payload
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	q.stats.Gets++
	q.stats.TotalWait += wait
	q.stats.OccupancySum += uint64(q.n)
	return item, wait, true
}

func (q *queue[T]) flushYoungerThan(seq isa.Seq) int {
	return q.flushMatchingEntry(func(e *entry[T]) bool { return e.seq > seq })
}

func (q *queue[T]) flushMatching(doomed func(T) bool) int {
	return q.flushMatchingEntry(func(e *entry[T]) bool { return doomed(e.item) })
}

// flushMatchingEntry compacts survivors toward the head in order. The write
// position never passes the read position, so the in-place ring compaction
// is safe; vacated tail slots are zeroed so flushed payloads do not pin
// memory.
func (q *queue[T]) flushMatchingEntry(doomed func(*entry[T]) bool) int {
	kept := 0
	for i := 0; i < q.n; i++ {
		e := &q.buf[q.slot(i)]
		if doomed(e) {
			continue
		}
		if w := q.slot(kept); w != q.slot(i) {
			q.buf[w] = *e
		}
		kept++
	}
	flushed := q.n - kept
	for i := kept; i < q.n; i++ {
		q.buf[q.slot(i)] = entry[T]{}
	}
	q.n = kept
	q.stats.Flushed += uint64(flushed)
	return flushed
}

// SyncLatch is the base machine's link: a clocked pipe-stage queue. An item
// written at one clock edge is readable at the next edge of the same clock;
// occupancy is visible to the producer immediately (same-clock full logic).
type SyncLatch[T any] struct {
	queue[T]
	clk *clock.Domain
}

// NewSyncLatch builds a synchronous pipe stage of the given capacity on clk.
func NewSyncLatch[T any](name string, clk *clock.Domain, capacity int) *SyncLatch[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("fifo: latch %q capacity %d must be positive", name, capacity))
	}
	return &SyncLatch[T]{queue: newQueue[T](name, capacity), clk: clk}
}

// CanPut implements Link.
func (l *SyncLatch[T]) CanPut(now simtime.Time) bool { return l.n < l.cap }

// Put implements Link.
func (l *SyncLatch[T]) Put(now simtime.Time, seq isa.Seq, item T) {
	if !l.CanPut(now) {
		panic(fmt.Sprintf("fifo: latch %q overflow at %v", l.name, now))
	}
	l.push(entry[T]{item: item, seq: seq, enqueued: now, visibleAt: l.clk.EdgeAfter(now)})
}

// CanGet implements Link.
func (l *SyncLatch[T]) CanGet(now simtime.Time) bool { return l.headVisible(now) }

// Peek implements Link.
func (l *SyncLatch[T]) Peek(now simtime.Time) (T, bool) {
	var zero T
	if !l.headVisible(now) {
		return zero, false
	}
	return l.headEntry().item, true
}

// Get implements Link.
func (l *SyncLatch[T]) Get(now simtime.Time) (T, simtime.Duration, bool) { return l.pop(now) }

// FlushYoungerThan implements Link.
func (l *SyncLatch[T]) FlushYoungerThan(seq isa.Seq) int { return l.flushYoungerThan(seq) }

// FlushMatching implements Link.
func (l *SyncLatch[T]) FlushMatching(doomed func(T) bool) int { return l.flushMatching(doomed) }

// MixedClockFIFO is the GALS machine's link: the Chelcea–Nowick style
// mixed-timing FIFO with synchronized full/empty flags.
type MixedClockFIFO[T any] struct {
	queue[T]
	producer  *clock.Domain
	consumer  *clock.Domain
	syncEdges int64
	// freeAt holds, for each dequeue/flush not yet visible to the producer,
	// the producer-clock time at which the freed slot becomes visible.
	freeAt []simtime.Time
}

// NewMixedClockFIFO builds a mixed-clock FIFO between the producer's and
// consumer's clock domains. syncEdges is the depth of the flag
// synchronizers in destination-clock edges (2 = two-flop, the default used
// by the paper's experiments; 1 models an aggressive single-flop design).
func NewMixedClockFIFO[T any](name string, producer, consumer *clock.Domain, capacity, syncEdges int) *MixedClockFIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("fifo: fifo %q capacity %d must be positive", name, capacity))
	}
	if syncEdges < 1 {
		panic(fmt.Sprintf("fifo: fifo %q syncEdges %d must be >= 1", name, syncEdges))
	}
	if producer == nil || consumer == nil {
		panic(fmt.Sprintf("fifo: fifo %q requires both clock domains", name))
	}
	return &MixedClockFIFO[T]{
		queue:     newQueue[T](name, capacity),
		producer:  producer,
		consumer:  consumer,
		syncEdges: int64(syncEdges),
	}
}

// perceivedLen returns the occupancy as the producer sees it at time now:
// physically present entries plus freed slots whose release has not yet
// crossed the full-flag synchronizer.
func (f *MixedClockFIFO[T]) perceivedLen(now simtime.Time) int {
	// Prune frees that have become visible.
	kept := f.freeAt[:0]
	for _, t := range f.freeAt {
		if t > now {
			kept = append(kept, t)
		}
	}
	f.freeAt = kept
	return f.n + len(f.freeAt)
}

// CanPut implements Link.
func (f *MixedClockFIFO[T]) CanPut(now simtime.Time) bool {
	return f.perceivedLen(now) < f.cap
}

// Put implements Link.
func (f *MixedClockFIFO[T]) Put(now simtime.Time, seq isa.Seq, item T) {
	if !f.CanPut(now) {
		panic(fmt.Sprintf("fifo: fifo %q overflow at %v", f.name, now))
	}
	f.push(entry[T]{
		item:      item,
		seq:       seq,
		enqueued:  now,
		visibleAt: f.consumer.NthEdgeAfter(now, f.syncEdges),
	})
}

// CanGet implements Link.
func (f *MixedClockFIFO[T]) CanGet(now simtime.Time) bool { return f.headVisible(now) }

// Peek implements Link.
func (f *MixedClockFIFO[T]) Peek(now simtime.Time) (T, bool) {
	var zero T
	if !f.headVisible(now) {
		return zero, false
	}
	return f.headEntry().item, true
}

// Get implements Link.
func (f *MixedClockFIFO[T]) Get(now simtime.Time) (T, simtime.Duration, bool) {
	item, wait, ok := f.pop(now)
	if ok {
		f.freeAt = append(f.freeAt, f.producer.NthEdgeAfter(now, f.syncEdges))
	}
	return item, wait, ok
}

// FlushYoungerThan implements Link. Freed space is visible to the producer
// immediately (pointer reset; see package comment).
func (f *MixedClockFIFO[T]) FlushYoungerThan(seq isa.Seq) int {
	return f.flushYoungerThan(seq)
}

// FlushMatching implements Link. Freed space is visible to the producer
// immediately, as with FlushYoungerThan.
func (f *MixedClockFIFO[T]) FlushMatching(doomed func(T) bool) int {
	return f.flushMatching(doomed)
}

// Compile-time interface checks.
var (
	_ Link[int] = (*SyncLatch[int])(nil)
	_ Link[int] = (*MixedClockFIFO[int])(nil)
)
