package fifo

import (
	"testing"

	"galsim/internal/clock"
	"galsim/internal/isa"
	"galsim/internal/simtime"
)

func stretchPair() (*clock.Domain, *clock.Domain) {
	p := clock.NewDomain("p", ns, 0, 1.65)
	c := clock.NewDomain("c", ns, 300*simtime.Picosecond, 1.65)
	return p, c
}

func TestStretchTransactionLatency(t *testing.T) {
	p, c := stretchPair()
	l := NewStretchLink[int]("s", p, c, 1500*simtime.Picosecond, 4)
	l.Put(0, 1, 42)
	// Handshake completes at 1.5ns; first consumer edge at/after: 2.3ns.
	if l.CanGet(1300 * simtime.Picosecond) {
		t.Error("item visible before the handshake completed")
	}
	if !l.CanGet(2300 * simtime.Picosecond) {
		t.Error("item not visible after handshake completion")
	}
	v, _, ok := l.Get(2300 * simtime.Picosecond)
	if !ok || v != 42 {
		t.Errorf("Get = %v, %v", v, ok)
	}
}

func TestStretchSerializesTransactions(t *testing.T) {
	p, c := stretchPair()
	l := NewStretchLink[int]("s", p, c, 1500*simtime.Picosecond, 2)
	l.Put(0, 1, 1)
	if !l.CanPut(0) {
		t.Fatal("second item of the same transaction refused")
	}
	l.Put(0, 2, 2)
	// Transaction full: nothing more until the channel drains.
	if l.CanPut(1000 * simtime.Picosecond) {
		t.Error("third item accepted mid-handshake beyond width")
	}
	at := 2300 * simtime.Picosecond
	l.Get(at)
	l.Get(at)
	if !l.CanPut(at) {
		t.Error("drained channel refused a new transaction")
	}
}

func TestStretchThroughputBoundedByHandshake(t *testing.T) {
	// The paper's §3.2 argument: with per-cycle communication, effective
	// frequency is set by the handshake rate, not the clock. With a 1.5ns
	// handshake and width 1, at most ~666 items can cross per microsecond
	// even though both clocks run at 1 GHz.
	p, c := stretchPair()
	l := NewStretchLink[int]("s", p, c, 1500*simtime.Picosecond, 1)
	var delivered int
	for now := simtime.Time(0); now < simtime.Microsecond; now += 100 * simtime.Picosecond {
		if l.CanGet(now) {
			l.Get(now)
			delivered++
		}
		if l.CanPut(now) {
			l.Put(now, isa.Seq(delivered), delivered)
		}
	}
	if delivered > 700 {
		t.Errorf("delivered %d items/us, handshake should cap near 666", delivered)
	}
	if delivered < 300 {
		t.Errorf("delivered only %d items/us; channel nearly dead", delivered)
	}
}

func TestStretchFlushResets(t *testing.T) {
	p, c := stretchPair()
	l := NewStretchLink[int]("s", p, c, 1500*simtime.Picosecond, 2)
	l.Put(0, 10, 1)
	l.Put(0, 11, 2)
	if n := l.FlushYoungerThan(9); n != 2 {
		t.Fatalf("flushed %d", n)
	}
	if !l.CanPut(100) {
		t.Error("flushed channel still busy")
	}
}

func TestStretchValidation(t *testing.T) {
	p, c := stretchPair()
	for name, fn := range map[string]func(){
		"handshake": func() { NewStretchLink[int]("s", p, c, 0, 1) },
		"width":     func() { NewStretchLink[int]("s", p, c, ns, 0) },
		"clocks":    func() { NewStretchLink[int]("s", nil, c, ns, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStretchOverflowPanics(t *testing.T) {
	p, c := stretchPair()
	l := NewStretchLink[int]("s", p, c, ns, 1)
	l.Put(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("mid-handshake Put did not panic")
		}
	}()
	l.Put(100, 2, 2)
}
