package fifo

import (
	"fmt"

	"galsim/internal/isa"
	"galsim/internal/simtime"
)

// EntryState is one queued entry in snapshot form. The payload is carried
// in a caller-chosen serialized type S (an instruction index, a wake tag —
// whatever the link's T maps to).
type EntryState[S any] struct {
	Item      S            `json:"item"`
	Seq       isa.Seq      `json:"seq"`
	Enqueued  simtime.Time `json:"enq"`
	VisibleAt simtime.Time `json:"vis"`
}

// LinkState is the full mutable state of any Link implementation, in
// logical (head-first) order. The implementation-specific fields are only
// meaningful for the matching link type and zero otherwise.
type LinkState[S any] struct {
	Entries []EntryState[S] `json:"entries,omitempty"`
	Stats   Stats           `json:"stats"`
	// FreeAt is MixedClockFIFO's pending slot-release visibility times.
	FreeAt []simtime.Time `json:"free_at,omitempty"`
	// BusyUntil/InFlight are StretchLink's open-transaction state.
	BusyUntil simtime.Time `json:"busy_until,omitempty"`
	InFlight  int          `json:"in_flight,omitempty"`
}

// baseQueue exposes the ring shared by the three Link implementations.
func baseQueue[T any](l Link[T]) *queue[T] {
	switch v := l.(type) {
	case *SyncLatch[T]:
		return &v.queue
	case *MixedClockFIFO[T]:
		return &v.queue
	case *StretchLink[T]:
		return &v.queue
	}
	return nil
}

// CaptureLink snapshots a link's entries (converted through conv), stats,
// and implementation-specific timing state.
func CaptureLink[T, S any](l Link[T], conv func(T) S) (LinkState[S], error) {
	q := baseQueue(l)
	if q == nil {
		return LinkState[S]{}, fmt.Errorf("fifo: link %q: unknown implementation %T", l.Name(), l)
	}
	st := LinkState[S]{Stats: q.stats}
	for i := 0; i < q.n; i++ {
		e := &q.buf[q.slot(i)]
		st.Entries = append(st.Entries, EntryState[S]{
			Item: conv(e.item), Seq: e.seq, Enqueued: e.enqueued, VisibleAt: e.visibleAt,
		})
	}
	switch v := l.(type) {
	case *MixedClockFIFO[T]:
		st.FreeAt = append([]simtime.Time(nil), v.freeAt...)
	case *StretchLink[T]:
		st.BusyUntil = v.busyUntil
		st.InFlight = v.inFlight
	}
	return st, nil
}

// RestoreLink reinstates a captured state into a freshly built, empty link
// of the same implementation and capacity. Entries bypass Put so the
// captured per-entry visibility times and the stats counters are carried
// verbatim rather than recomputed.
func RestoreLink[T, S any](l Link[T], st LinkState[S], conv func(S) T) error {
	q := baseQueue(l)
	if q == nil {
		return fmt.Errorf("fifo: link %q: unknown implementation %T", l.Name(), l)
	}
	if q.n != 0 {
		return fmt.Errorf("fifo: link %q: restore into non-empty link (%d entries)", q.name, q.n)
	}
	if len(st.Entries) > len(q.buf) {
		// The capture came from a ring that had grown past its rated
		// capacity (StretchLink admits transient overshoot); grow to fit.
		q.buf = make([]entry[T], len(st.Entries))
	}
	q.head = 0
	for i, es := range st.Entries {
		q.buf[i] = entry[T]{item: conv(es.Item), seq: es.Seq, enqueued: es.Enqueued, visibleAt: es.VisibleAt}
	}
	q.n = len(st.Entries)
	q.stats = st.Stats
	switch v := l.(type) {
	case *MixedClockFIFO[T]:
		v.freeAt = append([]simtime.Time(nil), st.FreeAt...)
	case *StretchLink[T]:
		v.busyUntil = st.BusyUntil
		v.inFlight = st.InFlight
	}
	return nil
}
