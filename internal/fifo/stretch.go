package fifo

import (
	"fmt"

	"galsim/internal/clock"
	"galsim/internal/isa"
	"galsim/internal/simtime"
)

// StretchLink models the stretchable-clock communication scheme the paper
// discusses (and rejects) in §3.2: an arbiter inside the loop of each ring
// oscillator stretches one phase of *both* clocks while a handshake and
// data transfer take place. The scheme is elegant and fail-safe but
// serializes communication — "stretching the clock every cycle would lead
// to a situation where the effective clock frequency is determined not by
// the clock generator but by the rate of communication with other
// synchronous modules".
//
// The model: the link is a rendezvous of configurable width (the number of
// items one stretched transaction can carry). Each transaction occupies the
// channel for a handshake duration during which no further transfer may
// begin, and the transferred items become visible to the consumer only when
// the handshake completes. This captures the property that matters at the
// architecture level: throughput is bounded by the handshake rate rather
// than by either clock. (The induced stall of the two synchronous blocks is
// reflected in the transfer serialization rather than by actually modulating
// the clock events, whose periods are closed-form; see DESIGN.md.)
type StretchLink[T any] struct {
	queue[T]
	producer  *clock.Domain
	consumer  *clock.Domain
	handshake simtime.Duration
	busyUntil simtime.Time
	width     int
	inFlight  int // items carried by the current (incomplete) transaction
}

// NewStretchLink builds a stretchable-clock channel. handshake is the
// duration of one stretched transaction; width is the number of items it
// can carry (its "bus width" in items).
func NewStretchLink[T any](name string, producer, consumer *clock.Domain, handshake simtime.Duration, width int) *StretchLink[T] {
	if handshake <= 0 {
		panic(fmt.Sprintf("fifo: stretch link %q handshake %v must be positive", name, handshake))
	}
	if width <= 0 {
		panic(fmt.Sprintf("fifo: stretch link %q width %d must be positive", name, width))
	}
	if producer == nil || consumer == nil {
		panic(fmt.Sprintf("fifo: stretch link %q requires both clock domains", name))
	}
	return &StretchLink[T]{
		queue:     newQueue[T](name, width),
		producer:  producer,
		consumer:  consumer,
		handshake: handshake,
		width:     width,
	}
}

// CanPut implements Link: a new item may join the current transaction if
// the channel is idle or the in-progress transaction still has width left.
func (s *StretchLink[T]) CanPut(now simtime.Time) bool {
	if now < s.busyUntil {
		return s.inFlight > 0 && s.inFlight < s.width
	}
	return s.n < s.cap
}

// Put implements Link. The first item of a transaction starts the
// handshake; all items of one transaction become visible together at the
// first consumer edge at or after handshake completion.
func (s *StretchLink[T]) Put(now simtime.Time, seq isa.Seq, item T) {
	if !s.CanPut(now) {
		panic(fmt.Sprintf("fifo: stretch link %q busy at %v", s.name, now))
	}
	if now >= s.busyUntil {
		// Start a new transaction.
		s.busyUntil = now + s.handshake
		s.inFlight = 0
	}
	s.inFlight++
	s.push(entry[T]{
		item:      item,
		seq:       seq,
		enqueued:  now,
		visibleAt: s.consumer.EdgeAtOrAfter(s.busyUntil),
	})
}

// CanGet implements Link.
func (s *StretchLink[T]) CanGet(now simtime.Time) bool { return s.headVisible(now) }

// Peek implements Link.
func (s *StretchLink[T]) Peek(now simtime.Time) (T, bool) {
	var zero T
	if !s.headVisible(now) {
		return zero, false
	}
	return s.headEntry().item, true
}

// Get implements Link.
func (s *StretchLink[T]) Get(now simtime.Time) (T, simtime.Duration, bool) {
	return s.pop(now)
}

// FlushYoungerThan implements Link.
func (s *StretchLink[T]) FlushYoungerThan(seq isa.Seq) int {
	n := s.flushYoungerThan(seq)
	s.resetIfEmpty()
	return n
}

// FlushMatching implements Link.
func (s *StretchLink[T]) FlushMatching(doomed func(T) bool) int {
	n := s.flushMatching(doomed)
	s.resetIfEmpty()
	return n
}

func (s *StretchLink[T]) resetIfEmpty() {
	if s.n == 0 {
		s.busyUntil = 0
		s.inFlight = 0
	}
}

var _ Link[int] = (*StretchLink[int])(nil)
