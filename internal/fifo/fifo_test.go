package fifo

import (
	"testing"
	"testing/quick"

	"galsim/internal/clock"
	"galsim/internal/isa"
	"galsim/internal/simtime"
)

const ns = simtime.Nanosecond

func TestSyncLatchNextCycleVisibility(t *testing.T) {
	clk := clock.NewDomain("c", ns, 0, 1.65) // edges at 0, 1ns, 2ns, ...
	l := NewSyncLatch[int]("latch", clk, 4)
	l.Put(0, 1, 42)
	if l.CanGet(0) {
		t.Error("item visible at the edge it was written")
	}
	if !l.CanGet(ns) {
		t.Error("item not visible at the next edge")
	}
	v, wait, ok := l.Get(ns)
	if !ok || v != 42 || wait != ns {
		t.Errorf("Get = %v,%v,%v", v, wait, ok)
	}
}

func TestSyncLatchCapacityImmediatelyVisible(t *testing.T) {
	clk := clock.NewDomain("c", ns, 0, 1.65)
	l := NewSyncLatch[int]("latch", clk, 2)
	l.Put(0, 1, 1)
	l.Put(0, 2, 2)
	if l.CanPut(0) {
		t.Error("latch should be full")
	}
	// Consumer drains at 1ns; space is visible to producer at once.
	if _, _, ok := l.Get(ns); !ok {
		t.Fatal("drain failed")
	}
	if !l.CanPut(ns) {
		t.Error("freed space not immediately visible in sync latch")
	}
}

func TestSyncLatchFIFOOrder(t *testing.T) {
	clk := clock.NewDomain("c", ns, 0, 1.65)
	l := NewSyncLatch[int]("latch", clk, 8)
	for i := 0; i < 5; i++ {
		l.Put(0, isa.Seq(i), i)
	}
	for i := 0; i < 5; i++ {
		v, _, ok := l.Get(ns)
		if !ok || v != i {
			t.Fatalf("Get #%d = %v,%v", i, v, ok)
		}
	}
}

func TestMixedFIFOSynchronizerLatency(t *testing.T) {
	// Producer at 1 GHz phase 0, consumer at 1 GHz phase 0.3ns.
	p := clock.NewDomain("p", ns, 0, 1.65)
	c := clock.NewDomain("c", ns, 300*simtime.Picosecond, 1.65)
	f := NewMixedClockFIFO[string]("x", p, c, 4, 2)
	f.Put(0, 1, "a") // consumer edges after 0: 0.3, 1.3 => visible at 1.3ns
	if f.CanGet(300 * simtime.Picosecond) {
		t.Error("visible after one consumer edge; want two-flop latency")
	}
	if !f.CanGet(1300 * simtime.Picosecond) {
		t.Error("not visible at second consumer edge")
	}
	v, wait, ok := f.Get(1300 * simtime.Picosecond)
	if !ok || v != "a" || wait != 1300*simtime.Picosecond {
		t.Errorf("Get = %v,%v,%v", v, wait, ok)
	}
}

func TestMixedFIFOSingleFlopOption(t *testing.T) {
	p := clock.NewDomain("p", ns, 0, 1.65)
	c := clock.NewDomain("c", ns, 300*simtime.Picosecond, 1.65)
	f := NewMixedClockFIFO[int]("x", p, c, 4, 1)
	f.Put(0, 1, 7)
	if !f.CanGet(300 * simtime.Picosecond) {
		t.Error("single-flop FIFO should expose item at first consumer edge")
	}
}

func TestMixedFIFOFullFlagLatency(t *testing.T) {
	p := clock.NewDomain("p", ns, 0, 1.65)
	c := clock.NewDomain("c", ns, ns/2, 1.65)
	f := NewMixedClockFIFO[int]("x", p, c, 2, 2)
	f.Put(0, 1, 1)
	f.Put(0, 2, 2)
	if f.CanPut(0) {
		t.Error("FIFO should be full")
	}
	// Consumer takes the head at 2.5ns (edges 0.5, 1.5 — visible at 1.5;
	// dequeue at 2.5). Producer edges after 2.5: 3, 4 => sees space at 4ns.
	if !f.CanGet(5 * ns / 2) {
		t.Fatal("head not visible at 2.5ns")
	}
	f.Get(5 * ns / 2)
	if f.CanPut(3 * ns) {
		t.Error("freed slot visible after only one producer edge")
	}
	if !f.CanPut(4 * ns) {
		t.Error("freed slot not visible at second producer edge")
	}
}

func TestMixedFIFOStreamsAtFullThroughput(t *testing.T) {
	// Steady state: producer puts one item per cycle, consumer gets one per
	// cycle, capacity 4. After the pipe fills, no stall should ever occur —
	// the paper's "good throughput in the steady state".
	p := clock.NewDomain("p", ns, 0, 1.65)
	c := clock.NewDomain("c", ns, 700*simtime.Picosecond, 1.65)
	f := NewMixedClockFIFO[int]("x", p, c, 4, 2)
	puts, gets, putStalls := 0, 0, 0
	for cyc := 0; cyc < 1000; cyc++ {
		pt := simtime.Time(cyc) * ns
		ct := 700*simtime.Picosecond + simtime.Time(cyc)*ns
		// Consumer first (reverse pipeline order within a conceptual cycle).
		if f.CanGet(ct) {
			f.Get(ct)
			gets++
		}
		if f.CanPut(pt) {
			f.Put(pt, isa.Seq(cyc), cyc)
			puts++
		} else {
			putStalls++
		}
	}
	if putStalls > 8 {
		t.Errorf("steady-state put stalls = %d, want near zero", putStalls)
	}
	if gets < puts-8 {
		t.Errorf("consumer starved: %d gets vs %d puts", gets, puts)
	}
}

func TestFlushYoungerThan(t *testing.T) {
	p := clock.NewDomain("p", ns, 0, 1.65)
	c := clock.NewDomain("c", ns, ns/2, 1.65)
	f := NewMixedClockFIFO[int]("x", p, c, 8, 2)
	for i := 1; i <= 6; i++ {
		f.Put(0, isa.Seq(i*10), i)
	}
	if n := f.FlushYoungerThan(30); n != 3 {
		t.Errorf("flushed %d, want 3", n)
	}
	if f.Len() != 3 {
		t.Errorf("len = %d, want 3", f.Len())
	}
	// Remaining entries are 1,2,3 in order.
	at := 10 * ns
	for want := 1; want <= 3; want++ {
		v, _, ok := f.Get(at)
		if !ok || v != want {
			t.Fatalf("after flush Get = %v,%v want %d", v, ok, want)
		}
	}
	// Flush freed space immediately.
	if !f.CanPut(0) {
		t.Error("flush did not free space")
	}
}

func TestFlushAllFreesCapacityImmediately(t *testing.T) {
	p := clock.NewDomain("p", ns, 0, 1.65)
	c := clock.NewDomain("c", ns, ns/2, 1.65)
	f := NewMixedClockFIFO[int]("x", p, c, 2, 2)
	f.Put(0, 100, 1)
	f.Put(0, 101, 2)
	if f.CanPut(0) {
		t.Fatal("should be full")
	}
	f.FlushYoungerThan(0)
	if !f.CanPut(0) {
		t.Error("space not available after total flush")
	}
}

func TestStatsAccounting(t *testing.T) {
	clk := clock.NewDomain("c", ns, 0, 1.65)
	l := NewSyncLatch[int]("latch", clk, 8)
	l.Put(0, 1, 1)
	l.Put(0, 2, 2)
	l.Get(ns)
	l.Get(2 * ns)
	st := l.Stats()
	if st.Puts != 2 || st.Gets != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalWait != ns+2*ns {
		t.Errorf("TotalWait = %v, want 3ns", st.TotalWait)
	}
	if st.AvgWait() != 3*ns/2 {
		t.Errorf("AvgWait = %v", st.AvgWait())
	}
}

func TestOverflowPanics(t *testing.T) {
	clk := clock.NewDomain("c", ns, 0, 1.65)
	l := NewSyncLatch[int]("latch", clk, 1)
	l.Put(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	l.Put(0, 2, 2)
}

func TestEmptyGet(t *testing.T) {
	clk := clock.NewDomain("c", ns, 0, 1.65)
	l := NewSyncLatch[int]("latch", clk, 1)
	if _, _, ok := l.Get(ns); ok {
		t.Error("Get on empty link returned ok")
	}
	if _, ok := l.Peek(ns); ok {
		t.Error("Peek on empty link returned ok")
	}
}

func TestConstructorValidation(t *testing.T) {
	clk := clock.NewDomain("c", ns, 0, 1.65)
	for name, fn := range map[string]func(){
		"latch cap":  func() { NewSyncLatch[int]("x", clk, 0) },
		"fifo cap":   func() { NewMixedClockFIFO[int]("x", clk, clk, 0, 2) },
		"fifo sync":  func() { NewMixedClockFIFO[int]("x", clk, clk, 4, 0) },
		"fifo clock": func() { NewMixedClockFIFO[int]("x", nil, clk, 4, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: with arbitrary relative clock periods/phases, every item is
// delivered exactly once, in order, and its wait is at least one consumer
// period (two-flop) but bounded by syncEdges+1 consumer periods when the
// consumer drains eagerly.
func TestMixedFIFODeliveryProperty(t *testing.T) {
	f := func(pPer, cPer uint16, cPhase uint16, n uint8) bool {
		pp := simtime.Duration(pPer%3000) + 500
		cp := simtime.Duration(cPer%3000) + 500
		ph := simtime.Time(cPhase) % cp
		p := clock.NewDomain("p", pp, 0, 1.65)
		c := clock.NewDomain("c", cp, ph, 1.65)
		fifo := NewMixedClockFIFO[int]("x", p, c, 1024, 2)
		count := int(n%40) + 1
		// Producer enqueues one item per producer cycle.
		for i := 0; i < count; i++ {
			fifo.Put(simtime.Time(i)*pp, isa.Seq(i), i)
		}
		// Consumer drains eagerly at every consumer edge.
		got := 0
		deadline := simtime.Time(count+10) * simtime.Time(pp+cp)
		for edge := ph; edge < deadline; edge += cp {
			for fifo.CanGet(edge) {
				v, wait, _ := fifo.Get(edge)
				if v != got {
					return false // out of order or duplicated
				}
				got++
				if wait < cp { // must exceed one consumer period (2 edges)
					return false
				}
			}
		}
		return got == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: perceived occupancy never exceeds capacity and CanPut is
// consistent with it under random interleaving.
func TestMixedFIFOCapacityProperty(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%7) + 1
		p := clock.NewDomain("p", 1000, 0, 1.65)
		c := clock.NewDomain("c", 1300, 400, 1.65)
		fifo := NewMixedClockFIFO[int]("x", p, c, capacity, 2)
		now := simtime.Time(0)
		seq := isa.Seq(0)
		for _, isPut := range ops {
			now += 700
			if isPut {
				if fifo.CanPut(now) {
					fifo.Put(now, seq, int(seq))
					seq++
				}
			} else {
				fifo.Get(now)
			}
			if fifo.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
