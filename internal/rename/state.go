package rename

import (
	"fmt"

	"galsim/internal/isa"
)

// State is the alias table's snapshot form. Free lists are captured in LIFO
// order — allocation order determines which physical register each future
// rename receives, so the order is as much machine state as the contents.
type State struct {
	IntMap       [isa.NumArchRegs]int `json:"int_map"`
	FPMap        [isa.NumArchRegs]int `json:"fp_map"`
	FreeInt      []int                `json:"free_int"`
	FreeFP       []int                `json:"free_fp"`
	IntAllocated int                  `json:"int_alloc"`
	FPAllocated  int                  `json:"fp_alloc"`
	Samples      uint64               `json:"samples"`
	IntOccSum    uint64               `json:"int_occ_sum"`
	FPOccSum     uint64               `json:"fp_occ_sum"`
}

// CaptureState snapshots the table.
func (t *Table) CaptureState() State {
	return State{
		IntMap:       t.intMap,
		FPMap:        t.fpMap,
		FreeInt:      append([]int(nil), t.freeInt...),
		FreeFP:       append([]int(nil), t.freeFP...),
		IntAllocated: t.intAllocated,
		FPAllocated:  t.fpAllocated,
		Samples:      t.samples,
		IntOccSum:    t.intOccSum,
		FPOccSum:     t.fpOccSum,
	}
}

// RestoreState reinstates a captured state into a table built with the same
// register file sizes.
func (t *Table) RestoreState(st State) error {
	if len(st.FreeInt) > t.numInt-isa.NumArchRegs || len(st.FreeFP) > t.numFP-isa.NumArchRegs {
		return fmt.Errorf("rename: restored free lists (%d int, %d fp) exceed this table's rename registers (%d int, %d fp)",
			len(st.FreeInt), len(st.FreeFP), t.numInt-isa.NumArchRegs, t.numFP-isa.NumArchRegs)
	}
	for _, p := range append(append([]int{}, st.FreeInt...), st.FreeFP...) {
		if p < 0 || p >= t.NumPhys() {
			return fmt.Errorf("rename: restored free register %d outside physical space [0, %d)", p, t.NumPhys())
		}
	}
	t.intMap = st.IntMap
	t.fpMap = st.FPMap
	t.freeInt = append(t.freeInt[:0], st.FreeInt...)
	t.freeFP = append(t.freeFP[:0], st.FreeFP...)
	t.intAllocated = st.IntAllocated
	t.fpAllocated = st.FPAllocated
	t.samples = st.Samples
	t.intOccSum = st.IntOccSum
	t.fpOccSum = st.FPOccSum
	return nil
}
