package rename

import (
	"math/rand"
	"testing"

	"galsim/internal/isa"
)

func intReg(i uint8) isa.Reg { return isa.Reg{File: isa.RegInt, Index: i} }
func fpReg(i uint8) isa.Reg  { return isa.Reg{File: isa.RegFP, Index: i} }

func mkInstr(seq isa.Seq, dest isa.Reg, srcs ...isa.Reg) *isa.Instr {
	in := isa.NewInstr(seq, 0, isa.ClassIntALU)
	in.Dest = dest
	for i, s := range srcs {
		in.Src[i] = s
	}
	return in
}

func TestInitialMapping(t *testing.T) {
	tb := New(72, 72)
	if tb.NumPhys() != 144 {
		t.Errorf("NumPhys = %d", tb.NumPhys())
	}
	if tb.FreeInt() != 72-32 || tb.FreeFP() != 72-32 {
		t.Errorf("free = %d int, %d fp; want 40 each", tb.FreeInt(), tb.FreeFP())
	}
	if tb.Lookup(intReg(5)) != 5 {
		t.Errorf("r5 -> %d, want 5", tb.Lookup(intReg(5)))
	}
	if tb.Lookup(fpReg(5)) != 72+5 {
		t.Errorf("f5 -> %d, want 77", tb.Lookup(fpReg(5)))
	}
	if tb.Lookup(isa.ZeroReg) != -1 {
		t.Error("zero register should not be mapped")
	}
	if tb.Lookup(isa.Reg{}) != -1 {
		t.Error("invalid register should not be mapped")
	}
	tb.CheckInvariant(nil)
}

func TestRenameRedirectsReaders(t *testing.T) {
	tb := New(72, 72)
	a := mkInstr(1, intReg(3), intReg(1), intReg(2))
	tb.Rename(a)
	if a.PhysSrc[0] != 1 || a.PhysSrc[1] != 2 {
		t.Errorf("sources = %v", a.PhysSrc)
	}
	if a.PhysDest < 32 || a.OldPhys != 3 {
		t.Errorf("dest = %d, old = %d", a.PhysDest, a.OldPhys)
	}
	// A consumer of r3 now reads a's physical destination.
	b := mkInstr(2, intReg(4), intReg(3))
	tb.Rename(b)
	if b.PhysSrc[0] != a.PhysDest {
		t.Errorf("consumer reads %d, want %d", b.PhysSrc[0], a.PhysDest)
	}
	tb.CheckInvariant(map[int]bool{a.OldPhys: false, b.OldPhys: false})
}

func TestZeroRegDestNotAllocated(t *testing.T) {
	tb := New(72, 72)
	in := mkInstr(1, isa.ZeroReg, intReg(1))
	free := tb.FreeInt()
	tb.Rename(in)
	if in.PhysDest != -1 || tb.FreeInt() != free {
		t.Error("zero-destination instruction allocated a register")
	}
}

func TestUndoRestoresMapping(t *testing.T) {
	tb := New(72, 72)
	a := mkInstr(1, intReg(3))
	b := mkInstr(2, intReg(3))
	tb.Rename(a)
	tb.Rename(b)
	// Undo youngest first.
	tb.Undo(b)
	if tb.Lookup(intReg(3)) != a.PhysDest {
		t.Error("undo of b did not restore a's mapping")
	}
	tb.Undo(a)
	if tb.Lookup(intReg(3)) != 3 {
		t.Error("undo of a did not restore initial mapping")
	}
	if tb.FreeInt() != 40 {
		t.Errorf("free int = %d, want 40", tb.FreeInt())
	}
	tb.CheckInvariant(nil)
}

func TestOutOfOrderUndoPanics(t *testing.T) {
	tb := New(72, 72)
	a := mkInstr(1, intReg(3))
	b := mkInstr(2, intReg(3))
	tb.Rename(a)
	tb.Rename(b)
	defer func() {
		if recover() == nil {
			t.Error("undoing a before b did not panic")
		}
	}()
	tb.Undo(a)
}

func TestCommitFreesOldMapping(t *testing.T) {
	tb := New(72, 72)
	a := mkInstr(1, intReg(3))
	tb.Rename(a)
	free := tb.FreeInt()
	tb.Commit(a)
	if tb.FreeInt() != free+1 {
		t.Error("commit did not free the old physical register")
	}
	// The new mapping persists after commit.
	if tb.Lookup(intReg(3)) != a.PhysDest {
		t.Error("commit disturbed the current mapping")
	}
	tb.CheckInvariant(nil)
}

func TestExhaustion(t *testing.T) {
	tb := New(40, 40) // 8 free per file
	var instrs []*isa.Instr
	for i := 0; i < 8; i++ {
		in := mkInstr(isa.Seq(i), intReg(uint8(i)))
		if !tb.CanRename(in) {
			t.Fatalf("CanRename false at %d with %d free", i, tb.FreeInt())
		}
		tb.Rename(in)
		instrs = append(instrs, in)
	}
	if tb.CanRename(mkInstr(99, intReg(20))) {
		t.Error("CanRename true with empty free list")
	}
	// FP file unaffected.
	if !tb.CanRename(mkInstr(99, fpReg(0))) {
		t.Error("FP rename blocked by int exhaustion")
	}
	// Commit one; can rename again.
	tb.Commit(instrs[0])
	if !tb.CanRename(mkInstr(100, intReg(21))) {
		t.Error("CanRename false after a commit freed a register")
	}
}

func TestOccupancySampling(t *testing.T) {
	tb := New(72, 72)
	tb.Sample()
	if tb.AvgIntOccupancy() != 0 {
		t.Error("initial occupancy not 0")
	}
	for i := 0; i < 10; i++ {
		tb.Rename(mkInstr(isa.Seq(i), intReg(uint8(i))))
	}
	tb.Sample()
	if got := tb.AvgIntOccupancy(); got != 5 { // (0+10)/2
		t.Errorf("avg occupancy = %v, want 5", got)
	}
}

// Fuzz a random rename/commit/squash workload and check the physical
// register conservation invariant throughout.
func TestRandomWorkloadInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb := New(48, 48)
	var inflight []*isa.Instr // renamed, not yet committed/undone
	seq := isa.Seq(1)
	for step := 0; step < 20_000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // rename
			var dest isa.Reg
			if rng.Intn(2) == 0 {
				dest = intReg(uint8(rng.Intn(31)))
			} else {
				dest = fpReg(uint8(rng.Intn(32)))
			}
			in := mkInstr(seq, dest, intReg(uint8(rng.Intn(32))))
			seq++
			if tb.CanRename(in) {
				tb.Rename(in)
				inflight = append(inflight, in)
			}
		case op < 8: // commit oldest
			if len(inflight) > 0 {
				tb.Commit(inflight[0])
				inflight = inflight[1:]
			}
		default: // squash a random-length tail, youngest first
			if len(inflight) > 0 {
				cut := rng.Intn(len(inflight))
				for i := len(inflight) - 1; i >= cut; i-- {
					tb.Undo(inflight[i])
				}
				inflight = inflight[:cut]
			}
		}
		if step%500 == 0 {
			held := map[int]bool{}
			for _, in := range inflight {
				if in.OldPhys >= 0 {
					held[in.OldPhys] = true
				}
			}
			tb.CheckInvariant(held)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny register file did not panic")
		}
	}()
	New(32, 72)
}
