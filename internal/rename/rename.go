// Package rename implements register renaming: the register alias tables
// (RAT) mapping the 32+32 architectural registers onto the 72 integer and 72
// floating-point physical registers of the paper's machine (Table 3), the
// free lists, and the ROB-walk recovery of mappings after a misprediction.
//
// Physical registers live in a single unified index space: integer physical
// registers occupy [0, NumInt) and floating-point ones [NumInt,
// NumInt+NumFP). Index -1 means "no register" (absent operand, or the
// hardwired integer zero register, which is never renamed).
package rename

import (
	"fmt"

	"galsim/internal/isa"
)

// Table is the register alias table plus free lists for both register files.
type Table struct {
	numInt, numFP int
	intMap        [isa.NumArchRegs]int
	fpMap         [isa.NumArchRegs]int
	freeInt       []int
	freeFP        []int

	// Occupancy statistics: sum of allocated-beyond-architectural counts,
	// sampled by Sample(); the paper reports RAT occupancy growth in GALS
	// (e.g. ijpeg integer allocation 15 -> 24).
	intAllocated int
	fpAllocated  int
	samples      uint64
	intOccSum    uint64
	fpOccSum     uint64
}

// New builds a table with the given physical register file sizes. Each file
// needs at least NumArchRegs+1 physical registers to make progress.
func New(numInt, numFP int) *Table {
	if numInt <= isa.NumArchRegs || numFP <= isa.NumArchRegs {
		panic(fmt.Sprintf("rename: need > %d physical registers per file, got %d int / %d fp",
			isa.NumArchRegs, numInt, numFP))
	}
	t := &Table{
		numInt: numInt, numFP: numFP,
		// Free-list occupancy can never exceed the rename-register count, so
		// sizing the backing arrays once keeps Commit/Undo allocation-free.
		freeInt: make([]int, 0, numInt-isa.NumArchRegs),
		freeFP:  make([]int, 0, numFP-isa.NumArchRegs),
	}
	for i := 0; i < isa.NumArchRegs; i++ {
		t.intMap[i] = i
		t.fpMap[i] = numInt + i
	}
	for p := isa.NumArchRegs; p < numInt; p++ {
		t.freeInt = append(t.freeInt, p)
	}
	for p := numInt + isa.NumArchRegs; p < numInt+numFP; p++ {
		t.freeFP = append(t.freeFP, p)
	}
	return t
}

// NumPhys returns the total size of the unified physical register space.
func (t *Table) NumPhys() int { return t.numInt + t.numFP }

// FreeInt returns the number of free integer physical registers.
func (t *Table) FreeInt() int { return len(t.freeInt) }

// FreeFP returns the number of free FP physical registers.
func (t *Table) FreeFP() int { return len(t.freeFP) }

// Lookup returns the current physical mapping of an architectural register,
// or -1 for invalid/zero registers.
func (t *Table) Lookup(r isa.Reg) int {
	if !r.Valid() || r.IsZero() {
		return -1
	}
	if r.File == isa.RegFP {
		return t.fpMap[r.Index]
	}
	return t.intMap[r.Index]
}

// needsDest reports whether in allocates a new physical register.
func needsDest(in *isa.Instr) bool {
	return in.Dest.Valid() && !in.Dest.IsZero()
}

// CanRename reports whether a free physical register is available for the
// instruction's destination (always true for instructions without one).
func (t *Table) CanRename(in *isa.Instr) bool {
	if !needsDest(in) {
		return true
	}
	if in.Dest.File == isa.RegFP {
		return len(t.freeFP) > 0
	}
	return len(t.freeInt) > 0
}

// Rename maps the instruction's sources through the RAT, allocates a
// physical destination, and records the previous mapping for recovery. It
// panics if CanRename is false.
func (t *Table) Rename(in *isa.Instr) {
	in.PhysSrc[0] = t.Lookup(in.Src[0])
	in.PhysSrc[1] = t.Lookup(in.Src[1])
	if !needsDest(in) {
		in.PhysDest = -1
		in.OldPhys = -1
		return
	}
	if in.Dest.File == isa.RegFP {
		if len(t.freeFP) == 0 {
			panic(fmt.Sprintf("rename: no free FP register for %v", in))
		}
		p := t.freeFP[len(t.freeFP)-1]
		t.freeFP = t.freeFP[:len(t.freeFP)-1]
		in.OldPhys = t.fpMap[in.Dest.Index]
		in.PhysDest = p
		t.fpMap[in.Dest.Index] = p
		t.fpAllocated++
	} else {
		if len(t.freeInt) == 0 {
			panic(fmt.Sprintf("rename: no free int register for %v", in))
		}
		p := t.freeInt[len(t.freeInt)-1]
		t.freeInt = t.freeInt[:len(t.freeInt)-1]
		in.OldPhys = t.intMap[in.Dest.Index]
		in.PhysDest = p
		t.intMap[in.Dest.Index] = p
		t.intAllocated++
	}
}

// Undo reverses a rename during squash recovery. Instructions must be undone
// in reverse program order (youngest first), as the ROB walk guarantees.
func (t *Table) Undo(in *isa.Instr) {
	if in.PhysDest < 0 {
		return
	}
	if in.Dest.File == isa.RegFP {
		if t.fpMap[in.Dest.Index] != in.PhysDest {
			panic(fmt.Sprintf("rename: out-of-order undo of %v", in))
		}
		t.fpMap[in.Dest.Index] = in.OldPhys
		t.freeFP = append(t.freeFP, in.PhysDest)
		t.fpAllocated--
	} else {
		if t.intMap[in.Dest.Index] != in.PhysDest {
			panic(fmt.Sprintf("rename: out-of-order undo of %v", in))
		}
		t.intMap[in.Dest.Index] = in.OldPhys
		t.freeInt = append(t.freeInt, in.PhysDest)
		t.intAllocated--
	}
	in.PhysDest = -1
	in.OldPhys = -1
}

// Commit retires an instruction: the previous mapping of its destination can
// never be referenced again and returns to the free list.
func (t *Table) Commit(in *isa.Instr) {
	if in.PhysDest < 0 || in.OldPhys < 0 {
		return
	}
	if in.Dest.File == isa.RegFP {
		t.freeFP = append(t.freeFP, in.OldPhys)
		t.fpAllocated--
	} else {
		t.freeInt = append(t.freeInt, in.OldPhys)
		t.intAllocated--
	}
}

// Sample records the current allocation-table occupancy (registers allocated
// beyond the architectural state) into the running averages.
func (t *Table) Sample() {
	t.samples++
	t.intOccSum += uint64(t.intAllocated)
	t.fpOccSum += uint64(t.fpAllocated)
}

// AvgIntOccupancy returns the mean sampled integer allocation-table
// occupancy.
func (t *Table) AvgIntOccupancy() float64 {
	if t.samples == 0 {
		return 0
	}
	return float64(t.intOccSum) / float64(t.samples)
}

// AvgFPOccupancy returns the mean sampled FP allocation-table occupancy.
func (t *Table) AvgFPOccupancy() float64 {
	if t.samples == 0 {
		return 0
	}
	return float64(t.fpOccSum) / float64(t.samples)
}

// CheckInvariant panics if the mapping and free lists are inconsistent: a
// physical register must be either mapped, free, or in flight, never two at
// once. inFlight is the set of PhysDest values of renamed-but-not-undone
// instructions whose OldPhys is still held. Used by tests.
func (t *Table) CheckInvariant(inFlightOld map[int]bool) {
	seen := make(map[int]string, t.NumPhys())
	mark := func(p int, what string) {
		if p < 0 {
			return
		}
		if prev, dup := seen[p]; dup {
			panic(fmt.Sprintf("rename: phys %d is both %s and %s", p, prev, what))
		}
		seen[p] = what
	}
	for i := 0; i < isa.NumArchRegs; i++ {
		mark(t.intMap[i], "int-mapped")
		mark(t.fpMap[i], "fp-mapped")
	}
	for _, p := range t.freeInt {
		mark(p, "int-free")
	}
	for _, p := range t.freeFP {
		mark(p, "fp-free")
	}
	for p := range inFlightOld {
		mark(p, "in-flight-old")
	}
	if len(seen) != t.NumPhys() {
		panic(fmt.Sprintf("rename: %d of %d physical registers accounted for", len(seen), t.NumPhys()))
	}
}
