package explore

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"galsim/internal/campaign"
	"galsim/internal/machine"
	"galsim/internal/telemetry"
)

// Evaluator scores one generation: it executes the sweep (one unit per
// workload × candidate) and returns results in expansion order. The
// campaign engine, a cluster coordinator, and a remote galsimd /sweep
// endpoint all fit behind it.
type Evaluator interface {
	EvaluateSweep(ctx context.Context, s campaign.Sweep, fn campaign.ProgressFunc) ([]campaign.UnitResult, error)
}

// BackendEvaluator adapts any campaign.Backend — the local engine or a
// cluster coordinator — into an Evaluator.
type BackendEvaluator struct{ Backend campaign.Backend }

// EvaluateSweep implements Evaluator.
func (b BackendEvaluator) EvaluateSweep(ctx context.Context, s campaign.Sweep, fn campaign.ProgressFunc) ([]campaign.UnitResult, error) {
	return campaign.RunSweepProgress(ctx, b.Backend, s, fn)
}

// warmSharer is the optional warm-up-sharing counter surface
// (campaign.Engine implements it).
type warmSharer interface {
	WarmSharing() (groups, savedInstructions uint64)
}

// Point is one evaluated machine design.
type Point struct {
	// Machine is the full candidate spec; populated on frontier points
	// (and the best point) so the frontier file is directly runnable.
	Machine *machine.Spec `json:"machine,omitempty"`
	// MachineName and MachineDigest identify the candidate on every
	// point: the digest is machine.Spec.Digest, the provenance key used
	// across BENCH and frontier artifacts.
	MachineName   string `json:"machine_name"`
	MachineDigest string `json:"machine_digest"`
	// Domains is the candidate's clock-domain count.
	Domains int `json:"domains"`
	// Generation is the generation that first proposed the design.
	Generation int `json:"generation"`
	// Objectives holds the absolute aggregated objective values;
	// Relative divides them by the baseline machine's.
	Objectives map[string]float64 `json:"objectives"`
	Relative   map[string]float64 `json:"relative"`
	// Fitness is the weighted scalarization of Relative (lower is
	// better; the baseline scores 1).
	Fitness float64 `json:"fitness"`
	// Rank is the Pareto non-domination rank: 0 = on the frontier.
	Rank int `json:"rank"`

	rel []float64 // Relative in objective order, for ranking
}

// Result is the search outcome. Its JSON form is deterministic: the same
// canonical spec and seed produce byte-identical bytes on any backend at
// any worker count.
type Result struct {
	// Spec is the canonical search spec that produced the result.
	Spec SearchSpec `json:"spec"`
	// BaselineMachine/BaselineDigest identify the normalization
	// reference (the built-in base machine), and Baseline holds its
	// absolute objective values.
	BaselineMachine string             `json:"baseline_machine"`
	BaselineDigest  string             `json:"baseline_digest"`
	Baseline        map[string]float64 `json:"baseline"`
	// Best is the lowest-fitness design found.
	Best Point `json:"best"`
	// Frontier is the Pareto frontier (rank-0 points, no point dominated
	// by any evaluated design), sorted by fitness then digest.
	Frontier []Point `json:"frontier"`
	// Points lists every distinct design evaluated, in first-evaluation
	// order.
	Points []Point `json:"points"`
	// Evaluations counts candidate scorings (cache hits included);
	// Generations counts strategy rounds. Exhausted marks a strategy
	// that ran out of moves (grid walked the space, hill-climb
	// converged) before the budget did.
	Evaluations int  `json:"evaluations"`
	Generations int  `json:"generations"`
	Exhausted   bool `json:"exhausted,omitempty"`

	// Exec holds execution-side counters (cache hits, warm-up sharing).
	// Deliberately excluded from the JSON artifact: they vary by backend
	// and cache temperature while the search result must not.
	Exec ExecStats `json:"-"`
}

// ExecStats are execution-side counters for one search.
type ExecStats struct {
	// Units is the number of sweep units executed (candidates ×
	// workloads, plus the baseline).
	Units int
	// CacheHits counts units served from a result cache, as visible to
	// the backend (a cluster coordinator reports zero; its workers cache
	// locally).
	CacheHits int
	// WarmGroups / WarmSavedInstructions are the backend's warm-up
	// sharing deltas across the search, when the backend exposes them.
	WarmGroups            uint64
	WarmSavedInstructions uint64
}

// Progress is a point-in-time view of a running search, delivered after
// every generation (and, unit-by-unit, while one executes). Callbacks
// may be invoked concurrently, like campaign.ProgressFunc.
type Progress struct {
	// Generation is the current generation (0-based while running).
	Generation int `json:"generation"`
	// Evaluations/Budget count candidate scorings against the cap.
	Evaluations int `json:"evaluations"`
	Budget      int `json:"budget"`
	// Units/UnitsTotal/CacheHits mirror the campaign progress of the
	// generation currently executing.
	Units      int `json:"units"`
	UnitsTotal int `json:"units_total"`
	CacheHits  int `json:"cache_hits"`
	// FrontierSize, BestFitness and BestMachine describe the best state
	// as of the last completed generation.
	FrontierSize int     `json:"frontier_size"`
	BestFitness  float64 `json:"best_fitness"`
	BestMachine  string  `json:"best_machine"`
	// WarmGroups/WarmSavedInstructions are cumulative warm-up sharing
	// deltas for this search (zero on backends without the counters).
	WarmGroups            uint64 `json:"warm_groups"`
	WarmSavedInstructions uint64 `json:"warm_saved_instructions"`
}

// ProgressFunc receives search progress snapshots.
type ProgressFunc func(Progress)

// Explorer runs searches. The zero value works: it evaluates on the
// shared local engine with no progress, metrics, or logging.
type Explorer struct {
	// Evaluator executes generations; nil selects the shared local
	// campaign engine.
	Evaluator Evaluator
	// Progress, when set, receives per-generation (and per-unit)
	// snapshots.
	Progress ProgressFunc
	// Metrics, when set, receives galsim_explore_* series.
	Metrics *telemetry.Registry
	// Log, when set, receives structured search logs (nil = slog default).
	Log *slog.Logger
}

// exploreMetrics are the galsim_explore_* instruments, resolved once per
// run (registration is idempotent on a telemetry.Registry).
type exploreMetrics struct {
	generations  telemetry.Counter
	evaluations  telemetry.Counter
	units        telemetry.Counter
	cacheHits    telemetry.Counter
	frontierSize telemetry.Gauge
	bestFitness  telemetry.Gauge
	cacheHitRate telemetry.Gauge
}

func newExploreMetrics(r *telemetry.Registry) *exploreMetrics {
	return &exploreMetrics{
		generations:  r.Counter("galsim_explore_generations_total", "Search generations completed."),
		evaluations:  r.Counter("galsim_explore_evaluations_total", "Candidate designs evaluated."),
		units:        r.Counter("galsim_explore_units_total", "Sweep units executed for search generations."),
		cacheHits:    r.Counter("galsim_explore_cache_hits_total", "Generation sweep units served from a result cache."),
		frontierSize: r.Gauge("galsim_explore_frontier_size", "Pareto frontier size of the current search."),
		bestFitness:  r.Gauge("galsim_explore_best_fitness", "Best scalar fitness of the current search (baseline = 1)."),
		cacheHitRate: r.Gauge("galsim_explore_cache_hit_rate", "Fraction of generation units served from cache."),
	}
}

// Run executes the search to its budget (or strategy exhaustion) and
// returns the Pareto frontier and best design.
func (x *Explorer) Run(ctx context.Context, spec SearchSpec) (*Result, error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ev := x.Evaluator
	if ev == nil {
		ev = BackendEvaluator{Backend: campaign.Shared()}
	}
	logger := x.Log
	if logger == nil {
		logger = slog.Default()
	}
	var met *exploreMetrics
	if x.Metrics != nil {
		met = newExploreMetrics(x.Metrics)
	}
	r := newRng(spec.Seed)
	strat, err := newStrategy(spec)
	if err != nil {
		return nil, err
	}
	objNames := spec.Fitness.Objectives
	weights := weightVector(spec.Fitness)

	res := &Result{
		Spec:            spec,
		BaselineMachine: machine.Base().Name,
		BaselineDigest:  machine.Base().Digest(),
	}

	// Score the normalization baseline first (not budget-counted: it is
	// the denominator, not a candidate).
	baseSweep := campaign.Sweep{
		Benchmarks:   spec.Workloads,
		Machines:     []string{"base"},
		Instructions: spec.Instructions,
	}
	baseUnits, err := ev.EvaluateSweep(ctx, baseSweep, nil)
	if err != nil {
		return nil, fmt.Errorf("explore: baseline evaluation: %w", err)
	}
	res.Exec.Units += len(baseUnits)
	baseVals := objectiveValues(objNames, summaries(baseUnits))
	for i, v := range baseVals {
		if !(v > 0) {
			return nil, fmt.Errorf("explore: degenerate baseline: objective %q is %v", objNames[i], v)
		}
	}
	res.Baseline = objectiveMap(objNames, baseVals)

	hist := newHistory()
	pointIdx := map[string]int{}              // machine digest -> res.Points index
	specByDigest := map[string]machine.Spec{} // for frontier spec attachment
	warmG0, warmS0 := warmSharing(ev)

	logger.Info("explore: search started",
		"name", spec.Name, "strategy", spec.Strategy, "seed", spec.Seed,
		"workloads", spec.Workloads, "population", spec.Budget.Population,
		"max_generations", spec.Budget.MaxGenerations, "max_evaluations", spec.Budget.MaxEvaluations)

	for res.Generations < spec.Budget.MaxGenerations && res.Evaluations < spec.Budget.MaxEvaluations {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		want := spec.Budget.Population
		if left := spec.Budget.MaxEvaluations - res.Evaluations; want > left {
			want = left
		}
		gs := strat.propose(r, hist, want)
		if len(gs) == 0 {
			res.Exhausted = true
			break
		}
		if len(gs) > want {
			gs = gs[:want]
		}
		specs := make([]machine.Spec, len(gs))
		for i, g := range gs {
			specs[i] = g.spec(spec.Space)
		}
		sweep := campaign.Sweep{
			Benchmarks:   spec.Workloads,
			MachineSpecs: specs,
			Instructions: spec.Instructions,
			DynamicDVFS:  spec.Space.DVFS,
			Warmup:       spec.Warmup,
		}
		gen := res.Generations
		snap := x.progressBase(res, gen)
		var mu sync.Mutex
		var lastCampaign campaign.Progress
		units, err := ev.EvaluateSweep(ctx, sweep, func(p campaign.Progress) {
			mu.Lock()
			lastCampaign = p
			mu.Unlock()
			if x.Progress != nil {
				s := snap
				s.Units, s.UnitsTotal, s.CacheHits = p.Completed, p.Total, p.CacheHits
				x.Progress(s)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("explore: generation %d: %w", gen, err)
		}
		if want := len(gs) * len(spec.Workloads); len(units) != want {
			return nil, fmt.Errorf("explore: generation %d: evaluator returned %d units, want %d", gen, len(units), want)
		}
		for ci, g := range gs {
			sums := make([]campaign.Summary, len(spec.Workloads))
			for wi := range spec.Workloads {
				sums[wi] = units[wi*len(gs)+ci].Summary
			}
			vals := objectiveValues(objNames, sums)
			rel := relativeValues(vals, baseVals)
			fit := scalarize(rel, weights)
			hist.add(g, fit)
			d := specs[ci].Digest()
			if _, ok := pointIdx[d]; !ok {
				pointIdx[d] = len(res.Points)
				specByDigest[d] = specs[ci]
				res.Points = append(res.Points, Point{
					MachineName:   specs[ci].Name,
					MachineDigest: d,
					Domains:       len(specs[ci].Domains),
					Generation:    gen,
					Objectives:    objectiveMap(objNames, vals),
					Relative:      objectiveMap(objNames, rel),
					Fitness:       fit,
					rel:           rel,
				})
			}
		}
		res.Evaluations += len(gs)
		res.Generations++
		res.Exec.Units += len(units)
		mu.Lock()
		genHits := lastCampaign.CacheHits
		mu.Unlock()
		res.Exec.CacheHits += genHits

		wg, ws := warmSharing(ev)
		prevG := res.Exec.WarmGroups
		res.Exec.WarmGroups, res.Exec.WarmSavedInstructions = wg-warmG0, ws-warmS0
		if spec.Warmup > 0 && len(gs) > 1 && res.Exec.WarmGroups == prevG {
			// Expected whenever every candidate is a distinct machine:
			// warm identities include the machine content, so only
			// duplicate designs can share a prefix.
			logger.Debug("explore: divergent candidates warmed independently (no shared prefixes this generation)",
				"generation", gen, "candidates", len(gs))
		}

		x.rank(res, specByDigest)
		best, _ := hist.best()
		logger.Info("explore: generation scored",
			"generation", gen, "candidates", len(gs), "evaluations", res.Evaluations,
			"frontier", len(res.Frontier), "best_fitness", best.fit,
			"cache_hits", genHits, "warm_groups", res.Exec.WarmGroups,
			"warm_saved_instructions", res.Exec.WarmSavedInstructions)
		if met != nil {
			met.generations.Inc()
			met.evaluations.Add(float64(len(gs)))
			met.units.Add(float64(len(units)))
			met.cacheHits.Add(float64(genHits))
			met.frontierSize.Set(float64(len(res.Frontier)))
			met.bestFitness.Set(res.Best.Fitness)
			if res.Exec.Units > 0 {
				met.cacheHitRate.Set(float64(res.Exec.CacheHits) / float64(res.Exec.Units))
			}
		}
		if x.Progress != nil {
			s := x.progressBase(res, res.Generations)
			s.Units, s.UnitsTotal, s.CacheHits = len(units), len(units), genHits
			x.Progress(s)
		}
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("explore: search produced no evaluations (budget %d evaluations, %d generations)",
			spec.Budget.MaxEvaluations, spec.Budget.MaxGenerations)
	}
	x.rank(res, specByDigest)
	logger.Info("explore: search finished",
		"name", spec.Name, "generations", res.Generations, "evaluations", res.Evaluations,
		"designs", len(res.Points), "frontier", len(res.Frontier),
		"best", res.Best.MachineName, "best_fitness", res.Best.Fitness,
		"exhausted", res.Exhausted)
	return res, nil
}

// progressBase builds the slow-moving part of a Progress snapshot.
func (x *Explorer) progressBase(res *Result, gen int) Progress {
	p := Progress{
		Generation:            gen,
		Evaluations:           res.Evaluations,
		Budget:                res.Spec.Budget.MaxEvaluations,
		FrontierSize:          len(res.Frontier),
		WarmGroups:            res.Exec.WarmGroups,
		WarmSavedInstructions: res.Exec.WarmSavedInstructions,
	}
	if len(res.Points) > 0 {
		p.BestFitness = res.Best.Fitness
		p.BestMachine = res.Best.MachineName
	}
	return p
}

// rank recomputes dominance ranks, the frontier, and the best point over
// the accumulated unique designs. specs maps machine digests back to
// full specs for the frontier (points deliberately do not retain specs
// in the Points list; the frontier and best carry them so the artifact
// is directly runnable).
func (x *Explorer) rank(res *Result, specs map[string]machine.Spec) {
	if len(res.Points) == 0 {
		return
	}
	rels := make([][]float64, len(res.Points))
	for i := range res.Points {
		rels[i] = res.Points[i].rel
	}
	ranks := paretoRanks(rels)
	bestIdx := 0
	res.Frontier = res.Frontier[:0]
	for i := range res.Points {
		p := &res.Points[i]
		p.Rank = ranks[i]
		p.Machine = nil
		if p.Fitness < res.Points[bestIdx].Fitness ||
			(p.Fitness == res.Points[bestIdx].Fitness && p.MachineDigest < res.Points[bestIdx].MachineDigest) {
			bestIdx = i
		}
	}
	for i := range res.Points {
		if ranks[i] == 0 {
			res.Frontier = append(res.Frontier, res.Points[i])
		}
	}
	sort.Slice(res.Frontier, func(i, j int) bool {
		if res.Frontier[i].Fitness != res.Frontier[j].Fitness {
			return res.Frontier[i].Fitness < res.Frontier[j].Fitness
		}
		return res.Frontier[i].MachineDigest < res.Frontier[j].MachineDigest
	})
	res.Best = res.Points[bestIdx]
	attach := func(p *Point) {
		if spec, ok := specs[p.MachineDigest]; ok {
			s := spec
			p.Machine = &s
		}
	}
	attach(&res.Best)
	for i := range res.Frontier {
		attach(&res.Frontier[i])
	}
}

func summaries(units []campaign.UnitResult) []campaign.Summary {
	out := make([]campaign.Summary, len(units))
	for i, u := range units {
		out[i] = u.Summary
	}
	return out
}

func objectiveMap(names []string, vals []float64) map[string]float64 {
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = vals[i]
	}
	return out
}

// warmSharing reads the evaluator's warm-up counters when available,
// unwrapping a BackendEvaluator to reach the engine underneath.
func warmSharing(ev Evaluator) (uint64, uint64) {
	var src any = ev
	if be, ok := ev.(BackendEvaluator); ok {
		src = be.Backend
	}
	if ws, ok := src.(warmSharer); ok {
		return ws.WarmSharing()
	}
	return 0, 0
}
