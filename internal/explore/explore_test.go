package explore

import (
	"context"
	"errors"
	"strings"
	"testing"

	"galsim/internal/campaign"
	"galsim/internal/machine"
	"galsim/internal/telemetry"
)

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"strategy":"grid","populatino":4}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
	if _, err := Parse([]byte(`{"seed":3}{"seed":4}`)); err == nil {
		t.Fatal("expected trailing-data error")
	}
	s, err := Parse([]byte(`{"strategy":"grid","budget":{"population":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy != StrategyGrid || s.Budget.Population != 4 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestCanonicalDefaults(t *testing.T) {
	c := SearchSpec{}.Canonical()
	if c.Seed != 1 || c.Strategy != StrategyEvolutionary {
		t.Fatalf("defaults: %+v", c)
	}
	if len(c.Workloads) != 1 || c.Workloads[0] != "gcc" {
		t.Fatalf("workloads: %v", c.Workloads)
	}
	if c.Budget.Population != 16 || c.Budget.MaxGenerations != 20 || c.Budget.MaxEvaluations != 320 {
		t.Fatalf("budget: %+v", c.Budget)
	}
	if len(c.Space.FrequenciesGHz) != 1 || c.Space.FrequenciesGHz[0] != 1.0 {
		t.Fatalf("frequencies: %v", c.Space.FrequenciesGHz)
	}
	if len(c.Space.LinkDepths) != 1 || c.Space.LinkDepths[0] != 0 {
		t.Fatalf("link depths: %v", c.Space.LinkDepths)
	}
	if len(c.Fitness.Objectives) != 3 {
		t.Fatalf("objectives: %v", c.Fitness.Objectives)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Axis normalization dedups and sorts, and keeps the default choice.
	c2 := SearchSpec{Space: SpaceSpec{
		FrequenciesGHz: []float64{2, 1, 2, 0.5},
		LinkDepths:     []int{8, 8, 4},
		SyncEdges:      []int{4},
	}}.Canonical()
	if got := c2.Space.FrequenciesGHz; len(got) != 3 || got[0] != 0.5 || got[2] != 2 {
		t.Fatalf("frequencies: %v", got)
	}
	if got := c2.Space.LinkDepths; len(got) != 3 || got[0] != 0 {
		t.Fatalf("link depths: %v", got)
	}
	if got := c2.Space.SyncEdges; len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("sync edges: %v", got)
	}
}

func TestValidateLimits(t *testing.T) {
	var le *LimitError
	cases := []SearchSpec{
		{Budget: BudgetSpec{Population: 100000}},
		{Budget: BudgetSpec{MaxGenerations: 100000}},
		{Budget: BudgetSpec{MaxEvaluations: 1 << 30}},
		{Workloads: make([]string, capWorkloads+1)},
		{Strategy: StrategyGrid, Space: SpaceSpec{FrequenciesGHz: []float64{
			0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
			1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}}},
	}
	for i, s := range cases {
		err := s.Validate()
		if err == nil {
			t.Fatalf("case %d: expected error", i)
		}
		if i == 3 {
			continue // bad workload names may trip first; any error is fine
		}
		if !errors.As(err, &le) {
			t.Fatalf("case %d: want LimitError, got %v", i, err)
		}
	}
	if err := (SearchSpec{Strategy: "simulated-annealing"}).Validate(); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
	if err := (SearchSpec{Workloads: []string{"doom"}}).Validate(); err == nil {
		t.Fatal("expected unknown-workload error")
	}
	if err := (SearchSpec{Fitness: FitnessSpec{Weights: map[string]float64{"delay": -1}}}).Validate(); err == nil {
		t.Fatal("expected bad-weight error")
	}
	if err := (SearchSpec{Fitness: FitnessSpec{Objectives: []string{"beauty"}}}).Validate(); err == nil {
		t.Fatal("expected unknown-objective error")
	}
}

func TestBuiltinCollapse(t *testing.T) {
	spaceDVFS := SpaceSpec{DVFS: true}.canonical()
	spaceStatic := SpaceSpec{}.canonical()

	if got := baseGenome(spaceDVFS).spec(spaceDVFS); got.Name != "base" {
		t.Fatalf("base genome built %q", got.Name)
	}
	if got := galsGenome(spaceDVFS).spec(spaceDVFS); got.Name != "gals" {
		t.Fatalf("gals genome built %q", got.Name)
	}
	if got := galsGenome(spaceDVFS).spec(spaceDVFS); got.Digest() != machine.GALS().Digest() {
		t.Fatal("gals genome digest mismatch")
	}
	// Without the DVFS axis the all-singleton partition is all-static:
	// a different machine than the builtin, under its own name.
	got := galsGenome(spaceStatic).spec(spaceStatic)
	if got.Name != "fetch.decode.int.fp.mem" {
		t.Fatalf("static singleton name %q", got.Name)
	}
	if got.Digest() == machine.GALS().Digest() {
		t.Fatal("static singletons must not collapse onto gals")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenomeSpecsValidate(t *testing.T) {
	spaces := []SpaceSpec{
		SpaceSpec{}.canonical(),
		SpaceSpec{DVFS: true}.canonical(),
		SpaceSpec{DVFS: true, FrequenciesGHz: []float64{0.5, 1, 2},
			LinkDepths: []int{8}, SyncEdges: []int{1, 4}}.canonical(),
	}
	for si, space := range spaces {
		r := newRng(int64(si + 1))
		for i := 0; i < 200; i++ {
			g := randomGenome(r, space)
			ms := g.spec(space)
			if err := ms.Validate(); err != nil {
				t.Fatalf("space %d: random genome %v builds invalid spec %q: %v", si, g, ms.Name, err)
			}
			m := mutate(r, g, space)
			if err := m.spec(space).Validate(); err != nil {
				t.Fatalf("space %d: mutant invalid: %v", si, err)
			}
			c := crossover(r, g, galsGenome(space), space)
			if err := c.spec(space).Validate(); err != nil {
				t.Fatalf("space %d: crossover child invalid: %v", si, err)
			}
		}
	}
}

func TestNeighborsExcludeSelfAndDuplicates(t *testing.T) {
	space := SpaceSpec{DVFS: true, FrequenciesGHz: []float64{0.5, 1}}.canonical()
	for _, g := range []genome{galsGenome(space), baseGenome(space)} {
		nb := neighbors(g, space)
		if len(nb) == 0 {
			t.Fatal("no neighbors")
		}
		seen := map[string]bool{g.key(): true}
		for _, n := range nb {
			if seen[n.key()] {
				t.Fatalf("duplicate or self neighbor %q", n.key())
			}
			seen[n.key()] = true
		}
	}
}

func TestGridIterMatchesGridSize(t *testing.T) {
	spaces := []SpaceSpec{
		SpaceSpec{}.canonical(),
		SpaceSpec{DVFS: true}.canonical(),
		SpaceSpec{FrequenciesGHz: []float64{0.8, 1}, SyncEdges: []int{4}}.canonical(),
	}
	for si, space := range spaces {
		want := gridSize(space)
		if want <= 0 {
			t.Fatalf("space %d: gridSize %d", si, want)
		}
		it := newGridIter(space)
		seen := map[string]bool{}
		for {
			g, ok := it.next()
			if !ok {
				break
			}
			key := g.key()
			if seen[key] {
				t.Fatalf("space %d: grid revisits %q", si, key)
			}
			seen[key] = true
			if err := g.spec(space).Validate(); err != nil {
				t.Fatalf("space %d: grid genome invalid: %v", si, err)
			}
		}
		if len(seen) != want {
			t.Fatalf("space %d: grid enumerated %d genomes, gridSize says %d", si, len(seen), want)
		}
	}
	// The default space is exactly the 52 set partitions of 5 structures.
	if got := gridSize(SpaceSpec{}.canonical()); got != 52 {
		t.Fatalf("default grid space = %d, want 52", got)
	}
}

func TestParetoRanks(t *testing.T) {
	pts := [][]float64{
		{1, 1},     // rank 2: below {0.6,1.0}, itself below the frontier
		{0.5, 0.9}, // frontier
		{0.9, 0.5}, // frontier
		{0.6, 1.0}, // rank 1: dominated by {0.5,0.9} only
		{0.7, 0.7}, // frontier (incomparable with both)
		{1.1, 1.1}, // rank 3: end of the {0.5,0.9}≺{0.6,1}≺{1,1} chain
	}
	ranks := paretoRanks(pts)
	want := []int{2, 0, 0, 1, 0, 3}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestScalarizeWeights(t *testing.T) {
	rel := []float64{2, 1}
	if got := scalarize(rel, []float64{1, 1}); got != 1.5 {
		t.Fatalf("scalarize = %v", got)
	}
	if got := scalarize(rel, []float64{3, 1}); got != 1.75 {
		t.Fatalf("weighted scalarize = %v", got)
	}
}

// TestFrontierValidity runs a small real search and checks the acceptance
// property: the frontier is a valid Pareto front (no frontier point
// dominated by any evaluated point), every point carries its provenance
// digest, and frontier points carry runnable machine specs.
func TestFrontierValidity(t *testing.T) {
	spec := SearchSpec{
		Seed:         11,
		Strategy:     StrategyEvolutionary,
		Workloads:    []string{"gcc"},
		Instructions: 2000,
		Budget:       BudgetSpec{Population: 6, MaxGenerations: 3},
	}
	x := &Explorer{Evaluator: BackendEvaluator{Backend: campaign.NewEngine(4)}, Metrics: telemetry.NewRegistry()}
	res, err := x.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, f := range res.Frontier {
		if f.Rank != 0 {
			t.Fatalf("frontier point %s has rank %d", f.MachineName, f.Rank)
		}
		if f.Machine == nil {
			t.Fatalf("frontier point %s has no machine spec", f.MachineName)
		}
		if err := f.Machine.Validate(); err != nil {
			t.Fatalf("frontier machine %s invalid: %v", f.MachineName, err)
		}
		if f.Machine.Digest() != f.MachineDigest {
			t.Fatalf("frontier point %s digest mismatch", f.MachineName)
		}
		for _, p := range res.Points {
			if dominates(p.rel, f.rel) {
				t.Fatalf("frontier point %s dominated by %s", f.MachineName, p.MachineName)
			}
		}
	}
	for _, p := range res.Points {
		if len(p.MachineDigest) != 64 || p.MachineName == "" {
			t.Fatalf("point missing provenance: %+v", p)
		}
	}
	if res.Best.Fitness > res.Points[0].Fitness {
		t.Fatal("best is not minimal")
	}
	if res.Exec.Units == 0 {
		t.Fatal("no exec units recorded")
	}
}

// TestStrategiesProposeAndConverge exercises every strategy end to end on
// a tiny budget and checks strategy-specific termination behavior.
func TestStrategiesProposeAndConverge(t *testing.T) {
	eng := campaign.NewEngine(4)
	for _, strat := range StrategyNames() {
		spec := SearchSpec{
			Seed:         5,
			Strategy:     strat,
			Workloads:    []string{"gcc"},
			Instructions: 1000,
			Budget:       BudgetSpec{Population: 8, MaxGenerations: 2},
		}
		x := &Explorer{Evaluator: BackendEvaluator{Backend: eng}}
		res, err := x.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Evaluations == 0 || len(res.Frontier) == 0 {
			t.Fatalf("%s: empty result", strat)
		}
	}
	// Grid over the default space exhausts after 52 evaluations and says so.
	spec := SearchSpec{
		Seed: 1, Strategy: StrategyGrid, Workloads: []string{"gcc"}, Instructions: 1000,
		Budget: BudgetSpec{Population: 30, MaxGenerations: 10},
	}
	x := &Explorer{Evaluator: BackendEvaluator{Backend: eng}}
	res, err := x.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Evaluations != 52 || len(res.Points) != 52 {
		t.Fatalf("grid: exhausted=%v evaluations=%d points=%d, want true/52/52",
			res.Exhausted, res.Evaluations, len(res.Points))
	}
}

// TestCandidateNamesFitMachineCap: every generated name must satisfy the
// machine-spec name validation even with a gene-digest suffix.
func TestCandidateNamesFitMachineCap(t *testing.T) {
	space := SpaceSpec{DVFS: true, FrequenciesGHz: []float64{0.5, 1, 2},
		LinkDepths: []int{32}, SyncEdges: []int{4}}.canonical()
	r := newRng(99)
	for i := 0; i < 500; i++ {
		g := randomGenome(r, space)
		ms := g.spec(space)
		if len(ms.Name) > 64 {
			t.Fatalf("name too long: %q", ms.Name)
		}
		if strings.Contains(ms.Name, " ") {
			t.Fatalf("name has spaces: %q", ms.Name)
		}
	}
}
