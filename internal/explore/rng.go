package explore

// rng is a splitmix64 generator: tiny, fast, and — unlike math/rand —
// guaranteed stable across Go releases, which the byte-identical-result
// contract depends on. Modulo bias in intn is irrelevant for search-move
// selection and accepted for the same reason.
type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{s: uint64(seed)} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("explore: intn on non-positive bound")
	}
	return int(r.next() % uint64(n))
}

func (r *rng) coin() bool { return r.next()&1 == 1 }
