package explore

import (
	"context"
	"strings"
	"testing"

	"galsim/internal/campaign"
)

// TestRediscoverFetchDecodeFusion is the bounded-budget regression behind
// the subsystem's reason to exist: EXPERIMENTS.md's hand-built partition
// study found that fusing fetch+decode onto one clock recovers most of
// the GALS machine's performance loss on gcc (relative performance
// 0.909 → ≥0.95) while keeping a grid-level power saving. A seeded
// evolutionary search over domain assignments must rediscover a design
// with those properties automatically — on the Pareto frontier — within
// four generations of ten candidates.
func TestRediscoverFetchDecodeFusion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-instruction search")
	}
	spec := SearchSpec{
		Name:         "rediscover-fusion",
		Seed:         3,
		Strategy:     StrategyEvolutionary,
		Workloads:    []string{"gcc"},
		Instructions: 50000,
		Budget:       BudgetSpec{Population: 10, MaxGenerations: 4},
	}
	x := &Explorer{Evaluator: BackendEvaluator{Backend: campaign.NewEngine(0)}}
	res, err := x.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// rel-perf ≥ 0.95 ⇔ relative delay ≤ 1/0.95; power saving vs the
	// synchronous grid machine ⇔ relative power < 1 (with headroom).
	const maxRelDelay = 1 / 0.95
	const maxRelPower = 0.96
	var found *Point
	for i := range res.Frontier {
		p := &res.Frontier[i]
		if p.Domains < 2 || p.Machine == nil {
			continue
		}
		if p.Relative[ObjDelay] <= maxRelDelay && p.Relative[ObjPower] <= maxRelPower &&
			p.Machine.Assign["fetch"] == p.Machine.Assign["decode"] {
			found = p
			break
		}
	}
	if found == nil {
		var names []string
		for _, p := range res.Frontier {
			names = append(names, p.MachineName)
		}
		t.Fatalf("no fetch+decode-fused frontier design with rel-delay ≤ %.4f and rel-power ≤ %.2f; frontier: %s",
			maxRelDelay, maxRelPower, strings.Join(names, ", "))
	}
	t.Logf("rediscovered %s: rel-delay %.4f (perf %.4f), rel-power %.4f, %d domains, generation %d",
		found.MachineName, found.Relative[ObjDelay], 1/found.Relative[ObjDelay],
		found.Relative[ObjPower], found.Domains, found.Generation)
	// And the GALS reference itself must not satisfy the bar the search
	// cleared (otherwise this test proves nothing): the paper's machine
	// loses ~9% performance at this budget.
	for _, p := range res.Points {
		if p.MachineName == "gals" && p.Relative[ObjDelay] <= maxRelDelay {
			t.Fatalf("gals already meets the delay bar (rel-delay %.4f); tighten the test", p.Relative[ObjDelay])
		}
	}
}
