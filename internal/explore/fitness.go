package explore

import (
	"fmt"
	"sort"

	"galsim/internal/campaign"
)

// objectiveValues aggregates one candidate's per-workload summaries into
// the named objectives, in the given order. Delay and energy sum across
// workloads; power takes the worst workload's average draw (the grid-
// provisioning proxy for peak power). Aggregation order is the workload
// order, so results are bit-stable.
func objectiveValues(names []string, sums []campaign.Summary) []float64 {
	out := make([]float64, len(names))
	for i, name := range names {
		switch name {
		case ObjDelay:
			for _, s := range sums {
				out[i] += s.SimSeconds
			}
		case ObjEnergy:
			for _, s := range sums {
				out[i] += s.EnergyJoules
			}
		case ObjPower:
			for _, s := range sums {
				if s.PowerWatts > out[i] {
					out[i] = s.PowerWatts
				}
			}
		default:
			panic(fmt.Sprintf("explore: unvalidated objective %q", name))
		}
	}
	return out
}

// relativeValues normalizes objectives against the baseline machine's.
// Baselines are validated positive before the search starts.
func relativeValues(vals, base []float64) []float64 {
	out := make([]float64, len(vals))
	for i := range vals {
		out[i] = vals[i] / base[i]
	}
	return out
}

// scalarize folds relative objectives into the selection fitness: the
// weighted mean, lower is better. The baseline machine scores exactly 1.
func scalarize(rel, weights []float64) float64 {
	var num, den float64
	for i := range rel {
		num += weights[i] * rel[i]
		den += weights[i]
	}
	return num / den
}

// weightVector resolves the spec's weight map against its objective
// order; missing entries weigh 1.
func weightVector(f FitnessSpec) []float64 {
	out := make([]float64, len(f.Objectives))
	for i, name := range f.Objectives {
		out[i] = 1
		if w, ok := f.Weights[name]; ok {
			out[i] = w
		}
	}
	return out
}

// dominates reports Pareto dominance: a is at least as good everywhere
// and strictly better somewhere (lower is better on every objective).
func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// paretoRanks assigns each point its non-dominated-sorting rank: 0 for
// the frontier, and in general the length of the longest dominance chain
// above the point (equivalent to iterative frontier peeling, computed as
// a DP over a topological order — O(n²) instead of peeling's worst-case
// O(n³)). Points are rows of relative objective values.
func paretoRanks(points [][]float64) []int {
	n := len(points)
	ranks := make([]int, n)
	// Topological order: dominance implies a strictly smaller coordinate
	// sum, so sorting by sum puts every dominator before its dominatees.
	order := make([]int, n)
	sums := make([]float64, n)
	for i, p := range points {
		order[i] = i
		for _, v := range p {
			sums[i] += v
		}
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if sums[a] != sums[b] {
			return sums[a] < sums[b]
		}
		return a < b
	})
	for oi, i := range order {
		for _, j := range order[:oi] {
			if ranks[j]+1 > ranks[i] && dominates(points[j], points[i]) {
				ranks[i] = ranks[j] + 1
			}
		}
	}
	return ranks
}
