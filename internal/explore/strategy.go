package explore

import (
	"fmt"
	"sort"
)

// evaluated is one scored genome in the search history.
type evaluated struct {
	g   genome
	key string
	fit float64
}

// history records every evaluation, in order, for strategy feedback.
type history struct {
	seen map[string]bool
	all  []evaluated
}

func newHistory() *history { return &history{seen: map[string]bool{}} }

func (h *history) add(g genome, fit float64) {
	key := g.key()
	h.all = append(h.all, evaluated{g: g, key: key, fit: fit})
	h.seen[key] = true
}

// best returns the lowest-fitness evaluation (ties to the earliest).
func (h *history) best() (evaluated, bool) {
	if len(h.all) == 0 {
		return evaluated{}, false
	}
	best := h.all[0]
	for _, e := range h.all[1:] {
		if e.fit < best.fit {
			best = e
		}
	}
	return best, true
}

// top returns the n best distinct genomes, sorted by (fitness, key) — a
// total order, so selection pools are identical across runs.
func (h *history) top(n int) []evaluated {
	byKey := map[string]evaluated{}
	var keys []string
	for _, e := range h.all {
		if _, ok := byKey[e.key]; !ok {
			byKey[e.key] = e
			keys = append(keys, e.key)
		}
	}
	out := make([]evaluated, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].fit != out[j].fit {
			return out[i].fit < out[j].fit
		}
		return out[i].key < out[j].key
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// strategy proposes the next batch of candidates. A nil/empty return
// means the strategy has exhausted its space (grid walked out, hill-climb
// converged); the search stops there and marks the result exhausted.
type strategy interface {
	propose(r *rng, h *history, n int) []genome
}

func newStrategy(spec SearchSpec) (strategy, error) {
	switch spec.Strategy {
	case StrategyGrid:
		return &gridStrategy{it: newGridIter(spec.Space)}, nil
	case StrategyRandom:
		return &randomStrategy{space: spec.Space}, nil
	case StrategyHillClimb:
		return &hillClimb{space: spec.Space}, nil
	case StrategyEvolutionary:
		return &evolutionary{space: spec.Space, pool: spec.Budget.Population}, nil
	default:
		return nil, fmt.Errorf("explore: unknown strategy %q (strategies: %v)", spec.Strategy, StrategyNames())
	}
}

// gridStrategy exhaustively walks the whole space in a fixed order.
type gridStrategy struct{ it *gridIter }

func (s *gridStrategy) propose(r *rng, h *history, n int) []genome {
	var out []genome
	for len(out) < n {
		g, ok := s.it.next()
		if !ok {
			break
		}
		out = append(out, g)
	}
	return out
}

// randomStrategy samples independently, retrying a bounded number of
// times to avoid re-proposing evaluated genomes (duplicates that slip
// through are cheap — the result cache already holds them — but they
// spend budget).
type randomStrategy struct{ space SpaceSpec }

const dedupRetries = 32

func (s *randomStrategy) propose(r *rng, h *history, n int) []genome {
	out := make([]genome, 0, n)
	batch := map[string]bool{}
	for len(out) < n {
		g := randomGenome(r, s.space)
		for try := 0; try < dedupRetries; try++ {
			key := g.key()
			if !h.seen[key] && !batch[key] {
				break
			}
			g = randomGenome(r, s.space)
		}
		batch[g.key()] = true
		out = append(out, g)
	}
	return out
}

// hillClimb starts from the paper's GALS machine and greedily walks the
// single-move neighborhood: each generation evaluates the next slice of
// the current best's unevaluated neighbors, recentering whenever the best
// improves. It converges (returns nothing) once the neighborhood of the
// best point is fully evaluated without finding an improvement.
type hillClimb struct {
	space  SpaceSpec
	init   bool
	center evaluated // zero-valued until the first recenter
	nbrs   []genome
	i      int
}

func (s *hillClimb) propose(r *rng, h *history, n int) []genome {
	if !s.init {
		s.init = true
		start := galsGenome(s.space)
		s.center = evaluated{g: start, key: start.key()}
		s.nbrs = neighbors(start, s.space)
		out := []genome{start}
		for s.i < len(s.nbrs) && len(out) < n {
			out = append(out, s.nbrs[s.i])
			s.i++
		}
		return out
	}
	if best, ok := h.best(); ok && best.key != s.center.key {
		s.center = best
		s.nbrs = neighbors(best.g, s.space)
		s.i = 0
	}
	var out []genome
	for s.i < len(s.nbrs) && len(out) < n {
		g := s.nbrs[s.i]
		s.i++
		if !h.seen[g.key()] {
			out = append(out, g)
		}
	}
	return out
}

// evolutionary seeds generation zero with both builtins plus random
// fill, then breeds: tournament selection over the top-of-history pool,
// optional crossover, and one to three mutation moves per child.
type evolutionary struct {
	space SpaceSpec
	pool  int
}

func (s *evolutionary) propose(r *rng, h *history, n int) []genome {
	out := make([]genome, 0, n)
	batch := map[string]bool{}
	add := func(g genome) {
		batch[g.key()] = true
		out = append(out, g)
	}
	if len(h.all) == 0 {
		add(galsGenome(s.space))
		if n > 1 {
			add(baseGenome(s.space))
		}
		for len(out) < n {
			g := randomGenome(r, s.space)
			for try := 0; try < dedupRetries && batch[g.key()]; try++ {
				g = randomGenome(r, s.space)
			}
			add(g)
		}
		return out
	}
	pool := h.top(s.pool)
	for len(out) < n {
		var g genome
		for try := 0; try < dedupRetries; try++ {
			p := s.tournament(r, pool)
			if len(pool) >= 2 && r.coin() {
				q := s.tournament(r, pool)
				g = crossover(r, p.g, q.g, s.space)
			} else {
				g = p.g
			}
			for moves := 1 + r.intn(3); moves > 0; moves-- {
				g = mutate(r, g, s.space)
			}
			if key := g.key(); !h.seen[key] && !batch[key] {
				break
			}
		}
		add(g)
	}
	return out
}

// tournament picks the fitter of two uniform draws (ties to the earlier
// pool slot; the pool is totally ordered already).
func (s *evolutionary) tournament(r *rng, pool []evaluated) evaluated {
	i, j := r.intn(len(pool)), r.intn(len(pool))
	if j < i {
		i = j
	}
	// pool is sorted best-first, so the smaller index is at least as fit.
	return pool[i]
}
