package explore

import (
	"fmt"
	"strings"

	"galsim/internal/machine"
)

// structNames is the pipeline-structure list in pipeline order — the
// genome's index space.
var structNames = machine.Structures()

// execStruct marks the structures whose issue queues can feed the dynamic
// DVFS controller (machine.PolicyDynamic is only valid on domains made
// solely of these).
var execStruct = func() []bool {
	out := make([]bool, len(structNames))
	for i, n := range structNames {
		out[i] = n == "int" || n == "fp" || n == "mem"
	}
	return out
}()

// genome is one candidate machine in search coordinates: a partition of
// the pipeline structures into clock domains (assign, kept canonical as a
// restricted-growth string: assign[0]==0 and each later structure's label
// is at most one past the running maximum, so group ids are ordered by
// first member) plus per-group genes (frequency choice, DVFS policy) and
// machine-wide link-geometry genes (indices into the SpaceSpec choice
// lists; index of value 0 = keep machine default).
type genome struct {
	assign []uint8
	freq   []uint8
	dvfs   []bool
	depth  uint8
	sync   uint8
}

func (g genome) groups() int {
	maxg := uint8(0)
	for _, a := range g.assign {
		if a > maxg {
			maxg = a
		}
	}
	return int(maxg) + 1
}

func (g genome) clone() genome {
	return genome{
		assign: append([]uint8(nil), g.assign...),
		freq:   append([]uint8(nil), g.freq...),
		dvfs:   append([]bool(nil), g.dvfs...),
		depth:  g.depth,
		sync:   g.sync,
	}
}

// key is the genome's identity for dedup and history lookup.
func (g genome) key() string {
	var b strings.Builder
	for _, a := range g.assign {
		fmt.Fprintf(&b, "%d.", a)
	}
	b.WriteByte('f')
	for _, f := range g.freq {
		fmt.Fprintf(&b, "%d.", f)
	}
	b.WriteByte('d')
	for _, d := range g.dvfs {
		if d {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	fmt.Fprintf(&b, "l%d s%d", g.depth, g.sync)
	return b.String()
}

// members returns the structure indices of group gi, in pipeline order.
func (g genome) members(gi int) []int {
	var out []int
	for i, a := range g.assign {
		if int(a) == gi {
			out = append(out, i)
		}
	}
	return out
}

// execOnly reports whether every structure in group gi is an execution
// structure — the precondition for a dynamic DVFS policy.
func (g genome) execOnly(gi int) bool {
	any := false
	for i, a := range g.assign {
		if int(a) == gi {
			if !execStruct[i] {
				return false
			}
			any = true
		}
	}
	return any
}

// canonicalAssign relabels an arbitrary valid grouping into restricted-
// growth form and returns the label mapping old→new (indexed by old
// label; -1 for labels with no members).
func canonicalAssign(assign []uint8) (out []uint8, remap []int) {
	out = make([]uint8, len(assign))
	remap = make([]int, 256)
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	for i, a := range assign {
		if remap[a] < 0 {
			remap[a] = next
			next++
		}
		out[i] = uint8(remap[a])
	}
	return out, remap
}

// withAssign rebuilds g around a new grouping (labels need not be
// canonical): each new group inherits the freq/dvfs genes of the old
// group of its first member, then the genome is repaired against space.
func (g genome) withAssign(assign []uint8, space SpaceSpec) genome {
	ca, _ := canonicalAssign(assign)
	k := 0
	for _, a := range ca {
		if int(a)+1 > k {
			k = int(a) + 1
		}
	}
	out := genome{assign: ca, freq: make([]uint8, k), dvfs: make([]bool, k), depth: g.depth, sync: g.sync}
	for gi := 0; gi < k; gi++ {
		for i, a := range ca {
			if int(a) == gi {
				old := g.assign[i]
				out.freq[gi] = g.freq[old]
				out.dvfs[gi] = g.dvfs[old]
				break
			}
		}
	}
	out.repair(space)
	return out
}

// repair clamps gene indices into the space and clears DVFS flags the
// machine model would reject (non-execution domains, or a space without
// the DVFS axis). Every repaired genome builds a valid machine.Spec.
func (g *genome) repair(space SpaceSpec) {
	for gi := range g.freq {
		if int(g.freq[gi]) >= len(space.FrequenciesGHz) {
			g.freq[gi] = 0
		}
	}
	for gi := range g.dvfs {
		if g.dvfs[gi] && (!space.DVFS || !g.execOnly(gi)) {
			g.dvfs[gi] = false
		}
	}
	if int(g.depth) >= len(space.LinkDepths) {
		g.depth = 0
	}
	if int(g.sync) >= len(space.SyncEdges) {
		g.sync = 0
	}
}

// defaultFreqIdx is the gene index of the 1 GHz nominal (or the lowest
// frequency if the space excludes it) — the "unchanged" choice used for
// default-gene detection and seed genomes.
func defaultFreqIdx(space SpaceSpec) uint8 {
	for i, f := range space.FrequenciesGHz {
		if f == 1.0 {
			return uint8(i)
		}
	}
	return 0
}

// defaultGenes reports whether every gene holds its default: nominal
// frequency, default link geometry, and the default DVFS policy (dynamic
// exactly on execution-only groups when the space searches DVFS — the
// builtin GALS convention).
func (g genome) defaultGenes(space SpaceSpec) bool {
	df := defaultFreqIdx(space)
	for gi := range g.freq {
		if g.freq[gi] != df {
			return false
		}
		want := space.DVFS && g.execOnly(gi)
		if g.dvfs[gi] != want {
			return false
		}
	}
	return g.depth == 0 && g.sync == 0
}

// baseGenome is the fully synchronous machine's coordinates.
func baseGenome(space SpaceSpec) genome {
	g := genome{
		assign: make([]uint8, len(structNames)),
		freq:   []uint8{defaultFreqIdx(space)},
		dvfs:   []bool{false},
	}
	return g
}

// galsGenome is the paper's five-domain machine's coordinates.
func galsGenome(space SpaceSpec) genome {
	n := len(structNames)
	g := genome{assign: make([]uint8, n), freq: make([]uint8, n), dvfs: make([]bool, n)}
	df := defaultFreqIdx(space)
	for i := 0; i < n; i++ {
		g.assign[i] = uint8(i)
		g.freq[i] = df
		g.dvfs[i] = space.DVFS && execStruct[i]
	}
	return g
}

// randomGenome draws a uniform-ish genome: a random restricted-growth
// string (not uniform over partitions, but deterministic and well spread)
// with independently random genes.
func randomGenome(r *rng, space SpaceSpec) genome {
	n := len(structNames)
	g := genome{assign: make([]uint8, n)}
	maxg := 0
	for i := 1; i < n; i++ {
		v := r.intn(maxg + 2)
		g.assign[i] = uint8(v)
		if v > maxg {
			maxg = v
		}
	}
	k := maxg + 1
	g.freq = make([]uint8, k)
	g.dvfs = make([]bool, k)
	for gi := 0; gi < k; gi++ {
		g.freq[gi] = uint8(r.intn(len(space.FrequenciesGHz)))
		if space.DVFS && g.execOnly(gi) {
			g.dvfs[gi] = r.coin()
		}
	}
	g.depth = uint8(r.intn(len(space.LinkDepths)))
	g.sync = uint8(r.intn(len(space.SyncEdges)))
	return g
}

// neighbors enumerates every single-move variant of g, in a fixed order:
// structure moves (including isolation into a fresh domain), whole-domain
// merges, per-domain frequency changes, DVFS toggles, and link-geometry
// changes. The list is deduplicated by key and never contains g itself;
// mutation picks uniformly from it, and hill-climbing scans it in order.
func neighbors(g genome, space SpaceSpec) []genome {
	k := g.groups()
	self := g.key()
	seen := map[string]bool{self: true}
	var out []genome
	add := func(c genome) {
		key := c.key()
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	// Move structure s into group t (t == k isolates s into a new group).
	for s := range g.assign {
		size := len(g.members(int(g.assign[s])))
		for t := 0; t <= k; t++ {
			if t == int(g.assign[s]) || (t == k && size == 1) {
				continue
			}
			na := append([]uint8(nil), g.assign...)
			na[s] = uint8(t)
			add(g.withAssign(na, space))
		}
	}
	// Merge two whole domains.
	for g1 := 0; g1 < k; g1++ {
		for g2 := g1 + 1; g2 < k; g2++ {
			na := append([]uint8(nil), g.assign...)
			for i, a := range na {
				if int(a) == g2 {
					na[i] = uint8(g1)
				}
			}
			add(g.withAssign(na, space))
		}
	}
	// Gene moves.
	for gi := 0; gi < k; gi++ {
		for fi := range space.FrequenciesGHz {
			if uint8(fi) == g.freq[gi] {
				continue
			}
			c := g.clone()
			c.freq[gi] = uint8(fi)
			add(c)
		}
		if space.DVFS && g.execOnly(gi) {
			c := g.clone()
			c.dvfs[gi] = !c.dvfs[gi]
			add(c)
		}
	}
	for di := range space.LinkDepths {
		if uint8(di) == g.depth {
			continue
		}
		c := g.clone()
		c.depth = uint8(di)
		add(c)
	}
	for si := range space.SyncEdges {
		if uint8(si) == g.sync {
			continue
		}
		c := g.clone()
		c.sync = uint8(si)
		add(c)
	}
	return out
}

// mutate applies one random move.
func mutate(r *rng, g genome, space SpaceSpec) genome {
	nb := neighbors(g, space)
	if len(nb) == 0 {
		return g
	}
	return nb[r.intn(len(nb))]
}

// crossover mixes two parents: each structure inherits its domain
// membership (and that domain's genes) from one parent chosen by coin
// flip. Parent labels are kept in disjoint ranges before canonicalization
// so an "a" domain and an unrelated "b" domain never merge by label
// collision; the child's partition is the common refinement of the
// inherited memberships.
func crossover(r *rng, a, b genome, space SpaceSpec) genome {
	n := len(structNames)
	mixed := make([]uint8, n)
	fromB := make([]bool, n)
	for i := 0; i < n; i++ {
		if r.coin() {
			mixed[i] = b.assign[i] + uint8(n)
			fromB[i] = true
		} else {
			mixed[i] = a.assign[i]
		}
	}
	ca, _ := canonicalAssign(mixed)
	k := 0
	for _, v := range ca {
		if int(v)+1 > k {
			k = int(v) + 1
		}
	}
	child := genome{assign: ca, freq: make([]uint8, k), dvfs: make([]bool, k)}
	for gi := 0; gi < k; gi++ {
		for i, v := range ca {
			if int(v) == gi {
				if fromB[i] {
					child.freq[gi] = b.freq[b.assign[i]]
					child.dvfs[gi] = b.dvfs[b.assign[i]]
				} else {
					child.freq[gi] = a.freq[a.assign[i]]
					child.dvfs[gi] = a.dvfs[a.assign[i]]
				}
				break
			}
		}
	}
	if r.coin() {
		child.depth = b.depth
	} else {
		child.depth = a.depth
	}
	if r.coin() {
		child.sync = b.sync
	} else {
		child.sync = a.sync
	}
	child.repair(space)
	return child
}

// partitionName renders the genome's partition as domain names joined by
// ".", each domain naming its member structures joined by "+" — e.g.
// "fetch+decode.int.fp.mem". Worst case (five singletons) is 24 bytes,
// comfortably inside the machine-name cap even with a gene suffix.
func (g genome) partitionName() string {
	k := g.groups()
	parts := make([]string, 0, k)
	for gi := 0; gi < k; gi++ {
		var names []string
		for _, s := range g.members(gi) {
			names = append(names, structNames[s])
		}
		parts = append(parts, strings.Join(names, "+"))
	}
	return strings.Join(parts, ".")
}

// spec builds the candidate machine. Genomes that are exactly a builtin's
// shape return the builtin verbatim — RunSpec canonicalization then
// collapses them onto the builtin's cache identity, so the search's
// reference points are free on any warm backend.
func (g genome) spec(space SpaceSpec) machine.Spec {
	if g.groups() == 1 && g.defaultGenes(space) {
		return machine.Base()
	}
	k := g.groups()
	s := machine.Spec{
		Domains: make([]machine.DomainSpec, 0, k),
		Assign:  make(map[string]string, len(structNames)),
	}
	for gi := 0; gi < k; gi++ {
		var names []string
		for _, st := range g.members(gi) {
			names = append(names, structNames[st])
		}
		dom := machine.DomainSpec{
			Name:    strings.Join(names, "+"),
			FreqGHz: space.FrequenciesGHz[g.freq[gi]],
		}
		if g.dvfs[gi] {
			dom.DVFS = machine.PolicyDynamic
		}
		s.Domains = append(s.Domains, dom)
		for _, st := range g.members(gi) {
			s.Assign[structNames[st]] = dom.Name
		}
	}
	depthVal := space.LinkDepths[g.depth]
	syncVal := space.SyncEdges[g.sync]
	if depthVal != 0 || syncVal != 0 {
		s.Links = make(map[string]machine.LinkSpec, 8)
		for _, cl := range machine.LinkClasses() {
			s.Links[cl] = machine.LinkSpec{Depth: depthVal, SyncEdges: syncVal}
		}
	}
	if k == 1 {
		s.GlobalClockGrid = true
	}
	name := g.partitionName()
	if !g.defaultGenes(space) {
		// Distinguish same-partition, different-gene candidates by a
		// short content digest; the partition stays readable up front.
		name += "-" + s.Digest()[:8]
	}
	s.Name = name
	if sameShape(s, machine.GALS()) {
		return machine.GALS()
	}
	return s
}

// sameShape reports whether two specs are content-identical up to their
// names.
func sameShape(a, b machine.Spec) bool {
	a.Name = b.Name
	return a.Digest() == b.Digest()
}

// gridSize counts the grid strategy's full enumeration, returning -1 once
// the count passes capGridSpace (the caller reports a LimitError). The
// count is partitions × per-partition gene combinations.
func gridSize(space SpaceSpec) int {
	total := 0
	f := len(space.FrequenciesGHz)
	links := len(space.LinkDepths) * len(space.SyncEdges)
	for _, p := range partitions(len(structNames)) {
		g := genome{assign: p}
		k := g.groups()
		combos := links
		for gi := 0; gi < k; gi++ {
			combos *= f
			if space.DVFS && g.execOnly(gi) {
				combos *= 2
			}
			if combos > capGridSpace {
				return -1
			}
		}
		total += combos
		if total > capGridSpace {
			return -1
		}
	}
	return total
}

// partitions enumerates every restricted-growth string of length n — all
// set partitions of the structures, in lexicographic order (52 for the
// five-structure pipeline).
func partitions(n int) [][]uint8 {
	var out [][]uint8
	a := make([]uint8, n)
	var rec func(i int, maxg uint8)
	rec = func(i int, maxg uint8) {
		if i == n {
			out = append(out, append([]uint8(nil), a...))
			return
		}
		for v := uint8(0); v <= maxg+1; v++ {
			a[i] = v
			next := maxg
			if v > next {
				next = v
			}
			rec(i+1, next)
		}
	}
	rec(1, 0)
	return out
}

// gridIter lazily walks the grid space: for each partition, an odometer
// over per-group frequency choices, DVFS subsets of the execution-only
// groups, and link-geometry choices. Deterministic and allocation-light;
// the space size is pre-validated against capGridSpace.
type gridIter struct {
	space SpaceSpec
	parts [][]uint8
	pi    int

	// Odometer state for parts[pi].
	g       genome // template with current partition
	execGis []int  // execution-only group indices (DVFS-toggleable)
	freqOdo []int
	dvfsOdo int
	depthI  int
	syncI   int
	fresh   bool
}

func newGridIter(space SpaceSpec) *gridIter {
	it := &gridIter{space: space, parts: partitions(len(structNames))}
	it.load()
	return it
}

// load initializes the odometer for the current partition.
func (it *gridIter) load() {
	if it.pi >= len(it.parts) {
		return
	}
	p := it.parts[it.pi]
	g := genome{assign: p}
	k := g.groups()
	g.freq = make([]uint8, k)
	g.dvfs = make([]bool, k)
	it.g = g
	it.execGis = it.execGis[:0]
	if it.space.DVFS {
		for gi := 0; gi < k; gi++ {
			if g.execOnly(gi) {
				it.execGis = append(it.execGis, gi)
			}
		}
	}
	it.freqOdo = make([]int, k)
	it.dvfsOdo, it.depthI, it.syncI = 0, 0, 0
	it.fresh = true
}

// next returns the next genome, or false when the space is exhausted.
func (it *gridIter) next() (genome, bool) {
	if it.pi >= len(it.parts) {
		return genome{}, false
	}
	if !it.fresh && !it.advance() {
		it.pi++
		it.load()
		if it.pi >= len(it.parts) {
			return genome{}, false
		}
	}
	it.fresh = false
	g := it.g.clone()
	for gi, fi := range it.freqOdo {
		g.freq[gi] = uint8(fi)
	}
	for j, gi := range it.execGis {
		g.dvfs[gi] = it.dvfsOdo&(1<<j) != 0
	}
	g.depth = uint8(it.depthI)
	g.sync = uint8(it.syncI)
	return g, true
}

// advance steps the odometer within the current partition; false on wrap.
func (it *gridIter) advance() bool {
	if it.syncI++; it.syncI < len(it.space.SyncEdges) {
		return true
	}
	it.syncI = 0
	if it.depthI++; it.depthI < len(it.space.LinkDepths) {
		return true
	}
	it.depthI = 0
	if it.dvfsOdo++; it.dvfsOdo < 1<<len(it.execGis) {
		return true
	}
	it.dvfsOdo = 0
	for i := len(it.freqOdo) - 1; i >= 0; i-- {
		if it.freqOdo[i]++; it.freqOdo[i] < len(it.space.FrequenciesGHz) {
			return true
		}
		it.freqOdo[i] = 0
	}
	return false
}
