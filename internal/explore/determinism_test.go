package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"galsim/internal/campaign"
)

// runSearch executes spec on a fresh engine with the given worker count
// and returns the marshaled Result — the artifact the determinism
// contract covers.
func runSearch(t *testing.T, spec SearchSpec, workers int) []byte {
	t.Helper()
	x := &Explorer{Evaluator: BackendEvaluator{Backend: campaign.NewEngine(workers)}}
	res, err := x.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSeedDeterminismAcrossWorkers: the same spec and seed must produce a
// byte-identical frontier no matter how many workers score a generation —
// merge order is by unit index, never completion order, and the explorer
// adds no timing dependence of its own.
func TestSeedDeterminismAcrossWorkers(t *testing.T) {
	for _, strat := range []string{StrategyEvolutionary, StrategyHillClimb} {
		spec := SearchSpec{
			Seed:         42,
			Strategy:     strat,
			Workloads:    []string{"gcc", "swim"},
			Instructions: 2000,
			Warmup:       500,
			Space:        SpaceSpec{DVFS: true},
			Budget:       BudgetSpec{Population: 5, MaxGenerations: 3},
		}
		ref := runSearch(t, spec, 1)
		for _, workers := range []int{4, 8} {
			if got := runSearch(t, spec, workers); !bytes.Equal(got, ref) {
				t.Fatalf("%s: result with %d workers differs from serial reference", strat, workers)
			}
		}
	}
}

// TestSeedDeterminismRepeatable: same engine, same spec, run twice —
// the second run is served almost entirely from cache yet must produce
// the same bytes.
func TestSeedDeterminismRepeatable(t *testing.T) {
	eng := campaign.NewEngine(4)
	spec := SearchSpec{
		Seed:         9,
		Strategy:     StrategyRandom,
		Workloads:    []string{"gcc"},
		Instructions: 2000,
		Budget:       BudgetSpec{Population: 6, MaxGenerations: 2},
	}
	x := &Explorer{Evaluator: BackendEvaluator{Backend: eng}}
	first, err := x.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := x.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeat run differs")
	}
	if second.Exec.CacheHits == 0 {
		t.Fatal("repeat run hit no cache")
	}
}

// TestSeedsActuallyDiffer: distinct seeds must explore distinct
// trajectories (otherwise the seed plumbing is dead code).
func TestSeedsActuallyDiffer(t *testing.T) {
	eng := campaign.NewEngine(4)
	run := func(seed int64) *Result {
		x := &Explorer{Evaluator: BackendEvaluator{Backend: eng}}
		res, err := x.Run(context.Background(), SearchSpec{
			Seed:         seed,
			Strategy:     StrategyRandom,
			Workloads:    []string{"gcc"},
			Instructions: 1000,
			Budget:       BudgetSpec{Population: 6, MaxGenerations: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	digests := func(r *Result) map[string]bool {
		out := map[string]bool{}
		for _, p := range r.Points {
			out[p.MachineDigest] = true
		}
		return out
	}
	da, db := digests(a), digests(b)
	same := true
	for d := range da {
		if !db[d] {
			same = false
		}
	}
	if same && len(da) == len(db) {
		t.Fatal("seeds 1 and 2 explored identical design sets")
	}
}
