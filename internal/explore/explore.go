// Package explore searches the space of machine partitionings — the
// paper's core question, asked mechanically. A declarative SearchSpec
// names a search space over machine.Spec (which pipeline structures share
// a clock domain, each domain's nominal frequency and DVFS policy, the
// synchronization-FIFO geometry), a strategy (exhaustive grid, random
// sampling, hill-climbing, or an evolutionary loop with mutation and
// crossover over canonicalized genomes), and a multi-objective fitness
// (energy, delay, power — weighted scalarization for selection, Pareto
// dominance ranking for output). Generations are scored by expanding the
// population into one campaign.Sweep and fanning it through the existing
// campaign.Backend seam, so evaluation is transparently parallel on a
// local engine or a galsim-fleet, duplicate and builtin-equal mutants hit
// the content-addressed result cache for free, and Sweep.Warmup prefix
// sharing rides along unchanged.
//
// Everything is deterministic: the RNG is a seeded splitmix64, strategies
// iterate in fixed orders (never over Go maps), and fitness aggregation
// follows sweep expansion order, so the same SearchSpec and seed produce
// a byte-identical Result on any backend at any worker count.
package explore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"galsim/internal/workload"
)

// Strategy names accepted by SearchSpec.Strategy.
const (
	StrategyGrid         = "grid"
	StrategyRandom       = "random"
	StrategyHillClimb    = "hillclimb"
	StrategyEvolutionary = "evolutionary"
)

// StrategyNames lists the search strategies, in documentation order. The
// returned slice is a fresh copy on every call.
func StrategyNames() []string {
	return []string{StrategyGrid, StrategyRandom, StrategyHillClimb, StrategyEvolutionary}
}

// Objective names accepted by FitnessSpec.Objectives.
const (
	// ObjDelay is total simulated time across the spec's workloads (lower
	// is faster).
	ObjDelay = "delay"
	// ObjEnergy is total energy in joules across the spec's workloads.
	ObjEnergy = "energy"
	// ObjPower is the peak average power draw across the spec's
	// workloads: the worst workload's watts, the grid-provisioning proxy.
	ObjPower = "power"
)

// ObjectiveNames lists the fitness objectives in canonical order. The
// returned slice is a fresh copy on every call.
func ObjectiveNames() []string { return []string{ObjDelay, ObjEnergy, ObjPower} }

// Anti-DoS ceilings. Search specs are untrusted input (they arrive over
// HTTP through tooling), and a few small integers can multiply into an
// unbounded amount of simulation, so every budget axis has a cap and
// violations carry a typed LimitError.
const (
	capPopulation  = 512
	capGenerations = 4096
	capEvaluations = 1 << 16
	capWorkloads   = 64
	capFrequencies = 32
	capLinkChoices = 16
	// capGridSpace bounds the exhaustive strategy's enumeration: grid
	// walks the whole space, so the space itself must be small.
	capGridSpace = 1 << 20
)

// Defaults applied by SearchSpec.Canonical.
const (
	defaultPopulation  = 16
	defaultGenerations = 20
	defaultSeed        = 1
)

// Frequency bounds mirrored from machine.Spec validation so a bad spec
// fails at parse time with a spec-level error instead of mid-search.
const (
	minFreqGHz = 0.01
	maxFreqGHz = 100.0
)

// Link-geometry bounds mirrored from machine.Spec validation.
const (
	maxLinkDepth = 4096
	maxSyncEdges = 64
)

// LimitError reports a search spec that exceeds one of the package's
// anti-DoS ceilings. It is errors.As-able so callers can map it to a 4xx.
type LimitError struct {
	What string // the axis, e.g. "population"
	Got  int
	Max  int
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("explore: %s %d exceeds the maximum of %d", e.What, e.Got, e.Max)
}

// SpaceSpec declares the search space: the axes a candidate machine may
// vary along. The partitioning axis (which structures share a clock
// domain) is always searched; the zero value searches partitionings alone
// at nominal frequency with static clocks and default link geometry.
type SpaceSpec struct {
	// FrequenciesGHz lists the nominal frequencies a domain may choose
	// from. Empty means [1.0], the machine nominal.
	FrequenciesGHz []float64 `json:"frequencies_ghz,omitempty"`
	// DVFS, when true, adds the dynamic-scaling policy to the space:
	// domains made solely of execution structures (int, fp, mem) may be
	// declared dynamic, and candidate runs enable the online DVFS
	// controller (scoped automatically to capable machines).
	DVFS bool `json:"dvfs,omitempty"`
	// LinkDepths lists synchronization-FIFO depth overrides to search
	// (applied to every link class); 0 keeps the machine default and is
	// always in the space.
	LinkDepths []int `json:"link_depths,omitempty"`
	// SyncEdges lists flag-synchronizer depth overrides to search
	// (applied to every link class); 0 keeps the machine default and is
	// always in the space.
	SyncEdges []int `json:"sync_edges,omitempty"`
}

// BudgetSpec bounds the search.
type BudgetSpec struct {
	// Population is the number of candidates proposed per generation.
	// Default 16, capped at 512.
	Population int `json:"population,omitempty"`
	// MaxGenerations stops the search after this many generations.
	// Default 20, capped at 4096.
	MaxGenerations int `json:"max_generations,omitempty"`
	// MaxEvaluations stops the search after this many candidate
	// evaluations (a candidate scored over every workload counts once).
	// Default Population×MaxGenerations, capped at 65536.
	MaxEvaluations int `json:"max_evaluations,omitempty"`
}

// FitnessSpec selects and weights the objectives.
type FitnessSpec struct {
	// Objectives names the objectives to optimize (see ObjectiveNames).
	// Empty means all of them. Order does not matter; Canonical sorts
	// into canonical order.
	Objectives []string `json:"objectives,omitempty"`
	// Weights, per objective, steer the scalarized fitness used for
	// selection (the Pareto ranking ignores them). Missing entries weigh
	// 1; weights must be positive.
	Weights map[string]float64 `json:"weights,omitempty"`
}

// SearchSpec is a complete search declaration: the JSON form is the wire
// format accepted by galsim-explore -spec and galsim.Explore.
type SearchSpec struct {
	// Name labels the search in results and logs.
	Name string `json:"name,omitempty"`
	// Seed seeds the search RNG; 0 selects 1. Same spec + same seed =
	// byte-identical result.
	Seed int64 `json:"seed,omitempty"`
	// Strategy picks the search strategy (see StrategyNames); empty
	// selects "evolutionary".
	Strategy string `json:"strategy,omitempty"`
	// Workloads lists the benchmarks every candidate is scored on; empty
	// means ["gcc"].
	Workloads []string `json:"workloads,omitempty"`
	// Instructions is the committed-instruction budget per run; 0 selects
	// the campaign default.
	Instructions uint64 `json:"instructions,omitempty"`
	// Warmup, when non-zero, asks warm-capable backends to share each
	// run's first Warmup instructions across a generation (pure execution
	// tuning; results are byte-identical either way).
	Warmup uint64 `json:"warmup,omitempty"`

	Space   SpaceSpec   `json:"space,omitempty"`
	Budget  BudgetSpec  `json:"budget,omitempty"`
	Fitness FitnessSpec `json:"fitness,omitempty"`
}

// Parse decodes a SearchSpec from JSON, rejecting unknown fields — a
// typo'd axis name must not silently search a smaller space.
func Parse(data []byte) (SearchSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SearchSpec
	if err := dec.Decode(&s); err != nil {
		return SearchSpec{}, fmt.Errorf("explore: parse search spec: %w", err)
	}
	var extra any
	if err := dec.Decode(&extra); err == nil {
		return SearchSpec{}, fmt.Errorf("explore: parse search spec: trailing data after spec")
	}
	return s, nil
}

// Canonical returns the spec with defaults filled and axes normalized:
// frequency/link choices deduplicated and sorted, objectives sorted into
// canonical order, budget defaults applied. Canonical does not validate;
// it never fails, so it can normalize a bad spec for error reporting.
func (s SearchSpec) Canonical() SearchSpec {
	c := s
	if c.Seed == 0 {
		c.Seed = defaultSeed
	}
	if c.Strategy == "" {
		c.Strategy = StrategyEvolutionary
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"gcc"}
	} else {
		c.Workloads = append([]string(nil), c.Workloads...)
	}
	c.Space = c.Space.canonical()
	if c.Budget.Population == 0 {
		c.Budget.Population = defaultPopulation
	}
	if c.Budget.MaxGenerations == 0 {
		c.Budget.MaxGenerations = defaultGenerations
	}
	if c.Budget.MaxEvaluations == 0 &&
		c.Budget.Population > 0 && c.Budget.MaxGenerations > 0 &&
		c.Budget.Population <= capPopulation && c.Budget.MaxGenerations <= capGenerations {
		c.Budget.MaxEvaluations = min(c.Budget.Population*c.Budget.MaxGenerations, capEvaluations)
	}
	c.Fitness = c.Fitness.canonical()
	return c
}

func (sp SpaceSpec) canonical() SpaceSpec {
	c := sp
	c.FrequenciesGHz = dedupeSortedFloats(sp.FrequenciesGHz)
	if len(c.FrequenciesGHz) == 0 {
		c.FrequenciesGHz = []float64{1.0}
	}
	c.LinkDepths = dedupeSortedInts(sp.LinkDepths, true)
	c.SyncEdges = dedupeSortedInts(sp.SyncEdges, true)
	return c
}

func (f FitnessSpec) canonical() FitnessSpec {
	c := f
	if len(c.Objectives) == 0 {
		c.Objectives = ObjectiveNames()
	} else {
		c.Objectives = append([]string(nil), c.Objectives...)
		sort.Strings(c.Objectives)
	}
	if len(c.Weights) > 0 {
		w := make(map[string]float64, len(c.Weights))
		for k, v := range c.Weights {
			w[k] = v
		}
		c.Weights = w
	}
	return c
}

// dedupeSortedFloats sorts and deduplicates, dropping nothing else.
func dedupeSortedFloats(in []float64) []float64 {
	if len(in) == 0 {
		return nil
	}
	out := append([]float64(nil), in...)
	sort.Float64s(out)
	j := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[j] {
			j++
			out[j] = out[i]
		}
	}
	return out[:j+1]
}

// dedupeSortedInts sorts and deduplicates; withZero forces 0 (the
// keep-machine-default choice) into the result.
func dedupeSortedInts(in []int, withZero bool) []int {
	out := append([]int(nil), in...)
	if withZero {
		out = append(out, 0)
	}
	if len(out) == 0 {
		return nil
	}
	sort.Ints(out)
	j := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[j] {
			j++
			out[j] = out[i]
		}
	}
	return out[:j+1]
}

// Validate checks the spec against the package ceilings and the machine
// model. It canonicalizes internally, so it accepts exactly the specs
// Explorer.Run accepts.
func (s SearchSpec) Validate() error {
	c := s.Canonical()
	switch c.Strategy {
	case StrategyGrid, StrategyRandom, StrategyHillClimb, StrategyEvolutionary:
	default:
		return fmt.Errorf("explore: unknown strategy %q (strategies: %v)", c.Strategy, StrategyNames())
	}
	if len(c.Workloads) > capWorkloads {
		return &LimitError{What: "workloads", Got: len(c.Workloads), Max: capWorkloads}
	}
	known := map[string]bool{}
	for _, name := range workload.Names() {
		known[name] = true
	}
	seen := map[string]bool{}
	for _, w := range c.Workloads {
		if !known[w] {
			return fmt.Errorf("explore: unknown workload %q (workloads: %v)", w, workload.Names())
		}
		if seen[w] {
			return fmt.Errorf("explore: duplicate workload %q", w)
		}
		seen[w] = true
	}
	if err := c.Space.validate(); err != nil {
		return err
	}
	if err := c.Budget.validate(); err != nil {
		return err
	}
	if err := c.Fitness.validate(); err != nil {
		return err
	}
	if c.Strategy == StrategyGrid {
		if n := gridSize(c.Space); n < 0 || n > capGridSpace {
			got := n
			if got < 0 {
				got = capGridSpace + 1
			}
			return &LimitError{What: "grid search space", Got: got, Max: capGridSpace}
		}
	}
	return nil
}

func (sp SpaceSpec) validate() error {
	if len(sp.FrequenciesGHz) > capFrequencies {
		return &LimitError{What: "frequency choices", Got: len(sp.FrequenciesGHz), Max: capFrequencies}
	}
	for _, f := range sp.FrequenciesGHz {
		if !(f >= minFreqGHz && f <= maxFreqGHz) {
			return fmt.Errorf("explore: frequency %v GHz outside [%v, %v]", f, minFreqGHz, maxFreqGHz)
		}
	}
	if len(sp.LinkDepths) > capLinkChoices {
		return &LimitError{What: "link depth choices", Got: len(sp.LinkDepths), Max: capLinkChoices}
	}
	for _, d := range sp.LinkDepths {
		if d < 0 || d > maxLinkDepth {
			return fmt.Errorf("explore: link depth %d outside [0, %d]", d, maxLinkDepth)
		}
	}
	if len(sp.SyncEdges) > capLinkChoices {
		return &LimitError{What: "sync edge choices", Got: len(sp.SyncEdges), Max: capLinkChoices}
	}
	for _, e := range sp.SyncEdges {
		if e < 0 || e > maxSyncEdges {
			return fmt.Errorf("explore: sync edges %d outside [0, %d]", e, maxSyncEdges)
		}
	}
	return nil
}

func (b BudgetSpec) validate() error {
	if b.Population < 0 || b.MaxGenerations < 0 || b.MaxEvaluations < 0 {
		return fmt.Errorf("explore: negative budget")
	}
	if b.Population > capPopulation {
		return &LimitError{What: "population", Got: b.Population, Max: capPopulation}
	}
	if b.MaxGenerations > capGenerations {
		return &LimitError{What: "generations", Got: b.MaxGenerations, Max: capGenerations}
	}
	if b.MaxEvaluations > capEvaluations {
		return &LimitError{What: "evaluations", Got: b.MaxEvaluations, Max: capEvaluations}
	}
	return nil
}

func (f FitnessSpec) validate() error {
	known := map[string]bool{}
	for _, o := range ObjectiveNames() {
		known[o] = true
	}
	seen := map[string]bool{}
	for _, o := range f.Objectives {
		if !known[o] {
			return fmt.Errorf("explore: unknown objective %q (objectives: %v)", o, ObjectiveNames())
		}
		if seen[o] {
			return fmt.Errorf("explore: duplicate objective %q", o)
		}
		seen[o] = true
	}
	for name, w := range f.Weights {
		if !known[name] {
			return fmt.Errorf("explore: weight for unknown objective %q (objectives: %v)", name, ObjectiveNames())
		}
		if !(w > 0) || w > 1e9 {
			return fmt.Errorf("explore: weight for %q must be in (0, 1e9], got %v", name, w)
		}
	}
	return nil
}
