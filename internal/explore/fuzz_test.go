package explore

import (
	"testing"
)

// FuzzSearchSpec drives the whole untrusted-input surface: parse →
// canonicalize → validate must never panic on arbitrary bytes, and for
// every spec that validates, the genome machinery (random draws,
// mutation, crossover, builtin seeds) must only ever produce machines
// that pass machine.Spec validation — the guarantee that lets the
// explorer hand candidates straight to a backend.
func FuzzSearchSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"strategy":"grid","seed":7}`))
	f.Add([]byte(`{"strategy":"evolutionary","workloads":["gcc","swim"],"space":{"dvfs":true,"frequencies_ghz":[0.5,1,2]},"budget":{"population":8,"max_generations":4}}`))
	f.Add([]byte(`{"space":{"link_depths":[4,64],"sync_edges":[1,8]},"fitness":{"objectives":["delay","power"],"weights":{"delay":2}}}`))
	f.Add([]byte(`{"strategy":"hillclimb","budget":{"population":512,"max_generations":4096,"max_evaluations":65536}}`))
	f.Add([]byte(`{"space":{"frequencies_ghz":[0.009]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		c := spec.Canonical()
		if err := c.Validate(); err != nil {
			return
		}
		space := c.Space
		r := newRng(c.Seed)
		check := func(g genome, what string) {
			ms := g.spec(space)
			if err := ms.Validate(); err != nil {
				t.Fatalf("%s genome builds invalid machine %q: %v", what, ms.Name, err)
			}
		}
		check(baseGenome(space), "base")
		check(galsGenome(space), "gals")
		a := randomGenome(r, space)
		b := randomGenome(r, space)
		check(a, "random")
		check(b, "random")
		for i := 0; i < 8; i++ {
			a = mutate(r, a, space)
			check(a, "mutant")
		}
		check(crossover(r, a, b, space), "crossover")
		check(crossover(r, galsGenome(space), a, space), "crossover")
	})
}
