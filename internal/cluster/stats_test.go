package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"galsim"
	"galsim/internal/campaign"
	"galsim/internal/service"
)

// TestAggregatedFleetStats covers the coordinator's /stats: galsimd's own
// endpoint is per-process, so the fleet view must aggregate worker-reported
// cache counters and expose queue depth and per-worker health — mounted
// exactly as cmd/galsim-fleet mounts it, shadowing the service's /stats.
func TestAggregatedFleetStats(t *testing.T) {
	f := startFleet(t, Config{}, 2, 1)
	// Front door: fleet endpoints over a service.Server, like galsim-fleet.
	svc := service.New(campaign.NewEngine(1))
	svc.Backend = f.coord
	mux := http.NewServeMux()
	f.coord.Register(mux)
	mux.Handle("/", svc)
	front := httptest.NewServer(mux)
	defer front.Close()

	sweep := goldenSweep()
	_, _, serialResults := serialReference(t, sweep)

	var sr service.SweepResponse
	if code := doJSON(t, "POST", front.URL+"/sweep", sweep, &sr); code != 200 {
		t.Fatalf("fleet sweep: HTTP %d", code)
	}
	if !bytes.Equal(mustJSON(t, sr.Results), mustJSON(t, serialResults)) {
		t.Error("fleet sweep through the service front differs from serial execution")
	}

	// 18 grid points collapse to 15 unique jobs (the base machine drops the
	// per-domain point, duplicating its full-speed unit per benchmark).
	const uniqueJobs = 15
	var fs FleetStats
	if code := doJSON(t, "GET", front.URL+"/stats", nil, &fs); code != 200 {
		t.Fatalf("fleet stats: HTTP %d", code)
	}
	if fs.Workers != 2 || fs.Alive != 2 {
		t.Errorf("workers = %d alive = %d, want 2/2", fs.Workers, fs.Alive)
	}
	if fs.JobsDone != uniqueJobs || fs.JobsPending != 0 || fs.JobsInFlight != 0 {
		t.Errorf("job counters = %+v, want %d done and an empty queue", fs, uniqueJobs)
	}
	if fs.Cache.Misses != uniqueJobs {
		t.Errorf("fleet-wide cache misses = %d, want %d (each unique job simulated once)", fs.Cache.Misses, uniqueJobs)
	}
	if len(fs.WorkerList) != 2 {
		t.Fatalf("worker list = %+v", fs.WorkerList)
	}
	var completed uint64
	for _, w := range fs.WorkerList {
		if !strings.HasPrefix(w.ID, "w") || !w.Alive {
			t.Errorf("worker status = %+v", w)
		}
		completed += w.Completed
	}
	if completed != uniqueJobs {
		t.Errorf("per-worker completions sum to %d, want %d", completed, uniqueJobs)
	}

	// The service endpoints still work beneath the fleet routes.
	var health map[string]string
	if code := doJSON(t, "GET", front.URL+"/healthz", nil, &health); code != 200 || health["status"] != "ok" {
		t.Errorf("healthz through fleet mux: %d %v", code, health)
	}
	var rr service.RunResponse
	if code := doJSON(t, "POST", front.URL+"/run",
		campaign.RunSpec{Benchmark: "li", Instructions: 3_000}, &rr); code != 200 {
		t.Fatalf("fleet /run: HTTP %d", code)
	}
	if rr.Summary.Committed != 3_000 {
		t.Errorf("fleet /run summary = %+v", rr.Summary)
	}
	// That single run executed on the fleet, not the front's local engine.
	if st := svc.Engine().Stats(); st.Misses != 0 {
		t.Errorf("front-door engine simulated %d units; the fleet should have", st.Misses)
	}
}

// TestRunManyOnFleet: the public RunManyOn API reaches the fleet and
// matches local execution exactly.
func TestRunManyOnFleet(t *testing.T) {
	f := startFleet(t, Config{}, 2, 1)
	opts := []galsim.Options{
		{Benchmark: "gcc", Instructions: 4_000},
		{Benchmark: "gcc", Machine: galsim.GALS, Instructions: 4_000, Slowdowns: map[string]float64{"fp": 2}},
	}
	fleet, err := galsim.RunManyOn(context.Background(), f.coord, opts)
	if err != nil {
		t.Fatal(err)
	}
	local, err := galsim.RunManyOn(context.Background(), campaign.NewEngine(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, fleet), mustJSON(t, local)) {
		t.Error("RunManyOn results diverged between fleet and local backends")
	}
}
