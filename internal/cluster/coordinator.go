package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
	"galsim/internal/telemetry"
	"galsim/internal/timeline"
	"galsim/internal/wal"
)

// Config tunes a Coordinator. The zero value selects production defaults;
// tests inject short TTLs and a fake clock.
type Config struct {
	// LeaseTTL is how long a worker holds a job before the coordinator
	// assumes the worker is gone and re-queues it (default 30s). Workers
	// stream completions per job, so the TTL bounds one job, not a batch.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one job may be dispatched before its
	// whole campaign fails (default 3). Lease expiries and worker-reported
	// errors both count: a job that deterministically breaks every worker it
	// touches must not circulate forever.
	MaxAttempts int
	// AliveAfter is how recently a worker must have contacted the
	// coordinator to be reported alive in fleet stats (default 3×LeaseTTL).
	AliveAfter time.Duration
	// Now overrides the clock for lease-expiry tests.
	Now func() time.Time
	// Metrics is the registry the coordinator exports its fleet metrics to;
	// nil creates a private one (see Coordinator.Metrics). cmd/galsim-fleet
	// passes the service's registry so one /metrics page covers both.
	Metrics *telemetry.Registry
	// Log receives the coordinator's structured logs (campaign lifecycle,
	// job retries, lease expiries); nil uses slog.Default().
	Log *slog.Logger
	// Spans, when non-nil, enables distributed tracing: the coordinator
	// records campaign/lease/merge spans into it, stamps every job with a
	// W3C traceparent so workers record and ship their own spans, and
	// folds worker spans back in. cmd/galsim-fleet shares one collector
	// between the coordinator and the service's /sweeps/{id}/trace view.
	Spans *timeline.SpanCollector
	// Store, when non-nil, makes campaigns durable: enqueue/complete/finish
	// transitions are journaled through it and Recover resumes unfinished
	// campaigns after a coordinator restart (see JobStore and JournalStore).
	// nil keeps the pre-journal in-memory behavior.
	Store JobStore
	// MaxQueuedJobs bounds the coordinator's global queue: a batch whose
	// jobs would push the live (pending + leased) job count above this is
	// rejected with campaign.ErrBackendBusy instead of growing the queue
	// without limit (0 = unbounded).
	MaxQueuedJobs int
	// Admission, when non-nil, gates the fleet HTTP endpoints (join/lease/
	// complete) behind per-tenant API keys and token buckets; see
	// internal/admission and Register.
	Admission AdmissionGate
}

// AdmissionGate is what the coordinator needs from an admission controller:
// authenticate-and-rate-limit one request, answering it (401/429 with
// Retry-After) when rejected. Implemented by *admission.Controller; an
// interface here keeps the dependency arrow pointing out of cluster.
type AdmissionGate interface {
	Admit(w http.ResponseWriter, r *http.Request) (tenant string, ok bool)
}

// Coordinator shards campaign batches into jobs and serves them to a fleet
// of pull-based workers (see Worker and the /jobs HTTP endpoints). It
// implements campaign.Backend: RunAll blocks until the fleet has executed
// every unit, merging results by unit index so output is byte-identical to
// a serial run regardless of worker count, scheduling, loss, or retries.
type Coordinator struct {
	cfg       Config
	log       *slog.Logger
	metrics   *telemetry.Registry
	m         coordMetrics
	startedAt time.Time

	mu       sync.Mutex
	nextID   uint64
	queue    []uint64        // pending bulk job ids, FIFO; entries may be stale (checked on pop)
	queuePri []uint64        // pending interactive job ids, leased ahead of bulk
	jobs     map[uint64]*job // all live (pending + leased) jobs
	workers  map[string]*workerState
	wake     chan struct{} // closed and replaced whenever work becomes available

	jobsDone uint64
	expiries uint64 // leases re-queued because their worker went silent
	failures uint64 // worker-reported job failures (re-queued on other workers)
}

// coordMetrics holds the coordinator's metric handles. Queue depth, flight
// count and worker liveness are function gauges reading coordinator state
// at scrape time; the rest are event counters and the per-worker job
// latency histogram.
type coordMetrics struct {
	campaigns          telemetry.Counter
	campaignsFailed    telemetry.Counter
	campaignsRejected  telemetry.Counter // bounded-queue rejections (nothing enqueued)
	leasesGranted      telemetry.Counter // label: worker
	jobsCompleted      telemetry.Counter // label: worker
	jobFailures        telemetry.Counter // label: worker
	leaseExpiries      telemetry.Counter // label: worker
	checkpoints        telemetry.Counter // label: worker
	ckptResumes        telemetry.Counter // jobs re-leased with a checkpoint attached
	jobSeconds         telemetry.Histogram
	recoveredCampaigns telemetry.Counter // campaigns resumed from the job store
	recoveredJobs      telemetry.Counter // result slots filled from the journal, not re-run
}

type jobState int

const (
	jobPending jobState = iota
	jobLeased
)

// job is one dispatchable unit: a canonical spec plus every result slot it
// fills (identical specs within a batch collapse into a single job).
type job struct {
	id        uint64
	spec      campaign.RunSpec
	camp      *campaignRun
	slots     []int // indices into camp.results
	pri       campaign.Priority
	state     jobState
	worker    string    // current lease holder (leased only)
	deadline  time.Time // lease expiry (leased only)
	leasedAt  time.Time // when the current lease was granted (leased only)
	leaseSpan string    // span ID of the current lease (tracing only)
	attempts  int
	excluded  map[string]bool // workers that reported a failure for this job
	lastErr   string
	// checkpoint is the latest mid-run snapshot posted by a lease holder
	// (envelope-encoded); a re-lease carries it so the next worker resumes
	// instead of restarting. ckptCommitted mirrors the snapshot's committed
	// count for logs.
	checkpoint    []byte
	ckptCommitted uint64
}

// campaignRun is one RunAll call in flight: its result slots, completion
// signal, and progress accounting (in result-slot units, so duplicate specs
// collapsed into one job still advance the caller's sweep-sized total).
type campaignRun struct {
	results   []pipeline.Stats
	remaining int // jobs not yet completed
	done      chan struct{}
	err       error
	finished  bool

	// id is the campaign's durable identity in the job store; random, so
	// ids never collide across coordinator restarts.
	id         string
	pri        campaign.Priority
	requestID  string
	onProgress campaign.ProgressFunc
	total      int
	completed  int // result slots filled
	failed     int // result slots of permanently failed jobs

	// Tracing identity (set only when the coordinator has a span
	// collector): the campaign root span, its parent from the caller's
	// context, and when the batch was submitted.
	traceID    string
	parentSpan string
	rootSpan   string
	startedAt  time.Time
}

// snapshotLocked builds this campaign's progress view; c.mu must be held.
func (camp *campaignRun) snapshotLocked() campaign.Progress {
	return campaign.Progress{Total: camp.total, Completed: camp.completed, Failed: camp.failed}
}

// workerState is the coordinator's view of one fleet member.
type workerState struct {
	id        string
	addr      string
	slots     int
	lastSeen  time.Time
	leased    int
	completed uint64
	failed    uint64
	expired   uint64
	cache     campaign.CacheStats // worker's engine counters, last reported
}

// NewCoordinator builds a coordinator with the given config (zero fields
// take defaults).
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.AliveAfter <= 0 {
		cfg.AliveAfter = 3 * cfg.LeaseTTL
	}
	log := cfg.Log
	if log == nil {
		log = slog.Default()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Coordinator{
		cfg:     cfg,
		log:     log,
		metrics: reg,
		jobs:    map[uint64]*job{},
		workers: map[string]*workerState{},
		wake:    make(chan struct{}),
	}
	c.startedAt = c.now()
	c.m = coordMetrics{
		campaigns:       reg.Counter("galsim_fleet_campaigns_total", "Campaign batches submitted to the fleet."),
		campaignsFailed: reg.Counter("galsim_fleet_campaigns_failed_total", "Campaign batches that finished with an error."),
		leasesGranted:   reg.Counter("galsim_fleet_leases_granted_total", "Job leases granted, by worker.", "worker"),
		jobsCompleted:   reg.Counter("galsim_fleet_jobs_completed_total", "Jobs completed successfully, by worker.", "worker"),
		jobFailures:     reg.Counter("galsim_fleet_job_failures_total", "Worker-reported job failures, by worker.", "worker"),
		leaseExpiries:   reg.Counter("galsim_fleet_lease_expiries_total", "Leases re-queued after their worker went silent, by worker.", "worker"),
		jobSeconds: reg.Histogram("galsim_fleet_job_seconds",
			"Job latency from lease grant to accepted completion, by worker.", nil, "worker"),
		campaignsRejected: reg.Counter("galsim_fleet_campaigns_rejected_total",
			"Campaign batches rejected because the bounded job queue was full."),
		checkpoints: reg.Counter("galsim_fleet_checkpoints_total",
			"Mid-run job checkpoints accepted from lease holders, by worker.", "worker"),
		ckptResumes: reg.Counter("galsim_fleet_checkpoint_resumes_total",
			"Jobs leased out with a checkpoint attached (resumed, not restarted)."),
	}
	if cfg.Store != nil {
		c.m.recoveredCampaigns = reg.Counter("galsim_wal_recovered_campaigns_total",
			"Campaigns resumed from the job-store journal after a coordinator restart.")
		c.m.recoveredJobs = reg.Counter("galsim_wal_recovered_units_total",
			"Result slots filled from journaled completions instead of re-running.")
	}
	if ws, ok := cfg.Store.(interface{ WALStats() wal.Stats }); ok {
		walGauge := func(name, help string, field func(wal.Stats) uint64) {
			reg.GaugeFunc(name, help, func() float64 { return float64(field(ws.WALStats())) })
		}
		walGauge("galsim_wal_appends", "Records appended to the coordinator journal.",
			func(s wal.Stats) uint64 { return s.Appends })
		walGauge("galsim_wal_fsyncs", "fsync calls issued by the coordinator journal.",
			func(s wal.Stats) uint64 { return s.Fsyncs })
		walGauge("galsim_wal_bytes_written", "Frame bytes written to the coordinator journal.",
			func(s wal.Stats) uint64 { return s.BytesWritten })
		walGauge("galsim_wal_segments", "Live segment files in the coordinator journal.",
			func(s wal.Stats) uint64 { return s.Segments })
		walGauge("galsim_wal_compactions", "Journal compactions (rewrites after a campaign finished).",
			func(s wal.Stats) uint64 { return s.Compactions })
		walGauge("galsim_wal_torn_truncations", "Torn journal tails truncated during crash recovery.",
			func(s wal.Stats) uint64 { return s.TornTruncations })
		walGauge("galsim_wal_replayed_records", "Journal records replayed on boot.",
			func(s wal.Stats) uint64 { return s.ReplayedRecords })
	}
	reg.GaugeFunc("galsim_fleet_jobs_pending", "Jobs waiting for a lease.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, j := range c.jobs {
			if j.state == jobPending {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("galsim_fleet_jobs_in_flight", "Jobs currently leased to workers.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, j := range c.jobs {
			if j.state == jobLeased {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("galsim_fleet_workers", "Workers ever registered with the coordinator.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	reg.GaugeFunc("galsim_fleet_workers_alive", "Workers in contact within the liveness window.", func() float64 {
		now := c.now()
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, w := range c.workers {
			if now.Sub(w.lastSeen) <= c.cfg.AliveAfter {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("galsim_fleet_uptime_seconds", "Seconds since the coordinator started.", func() float64 {
		return c.now().Sub(c.startedAt).Seconds()
	})
	return c
}

// Metrics returns the registry holding the coordinator's fleet metrics
// (the one from Config.Metrics, or the private default).
func (c *Coordinator) Metrics() *telemetry.Registry { return c.metrics }

func (c *Coordinator) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// LeaseTTL returns the configured lease duration.
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

var _ campaign.ProgressBackend = (*Coordinator)(nil)

// RunAll implements campaign.Backend: it validates and canonicalizes the
// batch, enqueues one job per unique spec, and blocks until the fleet has
// completed all of them (or ctx is cancelled, or a job exhausts its
// attempts). Stats are returned in spec order.
func (c *Coordinator) RunAll(ctx context.Context, specs []campaign.RunSpec) ([]pipeline.Stats, error) {
	return c.RunAllProgress(ctx, specs, nil)
}

// RunAllProgress is RunAll with live progress reporting (see
// campaign.ProgressBackend). fn receives a snapshot as workers complete
// jobs; CacheHits is always zero here — caching happens inside each
// worker's engine and shows up in FleetStats.Cache instead.
//
// The batch adopts the request ID carried by ctx (see telemetry.RequestID);
// without one a fresh ID is generated. Every job of the batch carries the
// ID to its worker, so one sweep's lifecycle is greppable across the
// coordinator's and every worker's logs.
func (c *Coordinator) RunAllProgress(ctx context.Context, specs []campaign.RunSpec, fn campaign.ProgressFunc) ([]pipeline.Stats, error) {
	if len(specs) == 0 {
		if fn != nil {
			fn(campaign.Progress{})
		}
		return nil, nil
	}
	canon := make([]campaign.RunSpec, len(specs))
	for i, s := range specs {
		// Canonicalizing here pins trace digests and profile contents before
		// anything crosses the wire, so a job's cache identity on every
		// worker matches what the coordinator validated.
		s = s.Canonical()
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: unit %d (%s/%s): %w", i, s.Machine, s.WorkloadName(), err)
		}
		canon[i] = s
	}
	reqID := telemetry.RequestID(ctx)
	if reqID == "" {
		reqID = telemetry.NewRequestID()
	}
	camp, err := c.submit(canon, reqID, telemetry.Trace(ctx), fn, campaign.PriorityOf(ctx))
	if err != nil {
		return nil, err
	}
	// The ticker is a liveness backstop: lease and complete calls already
	// expire stale leases, but if every worker dies no such call ever comes.
	tick := time.NewTicker(clampTick(c.cfg.LeaseTTL / 2))
	defer tick.Stop()
	for {
		select {
		case <-camp.done:
			c.mu.Lock()
			results, err := camp.results, camp.err
			final := camp.snapshotLocked()
			c.mu.Unlock()
			if fn != nil {
				fn(final)
			}
			c.recordCampaignSpans(camp, err)
			c.journalFinish(camp, err)
			if err != nil {
				c.m.campaignsFailed.Inc()
				c.log.Warn("campaign failed", "request_id", reqID, "units", len(specs), "error", err.Error())
				return nil, err
			}
			c.log.Info("campaign done", "request_id", reqID, "units", len(specs))
			return results, nil
		case <-ctx.Done():
			c.mu.Lock()
			c.finishLocked(camp, ctx.Err())
			c.mu.Unlock()
			c.recordCampaignSpans(camp, ctx.Err())
			c.journalFinish(camp, ctx.Err())
			c.m.campaignsFailed.Inc()
			c.log.Warn("campaign cancelled", "request_id", reqID, "units", len(specs))
			return nil, ctx.Err()
		case <-tick.C:
			c.mu.Lock()
			c.expireLocked(c.now())
			c.mu.Unlock()
		}
	}
}

func clampTick(d time.Duration) time.Duration {
	const lo, hi = 25 * time.Millisecond, 5 * time.Second
	return min(max(d, lo), hi)
}

// specGroup is one unique spec within a batch plus every result slot it
// fills (identical specs collapse into a single job).
type specGroup struct {
	key   string
	spec  campaign.RunSpec
	slots []int
}

// groupByKey collapses a canonical batch into unique-spec groups, in first-
// occurrence order so job creation stays deterministic.
func groupByKey(canon []campaign.RunSpec) []specGroup {
	idx := map[string]int{}
	var groups []specGroup
	for i, s := range canon {
		k := s.Key()
		if gi, ok := idx[k]; ok {
			groups[gi].slots = append(groups[gi].slots, i)
			continue
		}
		idx[k] = len(groups)
		groups = append(groups, specGroup{key: k, spec: s, slots: []int{i}})
	}
	return groups
}

// submit enqueues one job per unique spec key, fanning duplicate specs out
// to all of their result slots, and wakes long-polling workers. The batch
// is journaled through the job store (when configured) before anything is
// enqueued, so a crash after submit returns can always resume it; a full
// bounded queue rejects the batch with campaign.ErrBackendBusy instead.
func (c *Coordinator) submit(canon []campaign.RunSpec, reqID string, tc telemetry.TraceContext, fn campaign.ProgressFunc, pri campaign.Priority) (*campaignRun, error) {
	groups := groupByKey(canon)
	if max := c.cfg.MaxQueuedJobs; max > 0 {
		c.mu.Lock()
		live := len(c.jobs)
		c.mu.Unlock()
		if live+len(groups) > max {
			c.m.campaignsRejected.Inc()
			c.log.Warn("campaign rejected: queue full", "request_id", reqID,
				"live_jobs", live, "batch_jobs", len(groups), "limit", max)
			return nil, fmt.Errorf("cluster: %d jobs live and %d arriving exceed the %d-job queue limit: %w",
				live, len(groups), max, campaign.ErrBackendBusy)
		}
	}
	camp := &campaignRun{
		results:    make([]pipeline.Stats, len(canon)),
		done:       make(chan struct{}),
		id:         "camp-" + telemetry.NewRequestID(),
		pri:        pri,
		requestID:  reqID,
		onProgress: fn,
		total:      len(canon),
	}
	if c.cfg.Spans != nil {
		// Adopt the caller's trace (the service request that started the
		// sweep) or root a fresh one; either way every job of the batch —
		// and every worker span shipped back — shares camp.traceID. A
		// self-minted trace has no caller span, so the campaign span
		// becomes the true root rather than pointing at a parent that
		// exists nowhere.
		if !tc.Valid() {
			tc = telemetry.TraceContext{TraceID: timeline.NewTraceID()}
		}
		camp.traceID = tc.TraceID
		camp.parentSpan = tc.SpanID
		camp.rootSpan = timeline.NewSpanID()
		camp.startedAt = c.now()
	}
	if c.cfg.Store != nil {
		// Write-ahead: the journal append (and its fsync) happens before the
		// queue sees the batch, so "submit returned" implies "survives a
		// crash". The store has its own lock; c.mu is not held across the
		// fsync.
		if err := c.cfg.Store.CampaignEnqueued(camp.id, reqID, pri, canon); err != nil {
			c.m.campaignsRejected.Inc()
			return nil, fmt.Errorf("cluster: journaling campaign: %w", err)
		}
	}
	c.mu.Lock()
	c.enqueueGroupsLocked(camp, groups)
	c.wakeLocked()
	c.mu.Unlock()
	c.m.campaigns.Inc()
	c.log.Info("campaign enqueued", "request_id", reqID, "campaign", camp.id,
		"priority", pri.String(), "units", len(canon), "jobs", len(groups))
	return camp, nil
}

// enqueueGroupsLocked materializes jobs for the groups that still need
// running, filling any slots whose results are already known (journal
// recovery passes them in via camp.results + prefilled keys — see resume).
// c.mu must be held.
func (c *Coordinator) enqueueGroupsLocked(camp *campaignRun, groups []specGroup) {
	for _, g := range groups {
		c.nextID++
		j := &job{id: c.nextID, spec: g.spec, camp: camp, slots: g.slots, pri: camp.pri}
		c.jobs[j.id] = j
		if camp.pri == campaign.PriorityInteractive {
			c.queuePri = append(c.queuePri, j.id)
		} else {
			c.queue = append(c.queue, j.id)
		}
		camp.remaining++
	}
}

// wakeLocked signals every long-polling lease request that work may be
// available.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// requeueFrontLocked puts a job back at the head of its priority lane (it
// already waited its turn once) and wakes lease waiters. c.mu must be held.
func (c *Coordinator) requeueFrontLocked(j *job) {
	if j.pri == campaign.PriorityInteractive {
		c.queuePri = append([]uint64{j.id}, c.queuePri...)
	} else {
		c.queue = append([]uint64{j.id}, c.queue...)
	}
	c.wakeLocked()
}

// journalFinish records a campaign's terminal transition in the job store
// (triggering log compaction). Store errors only log: the in-memory result
// is already settled, and the worst case of a lost finish record is the
// campaign re-running after a restart — wasteful, never wrong.
func (c *Coordinator) journalFinish(camp *campaignRun, err error) {
	if c.cfg.Store == nil || camp.id == "" {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	if serr := c.cfg.Store.CampaignFinished(camp.id, msg); serr != nil {
		c.log.Warn("journaling campaign finish failed", "campaign", camp.id, "error", serr.Error())
	}
}

// tryLease grants up to slots pending jobs to the worker, first expiring
// stale leases. It returns the granted jobs plus the channel a caller with
// nothing granted should wait on before retrying.
func (c *Coordinator) tryLease(workerID string, slots int, cache campaign.CacheStats) ([]Job, <-chan struct{}) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchWorkerLocked(workerID, now)
	w.cache = cache
	c.expireLocked(now)
	var granted []Job
	// Per-lane skip lists: jobs this worker is excluded from go back to the
	// front of their own lane, preserving both FIFO order and priority.
	var skippedPri, skippedBulk []uint64
	for len(granted) < slots {
		var id uint64
		fromPri := false
		switch {
		case len(c.queuePri) > 0:
			// Interactive work always leases ahead of bulk.
			id, fromPri = c.queuePri[0], true
			c.queuePri = c.queuePri[1:]
		case len(c.queue) > 0:
			id = c.queue[0]
			c.queue = c.queue[1:]
		default:
			id = 0
		}
		if id == 0 {
			break
		}
		j, ok := c.jobs[id]
		if !ok || j.state != jobPending {
			continue // completed, failed campaign, or re-queued under a newer entry
		}
		if j.excluded[workerID] {
			// Held back for a worker that has not already failed it — unless
			// no live worker remains eligible, in which case waiting is a
			// wedge, not a retry.
			if c.noEligibleWorkerLocked(j, now) {
				j.camp.failed += len(j.slots)
				c.finishLocked(j.camp, fmt.Errorf(
					"cluster: unit %d (%s/%s) failed on every live worker (%d); last error: %s",
					j.slots[0], j.spec.Machine, j.spec.WorkloadName(), len(j.excluded), j.lastErr))
				continue
			}
			if fromPri {
				skippedPri = append(skippedPri, id)
			} else {
				skippedBulk = append(skippedBulk, id)
			}
			continue
		}
		j.state = jobLeased
		j.worker = workerID
		j.deadline = now.Add(c.cfg.LeaseTTL)
		j.leasedAt = now
		w.leased++
		jb := Job{ID: j.id, Spec: j.spec, RequestID: j.camp.requestID, Checkpoint: j.checkpoint}
		if len(j.checkpoint) > 0 {
			c.m.ckptResumes.Inc()
		}
		if c.cfg.Spans != nil && j.camp.traceID != "" {
			// A fresh span per lease (re-leases get their own), closed when
			// the lease settles: completion, failure, or expiry.
			j.leaseSpan = timeline.NewSpanID()
			jb.TraceParent = timeline.FormatTraceParent(j.camp.traceID, j.leaseSpan)
		}
		granted = append(granted, jb)
	}
	if len(skippedPri) > 0 {
		c.queuePri = append(skippedPri, c.queuePri...)
	}
	if len(skippedBulk) > 0 {
		c.queue = append(skippedBulk, c.queue...)
	}
	for _, jb := range granted {
		c.m.leasesGranted.Inc(workerID)
		c.log.Debug("job leased", "request_id", jb.RequestID, "job_id", jb.ID, "worker", workerID)
	}
	return granted, c.wake
}

// expireLocked re-queues every leased job whose deadline has passed: its
// worker is presumed dead or wedged, and the surviving fleet picks the job
// up on its next lease. The expired worker is not excluded — unlike a
// reported failure, an expiry carries no evidence the job itself is at
// fault, and excluding the sole member of a one-worker fleet would wedge
// the queue.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, j := range c.jobs {
		if j.state != jobLeased || !now.After(j.deadline) {
			continue
		}
		c.expiries++
		if w := c.workers[j.worker]; w != nil {
			w.leased--
			w.expired++
		}
		lastWorker := j.worker
		c.leaseSpanLocked(j, lastWorker, now, "expired", "")
		c.m.leaseExpiries.Inc(lastWorker)
		c.log.Warn("lease expired", "request_id", j.camp.requestID, "job_id", id,
			"worker", lastWorker, "attempts", j.attempts+1)
		j.state = jobPending
		j.worker = ""
		j.attempts++
		if j.attempts >= c.cfg.MaxAttempts {
			j.camp.failed += len(j.slots)
			c.finishLocked(j.camp, fmt.Errorf(
				"cluster: job %d (%s/%s) abandoned after %d lease expiries/failures; last worker %s went silent",
				id, j.spec.Machine, j.spec.WorkloadName(), j.attempts, lastWorker))
			continue
		}
		c.requeueFrontLocked(j)
	}
}

// complete applies a batch of worker results: successes fill their result
// slots (first result wins; duplicates from re-leased jobs are ignored),
// failures re-queue the job excluding the reporting worker until attempts
// run out. Returns how many results were accepted.
func (c *Coordinator) complete(workerID string, results []JobResult, cache campaign.CacheStats) int {
	now := c.now()
	// Progress callbacks and log lines collected under the lock fire after
	// it is released: a callback that called back into the coordinator (or
	// a slow log writer) must not stall the fleet.
	var after []func()
	c.mu.Lock()
	w := c.touchWorkerLocked(workerID, now)
	w.cache = cache
	accepted := 0
	for _, r := range results {
		j, ok := c.jobs[r.JobID]
		if !ok {
			continue // already completed elsewhere, or its campaign is gone
		}
		if (r.Error != "" || r.Stats == nil) && !(j.state == jobLeased && j.worker == workerID) {
			// A failure report from a worker that no longer holds the lease
			// (it expired, or the job was re-assigned) must not unwind the
			// current holder's active lease or burn an attempt — the live
			// run may well succeed. Stale *successes*, by contrast, are
			// accepted below: results are deterministic, first one wins.
			continue
		}
		if j.state == jobLeased {
			if lw := c.workers[j.worker]; lw != nil {
				lw.leased--
			}
			// Settle the lease before any finishLocked below, which would
			// otherwise decrement the holder a second time.
			j.state = jobPending
			j.worker = ""
		}
		if r.Error != "" || r.Stats == nil {
			c.leaseSpanLocked(j, workerID, now, "failed", r.Error)
			c.failures++
			w.failed++
			j.attempts++
			if j.excluded == nil {
				j.excluded = map[string]bool{}
			}
			j.excluded[workerID] = true
			j.lastErr = r.Error
			c.m.jobFailures.Inc(workerID)
			reqID, jobID, lastErr := j.camp.requestID, j.id, j.lastErr
			after = append(after, func() {
				c.log.Warn("job failed", "request_id", reqID, "job_id", jobID,
					"worker", workerID, "error", lastErr)
			})
			if j.attempts >= c.cfg.MaxAttempts || c.noEligibleWorkerLocked(j, now) {
				j.camp.failed += len(j.slots)
				c.finishLocked(j.camp, fmt.Errorf(
					"cluster: unit %d (%s/%s) failed on %d worker(s); last error from %s: %s",
					j.slots[0], j.spec.Machine, j.spec.WorkloadName(), len(j.excluded), workerID, j.lastErr))
				continue
			}
			c.requeueFrontLocked(j)
			continue
		}
		accepted++
		w.completed++
		c.leaseSpanLocked(j, workerID, now, "", "")
		for _, slot := range j.slots {
			j.camp.results[slot] = *r.Stats
		}
		delete(c.jobs, j.id)
		c.jobsDone++
		j.camp.remaining--
		j.camp.completed += len(j.slots)
		c.m.jobsCompleted.Inc(workerID)
		if !j.leasedAt.IsZero() {
			c.m.jobSeconds.Observe(now.Sub(j.leasedAt).Seconds(), workerID)
		}
		reqID, jobID := j.camp.requestID, j.id
		after = append(after, func() {
			c.log.Debug("job completed", "request_id", reqID, "job_id", jobID, "worker", workerID)
		})
		if c.cfg.Store != nil && j.camp.id != "" {
			// Journaled after the in-memory fill, outside c.mu: a crash in
			// between re-runs the job on recovery, which deterministic
			// execution makes safe. The store serializes its own appends.
			campID, key, stats := j.camp.id, j.spec.Key(), r.Stats
			after = append(after, func() {
				if err := c.cfg.Store.JobCompleted(campID, key, stats); err != nil {
					c.log.Warn("journaling job completion failed",
						"campaign", campID, "job_id", jobID, "error", err.Error())
				}
			})
		}
		if fn := j.camp.onProgress; fn != nil {
			snap := j.camp.snapshotLocked()
			after = append(after, func() { fn(snap) })
		}
		if j.camp.remaining == 0 {
			c.finishLocked(j.camp, nil)
		}
	}
	c.mu.Unlock()
	for _, f := range after {
		f()
	}
	return accepted
}

// checkpoint records a mid-run snapshot for a leased job. Only the current
// lease holder is believed (a zombie whose lease expired gets false and
// should abandon the run); an accepted checkpoint also extends the lease —
// a long job checkpointing on schedule is alive by construction and must
// not expire mid-run just because it outlasts the TTL. The snapshot is
// journaled through the store's CheckpointStore side when it has one, so a
// coordinator crash keeps the progress too.
func (c *Coordinator) checkpoint(req CheckpointRequest) bool {
	now := c.now()
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID, now)
	j, ok := c.jobs[req.JobID]
	if !ok || j.state != jobLeased || j.worker != req.WorkerID {
		c.mu.Unlock()
		return false
	}
	j.checkpoint = req.Snapshot
	j.ckptCommitted = req.Committed
	j.deadline = now.Add(c.cfg.LeaseTTL)
	c.m.checkpoints.Inc(req.WorkerID)
	campID, key, reqID := j.camp.id, j.spec.Key(), j.camp.requestID
	c.mu.Unlock()
	c.log.Debug("job checkpointed", "request_id", reqID, "job_id", req.JobID,
		"worker", req.WorkerID, "committed", req.Committed, "bytes", len(req.Snapshot))
	if cs, ok := c.cfg.Store.(CheckpointStore); ok && campID != "" {
		// Outside c.mu: the store fsyncs. A lost append degrades to
		// restart-from-an-older-checkpoint after a coordinator crash.
		if err := cs.JobCheckpoint(campID, key, req.Snapshot); err != nil {
			c.log.Warn("journaling checkpoint failed", "campaign", campID,
				"job_id", req.JobID, "error", err.Error())
		}
	}
	return true
}

// leaseSpanLocked closes the job's current lease span — one span per grant,
// from tryLease to the settlement observed now (completion, a worker-reported
// failure, or an expiry). c.mu must be held; SpanCollector has its own lock
// and never calls back into the coordinator.
func (c *Coordinator) leaseSpanLocked(j *job, workerID string, now time.Time, outcome, errMsg string) {
	if c.cfg.Spans == nil || j.leaseSpan == "" || j.leasedAt.IsZero() {
		return
	}
	attrs := map[string]string{
		"job_id": strconv.FormatUint(j.id, 10),
		"worker": workerID,
	}
	if outcome != "" {
		attrs["outcome"] = outcome
	}
	if errMsg != "" {
		attrs["error"] = errMsg
	}
	c.cfg.Spans.Add(timeline.Span{
		TraceID:     j.camp.traceID,
		SpanID:      j.leaseSpan,
		ParentID:    j.camp.rootSpan,
		Name:        "job lease",
		Service:     "coordinator",
		StartUnixNs: j.leasedAt.UnixNano(),
		EndUnixNs:   now.UnixNano(),
		Attrs:       attrs,
	})
	j.leaseSpan = ""
}

// recordCampaignSpans settles a campaign's trace once its RunAllProgress
// call resolves: the root span covering submit→finish, plus a merge marker
// for the instant the last result slot was assembled. Called without c.mu —
// the campaign is finished, so its trace fields are immutable.
func (c *Coordinator) recordCampaignSpans(camp *campaignRun, err error) {
	if c.cfg.Spans == nil || camp.traceID == "" {
		return
	}
	end := c.now()
	attrs := map[string]string{
		"request_id": camp.requestID,
		"units":      strconv.Itoa(camp.total),
	}
	if err != nil {
		attrs["error"] = err.Error()
	}
	c.cfg.Spans.Add(timeline.Span{
		TraceID:     camp.traceID,
		SpanID:      camp.rootSpan,
		ParentID:    camp.parentSpan,
		Name:        "campaign",
		Service:     "coordinator",
		StartUnixNs: camp.startedAt.UnixNano(),
		EndUnixNs:   end.UnixNano(),
		Attrs:       attrs,
	})
	if err == nil {
		c.cfg.Spans.Add(timeline.Span{
			TraceID:     camp.traceID,
			SpanID:      timeline.NewSpanID(),
			ParentID:    camp.rootSpan,
			Name:        "merge",
			Service:     "coordinator",
			StartUnixNs: end.UnixNano(),
			EndUnixNs:   end.UnixNano(),
			Attrs:       map[string]string{"units": strconv.Itoa(camp.total)},
		})
	}
}

// addSpans folds worker-shipped spans into the collector (no-op without one).
func (c *Coordinator) addSpans(spans []timeline.Span) {
	if c.cfg.Spans == nil || len(spans) == 0 {
		return
	}
	c.cfg.Spans.Add(spans...)
}

// noEligibleWorkerLocked reports whether every worker recently in contact
// has already failed this job: re-queuing it then waits for nobody.
func (c *Coordinator) noEligibleWorkerLocked(j *job, now time.Time) bool {
	for id, w := range c.workers {
		if !j.excluded[id] && now.Sub(w.lastSeen) <= c.cfg.AliveAfter {
			return false
		}
	}
	return true
}

// finishLocked settles a campaign exactly once — success (err nil) or
// failure — removing any of its jobs still live so the queue cannot keep
// dispatching work nobody will collect.
func (c *Coordinator) finishLocked(camp *campaignRun, err error) {
	if camp.finished {
		return
	}
	camp.finished = true
	camp.err = err
	for id, j := range c.jobs {
		if j.camp != camp {
			continue
		}
		if j.state == jobLeased {
			if w := c.workers[j.worker]; w != nil {
				w.leased--
			}
		}
		delete(c.jobs, id)
	}
	close(camp.done)
}

// join registers (or refreshes) a worker from an explicit JoinRequest.
func (c *Coordinator) join(req JoinRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchWorkerLocked(req.WorkerID, c.now())
	if req.Addr != "" {
		w.addr = req.Addr
	}
	if req.Slots > 0 {
		w.slots = req.Slots
	}
}

func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerState {
	w, ok := c.workers[id]
	if !ok {
		w = &workerState{id: id}
		c.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// WorkerStatus is one worker's row in the fleet /stats view.
type WorkerStatus struct {
	ID        string              `json:"id"`
	Addr      string              `json:"addr,omitempty"`
	Slots     int                 `json:"slots,omitempty"`
	Alive     bool                `json:"alive"`
	IdleMs    int64               `json:"idle_ms"`   // since last contact
	LastSeen  time.Time           `json:"last_seen"` // wall-clock time of last contact
	Leased    int                 `json:"leased"`
	Completed uint64              `json:"completed"`
	Failed    uint64              `json:"failed,omitempty"`
	Expired   uint64              `json:"expired,omitempty"`
	Cache     campaign.CacheStats `json:"cache"`
}

// FleetStats aggregates the whole fleet for GET /stats: galsimd's own
// /stats is per-process, so the coordinator sums worker-reported engine
// counters into one fleet-wide cache view alongside queue depth and
// per-worker health.
type FleetStats struct {
	Workers       int                 `json:"workers"`
	Alive         int                 `json:"alive"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	JobsPending   int                 `json:"jobs_pending"`
	JobsInFlight  int                 `json:"jobs_in_flight"`
	JobsDone      uint64              `json:"jobs_done"`
	LeaseExpiries uint64              `json:"lease_expiries"`
	JobFailures   uint64              `json:"job_failures"`
	Cache         campaign.CacheStats `json:"cache"`
	WorkerList    []WorkerStatus      `json:"worker_list"`
}

// Stats snapshots the fleet.
func (c *Coordinator) Stats() FleetStats {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := FleetStats{
		Workers:       len(c.workers),
		UptimeSeconds: now.Sub(c.startedAt).Seconds(),
		JobsDone:      c.jobsDone,
		LeaseExpiries: c.expiries,
		JobFailures:   c.failures,
		WorkerList:    make([]WorkerStatus, 0, len(c.workers)),
	}
	for _, j := range c.jobs {
		if j.state == jobLeased {
			s.JobsInFlight++
		} else {
			s.JobsPending++
		}
	}
	for _, w := range c.workers {
		alive := now.Sub(w.lastSeen) <= c.cfg.AliveAfter
		if alive {
			s.Alive++
		}
		s.Cache.Hits += w.cache.Hits
		s.Cache.Misses += w.cache.Misses
		s.Cache.Entries += w.cache.Entries
		s.WorkerList = append(s.WorkerList, WorkerStatus{
			ID:        w.id,
			Addr:      w.addr,
			Slots:     w.slots,
			Alive:     alive,
			IdleMs:    now.Sub(w.lastSeen).Milliseconds(),
			LastSeen:  w.lastSeen,
			Leased:    w.leased,
			Completed: w.completed,
			Failed:    w.failed,
			Expired:   w.expired,
			Cache:     w.cache,
		})
	}
	sort.Slice(s.WorkerList, func(i, k int) bool { return s.WorkerList[i].ID < s.WorkerList[k].ID })
	return s
}

// Resumed is one campaign restored from the job store by Recover. The
// coordinator drives it to completion on its own; Wait is for callers (and
// the chaos tests) that want the merged stats the original RunAll would
// have returned.
type Resumed struct {
	ID        string
	RequestID string
	// Units is the campaign's total result-slot count; PrefilledUnits of
	// them were filled straight from journaled completions and not re-run.
	Units          int
	PrefilledUnits int
	camp           *campaignRun
}

// Wait blocks until the resumed campaign settles and returns its merged
// stats in original spec order — byte-identical to what the pre-crash
// RunAll call would have produced. ctx only bounds the wait; the campaign
// keeps running if ctx expires first.
func (r *Resumed) Wait(ctx context.Context) ([]pipeline.Stats, error) {
	select {
	case <-r.camp.done:
		// finishLocked sets results/err before closing done, so these reads
		// are ordered after every write.
		return r.camp.results, r.camp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Recover re-enqueues every campaign the job store journaled as enqueued
// but never finished. Call it once, after NewCoordinator and before the
// coordinator serves traffic: journaled completions pre-fill their result
// slots, only the missing units are dispatched, and the coordinator itself
// watches each campaign (expiring stale leases, journaling the finish).
// A nil Config.Store recovers nothing.
func (c *Coordinator) Recover() ([]*Resumed, error) {
	if c.cfg.Store == nil {
		return nil, nil
	}
	recs, err := c.cfg.Store.Recover()
	if err != nil {
		return nil, err
	}
	out := make([]*Resumed, 0, len(recs))
	for _, rec := range recs {
		out = append(out, c.resume(rec))
	}
	return out, nil
}

// resume rebuilds one journaled campaign: slots with journaled results are
// filled without re-running, the rest become queue jobs in the campaign's
// original priority lane.
func (c *Coordinator) resume(rec RecoveredCampaign) *Resumed {
	camp := &campaignRun{
		results:   make([]pipeline.Stats, len(rec.Specs)),
		done:      make(chan struct{}),
		id:        rec.ID,
		pri:       rec.Priority,
		requestID: rec.RequestID,
		total:     len(rec.Specs),
	}
	prefilled := 0
	var pending []specGroup
	c.mu.Lock()
	for _, g := range groupByKey(rec.Specs) {
		if st, ok := rec.Completed[g.key]; ok && st != nil {
			for _, slot := range g.slots {
				camp.results[slot] = *st
			}
			camp.completed += len(g.slots)
			prefilled += len(g.slots)
			continue
		}
		pending = append(pending, g)
	}
	c.enqueueGroupsLocked(camp, pending)
	ckpts := 0
	if len(rec.Checkpoints) > 0 {
		// Attach journaled mid-run checkpoints to the re-created jobs: their
		// first lease resumes from the last durable state instead of zero.
		for _, j := range c.jobs {
			if j.camp != camp {
				continue
			}
			if snap, ok := rec.Checkpoints[j.spec.Key()]; ok && len(snap) > 0 {
				j.checkpoint = snap
				ckpts++
			}
		}
	}
	if camp.remaining == 0 {
		// Every unit was journaled; the campaign just never got its finish
		// record before the crash.
		c.finishLocked(camp, nil)
	} else {
		c.wakeLocked()
	}
	c.mu.Unlock()
	c.m.campaigns.Inc()
	c.m.recoveredCampaigns.Inc()
	c.m.recoveredJobs.Add(float64(prefilled))
	c.log.Info("campaign resumed from journal", "request_id", rec.RequestID,
		"campaign", rec.ID, "units", len(rec.Specs), "prefilled_units", prefilled,
		"jobs", len(pending), "checkpointed_jobs", ckpts)
	go c.watchResumed(camp)
	return &Resumed{
		ID:             rec.ID,
		RequestID:      rec.RequestID,
		Units:          len(rec.Specs),
		PrefilledUnits: prefilled,
		camp:           camp,
	}
}

// watchResumed stands in for the RunAllProgress wait loop a resumed
// campaign no longer has: it expires stale leases until the campaign
// settles, then journals the finish so the log compacts.
func (c *Coordinator) watchResumed(camp *campaignRun) {
	tick := time.NewTicker(clampTick(c.cfg.LeaseTTL / 2))
	defer tick.Stop()
	for {
		select {
		case <-camp.done:
			c.journalFinish(camp, camp.err)
			if camp.err != nil {
				c.m.campaignsFailed.Inc()
				c.log.Warn("resumed campaign failed", "request_id", camp.requestID,
					"campaign", camp.id, "error", camp.err.Error())
			} else {
				c.log.Info("resumed campaign done", "request_id", camp.requestID, "campaign", camp.id)
			}
			return
		case <-tick.C:
			c.mu.Lock()
			c.expireLocked(c.now())
			c.mu.Unlock()
		}
	}
}
