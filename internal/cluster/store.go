package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
	"galsim/internal/wal"
)

// JobStore is the coordinator's durability seam. The coordinator writes
// three transitions through it — campaign enqueued, job completed, campaign
// finished — and on boot asks it for every campaign that was enqueued but
// never finished, so a half-done sweep resumes after a crash instead of
// vanishing. The default (a nil Config.Store) keeps everything in memory,
// exactly the pre-journal behavior; JournalStore persists the transitions
// to a write-ahead log.
//
// Store errors never corrupt the in-memory fleet: a failed append is
// surfaced to the caller (submit) or logged (completion/finish), degrading
// to at-least-once re-execution after a restart — safe, because job
// execution is deterministic and content-cached.
type JobStore interface {
	// CampaignEnqueued durably records a campaign before its jobs enter the
	// in-memory queue (write-ahead: if this fails, the campaign is rejected).
	CampaignEnqueued(id, requestID string, pri campaign.Priority, specs []campaign.RunSpec) error
	// JobCompleted durably records one finished unit, keyed by the spec's
	// content key (the same identity the result cache uses).
	JobCompleted(campaignID, specKey string, stats *pipeline.Stats) error
	// CampaignFinished marks a campaign terminal (errMsg empty on success).
	// Stores may compact: a finished campaign's records are dead weight.
	CampaignFinished(campaignID, errMsg string) error
	// Recover returns every campaign enqueued but not finished, with
	// whatever completions were journaled for it. Called once, before the
	// coordinator serves traffic.
	Recover() ([]RecoveredCampaign, error)
	// Close releases the store's resources.
	Close() error
}

// CheckpointStore is optionally implemented by job stores that can persist
// mid-run execution checkpoints: the coordinator journals each accepted
// POST /jobs/checkpoint through it, and Recover hands the latest checkpoint
// per unfinished unit back (RecoveredCampaign.Checkpoints), so a lost
// coordinator resumes long jobs from their last checkpoint instead of
// from zero. Stores without it (or a nil Config.Store) simply re-run —
// wasteful, never wrong, since execution is deterministic.
type CheckpointStore interface {
	// JobCheckpoint durably records the latest checkpoint for one in-flight
	// unit, keyed like JobCompleted by the spec's content key. A later
	// checkpoint for the same key supersedes the earlier one; a completion
	// retires it.
	JobCheckpoint(campaignID, specKey string, snap []byte) error
}

// RecoveredCampaign is one unfinished campaign replayed from a JobStore.
type RecoveredCampaign struct {
	ID        string
	RequestID string
	Priority  campaign.Priority
	Specs     []campaign.RunSpec
	// Completed maps spec content keys to journaled results: these units
	// are filled from the journal on resume, not re-run.
	Completed map[string]*pipeline.Stats
	// Checkpoints maps spec content keys to the latest journaled mid-run
	// snapshot (envelope-encoded) of units that were in flight at the
	// crash: re-dispatched jobs carry them so workers resume rather than
	// restart. Keys in Completed never appear here.
	Checkpoints map[string][]byte
}

// walRecord is the JSON payload inside each WAL frame. Replay is
// idempotent — a duplicate enqueue/done/finish for the same campaign is a
// no-op — which is what makes the WAL's crash-during-compaction story safe
// (old segments replay before the compacted snapshot).
type walRecord struct {
	V    int    `json:"v"`
	Type string `json:"t"` // "enqueue" | "done" | "ckpt" | "finish"
	ID   string `json:"id"`

	// enqueue
	RequestID string             `json:"req,omitempty"`
	Priority  int                `json:"pri,omitempty"`
	Specs     []campaign.RunSpec `json:"specs,omitempty"`

	// done, ckpt
	Key   string          `json:"key,omitempty"`
	Stats *pipeline.Stats `json:"stats,omitempty"`
	Snap  []byte          `json:"snap,omitempty"` // ckpt: envelope-encoded snapshot

	// finish
	Error string `json:"err,omitempty"`
}

const walRecordVersion = 1

// JournalStore is the WAL-backed JobStore: every transition is one
// checksummed record in an append-only segmented log (internal/wal), and a
// finished campaign triggers compaction — the log is rewritten to hold only
// the still-live campaigns, so it tracks the working set instead of growing
// with history.
type JournalStore struct {
	mu   sync.Mutex
	log  *wal.Log
	live map[string]*journalCampaign // unfinished campaigns, mirrored for compaction
}

type journalCampaign struct {
	rec  walRecord // the enqueue record, replayed verbatim on compaction
	done map[string]*pipeline.Stats
	ckpt map[string][]byte // latest checkpoint per not-yet-done unit
}

// OpenJournal opens (or creates) a journal in dir and replays it into the
// store's live set; Recover then hands the unfinished campaigns to the
// coordinator. A torn tail from a crash mid-append is truncated by the WAL
// layer; mid-log corruption is a hard error — silently dropping campaigns
// would defeat the journal's whole purpose.
func OpenJournal(dir string, opt wal.Options) (*JournalStore, error) {
	l, err := wal.Open(dir, opt)
	if err != nil {
		return nil, err
	}
	s := &JournalStore{log: l, live: map[string]*journalCampaign{}}
	if err := l.Replay(s.apply); err != nil {
		l.Close()
		return nil, fmt.Errorf("cluster: replaying journal %s: %w", dir, err)
	}
	return s, nil
}

// apply folds one journal record into the live set. Unknown record types
// are skipped (forward compatibility: a newer coordinator's journal should
// degrade to re-running work, not refuse to start), malformed JSON is a
// hard error (the WAL checksum passed, so this is a software bug, not a
// torn write).
func (s *JournalStore) apply(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("decoding journal record: %w", err)
	}
	switch rec.Type {
	case "enqueue":
		if _, ok := s.live[rec.ID]; !ok {
			s.live[rec.ID] = &journalCampaign{rec: rec, done: map[string]*pipeline.Stats{}, ckpt: map[string][]byte{}}
		}
	case "done":
		if camp, ok := s.live[rec.ID]; ok && rec.Stats != nil {
			if _, dup := camp.done[rec.Key]; !dup {
				camp.done[rec.Key] = rec.Stats
			}
			delete(camp.ckpt, rec.Key) // a completion retires the unit's checkpoint
		}
	case "ckpt":
		// Latest checkpoint wins; one journaled after the unit's completion
		// (a zombie worker's late post replayed out of order cannot happen —
		// appends are ordered — but a dup-done replay can) stays retired.
		if camp, ok := s.live[rec.ID]; ok && len(rec.Snap) > 0 {
			if _, done := camp.done[rec.Key]; !done {
				camp.ckpt[rec.Key] = rec.Snap
			}
		}
	case "finish":
		delete(s.live, rec.ID)
	}
	return nil
}

func (s *JournalStore) append(rec walRecord) error {
	rec.V = walRecordVersion
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encoding journal record: %w", err)
	}
	return s.log.Append(payload)
}

// CampaignEnqueued implements JobStore.
func (s *JournalStore) CampaignEnqueued(id, requestID string, pri campaign.Priority, specs []campaign.RunSpec) error {
	rec := walRecord{Type: "enqueue", ID: id, RequestID: requestID, Priority: int(pri), Specs: specs}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(rec); err != nil {
		return err
	}
	s.live[id] = &journalCampaign{rec: rec, done: map[string]*pipeline.Stats{}, ckpt: map[string][]byte{}}
	return nil
}

// JobCompleted implements JobStore.
func (s *JournalStore) JobCompleted(campaignID, specKey string, stats *pipeline.Stats) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	camp, ok := s.live[campaignID]
	if !ok {
		return nil // campaign already finished (stale duplicate completion)
	}
	if _, dup := camp.done[specKey]; dup {
		return nil
	}
	if err := s.append(walRecord{Type: "done", ID: campaignID, Key: specKey, Stats: stats}); err != nil {
		return err
	}
	camp.done[specKey] = stats
	delete(camp.ckpt, specKey)
	return nil
}

// JobCheckpoint implements CheckpointStore: the latest checkpoint per unit
// is kept live (superseded ones become dead log weight until the next
// compaction rewrites the log with only the newest). A checkpoint for an
// already-completed unit, or a finished campaign, is a stale zombie post
// and is dropped without an append.
func (s *JournalStore) JobCheckpoint(campaignID, specKey string, snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	camp, ok := s.live[campaignID]
	if !ok {
		return nil
	}
	if _, done := camp.done[specKey]; done {
		return nil
	}
	if err := s.append(walRecord{Type: "ckpt", ID: campaignID, Key: specKey, Snap: snap}); err != nil {
		return err
	}
	camp.ckpt[specKey] = snap
	return nil
}

// CampaignFinished implements JobStore: the terminal record is appended,
// then the log is compacted down to the records of the remaining live
// campaigns (or reset to empty when none remain).
func (s *JournalStore) CampaignFinished(campaignID, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.live[campaignID]; !ok {
		return nil
	}
	if err := s.append(walRecord{Type: "finish", ID: campaignID, Error: errMsg}); err != nil {
		return err
	}
	delete(s.live, campaignID)
	return s.compactLocked()
}

// compactLocked rewrites the log to exactly the live campaigns' records.
// Idempotent-replay semantics make a crash anywhere in here safe.
func (s *JournalStore) compactLocked() error {
	ids := make([]string, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var records [][]byte
	for _, id := range ids {
		camp := s.live[id]
		enq, err := json.Marshal(camp.rec)
		if err != nil {
			return fmt.Errorf("cluster: encoding journal snapshot: %w", err)
		}
		records = append(records, enq)
		keys := make([]string, 0, len(camp.done))
		for k := range camp.done {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			done, err := json.Marshal(walRecord{V: walRecordVersion, Type: "done", ID: id, Key: k, Stats: camp.done[k]})
			if err != nil {
				return fmt.Errorf("cluster: encoding journal snapshot: %w", err)
			}
			records = append(records, done)
		}
		ckeys := make([]string, 0, len(camp.ckpt))
		for k := range camp.ckpt {
			ckeys = append(ckeys, k)
		}
		sort.Strings(ckeys)
		for _, k := range ckeys {
			ckpt, err := json.Marshal(walRecord{V: walRecordVersion, Type: "ckpt", ID: id, Key: k, Snap: camp.ckpt[k]})
			if err != nil {
				return fmt.Errorf("cluster: encoding journal snapshot: %w", err)
			}
			records = append(records, ckpt)
		}
	}
	return s.log.Rewrite(records)
}

// Recover implements JobStore.
func (s *JournalStore) Recover() ([]RecoveredCampaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]RecoveredCampaign, 0, len(ids))
	for _, id := range ids {
		camp := s.live[id]
		done := make(map[string]*pipeline.Stats, len(camp.done))
		for k, st := range camp.done {
			done[k] = st
		}
		ckpt := make(map[string][]byte, len(camp.ckpt))
		for k, snap := range camp.ckpt {
			ckpt[k] = snap
		}
		out = append(out, RecoveredCampaign{
			ID:          id,
			RequestID:   camp.rec.RequestID,
			Priority:    campaign.Priority(camp.rec.Priority),
			Specs:       camp.rec.Specs,
			Completed:   done,
			Checkpoints: ckpt,
		})
	}
	return out, nil
}

// WALStats exposes the underlying log's counters; the coordinator exports
// them as the galsim_wal_* metric family.
func (s *JournalStore) WALStats() wal.Stats { return s.log.Stats() }

// Close implements JobStore.
func (s *JournalStore) Close() error { return s.log.Close() }

var (
	_ JobStore        = (*JournalStore)(nil)
	_ CheckpointStore = (*JournalStore)(nil)
)
