package cluster

import (
	"context"
	"fmt"
	"testing"

	"galsim/internal/campaign"
)

// BenchmarkFleetSweep compares the golden sweep on the single-process
// engine against in-process HTTP worker fleets. Engines are rebuilt every
// iteration so the caches start cold — this measures simulation plus
// fabric overhead, not cache hits. On a single-core host the fleet adds
// only coordination overhead; the speedup needs real cores (one per
// worker), like the campaign parallel benchmarks.
func BenchmarkFleetSweep(b *testing.B) {
	sweep := goldenSweep()
	units, err := sweep.Units()
	if err != nil {
		b.Fatal(err)
	}
	instrs := int64(len(units)) * int64(sweep.Instructions)

	b.Run("single-process", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := campaign.NewEngine(0).RunAll(context.Background(), units); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(instrs*int64(b.N))/b.Elapsed().Seconds(), "sim-instrs/s")
	})
	for _, workers := range []int{1, 3} {
		b.Run(fmt.Sprintf("fleet-%dworker", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f := startFleet(b, Config{}, workers, 2)
				b.StartTimer()
				if _, err := f.coord.RunAll(context.Background(), units); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				f.stop()
				b.StartTimer()
			}
			b.ReportMetric(float64(instrs*int64(b.N))/b.Elapsed().Seconds(), "sim-instrs/s")
		})
	}
}
