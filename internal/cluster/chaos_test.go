package cluster

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
	"galsim/internal/telemetry"
)

// TestWorkerLossMidSweep kills one of three workers while the golden sweep
// is in flight: the coordinator must re-lease whatever the dead worker
// held, and the merged output must still be byte-identical to serial
// execution.
func TestWorkerLossMidSweep(t *testing.T) {
	sweep := goldenSweep()
	_, _, serialResults := serialReference(t, sweep)
	// A short TTL keeps the failover fast; the generous attempt budget
	// keeps a slow CI machine's spurious expiries from failing the
	// campaign (duplicated completions are harmless — first result wins).
	f := startFleet(t, Config{LeaseTTL: 400 * time.Millisecond, MaxAttempts: 25}, 3, 1)
	type outcome struct {
		results []campaign.UnitResult
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := campaign.RunSweepOn(context.Background(), f.coord, sweep)
		done <- outcome{res, err}
	}()
	// Let the sweep get going, then yank a worker mid-flight.
	waitFor(t, func() bool { return f.coord.Stats().JobsDone >= 2 }, "first completions")
	f.kill(0)
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if !bytes.Equal(mustJSON(t, out.results), mustJSON(t, serialResults)) {
			t.Error("results after worker loss differ from serial execution")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sweep did not finish after worker loss")
	}
}

// TestExpiredLeaseIsRetried leases jobs as a phantom worker that never
// completes them, guaranteeing the re-lease path runs: the campaign can
// only finish once the coordinator expires those leases and hands the jobs
// to the real fleet.
func TestExpiredLeaseIsRetried(t *testing.T) {
	f := startFleet(t, Config{LeaseTTL: 300 * time.Millisecond, MaxAttempts: 25}, 0, 0)
	sweep := campaign.Sweep{
		Benchmarks:   []string{"gcc", "swim"},
		Machines:     []string{"base", "gals"},
		Instructions: 4_000,
	}
	units, serialStats, _ := serialReference(t, sweep)
	type outcome struct {
		stats []pipeline.Stats
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		stats, err := f.coord.RunAll(context.Background(), units)
		done <- outcome{stats, err}
	}()
	waitFor(t, func() bool { return f.coord.Stats().JobsPending >= len(units) }, "jobs enqueued")
	// The phantom grabs two jobs over the real HTTP endpoint and vanishes.
	var lease LeaseResponse
	if code := doJSON(t, "POST", f.ts.URL+"/jobs/lease",
		LeaseRequest{WorkerID: "phantom", Slots: 2}, &lease); code != 200 {
		t.Fatalf("phantom lease: HTTP %d", code)
	}
	if len(lease.Jobs) != 2 {
		t.Fatalf("phantom leased %d jobs, want 2", len(lease.Jobs))
	}
	// Now bring up the real workers; they can finish only via expiry.
	f.addWorker(1)
	f.addWorker(1)
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if !bytes.Equal(mustJSON(t, out.stats), mustJSON(t, serialStats)) {
			t.Error("results after lease expiry differ from serial execution")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish after lease expiry")
	}
	if st := f.coord.Stats(); st.LeaseExpiries < 2 {
		t.Errorf("lease expiries = %d, want >= 2 (the phantom's two jobs)", st.LeaseExpiries)
	}
}

// fakeClock is a manually advanced coordinator clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestLeaseExpiryFakeClock pins the lease state machine without real
// sleeps: a lease is exclusive until exactly its TTL passes, then the job
// re-leases to another worker; a stale completion from the original holder
// is still accepted (results are deterministic — first result wins), and
// the duplicate from the re-lease is ignored.
func TestLeaseExpiryFakeClock(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{LeaseTTL: time.Minute, Now: clock.Now})
	spec := campaign.RunSpec{Benchmark: "gcc", Instructions: 2_000}.Canonical()
	camp, err := c.submit([]campaign.RunSpec{spec}, "", telemetry.TraceContext{}, nil, campaign.PriorityBulk)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := c.tryLease("w1", 1, campaign.CacheStats{})
	if len(jobs) != 1 {
		t.Fatalf("leased %d jobs, want 1", len(jobs))
	}
	if again, _ := c.tryLease("w2", 1, campaign.CacheStats{}); len(again) != 0 {
		t.Fatalf("job double-leased while held: %v", again)
	}
	clock.Advance(59 * time.Second)
	if early, _ := c.tryLease("w2", 1, campaign.CacheStats{}); len(early) != 0 {
		t.Fatalf("lease expired %s early", time.Second)
	}
	clock.Advance(2 * time.Second)
	release, _ := c.tryLease("w2", 1, campaign.CacheStats{})
	if len(release) != 1 || release[0].ID != jobs[0].ID {
		t.Fatalf("expired job not re-leased: %v", release)
	}
	if st := c.Stats(); st.LeaseExpiries != 1 {
		t.Errorf("lease expiries = %d, want 1", st.LeaseExpiries)
	}
	st := pipeline.Stats{Committed: 7}
	if acc := c.complete("w1", []JobResult{{JobID: jobs[0].ID, Stats: &st}}, campaign.CacheStats{}); acc != 1 {
		t.Errorf("stale-but-valid completion rejected (accepted=%d)", acc)
	}
	select {
	case <-camp.done:
	default:
		t.Fatal("campaign not settled after completion")
	}
	if camp.err != nil || camp.results[0].Committed != 7 {
		t.Errorf("campaign state = err %v, committed %d", camp.err, camp.results[0].Committed)
	}
	if acc := c.complete("w2", []JobResult{{JobID: jobs[0].ID, Stats: &st}}, campaign.CacheStats{}); acc != 0 {
		t.Errorf("duplicate completion accepted (accepted=%d)", acc)
	}
}

// TestLeaseExpiryExhaustsAttempts: a job whose workers keep going silent
// must not circulate forever — MaxAttempts expiries fail its campaign.
func TestLeaseExpiryExhaustsAttempts(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{LeaseTTL: time.Minute, MaxAttempts: 2, Now: clock.Now})
	spec := campaign.RunSpec{Benchmark: "gcc", Instructions: 2_000}.Canonical()
	camp, err := c.submit([]campaign.RunSpec{spec}, "", telemetry.TraceContext{}, nil, campaign.PriorityBulk)
	if err != nil {
		t.Fatal(err)
	}
	if jobs, _ := c.tryLease("w1", 1, campaign.CacheStats{}); len(jobs) != 1 {
		t.Fatal("initial lease failed")
	}
	clock.Advance(61 * time.Second)
	if jobs, _ := c.tryLease("w2", 1, campaign.CacheStats{}); len(jobs) != 1 {
		t.Fatal("first re-lease failed")
	}
	clock.Advance(61 * time.Second)
	if jobs, _ := c.tryLease("w3", 1, campaign.CacheStats{}); len(jobs) != 0 {
		t.Fatal("job leased beyond its attempt budget")
	}
	select {
	case <-camp.done:
	default:
		t.Fatal("campaign not settled after attempts ran out")
	}
	if camp.err == nil || !strings.Contains(camp.err.Error(), "abandoned") {
		t.Errorf("campaign error = %v, want abandonment", camp.err)
	}
}

// TestStaleFailureDoesNotUnwindActiveLease: a failure report from a worker
// whose lease already expired must not disturb the current holder's run —
// one slow-and-flaky worker must not burn the attempt budget of work a
// healthy worker is computing.
func TestStaleFailureDoesNotUnwindActiveLease(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{LeaseTTL: time.Minute, MaxAttempts: 2, Now: clock.Now})
	spec := campaign.RunSpec{Benchmark: "gcc", Instructions: 2_000}.Canonical()
	camp, err := c.submit([]campaign.RunSpec{spec}, "", telemetry.TraceContext{}, nil, campaign.PriorityBulk)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := c.tryLease("w1", 1, campaign.CacheStats{})
	if len(jobs) != 1 {
		t.Fatal("initial lease failed")
	}
	clock.Advance(61 * time.Second)
	if again, _ := c.tryLease("w2", 1, campaign.CacheStats{}); len(again) != 1 {
		t.Fatal("expired job not re-leased")
	}
	// w1 wakes up and reports a failure for the lease it lost.
	if acc := c.complete("w1", []JobResult{{JobID: jobs[0].ID, Error: "stale boom"}}, campaign.CacheStats{}); acc != 0 {
		t.Errorf("stale failure accepted (accepted=%d)", acc)
	}
	if st := c.Stats(); st.JobFailures != 0 || st.JobsInFlight != 1 {
		t.Errorf("stale failure disturbed the fleet: %+v", st)
	}
	// The live holder's result still lands, with attempts untouched
	// (attempts=1 from the expiry; a burned attempt would have hit
	// MaxAttempts=2 and failed the campaign).
	st := pipeline.Stats{Committed: 9}
	if acc := c.complete("w2", []JobResult{{JobID: jobs[0].ID, Stats: &st}}, campaign.CacheStats{}); acc != 1 {
		t.Errorf("live completion rejected (accepted=%d)", acc)
	}
	select {
	case <-camp.done:
	default:
		t.Fatal("campaign not settled")
	}
	if camp.err != nil || camp.results[0].Committed != 9 {
		t.Errorf("campaign state = err %v, committed %d", camp.err, camp.results[0].Committed)
	}
}

// TestFailedJobRetriesOnOtherWorkers: a worker-reported failure re-queues
// the job excluding that worker; once every live worker has failed it, the
// campaign fails with the last error.
func TestFailedJobRetriesOnOtherWorkers(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{LeaseTTL: time.Minute, MaxAttempts: 5, Now: clock.Now})
	// Register both workers before anything fails, as a joining fleet does.
	c.join(JoinRequest{WorkerID: "w1"})
	c.join(JoinRequest{WorkerID: "w2"})
	spec := campaign.RunSpec{Benchmark: "gcc", Instructions: 2_000}.Canonical()
	camp, err := c.submit([]campaign.RunSpec{spec}, "", telemetry.TraceContext{}, nil, campaign.PriorityBulk)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := c.tryLease("w1", 1, campaign.CacheStats{})
	if len(jobs) != 1 {
		t.Fatal("initial lease failed")
	}
	c.complete("w1", []JobResult{{JobID: jobs[0].ID, Error: "disk on fire"}}, campaign.CacheStats{})
	if retry, _ := c.tryLease("w1", 1, campaign.CacheStats{}); len(retry) != 0 {
		t.Fatal("job re-leased to the worker that just failed it")
	}
	retry, _ := c.tryLease("w2", 1, campaign.CacheStats{})
	if len(retry) != 1 || retry[0].ID != jobs[0].ID {
		t.Fatalf("job not re-leased to the other worker: %v", retry)
	}
	c.complete("w2", []JobResult{{JobID: jobs[0].ID, Error: "also on fire"}}, campaign.CacheStats{})
	select {
	case <-camp.done:
	default:
		t.Fatal("campaign not settled after every worker failed the job")
	}
	if camp.err == nil || !strings.Contains(camp.err.Error(), "also on fire") {
		t.Errorf("campaign error = %v, want the last worker error", camp.err)
	}
	if st := c.Stats(); st.JobFailures != 2 {
		t.Errorf("job failures = %d, want 2", st.JobFailures)
	}
}
