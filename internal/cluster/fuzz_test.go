package cluster

import (
	"bytes"
	"testing"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
)

// FuzzJobCodec fuzzes the job/result wire encoding: decoding arbitrary
// bytes must never panic, and anything that decodes must round-trip to
// stable bytes (a field that failed to survive the trip — a missing tag,
// an unexported field — would silently change simulation results or drop
// them on the floor).
func FuzzJobCodec(f *testing.F) {
	seedJob := Job{
		ID: 42,
		Spec: campaign.RunSpec{
			Benchmark:    "gcc",
			Machine:      "gals",
			Instructions: 6_000,
			Slowdowns:    map[string]float64{"fp": 3, "all": 1.5},
			DynamicDVFS:  true,
		}.Canonical(),
	}
	f.Add(EncodeJob(seedJob))
	st := pipeline.Stats{Committed: 6_000, Fetched: 7_000}
	f.Add(EncodeJobResult(JobResult{JobID: 42, Stats: &st}))
	f.Add(EncodeJobResult(JobResult{JobID: 7, Error: "worker on fire"}))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"id":1}`))
	f.Add([]byte(`{"job_id":1,"stats":{"Committed":5}}`))
	f.Add([]byte(`{"id":1,"spec":{"benchmark":"gcc"},"extra":true}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"id":1}{"id":2}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if j, err := DecodeJob(data); err == nil {
			b := EncodeJob(j)
			j2, err := DecodeJob(b)
			if err != nil {
				t.Fatalf("job round-trip failed to decode: %v\noriginal: %q\nencoded: %q", err, data, b)
			}
			if b2 := EncodeJob(j2); !bytes.Equal(b, b2) {
				t.Fatalf("job round-trip not stable:\nfirst:  %s\nsecond: %s", b, b2)
			}
		}
		if r, err := DecodeJobResult(data); err == nil {
			b := EncodeJobResult(r)
			r2, err := DecodeJobResult(b)
			if err != nil {
				t.Fatalf("result round-trip failed to decode: %v\noriginal: %q\nencoded: %q", err, data, b)
			}
			if b2 := EncodeJobResult(r2); !bytes.Equal(b, b2) {
				t.Fatalf("result round-trip not stable:\nfirst:  %s\nsecond: %s", b, b2)
			}
		}
	})
}

// TestJobCodecRejectsMalformed pins the strictness the fuzz target relies
// on: unknown fields, trailing garbage, and stats+error both set are all
// decode errors, not silent acceptance.
func TestJobCodecRejectsMalformed(t *testing.T) {
	if _, err := DecodeJob([]byte(`{"id":1,"spec":{"benchmark":"gcc"},"bogus":1}`)); err == nil {
		t.Error("unknown job field accepted")
	}
	if _, err := DecodeJob([]byte(`{"id":1}{"id":2}`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := DecodeJobResult([]byte(`{"job_id":1,"stats":{"Committed":1},"error":"x"}`)); err == nil {
		t.Error("result with both stats and error accepted")
	}
	j := Job{ID: 9, Spec: campaign.RunSpec{Benchmark: "swim"}.Canonical()}
	got, err := DecodeJob(EncodeJob(j))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.Spec.Benchmark != "swim" || got.Spec.Key() != j.Spec.Key() {
		t.Errorf("round-trip changed the job: %+v", got)
	}
}
