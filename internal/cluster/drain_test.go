package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/httpjson"
	"galsim/internal/pipeline"
	"galsim/internal/wal"
)

// TestBackoffSchedule: the retry schedule doubles from base, caps, jitters
// within [exp/2, exp), and resets on success.
func TestBackoffSchedule(t *testing.T) {
	// rand() = 0 pins every delay to the bottom of its jitter window, so the
	// schedule is exactly base/2, base, 2·base, ... up to cap/2.
	b := backoff{base: 100 * time.Millisecond, cap: time.Second, rand: func() float64 { return 0 }}
	want := []time.Duration{
		50 * time.Millisecond,  // 100ms/2
		100 * time.Millisecond, // 200ms/2
		200 * time.Millisecond, // 400ms/2
		400 * time.Millisecond, // 800ms/2
		500 * time.Millisecond, // capped at 1s/2
		500 * time.Millisecond, // stays capped
	}
	for i, w := range want {
		if got := b.next(); got != w {
			t.Errorf("attempt %d delay = %v, want %v", i, got, w)
		}
	}
	b.reset()
	if got := b.next(); got != want[0] {
		t.Errorf("delay after reset = %v, want %v", got, want[0])
	}

	// rand() just below 1 pins delays to the top: next() must stay < exp.
	top := backoff{base: 100 * time.Millisecond, cap: time.Second,
		rand: func() float64 { return 0.999999 }}
	if got := top.next(); got < 50*time.Millisecond || got >= 100*time.Millisecond {
		t.Errorf("jittered first delay = %v, want within [50ms, 100ms)", got)
	}
	// A cap below base never exceeds the cap either.
	tiny := backoff{base: time.Second, cap: 100 * time.Millisecond, rand: func() float64 { return 0 }}
	if got := tiny.next(); got != 50*time.Millisecond {
		t.Errorf("cap<base first delay = %v, want 50ms", got)
	}
}

// TestWorkerGracefulDrain is the shutdown regression test: a worker whose
// context is cancelled mid-job finishes and REPORTS that job within its
// DrainTimeout, so the campaign completes without burning a lease expiry.
// The lease TTL is set far beyond the test horizon: if the drain path broke,
// the job would only ever come back via expiry and the test would time out.
func TestWorkerGracefulDrain(t *testing.T) {
	f := startFleet(t, Config{LeaseTTL: 5 * time.Minute}, 0, 0)
	engine := campaign.NewEngine(1)
	w := &Worker{
		Coordinator:  f.ts.URL,
		ID:           "drainer",
		Engine:       engine,
		Slots:        1,
		PollInterval: 10 * time.Millisecond,
		DrainTimeout: 30 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(ctx) //nolint:errcheck // exits via cancellation
	}()
	// A single slow-ish unit: long enough that the cancel below lands
	// mid-execution, short enough to finish well inside DrainTimeout.
	spec := campaign.RunSpec{Benchmark: "gcc", Instructions: 400_000}
	runDone := make(chan error, 1)
	go func() {
		_, err := f.coord.RunAll(context.Background(), []campaign.RunSpec{spec})
		runDone <- err
	}()
	waitFor(t, func() bool { return f.coord.Stats().JobsInFlight == 1 }, "job leased")
	cancel() // SIGTERM: stop leasing, drain the in-flight job
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("campaign failed despite drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not complete; drained job was never reported")
	}
	st := f.coord.Stats()
	if st.LeaseExpiries != 0 {
		t.Errorf("drain leaked %d lease expiries; the job should have been reported, not abandoned", st.LeaseExpiries)
	}
	if st.JobsDone != 1 {
		t.Errorf("jobs done = %d, want 1", st.JobsDone)
	}
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after drain")
	}
}

// journalSpy wraps a JournalStore and records which unit keys reach the
// journal as completions.
type journalSpy struct {
	*JournalStore
	mu   sync.Mutex
	done []string
}

func (s *journalSpy) JobCompleted(campaignID, key string, st *pipeline.Stats) error {
	s.mu.Lock()
	s.done = append(s.done, key)
	s.mu.Unlock()
	return s.JournalStore.JobCompleted(campaignID, key, st)
}

// TestDrainedCompletionIsJournaled is the journal half of the drain
// contract (the regression behind galsim-fleet's shutdown ordering): a
// completion reported by a worker that is already draining — shutdown
// began while it still held the job — must land in the journal like any
// other, so a coordinator restart after the drain does not re-run the
// unit. If the drained completion were dropped, the journal would replay
// the campaign as unfinished work.
func TestDrainedCompletionIsJournaled(t *testing.T) {
	js, err := OpenJournal(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { js.Close() })
	store := &journalSpy{JournalStore: js}
	f := startFleet(t, Config{LeaseTTL: 5 * time.Minute, Store: store}, 0, 0)
	w := &Worker{
		Coordinator:  f.ts.URL,
		ID:           "drainer",
		Engine:       campaign.NewEngine(1),
		Slots:        1,
		PollInterval: 10 * time.Millisecond,
		DrainTimeout: 30 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(ctx) //nolint:errcheck // exits via cancellation
	}()
	spec := campaign.RunSpec{Benchmark: "gcc", Instructions: 400_000}.Canonical()
	runDone := make(chan error, 1)
	go func() {
		_, err := f.coord.RunAll(context.Background(), []campaign.RunSpec{spec})
		runDone <- err
	}()
	waitFor(t, func() bool { return f.coord.Stats().JobsInFlight == 1 }, "job leased")
	cancel() // shutdown begins while the worker holds the job
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("campaign failed despite drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not complete; drained job was never reported")
	}
	store.mu.Lock()
	done := append([]string(nil), store.done...)
	store.mu.Unlock()
	if len(done) != 1 || done[0] != spec.Key() {
		t.Fatalf("journaled completions = %v, want exactly [%s]", done, spec.Key())
	}
	if st := f.coord.Stats(); st.LeaseExpiries != 0 {
		t.Errorf("drain leaked %d lease expiries; the completion should have been reported, not abandoned", st.LeaseExpiries)
	}
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after drain")
	}
}

// TestFleetEndpointBodyLimits: every fleet POST route answers an oversized
// body with 413 and the typed code, per route.
func TestFleetEndpointBodyLimits(t *testing.T) {
	f := startFleet(t, Config{}, 0, 0)
	// Valid JSON throughout, so the decoder keeps scanning until the byte
	// cap trips rather than bailing early on a syntax error.
	big := append([]byte(`{"worker_id":"`), bytes.Repeat([]byte("x"), maxBodyBytes)...)
	big = append(big, `"}`...)
	for _, route := range []string{"/join", "/jobs/lease", "/jobs/complete"} {
		t.Run(route, func(t *testing.T) {
			resp, err := http.Post(f.ts.URL+route, "application/json", bytes.NewReader(big))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Errorf("status = %d, want 413", resp.StatusCode)
			}
			body, _ := io.ReadAll(resp.Body)
			if !bytes.Contains(body, []byte(httpjson.CodeBodyTooLarge)) {
				t.Errorf("body %q missing code %q", body, httpjson.CodeBodyTooLarge)
			}
		})
	}
}
