// Package cluster turns the single-process campaign engine into a
// distributed fabric: a Coordinator shards a batch of RunSpecs into jobs
// and hands them to a fleet of galsimd workers over HTTP. Workers pull —
// they lease jobs from the coordinator, execute them on their local
// campaign engine (so each worker's content-addressed result cache serves
// repeated specs fleet-wide), and post completions back as each job
// finishes. Leases carry a TTL: a worker that dies or stalls mid-job has
// its jobs re-queued and picked up by the surviving fleet, and a job whose
// worker *reports* a failure is retried on other workers up to a bounded
// attempt count.
//
// The Coordinator implements campaign.Backend, so galsim.RunManyOn,
// campaign.RunSweepOn and the galsimd /sweep handler run on a fleet
// unchanged. Results are merged by unit index, never arrival order; the
// differential tests in this package assert the merged output is
// byte-identical to serial campaign.Execute output under concurrency,
// worker loss and lease retries.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
	"galsim/internal/timeline"
)

// Job is one schedulable simulation unit on the wire: a campaign RunSpec
// plus the coordinator-assigned identity the worker echoes back on
// completion. The spec is always sent in canonical form, so profile
// contents and pinned trace digests — a run's full cache identity — travel
// with the job and cache hits work fleet-wide.
type Job struct {
	ID   uint64           `json:"id"`
	Spec campaign.RunSpec `json:"spec"`
	// RequestID is the campaign-level correlation ID (see
	// telemetry.RequestID): every job of one RunAll batch carries the same
	// ID, and workers attach it to their job logs so a sweep's lifecycle is
	// greppable across the fleet.
	RequestID string `json:"request_id,omitempty"`
	// TraceParent is the W3C trace context of the campaign (trace ID plus
	// the job's lease span as parent). A worker holding it records spans
	// for its execution and ships them back in CompleteRequest.Spans, so
	// the whole sweep shares one trace.
	TraceParent string `json:"traceparent,omitempty"`
	// Checkpoint, when present, is an encoded mid-run state snapshot (see
	// internal/snapshot) posted by a previous holder of this job: the worker
	// resumes execution from it instead of re-simulating the prefix. A
	// checkpoint that fails its typed validation is discarded for a cold
	// run — never a partial restore.
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// JobResult is one completed (or failed) job on the wire. Exactly one of
// Stats and Error is set: stats for a finished simulation, an error string
// for a run the worker could not execute (unreadable trace file, local
// validation failure, simulator panic converted by campaign.Execute).
type JobResult struct {
	JobID uint64          `json:"job_id"`
	Stats *pipeline.Stats `json:"stats,omitempty"`
	Error string          `json:"error,omitempty"`
}

// EncodeJob serializes a job for the lease response.
func EncodeJob(j Job) []byte {
	return mustMarshal(j)
}

// DecodeJob parses a job, rejecting unknown fields so schema drift between
// coordinator and worker versions fails loudly instead of silently
// dropping settings (a dropped slowdown would change simulation results).
func DecodeJob(data []byte) (Job, error) {
	var j Job
	if err := decodeStrict(data, &j); err != nil {
		return Job{}, fmt.Errorf("cluster: decoding job: %w", err)
	}
	return j, nil
}

// EncodeJobResult serializes a completion for the complete request.
func EncodeJobResult(r JobResult) []byte {
	return mustMarshal(r)
}

// DecodeJobResult parses a completion with the same strictness as
// DecodeJob.
func DecodeJobResult(data []byte) (JobResult, error) {
	var r JobResult
	if err := decodeStrict(data, &r); err != nil {
		return JobResult{}, fmt.Errorf("cluster: decoding job result: %w", err)
	}
	if r.Stats != nil && r.Error != "" {
		return JobResult{}, fmt.Errorf("cluster: job result %d carries both stats and an error", r.JobID)
	}
	return r, nil
}

func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Job and JobResult contain only marshalable fields; JSON-decoded
		// values can never hold NaN/Inf, the one way a float fails to encode.
		panic(fmt.Sprintf("cluster: marshaling wire message: %v", err))
	}
	return b
}

func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the message is a framing bug, not a message.
	if dec.More() {
		return fmt.Errorf("trailing data after message")
	}
	return nil
}

// JoinRequest registers a worker with the coordinator (POST /join). Workers
// are also auto-registered on their first lease, but an explicit join lets
// a starting worker fail fast on a bad coordinator URL and advertise its
// serving address for the fleet /stats view.
type JoinRequest struct {
	WorkerID string `json:"worker_id"`
	// Addr is the worker's own HTTP address, if it serves one (galsimd
	// workers do); informational, shown in fleet stats.
	Addr string `json:"addr,omitempty"`
	// Slots is the worker's concurrent-job capacity.
	Slots int `json:"slots,omitempty"`
}

// JoinResponse acknowledges a registration.
type JoinResponse struct {
	// LeaseMs is the coordinator's lease TTL; a worker that cannot finish a
	// job within it should expect re-dispatch.
	LeaseMs int64 `json:"lease_ms"`
}

// LeaseRequest asks the coordinator for up to Slots jobs (POST
// /jobs/lease).
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	// Slots caps how many jobs this lease may return (default 1).
	Slots int `json:"slots,omitempty"`
	// WaitMs long-polls: with no job pending, the coordinator holds the
	// request up to this long before answering empty.
	WaitMs int64 `json:"wait_ms,omitempty"`
	// Cache reports the worker's engine cache counters, aggregated into the
	// fleet-wide /stats view.
	Cache campaign.CacheStats `json:"cache"`
}

// LeaseResponse grants zero or more jobs.
type LeaseResponse struct {
	Jobs    []Job `json:"jobs"`
	LeaseMs int64 `json:"lease_ms"`
}

// CompleteRequest posts finished jobs back (POST /jobs/complete). Workers
// stream: each job is completed as it finishes rather than when the whole
// lease batch is done.
type CompleteRequest struct {
	WorkerID string              `json:"worker_id"`
	Results  []JobResult         `json:"results"`
	Cache    campaign.CacheStats `json:"cache"`
	// Spans carries the worker-side trace spans of the completed jobs
	// (execute, simulate/cache-hit, in-sim windows), recorded only when the
	// jobs carried a TraceParent. The coordinator folds them into its span
	// collector for GET /sweeps/{id}/trace.
	Spans []timeline.Span `json:"spans,omitempty"`
}

// CompleteResponse reports how many results filled a result slot. Stale
// duplicates (the job already completed elsewhere), stale failure reports,
// and accepted-but-failed results are not counted.
type CompleteResponse struct {
	Accepted int `json:"accepted"`
}

// CheckpointRequest posts one job's mid-run state snapshot (POST
// /jobs/checkpoint). The coordinator accepts it only from the job's current
// lease holder, stores it on the job (so a re-lease after this worker dies
// resumes from it), and journals it through a CheckpointStore when one is
// configured — making long jobs durable across both worker and coordinator
// loss.
type CheckpointRequest struct {
	WorkerID string `json:"worker_id"`
	JobID    uint64 `json:"job_id"`
	// Committed is the snapshot's committed-instruction count, for logs and
	// fleet visibility; the authoritative value lives inside the snapshot.
	Committed uint64 `json:"committed"`
	// Snapshot is the envelope-encoded snapshot (internal/snapshot).
	Snapshot []byte `json:"snapshot"`
}

// CheckpointResponse acknowledges a checkpoint. Accepted is false when the
// posting worker no longer holds the job's lease — its run is now a zombie
// whose eventual completion may still win (results are deterministic), but
// its checkpoints no longer matter.
type CheckpointResponse struct {
	Accepted bool `json:"accepted"`
}
