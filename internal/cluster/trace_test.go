package cluster

import (
	"bytes"
	"context"
	"testing"

	"galsim/internal/campaign"
	"galsim/internal/telemetry"
	"galsim/internal/timeline"
)

// TestFleetSpanIntegrity runs the golden sweep on a 3-worker fleet with a
// span collector attached and asserts the causal model of the whole sweep:
// one trace ID shared by every span, every parent link resolving, and the
// coordinator + all three workers present as services.
func TestFleetSpanIntegrity(t *testing.T) {
	spans := timeline.NewSpanCollector(0)
	f := startFleet(t, Config{Spans: spans}, 3, 2)

	// Submit with a caller trace context, as a front end would after
	// upgrading an inbound traceparent header.
	callerTrace := timeline.NewTraceID()
	callerSpan := timeline.NewSpanID()
	ctx := telemetry.ContextWithTrace(context.Background(),
		telemetry.TraceContext{TraceID: callerTrace, SpanID: callerSpan})
	units, err := goldenSweep().Units()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.coord.RunAll(ctx, units); err != nil {
		t.Fatal(err)
	}

	got := spans.ForTrace(callerTrace)
	if len(got) == 0 {
		t.Fatalf("no spans recorded for the caller's trace ID %s", callerTrace)
	}

	byID := make(map[string]timeline.Span, len(got))
	services := make(map[string]bool)
	names := make(map[string]int)
	for _, sp := range got {
		if sp.TraceID != callerTrace {
			t.Fatalf("span %s carries trace %s, want the caller's %s", sp.SpanID, sp.TraceID, callerTrace)
		}
		if sp.SpanID == "" {
			t.Fatal("span without an ID")
		}
		if prev, dup := byID[sp.SpanID]; dup {
			t.Fatalf("duplicate span ID %s (%q and %q)", sp.SpanID, prev.Name, sp.Name)
		}
		byID[sp.SpanID] = sp
		services[sp.Service] = true
		names[sp.Name]++
		if sp.EndUnixNs < sp.StartUnixNs {
			t.Errorf("span %s (%s) ends before it starts", sp.SpanID, sp.Name)
		}
	}

	// Every parent must resolve to a recorded span — except the campaign
	// root, whose parent is the caller's span.
	for _, sp := range got {
		if sp.ParentID == "" {
			t.Errorf("span %s (%s) has no parent", sp.SpanID, sp.Name)
			continue
		}
		if sp.ParentID == callerSpan {
			if sp.Name != "campaign" {
				t.Errorf("span %s (%s) parents to the caller; only the campaign root may", sp.SpanID, sp.Name)
			}
			continue
		}
		if _, ok := byID[sp.ParentID]; !ok {
			t.Errorf("span %s (%s) has dangling parent %s", sp.SpanID, sp.Name, sp.ParentID)
		}
	}

	if !services["coordinator"] {
		t.Error("no coordinator spans recorded")
	}
	workers := 0
	for _, w := range []string{"worker w1", "worker w2", "worker w3"} {
		if services[w] {
			workers++
		}
	}
	if workers < 2 {
		t.Errorf("spans from only %d workers; a 36-unit sweep on 3 workers should reach at least 2 (services: %v)", workers, services)
	}

	if names["campaign"] != 1 {
		t.Errorf("campaign root spans = %d, want 1", names["campaign"])
	}
	if names["merge"] != 1 {
		t.Errorf("merge spans = %d, want 1", names["merge"])
	}
	// Duplicate canonical specs collapse to one job each (the base machine
	// folds per-domain slowdowns), so lease/execute spans count unique
	// specs, not sweep units.
	unique := make(map[string]bool)
	for _, u := range units {
		unique[u.Key()] = true
	}
	jobCount := len(unique)
	if names["job lease"] < jobCount {
		t.Errorf("job lease spans = %d, want at least %d (one per job)", names["job lease"], jobCount)
	}
	if names["execute"] < jobCount {
		t.Errorf("execute spans = %d, want at least %d", names["execute"], jobCount)
	}
	if names["simulate"]+names["cache-hit"] < jobCount {
		t.Errorf("simulate+cache-hit spans = %d, want at least %d", names["simulate"]+names["cache-hit"], jobCount)
	}

	// The collected spans must render to a Perfetto-loadable trace.
	var buf bytes.Buffer
	if err := timeline.WriteSpansTrace(&buf, got); err != nil {
		t.Fatal(err)
	}
	if err := timeline.Validate(buf.Bytes()); err != nil {
		t.Fatalf("fleet trace is malformed: %v", err)
	}
}

// TestFleetSpansFreshTraceWithoutCaller: with no inbound trace context the
// coordinator mints a fresh trace ID so the sweep is still traceable.
func TestFleetSpansFreshTraceWithoutCaller(t *testing.T) {
	spans := timeline.NewSpanCollector(0)
	f := startFleet(t, Config{Spans: spans}, 1, 2)
	if _, err := f.coord.RunAll(context.Background(), []campaign.RunSpec{
		{Benchmark: "gcc", Instructions: 2_000},
	}); err != nil {
		t.Fatal(err)
	}
	all := spans.Snapshot()
	if len(all) == 0 {
		t.Fatal("no spans recorded without a caller trace context")
	}
	var root timeline.Span
	traces := make(map[string]bool)
	for _, sp := range all {
		traces[sp.TraceID] = true
		if sp.Name == "campaign" {
			root = sp
		}
	}
	if len(traces) != 1 {
		t.Fatalf("spans scattered over %d trace IDs, want 1", len(traces))
	}
	if root.SpanID == "" {
		t.Fatal("no campaign root span")
	}
	if root.ParentID != "" {
		t.Errorf("a self-minted trace's campaign root should have no parent, got %q", root.ParentID)
	}
}

// TestFleetSpansDisabled: without a collector the span plumbing stays
// inert — jobs carry no traceparent and nothing panics.
func TestFleetSpansDisabled(t *testing.T) {
	f := startFleet(t, Config{}, 1, 2)
	ctx := telemetry.ContextWithTrace(context.Background(),
		telemetry.TraceContext{TraceID: timeline.NewTraceID(), SpanID: timeline.NewSpanID()})
	if _, err := f.coord.RunAll(ctx, []campaign.RunSpec{
		{Benchmark: "gcc", Instructions: 2_000},
	}); err != nil {
		t.Fatal(err)
	}
}
