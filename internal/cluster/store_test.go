package cluster

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
	"galsim/internal/telemetry"
	"galsim/internal/wal"
)

// TestJournalStoreRecoverAfterReopen: the store's three transitions survive
// a close/reopen cycle, finished campaigns compact away, and replay is
// idempotent against duplicates and stale completions.
func TestJournalStoreRecoverAfterReopen(t *testing.T) {
	dir := t.TempDir()
	specs := []campaign.RunSpec{
		campaign.RunSpec{Benchmark: "gcc", Instructions: 2_000}.Canonical(),
		campaign.RunSpec{Benchmark: "swim", Instructions: 2_000}.Canonical(),
	}
	st, err := campaign.Execute(specs[0], nil)
	if err != nil {
		t.Fatal(err)
	}

	a, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CampaignEnqueued("c1", "req-1", campaign.PriorityInteractive, specs); err != nil {
		t.Fatal(err)
	}
	if err := a.JobCompleted("c1", specs[0].Key(), &st); err != nil {
		t.Fatal(err)
	}
	// Duplicate completion and a completion for an unknown campaign are both
	// silent no-ops — exactly what stale worker retries look like.
	if err := a.JobCompleted("c1", specs[0].Key(), &st); err != nil {
		t.Fatal(err)
	}
	if err := a.JobCompleted("ghost", specs[0].Key(), &st); err != nil {
		t.Fatal(err)
	}
	if err := a.CampaignEnqueued("c2", "req-2", campaign.PriorityBulk, specs[:1]); err != nil {
		t.Fatal(err)
	}
	if err := a.CampaignFinished("c2", ""); err != nil {
		t.Fatal(err)
	}
	if got := a.WALStats().Compactions; got != 1 {
		t.Errorf("finish did not compact the log: %d compactions", got)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	recs, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d campaigns, want just unfinished c1", len(recs))
	}
	rec := recs[0]
	if rec.ID != "c1" || rec.RequestID != "req-1" || rec.Priority != campaign.PriorityInteractive {
		t.Errorf("recovered identity = %q/%q/%v", rec.ID, rec.RequestID, rec.Priority)
	}
	if !bytes.Equal(mustJSON(t, rec.Specs), mustJSON(t, specs)) {
		t.Error("recovered specs differ from the enqueued batch")
	}
	if len(rec.Completed) != 1 {
		t.Fatalf("recovered %d completions, want 1 (duplicates must collapse)", len(rec.Completed))
	}
	if got := rec.Completed[specs[0].Key()]; got == nil || !bytes.Equal(mustJSON(t, *got), mustJSON(t, st)) {
		t.Error("journaled stats did not round-trip")
	}
	// Finishing the last campaign resets the journal to empty.
	if err := b.CampaignFinished("c1", ""); err != nil {
		t.Fatal(err)
	}
	if recs, err := b.Recover(); err != nil || len(recs) != 0 {
		t.Errorf("after finishing everything: Recover = %d campaigns, err %v", len(recs), err)
	}
}

// crashStore wraps a JournalStore and simulates the coordinator process
// dying after a fixed number of journaled completions: later appends fail
// (they never reached disk) and the finish record is swallowed, leaving the
// on-disk journal exactly as a SIGKILL mid-sweep would.
type crashStore struct {
	*JournalStore
	mu          sync.Mutex
	completions int
	limit       int
}

var errSimulatedCrash = errors.New("simulated coordinator crash")

func (s *crashStore) JobCompleted(campaignID, key string, st *pipeline.Stats) error {
	s.mu.Lock()
	if s.completions >= s.limit {
		s.mu.Unlock()
		return errSimulatedCrash
	}
	s.completions++
	s.mu.Unlock()
	return s.JournalStore.JobCompleted(campaignID, key, st)
}

func (s *crashStore) CampaignFinished(campaignID, errMsg string) error {
	s.mu.Lock()
	crashed := s.completions >= s.limit
	s.mu.Unlock()
	if crashed {
		return errSimulatedCrash
	}
	return s.JournalStore.CampaignFinished(campaignID, errMsg)
}

// TestCoordinatorCrashRestartResumesSweep is the tentpole chaos test: a
// coordinator journals a sweep, "crashes" with only part of it durably
// completed, and a brand-new coordinator on the same journal resumes the
// campaign — re-running exactly the missing jobs — with merged output
// byte-identical to serial execution.
func TestCoordinatorCrashRestartResumesSweep(t *testing.T) {
	dir := t.TempDir()
	sweep := goldenSweep()
	units, serialStats, _ := serialReference(t, sweep)
	canon := make([]campaign.RunSpec, len(units))
	for i, u := range units {
		canon[i] = u.Canonical()
	}
	uniqueJobs := len(groupByKey(canon))
	limit := uniqueJobs / 2 // journal only half the completions before "crashing"
	if limit == 0 {
		t.Fatal("sweep too small for a partial crash")
	}

	// Phase 1: run the sweep on a journaling coordinator whose store stops
	// persisting after `limit` completions — the in-memory run still
	// finishes, but on disk the campaign is enqueued, half done, unfinished.
	journalA, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := &crashStore{JournalStore: journalA, limit: limit}
	f1 := startFleet(t, Config{Store: cs}, 2, 2)
	if _, err := f1.coord.RunAll(context.Background(), units); err != nil {
		t.Fatal(err)
	}
	f1.stop()
	if err := journalA.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh coordinator (fresh workers, cold caches) opens the
	// same journal and resumes.
	journalB, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journalB.Close() })
	f2 := startFleet(t, Config{Store: journalB}, 1, 2)
	resumed, err := f2.coord.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("recovered %d campaigns, want 1", len(resumed))
	}
	r := resumed[0]
	if r.Units != len(units) {
		t.Errorf("resumed campaign has %d units, want %d", r.Units, len(units))
	}
	if r.PrefilledUnits < limit {
		t.Errorf("only %d units prefilled from the journal, want >= %d", r.PrefilledUnits, limit)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := r.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), mustJSON(t, serialStats)) {
		t.Error("resumed sweep results differ from serial execution")
	}
	// Exactly the un-journaled jobs re-ran: the fresh worker's engine saw
	// one cache miss per missing unique spec, no more, no fewer.
	if misses := f2.engines[0].Stats().Misses; misses != uint64(uniqueJobs-limit) {
		t.Errorf("restart re-simulated %d jobs, want %d (journaled results must not re-run)",
			misses, uniqueJobs-limit)
	}
	// The resumed campaign's finish is journaled (by watchResumed) and
	// compacts the log back to empty.
	waitFor(t, func() bool {
		recs, err := journalB.Recover()
		return err == nil && len(recs) == 0
	}, "journal compaction after resumed campaign finished")
	// The WAL metric family is live on the restarted coordinator.
	var metrics strings.Builder
	if err := f2.coord.Metrics().WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"galsim_wal_recovered_campaigns_total 1",
		"galsim_wal_replayed_records",
		"galsim_wal_compactions",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestSubmitBoundedQueueRejects: a batch that would overflow MaxQueuedJobs
// is rejected atomically with campaign.ErrBackendBusy — nothing enqueued,
// nothing journaled — and the rejection metric increments.
func TestSubmitBoundedQueueRejects(t *testing.T) {
	f := startFleet(t, Config{MaxQueuedJobs: 2}, 0, 0)
	specs := []campaign.RunSpec{
		{Benchmark: "gcc", Instructions: 2_000},
		{Benchmark: "swim", Instructions: 2_000},
		{Benchmark: "perl", Instructions: 2_000},
	}
	_, err := f.coord.RunAll(context.Background(), specs)
	if !errors.Is(err, campaign.ErrBackendBusy) {
		t.Fatalf("overflow error = %v, want ErrBackendBusy", err)
	}
	if st := f.coord.Stats(); st.JobsPending != 0 {
		t.Errorf("rejected batch left %d jobs queued", st.JobsPending)
	}
	// A batch that fits is accepted even while the limit exists.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.coord.RunAll(ctx, specs[:2])
		done <- err
	}()
	waitFor(t, func() bool { return f.coord.Stats().JobsPending == 2 }, "in-limit batch enqueued")
	cancel()
	<-done
}

// TestPriorityLaneLeasesInteractiveFirst: with both lanes populated, a
// worker's next lease drains every interactive job before any bulk job.
func TestPriorityLaneLeasesInteractiveFirst(t *testing.T) {
	c := NewCoordinator(Config{})
	bulk := campaign.RunSpec{Benchmark: "gcc", Instructions: 2_000}.Canonical()
	inter := campaign.RunSpec{Benchmark: "swim", Instructions: 2_000}.Canonical()
	if _, err := c.submit([]campaign.RunSpec{bulk}, "", telemetry.TraceContext{}, nil, campaign.PriorityBulk); err != nil {
		t.Fatal(err)
	}
	if _, err := c.submit([]campaign.RunSpec{inter}, "", telemetry.TraceContext{}, nil, campaign.PriorityInteractive); err != nil {
		t.Fatal(err)
	}
	jobs, _ := c.tryLease("w1", 2, campaign.CacheStats{})
	if len(jobs) != 2 {
		t.Fatalf("leased %d jobs, want 2", len(jobs))
	}
	if jobs[0].Spec.Key() != inter.Key() {
		t.Errorf("first lease = %s, want the interactive job despite bulk arriving first",
			jobs[0].Spec.WorkloadName())
	}
	if jobs[1].Spec.Key() != bulk.Key() {
		t.Errorf("second lease = %s, want the bulk job", jobs[1].Spec.WorkloadName())
	}
}
