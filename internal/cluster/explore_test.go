package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"galsim/internal/campaign"
	"galsim/internal/explore"
)

// TestExploreFleetDeterminism is the distributed half of the explorer's
// determinism contract: the same SearchSpec and seed must produce a
// byte-identical search Result whether generations are scored on the
// local engine or sharded across a three-worker fleet. The coordinator
// merges by unit index and the explorer consumes results in expansion
// order, so nothing about scheduling may leak into the artifact.
func TestExploreFleetDeterminism(t *testing.T) {
	spec := explore.SearchSpec{
		Name:         "fleet-differential",
		Seed:         21,
		Strategy:     explore.StrategyEvolutionary,
		Workloads:    []string{"gcc", "swim"},
		Instructions: 2000,
		Space:        explore.SpaceSpec{DVFS: true},
		Budget:       explore.BudgetSpec{Population: 5, MaxGenerations: 2},
	}
	run := func(b campaign.Backend) []byte {
		t.Helper()
		x := &explore.Explorer{Evaluator: explore.BackendEvaluator{Backend: b}}
		res, err := x.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	local := run(campaign.NewEngine(1))
	f := startFleet(t, Config{}, 3, 2)
	fleet := run(f.coord)
	if !bytes.Equal(local, fleet) {
		t.Fatalf("fleet search result differs from local reference:\nlocal: %d bytes\nfleet: %d bytes",
			len(local), len(fleet))
	}
}
