package cluster

import (
	"fmt"
	"net/http"
	"time"

	"galsim/internal/httpjson"
	"galsim/internal/snapshot"
)

// maxBodyBytes bounds fleet-endpoint request bodies. Completion batches
// carry full Stats structs, but even a generous batch stays far under this.
const maxBodyBytes = 8 << 20

// maxLeaseWait caps how long one lease request may long-poll; workers
// simply poll again.
const maxLeaseWait = 30 * time.Second

// Register mounts the coordinator's fleet endpoints on mux:
//
//	POST /join             explicit worker registration
//	POST /jobs/lease       lease up to N jobs (long-polls while idle)
//	POST /jobs/complete    post finished jobs (streamed per job)
//	POST /jobs/checkpoint  post a leased job's mid-run snapshot
//	GET  /stats            aggregated fleet stats (see FleetStats)
//	GET  /metrics          Prometheus text exposition of the fleet metrics
//
// The paths are chosen so a service.Server can be mounted beneath at "/"
// (as cmd/galsim-fleet does): ServeMux prefers the more specific pattern,
// so the fleet-wide /stats shadows the service's per-process one while
// /run, /sweep, /benchmarks etc. fall through. (Point Config.Metrics at the
// service's registry so the shadowing /metrics page covers both.)
// When Config.Admission is set, the three POST endpoints require a tenant
// API key (workers send Worker.APIKey) — an open fleet port would let
// anyone execute jobs or inject results.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /join", c.admitted(c.handleJoin))
	mux.HandleFunc("POST /jobs/lease", c.admitted(c.handleLease))
	mux.HandleFunc("POST /jobs/complete", c.admitted(c.handleComplete))
	mux.HandleFunc("POST /jobs/checkpoint", c.admitted(c.handleCheckpoint))
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.Handle("GET /metrics", c.metrics.Handler())
}

// admitted wraps a fleet handler behind the admission gate (identity when
// no gate is configured).
func (c *Coordinator) admitted(h http.HandlerFunc) http.HandlerFunc {
	if c.cfg.Admission == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if _, ok := c.cfg.Admission.Admit(w, r); !ok {
			return
		}
		h(w, r)
	}
}

// Handler returns a standalone handler serving only the fleet endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("worker_id is required"))
		return
	}
	c.join(req)
	writeJSON(w, http.StatusOK, JoinResponse{LeaseMs: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("worker_id is required"))
		return
	}
	slots := req.Slots
	if slots <= 0 {
		slots = 1
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	// Long-poll: wall-clock here, the injectable coordinator clock only for
	// lease deadlines (fake-clock tests drive tryLease directly).
	deadline := time.Now().Add(wait)
	for {
		jobs, wake := c.tryLease(req.WorkerID, slots, req.Cache)
		if len(jobs) > 0 || !time.Now().Before(deadline) {
			writeJSON(w, http.StatusOK, LeaseResponse{
				Jobs:    jobs,
				LeaseMs: c.cfg.LeaseTTL.Milliseconds(),
			})
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return // worker gone; nothing was leased
		}
		timer.Stop()
	}
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("worker_id is required"))
		return
	}
	for _, res := range req.Results {
		if res.Stats != nil && res.Error != "" {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("job result %d carries both stats and an error", res.JobID))
			return
		}
	}
	accepted := c.complete(req.WorkerID, req.Results, req.Cache)
	c.addSpans(req.Spans)
	writeJSON(w, http.StatusOK, CompleteResponse{Accepted: accepted})
}

func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req CheckpointRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("worker_id is required"))
		return
	}
	// Validate the envelope before anything is stored or journaled: a
	// corrupt checkpoint fails typed here, never a partial restore later.
	if _, err := snapshot.DecodeBytes(req.Snapshot); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("checkpoint for job %d rejected: %w", req.JobID, err))
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Accepted: c.checkpoint(req)})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) { httpjson.Write(w, status, v) }

func writeError(w http.ResponseWriter, status int, err error) { httpjson.Error(w, status, err) }

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return httpjson.Decode(w, r, v, maxBodyBytes)
}
