package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
	"galsim/internal/snapshot"
	"galsim/internal/telemetry"
	"galsim/internal/timeline"
)

// Worker pulls jobs from a Coordinator and executes them on a local
// campaign engine. galsimd runs one (sharing the engine with its own HTTP
// handlers, so fleet jobs and direct requests hit one result cache) when
// started with -join; cmd/galsim-fleet can also spawn in-process workers
// for single-machine fleets.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:9090".
	Coordinator string
	// ID names this worker to the fleet; empty generates "host-pid-xxxx".
	ID string
	// Addr is this worker's own HTTP address, if it serves one;
	// informational, shown in fleet stats.
	Addr string
	// Engine executes the jobs (nil creates a GOMAXPROCS-wide engine).
	Engine *campaign.Engine
	// Slots is how many jobs run concurrently (default Engine.Workers()).
	Slots int
	// PollInterval is the pause after an idle long-poll (default 500ms; the
	// lease long-poll provides the real pacing). It also seeds the error
	// backoff: failed lease/complete calls retry on a jittered exponential
	// schedule from PollInterval up to MaxBackoff, resetting on success, so
	// a briefly-down coordinator sees a fan-in of retries instead of a
	// fixed-cadence stampede from every worker at once.
	PollInterval time.Duration
	// MaxBackoff caps the error-retry delay (default 15s).
	MaxBackoff time.Duration
	// DrainTimeout, when positive, makes shutdown graceful: after Run's ctx
	// is cancelled the worker stops leasing but finishes and reports the
	// jobs it already holds, for at most this long. Zero preserves the
	// abrupt behavior — in-flight jobs are abandoned to their lease TTL.
	DrainTimeout time.Duration
	// APIKey authenticates this worker to an admission-gated coordinator
	// (sent as "Authorization: Bearer <key>"); empty sends no credential.
	APIKey string
	// Client issues the HTTP calls (nil uses a 2-minute-timeout client —
	// comfortably above the lease long-poll, far below any lease TTL that
	// would matter).
	Client *http.Client
	// Log receives structured progress and retry diagnostics; nil uses
	// slog.Default(). Job lifecycle lines carry the coordinator-assigned
	// request_id, matching the coordinator's own campaign logs.
	Log *slog.Logger
	// Metrics, when non-nil, receives the worker's job execution metrics
	// (galsim_worker_*). galsimd passes its service registry so worker and
	// service metrics share one /metrics page.
	Metrics *telemetry.Registry
	// TimelineEvents sizes the flight-recorder ring attached to jobs that
	// arrive with a trace context (see Job.TraceParent): the last N
	// microarchitecture events of each traced simulation are converted to
	// spans and shipped back with the completion. 0 selects a small default;
	// negative disables in-sim spans (execute/simulate spans still ship).
	TimelineEvents int
	// CheckpointEvery, when positive, makes long jobs crash-resumable: every
	// N committed instructions the worker posts the job's full execution
	// state to the coordinator (POST /jobs/checkpoint), and a job that
	// arrives carrying a previous holder's checkpoint resumes from it
	// instead of re-simulating the prefix. Results are byte-identical either
	// way (the snapshot differential gate proves it); checkpointed jobs skip
	// in-sim trace spans. Zero disables checkpointing.
	CheckpointEvery uint64

	m struct {
		jobs       telemetry.Counter // label: result (ok|error)
		jobSeconds telemetry.Histogram
		leaseErrs  telemetry.Counter
		drained    telemetry.Counter // jobs completed during graceful drain
	}
	metricsOn bool

	// randFloat overrides the backoff jitter source (tests); nil uses
	// math/rand/v2.
	randFloat func() float64
}

// newBackoff builds this worker's error-retry schedule.
func (w *Worker) newBackoff() backoff {
	maxB := w.MaxBackoff
	if maxB <= 0 {
		maxB = 15 * time.Second
	}
	return backoff{base: w.pollInterval(), cap: maxB, rand: w.randFloat}
}

func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.Default()
}

// leaseWaitMs is how long each lease request long-polls on the coordinator.
const leaseWaitMs = 2000

// Run joins the coordinator and pulls jobs until ctx is cancelled,
// streaming each completion back as the job finishes. A worker dying
// mid-job (ctx cancelled, process killed) simply never completes it; the
// coordinator's lease TTL re-queues the job for the surviving fleet.
func (w *Worker) Run(ctx context.Context) error {
	if w.Engine == nil {
		w.Engine = campaign.NewEngine(0)
	}
	if w.ID == "" {
		w.ID = defaultWorkerID()
	}
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	slots := w.Slots
	if slots <= 0 {
		slots = w.Engine.Workers()
	}
	if w.Metrics != nil {
		w.m.jobs = w.Metrics.Counter("galsim_worker_jobs_total",
			"Fleet jobs executed by this worker, by result.", "result")
		w.m.jobSeconds = w.Metrics.Histogram("galsim_worker_job_seconds",
			"Fleet job execution time on this worker in seconds.", nil)
		w.m.leaseErrs = w.Metrics.Counter("galsim_worker_lease_errors_total",
			"Failed lease calls to the coordinator.")
		w.m.drained = w.Metrics.Counter("galsim_worker_jobs_drained_total",
			"Jobs finished and reported during a graceful shutdown drain.")
		w.metricsOn = true
	}
	if err := w.join(ctx, slots); err != nil {
		return fmt.Errorf("cluster: worker %s joining %s: %w", w.ID, w.Coordinator, err)
	}
	w.log().Info("worker joined", "worker", w.ID, "coordinator", w.Coordinator, "slots", slots)

	// Two lifetimes: leasing stops the moment ctx is cancelled, but with a
	// DrainTimeout the jobs already held get a second context that outlives
	// ctx by up to that long — finished work is reported instead of thrown
	// away to a lease expiry. DrainTimeout zero collapses both to ctx, the
	// original kill-style behavior.
	jobCtx := ctx
	drained := make(chan struct{})
	if w.DrainTimeout > 0 {
		var cancel context.CancelFunc
		jobCtx, cancel = context.WithCancel(context.WithoutCancel(ctx))
		go func() {
			defer cancel()
			select {
			case <-drained:
				return
			case <-ctx.Done():
			}
			w.log().Info("draining in-flight jobs", "worker", w.ID,
				"timeout", w.DrainTimeout.String())
			t := time.NewTimer(w.DrainTimeout)
			defer t.Stop()
			select {
			case <-drained:
			case <-t.C:
				w.log().Warn("drain timeout; abandoning remaining jobs", "worker", w.ID)
			}
		}()
	}
	var wg sync.WaitGroup
	// One puller per slot: each leases a single job, runs it, and posts the
	// completion before leasing again — natural backpressure, and a lost
	// worker forfeits at most `slots` leases.
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.pull(ctx, jobCtx)
		}()
	}
	wg.Wait()
	close(drained)
	return ctx.Err()
}

// pull is one slot's lease→run→complete loop. leaseCtx bounds leasing (new
// work stops with it); jobCtx bounds execution and completion of jobs
// already held, and outlives leaseCtx during a graceful drain.
func (w *Worker) pull(leaseCtx, jobCtx context.Context) {
	bo := w.newBackoff()
	for leaseCtx.Err() == nil {
		lease, err := w.lease(leaseCtx)
		if err != nil {
			if leaseCtx.Err() != nil {
				return
			}
			if w.metricsOn {
				w.m.leaseErrs.Inc()
			}
			delay := bo.next()
			w.log().Warn("lease failed", "worker", w.ID, "error", err,
				"retry_in_ms", delay.Milliseconds())
			sleepCtx(leaseCtx, delay)
			continue
		}
		bo.reset()
		if len(lease.Jobs) == 0 {
			// The long-poll already waited; a short pause keeps a
			// misconfigured (wait-free) coordinator from being hammered.
			sleepCtx(leaseCtx, w.pollInterval())
			continue
		}
		for _, jb := range lease.Jobs {
			w.log().Info("job start", "worker", w.ID, "job_id", jb.ID,
				"request_id", jb.RequestID, "benchmark", jb.Spec.Benchmark)
			start := time.Now()
			var (
				st    pipeline.Stats
				err   error
				spans []timeline.Span
			)
			if w.CheckpointEvery > 0 {
				st, err = w.runCheckpointed(jobCtx, jb)
			} else if trID, parentSp, ok := timeline.ParseTraceParent(jb.TraceParent); ok {
				st, spans, err = w.runTraced(jobCtx, jb, trID, parentSp)
			} else {
				st, err = w.Engine.Run(jobCtx, jb.Spec)
			}
			dur := time.Since(start)
			if jobCtx.Err() != nil {
				// Dying mid-job: report nothing and let the lease expire, so
				// the job is re-run whole on a live worker.
				return
			}
			draining := leaseCtx.Err() != nil
			res := JobResult{JobID: jb.ID}
			result := "ok"
			if err != nil {
				res.Error = err.Error()
				result = "error"
			} else {
				res.Stats = &st
			}
			if w.metricsOn {
				w.m.jobs.Inc(result)
				w.m.jobSeconds.Observe(dur.Seconds())
				if draining {
					w.m.drained.Inc()
				}
			}
			w.log().Info("job done", "worker", w.ID, "job_id", jb.ID,
				"request_id", jb.RequestID, "result", result,
				"duration_ms", dur.Milliseconds(), "draining", draining)
			if cerr := w.complete(jobCtx, res, spans, jb.TraceParent); cerr != nil {
				if jobCtx.Err() != nil {
					return
				}
				w.log().Warn("completing job failed", "worker", w.ID,
					"job_id", jb.ID, "request_id", jb.RequestID, "error", cerr)
			}
		}
	}
}

func (w *Worker) pollInterval() time.Duration {
	if w.PollInterval > 0 {
		return w.PollInterval
	}
	return 500 * time.Millisecond
}

func (w *Worker) join(ctx context.Context, slots int) error {
	var resp JoinResponse
	return w.post(ctx, "/join", JoinRequest{WorkerID: w.ID, Addr: w.Addr, Slots: slots}, &resp)
}

func (w *Worker) lease(ctx context.Context) (LeaseResponse, error) {
	var resp LeaseResponse
	err := w.post(ctx, "/jobs/lease", LeaseRequest{
		WorkerID: w.ID,
		Slots:    1,
		WaitMs:   leaseWaitMs,
		Cache:    w.Engine.Stats(),
	}, &resp)
	return resp, err
}

// runCheckpointed executes one job under the checkpoint regime: resume from
// the job's attached checkpoint when it has a valid one (a checkpoint that
// fails its typed validation is discarded for a cold run — never a partial
// restore), and post a fresh checkpoint to the coordinator every
// CheckpointEvery committed instructions. A rejected post (this worker lost
// the lease) or an unreachable coordinator never fails the run: the
// completion retry path settles who wins.
func (w *Worker) runCheckpointed(ctx context.Context, jb Job) (pipeline.Stats, error) {
	var resume *snapshot.Snapshot
	if len(jb.Checkpoint) > 0 {
		snap, err := snapshot.DecodeBytes(jb.Checkpoint)
		if err != nil {
			w.log().Warn("job checkpoint unusable; running cold", "worker", w.ID,
				"job_id", jb.ID, "request_id", jb.RequestID, "error", err)
		} else {
			resume = snap
			w.log().Info("resuming from checkpoint", "worker", w.ID, "job_id", jb.ID,
				"request_id", jb.RequestID, "committed", snap.Committed)
		}
	}
	onSnap := func(sn *snapshot.Snapshot) {
		blob, err := sn.EncodeBytes()
		if err != nil {
			w.log().Warn("encoding checkpoint failed", "worker", w.ID, "job_id", jb.ID, "error", err)
			return
		}
		var resp CheckpointResponse
		err = w.post(ctx, "/jobs/checkpoint", CheckpointRequest{
			WorkerID:  w.ID,
			JobID:     jb.ID,
			Committed: sn.Committed,
			Snapshot:  blob,
		}, &resp)
		switch {
		case err != nil:
			w.log().Warn("posting checkpoint failed", "worker", w.ID, "job_id", jb.ID,
				"request_id", jb.RequestID, "error", err)
		case !resp.Accepted:
			w.log().Warn("checkpoint rejected: lease no longer held", "worker", w.ID,
				"job_id", jb.ID, "request_id", jb.RequestID)
		default:
			w.log().Debug("checkpoint posted", "worker", w.ID, "job_id", jb.ID,
				"request_id", jb.RequestID, "committed", sn.Committed)
		}
	}
	st, _, err := w.Engine.RunCheckpointed(ctx, jb.Spec, w.CheckpointEvery, onSnap, resume)
	return st, err
}

// maxSimSpans bounds how many in-sim windows one traced job ships back:
// plenty for the interesting tail (the flight ring already keeps only the
// last events) while keeping completion bodies small.
const maxSimSpans = 256

// runTraced executes one traced job and renders the worker's side of the
// trace: an "execute" span under the job's lease span, a "simulate" or
// "cache-hit" child, and — on an actual simulation — the flight recorder's
// stall/squash/backpressure windows rebased into the simulate window as
// grandchild spans.
func (w *Worker) runTraced(ctx context.Context, jb Job, traceID, parentSpan string) (pipeline.Stats, []timeline.Span, error) {
	var rec *timeline.Recorder
	if w.TimelineEvents >= 0 {
		events := w.TimelineEvents
		if events == 0 {
			// 1024 events = 24KB: the ring stays L1-resident, so steady
			// state recording does not evict the simulator's working set.
			// SimSpans folds at most maxSimSpans windows into the trace
			// anyway, so a deeper default ring buys nothing.
			events = 1024
		}
		rec = timeline.NewRecorder(timeline.Options{MaxEvents: events, Flight: true})
	}
	start := time.Now()
	st, hit, err := w.Engine.RunTimeline(ctx, jb.Spec, campaign.TimelineTap{Recorder: rec})
	end := time.Now()
	if ctx.Err() != nil {
		return st, nil, err
	}
	service := "worker " + w.ID
	exec := timeline.Span{
		TraceID:     traceID,
		SpanID:      timeline.NewSpanID(),
		ParentID:    parentSpan,
		Name:        "execute",
		Service:     service,
		StartUnixNs: start.UnixNano(),
		EndUnixNs:   end.UnixNano(),
		Attrs: map[string]string{
			"job_id":    fmt.Sprintf("%d", jb.ID),
			"benchmark": jb.Spec.Benchmark,
		},
	}
	if err != nil {
		exec.Attrs["error"] = err.Error()
		return st, []timeline.Span{exec}, err
	}
	childName := "simulate"
	if hit {
		childName = "cache-hit"
	}
	child := timeline.Span{
		TraceID:     traceID,
		SpanID:      timeline.NewSpanID(),
		ParentID:    exec.SpanID,
		Name:        childName,
		Service:     service,
		StartUnixNs: start.UnixNano(),
		EndUnixNs:   end.UnixNano(),
	}
	spans := []timeline.Span{exec, child}
	if !hit && rec != nil {
		spans = append(spans, rec.SimSpans(traceID, child.SpanID, service,
			start.UnixNano(), end.UnixNano(), maxSimSpans)...)
	}
	return st, spans, nil
}

// complete posts one finished job, retrying a few times so a briefly
// unreachable coordinator does not cost a finished simulation; if it stays
// unreachable the lease expires and the job reruns elsewhere.
func (w *Worker) complete(ctx context.Context, res JobResult, spans []timeline.Span, traceparent string) error {
	req := CompleteRequest{WorkerID: w.ID, Results: []JobResult{res}, Cache: w.Engine.Stats(), Spans: spans}
	bo := w.newBackoff()
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			sleepCtx(ctx, bo.next())
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		var resp CompleteResponse
		if err = w.postTrace(ctx, "/jobs/complete", traceparent, req, &resp); err == nil {
			return nil
		}
	}
	return err
}

func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	return w.postTrace(ctx, path, "", in, out)
}

// postTrace is post with an optional W3C traceparent header, so traced job
// completions correlate in the coordinator's access logs.
func (w *Worker) postTrace(ctx context.Context, path, traceparent string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+w.APIKey)
	}
	if traceparent != "" {
		req.Header.Set(telemetry.TraceParentHeader, traceparent)
	}
	resp, err := w.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s (HTTP %d)", path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	// Strict decoding end to end: a coordinator speaking a newer schema
	// (say, a job field this worker would silently drop) must fail loudly
	// here, not simulate the wrong configuration.
	if err := decodeStrict(data, out); err != nil {
		return fmt.Errorf("%s: decoding response: %w", path, err)
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	var suffix [2]byte
	rand.Read(suffix[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	return fmt.Sprintf("%s-%d-%s", host, os.Getpid(), hex.EncodeToString(suffix[:]))
}
