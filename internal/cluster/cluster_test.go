package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
)

// goldenSweep is the differential-test grid: the PR 3 golden benchmarks
// (gcc, swim, perl) on both machines across three slowdown points. The
// base machine collapses the per-domain point to full speed, so the grid
// also exercises the coordinator's duplicate-spec fan-out.
func goldenSweep() campaign.Sweep {
	return campaign.Sweep{
		Benchmarks:   []string{"gcc", "swim", "perl"},
		Machines:     []string{"base", "gals"},
		SlowdownGrid: []map[string]float64{nil, {"all": 1.5}, {"fp": 3}},
		Instructions: 6_000,
	}
}

// serialReference executes every unit of the sweep one at a time through
// campaign.Execute — no engine, no cache, no concurrency — and aggregates
// exactly like RunSweepOn. This is the seed semantics every distributed
// configuration must reproduce byte-for-byte.
func serialReference(t *testing.T, s campaign.Sweep) ([]campaign.RunSpec, []pipeline.Stats, []campaign.UnitResult) {
	t.Helper()
	units, err := s.Units()
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]pipeline.Stats, len(units))
	results := make([]campaign.UnitResult, len(units))
	for i, u := range units {
		st, err := campaign.Execute(u, nil)
		if err != nil {
			t.Fatalf("serial unit %d: %v", i, err)
		}
		stats[i] = st
		results[i] = campaign.UnitResult{Key: u.Key(), Spec: u.Canonical(), Summary: campaign.Summarize(u, st)}
	}
	return units, stats, results
}

// testFleet is a coordinator plus a set of in-process workers talking to it
// over a real HTTP server.
type testFleet struct {
	t       testing.TB
	coord   *Coordinator
	ts      *httptest.Server
	engines []*campaign.Engine
	cancels []context.CancelFunc
	wg      sync.WaitGroup
	stopped sync.Once
}

func startFleet(t testing.TB, cfg Config, workers, slots int) *testFleet {
	t.Helper()
	f := &testFleet{t: t, coord: NewCoordinator(cfg)}
	f.ts = httptest.NewServer(f.coord.Handler())
	for i := 0; i < workers; i++ {
		f.addWorker(slots)
	}
	t.Cleanup(f.stop)
	return f
}

func (f *testFleet) addWorker(slots int) int {
	engine := campaign.NewEngine(slots)
	w := &Worker{
		Coordinator:  f.ts.URL,
		ID:           fmt.Sprintf("w%d", len(f.cancels)+1),
		Engine:       engine,
		Slots:        slots,
		PollInterval: 10 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.engines = append(f.engines, engine)
	f.cancels = append(f.cancels, cancel)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		w.Run(ctx) //nolint:errcheck // exits via ctx cancellation
	}()
	return len(f.cancels) - 1
}

// kill cancels one worker's context: from the coordinator's point of view
// the worker silently vanishes, exactly like a killed process — leased
// jobs are never completed and must be re-dispatched on lease expiry.
func (f *testFleet) kill(i int) { f.cancels[i]() }

func (f *testFleet) stop() {
	f.stopped.Do(func() {
		for _, cancel := range f.cancels {
			cancel()
		}
		done := make(chan struct{})
		go func() { f.wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			f.t.Error("fleet workers did not stop within 10s")
		}
		f.ts.Close()
	})
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetDifferentialDeterminism is the fabric's correctness contract:
// the golden sweep routed through an HTTP worker fleet must produce output
// byte-identical to serial campaign.Execute, for 1, 3 and 8 workers.
func TestFleetDifferentialDeterminism(t *testing.T) {
	sweep := goldenSweep()
	units, serialStats, serialResults := serialReference(t, sweep)
	serialJSON := mustJSON(t, serialResults)
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			f := startFleet(t, Config{}, workers, 2)
			got, err := campaign.RunSweepOn(context.Background(), f.coord, sweep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mustJSON(t, got), serialJSON) {
				t.Errorf("workers=%d: aggregated fleet results differ from serial execution", workers)
			}
			// The raw stats must match too — not just the summarized digests.
			stats, err := f.coord.RunAll(context.Background(), units)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stats, serialStats) {
				t.Errorf("workers=%d: raw stats diverged from serial execution", workers)
			}
		})
	}
}

// TestFleetCacheHitsAcrossCampaigns: a repeated batch must be served from
// the single worker's engine cache, not re-simulated — the job carries the
// spec's full cache identity, so hits work fleet-wide.
func TestFleetCacheHitsAcrossCampaigns(t *testing.T) {
	f := startFleet(t, Config{}, 1, 2)
	units, err := goldenSweep().Units()
	if err != nil {
		t.Fatal(err)
	}
	first, err := f.coord.RunAll(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	misses := f.engines[0].Stats().Misses
	if misses == 0 {
		t.Fatal("first campaign reported no cache misses")
	}
	second, err := f.coord.RunAll(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("repeated campaign returned different results")
	}
	if after := f.engines[0].Stats().Misses; after != misses {
		t.Errorf("repeated campaign re-simulated cached specs: misses %d -> %d", misses, after)
	}
}

// TestRunAllValidatesUpFront: a bad unit fails the whole batch before any
// job is enqueued, with the same error surface as the local engine.
func TestRunAllValidatesUpFront(t *testing.T) {
	f := startFleet(t, Config{}, 1, 1)
	_, err := f.coord.RunAll(context.Background(), []campaign.RunSpec{
		{Benchmark: "gcc", Instructions: 2_000},
		{Benchmark: "nope", Instructions: 2_000},
	})
	if err == nil {
		t.Fatal("invalid unit ran without error")
	}
	if st := f.coord.Stats(); st.JobsDone != 0 || st.JobsPending != 0 {
		t.Errorf("invalid batch left queue state: %+v", st)
	}
}

// TestRunAllCancellation: cancelling the campaign context abandons its
// jobs so the queue drains instead of dispatching work nobody collects.
func TestRunAllCancellation(t *testing.T) {
	// No workers: jobs would sit pending forever without cancellation.
	f := startFleet(t, Config{}, 0, 0)
	units, err := goldenSweep().Units()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.coord.RunAll(ctx, units)
		done <- err
	}()
	waitFor(t, func() bool { return f.coord.Stats().JobsPending > 0 }, "jobs enqueued")
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled RunAll returned no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunAll did not stop after cancellation")
	}
	if st := f.coord.Stats(); st.JobsPending != 0 || st.JobsInFlight != 0 {
		t.Errorf("cancelled campaign left jobs behind: %+v", st)
	}
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// drainBody asserts an HTTP status and returns the body.
func doJSON(t *testing.T, method, url string, in, out any) int {
	t.Helper()
	var body bytes.Buffer
	if in != nil {
		if err := json.NewEncoder(&body).Encode(in); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}
