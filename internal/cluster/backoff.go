package cluster

import (
	"math/rand/v2"
	"time"
)

// backoff produces capped, jittered exponential retry delays: attempt n
// waits in [exp/2, exp) where exp = min(cap, base·2ⁿ) — "equal jitter",
// enough spread that a worker fleet restarting against a briefly-down
// coordinator fans out instead of stampeding in lockstep, while keeping a
// floor so retries never collapse to zero. reset() on success restores the
// first-attempt delay.
type backoff struct {
	base time.Duration // first retry's nominal delay
	cap  time.Duration // ceiling for the nominal delay
	// rand returns a float in [0, 1); nil uses math/rand/v2 (tests inject a
	// deterministic source).
	rand    func() float64
	attempt int
}

// next returns the delay before the upcoming retry and advances the
// schedule.
func (b *backoff) next() time.Duration {
	exp := b.base << b.attempt
	// Guard the shift: past the cap (or on overflow) the nominal delay
	// stays pinned, so attempt stops advancing too.
	if exp <= 0 || exp > b.cap {
		exp = b.cap
	} else {
		b.attempt++
	}
	r := b.rand
	if r == nil {
		r = rand.Float64
	}
	half := exp / 2
	return half + time.Duration(r()*float64(half))
}

// reset restores the first-attempt delay; call after any success.
func (b *backoff) reset() { b.attempt = 0 }
