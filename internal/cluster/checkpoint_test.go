package cluster

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/snapshot"
	"galsim/internal/telemetry"
	"galsim/internal/wal"
)

// ckptSpec is the long-job spec the checkpoint tests share.
func ckptSpec() campaign.RunSpec {
	return campaign.RunSpec{Benchmark: "gcc", Machine: "gals", Instructions: 20_000}.Canonical()
}

// captureCheckpoint runs the spec's prefix for real and returns an encoded
// checkpoint at the given commit count — exactly what a worker posts.
func captureCheckpoint(t *testing.T, spec campaign.RunSpec, at uint64) []byte {
	t.Helper()
	var blob []byte
	_, err := campaign.ExecuteOpts(spec, campaign.ExecOpts{
		CheckpointEvery: at,
		OnSnapshot: func(sn *snapshot.Snapshot) {
			if sn.Committed == at {
				b, err := sn.EncodeBytes()
				if err != nil {
					t.Fatal(err)
				}
				blob = b
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatalf("no checkpoint captured at %d", at)
	}
	return blob
}

// TestCheckpointStateMachine pins the coordinator's checkpoint protocol with
// a fake clock: only the lease holder may checkpoint, an accepted checkpoint
// extends the lease, a re-lease after worker loss carries the checkpoint,
// and the resumed execution is byte-identical to a straight run.
func TestCheckpointStateMachine(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{LeaseTTL: time.Minute, MaxAttempts: 5, Now: clock.Now})
	spec := ckptSpec()
	straight, err := campaign.Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := c.submit([]campaign.RunSpec{spec}, "", telemetry.TraceContext{}, nil, campaign.PriorityBulk)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := c.tryLease("w1", 1, campaign.CacheStats{})
	if len(jobs) != 1 {
		t.Fatal("initial lease failed")
	}
	if len(jobs[0].Checkpoint) != 0 {
		t.Error("fresh job carries a checkpoint")
	}
	blob := captureCheckpoint(t, spec, 8_000)

	// A worker that does not hold the lease is not believed.
	if c.checkpoint(CheckpointRequest{WorkerID: "w2", JobID: jobs[0].ID, Committed: 8_000, Snapshot: blob}) {
		t.Error("checkpoint accepted from a non-holder")
	}
	// The holder checkpoints 59s in; the original lease would expire at 60s,
	// but an accepted checkpoint is proof of life and renews it.
	clock.Advance(59 * time.Second)
	if !c.checkpoint(CheckpointRequest{WorkerID: "w1", JobID: jobs[0].ID, Committed: 8_000, Snapshot: blob}) {
		t.Fatal("holder's checkpoint rejected")
	}
	clock.Advance(30 * time.Second) // 89s: past the original deadline, inside the renewed one
	if early, _ := c.tryLease("w2", 1, campaign.CacheStats{}); len(early) != 0 {
		t.Fatal("checkpointing job expired despite renewed lease")
	}
	// w1 goes silent; the renewed lease runs out and w2 inherits the job
	// with the checkpoint attached.
	clock.Advance(31 * time.Second)
	release, _ := c.tryLease("w2", 1, campaign.CacheStats{})
	if len(release) != 1 {
		t.Fatal("expired job not re-leased")
	}
	if !bytes.Equal(release[0].Checkpoint, blob) {
		t.Fatal("re-leased job does not carry the posted checkpoint")
	}
	// The zombie's late checkpoint is now rejected.
	if c.checkpoint(CheckpointRequest{WorkerID: "w1", JobID: jobs[0].ID, Committed: 16_000, Snapshot: blob}) {
		t.Error("zombie checkpoint accepted after re-lease")
	}
	// w2 resumes from the checkpoint; the result must be byte-identical to
	// the straight run.
	snap, err := snapshot.DecodeBytes(release[0].Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := campaign.ExecuteOpts(release[0].Spec, campaign.ExecOpts{Resume: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, resumed), mustJSON(t, straight)) {
		t.Error("resumed execution differs from straight run")
	}
	if acc := c.complete("w2", []JobResult{{JobID: release[0].ID, Stats: &resumed}}, campaign.CacheStats{}); acc != 1 {
		t.Fatalf("completion rejected (accepted=%d)", acc)
	}
	select {
	case <-camp.done:
	default:
		t.Fatal("campaign not settled")
	}
	if !bytes.Equal(mustJSON(t, camp.results[0]), mustJSON(t, straight)) {
		t.Error("campaign result differs from straight run")
	}
}

// TestCheckpointSurvivesCoordinatorCrash drives the durable path end to end:
// a checkpoint journaled through the WAL store must come back from Recover
// after a coordinator restart, re-leased jobs must carry it, and the resumed
// campaign must produce the stats the original RunAll would have.
func TestCheckpointSurvivesCoordinatorCrash(t *testing.T) {
	dir := t.TempDir()
	spec := ckptSpec()
	straight, err := campaign.Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	store1, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	c1 := NewCoordinator(Config{LeaseTTL: time.Minute, Now: clock.Now, Store: store1})
	ts := httptest.NewServer(c1.Handler())
	defer ts.Close()
	if _, err := c1.submit([]campaign.RunSpec{spec}, "req-ckpt", telemetry.TraceContext{}, nil, campaign.PriorityBulk); err != nil {
		t.Fatal(err)
	}
	jobs, _ := c1.tryLease("w1", 1, campaign.CacheStats{})
	if len(jobs) != 1 {
		t.Fatal("lease failed")
	}
	blob := captureCheckpoint(t, spec, 8_000)

	// A corrupt checkpoint is rejected at the door with a typed reason.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] ^= 0xFF
	var resp CheckpointResponse
	if code := doJSON(t, "POST", ts.URL+"/jobs/checkpoint",
		CheckpointRequest{WorkerID: "w1", JobID: jobs[0].ID, Committed: 8_000, Snapshot: bad}, nil); code != http.StatusBadRequest {
		t.Fatalf("corrupt checkpoint: HTTP %d, want 400", code)
	}
	// The good one lands over the real endpoint and reaches the journal.
	if code := doJSON(t, "POST", ts.URL+"/jobs/checkpoint",
		CheckpointRequest{WorkerID: "w1", JobID: jobs[0].ID, Committed: 8_000, Snapshot: blob}, &resp); code != 200 || !resp.Accepted {
		t.Fatalf("checkpoint post: HTTP %d accepted=%v", code, resp.Accepted)
	}

	// Crash: the coordinator process dies (we just abandon c1) and the store
	// is reopened from disk, exactly as a restarted galsim-fleet would.
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	recs, err := store2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d campaigns, want 1", len(recs))
	}
	if got := len(recs[0].Checkpoints); got != 1 {
		t.Fatalf("recovered %d checkpoints, want 1", got)
	}
	if !bytes.Equal(recs[0].Checkpoints[spec.Key()], blob) {
		t.Fatal("recovered checkpoint differs from the posted one")
	}

	c2 := NewCoordinator(Config{LeaseTTL: time.Minute, Now: clock.Now, Store: store2})
	resumedCamps, err := c2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumedCamps) != 1 {
		t.Fatalf("coordinator resumed %d campaigns, want 1", len(resumedCamps))
	}
	release, _ := c2.tryLease("w2", 1, campaign.CacheStats{})
	if len(release) != 1 || !bytes.Equal(release[0].Checkpoint, blob) {
		t.Fatal("re-created job does not carry the journaled checkpoint")
	}
	snap, err := snapshot.DecodeBytes(release[0].Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := campaign.ExecuteOpts(release[0].Spec, campaign.ExecOpts{Resume: snap})
	if err != nil {
		t.Fatal(err)
	}
	c2.complete("w2", []JobResult{{JobID: release[0].ID, Stats: &resumed}}, campaign.CacheStats{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stats, err := resumedCamps[0].Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, stats), mustJSON(t, []any{straight})) {
		t.Error("resumed campaign stats differ from the straight run")
	}
}

// TestCheckpointResumeAfterWorkerLoss is the live chaos case: a real worker
// checkpointing on cadence is killed mid-job, and its successor must log
// "resuming from checkpoint" and still deliver stats byte-identical to a
// serial run.
func TestCheckpointResumeAfterWorkerLoss(t *testing.T) {
	spec := campaign.RunSpec{Benchmark: "gcc", Machine: "gals", Instructions: 400_000}.Canonical()
	coord := NewCoordinator(Config{LeaseTTL: 500 * time.Millisecond, MaxAttempts: 25})
	var ckpts atomic.Int64
	inner := coord.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/jobs/checkpoint" {
			ckpts.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	newWorker := func(id string, logs *syncBuffer) (context.CancelFunc, *sync.WaitGroup) {
		w := &Worker{
			Coordinator:     ts.URL,
			ID:              id,
			Engine:          campaign.NewEngine(1),
			Slots:           1,
			PollInterval:    10 * time.Millisecond,
			CheckpointEvery: 10_000,
			Log:             slog.New(slog.NewTextHandler(logs, nil)),
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }() //nolint:errcheck
		return cancel, &wg
	}

	done := make(chan error, 1)
	resCh := make(chan []campaign.UnitResult, 1)
	go func() {
		res, err := campaign.RunSweepOn(context.Background(), coord,
			campaign.Sweep{Benchmarks: []string{"gcc"}, Machines: []string{"gals"}, Instructions: spec.Instructions})
		resCh <- res
		done <- err
	}()

	var logs1 syncBuffer
	cancel1, wg1 := newWorker("ck-w1", &logs1)
	// Kill the first worker once it has durably checkpointed some progress.
	waitFor(t, func() bool { return ckpts.Load() >= 2 }, "first checkpoints")
	cancel1()
	wg1.Wait()

	var logs2 syncBuffer
	cancel2, wg2 := newWorker("ck-w2", &logs2)
	defer func() { cancel2(); wg2.Wait() }()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("campaign did not finish after worker loss")
	}
	res := <-resCh
	st, err := campaign.Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := campaign.UnitResult{Key: spec.Key(), Spec: spec, Summary: campaign.Summarize(spec, st)}
	if !bytes.Equal(mustJSON(t, res), mustJSON(t, []campaign.UnitResult{want})) {
		t.Error("results after checkpointed worker loss differ from serial execution")
	}
	if !strings.Contains(logs2.String(), "resuming from checkpoint") {
		t.Error("successor worker did not resume from the checkpoint (no resume log line)")
	}
}

// TestJournalCheckpointLifecycle pins the store semantics in isolation:
// latest checkpoint wins, completion retires it, compaction keeps it for
// unfinished units, and unknown-type records from newer versions skip.
func TestJournalCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []campaign.RunSpec{
		{Benchmark: "gcc", Machine: "gals", Instructions: 10_000},
		{Benchmark: "swim", Machine: "gals", Instructions: 10_000},
	}
	for i := range specs {
		specs[i] = specs[i].Canonical()
	}
	if err := s.CampaignEnqueued("c1", "r1", campaign.PriorityBulk, specs); err != nil {
		t.Fatal(err)
	}
	k0, k1 := specs[0].Key(), specs[1].Key()
	if err := s.JobCheckpoint("c1", k0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.JobCheckpoint("c1", k0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.JobCheckpoint("c1", k1, []byte("other")); err != nil {
		t.Fatal(err)
	}
	// Completion retires unit 1's checkpoint; a late zombie checkpoint for a
	// done unit is dropped.
	st, err := campaign.Execute(specs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.JobCompleted("c1", k1, &st); err != nil {
		t.Fatal(err)
	}
	if err := s.JobCheckpoint("c1", k1, []byte("zombie")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d campaigns, want 1", len(recs))
	}
	rec := recs[0]
	if got := string(rec.Checkpoints[k0]); got != "v2" {
		t.Errorf("checkpoint for unit 0 = %q, want the latest (v2)", got)
	}
	if _, ok := rec.Checkpoints[k1]; ok {
		t.Error("completed unit still has a checkpoint after replay")
	}
	if len(rec.Completed) != 1 {
		t.Errorf("recovered %d completions, want 1", len(rec.Completed))
	}
}
