package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/machine"
)

// triMachine is the user-authored 3-domain partitioning the acceptance
// criteria run end to end: merged front end, merged int+fp execution
// cluster, memory system alone.
func triMachine() machine.Spec {
	return machine.Spec{
		Name: "tri",
		Domains: []machine.DomainSpec{
			{Name: "front"},
			{Name: "exec", DVFS: machine.PolicyDynamic},
			{Name: "memsys"},
		},
		Assign: map[string]string{
			"fetch": "front", "decode": "front",
			"int": "exec", "fp": "exec",
			"mem": "memsys",
		},
	}
}

// TestFleetRunsCustomMachine: a sweep over a user-defined 3-domain
// MachineSpec (crossed with the built-in base reference) executed by a
// 3-worker fleet is byte-identical to serial execution, and the canonical
// specs inside the jobs keep cache keys stable fleet-wide.
func TestFleetRunsCustomMachine(t *testing.T) {
	sweep := campaign.Sweep{
		Benchmarks:   []string{"gcc", "swim"},
		Machines:     []string{"base"},
		MachineSpecs: []machine.Spec{triMachine()},
		SlowdownGrid: []map[string]float64{nil, {"exec": 1.5}, {"memsys": 2}},
		Instructions: 5_000,
	}
	units, stats, serial := serialReference(t, sweep)

	f := startFleet(t, Config{LeaseTTL: 5 * time.Second, MaxAttempts: 3}, 3, 1)
	got, err := f.coord.RunAll(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stats {
		want := mustJSON(t, stats[i])
		have := mustJSON(t, got[i])
		if !bytes.Equal(want, have) {
			t.Fatalf("fleet unit %d (%s/%s) diverged from serial execution",
				i, units[i].MachineName(), units[i].WorkloadName())
		}
	}

	fleetResults, err := campaign.RunSweepOn(context.Background(), f.coord, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, fleetResults), mustJSON(t, serial)) {
		t.Fatal("aggregated fleet results differ from serial aggregation")
	}

	// The tri machine travels as a canonical inline spec; the base units
	// keep the classic name-keyed identity.
	seenTri, seenBase := false, false
	for _, r := range fleetResults {
		switch r.Summary.Machine {
		case "tri":
			seenTri = true
			if r.Spec.MachineSpec == nil || r.Spec.MachineSpec.Digest() != triMachine().Digest() {
				t.Errorf("tri unit lost its topology in flight: %+v", r.Spec)
			}
		case "base":
			seenBase = true
			if r.Spec.MachineSpec != nil || r.Spec.Machine != "base" {
				t.Errorf("base unit gained an inline spec: %+v", r.Spec)
			}
		}
	}
	if !seenTri || !seenBase {
		t.Fatalf("machine axis incomplete: tri=%v base=%v", seenTri, seenBase)
	}

	// Re-running the same sweep returns byte-identical results, and no
	// worker ever simulates one content address twice — the custom
	// machine's cache key is stable across dispatches. (A repeat job may
	// land on a *different* worker than the first run, so the fleet-wide
	// miss total can legitimately grow; per-worker misses are bounded by
	// the number of distinct keys.)
	again, err := campaign.RunSweepOn(context.Background(), f.coord, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, again), mustJSON(t, fleetResults)) {
		t.Fatal("repeat sweep returned different bytes")
	}
	distinct := map[string]bool{}
	for _, u := range units {
		distinct[u.Key()] = true
	}
	for i, e := range f.engines {
		if m := int(e.Stats().Misses); m > len(distinct) {
			t.Errorf("worker %d simulated %d units for %d distinct keys", i, m, len(distinct))
		}
	}
}
