package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"galsim/internal/campaign"
	"galsim/internal/telemetry"
)

// syncBuffer is an io.Writer safe for the worker goroutines' slog handlers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// expositionLine matches one Prometheus sample line: a metric name, an
// optional label set, and a float value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

// TestFleetMetricsScrape is the end-to-end observability contract: a
// coordinator plus three workers run a sweep over real HTTP, then a scrape
// of the coordinator's /metrics must render valid exposition text whose
// per-worker job counters sum to the sweep size, and the campaign's request
// ID must appear in both the coordinator's and the workers' logs.
func TestFleetMetricsScrape(t *testing.T) {
	coordLogs := &syncBuffer{}
	c := NewCoordinator(Config{
		Log: slog.New(slog.NewTextHandler(coordLogs, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	const workers = 3
	workerLogs := make([]*syncBuffer, workers)
	workerRegs := make([]*telemetry.Registry, workers)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		workerLogs[i] = &syncBuffer{}
		workerRegs[i] = telemetry.NewRegistry()
		w := &Worker{
			Coordinator:  ts.URL,
			ID:           fmt.Sprintf("w%d", i+1),
			Engine:       campaign.NewEngine(1),
			Slots:        1,
			PollInterval: 10 * time.Millisecond,
			Log:          slog.New(slog.NewTextHandler(workerLogs[i], nil)),
			Metrics:      workerRegs[i],
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // exits via ctx cancellation
		}()
	}
	defer wg.Wait()
	defer cancel()

	// Six unique specs: every unit is simulated exactly once fleet-wide.
	var specs []campaign.RunSpec
	for _, bench := range []string{"gcc", "swim", "perl"} {
		for _, machine := range []string{"base", "gals"} {
			specs = append(specs, campaign.RunSpec{
				Benchmark: bench, Machine: machine, Instructions: 4_000,
			})
		}
	}
	if _, err := c.RunAll(context.Background(), specs); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("scrape content type = %q", ct)
	}

	// Every line must be a comment or a syntactically valid sample, and the
	// per-worker completion counters must account for the whole sweep.
	var completed float64
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
			continue
		}
		if strings.HasPrefix(line, "galsim_fleet_jobs_completed_total{") {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			completed += v
		}
	}
	if completed != float64(len(specs)) {
		t.Errorf("sum of per-worker completions = %v, want %d\nscrape:\n%s", completed, len(specs), body)
	}
	for _, want := range []string{
		"galsim_fleet_workers 3",
		"galsim_fleet_jobs_pending 0",
		"galsim_fleet_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// The workers' own registries carry their execution metrics.
	var workerOK float64
	for i, reg := range workerRegs {
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, `galsim_worker_jobs_total{result="ok"}`) {
				v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
				if err != nil {
					t.Fatalf("worker %d: parsing %q: %v", i, line, err)
				}
				workerOK += v
			}
		}
	}
	if workerOK != float64(len(specs)) {
		t.Errorf("sum of worker ok-job counters = %v, want %d", workerOK, len(specs))
	}

	// The campaign's request ID threads coordinator -> job -> worker logs.
	m := regexp.MustCompile(`campaign enqueued.*request_id=([0-9a-f]+)`).
		FindStringSubmatch(coordLogs.String())
	if m == nil {
		t.Fatalf("no campaign request_id in coordinator logs:\n%s", coordLogs.String())
	}
	reqID := m[1]
	seen := 0
	for i, logs := range workerLogs {
		text := logs.String()
		if strings.Contains(text, "request_id="+reqID) {
			seen++
		} else if strings.Contains(text, "job start") {
			t.Errorf("worker %d ran jobs but never logged request_id=%s:\n%s", i, reqID, text)
		}
	}
	if seen == 0 {
		t.Errorf("request_id=%s appears in no worker log", reqID)
	}
}

// TestStatsUptimeAndLastSeen pins the injectable-clock surface of /stats:
// uptime counts from construction, and each worker's last_seen advances
// only when that worker contacts the coordinator.
func TestStatsUptimeAndLastSeen(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{Now: clock.Now})
	t0 := clock.Now()
	c.join(JoinRequest{WorkerID: "w1", Slots: 1})

	clock.Advance(90 * time.Second)
	st := c.Stats()
	if st.UptimeSeconds != 90 {
		t.Errorf("uptime = %v, want 90", st.UptimeSeconds)
	}
	if len(st.WorkerList) != 1 || !st.WorkerList[0].LastSeen.Equal(t0) {
		t.Errorf("worker list = %+v, want last_seen %v", st.WorkerList, t0)
	}

	// A lease attempt (even an empty one) is a heartbeat.
	c.tryLease("w1", 1, campaign.CacheStats{})
	t1 := clock.Now()
	clock.Advance(5 * time.Second)
	st = c.Stats()
	if st.UptimeSeconds != 95 {
		t.Errorf("uptime = %v, want 95", st.UptimeSeconds)
	}
	if !st.WorkerList[0].LastSeen.Equal(t1) {
		t.Errorf("last_seen = %v, want %v after lease", st.WorkerList[0].LastSeen, t1)
	}
}
