package clock

import (
	"fmt"

	"galsim/internal/simtime"
)

// State is the mutable portion of a Domain, captured for simulation
// snapshots. The identity fields (name, nominal period, nominal voltage)
// are rebuilt from configuration at restore and are not carried.
type State struct {
	Period   simtime.Duration `json:"period"`
	Phase    simtime.Time     `json:"phase"` // reference edge: initial phase, or the last retune instant
	Voltage  float64          `json:"voltage"`
	Slowdown float64          `json:"slowdown"`
}

// State captures the domain's current timing and voltage.
func (d *Domain) State() State {
	return State{Period: d.period, Phase: d.phase, Voltage: d.voltage, Slowdown: d.slow}
}

// RestoreState reinstates a previously captured State on a freshly built,
// not-yet-started domain. Unlike Retune it copies the captured period
// verbatim (no re-derivation), so a restored clock is bit-identical to the
// captured one.
func (d *Domain) RestoreState(st State) error {
	if d.started {
		return fmt.Errorf("clock: domain %q: RestoreState after start", d.name)
	}
	if st.Period <= 0 {
		return fmt.Errorf("clock: domain %q: restored period %v must be positive", d.name, st.Period)
	}
	// After a mid-run retune the phase is the retune instant, which may lie
	// beyond one period; only negative phases are impossible.
	if st.Phase < 0 {
		return fmt.Errorf("clock: domain %q: restored phase %v negative", d.name, st.Phase)
	}
	if st.Voltage <= 0 || st.Voltage > d.vnom {
		return fmt.Errorf("clock: domain %q: restored voltage %v outside (0, %v]", d.name, st.Voltage, d.vnom)
	}
	if st.Slowdown < 1 {
		return fmt.Errorf("clock: domain %q: restored slowdown %v < 1", d.name, st.Slowdown)
	}
	d.period = st.Period
	d.phase = st.Phase
	d.voltage = st.Voltage
	d.slow = st.Slowdown
	return nil
}
