package clock

import (
	"testing"
	"testing/quick"

	"galsim/internal/simtime"
)

const ns = simtime.Nanosecond

func TestEdgeArithmetic(t *testing.T) {
	d := NewDomain("test", 2*ns, ns/2, 1.65) // edges at 0.5, 2.5, 4.5, ...
	cases := []struct {
		t                simtime.Time
		atOrAfter, after simtime.Time
		cycle            int64
		secondEdge       simtime.Time
		descr            string
	}{
		{0, ns / 2, ns / 2, -1, 5 * ns / 2, "before first edge"},
		{ns / 2, ns / 2, 5 * ns / 2, 0, 9 * ns / 2, "exactly on edge 0"},
		{ns, 5 * ns / 2, 5 * ns / 2, 0, 9 * ns / 2, "mid cycle 0"},
		{5 * ns / 2, 5 * ns / 2, 9 * ns / 2, 1, 13 * ns / 2, "exactly on edge 1"},
		{3 * ns, 9 * ns / 2, 9 * ns / 2, 1, 13 * ns / 2, "mid cycle 1"},
	}
	for _, c := range cases {
		if got := d.EdgeAtOrAfter(c.t); got != c.atOrAfter {
			t.Errorf("%s: EdgeAtOrAfter(%v) = %v, want %v", c.descr, c.t, got, c.atOrAfter)
		}
		if got := d.EdgeAfter(c.t); got != c.after {
			t.Errorf("%s: EdgeAfter(%v) = %v, want %v", c.descr, c.t, got, c.after)
		}
		if got := d.CycleIndex(c.t); got != c.cycle {
			t.Errorf("%s: CycleIndex(%v) = %d, want %d", c.descr, c.t, got, c.cycle)
		}
		if got := d.NthEdgeAfter(c.t, 2); got != c.secondEdge {
			t.Errorf("%s: NthEdgeAfter(%v, 2) = %v, want %v", c.descr, c.t, got, c.secondEdge)
		}
	}
}

func TestEdgeTime(t *testing.T) {
	d := NewDomain("x", 1000, 250, 1.65)
	for k := int64(0); k < 5; k++ {
		want := simtime.Time(250 + 1000*k)
		if got := d.EdgeTime(k); got != want {
			t.Errorf("EdgeTime(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestFrequency(t *testing.T) {
	d := NewDomain("x", ns, 0, 1.65)
	if f := d.FrequencyGHz(); f != 1.0 {
		t.Errorf("1ns period => %v GHz, want 1", f)
	}
	d.SetSlowdown(1.25)
	if f := d.FrequencyGHz(); f != 0.8 {
		t.Errorf("1.25 slowdown => %v GHz, want 0.8", f)
	}
}

func TestSetSlowdown(t *testing.T) {
	d := NewDomain("x", ns, 0, 1.65)
	d.SetSlowdown(1.1)
	if d.Period() != 1100*simtime.Picosecond {
		t.Errorf("period = %v, want 1.1ns", d.Period())
	}
	d.SetSlowdown(3)
	if d.Period() != 3*ns {
		t.Errorf("period = %v, want 3ns", d.Period())
	}
	if d.Slowdown() != 3 {
		t.Errorf("Slowdown() = %v", d.Slowdown())
	}
}

func TestSlowdownPreservesPhaseInvariant(t *testing.T) {
	d := NewDomain("x", 2*ns, 3*ns/2, 1.65)
	d.SetSlowdown(1) // no-op but must keep phase < period
	if d.Phase() >= d.Period() {
		t.Error("phase >= period after SetSlowdown(1)")
	}
}

func TestVoltageAndEnergyScale(t *testing.T) {
	d := NewDomain("x", ns, 0, 2.0)
	if es := d.EnergyScale(); es != 1.0 {
		t.Errorf("nominal EnergyScale = %v", es)
	}
	d.SetVoltage(1.0)
	if es := d.EnergyScale(); es != 0.25 {
		t.Errorf("EnergyScale at V/2 = %v, want 0.25", es)
	}
}

func TestFrozenAfterStart(t *testing.T) {
	d := NewDomain("x", ns, 0, 1.65)
	d.MarkStarted()
	for name, fn := range map[string]func(){
		"SetSlowdown": func() { d.SetSlowdown(2) },
		"SetVoltage":  func() { d.SetVoltage(1.0) },
		"SetPhase":    func() { d.SetPhase(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after start did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero period":    func() { NewDomain("x", 0, 0, 1.65) },
		"negative phase": func() { NewDomain("x", ns, -1, 1.65) },
		"phase>=period":  func() { NewDomain("x", ns, ns, 1.65) },
		"zero voltage":   func() { NewDomain("x", ns, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Properties of edge arithmetic for arbitrary period/phase/instant.
func TestEdgeProperties(t *testing.T) {
	f := func(periodRaw uint16, phaseRaw uint16, tRaw uint32) bool {
		period := simtime.Duration(periodRaw%10000) + 1
		phase := simtime.Time(phaseRaw) % period
		at := simtime.Time(tRaw % 10_000_000)
		d := NewDomain("p", period, phase, 1.65)

		after := d.EdgeAfter(at)
		atOrAfter := d.EdgeAtOrAfter(at)
		// Both results are genuine edges.
		if (after-phase)%period != 0 || (atOrAfter-phase)%period != 0 {
			return false
		}
		// Ordering relations.
		if !(after > at && atOrAfter >= at) {
			return false
		}
		// Tightness: one period earlier would violate the constraint.
		if after-period > at {
			return false
		}
		if atOrAfter-period >= at && atOrAfter >= period+phase {
			return false
		}
		// NthEdgeAfter consistency.
		if d.NthEdgeAfter(at, 1) != after || d.NthEdgeAfter(at, 3) != after+2*period {
			return false
		}
		// CycleIndex consistency: edge of the returned cycle is <= at.
		if ci := d.CycleIndex(at); ci >= 0 {
			if d.EdgeTime(ci) > at || d.EdgeTime(ci+1) <= at {
				return false
			}
		} else if at >= phase {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
