// Package clocktree reproduces the paper's §2 motivation material: Table 1's
// survey of global clock skew across four CMOS process generations, and a
// small Monte-Carlo model of process-variation-induced skew in a buffered
// clock distribution tree (after the argument of Restle et al. that skew
// arises mainly from variation in the buffer tree).
package clocktree

import (
	"fmt"
	"math"
	"math/rand"
)

// TrendRow is one processor from the paper's Table 1.
type TrendRow struct {
	Design      string
	TechnologyM float64 // feature size in micrometers
	Year        int
	Devices     float64 // transistor count
	CycleNS     float64 // cycle time in nanoseconds
	SkewPS      float64 // global clock skew in picoseconds
	Remarks     string
}

// SkewFraction returns skew as a fraction of the cycle time — the quantity
// whose growth motivates GALS design.
func (r TrendRow) SkewFraction() float64 {
	return r.SkewPS / (r.CycleNS * 1000)
}

// Table1 is the published data reproduced verbatim from the paper.
func Table1() []TrendRow {
	return []TrendRow{
		{"Alpha 21064", 0.8, 1992, 1.6e6, 5.0, 200, "Single line of drivers for clock grid"},
		{"Alpha 21164", 0.5, 1995, 9.3e6, 3.3, 80, "Two lines of drivers for clock grid"},
		{"Alpha 21264", 0.35, 1998, 15.2e6, 1.7, 65, "16 distributed lines of drivers"},
		{"Itanium (with active deskewing)", 0.18, 2001, 25.4e6, 1.25, 28, "32 active deskewing circuits"},
		{"Itanium (without active deskewing)", 0.18, 2001, 25.4e6, 1.25, 110, "Projected skew without deskewing"},
	}
}

// TreeConfig parameterizes the skew estimator: a balanced H-tree of buffers
// from the PLL to the leaf loads.
type TreeConfig struct {
	Depth        int     // buffer levels from root to leaf
	BufferDelay  float64 // nominal per-buffer delay (ps)
	SigmaFrac    float64 // per-buffer delay standard deviation, fraction of nominal
	WireDelay    float64 // per-level wire delay (ps), matched across branches
	WireSigma    float64 // wire delay mismatch sigma (ps)
	MonteCarloN  int     // number of random tree instances
	LeavesPerSim int     // leaf count sampled per instance (2^Depth capped)
}

// DefaultTree is sized after a late-1990s global distribution: 8 buffer
// levels at ~50 ps each with 4% sigma.
func DefaultTree() TreeConfig {
	return TreeConfig{
		Depth:        8,
		BufferDelay:  50,
		SigmaFrac:    0.04,
		WireDelay:    30,
		WireSigma:    1.5,
		MonteCarloN:  200,
		LeavesPerSim: 256,
	}
}

// Validate reports an error for malformed parameters.
func (c TreeConfig) Validate() error {
	switch {
	case c.Depth < 1 || c.Depth > 24:
		return fmt.Errorf("clocktree: depth %d outside [1,24]", c.Depth)
	case c.BufferDelay <= 0 || c.WireDelay < 0:
		return fmt.Errorf("clocktree: non-positive delays")
	case c.SigmaFrac < 0 || c.SigmaFrac > 1:
		return fmt.Errorf("clocktree: sigma fraction %v outside [0,1]", c.SigmaFrac)
	case c.MonteCarloN < 1 || c.LeavesPerSim < 2:
		return fmt.Errorf("clocktree: insufficient sampling")
	}
	return nil
}

// Estimate runs the Monte-Carlo model and returns the mean and worst global
// skew (max leaf arrival − min leaf arrival) in picoseconds.
func Estimate(cfg TreeConfig, seed int64) (meanSkewPS, worstSkewPS float64, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	leaves := cfg.LeavesPerSim
	if full := 1 << cfg.Depth; leaves > full {
		leaves = full
	}
	var sum, worst float64
	for n := 0; n < cfg.MonteCarloN; n++ {
		minA, maxA := math.Inf(1), math.Inf(-1)
		for l := 0; l < leaves; l++ {
			// Each leaf's arrival is the sum of Depth independent buffer and
			// wire delays along its root-to-leaf path. Sharing of upper
			// levels between leaves is ignored, which slightly overestimates
			// skew; the paper's argument needs only the trend.
			arrival := 0.0
			for d := 0; d < cfg.Depth; d++ {
				arrival += cfg.BufferDelay * (1 + cfg.SigmaFrac*rng.NormFloat64())
				arrival += cfg.WireDelay + cfg.WireSigma*rng.NormFloat64()
			}
			minA = math.Min(minA, arrival)
			maxA = math.Max(maxA, arrival)
		}
		skew := maxA - minA
		sum += skew
		worst = math.Max(worst, skew)
	}
	return sum / float64(cfg.MonteCarloN), worst, nil
}

// ScaleForGeneration derives a TreeConfig for a given feature size relative
// to a 0.35 µm baseline: smaller features mean more buffer levels (bigger
// dies in gate pitches) and a larger variation fraction.
func ScaleForGeneration(techUM float64) TreeConfig {
	cfg := DefaultTree()
	scale := 0.35 / techUM
	cfg.Depth = 8 + int(math.Round(math.Log2(scale)*2))
	if cfg.Depth < 4 {
		cfg.Depth = 4
	}
	cfg.SigmaFrac = 0.04 * math.Sqrt(scale)
	cfg.BufferDelay = 50 / scale
	cfg.WireDelay = 30 // interconnect does not scale with the transistors
	return cfg
}
