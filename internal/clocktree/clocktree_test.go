package clocktree

import "testing"

func TestTable1Data(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// Published values, verbatim from the paper.
	if rows[0].Design != "Alpha 21064" || rows[0].SkewPS != 200 || rows[0].CycleNS != 5.0 {
		t.Errorf("21064 row wrong: %+v", rows[0])
	}
	if rows[3].SkewPS != 28 {
		t.Errorf("deskewed Itanium skew = %v, want 28", rows[3].SkewPS)
	}
}

func TestSkewFractionGrowsAcrossGenerations(t *testing.T) {
	rows := Table1()
	// The undeskewed trend: 21064 (200/5000=4%) -> Itanium projected
	// (110/1250=8.8%) — skew eats a growing share of the cycle.
	first := rows[0].SkewFraction()
	lastRaw := rows[4].SkewFraction()
	if lastRaw <= first {
		t.Errorf("skew fraction did not grow: %.3f -> %.3f", first, lastRaw)
	}
	if lastRaw < 0.085 || lastRaw > 0.09 {
		t.Errorf("projected Itanium skew fraction = %.4f, want ~0.088 (almost 10%% of cycle)", lastRaw)
	}
}

func TestEstimateSane(t *testing.T) {
	mean, worst, err := Estimate(DefaultTree(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || worst < mean {
		t.Errorf("mean %v, worst %v", mean, worst)
	}
	// 8 levels at 50ps with 4% sigma: skew should be tens of ps.
	if mean < 5 || mean > 200 {
		t.Errorf("mean skew %v ps implausible", mean)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	m1, w1, _ := Estimate(DefaultTree(), 7)
	m2, w2, _ := Estimate(DefaultTree(), 7)
	if m1 != m2 || w1 != w2 {
		t.Error("estimate not deterministic for fixed seed")
	}
}

func TestMoreVariationMoreSkew(t *testing.T) {
	low := DefaultTree()
	low.SigmaFrac = 0.01
	high := DefaultTree()
	high.SigmaFrac = 0.08
	ml, _, _ := Estimate(low, 3)
	mh, _, _ := Estimate(high, 3)
	if mh <= ml {
		t.Errorf("higher buffer sigma did not raise skew: %.1f vs %.1f", mh, ml)
	}
}

func TestScaleForGeneration(t *testing.T) {
	// Smaller technology: deeper trees, more variation.
	old := ScaleForGeneration(0.8)
	next := ScaleForGeneration(0.18)
	if next.Depth <= old.Depth {
		t.Errorf("depth did not grow: %d -> %d", old.Depth, next.Depth)
	}
	if next.SigmaFrac <= old.SigmaFrac {
		t.Error("sigma did not grow with scaling")
	}
	// The paper's §2 argument (and Table 1's data): absolute skew may even
	// fall, but as a FRACTION of the shrinking cycle time it grows. The
	// 0.8µm part cycled at 5ns, the 0.18µm part at 1.25ns.
	mo, _, _ := Estimate(old, 5)
	mn, _, _ := Estimate(next, 5)
	if mn/1250 <= mo/5000 {
		t.Errorf("modeled skew fraction did not worsen across generations: %.4f -> %.4f",
			mo/5000, mn/1250)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultTree()
	bad.Depth = 0
	if _, _, err := Estimate(bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
	bad = DefaultTree()
	bad.SigmaFrac = 2
	if _, _, err := Estimate(bad, 1); err == nil {
		t.Error("invalid sigma accepted")
	}
}
