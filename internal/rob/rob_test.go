package rob

import (
	"testing"

	"galsim/internal/isa"
)

func mk(seq isa.Seq, wrong bool) *isa.Instr {
	in := isa.NewInstr(seq, 0, isa.ClassIntALU)
	in.WrongPath = wrong
	return in
}

func TestPushHeadPop(t *testing.T) {
	r := New(4)
	if !r.Empty() {
		t.Error("new ROB not empty")
	}
	a, b := mk(1, false), mk(2, false)
	r.Push(a)
	r.Push(b)
	if r.Head() != a {
		t.Error("head is not oldest")
	}
	if got := r.PopHead(); got != a {
		t.Error("PopHead returned wrong instruction")
	}
	if r.Head() != b || r.Len() != 1 {
		t.Error("state after pop wrong")
	}
}

func TestFullAndOverflow(t *testing.T) {
	r := New(2)
	r.Push(mk(1, false))
	r.Push(mk(2, false))
	if !r.Full() {
		t.Error("Full() = false")
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	r.Push(mk(3, false))
}

func TestProgramOrderEnforced(t *testing.T) {
	r := New(4)
	r.Push(mk(5, false))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order push did not panic")
		}
	}()
	r.Push(mk(3, false))
}

func TestSquashTailUndoesInReverseOrder(t *testing.T) {
	r := New(8)
	for i := 1; i <= 6; i++ {
		r.Push(mk(isa.Seq(i), i > 3))
	}
	var undone []isa.Seq
	n := r.SquashTail(
		func(in *isa.Instr) bool { return in.WrongPath },
		func(in *isa.Instr) { undone = append(undone, in.Seq) },
	)
	if n != 3 || r.Len() != 3 {
		t.Fatalf("squashed %d, len %d", n, r.Len())
	}
	want := []isa.Seq{6, 5, 4}
	for i := range want {
		if undone[i] != want[i] {
			t.Errorf("undo order %v, want %v", undone, want)
		}
	}
	if r.Head().Seq != 1 {
		t.Error("head disturbed by squash")
	}
}

func TestSquashNonContiguousPanics(t *testing.T) {
	r := New(8)
	r.Push(mk(1, true)) // doomed but not in the tail suffix
	r.Push(mk(2, false))
	defer func() {
		if recover() == nil {
			t.Error("non-contiguous squash did not panic")
		}
	}()
	r.SquashTail(func(in *isa.Instr) bool { return in.WrongPath }, func(*isa.Instr) {})
}

func TestPopEmptyPanics(t *testing.T) {
	r := New(2)
	defer func() {
		if recover() == nil {
			t.Error("PopHead on empty did not panic")
		}
	}()
	r.PopHead()
}

func TestWalkOrder(t *testing.T) {
	r := New(8)
	for i := 1; i <= 5; i++ {
		r.Push(mk(isa.Seq(i), false))
	}
	var seen []isa.Seq
	r.Walk(func(in *isa.Instr) { seen = append(seen, in.Seq) })
	for i := range seen {
		if seen[i] != isa.Seq(i+1) {
			t.Fatalf("walk order %v", seen)
		}
	}
}

func TestStats(t *testing.T) {
	r := New(8)
	r.Push(mk(1, false))
	r.Push(mk(2, true))
	r.Tick() // occ 2
	r.SquashTail(func(in *isa.Instr) bool { return in.WrongPath }, func(*isa.Instr) {})
	r.PopHead()
	r.Tick() // occ 0
	st := r.Stats()
	if st.Pushes != 2 || st.Commits != 1 || st.Squashes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgOccupancy != 1 {
		t.Errorf("avg occupancy = %v, want 1", st.AvgOccupancy)
	}
}

func TestConstructorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	New(0)
}
