package rob

import (
	"fmt"

	"galsim/internal/isa"
)

// State is the ROB's snapshot form: in-flight instructions as caller-
// assigned record indices (oldest first) plus the raw activity counters.
type State struct {
	Entries  []int  `json:"entries,omitempty"`
	Pushes   uint64 `json:"pushes"`
	Commits  uint64 `json:"commits"`
	Squashes uint64 `json:"squashes"`
	OccSum   uint64 `json:"occ_sum"`
	OccTicks uint64 `json:"occ_ticks"`
}

// CaptureState snapshots the buffer, mapping each in-flight record through
// index.
func (r *ROB) CaptureState(index func(*isa.Instr) int) State {
	st := State{Pushes: r.pushes, Commits: r.commits, Squashes: r.squashes,
		OccSum: r.occSum, OccTicks: r.occTicks}
	for i := 0; i < r.n; i++ {
		st.Entries = append(st.Entries, index(r.buf[r.slot(i)]))
	}
	return st
}

// RestoreState reinstates a captured state into a fresh, empty buffer of
// the same capacity. Entries bypass Push so counters (and each record's
// historical ROBIndex, carried on the record itself) stay exactly as
// captured.
func (r *ROB) RestoreState(st State, record func(int) *isa.Instr) error {
	if r.n != 0 {
		return fmt.Errorf("rob: restore into non-empty buffer (%d entries)", r.n)
	}
	if len(st.Entries) > len(r.buf) {
		return fmt.Errorf("rob: %d restored entries exceed capacity %d", len(st.Entries), len(r.buf))
	}
	r.head = 0
	for i, idx := range st.Entries {
		in := record(idx)
		if in == nil {
			return fmt.Errorf("rob: restored entry %d references unknown record %d", i, idx)
		}
		r.buf[i] = in
	}
	r.n = len(st.Entries)
	r.pushes = st.Pushes
	r.commits = st.Commits
	r.squashes = st.Squashes
	r.occSum = st.OccSum
	r.occTicks = st.OccTicks
	return nil
}
