// Package rob implements the reorder buffer: the in-order backbone of the
// out-of-order core. Instructions enter at rename in program order, record
// their completion out of order, and leave either by in-order commit from
// the head or by a squash that discards every wrong-path entry from the
// tail while undoing its rename mapping.
package rob

import (
	"fmt"

	"galsim/internal/isa"
)

// ROB is a bounded in-order buffer of in-flight instructions, stored as a
// fixed-capacity ring so that a commit advances the head pointer instead of
// shifting the buffer — hardware ROBs are circular buffers for the same
// reason.
type ROB struct {
	buf  []*isa.Instr // len(buf) is the capacity
	head int          // index of the oldest entry
	n    int          // occupancy

	pushes   uint64
	commits  uint64
	squashes uint64
	occSum   uint64
	occTicks uint64
}

// New builds a reorder buffer with the given capacity.
func New(capacity int) *ROB {
	if capacity <= 0 {
		panic(fmt.Sprintf("rob: capacity %d must be positive", capacity))
	}
	return &ROB{buf: make([]*isa.Instr, capacity)}
}

// slot maps a logical position (0 = head) to a buffer index.
func (r *ROB) slot(i int) int {
	i += r.head
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

// Len returns the number of in-flight instructions.
func (r *ROB) Len() int { return r.n }

// Cap returns the capacity.
func (r *ROB) Cap() int { return len(r.buf) }

// Full reports whether the buffer has no free entry.
func (r *ROB) Full() bool { return r.n >= len(r.buf) }

// Empty reports whether no instruction is in flight.
func (r *ROB) Empty() bool { return r.n == 0 }

// Push appends an instruction in program order; it panics when full and when
// program order would be violated.
func (r *ROB) Push(in *isa.Instr) {
	if r.Full() {
		panic("rob: overflow")
	}
	if r.n > 0 {
		if tail := r.buf[r.slot(r.n-1)]; tail.Seq >= in.Seq {
			panic(fmt.Sprintf("rob: out-of-order push %d after %d", in.Seq, tail.Seq))
		}
	}
	in.ROBIndex = r.n
	r.buf[r.slot(r.n)] = in
	r.n++
	r.pushes++
}

// Head returns the oldest in-flight instruction, or nil when empty.
func (r *ROB) Head() *isa.Instr {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// PopHead removes the oldest instruction (its commit). It panics when empty.
func (r *ROB) PopHead() *isa.Instr {
	if r.n == 0 {
		panic("rob: PopHead on empty buffer")
	}
	in := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	r.commits++
	return in
}

// SquashTail removes doomed entries from the tail, youngest first, invoking
// undo on each in reverse program order (the order rename recovery
// requires). The doomed region must be a contiguous tail suffix — a
// consequence of a single unresolved misprediction at a time — and this is
// checked. Returns the number squashed.
func (r *ROB) SquashTail(doomed func(*isa.Instr) bool, undo func(*isa.Instr)) int {
	cut := r.n
	for cut > 0 && doomed(r.buf[r.slot(cut-1)]) {
		cut--
	}
	for i := 0; i < cut; i++ {
		if in := r.buf[r.slot(i)]; doomed(in) {
			panic(fmt.Sprintf("rob: doomed entry %d not in tail suffix", in.Seq))
		}
	}
	n := 0
	for i := r.n - 1; i >= cut; i-- {
		s := r.slot(i)
		undo(r.buf[s])
		r.buf[s] = nil
		n++
	}
	r.n = cut
	r.squashes += uint64(n)
	return n
}

// Walk calls fn on every in-flight instruction from oldest to youngest.
func (r *ROB) Walk(fn func(*isa.Instr)) {
	for i := 0; i < r.n; i++ {
		fn(r.buf[r.slot(i)])
	}
}

// Tick records an occupancy sample; call once per cycle of the owning
// domain.
func (r *ROB) Tick() {
	r.occTicks++
	r.occSum += uint64(r.n)
}

// Stats reports ROB activity.
type Stats struct {
	Pushes       uint64
	Commits      uint64
	Squashes     uint64
	AvgOccupancy float64
}

// Stats returns a snapshot of the counters.
func (r *ROB) Stats() Stats {
	s := Stats{Pushes: r.pushes, Commits: r.commits, Squashes: r.squashes}
	if r.occTicks > 0 {
		s.AvgOccupancy = float64(r.occSum) / float64(r.occTicks)
	}
	return s
}
