// Package rob implements the reorder buffer: the in-order backbone of the
// out-of-order core. Instructions enter at rename in program order, record
// their completion out of order, and leave either by in-order commit from
// the head or by a squash that discards every wrong-path entry from the
// tail while undoing its rename mapping.
package rob

import (
	"fmt"

	"galsim/internal/isa"
)

// ROB is a bounded in-order buffer of in-flight instructions.
type ROB struct {
	cap     int
	entries []*isa.Instr // index 0 is the head (oldest)

	pushes   uint64
	commits  uint64
	squashes uint64
	occSum   uint64
	occTicks uint64
}

// New builds a reorder buffer with the given capacity.
func New(capacity int) *ROB {
	if capacity <= 0 {
		panic(fmt.Sprintf("rob: capacity %d must be positive", capacity))
	}
	return &ROB{cap: capacity}
}

// Len returns the number of in-flight instructions.
func (r *ROB) Len() int { return len(r.entries) }

// Cap returns the capacity.
func (r *ROB) Cap() int { return r.cap }

// Full reports whether the buffer has no free entry.
func (r *ROB) Full() bool { return len(r.entries) >= r.cap }

// Empty reports whether no instruction is in flight.
func (r *ROB) Empty() bool { return len(r.entries) == 0 }

// Push appends an instruction in program order; it panics when full and when
// program order would be violated.
func (r *ROB) Push(in *isa.Instr) {
	if r.Full() {
		panic("rob: overflow")
	}
	if n := len(r.entries); n > 0 && r.entries[n-1].Seq >= in.Seq {
		panic(fmt.Sprintf("rob: out-of-order push %d after %d", in.Seq, r.entries[n-1].Seq))
	}
	in.ROBIndex = len(r.entries)
	r.entries = append(r.entries, in)
	r.pushes++
}

// Head returns the oldest in-flight instruction, or nil when empty.
func (r *ROB) Head() *isa.Instr {
	if len(r.entries) == 0 {
		return nil
	}
	return r.entries[0]
}

// PopHead removes the oldest instruction (its commit). It panics when empty.
func (r *ROB) PopHead() *isa.Instr {
	if len(r.entries) == 0 {
		panic("rob: PopHead on empty buffer")
	}
	in := r.entries[0]
	copy(r.entries, r.entries[1:])
	r.entries[len(r.entries)-1] = nil
	r.entries = r.entries[:len(r.entries)-1]
	r.commits++
	return in
}

// SquashTail removes doomed entries from the tail, youngest first, invoking
// undo on each in reverse program order (the order rename recovery
// requires). The doomed region must be a contiguous tail suffix — a
// consequence of a single unresolved misprediction at a time — and this is
// checked. Returns the number squashed.
func (r *ROB) SquashTail(doomed func(*isa.Instr) bool, undo func(*isa.Instr)) int {
	cut := len(r.entries)
	for cut > 0 && doomed(r.entries[cut-1]) {
		cut--
	}
	for i := 0; i < cut; i++ {
		if doomed(r.entries[i]) {
			panic(fmt.Sprintf("rob: doomed entry %d not in tail suffix", r.entries[i].Seq))
		}
	}
	n := 0
	for i := len(r.entries) - 1; i >= cut; i-- {
		undo(r.entries[i])
		r.entries[i] = nil
		n++
	}
	r.entries = r.entries[:cut]
	r.squashes += uint64(n)
	return n
}

// Walk calls fn on every in-flight instruction from oldest to youngest.
func (r *ROB) Walk(fn func(*isa.Instr)) {
	for _, in := range r.entries {
		fn(in)
	}
}

// Tick records an occupancy sample; call once per cycle of the owning
// domain.
func (r *ROB) Tick() {
	r.occTicks++
	r.occSum += uint64(len(r.entries))
}

// Stats reports ROB activity.
type Stats struct {
	Pushes       uint64
	Commits      uint64
	Squashes     uint64
	AvgOccupancy float64
}

// Stats returns a snapshot of the counters.
func (r *ROB) Stats() Stats {
	s := Stats{Pushes: r.pushes, Commits: r.commits, Squashes: r.squashes}
	if r.occTicks > 0 {
		s.AvgOccupancy = float64(r.occSum) / float64(r.occTicks)
	}
	return s
}
