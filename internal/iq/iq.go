// Package iq implements the issue queues (instruction windows) of the
// out-of-order core: bounded buffers from which ready instructions are
// selected oldest-first for execution. The paper's machine has three — a
// 20-entry integer queue, a 16-entry floating-point queue and a 16-entry
// memory queue (Table 3) — each co-located with its functional units in one
// clock domain of the GALS machine so dependent instructions in the same
// queue can issue back-to-back.
package iq

import (
	"fmt"

	"galsim/internal/isa"
)

// ReadyFunc reports whether a physical register's value is available to this
// queue's clock domain (operand readiness is per-domain in a GALS machine: a
// result crosses domains through a wakeup FIFO). A negative index is an
// absent operand and always ready.
type ReadyFunc func(phys int) bool

// Queue is one issue window.
type Queue struct {
	name    string
	cap     int
	entries []*isa.Instr

	inserts  uint64
	issues   uint64
	flushes  uint64
	occSum   uint64
	occTicks uint64
}

// New builds an issue queue with the given capacity. The backing array is
// sized once here; no later operation allocates.
func New(name string, capacity int) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("iq: queue %q capacity %d must be positive", name, capacity))
	}
	return &Queue{name: name, cap: capacity, entries: make([]*isa.Instr, 0, capacity)}
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.entries) }

// Cap returns the capacity.
func (q *Queue) Cap() int { return q.cap }

// Full reports whether the queue has no free entry.
func (q *Queue) Full() bool { return len(q.entries) >= q.cap }

// Insert adds an instruction; it panics when full (dispatch must check).
func (q *Queue) Insert(in *isa.Instr) {
	if q.Full() {
		panic(fmt.Sprintf("iq: queue %q overflow", q.name))
	}
	q.entries = append(q.entries, in)
	q.inserts++
}

// SelectReady removes up to width instructions whose operands are all
// ready, oldest (lowest sequence number) first, appending them to dst and
// returning the extended slice. Entries are kept in insertion order, which
// is program order for a single dispatcher, so a simple scan yields
// oldest-first selection. Passing a reused scratch slice as dst keeps the
// per-cycle select allocation-free; nil is also accepted.
func (q *Queue) SelectReady(dst []*isa.Instr, width int, ready ReadyFunc) []*isa.Instr {
	if width <= 0 {
		return dst
	}
	taken := 0
	kept := q.entries[:0]
	for _, in := range q.entries {
		if taken < width && ready(in.PhysSrc[0]) && ready(in.PhysSrc[1]) {
			dst = append(dst, in)
			taken++
			continue
		}
		kept = append(kept, in)
	}
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	q.issues += uint64(taken)
	return dst
}

// Scan visits entries oldest-first, removing those for which take reports
// true, up to width of them, appending them to dst and returning the
// extended slice. The callback sees every entry in program order (including
// ones it declines), so it can maintain ordering state such as "an older
// store has not yet issued" — the hook the memory cluster's disambiguation
// policies use.
func (q *Queue) Scan(dst []*isa.Instr, width int, take func(*isa.Instr) bool) []*isa.Instr {
	if width <= 0 {
		return dst
	}
	taken := 0
	kept := q.entries[:0]
	for _, in := range q.entries {
		if taken < width && take(in) {
			dst = append(dst, in)
			taken++
			continue
		}
		kept = append(kept, in)
	}
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	q.issues += uint64(taken)
	return dst
}

// FlushWrongPath removes entries matching the squash predicate and returns
// how many were removed.
func (q *Queue) FlushWrongPath(doomed func(*isa.Instr) bool) int {
	kept := q.entries[:0]
	n := 0
	for _, in := range q.entries {
		if doomed(in) {
			n++
		} else {
			kept = append(kept, in)
		}
	}
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	q.flushes += uint64(n)
	return n
}

// Tick records an occupancy sample; call once per clock cycle of the owning
// domain.
func (q *Queue) Tick() {
	q.occTicks++
	q.occSum += uint64(len(q.entries))
}

// Stats reports the queue's activity counters.
type Stats struct {
	Inserts uint64
	Issues  uint64
	Flushes uint64
	// AvgOccupancy is the mean occupancy over sampled cycles.
	AvgOccupancy float64
}

// OccupancyCounters returns the raw occupancy accumulators (sum of
// occupancy over sampled ticks, and the tick count); interval controllers
// difference successive snapshots.
func (q *Queue) OccupancyCounters() (occSum, ticks uint64) {
	return q.occSum, q.occTicks
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() Stats {
	s := Stats{Inserts: q.inserts, Issues: q.issues, Flushes: q.flushes}
	if q.occTicks > 0 {
		s.AvgOccupancy = float64(q.occSum) / float64(q.occTicks)
	}
	return s
}
