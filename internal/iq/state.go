package iq

import (
	"fmt"

	"galsim/internal/isa"
)

// State is an issue queue's snapshot form: waiting instructions as caller-
// assigned record indices in insertion (program) order plus the raw
// counters, including the occupancy accumulators the DVFS controller and
// the interval sampler difference.
type State struct {
	Entries  []int  `json:"entries,omitempty"`
	Inserts  uint64 `json:"inserts"`
	Issues   uint64 `json:"issues"`
	Flushes  uint64 `json:"flushes"`
	OccSum   uint64 `json:"occ_sum"`
	OccTicks uint64 `json:"occ_ticks"`
}

// CaptureState snapshots the queue, mapping each waiting record through
// index.
func (q *Queue) CaptureState(index func(*isa.Instr) int) State {
	st := State{Inserts: q.inserts, Issues: q.issues, Flushes: q.flushes,
		OccSum: q.occSum, OccTicks: q.occTicks}
	for _, in := range q.entries {
		st.Entries = append(st.Entries, index(in))
	}
	return st
}

// RestoreState reinstates a captured state into a fresh, empty queue of the
// same capacity, bypassing Insert so the counters stay exactly as captured.
func (q *Queue) RestoreState(st State, record func(int) *isa.Instr) error {
	if len(q.entries) != 0 {
		return fmt.Errorf("iq: queue %q: restore into non-empty queue (%d entries)", q.name, len(q.entries))
	}
	if len(st.Entries) > q.cap {
		return fmt.Errorf("iq: queue %q: %d restored entries exceed capacity %d", q.name, len(st.Entries), q.cap)
	}
	for i, idx := range st.Entries {
		in := record(idx)
		if in == nil {
			return fmt.Errorf("iq: queue %q: restored entry %d references unknown record %d", q.name, i, idx)
		}
		q.entries = append(q.entries, in)
	}
	q.inserts = st.Inserts
	q.issues = st.Issues
	q.flushes = st.Flushes
	q.occSum = st.OccSum
	q.occTicks = st.OccTicks
	return nil
}
