package iq

import (
	"testing"

	"galsim/internal/isa"
)

func mk(seq isa.Seq, srcs ...int) *isa.Instr {
	in := isa.NewInstr(seq, 0, isa.ClassIntALU)
	for i, s := range srcs {
		in.PhysSrc[i] = s
	}
	return in
}

func allReady(int) bool { return true }

func TestInsertSelect(t *testing.T) {
	q := New("int", 4)
	q.Insert(mk(1))
	q.Insert(mk(2))
	got := q.SelectReady(nil, 4, allReady)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("selected %v", got)
	}
	if q.Len() != 0 {
		t.Errorf("len = %d after draining", q.Len())
	}
}

func TestOldestFirstSelection(t *testing.T) {
	q := New("int", 8)
	for i := 1; i <= 6; i++ {
		q.Insert(mk(isa.Seq(i)))
	}
	got := q.SelectReady(nil, 2, allReady)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("width-limited selection picked %v, want oldest two", got)
	}
	if q.Len() != 4 {
		t.Errorf("len = %d, want 4", q.Len())
	}
}

func TestReadinessGating(t *testing.T) {
	q := New("int", 8)
	q.Insert(mk(1, 10))     // waits on phys 10
	q.Insert(mk(2, -1, -1)) // no operands: always ready
	q.Insert(mk(3, 11))     // waits on phys 11
	ready := func(p int) bool { return p < 0 || p == 11 }
	got := q.SelectReady(nil, 4, ready)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Errorf("selected %v, want seqs 2,3", got)
	}
	// Entry 1 remains, preserving order for later selection.
	got = q.SelectReady(nil, 4, allReady)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("leftover = %v", got)
	}
}

func TestBothOperandsMustBeReady(t *testing.T) {
	q := New("int", 4)
	q.Insert(mk(1, 5, 6))
	ready := func(p int) bool { return p != 6 }
	if got := q.SelectReady(nil, 4, ready); len(got) != 0 {
		t.Errorf("selected %v with an unready operand", got)
	}
}

func TestOverflowPanics(t *testing.T) {
	q := New("int", 1)
	q.Insert(mk(1))
	if !q.Full() {
		t.Error("Full() = false")
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	q.Insert(mk(2))
}

func TestFlushWrongPath(t *testing.T) {
	q := New("int", 8)
	for i := 1; i <= 6; i++ {
		in := mk(isa.Seq(i))
		in.WrongPath = i > 3
		q.Insert(in)
	}
	n := q.FlushWrongPath(func(in *isa.Instr) bool { return in.WrongPath })
	if n != 3 || q.Len() != 3 {
		t.Errorf("flushed %d, len %d", n, q.Len())
	}
	got := q.SelectReady(nil, 8, allReady)
	for i, in := range got {
		if in.Seq != isa.Seq(i+1) {
			t.Errorf("survivor %d has seq %d", i, in.Seq)
		}
	}
}

func TestStatsAndOccupancy(t *testing.T) {
	q := New("int", 8)
	q.Insert(mk(1))
	q.Insert(mk(2))
	q.Tick() // occupancy 2
	q.SelectReady(nil, 1, allReady)
	q.Tick() // occupancy 1
	st := q.Stats()
	if st.Inserts != 2 || st.Issues != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgOccupancy != 1.5 {
		t.Errorf("avg occupancy = %v, want 1.5", st.AvgOccupancy)
	}
}

func TestScanOrderingState(t *testing.T) {
	q := New("mem", 8)
	mk2 := func(seq isa.Seq, cls isa.Class) *isa.Instr {
		in := isa.NewInstr(seq, 0, cls)
		in.PhysSrc = [2]int{-1, -1}
		return in
	}
	q.Insert(mk2(1, isa.ClassLoad))
	q.Insert(mk2(2, isa.ClassStore))
	q.Insert(mk2(3, isa.ClassLoad))
	// Policy: loads after an unready store stay queued.
	storeSeen := false
	got := q.Scan(nil, 4, func(in *isa.Instr) bool {
		if in.Class == isa.ClassStore {
			storeSeen = true
			return false // store not ready
		}
		return !storeSeen
	})
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("scan selected %v, want only seq 1", got)
	}
	if q.Len() != 2 {
		t.Errorf("len = %d, want 2", q.Len())
	}
	// Remaining entries stay in program order.
	rest := q.Scan(nil, 4, func(*isa.Instr) bool { return true })
	if len(rest) != 2 || rest[0].Seq != 2 || rest[1].Seq != 3 {
		t.Errorf("remaining = %v", rest)
	}
}

func TestScanWidthLimit(t *testing.T) {
	q := New("x", 8)
	for i := 1; i <= 5; i++ {
		q.Insert(mk(isa.Seq(i)))
	}
	got := q.Scan(nil, 2, func(*isa.Instr) bool { return true })
	if len(got) != 2 || got[0].Seq != 1 {
		t.Errorf("scan = %v", got)
	}
	if got := q.Scan(nil, 0, func(*isa.Instr) bool { return true }); got != nil {
		t.Errorf("width 0 scan = %v", got)
	}
}

func TestZeroWidthSelection(t *testing.T) {
	q := New("int", 4)
	q.Insert(mk(1))
	if got := q.SelectReady(nil, 0, allReady); got != nil {
		t.Errorf("width 0 selected %v", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	New("x", 0)
}
