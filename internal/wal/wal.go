// Package wal is a zero-dependency write-ahead log: append-only segment
// files of length-prefixed, CRC-checksummed records. It is the durability
// primitive behind the cluster coordinator's crash-safe job journal
// (internal/cluster.JournalStore), but knows nothing about jobs — callers
// append opaque byte payloads and replay them in order after a restart.
//
// Guarantees and non-guarantees:
//
//   - A record either replays whole or not at all: every record is framed
//     with its payload length and a CRC-32C checksum, so a torn write (the
//     process or machine died mid-append) is detected and the tail is
//     truncated on the next Open rather than surfacing corrupt bytes.
//   - Records replay in append order across segment boundaries.
//   - Durability is bounded by the fsync policy: with Options.SyncEvery=1
//     (the default) an Append returns only after the record is fsynced;
//     with a larger interval (or SyncEvery<0, never) a crash may lose the
//     records appended since the last sync — but never reorder or corrupt
//     the ones that survive.
//   - Compaction (Rewrite) replaces the whole log with a caller-provided
//     snapshot of live records. It is crash-safe as long as replaying the
//     old records followed by the snapshot reaches the same state as the
//     snapshot alone — i.e. the caller's records are idempotent — because
//     a crash between writing the snapshot segment and unlinking the old
//     segments leaves both on disk.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Frame layout: 4-byte little-endian payload length, 4-byte CRC-32C
// (Castagnoli) of the payload, then the payload bytes.
const headerSize = 8

// MaxRecordBytes bounds a single record. The bound is checked on both
// Append and replay, so a corrupt length field cannot make recovery
// allocate gigabytes.
const MaxRecordBytes = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTooLarge is returned by Append for payloads above MaxRecordBytes.
var ErrTooLarge = errors.New("wal: record exceeds MaxRecordBytes")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// ErrCorrupt wraps replay failures outside the final segment's tail: a
// checksum mismatch in the middle of the log is data loss, not a torn
// write, and is never silently truncated.
var ErrCorrupt = errors.New("wal: corrupt record")

// Options tunes a Log. The zero value selects production defaults.
type Options struct {
	// SegmentBytes rotates to a fresh segment file once the current one
	// reaches this size (default 4 MiB). Rotation bounds the cost of the
	// torn-tail scan on Open: only the final segment is ever truncated.
	SegmentBytes int64
	// SyncEvery is the fsync policy: fsync after every Nth append.
	// 1 (and the zero value) syncs every append — an Append that returned
	// is on disk. Larger values amortize the fsync over N records at the
	// cost of losing up to N-1 on a crash. Negative never fsyncs from
	// Append (the OS flushes on its own schedule); Sync can still be
	// called explicitly.
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	return o
}

// Stats is a point-in-time snapshot of a log's lifetime counters, exported
// as the galsim_wal_* metric family by the cluster coordinator.
type Stats struct {
	Appends         uint64 // records appended
	Fsyncs          uint64 // fsync calls issued
	BytesWritten    uint64 // frame bytes written (header + payload)
	Segments        uint64 // live segment files
	Rotations       uint64 // segment rotations
	Compactions     uint64 // Rewrite calls that committed
	TornTruncations uint64 // torn tails truncated on Open
	TruncatedBytes  uint64 // bytes dropped by torn-tail truncation
	ReplayedRecords uint64 // records delivered by Replay
}

// Log is an append-only segmented record log. All methods are safe for
// concurrent use.
type Log struct {
	dir string
	opt Options

	mu        sync.Mutex
	f         *os.File // active (highest-sequence) segment, opened for append
	seq       uint64   // active segment's sequence number
	size      int64    // active segment's current size
	segments  []uint64 // live segment sequences, ascending (last == seq)
	sinceSync int      // appends since the last fsync
	closed    bool
	stats     Stats
}

func segmentName(seq uint64) string { return fmt.Sprintf("%016d.wal", seq) }

// Open opens (or creates) the log in dir, recovering from a torn tail: the
// final segment is scanned and truncated to its last whole, checksummed
// record. Earlier segments are validated lazily by Replay.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "%016d.wal", &seq); err == nil && segmentName(seq) == e.Name() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	l := &Log{dir: dir, opt: opt, segments: seqs}
	if len(seqs) == 0 {
		if err := l.openSegmentLocked(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Torn-tail recovery on the final segment: everything up to the last
	// whole record survives, anything after is a write the crash interrupted.
	last := seqs[len(seqs)-1]
	path := filepath.Join(dir, segmentName(last))
	valid, _, err := scanSegment(path, nil)
	if err != nil {
		return nil, err // scanSegment only errors on I/O, torn tails report via valid
	}
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if info.Size() > valid {
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		l.stats.TornTruncations++
		l.stats.TruncatedBytes += uint64(info.Size() - valid)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	l.f, l.seq, l.size = f, last, valid
	return l, nil
}

// openSegmentLocked creates and switches to segment seq. l.mu must be held
// (or the log not yet shared).
func (l *Log) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if l.f != nil {
		l.f.Sync() //nolint:errcheck // the rotated-away segment is immutable from here
		l.f.Close()
	}
	l.f, l.seq, l.size = f, seq, 0
	l.segments = append(l.segments, seq)
	return nil
}

// EncodeRecord frames a payload: the exact bytes Append writes. Exported
// for the fuzz harness and for tests that build journals by hand.
func EncodeRecord(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// DecodeRecord parses one frame from the front of buf, returning the
// payload and the total frame length consumed. It never panics: torn,
// truncated, oversized and checksum-corrupt frames all return an error.
func DecodeRecord(buf []byte) (payload []byte, n int, err error) {
	if len(buf) < headerSize {
		return nil, 0, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	length := binary.LittleEndian.Uint32(buf[0:4])
	if length > MaxRecordBytes {
		return nil, 0, fmt.Errorf("%w: length %d exceeds limit", ErrCorrupt, length)
	}
	if uint32(len(buf)-headerSize) < length {
		return nil, 0, fmt.Errorf("%w: short payload (%d of %d bytes)", ErrCorrupt, len(buf)-headerSize, length)
	}
	payload = buf[headerSize : headerSize+int(length)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, headerSize + int(length), nil
}

// Append durably adds one record, rotating to a new segment when the
// current one is full and fsyncing per the configured policy.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return ErrTooLarge
	}
	frame := EncodeRecord(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size > 0 && l.size+int64(len(frame)) > l.opt.SegmentBytes {
		if err := l.openSegmentLocked(l.seq + 1); err != nil {
			return err
		}
		l.stats.Rotations++
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.stats.Appends++
	l.stats.BytesWritten += uint64(len(frame))
	l.sinceSync++
	if l.opt.SyncEvery > 0 && l.sinceSync >= l.opt.SyncEvery {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes any buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.stats.Fsyncs++
	l.sinceSync = 0
	return nil
}

// Replay streams every record, oldest first, to fn. A torn tail in the
// final segment ends the replay cleanly (Open already truncates it, but a
// concurrent crash-copied directory may still carry one); corruption in
// any earlier segment returns ErrCorrupt — that is lost data, not a torn
// write. Replay holds the log's lock: call it before serving appends.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for i, seq := range l.segments {
		path := filepath.Join(l.dir, segmentName(seq))
		valid, n, err := scanSegment(path, fn)
		l.stats.ReplayedRecords += n
		if err != nil {
			return err
		}
		if i < len(l.segments)-1 {
			// A non-final segment must scan to its exact end; a short scan
			// means mid-log corruption, not a torn write.
			if info, serr := os.Stat(path); serr == nil && valid != info.Size() {
				return fmt.Errorf("%w: segment %s damaged mid-log", ErrCorrupt, segmentName(seq))
			}
		}
	}
	return nil
}

// scanSegment reads records from one segment file, calling fn (when
// non-nil) per payload, and returns the byte offset of the last whole valid
// record plus the number of records delivered. Torn or corrupt tails stop
// the scan without error — the caller decides whether that is recoverable.
func scanSegment(path string, fn func([]byte) error) (valid int64, records uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var header [headerSize]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return valid, records, nil // clean EOF or torn header: stop here
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		if length > MaxRecordBytes {
			return valid, records, nil // corrupt length: treat as tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, records, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(header[4:8]) {
			return valid, records, nil // checksum mismatch: tail is suspect
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, records, err
			}
		}
		valid += headerSize + int64(length)
		records++
	}
}

// Rewrite atomically replaces the log's contents with the given records —
// the compaction primitive. The snapshot is written to a fresh segment
// (sequence-numbered after every existing one), fsynced, and atomically
// renamed into place before the old segments are unlinked. A crash in
// between leaves old segments beside the snapshot; because the snapshot
// sorts after them, replay sees old records then the snapshot — callers
// whose records replay idempotently (the coordinator's journal does)
// recover the identical state.
func (l *Log) Rewrite(records [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	newSeq := l.seq + 1
	finalPath := filepath.Join(l.dir, segmentName(newSeq))
	tmpPath := finalPath + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewrite: %w", err)
	}
	var size int64
	bw := bufio.NewWriterSize(tmp, 1<<16)
	for _, rec := range records {
		if len(rec) > MaxRecordBytes {
			tmp.Close()
			os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
			return ErrTooLarge
		}
		frame := EncodeRecord(rec)
		if _, err := bw.Write(frame); err != nil {
			tmp.Close()
			os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
			return fmt.Errorf("wal: rewrite: %w", err)
		}
		size += int64(len(frame))
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("wal: rewrite: %w", err)
	}
	tmp.Close()
	if err := os.Rename(tmpPath, finalPath); err != nil {
		os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("wal: rewrite commit: %w", err)
	}
	// The snapshot is durable and in place: retire the old segments. Unlink
	// failures are non-fatal (idempotent replay tolerates leftovers) but the
	// segment list must reflect what will replay.
	old := l.segments
	f, err := os.OpenFile(finalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewrite reopen: %w", err)
	}
	l.f.Close()
	l.f, l.seq, l.size, l.sinceSync = f, newSeq, size, 0
	l.segments = []uint64{newSeq}
	for _, seq := range old {
		if seq != newSeq {
			if rmErr := os.Remove(filepath.Join(l.dir, segmentName(seq))); rmErr == nil {
				continue
			}
			l.segments = append([]uint64{seq}, l.segments...)
		}
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i] < l.segments[j] })
	l.stats.Compactions++
	l.stats.BytesWritten += uint64(size)
	l.stats.Fsyncs++
	return nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = uint64(len(l.segments))
	return s
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes and closes the active segment. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.opt.SyncEvery >= 0 && l.sinceSync > 0 {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
