package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte(""), []byte("three-is-longer"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, l); len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	} else {
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("record %d = %q, want %q", i, got[i], want[i])
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the same records survive the restart.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != len(want) {
		t.Fatalf("after reopen: replayed %d records, want %d", len(got), len(want))
	}
	if st := l2.Stats(); st.ReplayedRecords != uint64(len(want)) || st.TornTruncations != 0 {
		t.Errorf("stats after clean reopen: %+v", st)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every couple of records.
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-padding-padding", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 2 || st.Rotations == 0 {
		t.Fatalf("no rotation happened: %+v", st)
	}
	l.Close()
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q (ordering across segments broken)", i, got[i], want[i])
		}
	}
}

// TestTornTailTruncation is the satellite table test: a journal whose final
// record is cut at EVERY possible byte offset must reopen cleanly, replay
// exactly the preceding records, and accept new appends.
func TestTornTailTruncation(t *testing.T) {
	intact := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma-gamma")}
	final := []byte("the-final-record")
	frameLen := headerSize + len(final)
	for cut := 0; cut < frameLen; cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range intact {
				if err := l.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Append(final); err != nil {
				t.Fatal(err)
			}
			l.Close()
			// Tear the tail: keep only `cut` bytes of the final frame.
			seg := filepath.Join(dir, segmentName(1))
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, info.Size()-int64(frameLen-cut)); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after tear at %d: %v", cut, err)
			}
			defer l2.Close()
			if cut > 0 {
				if st := l2.Stats(); st.TornTruncations != 1 {
					t.Errorf("torn truncations = %d, want 1", st.TornTruncations)
				}
			}
			got := collect(t, l2)
			if len(got) != len(intact) {
				t.Fatalf("replayed %d records, want the %d intact ones", len(got), len(intact))
			}
			for i := range intact {
				if !bytes.Equal(got[i], intact[i]) {
					t.Fatalf("record %d corrupted by recovery: %q", i, got[i])
				}
			}
			// The log must be fully usable after recovery.
			if err := l2.Append([]byte("post-recovery")); err != nil {
				t.Fatal(err)
			}
			if got := collect(t, l2); len(got) != len(intact)+1 {
				t.Fatalf("append after recovery not replayed (%d records)", len(got))
			}
		})
	}
}

// TestTornTailBitFlip: a corrupted (not just truncated) final record is
// also dropped — the checksum, not the length, is the arbiter.
func TestTornTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("keep-me")) //nolint:errcheck
	l.Append([]byte("flip-me")) //nolint:errcheck
	l.Close()
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 1 || string(got[0]) != "keep-me" {
		t.Fatalf("replay after bit flip = %q, want just keep-me", got)
	}
}

func TestRewriteCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append([]byte(fmt.Sprintf("stale-%d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	live := [][]byte{[]byte("live-1"), []byte("live-2")}
	if err := l.Rewrite(live); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments != 1 || after.Compactions != 1 {
		t.Fatalf("compaction did not collapse segments: before %d, after %+v", before.Segments, after)
	}
	got := collect(t, l)
	if len(got) != 2 || string(got[0]) != "live-1" || string(got[1]) != "live-2" {
		t.Fatalf("post-compaction replay = %q", got)
	}
	// Appends continue on the compacted log and survive a reopen.
	if err := l.Append([]byte("after-compact")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 3 || string(got[2]) != "after-compact" {
		t.Fatalf("replay after compaction+reopen = %q", got)
	}
}

// TestRewriteEmptyResetsLog: compacting to nothing (every campaign settled)
// leaves an empty, appendable log.
func TestRewriteEmptyResetsLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]byte("gone-soon")) //nolint:errcheck
	if err := l.Rewrite(nil); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("reset log still replays %q", got)
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 1 || string(got[0]) != "fresh" {
		t.Fatalf("replay after reset = %q", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 7; i++ {
		if err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != 2 {
		t.Errorf("SyncEvery=3 after 7 appends: %d fsyncs, want 2", st.Fsyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 3 {
		t.Errorf("explicit Sync not counted: %+v", l.Stats())
	}

	never, err := Open(t.TempDir(), Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer never.Close()
	for i := 0; i < 5; i++ {
		never.Append([]byte("y")) //nolint:errcheck
	}
	if st := never.Stats(); st.Fsyncs != 0 {
		t.Errorf("SyncEvery=-1 issued %d fsyncs", st.Fsyncs)
	}
}

func TestAppendTooLarge(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecordBytes+1)); err != ErrTooLarge {
		t.Fatalf("oversized append error = %v, want ErrTooLarge", err)
	}
}

func TestClosedLog(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Errorf("append on closed log = %v, want ErrClosed", err)
	}
	if err := l.Replay(func([]byte) error { return nil }); err != ErrClosed {
		t.Errorf("replay on closed log = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}
