package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecord fuzzes the record framing both ways: any payload must
// encode→decode to identical bytes, and decoding arbitrary bytes must never
// panic — corrupt headers, lying length fields and flipped checksum bits
// all have to surface as errors, because this is exactly what the torn tail
// of a crashed coordinator's journal looks like.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello"))
	f.Add(EncodeRecord([]byte("a journal record")))
	f.Add(EncodeRecord(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})    // absurd length field
	f.Add([]byte{5, 0, 0, 0, 1, 2, 3, 4, 'a', 'b'})      // short payload
	f.Add(append(EncodeRecord([]byte("x")), 0xDE, 0xAD)) // trailing garbage
	f.Add(bytes.Repeat([]byte{0}, headerSize))           // zero-length, zero-CRC

	f.Fuzz(func(t *testing.T, data []byte) {
		// Round-trip: data as a payload.
		if len(data) <= MaxRecordBytes {
			frame := EncodeRecord(data)
			payload, n, err := DecodeRecord(frame)
			if err != nil {
				t.Fatalf("decode of freshly encoded record failed: %v", err)
			}
			if n != len(frame) {
				t.Fatalf("decode consumed %d of %d frame bytes", n, len(frame))
			}
			if !bytes.Equal(payload, data) {
				t.Fatalf("round-trip changed payload: %q -> %q", data, payload)
			}
		}
		// Adversarial: data as a (possibly corrupt) frame. Must not panic;
		// a successful decode must re-encode to a prefix-stable frame.
		if payload, n, err := DecodeRecord(data); err == nil {
			again := EncodeRecord(payload)
			if !bytes.Equal(again, data[:n]) {
				t.Fatalf("valid frame did not re-encode identically")
			}
		}
	})
}
