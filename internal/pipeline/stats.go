package pipeline

import (
	"fmt"

	"galsim/internal/bpred"
	"galsim/internal/cache"
	"galsim/internal/fifo"
	"galsim/internal/iq"
	"galsim/internal/power"
	"galsim/internal/rob"
	"galsim/internal/simtime"
)

// Stats is everything measured over one run: the raw material for every
// figure in the paper's evaluation.
type Stats struct {
	Kind      Kind
	Benchmark string

	// Instruction counts.
	Committed        uint64
	Fetched          uint64 // correct + wrong path
	WrongPathFetched uint64
	Mispredicts      uint64 // correct-path branch mispredictions
	Recoveries       uint64
	SquashedROB      uint64

	// Time.
	SimTime simtime.Time
	Cycles  [NumDomains]uint64

	// Slip (Figures 6-7): fetch-to-commit latency of committed instructions
	// and the share of it spent inside inter-stage links.
	SlipSum     simtime.Duration
	FIFOSlipSum simtime.Duration

	// ResolutionSum accumulates fetch-to-resolve latency of mispredicted
	// branches: the window during which wrong-path fetch runs.
	ResolutionSum simtime.Duration

	// Per-stage latency sums over committed instructions (slip breakdown).
	SumFetchToDecode    simtime.Duration
	SumDecodeToDispatch simtime.Duration
	SumDispatchToIssue  simtime.Duration
	SumIssueToComplete  simtime.Duration
	SumCompleteToCommit simtime.Duration

	// Stall diagnostics.
	FetchStallICache     uint64
	FetchStallLinkFull   uint64
	ICacheMisses         uint64
	BTBBubbles           uint64
	RenameStallROB       uint64
	RenameStallRegs      uint64
	RenameStallDispatch  uint64
	CompleteBackpressure uint64
	LoadsBlockedByStores uint64

	// Dynamic DVFS activity.
	Retunes        uint64
	FinalSlowdowns [NumDomains]float64

	// Substructure statistics, filled at finalize.
	IntIQ, FPIQ, MemIQ iq.Stats
	ROB                rob.Stats
	AvgIntRAT          float64
	AvgFPRAT           float64
	Bpred              bpred.Stats
	L1I, L1D, L2       cache.Stats

	// Energy.
	EnergyPJ        float64
	EnergyBreakdown [power.NumBlocks]float64

	// Per-link activity, keyed by link name.
	Links map[string]fifo.Stats

	// Interval time-series, present only when Config.SampleInterval > 0.
	// omitempty keeps the serialized Stats (golden snapshots, cache
	// payloads, wire results) byte-identical when sampling is off.
	Samples []Sample `json:"Samples,omitempty"`
}

// InstrPerSecond is the machine's absolute performance: committed
// instructions per second of simulated time. Relative performance between
// machines running the same instruction count is the inverse ratio of their
// SimTimes.
func (s Stats) InstrPerSecond() float64 {
	sec := s.SimTime.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(s.Committed) / sec
}

// IPC is committed instructions per decode-domain cycle (the conventional
// single-clock metric; meaningful within one machine).
func (s Stats) IPC() float64 {
	if s.Cycles[DomDecode] == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles[DomDecode])
}

// AvgSlip is the mean fetch-to-commit latency of committed instructions
// (Figure 6).
func (s Stats) AvgSlip() simtime.Duration {
	if s.Committed == 0 {
		return 0
	}
	return s.SlipSum / simtime.Duration(s.Committed)
}

// FIFOSlipShare is the fraction of total slip spent inside inter-stage
// links (Figure 7's "FIFO" segment).
func (s Stats) FIFOSlipShare() float64 {
	if s.SlipSum == 0 {
		return 0
	}
	return float64(s.FIFOSlipSum) / float64(s.SlipSum)
}

// MisspeculationFrac is the fraction of all fetched instructions that were
// wrong-path (Figure 8).
func (s Stats) MisspeculationFrac() float64 {
	if s.Fetched == 0 {
		return 0
	}
	return float64(s.WrongPathFetched) / float64(s.Fetched)
}

// MispredictRate is mispredictions per correct-path branch.
func (s Stats) MispredictRate() float64 {
	if s.Bpred.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Bpred.Lookups)
}

// EnergyJoules is total energy in joules.
func (s Stats) EnergyJoules() float64 { return s.EnergyPJ * 1e-12 }

// AvgPowerWatts is mean power over the run.
func (s Stats) AvgPowerWatts() float64 {
	sec := s.SimTime.Seconds()
	if sec <= 0 {
		return 0
	}
	return s.EnergyJoules() / sec
}

// ClockEnergyPJ is the energy of all clock grids.
func (s Stats) ClockEnergyPJ() float64 {
	var t float64
	for _, b := range power.Blocks() {
		if b.IsClock() {
			t += s.EnergyBreakdown[b]
		}
	}
	return t
}

// String summarizes the run for logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"%s/%s: %d committed in %v (%.0f MIPS, IPC %.2f), misspec %.1f%%, slip %v, power %.1f W",
		s.Kind, s.Benchmark, s.Committed, s.SimTime, s.InstrPerSecond()/1e6, s.IPC(),
		100*s.MisspeculationFrac(), s.AvgSlip(), s.AvgPowerWatts())
}

// finalize gathers end-of-run statistics from the subsystems and computes
// FIFO energy from link activity.
func (c *Core) finalize() {
	c.stats.SimTime = c.eng.Now()
	c.stats.IntIQ = c.exec[DomInt].queue.Stats()
	c.stats.FPIQ = c.exec[DomFP].queue.Stats()
	c.stats.MemIQ = c.exec[DomMem].queue.Stats()
	c.stats.ROB = c.rob.Stats()
	c.stats.AvgIntRAT = c.rat.AvgIntOccupancy()
	c.stats.AvgFPRAT = c.rat.AvgFPOccupancy()
	c.stats.Bpred = c.pred.Stats()
	c.stats.L1I = c.mem.L1I.Stats()
	c.stats.L1D = c.mem.L1D.Stats()
	c.stats.L2 = c.mem.L2.Stats()

	c.stats.Links = map[string]fifo.Stats{}
	perAccess := c.cfg.Power.Blocks[power.BlockFIFOs].PerAccess
	type namedLink interface {
		Name() string
		Stats() fifo.Stats
	}
	charge := func(l namedLink, from, to DomainID) {
		st := l.Stats()
		c.stats.Links[l.Name()] = st
		if c.topo.Cross(from, to) {
			// Final voltages; exact for static scaling, a slight approximation
			// when dynamic DVFS retuned voltages mid-run.
			scale := (c.clocks[from].EnergyScale() + c.clocks[to].EnergyScale()) / 2
			c.mtr.AddEnergy(power.BlockFIFOs, float64(st.Puts+st.Gets)*perAccess*scale)
		}
	}
	charge(c.fetchToDecode, DomFetch, DomDecode)
	c.stats.Links[c.decodeToRename.Name()] = c.decodeToRename.Stats()
	for _, d := range execDomains {
		charge(c.dispatch[d], DomDecode, d)
		charge(c.complete[d], d, DomDecode)
	}
	charge(c.wakeIntToMem, DomInt, DomMem)
	charge(c.wakeFPToMem, DomFP, DomMem)
	charge(c.wakeMemToInt, DomMem, DomInt)
	charge(c.wakeMemToFP, DomMem, DomFP)

	for d := DomainID(0); d < NumDomains; d++ {
		c.stats.FinalSlowdowns[d] = c.clocks[d].Slowdown()
	}
	c.stats.EnergyPJ = c.mtr.TotalEnergy()
	c.stats.EnergyBreakdown = c.mtr.Breakdown()
}
