package pipeline

import (
	"fmt"

	"galsim/internal/simtime"
)

// DynamicDVFSConfig parameterizes the online per-domain frequency/voltage
// controller: the "application-driven, multiple-domain dynamic
// clock/voltage scaling" the paper's conclusion identifies as the eventual
// payoff of GALS design (realized contemporaneously by Semeraro et al.,
// HPCA 2002, via offline profiling; here as a simple online utilization
// controller).
//
// Every IntervalCycles decode cycles the controller inspects each execution
// domain's issue-queue occupancy over the elapsed interval. A nearly empty
// queue means the domain drains faster than work arrives — slack that can
// be traded for energy by slowing its clock (and dropping its voltage per
// Equation 1). A filling queue means the domain is a bottleneck and is sped
// back up. Occupancy feedback is self-stabilizing: slowing a domain raises
// its queue occupancy, so an over-slowed domain recovers — the reason
// queue-based control (as in Semeraro et al.) beats raw utilization.
// Changes take effect at the target domain's next clock edge — a local
// decision applied locally, which only a GALS machine can do.
type DynamicDVFSConfig struct {
	Enable         bool
	IntervalCycles uint64  // controller period in decode cycles
	LowOcc         float64 // slow a domain whose IQ occupancy fraction is below this
	HighOcc        float64 // speed up a domain whose IQ occupancy fraction is above this
	Step           float64 // multiplicative frequency step (> 1)
	MaxSlowdown    float64 // slowest allowed clock, as a factor of nominal

	// MaxStepPerfLoss is the probe guard: each slowdown step is a probe,
	// and if the machine's IPC falls by more than this fraction over the
	// following interval the step is reverted and the domain frozen for
	// FreezeIntervals. This is what keeps the controller from walking into
	// Figure 12's trap — a near-empty memory queue whose few operations are
	// all critical.
	MaxStepPerfLoss float64
	FreezeIntervals int
}

// DefaultDynamicDVFS returns the controller settings used by the dynamic
// scaling demo: 2000-cycle intervals, slow below 5% queue occupancy,
// recover above 25%, 1.26x steps (two steps per octave) up to 3x.
func DefaultDynamicDVFS() DynamicDVFSConfig {
	return DynamicDVFSConfig{
		Enable:          true,
		IntervalCycles:  4000,
		LowOcc:          0.05,
		HighOcc:         0.25,
		Step:            1.26,
		MaxSlowdown:     3.0,
		MaxStepPerfLoss: 0.02,
		FreezeIntervals: 8,
	}
}

// Validate reports an error for malformed controller settings.
func (c DynamicDVFSConfig) Validate() error {
	if !c.Enable {
		return nil
	}
	switch {
	case c.IntervalCycles < 100:
		return fmt.Errorf("pipeline: dvfs interval %d cycles too short", c.IntervalCycles)
	case c.LowOcc < 0 || c.HighOcc <= c.LowOcc || c.HighOcc > 1:
		return fmt.Errorf("pipeline: dvfs thresholds low=%v high=%v malformed", c.LowOcc, c.HighOcc)
	case c.Step <= 1:
		return fmt.Errorf("pipeline: dvfs step %v must exceed 1", c.Step)
	case c.MaxSlowdown < 1:
		return fmt.Errorf("pipeline: dvfs max slowdown %v below 1", c.MaxSlowdown)
	case c.MaxStepPerfLoss < 0 || c.MaxStepPerfLoss > 0.5:
		return fmt.Errorf("pipeline: dvfs per-step perf-loss guard %v outside [0, 0.5]", c.MaxStepPerfLoss)
	case c.FreezeIntervals < 0:
		return fmt.Errorf("pipeline: dvfs freeze intervals %d negative", c.FreezeIntervals)
	}
	return nil
}

// scalableDomains are the domains the controller may retune: the three
// execution domains, whose issue queues provide the feedback signal. The
// fetch and decode domains stay at full speed (they host the machine's
// serialization points and have no issue queue to observe).
var scalableDomains = []DomainID{DomInt, DomFP, DomMem}

// dvfsState is the controller's bookkeeping inside Core.
type dvfsState struct {
	lastCheck  uint64 // decodeCycles at the last interval boundary
	lastOccSum [NumDomains]uint64
	lastTicks  [NumDomains]uint64
	target     [NumDomains]float64 // desired slowdown per domain
	pending    [NumDomains]bool    // retune awaiting the domain's next edge

	lastCommitted uint64
	probeDomain   DomainID // domain slowed by the last probe
	probeActive   bool
	probeIPC      float64 // interval IPC before the probe
	frozen        [NumDomains]int
}

// dvfsController runs on the decode domain's clock: at each interval
// boundary it computes per-domain issue-queue occupancy and posts retune
// requests.
func (c *Core) dvfsController() {
	ctl := c.cfg.DynamicDVFS
	if !ctl.Enable || c.decodeCycles-c.dvfs.lastCheck < ctl.IntervalCycles {
		return
	}
	c.dvfs.lastCheck = c.decodeCycles

	// Interval IPC, the probe guard's signal.
	intervalIPC := float64(c.stats.Committed-c.dvfs.lastCommitted) / float64(ctl.IntervalCycles)
	c.dvfs.lastCommitted = c.stats.Committed

	// Judge the outstanding probe: revert and freeze the domain if the last
	// slowdown step cost more performance than it is allowed to.
	if c.dvfs.probeActive {
		c.dvfs.probeActive = false
		d := c.dvfs.probeDomain
		if intervalIPC < c.dvfs.probeIPC*(1-ctl.MaxStepPerfLoss) {
			c.dvfs.target[d] = c.dvfs.target[d] / ctl.Step
			if c.dvfs.target[d] < 1 {
				c.dvfs.target[d] = 1
			}
			c.dvfs.pending[d] = true
			c.dvfs.frozen[d] = ctl.FreezeIntervals
		}
	}

	// Pick at most one domain to slow this interval (so a performance drop
	// is attributable), preferring the emptiest queue; speed-ups are applied
	// unconditionally.
	slowCand := DomainID(255)
	slowOcc := 1.0
	for _, d := range scalableDomains {
		occSum, ticks := c.exec[d].queue.OccupancyCounters()
		dSum := occSum - c.dvfs.lastOccSum[d]
		dTicks := ticks - c.dvfs.lastTicks[d]
		c.dvfs.lastOccSum[d] = occSum
		c.dvfs.lastTicks[d] = ticks
		if dTicks == 0 {
			continue
		}
		if c.dvfs.frozen[d] > 0 {
			c.dvfs.frozen[d]--
			continue
		}
		occFrac := float64(dSum) / (float64(dTicks) * float64(c.exec[d].queue.Cap()))
		cur := c.dvfs.target[d]
		if cur == 0 {
			cur = c.clocks[d].Slowdown()
			c.dvfs.target[d] = cur
		}
		switch {
		case occFrac > ctl.HighOcc && cur > 1:
			next := cur / ctl.Step
			if next < 1 {
				next = 1
			}
			c.dvfs.target[d] = next
			c.dvfs.pending[d] = true
		case occFrac < ctl.LowOcc && cur*ctl.Step <= ctl.MaxSlowdown && occFrac < slowOcc:
			slowCand = d
			slowOcc = occFrac
		}
	}
	if slowCand != DomainID(255) {
		c.dvfs.target[slowCand] *= ctl.Step
		c.dvfs.pending[slowCand] = true
		c.dvfs.probeActive = true
		c.dvfs.probeDomain = slowCand
		c.dvfs.probeIPC = intervalIPC
	}
}

// maybeRetune applies a pending frequency/voltage change to domain d at one
// of its own clock edges (now). The periodic tick event is rescheduled to
// the new period, and the clock itself is rebased so that edge arithmetic
// (FIFO synchronizers, squash observation) follows the new regime.
func (c *Core) maybeRetune(d DomainID, now simtime.Time) {
	if !c.dvfs.pending[d] {
		return
	}
	c.dvfs.pending[d] = false
	slow := c.dvfs.target[d]
	volt := 0.0
	if c.cfg.AutoVoltage {
		volt = c.cfg.DVFS.VoltageForSlowdown(slow)
	}
	c.clocks[d].Retune(now, slow, volt)
	c.stats.Retunes++

	// Replace the domain's tick event: the old one was already rescheduled
	// with the previous period when it fired.
	if ev := c.tickEvents[d]; ev != nil {
		c.eng.Cancel(ev)
		c.tickEvents[d] = c.eng.SchedulePeriodic(now+c.clocks[d].Period(), c.clocks[d].Period(),
			ev.Priority(), ev.Name(), c.tickHandler(d))
	}
}
