package pipeline

import (
	"fmt"

	"galsim/internal/simtime"
)

// DynamicDVFSConfig parameterizes the online per-domain frequency/voltage
// controller: the "application-driven, multiple-domain dynamic
// clock/voltage scaling" the paper's conclusion identifies as the eventual
// payoff of GALS design (realized contemporaneously by Semeraro et al.,
// HPCA 2002, via offline profiling; here as a simple online utilization
// controller).
//
// Every IntervalCycles decode cycles the controller inspects each execution
// domain's issue-queue occupancy over the elapsed interval. A nearly empty
// queue means the domain drains faster than work arrives — slack that can
// be traded for energy by slowing its clock (and dropping its voltage per
// Equation 1). A filling queue means the domain is a bottleneck and is sped
// back up. Occupancy feedback is self-stabilizing: slowing a domain raises
// its queue occupancy, so an over-slowed domain recovers — the reason
// queue-based control (as in Semeraro et al.) beats raw utilization.
// Changes take effect at the target domain's next clock edge — a local
// decision applied locally, which only a GALS machine can do.
type DynamicDVFSConfig struct {
	Enable         bool
	IntervalCycles uint64  // controller period in decode cycles
	LowOcc         float64 // slow a domain whose IQ occupancy fraction is below this
	HighOcc        float64 // speed up a domain whose IQ occupancy fraction is above this
	Step           float64 // multiplicative frequency step (> 1)
	MaxSlowdown    float64 // slowest allowed clock, as a factor of nominal

	// MaxStepPerfLoss is the probe guard: each slowdown step is a probe,
	// and if the machine's IPC falls by more than this fraction over the
	// following interval the step is reverted and the domain frozen for
	// FreezeIntervals. This is what keeps the controller from walking into
	// Figure 12's trap — a near-empty memory queue whose few operations are
	// all critical.
	MaxStepPerfLoss float64
	FreezeIntervals int
}

// DefaultDynamicDVFS returns the controller settings used by the dynamic
// scaling demo: 2000-cycle intervals, slow below 5% queue occupancy,
// recover above 25%, 1.26x steps (two steps per octave) up to 3x.
func DefaultDynamicDVFS() DynamicDVFSConfig {
	return DynamicDVFSConfig{
		Enable:          true,
		IntervalCycles:  4000,
		LowOcc:          0.05,
		HighOcc:         0.25,
		Step:            1.26,
		MaxSlowdown:     3.0,
		MaxStepPerfLoss: 0.02,
		FreezeIntervals: 8,
	}
}

// Validate reports an error for malformed controller settings.
func (c DynamicDVFSConfig) Validate() error {
	if !c.Enable {
		return nil
	}
	switch {
	case c.IntervalCycles < 100:
		return fmt.Errorf("pipeline: dvfs interval %d cycles too short", c.IntervalCycles)
	case c.LowOcc < 0 || c.HighOcc <= c.LowOcc || c.HighOcc > 1:
		return fmt.Errorf("pipeline: dvfs thresholds low=%v high=%v malformed", c.LowOcc, c.HighOcc)
	case c.Step <= 1:
		return fmt.Errorf("pipeline: dvfs step %v must exceed 1", c.Step)
	case c.MaxSlowdown < 1:
		return fmt.Errorf("pipeline: dvfs max slowdown %v below 1", c.MaxSlowdown)
	case c.MaxStepPerfLoss < 0 || c.MaxStepPerfLoss > 0.5:
		return fmt.Errorf("pipeline: dvfs per-step perf-loss guard %v outside [0, 0.5]", c.MaxStepPerfLoss)
	case c.FreezeIntervals < 0:
		return fmt.Errorf("pipeline: dvfs freeze intervals %d negative", c.FreezeIntervals)
	}
	return nil
}

// The controller may retune the topology's scalable clock domains (see
// TopoDomain.Scalable): domains consisting solely of execution structures,
// whose issue queues provide the feedback signal. Domains hosting the fetch
// or decode structures stay at full speed (they hold the machine's
// serialization points and have no issue queue to observe); topology
// validation rejects marking them scalable.

// dvfsState is the controller's bookkeeping inside Core. Occupancy counters
// are tracked per execution structure; targets, pending retunes and freezes
// are per clock domain (a domain owning several issue queues is judged on
// their combined occupancy and retuned as one clock).
type dvfsState struct {
	lastCheck  uint64 // decodeCycles at the last interval boundary
	lastOccSum [NumDomains]uint64
	lastTicks  [NumDomains]uint64
	target     []float64 // desired slowdown per clock domain
	pending    []bool    // retune awaiting the domain's next edge

	lastCommitted uint64
	probeDomain   int // clock domain slowed by the last probe
	probeActive   bool
	probeIPC      float64 // interval IPC before the probe
	frozen        []int
}

// dvfsController runs on the decode structure's clock: at each interval
// boundary it computes per-clock-domain issue-queue occupancy and posts
// retune requests.
func (c *Core) dvfsController() {
	ctl := c.cfg.DynamicDVFS
	if !ctl.Enable || c.decodeCycles-c.dvfs.lastCheck < ctl.IntervalCycles {
		return
	}
	c.dvfs.lastCheck = c.decodeCycles

	// Interval IPC, the probe guard's signal.
	intervalIPC := float64(c.stats.Committed-c.dvfs.lastCommitted) / float64(ctl.IntervalCycles)
	c.dvfs.lastCommitted = c.stats.Committed

	// Judge the outstanding probe: revert and freeze the domain if the last
	// slowdown step cost more performance than it is allowed to.
	if c.dvfs.probeActive {
		c.dvfs.probeActive = false
		g := c.dvfs.probeDomain
		if intervalIPC < c.dvfs.probeIPC*(1-ctl.MaxStepPerfLoss) {
			c.dvfs.target[g] = c.dvfs.target[g] / ctl.Step
			if c.dvfs.target[g] < 1 {
				c.dvfs.target[g] = 1
			}
			c.dvfs.pending[g] = true
			c.dvfs.frozen[g] = ctl.FreezeIntervals
		}
	}

	// Pick at most one domain to slow this interval (so a performance drop
	// is attributable), preferring the emptiest queue; speed-ups are applied
	// unconditionally.
	slowCand := -1
	slowOcc := 1.0
	for _, g := range c.scalable {
		var num, denom float64
		var ticksTotal uint64
		for _, d := range c.topo.structuresOf(g) {
			occSum, ticks := c.exec[d].queue.OccupancyCounters()
			dSum := occSum - c.dvfs.lastOccSum[d]
			dTicks := ticks - c.dvfs.lastTicks[d]
			c.dvfs.lastOccSum[d] = occSum
			c.dvfs.lastTicks[d] = ticks
			num += float64(dSum)
			denom += float64(dTicks) * float64(c.exec[d].queue.Cap())
			ticksTotal += dTicks
		}
		if ticksTotal == 0 {
			continue
		}
		if c.dvfs.frozen[g] > 0 {
			c.dvfs.frozen[g]--
			continue
		}
		occFrac := num / denom
		cur := c.dvfs.target[g]
		if cur == 0 {
			cur = c.domClocks[g].Slowdown()
			c.dvfs.target[g] = cur
		}
		switch {
		case occFrac > ctl.HighOcc && cur > 1:
			next := cur / ctl.Step
			if next < 1 {
				next = 1
			}
			c.dvfs.target[g] = next
			c.dvfs.pending[g] = true
		case occFrac < ctl.LowOcc && cur*ctl.Step <= ctl.MaxSlowdown && occFrac < slowOcc:
			slowCand = g
			slowOcc = occFrac
		}
	}
	if slowCand >= 0 {
		c.dvfs.target[slowCand] *= ctl.Step
		c.dvfs.pending[slowCand] = true
		c.dvfs.probeActive = true
		c.dvfs.probeDomain = slowCand
		c.dvfs.probeIPC = intervalIPC
	}
}

// maybeRetune applies a pending frequency/voltage change to clock domain g
// at one of its own clock edges (now). The periodic tick event is
// rescheduled to the new period, and the clock itself is rebased so that
// edge arithmetic (FIFO synchronizers, squash observation) follows the new
// regime.
func (c *Core) maybeRetune(g int, now simtime.Time) {
	if !c.dvfs.pending[g] {
		return
	}
	c.dvfs.pending[g] = false
	slow := c.dvfs.target[g]
	volt := 0.0
	if c.cfg.AutoVoltage {
		volt = c.voltageFor(g, slow)
	}
	c.domClocks[g].Retune(now, slow, volt)
	c.stats.Retunes++
	if c.tl != nil {
		c.tl.retune(c, g, now, slow)
	}

	// Replace the domain's tick event: the old one was already rescheduled
	// with the previous period when it fired.
	if ev := c.tickEvents[g]; ev != nil {
		c.eng.Cancel(ev)
		c.tickEvents[g] = c.eng.SchedulePeriodic(now+c.domClocks[g].Period(), c.domClocks[g].Period(),
			ev.Priority(), ev.Name(), c.tickFns[g])
	}
}
