package pipeline

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"galsim/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden Stats snapshots")

// goldenCases are the runs whose complete Stats are pinned byte-for-byte:
// both machine variants over a branchy integer code (gcc), an FP streamer
// (swim) and a mixed workload (perl), plus one dynamic-DVFS run whose
// controller decisions depend on every occupancy counter in the machine.
// All use the default seeds (WorkloadSeed 42, PhaseSeed 1) and 20k commits.
func goldenCases() []struct {
	name  string
	kind  Kind
	bench string
	dvfs  bool
} {
	return []struct {
		name  string
		kind  Kind
		bench string
		dvfs  bool
	}{
		{"base_gcc", Base, "gcc", false},
		{"base_swim", Base, "swim", false},
		{"base_perl", Base, "perl", false},
		{"gals_gcc", GALS, "gcc", false},
		{"gals_swim", GALS, "swim", false},
		{"gals_perl", GALS, "perl", false},
		{"gals_dyndvfs_perl", GALS, "perl", true},
	}
}

// TestGoldenStats asserts that runs at the default seeds reproduce the
// committed Stats snapshots exactly. This is the determinism contract the
// campaign cache keys and trace replay rely on: any hot-path change that
// perturbs even one counter or one float bit fails here. Regenerate with
//
//	go test ./internal/pipeline -run TestGoldenStats -update-golden
//
// only when a change is *supposed* to alter simulation results.
func TestGoldenStats(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(tc.kind)
			if tc.dvfs {
				cfg.DynamicDVFS = DefaultDynamicDVFS()
			}
			prof, err := workload.ByName(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			st := NewCore(cfg, prof).Run(20_000)
			got, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_"+tc.name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("Stats diverged from golden snapshot %s\n%s", path, diffHint(want, got))
			}
		})
	}
}

// diffHint locates the first differing line so a failure names the counter
// that moved instead of dumping two 200-line JSON blobs.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first divergence at line %d:\n  golden: %s\n  got:    %s",
				i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}
