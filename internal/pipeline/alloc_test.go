package pipeline

import (
	"reflect"
	"testing"

	"galsim/internal/isa"
	"galsim/internal/workload"
)

// TestAllocationBudget is the hot-path allocation regression gate: in steady
// state the simulator must allocate at most 0.05 heap objects per simulated
// instruction. Measured as the difference between a short and a long run
// (same configuration), which cancels construction and warm-up costs —
// clock/link/arena setup, static-program materialization of the hot code —
// and leaves only the per-instruction residue the arena and ring buffers
// exist to eliminate. The budget is ~150x above the currently measured rate
// (≤ 0.0003), so it trips on a reintroduced per-instruction or per-cycle
// allocation, not on noise.
func TestAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation runs")
	}
	const (
		short  = 20_000
		long   = 120_000
		window = long - short
		budget = 0.05 // allocs per simulated instruction
	)
	for _, bench := range []string{"gcc", "swim"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			prof, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			run := func(n uint64) float64 {
				return testing.AllocsPerRun(1, func() {
					cfg := DefaultConfig(GALS)
					NewCore(cfg, prof).Run(n)
				})
			}
			shortAllocs := run(short)
			longAllocs := run(long)
			perInstr := (longAllocs - shortAllocs) / float64(window)
			t.Logf("%s: %.0f allocs @%d, %.0f @%d -> %.5f allocs/instr",
				bench, shortAllocs, short, longAllocs, long, perInstr)
			if perInstr > budget {
				t.Errorf("steady-state allocations %.5f per instruction exceed budget %.2f",
					perInstr, budget)
			}
		})
	}
}

// TestArenaLifecycle checks the instruction arena's accounting over a run
// with heavy speculation: every record handed out comes back (modulo the
// bounded number still in flight when the run stops), the free list is
// actually recycling, and the arena footprint stays near the machine's
// in-flight capacity instead of scaling with run length.
func TestArenaLifecycle(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(DefaultConfig(GALS), prof)
	st := core.Run(30_000)
	ps := core.PoolStats()
	if ps.Gets == 0 {
		t.Fatal("arena unused: the generator did not pool")
	}
	if ps.Gets < st.Fetched {
		t.Errorf("arena gets %d < fetched %d", ps.Gets, st.Fetched)
	}
	if ps.Reuses == 0 {
		t.Error("free list never recycled a record")
	}
	// Everything not still queued in a link/IQ/ROB at stop time was released.
	if live := ps.Live(); live > 2_000 {
		t.Errorf("%d records live at end of run; leak in a release path", live)
	}
	// Chunks bound the arena's footprint: must track in-flight capacity
	// (hundreds of records), not the ~45k records fetched.
	if ps.Chunks > 4 {
		t.Errorf("arena grew to %d chunks; recycling is not keeping up", ps.Chunks)
	}
}

// TestRetainInstrsKeepsRecords: with RetainInstrs, an OnCommit hook may hold
// *Instr past the call — records must stay intact (no recycling) and the
// results must be identical to the pooled run.
func TestRetainInstrsKeepsRecords(t *testing.T) {
	prof, err := workload.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	pooled := NewCore(DefaultConfig(GALS), prof).Run(8_000)

	core := NewCore(DefaultConfig(GALS), prof)
	core.RetainInstrs()
	var kept []*isa.Instr
	core.OnCommit(func(in *isa.Instr) { kept = append(kept, in) })
	st := core.Run(8_000)

	if !reflect.DeepEqual(st, pooled) {
		t.Error("RetainInstrs changed simulation results")
	}
	if got := core.PoolStats(); got.Gets != 0 {
		t.Errorf("arena still active after RetainInstrs: %+v", got)
	}
	if uint64(len(kept)) != st.Committed {
		t.Fatalf("hook saw %d commits, stats %d", len(kept), st.Committed)
	}
	// Retained records must be distinct objects with intact program order
	// and generation 0 (never recycled) — a reused record would show a
	// repeated pointer, a reset Seq, or a bumped generation.
	seen := make(map[*isa.Instr]bool, len(kept))
	var lastSeq isa.Seq
	for i, in := range kept {
		if seen[in] {
			t.Fatalf("commit %d: record %p reused despite RetainInstrs", i, in)
		}
		seen[in] = true
		if in.Generation() != 0 {
			t.Fatalf("commit %d: retained record has generation %d", i, in.Generation())
		}
		if i > 0 && in.Seq <= lastSeq {
			t.Fatalf("commit %d: retained records corrupted (seq %d after %d)", i, in.Seq, lastSeq)
		}
		lastSeq = in.Seq
	}
}

// TestPooledMatchesRetained pins the arena's core safety property across
// both machine kinds and a dynamic-DVFS run: recycling records must produce
// bit-identical Stats to never recycling them.
func TestPooledMatchesRetained(t *testing.T) {
	prof, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Base, GALS} {
		cfg := DefaultConfig(kind)
		if kind == GALS {
			cfg.DynamicDVFS = DefaultDynamicDVFS()
		}
		pooled := NewCore(cfg, prof).Run(10_000)
		retained := NewCore(cfg, prof)
		retained.RetainInstrs()
		if got := retained.Run(10_000); !reflect.DeepEqual(got, pooled) {
			t.Errorf("%v: pooled and retained runs diverge", kind)
		}
	}
}
