package pipeline

import (
	"testing"

	"galsim/internal/isa"
	"galsim/internal/power"
	"galsim/internal/simtime"
	"galsim/internal/workload"
)

// TestCommitStreamInvariants checks, for both machines, the fundamental
// correctness properties of the committed instruction stream:
//
//  1. commits are in program order (strictly increasing sequence numbers);
//  2. no wrong-path instruction ever commits;
//  3. lifecycle timestamps are monotone: fetch <= decode <= dispatch <=
//     issue <= complete <= commit;
//  4. every committed instruction with sources saw them renamed (no dangling
//     physical indices);
//  5. FIFO residency never exceeds total slip.
func TestCommitStreamInvariants(t *testing.T) {
	for _, kind := range []Kind{Base, GALS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig(kind)
			prof, err := workload.ByName("gcc")
			if err != nil {
				t.Fatal(err)
			}
			core := NewCore(cfg, prof)
			var lastSeq isa.Seq
			n := 0
			core.OnCommit(func(in *isa.Instr) {
				n++
				if in.WrongPath {
					t.Fatalf("wrong-path instruction %d committed", in.Seq)
				}
				if in.Seq <= lastSeq && n > 1 {
					t.Fatalf("out-of-order commit: %d after %d", in.Seq, lastSeq)
				}
				lastSeq = in.Seq
				ts := []simtime.Time{in.FetchTime, in.DecodeTime, in.DispatchTime,
					in.IssueTime, in.CompleteTime, in.CommitTime}
				names := []string{"fetch", "decode", "dispatch", "issue", "complete", "commit"}
				for i := 1; i < len(ts); i++ {
					if ts[i] == simtime.Never {
						t.Fatalf("instr %d committed without a %s timestamp", in.Seq, names[i])
					}
					if ts[i] < ts[i-1] {
						t.Fatalf("instr %d: %s (%v) precedes %s (%v)",
							in.Seq, names[i], ts[i], names[i-1], ts[i-1])
					}
				}
				for _, s := range in.PhysSrc {
					if s < -1 || s >= cfg.PhysInt+cfg.PhysFP {
						t.Fatalf("instr %d: dangling physical source %d", in.Seq, s)
					}
				}
				if in.FIFOTime > in.Slip() {
					t.Fatalf("instr %d: FIFO residency %v exceeds slip %v",
						in.Seq, in.FIFOTime, in.Slip())
				}
			})
			st := core.Run(25_000)
			if uint64(n) != st.Committed {
				t.Errorf("hook saw %d commits, stats %d", n, st.Committed)
			}
		})
	}
}

// TestCommitOrderAcrossConfigs fuzzes several configurations and checks the
// machine completes and preserves commit ordering.
func TestCommitOrderAcrossConfigs(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.FIFOSyncEdges = 1 },
		func(c *Config) { c.FIFOSyncEdges = 3 },
		func(c *Config) { c.FIFOCapacity = 4 },
		func(c *Config) { c.ZeroPhases = true },
		func(c *Config) { c.LinkStyle = LinkStretch },
		func(c *Config) { c.ROBSize = 16 },
		func(c *Config) { c.IntIQSize, c.FPIQSize, c.MemIQSize = 4, 4, 4 },
		func(c *Config) { c.CommitWidth = 1 },
		func(c *Config) { c.FetchWidth = 1 },
		func(c *Config) { c.Slowdowns = [NumDomains]float64{1.3, 1.0, 2.0, 3.0, 1.1} },
	}
	prof, _ := workload.ByName("li")
	for i, mut := range muts {
		cfg := DefaultConfig(GALS)
		mut(&cfg)
		core := NewCore(cfg, prof)
		var last isa.Seq
		first := true
		core.OnCommit(func(in *isa.Instr) {
			if !first && in.Seq <= last {
				t.Fatalf("config %d: commit order violated", i)
			}
			first = false
			last = in.Seq
		})
		st := core.Run(6_000)
		if st.Committed != 6_000 {
			t.Errorf("config %d committed %d", i, st.Committed)
		}
	}
}

// TestStretchLinkMachineSlower quantifies §3.2 at machine level.
func TestStretchLinkMachineSlower(t *testing.T) {
	prof, _ := workload.ByName("compress")
	fifoCfg := DefaultConfig(GALS)
	fifoSt := NewCore(fifoCfg, prof).Run(15_000)
	stretchCfg := DefaultConfig(GALS)
	stretchCfg.LinkStyle = LinkStretch
	stretchSt := NewCore(stretchCfg, prof).Run(15_000)
	if stretchSt.SimTime <= fifoSt.SimTime {
		t.Errorf("stretch-clocked machine (%v) not slower than FIFO machine (%v)",
			stretchSt.SimTime, fifoSt.SimTime)
	}
}

// TestDomainCycleAccounting checks that each domain's counted cycles agree
// with its clock: cycles ≈ simulated time / period (GALS domains tick
// independently; a 2x-slowed domain must count half the cycles).
func TestDomainCycleAccounting(t *testing.T) {
	cfg := DefaultConfig(GALS)
	cfg.Slowdowns[DomFP] = 2.0
	prof, _ := workload.ByName("perl")
	st := NewCore(cfg, prof).Run(10_000)
	simNs := st.SimTime.Nanoseconds()
	for d := DomainID(0); d < NumDomains; d++ {
		expected := simNs / cfg.Slowdowns[d] // nominal period is 1ns
		got := float64(st.Cycles[d])
		if got < expected*0.98 || got > expected*1.02+2 {
			t.Errorf("domain %v: %v cycles, expected ~%.0f", d, got, expected)
		}
	}
}

// TestEnergyAccountingClosed: the per-block breakdown always sums to the
// total, and clock-grid energy scales with the domain's cycle count.
func TestEnergyAccountingClosed(t *testing.T) {
	for _, kind := range []Kind{Base, GALS} {
		cfg := DefaultConfig(kind)
		prof, _ := workload.ByName("compress")
		st := NewCore(cfg, prof).Run(10_000)
		var sum float64
		for _, e := range st.EnergyBreakdown {
			sum += e
		}
		if d := (sum - st.EnergyPJ) / st.EnergyPJ; d > 1e-12 || d < -1e-12 {
			t.Errorf("%v: breakdown sums to %.6g, total %.6g", kind, sum, st.EnergyPJ)
		}
		// Grid energy per cycle is a constant at nominal voltage.
		perCycle := st.EnergyBreakdown[power.BlockFetchClock] / float64(st.Cycles[DomFetch])
		want := cfg.Power.Blocks[power.BlockFetchClock].PerAccess
		if perCycle < want*0.999 || perCycle > want*1.001 {
			t.Errorf("%v: fetch grid %.3f pJ/cycle, want %.3f", kind, perCycle, want)
		}
	}
}

// TestOnCommitAfterRunPanics guards hook registration discipline.
func TestOnCommitAfterRunPanics(t *testing.T) {
	prof, _ := workload.ByName("compress")
	core := NewCore(DefaultConfig(Base), prof)
	core.Run(100)
	defer func() {
		if recover() == nil {
			t.Error("OnCommit after Run did not panic")
		}
	}()
	core.OnCommit(func(*isa.Instr) {})
}
