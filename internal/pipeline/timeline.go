package pipeline

import (
	"fmt"

	"galsim/internal/simtime"
	"galsim/internal/timeline"
)

// timelineState is the core's connection to an attached timeline.Recorder.
// Every tap site in the simulation loop is guarded by a single predictable
// `if c.tl != nil` branch — the same discipline as the interval sampler —
// so with tracing off the allocation-free hot path is untouched.
//
// Track layout (one Perfetto process, "galsim sim"):
//   - one thread track per clock domain (retune instants, squash observes)
//   - one thread track per cross-domain instruction link (stall and
//     backpressure windows; push/pop instants in detail mode)
//   - one "squash/recovery" track holding the recovery span of each
//     branch misprediction, from resolve to the last domain's observe
//   - counter tracks for IQ/ROB occupancy and per-domain slowdown (ppm);
//     detail mode adds per-link FIFO depth counters
type timelineState struct {
	rec            *timeline.Recorder
	detail         bool
	stallThreshold uint64

	trkDomain   [NumDomains]timeline.TrackID
	trkSquash   timeline.TrackID
	trkF2D      timeline.TrackID
	trkDispatch [NumDomains]timeline.TrackID
	trkComplete [NumDomains]timeline.TrackID

	ctrF2D      timeline.TrackID
	ctrDispatch [NumDomains]timeline.TrackID
	ctrComplete [NumDomains]timeline.TrackID
	ctrIQ       [NumDomains]timeline.TrackID
	ctrROB      timeline.TrackID
	ctrSlowdown [NumDomains]timeline.TrackID

	nRetune       timeline.NameID
	nStall        timeline.NameID
	nICache       timeline.NameID
	nBackpressure timeline.NameID
	nRecovery     timeline.NameID
	nObserve      timeline.NameID
	nPush         timeline.NameID
	nPop          timeline.NameID
	nStallTrip    timeline.NameID

	// Open-window state, so multi-cycle conditions become one B/E pair.
	openICache    bool
	openFetchLink bool
	openDispatch  [NumDomains]bool
	openBack      [NumDomains]bool
	openSquash    bool

	// Last emitted counter values; counters record transitions only.
	lastF2D      int
	lastROB      int
	lastDispatch [NumDomains]int
	lastComplete [NumDomains]int
	lastIQ       [NumDomains]int
	stallTripped bool
}

// AttachTimeline connects a recorder to the core. Must be called before
// Run, like OnCommit. The stall threshold (decode cycles without a commit)
// marks the recorder triggered for a flight-recorder dump; 0 disables the
// trigger. detail additionally records per-item push/pop instants on the
// cross-domain instruction links.
func (c *Core) AttachTimeline(rec *timeline.Recorder, detail bool, stallThreshold uint64) {
	if c.started {
		panic("pipeline: AttachTimeline after Run")
	}
	if rec == nil {
		c.tl = nil
		return
	}
	t := &timelineState{rec: rec, detail: detail, stallThreshold: stallThreshold}
	const proc = "galsim sim"
	for d := DomainID(0); d < NumDomains; d++ {
		t.trkDomain[d] = rec.RegisterTrack(proc, fmt.Sprintf("domain %v", d), false)
	}
	t.trkSquash = rec.RegisterTrack(proc, "squash/recovery", false)
	t.trkF2D = rec.RegisterTrack(proc, "link fetch->decode", false)
	for _, d := range execDomains {
		t.trkDispatch[d] = rec.RegisterTrack(proc, fmt.Sprintf("link dispatch->%v", d), false)
		t.trkComplete[d] = rec.RegisterTrack(proc, fmt.Sprintf("link complete<-%v", d), false)
	}
	t.ctrF2D = rec.RegisterTrack(proc, "len fetch->decode", true)
	for _, d := range execDomains {
		t.ctrDispatch[d] = rec.RegisterTrack(proc, fmt.Sprintf("len dispatch->%v", d), true)
		t.ctrComplete[d] = rec.RegisterTrack(proc, fmt.Sprintf("len complete<-%v", d), true)
		t.ctrIQ[d] = rec.RegisterTrack(proc, fmt.Sprintf("occ %v-iq", d), true)
	}
	t.ctrROB = rec.RegisterTrack(proc, "occ rob", true)
	for d := DomainID(0); d < NumDomains; d++ {
		t.ctrSlowdown[d] = rec.RegisterTrack(proc, fmt.Sprintf("slowdown %v (ppm)", d), true)
	}
	t.nRetune = rec.InternName("retune")
	t.nStall = rec.InternName("stall")
	t.nICache = rec.InternName("icache-stall")
	t.nBackpressure = rec.InternName("backpressure")
	t.nRecovery = rec.InternName("recovery")
	t.nObserve = rec.InternName("observe")
	t.nPush = rec.InternName("push")
	t.nPop = rec.InternName("pop")
	t.nStallTrip = rec.InternName("stall-threshold")

	// Baseline counters at t=0: empty structures, current slowdowns.
	t.lastF2D, t.lastROB = -1, -1
	for d := range t.lastIQ {
		t.lastIQ[d], t.lastDispatch[d], t.lastComplete[d] = -1, -1, -1
	}
	for d := DomainID(0); d < NumDomains; d++ {
		rec.Record(0, timeline.KindCounter, t.ctrSlowdown[d], 0, ppm(c.clocks[d].Slowdown()))
	}
	c.tl = t
}

func ppm(x float64) int64 { return int64(x * 1e6) }

// retune records the retune instant on every domain track of clock group g
// plus the new slowdown on the domains' counter tracks.
func (t *timelineState) retune(c *Core, g int, now simtime.Time, slow float64) {
	v := ppm(slow)
	for d := DomainID(0); d < NumDomains; d++ {
		if c.topo.Of[d] != g {
			continue
		}
		t.rec.Record(now, timeline.KindInstant, t.trkDomain[d], t.nRetune, v)
		t.rec.Record(now, timeline.KindCounter, t.ctrSlowdown[d], 0, v)
	}
}

// squashBegin opens the recovery span when a mispredicted branch resolves.
func (t *timelineState) squashBegin(now simtime.Time, seq int64) {
	if t.openSquash {
		return
	}
	t.openSquash = true
	t.rec.Record(now, timeline.KindBegin, t.trkSquash, t.nRecovery, seq)
}

// observe marks domain d acting on the pending squash.
func (t *timelineState) observe(d DomainID, now simtime.Time) {
	t.rec.Record(now, timeline.KindInstant, t.trkDomain[d], t.nObserve, 0)
}

// squashEnd closes the recovery span once every domain has observed.
func (t *timelineState) squashEnd(now simtime.Time) {
	if !t.openSquash {
		return
	}
	t.openSquash = false
	t.rec.Record(now, timeline.KindEnd, t.trkSquash, t.nRecovery, 0)
}

// The window begin/end taps below are split into an inlinable guard and a
// slow path: most ticks re-assert an unchanged condition, and keeping the
// guard small enough to inline makes the steady-state tap a single array
// load and compare at the call site.

func (t *timelineState) icacheStallBegin(now simtime.Time) {
	if t.openICache {
		return
	}
	t.openWindow(&t.openICache, now, t.trkDomain[DomFetch], t.nICache)
}

func (t *timelineState) icacheStallEnd(now simtime.Time) {
	if !t.openICache {
		return
	}
	t.closeWindow(&t.openICache, now, t.trkDomain[DomFetch], t.nICache)
}

func (t *timelineState) fetchLinkStallBegin(now simtime.Time) {
	if t.openFetchLink {
		return
	}
	t.openWindow(&t.openFetchLink, now, t.trkF2D, t.nStall)
}

func (t *timelineState) fetchLinkStallEnd(now simtime.Time) {
	if !t.openFetchLink {
		return
	}
	t.closeWindow(&t.openFetchLink, now, t.trkF2D, t.nStall)
}

func (t *timelineState) dispatchStallBegin(d DomainID, now simtime.Time) {
	if t.openDispatch[d] {
		return
	}
	t.openWindow(&t.openDispatch[d], now, t.trkDispatch[d], t.nStall)
}

func (t *timelineState) dispatchStallEnd(d DomainID, now simtime.Time) {
	if !t.openDispatch[d] {
		return
	}
	t.closeWindow(&t.openDispatch[d], now, t.trkDispatch[d], t.nStall)
}

func (t *timelineState) backpressureBegin(d DomainID, now simtime.Time) {
	if t.openBack[d] {
		return
	}
	t.openWindow(&t.openBack[d], now, t.trkComplete[d], t.nBackpressure)
}

func (t *timelineState) backpressureEnd(d DomainID, now simtime.Time) {
	if !t.openBack[d] {
		return
	}
	t.closeWindow(&t.openBack[d], now, t.trkComplete[d], t.nBackpressure)
}

func (t *timelineState) openWindow(open *bool, now simtime.Time, trk timeline.TrackID, name timeline.NameID) {
	*open = true
	t.rec.Record(now, timeline.KindBegin, trk, name, 0)
}

func (t *timelineState) closeWindow(open *bool, now simtime.Time, trk timeline.TrackID, name timeline.NameID) {
	*open = false
	t.rec.Record(now, timeline.KindEnd, trk, name, 0)
}

// push / pop are the detail-mode per-item instants on instruction links.
func (t *timelineState) push(trk timeline.TrackID, now simtime.Time, seq int64) {
	t.rec.Record(now, timeline.KindInstant, trk, t.nPush, seq)
}

func (t *timelineState) pop(trk timeline.TrackID, now simtime.Time, seq int64) {
	t.rec.Record(now, timeline.KindInstant, trk, t.nPop, seq)
}

// counter emits a counter sample when the value changed.
func (t *timelineState) counter(last *int, trk timeline.TrackID, v int, now simtime.Time) {
	if *last == v {
		return
	}
	*last = v
	t.rec.Record(now, timeline.KindCounter, trk, 0, int64(v))
}

// observeOccupancy records occupancy transitions for the structures owned
// by the ticking clock domain: issue-queue and ROB occupancy, plus — in
// detail mode — the per-link FIFO depths. Link depths toggle on nearly
// every transfer, so like the push/pop instants they ride the detail
// flag; standard mode keeps link behaviour visible through the
// stall/backpressure windows at a fraction of the event volume. Called
// once per domain tick, after all stages ran.
func (t *timelineState) observeOccupancy(c *Core, hasFetch, hasDecode bool, execs []DomainID, now simtime.Time) {
	if hasDecode {
		t.counter(&t.lastROB, t.ctrROB, c.rob.Len(), now)
	}
	for _, d := range execs {
		t.counter(&t.lastIQ[d], t.ctrIQ[d], c.exec[d].queue.Len(), now)
	}
	if !t.detail {
		return
	}
	if hasFetch {
		t.counter(&t.lastF2D, t.ctrF2D, c.fetchToDecode.Len(), now)
	}
	for _, d := range execs {
		t.counter(&t.lastDispatch[d], t.ctrDispatch[d], c.dispatch[d].Len(), now)
		t.counter(&t.lastComplete[d], t.ctrComplete[d], c.complete[d].Len(), now)
	}
}

// checkStallTrigger fires the flight-recorder trigger the first time the
// commit-starvation counter crosses the configured threshold.
func (t *timelineState) checkStallTrigger(c *Core) {
	if t.stallThreshold == 0 || t.stallTripped {
		return
	}
	if c.decodeCycles-c.lastProgress < t.stallThreshold {
		return
	}
	t.stallTripped = true
	t.rec.MarkTriggered()
	t.rec.Record(c.eng.Now(), timeline.KindInstant, t.trkDomain[DomDecode], t.nStallTrip,
		int64(c.decodeCycles-c.lastProgress))
}
