package pipeline

import (
	"fmt"
	"math/rand"

	"galsim/internal/simtime"
)

// This file defines the clock-domain topology layer: the five pipeline
// structures of Figure 3(b) (DomainID values — fetch, decode/rename/commit,
// integer, FP, memory) are fixed, but which *clock domain* each structure
// belongs to is configuration. The base machine is the topology that puts
// every structure in one domain under a global clock grid; the paper's GALS
// machine is the topology with one domain per structure; and any other
// partitioning — a merged front end, a unified execution cluster — is just
// another Topology value. Structures that share a domain communicate through
// synchronous pipe latches; structures in different domains communicate
// through mixed-clock FIFOs (or stretchable-clock handshakes).

// LinkClass identifies one class of inter-structure communication link, for
// per-class capacity and synchronizer-depth overrides. The indices match the
// debugEdges ablation order.
type LinkClass uint8

// Link classes.
const (
	// LinkClassFetch is the fetch -> decode instruction stream.
	LinkClassFetch LinkClass = iota
	// LinkClassDispatch covers the decode -> execution-cluster dispatch links.
	LinkClassDispatch
	// LinkClassComplete covers the execution-cluster -> decode writeback links.
	LinkClassComplete
	// LinkClassWakeup covers the cross-cluster register wakeup tag links.
	LinkClassWakeup
	// NumLinkClasses is the number of link classes.
	NumLinkClasses
)

// String implements fmt.Stringer.
func (l LinkClass) String() string {
	switch l {
	case LinkClassFetch:
		return "fetch"
	case LinkClassDispatch:
		return "dispatch"
	case LinkClassComplete:
		return "complete"
	case LinkClassWakeup:
		return "wakeup"
	default:
		return fmt.Sprintf("linkclass(%d)", uint8(l))
	}
}

// VoltPoint is one entry of a clock domain's voltage table: the supply
// voltage the domain runs at when its clock is slowed by Slowdown.
type VoltPoint struct {
	Slowdown float64
	Voltage  float64
}

// TopoDomain is one clock domain of a Topology.
type TopoDomain struct {
	// Name labels the domain's clock (diagnostics, slowdown keys).
	Name string
	// Nominal is the domain's full-speed clock period; 0 selects the
	// machine-wide Config.NominalPeriod.
	Nominal simtime.Duration
	// Scalable marks the domain eligible for the online DVFS controller
	// (which still only runs when Config.DynamicDVFS.Enable is set). Only
	// domains consisting solely of execution structures may be scalable:
	// their issue queues provide the occupancy feedback signal.
	Scalable bool
	// VoltTable, when non-empty, replaces the Equation 1 solver for this
	// domain: the supply voltage for a slowdown is interpolated from these
	// points (sorted by ascending slowdown) instead of computed from the
	// delay model. Voltages must not exceed the nominal supply.
	VoltTable []VoltPoint
}

// LinkParams overrides one link class's queue geometry; zero fields keep the
// machine-wide defaults (Config.FIFOCapacity / Config.FIFOSyncEdges, or the
// latch defaults for same-domain links).
type LinkParams struct {
	Capacity  int
	SyncEdges int
}

// Topology assigns the pipeline structures to clock domains.
type Topology struct {
	// Domains lists the clock domains. Order is semantic: it fixes the
	// random starting-phase draws, the tick priority ranking of simultaneous
	// edges, and the DVFS controller's scan order.
	Domains []TopoDomain
	// Of maps each pipeline structure to its domain index.
	Of [NumDomains]int
	// GlobalGrid charges the global clock distribution grid every cycle: the
	// synchronous chip's chip-wide clock network (21264-style hierarchy).
	// GALS-style machines have only the per-structure local grids.
	GlobalGrid bool
	// Links holds per-class link overrides.
	Links [NumLinkClasses]LinkParams
}

// BaseTopology is the fully synchronous machine: every structure in one
// "core" domain, clocked through a global grid plus the five local grids.
func BaseTopology() Topology {
	return Topology{
		Domains:    []TopoDomain{{Name: "core"}},
		GlobalGrid: true,
	}
}

// GALSTopology is the paper's Figure 3(b) machine: one clock domain per
// structure, execution domains scalable by the dynamic DVFS controller.
func GALSTopology() Topology {
	t := Topology{
		Domains: []TopoDomain{
			{Name: DomFetch.String()},
			{Name: DomDecode.String()},
			{Name: DomInt.String(), Scalable: true},
			{Name: DomFP.String(), Scalable: true},
			{Name: DomMem.String(), Scalable: true},
		},
	}
	for d := range t.Of {
		t.Of[d] = d
	}
	return t
}

// kind labels the topology for statistics: a single clock domain is a
// synchronous ("base"-kind) machine, anything partitioned is GALS-kind.
func (t Topology) kind() Kind {
	if len(t.Domains) == 1 {
		return Base
	}
	return GALS
}

// Synchronous reports whether the whole machine shares one clock.
func (t Topology) Synchronous() bool { return len(t.Domains) == 1 }

// Cross reports whether a link from structure a to structure b crosses a
// clock-domain boundary.
func (t Topology) Cross(a, b DomainID) bool { return t.Of[a] != t.Of[b] }

// structuresOf returns the structures owned by domain g, in DomainID order.
func (t Topology) structuresOf(g int) []DomainID {
	var out []DomainID
	for d := DomainID(0); d < NumDomains; d++ {
		if t.Of[d] == g {
			out = append(out, d)
		}
	}
	return out
}

// tickPrio is the canonical intra-instant ordering of simultaneous clock
// edges: commit-side domains first. Any fixed order is legal for truly
// asynchronous clocks; this one is the order the golden runs were taken
// with.
var tickPrio = [NumDomains]int{DomDecode: 0, DomInt: 1, DomFP: 2, DomMem: 3, DomFetch: 4}

// priorities ranks the domains for simultaneous-edge ordering: each domain
// gets the rank of its most commit-side structure.
func (t Topology) priorities() []int {
	type dp struct{ g, p int }
	best := make([]dp, len(t.Domains))
	for g := range t.Domains {
		best[g] = dp{g, int(NumDomains)}
	}
	for d := DomainID(0); d < NumDomains; d++ {
		if p := tickPrio[d]; p < best[t.Of[d]].p {
			best[t.Of[d]].p = p
		}
	}
	// Rank by best structure priority (insertion sort over <= 5 entries;
	// domain index breaks ties, though distinct domains can never tie).
	order := make([]dp, len(best))
	copy(order, best)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].p < order[j-1].p; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	prio := make([]int, len(t.Domains))
	for rank, e := range order {
		prio[e.g] = rank
	}
	return prio
}

// Validate reports the first structural problem with the topology. Voltage
// ceilings are checked by Config.Validate, which knows the DVFS model.
func (t Topology) Validate() error {
	if len(t.Domains) == 0 {
		return fmt.Errorf("pipeline: topology has no clock domains")
	}
	if len(t.Domains) > int(NumDomains) {
		return fmt.Errorf("pipeline: topology has %d clock domains for %d structures; every domain must own at least one structure",
			len(t.Domains), NumDomains)
	}
	if t.GlobalGrid && len(t.Domains) != 1 {
		return fmt.Errorf("pipeline: a global clock grid implies a single clock domain (got %d); partitioned machines have only local grids", len(t.Domains))
	}
	seen := map[string]bool{}
	for g, dom := range t.Domains {
		if dom.Name == "" {
			return fmt.Errorf("pipeline: clock domain %d has no name", g)
		}
		if seen[dom.Name] {
			return fmt.Errorf("pipeline: duplicate clock domain name %q", dom.Name)
		}
		seen[dom.Name] = true
		if dom.Nominal < 0 {
			return fmt.Errorf("pipeline: clock domain %q nominal period %v is negative", dom.Name, dom.Nominal)
		}
		for i, p := range dom.VoltTable {
			if p.Slowdown < 1 {
				return fmt.Errorf("pipeline: clock domain %q voltage point %d: slowdown %v < 1", dom.Name, i, p.Slowdown)
			}
			if i > 0 && p.Slowdown <= dom.VoltTable[i-1].Slowdown {
				return fmt.Errorf("pipeline: clock domain %q voltage table must have strictly increasing slowdowns", dom.Name)
			}
			if p.Voltage <= 0 {
				return fmt.Errorf("pipeline: clock domain %q voltage point %d: voltage %v must be positive", dom.Name, i, p.Voltage)
			}
		}
	}
	used := make([]bool, len(t.Domains))
	for d := DomainID(0); d < NumDomains; d++ {
		g := t.Of[d]
		if g < 0 || g >= len(t.Domains) {
			return fmt.Errorf("pipeline: structure %v assigned to domain index %d (have %d domains)", d, g, len(t.Domains))
		}
		used[g] = true
	}
	for g, ok := range used {
		if !ok {
			return fmt.Errorf("pipeline: clock domain %q owns no pipeline structure", t.Domains[g].Name)
		}
	}
	for g, dom := range t.Domains {
		if !dom.Scalable {
			continue
		}
		for _, d := range t.structuresOf(g) {
			if d != DomInt && d != DomFP && d != DomMem {
				return fmt.Errorf("pipeline: clock domain %q is marked scalable but owns structure %v; only execution structures (int, fp, mem) provide the issue-queue feedback the DVFS controller needs", dom.Name, d)
			}
		}
	}
	for cl := LinkClass(0); cl < NumLinkClasses; cl++ {
		lp := t.Links[cl]
		if lp.Capacity < 0 || lp.SyncEdges < 0 {
			return fmt.Errorf("pipeline: link class %v capacity (%d) and sync edges (%d) must be non-negative",
				cl, lp.Capacity, lp.SyncEdges)
		}
	}
	return nil
}

// nominalPeriod returns domain g's full-speed period under cfg.
func (t Topology) nominalPeriod(g int, cfg Config) simtime.Duration {
	if p := t.Domains[g].Nominal; p > 0 {
		return p
	}
	return cfg.NominalPeriod
}

// randomPhases derives the per-clock-domain starting phases: zero for a
// fully synchronous machine (and under the ZeroPhases ablation), otherwise
// one uniform draw per domain in declaration order (§4.2: "the starting
// phase of each clock was set to a random value").
func (t Topology) randomPhases(cfg Config, periods []simtime.Duration) []simtime.Time {
	phases := make([]simtime.Time, len(t.Domains))
	if t.Synchronous() || cfg.ZeroPhases {
		return phases
	}
	rng := rand.New(rand.NewSource(cfg.PhaseSeed))
	for g := range phases {
		phases[g] = simtime.Time(rng.Int63n(int64(periods[g])))
	}
	return phases
}
