// Package pipeline implements the simulated processor: the 8-stage,
// 4-wide out-of-order superscalar machine of the paper's Tables 2 and 3,
// buildable in two variants that share every structural parameter:
//
//   - Base: fully synchronous; one clock drives all logic, pipe stages are
//     ordinary clocked latches, and the clock distribution network is a
//     global grid plus five local grids (21264-style hierarchy).
//
//   - GALS: five clock domains per Figure 3(b) — (1) fetch: I-cache + branch
//     prediction, (2) decode/rename/commit, (3) integer issue queue + ALUs,
//     (4) FP issue queue + FP units, (5) memory issue queue + D-cache + L2 —
//     communicating through mixed-clock FIFOs; each domain has its own local
//     clock grid, its own (possibly scaled) frequency, and its own supply
//     voltage; there is no global grid.
//
// The two variants are wired identically; only the link factory (SyncLatch
// vs MixedClockFIFO) and the clock/grid structure differ, which is exactly
// the comparison methodology of the paper.
package pipeline

import (
	"fmt"

	"galsim/internal/bpred"
	"galsim/internal/cache"
	"galsim/internal/dvfs"
	"galsim/internal/power"
	"galsim/internal/simtime"
	"galsim/internal/workload"
)

// LinkStyle selects the inter-domain communication mechanism of the GALS
// machine.
type LinkStyle uint8

// Link styles.
const (
	// LinkFIFO uses Chelcea-Nowick style mixed-clock FIFOs (§3.2, the
	// paper's choice: low latency and full steady-state throughput).
	LinkFIFO LinkStyle = iota
	// LinkStretch uses stretchable-clock handshakes (§3.2's alternative):
	// each transaction occupies the channel for a full handshake, so
	// communication rate bounds effective frequency.
	LinkStretch
)

// String implements fmt.Stringer.
func (l LinkStyle) String() string {
	if l == LinkStretch {
		return "stretch"
	}
	return "fifo"
}

// MemDisambiguation selects the memory cluster's load/store ordering
// policy (the LSQ model).
type MemDisambiguation uint8

// Disambiguation policies.
const (
	// DisambigPerfect lets loads issue as soon as their address operand is
	// ready: an oracle memory-dependence predictor (the study's model; with
	// trace-driven addressing no load ever reads a stale value).
	DisambigPerfect MemDisambiguation = iota
	// DisambigConservative blocks a load while ANY older store in the
	// memory issue queue has not yet computed its address.
	DisambigConservative
	// DisambigAddrMatch blocks a load only while an older un-issued store
	// to the same 8-byte block sits in the queue (idealized store-set
	// behaviour).
	DisambigAddrMatch
)

// String implements fmt.Stringer.
func (m MemDisambiguation) String() string {
	switch m {
	case DisambigConservative:
		return "conservative"
	case DisambigAddrMatch:
		return "addr-match"
	default:
		return "perfect"
	}
}

// Kind selects the machine variant.
type Kind uint8

// Machine variants.
const (
	Base Kind = iota
	GALS
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Base {
		return "base"
	}
	return "gals"
}

// DomainID names the five logical synchronous blocks. In the base machine
// they all share one physical clock; in the GALS machine each has its own.
type DomainID uint8

// Clock domains, per Figure 3(b).
const (
	DomFetch DomainID = iota
	DomDecode
	DomInt
	DomFP
	DomMem
	NumDomains
)

// String implements fmt.Stringer.
func (d DomainID) String() string {
	switch d {
	case DomFetch:
		return "fetch"
	case DomDecode:
		return "decode"
	case DomInt:
		return "int"
	case DomFP:
		return "fp"
	case DomMem:
		return "mem"
	default:
		return fmt.Sprintf("domain(%d)", uint8(d))
	}
}

// Config parameterizes a machine. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Kind is a legacy variant label; the machine's actual clock structure
	// lives in Topology. DefaultConfig keeps the two consistent; code that
	// sets Topology directly may leave Kind at its DefaultConfig value (the
	// run's statistics label is derived from the topology, not this field).
	Kind Kind

	// Topology assigns the five pipeline structures to clock domains and
	// carries per-domain and per-link-class settings. nil selects the
	// variant implied by Kind (BaseTopology or GALSTopology), which keeps
	// configurations written before the topology layer working unchanged.
	Topology *Topology

	// Widths (instructions per cycle).
	FetchWidth  int
	DecodeWidth int
	RenameWidth int
	CommitWidth int

	// Issue resources per execution domain.
	IntIssueWidth int // integer ALUs
	FPIssueWidth  int // FP units
	MemIssueWidth int // D-cache ports

	// Window sizes (Table 3).
	IntIQSize int
	FPIQSize  int
	MemIQSize int
	ROBSize   int

	// Physical register file sizes. Table 3 specifies 72 integer and 72 FP
	// *rename* registers; adding the 32 architectural registers of each file
	// gives 104 physical registers (the 21264 similarly had 80 integer
	// physical registers for 31 architectural).
	PhysInt int
	PhysFP  int

	// NominalPeriod is the full-speed clock period (1 ns = 1 GHz).
	NominalPeriod simtime.Duration

	// Slowdowns stretches each structure's clock: period = factor × nominal,
	// factor >= 1. Structures that share a clock domain must carry equal
	// factors (in the fully synchronous machine that is all of them: the
	// single global clock).
	Slowdowns [NumDomains]float64

	// AutoVoltage derives each domain's supply voltage from its slowdown via
	// the dvfs model (the multiple-voltage experiments); when false every
	// domain stays at nominal voltage (frequency-only scaling).
	AutoVoltage bool

	// PhaseSeed seeds the random starting phase of each GALS local clock
	// (§4.2: "the starting phase of each clock was set to a random value").
	// The base machine's single clock always starts at phase 0.
	PhaseSeed int64

	// ZeroPhases forces every GALS clock to phase 0 (an ablation aid: with
	// equal frequencies the domains then tick in lockstep and all latency
	// differences come from the synchronizers alone).
	ZeroPhases bool

	// Communication fabric.
	FIFOCapacity  int // mixed-clock FIFO depth (GALS)
	FIFOSyncEdges int // synchronizer depth in consumer edges (2 = two-flop)
	LatchCapacity int // pipe-stage queue depth (base)

	// DynamicDVFS enables the online per-domain frequency/voltage controller
	// (GALS only): the application-driven dynamic scaling the paper's
	// conclusion anticipates.
	DynamicDVFS DynamicDVFSConfig

	// MemDisambig selects the memory cluster's load/store ordering policy
	// (default: perfect disambiguation, as an oracle predictor would give).
	MemDisambig MemDisambiguation

	// LinkStyle selects the GALS inter-domain communication mechanism:
	// mixed-clock FIFOs (the paper's choice) or stretchable-clock handshakes
	// (the §3.2 alternative, provided for the ablation that shows why the
	// paper rejected it). Ignored by the base machine.
	LinkStyle LinkStyle

	// StretchHandshake is the duration of one stretchable-clock transaction
	// (LinkStyle == LinkStretch). Zero selects 1.5x the nominal period.
	StretchHandshake simtime.Duration

	// StretchWidth is the number of items one stretched transaction carries.
	// Zero selects the machine width (4).
	StretchWidth int

	// Subsystem configurations.
	Bpred  bpred.Config
	Caches cache.HierarchyConfig
	Power  power.Params
	DVFS   dvfs.Params

	// debugEdges, when non-nil, overrides FIFOSyncEdges per link class for
	// ablation: [fetch, dispatch, complete, wakeup].
	debugEdges *[4]int

	// WorkloadSeed seeds the synthetic benchmark generator.
	WorkloadSeed int64

	// MaxCycles aborts a run that fails to commit (deadlock guard): the run
	// panics if this many decode-domain cycles pass without a commit.
	MaxStallCycles int

	// SampleInterval, when non-zero, snapshots the machine's internal state
	// every that many decode cycles into Stats.Samples (see Sample). Zero —
	// the default — disables sampling entirely and keeps the hot path
	// allocation-free. Non-zero values below 100 cycles are rejected by
	// Validate: they would record more sampler output than simulation.
	SampleInterval uint64
}

// DefaultConfig returns the paper's machine (Tables 2 and 3) in the given
// variant at full speed.
func DefaultConfig(kind Kind) Config {
	topo := BaseTopology()
	if kind == GALS {
		topo = GALSTopology()
	}
	cfg := Config{
		Kind:        kind,
		Topology:    &topo,
		FetchWidth:  4,
		DecodeWidth: 4,
		RenameWidth: 4,
		CommitWidth: 4,

		IntIssueWidth: 4,
		FPIssueWidth:  4,
		MemIssueWidth: 2,

		IntIQSize: 20,
		FPIQSize:  16,
		MemIQSize: 16,
		ROBSize:   64,

		PhysInt: 72 + 32,
		PhysFP:  72 + 32,

		NominalPeriod: simtime.Nanosecond,
		AutoVoltage:   true,
		PhaseSeed:     1,

		FIFOCapacity:  16,
		FIFOSyncEdges: 2,
		LatchCapacity: 4,

		Bpred:  bpred.DefaultConfig(),
		Caches: cache.DefaultHierarchyConfig(),
		Power:  power.DefaultParams(),
		DVFS:   dvfs.Default,

		WorkloadSeed:   42,
		MaxStallCycles: 20_000,
	}
	for i := range cfg.Slowdowns {
		cfg.Slowdowns[i] = 1.0
	}
	return cfg
}

// Validate reports an error for an inconsistent configuration.
func (c Config) Validate() error {
	pos := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("pipeline: %s = %d must be positive", name, v)
		}
		return nil
	}
	checks := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth}, {"DecodeWidth", c.DecodeWidth},
		{"RenameWidth", c.RenameWidth}, {"CommitWidth", c.CommitWidth},
		{"IntIssueWidth", c.IntIssueWidth}, {"FPIssueWidth", c.FPIssueWidth},
		{"MemIssueWidth", c.MemIssueWidth}, {"IntIQSize", c.IntIQSize},
		{"FPIQSize", c.FPIQSize}, {"MemIQSize", c.MemIQSize},
		{"ROBSize", c.ROBSize}, {"FIFOCapacity", c.FIFOCapacity},
		{"FIFOSyncEdges", c.FIFOSyncEdges}, {"LatchCapacity", c.LatchCapacity},
		{"MaxStallCycles", c.MaxStallCycles},
	}
	for _, ch := range checks {
		if err := pos(ch.name, ch.v); err != nil {
			return err
		}
	}
	if c.NominalPeriod <= 0 {
		return fmt.Errorf("pipeline: NominalPeriod %v must be positive", c.NominalPeriod)
	}
	if c.SampleInterval != 0 && c.SampleInterval < 100 {
		return fmt.Errorf("pipeline: SampleInterval %d cycles too short (minimum 100, or 0 to disable)", c.SampleInterval)
	}
	for d, s := range c.Slowdowns {
		if s < 1 {
			return fmt.Errorf("pipeline: slowdown[%v] = %v < 1", DomainID(d), s)
		}
	}
	topo := c.topo()
	if err := topo.Validate(); err != nil {
		return err
	}
	// Structures on one clock must be stretched together.
	for g := range topo.Domains {
		owned := topo.structuresOf(g)
		for _, d := range owned[1:] {
			if c.Slowdowns[d] != c.Slowdowns[owned[0]] {
				return fmt.Errorf("pipeline: structures %v and %v share clock domain %q; slowdown[%v]=%v differs from slowdown[%v]=%v",
					owned[0], d, topo.Domains[g].Name, d, c.Slowdowns[d], owned[0], c.Slowdowns[owned[0]])
			}
		}
	}
	// Voltage-table ceilings need the DVFS model's nominal supply.
	for _, dom := range topo.Domains {
		for _, p := range dom.VoltTable {
			if p.Voltage > c.DVFS.VNominal {
				return fmt.Errorf("pipeline: clock domain %q voltage %v exceeds the nominal supply %v",
					dom.Name, p.Voltage, c.DVFS.VNominal)
			}
		}
	}
	if err := c.DVFS.Validate(); err != nil {
		return err
	}
	if c.DynamicDVFS.Enable {
		scalable := false
		for _, dom := range topo.Domains {
			scalable = scalable || dom.Scalable
		}
		if !scalable {
			return fmt.Errorf("pipeline: dynamic DVFS requires a machine with at least one scalable clock domain (the fully synchronous machine has a single clock)")
		}
	}
	if err := c.DynamicDVFS.Validate(); err != nil {
		return err
	}
	return c.Power.Validate()
}

// topo returns the machine's clock topology: the explicit one, or the
// variant implied by Kind.
func (c Config) topo() Topology {
	if c.Topology != nil {
		return *c.Topology
	}
	if c.Kind == GALS {
		return GALSTopology()
	}
	return BaseTopology()
}

// SetUniformSlowdown sets every domain to the same slowdown (used for the
// base machine and the "ideal" synchronous-DVS comparisons).
func (c *Config) SetUniformSlowdown(s float64) {
	for i := range c.Slowdowns {
		c.Slowdowns[i] = s
	}
}

// BenchmarkProfile is re-exported for convenience of callers configuring a
// run.
type BenchmarkProfile = workload.Profile
