package pipeline

// The interval sampler: an opt-in time-series of the machine's internal
// state, snapshotted on the decode clock every Config.SampleInterval decode
// cycles. It makes the paper's evaluation signals — per-domain issue-queue
// occupancy, inter-domain FIFO depths, and the dynamic-DVFS controller's
// slowdown trajectory — visible over time instead of only as end-of-run
// aggregates. Disabled (SampleInterval == 0, the default) it costs one
// predictable branch per decode cycle and zero allocations, keeping the
// allocation-free hot path intact.

// Sample is one interval snapshot. Rate-style fields (IPC, occupancy,
// stalls) cover the interval since the previous sample; Committed and the
// per-domain Cycles are cumulative.
type Sample struct {
	Cycle     uint64  `json:"cycle"`     // decode-domain cycle of the snapshot
	TimeNs    float64 `json:"time_ns"`   // simulated time of the snapshot
	Committed uint64  `json:"committed"` // cumulative committed instructions
	IPC       float64 `json:"ipc"`       // interval commits per decode cycle

	Domains [NumDomains]DomainSample `json:"domains"`
	Stalls  StallSample              `json:"stalls"`
}

// DomainSample is one clock/structure domain's state at a sample boundary.
// IPC is the interval instruction flow through the domain per domain cycle:
// fetched instructions for fetch, commits for decode, issues for the
// execution domains. IQ fields are zero for fetch/decode (no issue queue).
type DomainSample struct {
	Name      string  `json:"name"`
	Cycles    uint64  `json:"cycles"`     // cumulative domain clock cycles
	Slowdown  float64 `json:"slowdown"`   // current DVFS slowdown factor
	IPC       float64 `json:"ipc"`        // interval throughput per domain cycle
	IQLen     int     `json:"iq_len"`     // instantaneous issue-queue depth
	IQOcc     float64 `json:"iq_occ"`     // interval mean IQ occupancy fraction
	FIFODepth int     `json:"fifo_depth"` // instantaneous depth of the domain's inbound links
}

// StallSample is the interval delta of the machine-wide stall diagnostics.
type StallSample struct {
	FetchICache          uint64 `json:"fetch_icache"`
	FetchLinkFull        uint64 `json:"fetch_link_full"`
	RenameDispatchFull   uint64 `json:"rename_dispatch_full"`
	CompleteBackpressure uint64 `json:"complete_backpressure"`
	LoadsBlockedByStores uint64 `json:"loads_blocked"`
}

// samplerState carries the previous boundary's counter values so each
// sample reports interval deltas. It is separate from the DVFS controller's
// bookkeeping (dvfsState) even though both watch the same counters, so
// sampling never perturbs controller decisions.
type samplerState struct {
	lastCycle     uint64
	lastFetched   uint64
	lastCommitted uint64
	lastDomCycles [NumDomains]uint64
	lastIssues    [NumDomains]uint64
	lastOccSum    [NumDomains]uint64
	lastOccTicks  [NumDomains]uint64
	lastStalls    StallSample // absolute values at the last boundary
}

// maybeSample appends one Sample at each interval boundary. Called on the
// decode clock only when Config.SampleInterval > 0.
func (c *Core) maybeSample() {
	if c.decodeCycles-c.smp.lastCycle < c.cfg.SampleInterval {
		return
	}
	dc := c.decodeCycles - c.smp.lastCycle // == SampleInterval, except first
	s := Sample{
		Cycle:     c.decodeCycles,
		TimeNs:    c.eng.Now().Seconds() * 1e9,
		Committed: c.stats.Committed,
		IPC:       float64(c.stats.Committed-c.smp.lastCommitted) / float64(dc),
	}

	for d := DomainID(0); d < NumDomains; d++ {
		ds := &s.Domains[d]
		ds.Name = d.String()
		ds.Cycles = c.stats.Cycles[d]
		ds.Slowdown = c.clocks[d].Slowdown()
		cyc := ds.Cycles - c.smp.lastDomCycles[d]
		c.smp.lastDomCycles[d] = ds.Cycles
		var flow uint64
		switch d {
		case DomFetch:
			flow = c.stats.Fetched - c.smp.lastFetched
			c.smp.lastFetched = c.stats.Fetched
			ds.FIFODepth = c.fetchToDecode.Len()
		case DomDecode:
			flow = c.stats.Committed - c.smp.lastCommitted
			ds.FIFODepth = c.decodeToRename.Len()
		default:
			q := c.exec[d].queue
			issues := q.Stats().Issues
			flow = issues - c.smp.lastIssues[d]
			c.smp.lastIssues[d] = issues
			ds.IQLen = q.Len()
			occSum, ticks := q.OccupancyCounters()
			if dt := ticks - c.smp.lastOccTicks[d]; dt > 0 {
				ds.IQOcc = float64(occSum-c.smp.lastOccSum[d]) / float64(dt) / float64(q.Cap())
			}
			c.smp.lastOccSum[d], c.smp.lastOccTicks[d] = occSum, ticks
			ds.FIFODepth = c.dispatch[d].Len() + c.complete[d].Len()
		}
		if cyc > 0 {
			ds.IPC = float64(flow) / float64(cyc)
		}
	}

	now := StallSample{
		FetchICache:          c.stats.FetchStallICache,
		FetchLinkFull:        c.stats.FetchStallLinkFull,
		RenameDispatchFull:   c.stats.RenameStallDispatch,
		CompleteBackpressure: c.stats.CompleteBackpressure,
		LoadsBlockedByStores: c.stats.LoadsBlockedByStores,
	}
	s.Stalls = StallSample{
		FetchICache:          now.FetchICache - c.smp.lastStalls.FetchICache,
		FetchLinkFull:        now.FetchLinkFull - c.smp.lastStalls.FetchLinkFull,
		RenameDispatchFull:   now.RenameDispatchFull - c.smp.lastStalls.RenameDispatchFull,
		CompleteBackpressure: now.CompleteBackpressure - c.smp.lastStalls.CompleteBackpressure,
		LoadsBlockedByStores: now.LoadsBlockedByStores - c.smp.lastStalls.LoadsBlockedByStores,
	}
	c.smp.lastStalls = now
	c.smp.lastCommitted = c.stats.Committed
	c.smp.lastCycle = c.decodeCycles

	c.stats.Samples = append(c.stats.Samples, s)
}
