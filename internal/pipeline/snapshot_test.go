package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"galsim/internal/workload"
)

// snapCases are the configurations the snapshot differential gate covers:
// both machine variants over the three golden benchmarks, plus dynamic DVFS
// (whose controller state is the trickiest to carry across a restore) and an
// interval-sampled run (whose Samples must stay byte-identical).
func snapCases() []struct {
	name   string
	kind   Kind
	bench  string
	dvfs   bool
	sample uint64
} {
	return []struct {
		name   string
		kind   Kind
		bench  string
		dvfs   bool
		sample uint64
	}{
		{"base_gcc", Base, "gcc", false, 0},
		{"base_swim", Base, "swim", false, 0},
		{"base_perl", Base, "perl", false, 0},
		{"gals_gcc", GALS, "gcc", false, 0},
		{"gals_swim", GALS, "swim", false, 0},
		{"gals_perl", GALS, "perl", false, 0},
		{"gals_dyndvfs_perl", GALS, "perl", true, 0},
		{"gals_sampled_gcc", GALS, "gcc", false, 2000},
		{"gals_dyndvfs_sampled_swim", GALS, "swim", true, 2000},
	}
}

func snapConfig(t *testing.T, kind Kind, dvfs bool, sample uint64) Config {
	t.Helper()
	cfg := DefaultConfig(kind)
	if dvfs {
		cfg.DynamicDVFS = DefaultDynamicDVFS()
	}
	cfg.SampleInterval = sample
	return cfg
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotRestoreByteIdentical is the PR's non-negotiable gate: running
// to W, capturing, restoring into a fresh core, and running on to N must
// produce Stats byte-identical to the uninterrupted run — including interval
// samples and dynamic-DVFS trajectories. It also asserts that taking the
// snapshot did not perturb the capturing run itself.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	const warm, total = 7_000, 20_000
	for _, tc := range snapCases() {
		t.Run(tc.name, func(t *testing.T) {
			prof, err := workload.ByName(tc.bench)
			if err != nil {
				t.Fatal(err)
			}

			// Straight-line run: the reference.
			straight := NewCore(snapConfig(t, tc.kind, tc.dvfs, tc.sample), prof).Run(total)
			wantJSON := mustJSON(t, straight)

			// Capturing run: identical config, snapshot at warm.
			capCore := NewCore(snapConfig(t, tc.kind, tc.dvfs, tc.sample), prof)
			var raw []byte
			var atCommits uint64
			if err := capCore.SnapshotAt([]uint64{warm}, func(commits uint64, st *CoreState) {
				atCommits = commits
				raw = mustJSON(t, st)
			}); err != nil {
				t.Fatal(err)
			}
			capStats := capCore.Run(total)
			if raw == nil {
				t.Fatal("snapshot callback never fired")
			}
			if atCommits < warm {
				t.Fatalf("snapshot fired at %d commits, want >= %d", atCommits, warm)
			}
			if got := mustJSON(t, capStats); !bytes.Equal(got, wantJSON) {
				t.Errorf("taking a snapshot perturbed the run:\n%s", diffHint(wantJSON, got))
			}

			// Restored run: decode the state, rebuild, run to the same total.
			var st CoreState
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreCore(snapConfig(t, tc.kind, tc.dvfs, tc.sample), prof.Name,
				workload.NewGenerator(prof, snapConfig(t, tc.kind, tc.dvfs, tc.sample).WorkloadSeed), &st)
			if err != nil {
				t.Fatal(err)
			}
			resStats := restored.Run(total)
			if got := mustJSON(t, resStats); !bytes.Equal(got, wantJSON) {
				t.Errorf("restore-then-run diverged from straight-line run:\n%s", diffHint(wantJSON, got))
			}
		})
	}
}

// TestSnapshotPeriodicCheckpoints exercises the cluster-checkpoint shape:
// several triggers in one run, each independently restorable, and later
// checkpoints strictly ahead of earlier ones.
func TestSnapshotPeriodicCheckpoints(t *testing.T) {
	const total = 20_000
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	straight := NewCore(snapConfig(t, GALS, false, 0), prof).Run(total)
	wantJSON := mustJSON(t, straight)

	core := NewCore(snapConfig(t, GALS, false, 0), prof)
	type ckpt struct {
		commits uint64
		raw     []byte
	}
	var ckpts []ckpt
	if err := core.SnapshotAt([]uint64{4_000, 9_000, 14_000}, func(commits uint64, st *CoreState) {
		ckpts = append(ckpts, ckpt{commits, mustJSON(t, st)})
	}); err != nil {
		t.Fatal(err)
	}
	core.Run(total)
	if len(ckpts) != 3 {
		t.Fatalf("got %d checkpoints, want 3", len(ckpts))
	}
	for i := 1; i < len(ckpts); i++ {
		if ckpts[i].commits <= ckpts[i-1].commits {
			t.Fatalf("checkpoint %d at %d commits not ahead of previous (%d)",
				i, ckpts[i].commits, ckpts[i-1].commits)
		}
	}
	// Resume from the middle checkpoint and confirm the final Stats match.
	var st CoreState
	if err := json.Unmarshal(ckpts[1].raw, &st); err != nil {
		t.Fatal(err)
	}
	cfg := snapConfig(t, GALS, false, 0)
	restored, err := RestoreCore(cfg, prof.Name, workload.NewGenerator(prof, cfg.WorkloadSeed), &st)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, restored.Run(total)); !bytes.Equal(got, wantJSON) {
		t.Errorf("resume from mid-run checkpoint diverged:\n%s", diffHint(wantJSON, got))
	}
}

// TestSnapshotRejectsNonSnapshottableSource pins the typed failure for
// sources outside the Snapshotter contract.
func TestSnapshotRejectsNonSnapshottableSource(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Base)
	src := struct{ workload.InstrSource }{workload.NewGenerator(prof, cfg.WorkloadSeed)}
	core := NewCoreWithSource(cfg, "gcc", src)
	if err := core.SnapshotAt([]uint64{100}, func(uint64, *CoreState) {}); err == nil {
		t.Fatal("SnapshotAt accepted a non-snapshottable source")
	}
}
