package pipeline

import (
	"testing"

	"galsim/internal/workload"
)

// runDisambig measures one policy on a memory-heavy benchmark.
func runDisambig(t *testing.T, policy MemDisambiguation) Stats {
	t.Helper()
	cfg := DefaultConfig(Base)
	cfg.MemDisambig = policy
	prof, err := workload.ByName("vortex") // load/store heavy
	if err != nil {
		t.Fatal(err)
	}
	return NewCore(cfg, prof).Run(20_000)
}

func TestDisambiguationPolicyOrdering(t *testing.T) {
	perfect := runDisambig(t, DisambigPerfect)
	addr := runDisambig(t, DisambigAddrMatch)
	conservative := runDisambig(t, DisambigConservative)

	// Perfect never blocks loads on stores.
	if perfect.LoadsBlockedByStores != 0 {
		t.Errorf("perfect policy blocked %d loads", perfect.LoadsBlockedByStores)
	}
	// Conservative blocks at least as much as address matching.
	if conservative.LoadsBlockedByStores < addr.LoadsBlockedByStores {
		t.Errorf("conservative blocked %d < addr-match %d",
			conservative.LoadsBlockedByStores, addr.LoadsBlockedByStores)
	}
	if conservative.LoadsBlockedByStores == 0 {
		t.Error("conservative policy never blocked a load on a memory-heavy benchmark")
	}
	// Performance ordering: perfect >= addr-match >= conservative (ties
	// possible on short runs, strict inequality for the extremes).
	if conservative.SimTime < perfect.SimTime {
		t.Errorf("conservative (%v) faster than perfect (%v)", conservative.SimTime, perfect.SimTime)
	}
	if addr.SimTime < perfect.SimTime {
		t.Errorf("addr-match (%v) faster than perfect (%v)", addr.SimTime, perfect.SimTime)
	}
	if conservative.SimTime < addr.SimTime {
		t.Errorf("conservative (%v) faster than addr-match (%v)", conservative.SimTime, addr.SimTime)
	}
}

func TestDisambiguationCommitsEverything(t *testing.T) {
	for _, policy := range []MemDisambiguation{DisambigPerfect, DisambigConservative, DisambigAddrMatch} {
		st := runDisambig(t, policy)
		if st.Committed != 20_000 {
			t.Errorf("%v committed %d", policy, st.Committed)
		}
	}
}

func TestDisambiguationStrings(t *testing.T) {
	if DisambigPerfect.String() != "perfect" ||
		DisambigConservative.String() != "conservative" ||
		DisambigAddrMatch.String() != "addr-match" {
		t.Error("policy names wrong")
	}
}

func TestDisambiguationGALS(t *testing.T) {
	cfg := DefaultConfig(GALS)
	cfg.MemDisambig = DisambigConservative
	prof, _ := workload.ByName("li")
	st := NewCore(cfg, prof).Run(10_000)
	if st.Committed != 10_000 {
		t.Errorf("committed %d", st.Committed)
	}
}
