package pipeline

// Full-machine snapshot capture and restore.
//
// A snapshot is taken at the instant a decode-domain clock edge begins,
// before any of that edge's stages execute — a decode-cycle boundary. At
// that point the event queue holds exactly one periodic tick event per clock
// domain, so the machine's complete dynamic state is: every architectural
// structure (ROB, issue queues, rename table, predictor, caches, power
// meter), every link's contents, the in-flight instruction records, the
// clock and DVFS controller state, the workload source's position, and each
// tick event's next firing time. Restoring schedules the tick events at
// their captured absolute times; the firing decode event is recorded at the
// capture instant itself (the engine reschedules a periodic event before
// invoking its handler, so at capture time its own entry already points one
// period ahead — the restored run must re-execute that edge in full).
//
// The restored run is bit-identical to the straight-line run: same stage
// order, same event schedule, same RNG draws, same statistics.

import (
	"encoding/json"
	"fmt"
	"sort"

	"galsim/internal/bpred"
	"galsim/internal/cache"
	"galsim/internal/clock"
	"galsim/internal/fifo"
	"galsim/internal/iq"
	"galsim/internal/isa"
	"galsim/internal/power"
	"galsim/internal/rename"
	"galsim/internal/rob"
	"galsim/internal/simtime"
	"galsim/internal/workload"
)

// WakeTagState is a cross-domain wakeup tag in snapshot form.
type WakeTagState struct {
	Phys      int     `json:"phys"`
	Seq       isa.Seq `json:"seq"`
	WrongPath bool    `json:"wp,omitempty"`
	WPID      uint64  `json:"wpid,omitempty"`
}

// InflightState is one issued-but-incomplete operation in snapshot form.
type InflightState struct {
	Rec    int          `json:"rec"`
	DoneAt simtime.Time `json:"done_at"`
}

// ExecUnitState is one execution domain's machinery in snapshot form.
type ExecUnitState struct {
	Queue       iq.State        `json:"queue"`
	FUBusyUntil []simtime.Time  `json:"fu_busy"`
	Inflight    []InflightState `json:"inflight,omitempty"`
}

// FetchState is the front end's snapshot form.
type FetchState struct {
	NextSeq       isa.Seq      `json:"next_seq"`
	InWrongPath   bool         `json:"in_wp,omitempty"`
	CurrentWPID   uint64       `json:"wpid"`
	ICacheStallTo simtime.Time `json:"icache_stall_to"`
	LastFetchLine uint64       `json:"last_fetch_line"`
	HistSnapshot  uint64       `json:"hist_snapshot"`
}

// SquashState is the (at most one) unresolved misprediction's snapshot form.
type SquashState struct {
	Active   bool             `json:"active,omitempty"`
	Seq      isa.Seq          `json:"seq,omitempty"`
	Time     simtime.Time     `json:"time,omitempty"`
	Observed [NumDomains]bool `json:"observed"`
}

// DVFSControllerState is the dynamic DVFS controller's snapshot form.
type DVFSControllerState struct {
	LastCheck     uint64             `json:"last_check"`
	LastOccSum    [NumDomains]uint64 `json:"last_occ_sum"`
	LastTicks     [NumDomains]uint64 `json:"last_ticks"`
	Target        []float64          `json:"target"`
	Pending       []bool             `json:"pending"`
	LastCommitted uint64             `json:"last_committed"`
	ProbeDomain   int                `json:"probe_domain"`
	ProbeActive   bool               `json:"probe_active,omitempty"`
	ProbeIPC      float64            `json:"probe_ipc"`
	Frozen        []int              `json:"frozen"`
}

// SamplerState is the interval sampler's snapshot form.
type SamplerState struct {
	LastCycle     uint64             `json:"last_cycle"`
	LastFetched   uint64             `json:"last_fetched"`
	LastCommitted uint64             `json:"last_committed"`
	LastDomCycles [NumDomains]uint64 `json:"last_dom_cycles"`
	LastIssues    [NumDomains]uint64 `json:"last_issues"`
	LastOccSum    [NumDomains]uint64 `json:"last_occ_sum"`
	LastOccTicks  [NumDomains]uint64 `json:"last_occ_ticks"`
	LastStalls    StallSample        `json:"last_stalls"`
}

// CoreState is the complete mutable state of a Core at a decode-cycle
// boundary. It marshals to JSON; the snapshot envelope (internal/snapshot)
// adds versioning and integrity on top.
type CoreState struct {
	// Records holds every in-flight instruction once; structures reference
	// records by index.
	Records []isa.Instr     `json:"records,omitempty"`
	Source  json.RawMessage `json:"source"`

	Clocks     []clock.State      `json:"clocks"`
	TickWhen   []simtime.Time     `json:"tick_when"`
	TickPeriod []simtime.Duration `json:"tick_period"`

	Pred  bpred.State          `json:"pred"`
	Mem   cache.HierarchyState `json:"mem"`
	Meter power.State          `json:"meter"`
	Rat   rename.State         `json:"rat"`
	ROB   rob.State            `json:"rob"`

	FetchToDecode  fifo.LinkState[int]              `json:"fetch_to_decode"`
	DecodeToRename fifo.LinkState[int]              `json:"decode_to_rename"`
	Dispatch       [NumDomains]*fifo.LinkState[int] `json:"dispatch"`
	Complete       [NumDomains]*fifo.LinkState[int] `json:"complete"`
	WakeIntToMem   fifo.LinkState[WakeTagState]     `json:"wake_int_to_mem"`
	WakeFPToMem    fifo.LinkState[WakeTagState]     `json:"wake_fp_to_mem"`
	WakeMemToInt   fifo.LinkState[WakeTagState]     `json:"wake_mem_to_int"`
	WakeMemToFP    fifo.LinkState[WakeTagState]     `json:"wake_mem_to_fp"`
	ReadyAt        [NumDomains][]simtime.Time       `json:"ready_at"`
	Exec           [NumDomains]*ExecUnitState       `json:"exec"`

	Fetch        FetchState          `json:"fetch"`
	Squash       SquashState         `json:"squash"`
	ResolvedWPID uint64              `json:"resolved_wpid"`
	DecodeCycles uint64              `json:"decode_cycles"`
	LastProgress uint64              `json:"last_progress"`
	DVFS         DVFSControllerState `json:"dvfs"`
	Sampler      SamplerState        `json:"sampler"`

	Stats Stats `json:"stats"`
}

// SnapshotAt registers commit-count triggers: when the number of committed
// instructions first reaches (or passes) each target at the start of a
// decode-domain clock edge, fn is invoked with the machine's captured state.
// Targets must be strictly ascending and every target must lie below the
// Run's instruction count, or the later triggers never fire (the run stops
// first). Capture is read-only — a run with triggers produces statistics
// identical to one without. Must be called before Run.
func (c *Core) SnapshotAt(targets []uint64, fn func(commits uint64, st *CoreState)) error {
	if c.started {
		return fmt.Errorf("pipeline: SnapshotAt after Run")
	}
	if fn == nil {
		return fmt.Errorf("pipeline: SnapshotAt with nil callback")
	}
	if len(targets) == 0 {
		return fmt.Errorf("pipeline: SnapshotAt with no targets")
	}
	if !sort.SliceIsSorted(targets, func(i, j int) bool { return targets[i] < targets[j] }) {
		return fmt.Errorf("pipeline: SnapshotAt targets must be ascending")
	}
	if _, ok := c.gen.(workload.Snapshotter); !ok {
		return fmt.Errorf("pipeline: instruction source %T cannot be snapshotted", c.gen)
	}
	c.snapTargets = append([]uint64(nil), targets...)
	c.snapFn = fn
	return nil
}

// maybeSnapshot fires pending snapshot triggers at the start of clock group
// g's edge (the group owning the decode structure). All targets satisfied by
// the current commit count collapse into one capture.
func (c *Core) maybeSnapshot(g int, now simtime.Time) {
	if len(c.snapTargets) == 0 || c.stats.Committed < c.snapTargets[0] {
		return
	}
	for len(c.snapTargets) > 0 && c.stats.Committed >= c.snapTargets[0] {
		c.snapTargets = c.snapTargets[1:]
	}
	st, err := c.captureState(g, now)
	if err != nil {
		panic(fmt.Sprintf("pipeline: snapshot capture at %d commits: %v", c.stats.Committed, err))
	}
	c.snapFn(c.stats.Committed, st)
}

// captureState serializes the machine. firing is the clock group whose edge
// is currently being processed; its tick event was already rescheduled one
// period ahead, so its captured firing time is now itself.
func (c *Core) captureState(firing int, now simtime.Time) (*CoreState, error) {
	snapSrc, ok := c.gen.(workload.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("instruction source %T cannot be snapshotted", c.gen)
	}
	srcState, err := snapSrc.CaptureSourceState()
	if err != nil {
		return nil, fmt.Errorf("capturing source: %w", err)
	}

	st := &CoreState{Source: srcState}

	// Record table: every in-flight *isa.Instr appears once; holders refer
	// to records by index.
	idx := make(map[*isa.Instr]int)
	index := func(in *isa.Instr) int {
		if i, ok := idx[in]; ok {
			return i
		}
		i := len(st.Records)
		idx[in] = i
		st.Records = append(st.Records, *in)
		return i
	}
	instrConv := func(in *isa.Instr) int { return index(in) }
	tagConv := func(t wakeTag) WakeTagState {
		return WakeTagState{Phys: t.phys, Seq: t.seq, WrongPath: t.wrongPath, WPID: t.wpid}
	}

	st.ROB = c.rob.CaptureState(index)
	if st.FetchToDecode, err = fifo.CaptureLink(c.fetchToDecode, instrConv); err != nil {
		return nil, err
	}
	if st.DecodeToRename, err = fifo.CaptureLink(c.decodeToRename, instrConv); err != nil {
		return nil, err
	}
	for _, d := range execDomains {
		ds, err := fifo.CaptureLink(c.dispatch[d], instrConv)
		if err != nil {
			return nil, err
		}
		st.Dispatch[d] = &ds
		cs, err := fifo.CaptureLink(c.complete[d], instrConv)
		if err != nil {
			return nil, err
		}
		st.Complete[d] = &cs
		u := c.exec[d]
		es := &ExecUnitState{
			Queue:       u.queue.CaptureState(index),
			FUBusyUntil: append([]simtime.Time(nil), u.fuBusyUntil...),
		}
		for _, op := range u.inflight {
			es.Inflight = append(es.Inflight, InflightState{Rec: index(op.in), DoneAt: op.doneAt})
		}
		st.Exec[d] = es
	}
	if st.WakeIntToMem, err = fifo.CaptureLink(c.wakeIntToMem, tagConv); err != nil {
		return nil, err
	}
	if st.WakeFPToMem, err = fifo.CaptureLink(c.wakeFPToMem, tagConv); err != nil {
		return nil, err
	}
	if st.WakeMemToInt, err = fifo.CaptureLink(c.wakeMemToInt, tagConv); err != nil {
		return nil, err
	}
	if st.WakeMemToFP, err = fifo.CaptureLink(c.wakeMemToFP, tagConv); err != nil {
		return nil, err
	}
	for d := range c.readyAt {
		st.ReadyAt[d] = append([]simtime.Time(nil), c.readyAt[d]...)
	}

	st.Clocks = make([]clock.State, len(c.domClocks))
	st.TickWhen = make([]simtime.Time, len(c.domClocks))
	st.TickPeriod = make([]simtime.Duration, len(c.domClocks))
	for g, dc := range c.domClocks {
		st.Clocks[g] = dc.State()
		st.TickWhen[g] = c.tickEvents[g].When()
		st.TickPeriod[g] = c.tickEvents[g].Period()
	}
	st.TickWhen[firing] = now

	st.Pred = c.pred.CaptureState()
	st.Mem = c.mem.CaptureState()
	st.Meter = c.mtr.CaptureState()
	st.Rat = c.rat.CaptureState()

	st.Fetch = FetchState{
		NextSeq:       c.nextSeq,
		InWrongPath:   c.inWrongPath,
		CurrentWPID:   c.currentWPID,
		ICacheStallTo: c.icacheStallTo,
		LastFetchLine: c.lastFetchLine,
		HistSnapshot:  c.histSnapshot,
	}
	st.Squash = SquashState{Active: c.sq.active, Seq: c.sq.seq, Time: c.sq.time, Observed: c.sq.observed}
	st.ResolvedWPID = c.resolvedWPID
	st.DecodeCycles = c.decodeCycles
	st.LastProgress = c.lastProgress
	st.DVFS = DVFSControllerState{
		LastCheck:     c.dvfs.lastCheck,
		LastOccSum:    c.dvfs.lastOccSum,
		LastTicks:     c.dvfs.lastTicks,
		Target:        append([]float64(nil), c.dvfs.target...),
		Pending:       append([]bool(nil), c.dvfs.pending...),
		LastCommitted: c.dvfs.lastCommitted,
		ProbeDomain:   c.dvfs.probeDomain,
		ProbeActive:   c.dvfs.probeActive,
		ProbeIPC:      c.dvfs.probeIPC,
		Frozen:        append([]int(nil), c.dvfs.frozen...),
	}
	st.Sampler = SamplerState{
		LastCycle:     c.smp.lastCycle,
		LastFetched:   c.smp.lastFetched,
		LastCommitted: c.smp.lastCommitted,
		LastDomCycles: c.smp.lastDomCycles,
		LastIssues:    c.smp.lastIssues,
		LastOccSum:    c.smp.lastOccSum,
		LastOccTicks:  c.smp.lastOccTicks,
		LastStalls:    c.smp.lastStalls,
	}
	st.Stats = c.stats

	return st, nil
}

// RestoreCore builds a machine from a captured state. cfg, name and src must
// reproduce the configuration and workload source the capture came from
// (same spec — the campaign layer enforces this via the snapshot envelope's
// spec key); the restored machine then continues bit-identically to the
// machine that was captured. Run on the restored core takes the TOTAL
// instruction count — it must exceed the snapshot's committed count.
func RestoreCore(cfg Config, name string, src workload.InstrSource, st *CoreState) (*Core, error) {
	c := NewCoreWithSource(cfg, name, src)

	snapSrc, ok := c.gen.(workload.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("pipeline: instruction source %T cannot restore a snapshot", c.gen)
	}
	if err := snapSrc.RestoreSourceState(st.Source); err != nil {
		return nil, fmt.Errorf("pipeline: restoring source: %w", err)
	}

	if len(st.Clocks) != len(c.domClocks) ||
		len(st.TickWhen) != len(c.domClocks) || len(st.TickPeriod) != len(c.domClocks) {
		return nil, fmt.Errorf("pipeline: snapshot has %d clock domains, this topology has %d",
			len(st.Clocks), len(c.domClocks))
	}
	for g, dc := range c.domClocks {
		if err := dc.RestoreState(st.Clocks[g]); err != nil {
			return nil, err
		}
	}

	// Validate record references and count holders, so arena refcounts can
	// be reinstated exactly (1 per holding structure).
	holders := make([]int, len(st.Records))
	ref := func(i int) error {
		if i < 0 || i >= len(st.Records) {
			return fmt.Errorf("pipeline: snapshot references record %d of %d", i, len(st.Records))
		}
		holders[i]++
		return nil
	}
	for _, i := range st.ROB.Entries {
		if err := ref(i); err != nil {
			return nil, err
		}
	}
	for _, ls := range []*fifo.LinkState[int]{&st.FetchToDecode, &st.DecodeToRename,
		st.Dispatch[DomInt], st.Dispatch[DomFP], st.Dispatch[DomMem],
		st.Complete[DomInt], st.Complete[DomFP], st.Complete[DomMem]} {
		if ls == nil {
			return nil, fmt.Errorf("pipeline: snapshot missing a link state")
		}
		for _, e := range ls.Entries {
			if err := ref(e.Item); err != nil {
				return nil, err
			}
		}
	}
	for _, d := range execDomains {
		es := st.Exec[d]
		if es == nil {
			return nil, fmt.Errorf("pipeline: snapshot missing execution domain %v", d)
		}
		for _, i := range es.Queue.Entries {
			if err := ref(i); err != nil {
				return nil, err
			}
		}
		for _, op := range es.Inflight {
			if err := ref(op.Rec); err != nil {
				return nil, err
			}
		}
	}

	recs := make([]*isa.Instr, len(st.Records))
	for i := range st.Records {
		r := &st.Records[i]
		var in *isa.Instr
		if c.pool != nil {
			in = c.pool.Get(r.Seq, r.PC, r.Class)
		} else {
			in = isa.NewInstr(r.Seq, r.PC, r.Class)
		}
		in.RestoreFrom(r)
		recs[i] = in
	}
	for i, n := range holders {
		if n == 0 {
			return nil, fmt.Errorf("pipeline: snapshot record %d held by no structure", i)
		}
		if c.pool != nil {
			for h := 1; h < n; h++ {
				c.pool.Retain(recs[i])
			}
		}
	}
	rec := func(i int) *isa.Instr { return recs[i] } // bounds pre-validated
	instrConv := func(i int) *isa.Instr { return recs[i] }
	tagConv := func(t WakeTagState) wakeTag {
		return wakeTag{phys: t.Phys, seq: t.Seq, wrongPath: t.WrongPath, wpid: t.WPID}
	}

	if err := c.rob.RestoreState(st.ROB, rec); err != nil {
		return nil, err
	}
	if err := fifo.RestoreLink(c.fetchToDecode, st.FetchToDecode, instrConv); err != nil {
		return nil, err
	}
	if err := fifo.RestoreLink(c.decodeToRename, st.DecodeToRename, instrConv); err != nil {
		return nil, err
	}
	for _, d := range execDomains {
		if err := fifo.RestoreLink(c.dispatch[d], *st.Dispatch[d], instrConv); err != nil {
			return nil, err
		}
		if err := fifo.RestoreLink(c.complete[d], *st.Complete[d], instrConv); err != nil {
			return nil, err
		}
		es, u := st.Exec[d], c.exec[d]
		if err := u.queue.RestoreState(es.Queue, rec); err != nil {
			return nil, err
		}
		if len(es.FUBusyUntil) != len(u.fuBusyUntil) {
			return nil, fmt.Errorf("pipeline: snapshot domain %v has %d functional units, this config has %d",
				d, len(es.FUBusyUntil), len(u.fuBusyUntil))
		}
		copy(u.fuBusyUntil, es.FUBusyUntil)
		for _, op := range es.Inflight {
			u.inflight = append(u.inflight, inflightOp{in: recs[op.Rec], doneAt: op.DoneAt})
		}
	}
	if err := fifo.RestoreLink(c.wakeIntToMem, st.WakeIntToMem, tagConv); err != nil {
		return nil, err
	}
	if err := fifo.RestoreLink(c.wakeFPToMem, st.WakeFPToMem, tagConv); err != nil {
		return nil, err
	}
	if err := fifo.RestoreLink(c.wakeMemToInt, st.WakeMemToInt, tagConv); err != nil {
		return nil, err
	}
	if err := fifo.RestoreLink(c.wakeMemToFP, st.WakeMemToFP, tagConv); err != nil {
		return nil, err
	}
	for d := range c.readyAt {
		if len(st.ReadyAt[d]) != len(c.readyAt[d]) {
			return nil, fmt.Errorf("pipeline: snapshot domain %d has %d physical registers, this config has %d",
				d, len(st.ReadyAt[d]), len(c.readyAt[d]))
		}
		copy(c.readyAt[d], st.ReadyAt[d])
	}

	if err := c.pred.RestoreState(st.Pred); err != nil {
		return nil, err
	}
	if err := c.mem.RestoreState(st.Mem); err != nil {
		return nil, err
	}
	if err := c.mtr.RestoreState(st.Meter); err != nil {
		return nil, err
	}
	if err := c.rat.RestoreState(st.Rat); err != nil {
		return nil, err
	}

	c.nextSeq = st.Fetch.NextSeq
	c.inWrongPath = st.Fetch.InWrongPath
	c.currentWPID = st.Fetch.CurrentWPID
	c.icacheStallTo = st.Fetch.ICacheStallTo
	c.lastFetchLine = st.Fetch.LastFetchLine
	c.histSnapshot = st.Fetch.HistSnapshot
	c.sq.active = st.Squash.Active
	c.sq.seq = st.Squash.Seq
	c.sq.time = st.Squash.Time
	c.sq.observed = st.Squash.Observed
	c.resolvedWPID = st.ResolvedWPID
	c.decodeCycles = st.DecodeCycles
	c.lastProgress = st.LastProgress

	if len(st.DVFS.Target) != len(c.domClocks) || len(st.DVFS.Pending) != len(c.domClocks) ||
		len(st.DVFS.Frozen) != len(c.domClocks) {
		return nil, fmt.Errorf("pipeline: snapshot DVFS state sized for %d clock domains, this topology has %d",
			len(st.DVFS.Target), len(c.domClocks))
	}
	c.dvfs.lastCheck = st.DVFS.LastCheck
	c.dvfs.lastOccSum = st.DVFS.LastOccSum
	c.dvfs.lastTicks = st.DVFS.LastTicks
	copy(c.dvfs.target, st.DVFS.Target)
	copy(c.dvfs.pending, st.DVFS.Pending)
	c.dvfs.lastCommitted = st.DVFS.LastCommitted
	c.dvfs.probeDomain = st.DVFS.ProbeDomain
	c.dvfs.probeActive = st.DVFS.ProbeActive
	c.dvfs.probeIPC = st.DVFS.ProbeIPC
	copy(c.dvfs.frozen, st.DVFS.Frozen)

	c.smp.lastCycle = st.Sampler.LastCycle
	c.smp.lastFetched = st.Sampler.LastFetched
	c.smp.lastCommitted = st.Sampler.LastCommitted
	c.smp.lastDomCycles = st.Sampler.LastDomCycles
	c.smp.lastIssues = st.Sampler.LastIssues
	c.smp.lastOccSum = st.Sampler.LastOccSum
	c.smp.lastOccTicks = st.Sampler.LastOccTicks
	c.smp.lastStalls = st.Sampler.LastStalls

	c.stats = st.Stats
	c.stats.Kind = c.topo.kind()
	c.stats.Benchmark = name

	c.restoreWhen = append([]simtime.Time(nil), st.TickWhen...)
	c.restorePeriod = append([]simtime.Duration(nil), st.TickPeriod...)
	for g, p := range c.restorePeriod {
		if p <= 0 {
			return nil, fmt.Errorf("pipeline: snapshot tick period %v for clock domain %d not positive", p, g)
		}
	}
	return c, nil
}
