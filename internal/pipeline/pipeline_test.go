package pipeline

import (
	"testing"

	"galsim/internal/power"
	"galsim/internal/workload"
)

func run(t *testing.T, kind Kind, bench string, n uint64, mutate func(*Config)) Stats {
	t.Helper()
	cfg := DefaultConfig(kind)
	if mutate != nil {
		mutate(&cfg)
	}
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	return NewCore(cfg, prof).Run(n)
}

func TestBaseRunsToCompletion(t *testing.T) {
	st := run(t, Base, "compress", 20_000, nil)
	if st.Committed != 20_000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.SimTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	ipc := st.IPC()
	if ipc < 0.3 || ipc > 4 {
		t.Errorf("base IPC = %.2f, outside plausible [0.3, 4]", ipc)
	}
}

func TestGALSRunsToCompletion(t *testing.T) {
	st := run(t, GALS, "compress", 20_000, nil)
	if st.Committed != 20_000 {
		t.Fatalf("committed %d", st.Committed)
	}
}

func TestGALSSlowerThanBase(t *testing.T) {
	// The paper's headline performance result: asynchronous communication
	// slows the GALS machine down, on the order of 5-15%.
	for _, bench := range []string{"compress", "gcc", "li"} {
		base := run(t, Base, bench, 30_000, nil)
		gals := run(t, GALS, bench, 30_000, nil)
		rel := base.SimTime.Seconds() / gals.SimTime.Seconds()
		if rel >= 1.0 {
			t.Errorf("%s: GALS (%v) not slower than base (%v)", bench, gals.SimTime, base.SimTime)
		}
		if rel < 0.70 {
			t.Errorf("%s: GALS slowdown too extreme: relative perf %.3f", bench, rel)
		}
	}
}

func TestGALSSlipExceedsBase(t *testing.T) {
	base := run(t, Base, "gcc", 30_000, nil)
	gals := run(t, GALS, "gcc", 30_000, nil)
	if gals.AvgSlip() <= base.AvgSlip() {
		t.Errorf("GALS slip %v not above base %v", gals.AvgSlip(), base.AvgSlip())
	}
	if base.FIFOSlipShare() <= 0 || gals.FIFOSlipShare() <= 0 {
		t.Error("slip shares not recorded")
	}
	if gals.FIFOSlipShare() <= base.FIFOSlipShare() {
		t.Errorf("GALS FIFO slip share %.3f not above base %.3f",
			gals.FIFOSlipShare(), base.FIFOSlipShare())
	}
}

func TestGALSMoreMisspeculation(t *testing.T) {
	base := run(t, Base, "gcc", 30_000, nil)
	gals := run(t, GALS, "gcc", 30_000, nil)
	if base.MisspeculationFrac() <= 0 {
		t.Fatal("base shows no wrong-path fetch at all")
	}
	if gals.MisspeculationFrac() <= base.MisspeculationFrac() {
		t.Errorf("GALS misspeculation %.3f not above base %.3f",
			gals.MisspeculationFrac(), base.MisspeculationFrac())
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, GALS, "li", 15_000, nil)
	b := run(t, GALS, "li", 15_000, nil)
	if a.SimTime != b.SimTime || a.Fetched != b.Fetched || a.EnergyPJ != b.EnergyPJ {
		t.Errorf("identical configs diverged: %v/%v, %d/%d, %g/%g",
			a.SimTime, b.SimTime, a.Fetched, b.Fetched, a.EnergyPJ, b.EnergyPJ)
	}
}

func TestPhaseChangesResults(t *testing.T) {
	a := run(t, GALS, "li", 15_000, nil)
	b := run(t, GALS, "li", 15_000, func(c *Config) { c.PhaseSeed = 99 })
	if a.SimTime == b.SimTime {
		t.Error("different clock phases produced identical timing")
	}
	// ... but only slightly (paper: ~0.5%).
	rel := a.SimTime.Seconds() / b.SimTime.Seconds()
	if rel < 0.95 || rel > 1.05 {
		t.Errorf("phase sensitivity too large: ratio %.4f", rel)
	}
}

func TestBaseHasGlobalClockGALSNot(t *testing.T) {
	base := run(t, Base, "compress", 10_000, nil)
	gals := run(t, GALS, "compress", 10_000, nil)
	if base.EnergyBreakdown[power.BlockGlobalClock] <= 0 {
		t.Error("base machine burned no global clock energy")
	}
	if g := gals.EnergyBreakdown[power.BlockGlobalClock]; g != 0 {
		t.Errorf("GALS machine burned global clock energy %v", g)
	}
	if gals.EnergyBreakdown[power.BlockFIFOs] <= 0 {
		t.Error("GALS machine burned no FIFO energy")
	}
	if base.EnergyBreakdown[power.BlockFIFOs] != 0 {
		t.Error("base machine charged FIFO energy")
	}
}

func TestFppppLeastAffected(t *testing.T) {
	// fpppp's branch scarcity makes it the least-hurt benchmark (Figure 5).
	relOf := func(bench string) float64 {
		base := run(t, Base, bench, 25_000, nil)
		gals := run(t, GALS, bench, 25_000, nil)
		return base.SimTime.Seconds() / gals.SimTime.Seconds()
	}
	fp := relOf("fpppp")
	gcc := relOf("gcc")
	if fp <= gcc {
		t.Errorf("fpppp relative perf %.3f should exceed gcc %.3f", fp, gcc)
	}
}

func TestOccupanciesHigherInGALS(t *testing.T) {
	base := run(t, Base, "ijpeg", 30_000, nil)
	gals := run(t, GALS, "ijpeg", 30_000, nil)
	if gals.AvgIntRAT <= base.AvgIntRAT {
		t.Errorf("GALS int RAT occupancy %.1f not above base %.1f",
			gals.AvgIntRAT, base.AvgIntRAT)
	}
	if gals.ROB.AvgOccupancy <= base.ROB.AvgOccupancy {
		t.Errorf("GALS ROB occupancy %.1f not above base %.1f",
			gals.ROB.AvgOccupancy, base.ROB.AvgOccupancy)
	}
}

func TestSlowedDomainStretchesRuntime(t *testing.T) {
	normal := run(t, GALS, "swim", 20_000, nil)
	slowFP := run(t, GALS, "swim", 20_000, func(c *Config) {
		c.Slowdowns[DomFP] = 1.5
	})
	if slowFP.SimTime <= normal.SimTime {
		t.Error("slowing the FP clock did not hurt an FP benchmark")
	}
}

func TestFPSlowdownHarmlessForIntegerCode(t *testing.T) {
	// perl has no FP instructions; slowing the FP domain by 3x should cost
	// very little extra time relative to plain GALS (paper §5.2).
	normal := run(t, GALS, "perl", 25_000, nil)
	slowFP := run(t, GALS, "perl", 25_000, func(c *Config) {
		c.Slowdowns[DomFP] = 3.0
	})
	ratio := slowFP.SimTime.Seconds() / normal.SimTime.Seconds()
	if ratio > 1.05 {
		t.Errorf("FP/3 slowed perl by %.1f%%, want < 5%%", 100*(ratio-1))
	}
	if slowFP.EnergyPJ >= normal.EnergyPJ {
		t.Error("FP slowdown with voltage scaling did not save energy")
	}
}

func TestVoltageScalingReducesEnergy(t *testing.T) {
	freqOnly := run(t, GALS, "perl", 20_000, func(c *Config) {
		c.Slowdowns[DomFP] = 2.0
		c.AutoVoltage = false
	})
	withDVS := run(t, GALS, "perl", 20_000, func(c *Config) {
		c.Slowdowns[DomFP] = 2.0
		c.AutoVoltage = true
	})
	if withDVS.EnergyPJ >= freqOnly.EnergyPJ {
		t.Errorf("DVS energy %.3g not below frequency-only %.3g",
			withDVS.EnergyPJ, freqOnly.EnergyPJ)
	}
	// Timing identical: voltage does not change the clock.
	if withDVS.SimTime != freqOnly.SimTime {
		t.Error("voltage scaling changed timing")
	}
}

func TestStatsInternallyConsistent(t *testing.T) {
	st := run(t, GALS, "gcc", 25_000, nil)
	if st.WrongPathFetched+st.Committed > st.Fetched {
		t.Error("committed + wrong-path exceeds fetched")
	}
	if st.Mispredicts == 0 || st.Recoveries == 0 {
		t.Error("branchy benchmark shows no mispredictions/recoveries")
	}
	if st.Recoveries != st.Mispredicts {
		t.Errorf("recoveries %d != mispredicts %d", st.Recoveries, st.Mispredicts)
	}
	if st.SquashedROB == 0 {
		t.Error("no ROB squashes despite recoveries")
	}
	var sum float64
	for _, e := range st.EnergyBreakdown {
		sum += e
	}
	if d := (sum - st.EnergyPJ) / st.EnergyPJ; d > 1e-9 || d < -1e-9 {
		t.Error("energy breakdown does not sum to total")
	}
	if st.L1D.Accesses == 0 || st.L1I.Accesses == 0 {
		t.Error("caches untouched")
	}
}

func TestAllBenchmarksRunBothMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep in -short mode")
	}
	for _, name := range workload.Names() {
		for _, kind := range []Kind{Base, GALS} {
			st := run(t, kind, name, 8_000, nil)
			if st.Committed != 8_000 {
				t.Errorf("%s/%s committed %d", kind, name, st.Committed)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(Base)
	cfg.Slowdowns[DomFP] = 2.0 // base must be uniform
	if err := cfg.Validate(); err == nil {
		t.Error("non-uniform base slowdown accepted")
	}
	cfg = DefaultConfig(GALS)
	cfg.ROBSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	cfg = DefaultConfig(GALS)
	cfg.Slowdowns[DomInt] = 0.5
	if err := cfg.Validate(); err == nil {
		t.Error("overclock accepted")
	}
}

func TestRunGuards(t *testing.T) {
	cfg := DefaultConfig(Base)
	prof, _ := workload.ByName("compress")
	c := NewCore(cfg, prof)
	c.Run(100)
	for name, fn := range map[string]func(){
		"double run": func() { c.Run(100) },
		"zero run":   func() { NewCore(cfg, prof).Run(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
