package pipeline

import (
	"encoding/json"
	"strings"
	"testing"

	"galsim/internal/workload"
)

// TestSamplerSeries checks the interval sampler's core contract on a GALS
// run: samples land exactly on interval boundaries, cumulative fields are
// monotone, occupancy fractions are sane, and the dynamic-DVFS run's
// slowdown trajectory is visible in the series.
func TestSamplerSeries(t *testing.T) {
	prof, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(GALS)
	cfg.SampleInterval = 500
	st := NewCore(cfg, prof).Run(20_000)

	if len(st.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	var prev Sample
	for i, s := range st.Samples {
		if s.Cycle%500 != 0 {
			t.Errorf("sample %d at cycle %d, not an interval boundary", i, s.Cycle)
		}
		if i > 0 {
			if s.Cycle != prev.Cycle+500 {
				t.Errorf("sample %d cycle %d does not follow %d", i, s.Cycle, prev.Cycle)
			}
			if s.Committed < prev.Committed || s.TimeNs <= prev.TimeNs {
				t.Errorf("sample %d not monotone: %+v after %+v", i, s, prev)
			}
		}
		for _, d := range s.Domains {
			if d.IQOcc < 0 || d.IQOcc > 1 {
				t.Errorf("sample %d domain %s occupancy %v outside [0,1]", i, d.Name, d.IQOcc)
			}
			if d.Slowdown < 1 {
				t.Errorf("sample %d domain %s slowdown %v below 1", i, d.Name, d.Slowdown)
			}
		}
		prev = s
	}
	if last := st.Samples[len(st.Samples)-1]; last.Committed == 0 {
		t.Error("final sample committed == 0")
	}

	// The decode-domain series carries the machine IPC signal.
	var sawIPC bool
	for _, s := range st.Samples {
		if s.IPC > 0 {
			sawIPC = true
		}
	}
	if !sawIPC {
		t.Error("no sample recorded a positive interval IPC")
	}

	// Dynamic DVFS: the controller's retunes must show up as non-unit
	// slowdowns somewhere in the series (perl converges on a slow FP
	// domain, as the paper's hand tuning did).
	cfg = DefaultConfig(GALS)
	cfg.DynamicDVFS = DefaultDynamicDVFS()
	cfg.SampleInterval = 2000
	dyn := NewCore(cfg, prof).Run(60_000)
	var retuned bool
	for _, s := range dyn.Samples {
		for _, d := range s.Domains {
			if d.Slowdown > 1 {
				retuned = true
			}
		}
	}
	if dyn.Retunes > 0 && !retuned {
		t.Errorf("controller retuned %d times but no sample saw a slowdown > 1", dyn.Retunes)
	}
}

// TestSamplerOffIdentical pins the opt-in contract: a run with sampling
// disabled produces Stats identical (including serialized form) to a run of
// a config that never heard of sampling — Samples must be absent from the
// JSON entirely, protecting golden snapshots and cache payloads.
func TestSamplerOffIdentical(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	st := NewCore(DefaultConfig(GALS), prof).Run(5_000)
	if st.Samples != nil {
		t.Fatalf("sampling disabled but %d samples recorded", len(st.Samples))
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Samples") {
		t.Error("Samples field serialized despite being empty")
	}
}

// TestSampleIntervalValidation: non-zero intervals below the floor are
// rejected before a run can generate pathological sample volumes.
func TestSampleIntervalValidation(t *testing.T) {
	cfg := DefaultConfig(GALS)
	cfg.SampleInterval = 7
	if err := cfg.Validate(); err == nil {
		t.Error("SampleInterval=7 validated")
	}
	cfg.SampleInterval = 100
	if err := cfg.Validate(); err != nil {
		t.Errorf("SampleInterval=100 rejected: %v", err)
	}
}
