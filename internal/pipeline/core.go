package pipeline

import (
	"fmt"

	"galsim/internal/bpred"
	"galsim/internal/cache"
	"galsim/internal/clock"
	"galsim/internal/event"
	"galsim/internal/fifo"
	"galsim/internal/iq"
	"galsim/internal/isa"
	"galsim/internal/power"
	"galsim/internal/rename"
	"galsim/internal/rob"
	"galsim/internal/simtime"
	"galsim/internal/workload"
)

// wakeTag is the payload of a cross-domain wakeup FIFO: a completed physical
// register's identity, with enough provenance to discard stale wrong-path
// tags.
type wakeTag struct {
	phys      int
	seq       isa.Seq
	wrongPath bool
	wpid      uint64
}

// inflightOp is an issued instruction awaiting completion in an execution
// domain.
type inflightOp struct {
	in     *isa.Instr
	doneAt simtime.Time
}

// execUnit is the per-execution-domain machinery: issue queue, functional
// units, and in-flight operations.
type execUnit struct {
	dom         DomainID
	queue       *iq.Queue
	fuBusyUntil []simtime.Time
	inflight    []inflightOp
}

// execDomains lists the three execution domains.
var execDomains = []DomainID{DomInt, DomFP, DomMem}

// Core is one simulated machine — any clock-domain topology over the fixed
// pipeline structures — bound to one workload.
type Core struct {
	cfg  Config
	topo Topology
	eng  *event.Engine
	gen  workload.InstrSource
	pred *bpred.Predictor
	mem  *cache.Hierarchy
	mtr  *power.Meter
	rat  *rename.Table
	rob  *rob.ROB

	// pool is the instruction arena (see the isa package comment): records
	// are allocated at fetch and recycled when the last pipeline structure
	// releases them. nil when the source cannot pool or RetainInstrs opted
	// out, in which case records come from the heap and are never recycled.
	pool *isa.Pool

	// domClocks holds one physical clock per topology domain; clocks aliases
	// them per structure (structures sharing a domain share the pointer — in
	// the fully synchronous machine all five entries alias one clock).
	domClocks []*clock.Domain
	clocks    [NumDomains]*clock.Domain

	// Links. decodeToRename is always a same-domain pipe latch; the rest are
	// latches in base and mixed-clock FIFOs in GALS.
	fetchToDecode  fifo.Link[*isa.Instr]
	decodeToRename fifo.Link[*isa.Instr]
	dispatch       [NumDomains]fifo.Link[*isa.Instr] // int/fp/mem slots used
	complete       [NumDomains]fifo.Link[*isa.Instr] // int/fp/mem slots used
	wakeIntToMem   fifo.Link[wakeTag]
	wakeFPToMem    fifo.Link[wakeTag]
	wakeMemToInt   fifo.Link[wakeTag]
	wakeMemToFP    fifo.Link[wakeTag]

	// readyAt[d][p] is the local time at or after which execution domain d
	// may issue a consumer of physical register p.
	readyAt [NumDomains][]simtime.Time

	exec [NumDomains]*execUnit // int/fp/mem slots used

	// Precomputed link groups, so the per-cycle stages never build slices:
	// wakeIn[d] lists the wakeup links domain d drains; wakeOut[d] lists the
	// links a result computed in d must traverse (for DomMem the destination
	// register file picks between wakeOutMemFP and wakeOut[DomMem]).
	wakeIn    [NumDomains][]fifo.Link[wakeTag]
	wakeOut   [NumDomains][]fifo.Link[wakeTag]
	wakeOutFP []fifo.Link[wakeTag] // DomMem results destined for the FP file

	// Per-cycle scratch, reused so the steady-state hot path is
	// allocation-free.
	selScratch []*isa.Instr // issue selection output
	readyNow   simtime.Time // observation instant for the ready closures
	readyFn    [NumDomains]func(int) bool
	memSel     struct { // selectMemOps walk state
		pendingStores int
		pendingAddrs  []uint64
	}
	memTake func(*isa.Instr) bool // prebuilt Scan callback for selectMemOps

	// Prebuilt squash callbacks (closures allocated once, not per recovery).
	doomedFn       func(*isa.Instr) bool // pure doomed predicate
	doomedFlush    func(*isa.Instr) bool // doomed → release + discard
	doomedTagFlush func(wakeTag) bool
	undoRelease    func(*isa.Instr) // ROB squash: rename undo + release

	// Fetch state.
	nextSeq       isa.Seq
	inWrongPath   bool
	currentWPID   uint64
	icacheStallTo simtime.Time
	lastFetchLine uint64
	l1iLineShift  uint
	histSnapshot  uint64 // gshare history at wrong-path entry, restored at redirect

	// Squash state: at most one unresolved misprediction exists at a time.
	sq struct {
		active   bool
		seq      isa.Seq
		time     simtime.Time
		observed [NumDomains]bool
	}
	resolvedWPID uint64

	// Run control.
	targetCommits uint64
	done          bool
	started       bool
	decodeCycles  uint64
	lastProgress  uint64 // decodeCycles value at the last commit

	commitHook func(*isa.Instr)

	// Snapshot triggers (SnapshotAt) and, on a restored core, the absolute
	// tick-event schedule to resume from (see snapshot.go).
	snapTargets   []uint64
	snapFn        func(uint64, *CoreState)
	restoreWhen   []simtime.Time
	restorePeriod []simtime.Duration

	// Dynamic DVFS controller state, the per-clock-domain periodic tick
	// events it retunes, and the scalable-domain scan list.
	dvfs       dvfsState
	tickEvents []*event.Event
	tickFns    []func(simtime.Time)
	scalable   []int

	// Interval sampler state (Config.SampleInterval > 0 only).
	smp samplerState

	// Timeline tracer, nil unless AttachTimeline was called. Every hot-path
	// tap is guarded by one `c.tl != nil` branch.
	tl *timelineState

	stats Stats
}

// OnCommit registers a hook invoked for every committed instruction, after
// its timestamps are final. Used for tracing and invariant checking; must
// be set before Run.
//
// The *Instr is recycled into the core's arena after the hook returns: the
// hook may read every field but must not retain the pointer past the call.
// A hook that stores *Instr values must call RetainInstrs first.
func (c *Core) OnCommit(fn func(*isa.Instr)) {
	if c.started {
		panic("pipeline: OnCommit after Run")
	}
	c.commitHook = fn
}

// RetainInstrs disables arena recycling for this core: every instruction
// record is heap-allocated and never reused, so an OnCommit hook may keep
// *Instr values alive after the hook returns. The trade-off is the garbage-
// collector traffic the arena exists to remove; results are identical either
// way. Must be called before Run.
func (c *Core) RetainInstrs() {
	if c.started {
		panic("pipeline: RetainInstrs after Run")
	}
	c.pool = nil
	if pu, ok := c.gen.(workload.PoolUser); ok {
		pu.UsePool(nil)
	}
}

// PoolStats reports the instruction arena's counters (zero after
// RetainInstrs or with a non-pooling source).
func (c *Core) PoolStats() isa.PoolStats {
	if c.pool == nil {
		return isa.PoolStats{}
	}
	return c.pool.Stats()
}

// retainInstr adds an arena reference: the record is entering a second
// pipeline structure (the ROB, alongside its current queue or link).
func (c *Core) retainInstr(in *isa.Instr) {
	if c.pool != nil {
		c.pool.Retain(in)
	}
}

// releaseInstr drops one arena reference; the last holder's release recycles
// the record.
func (c *Core) releaseInstr(in *isa.Instr) {
	if c.pool != nil {
		c.pool.Release(in)
	}
}

// NewCore builds a machine for the given configuration and benchmark,
// driven by the built-in synthetic generator.
func NewCore(cfg Config, prof workload.Profile) *Core {
	return NewCoreWithSource(cfg, prof.Name, workload.NewGenerator(prof, cfg.WorkloadSeed))
}

// NewCoreWithSource builds a machine fed by an arbitrary instruction source
// — the synthetic generator, a phased multi-profile generator, or a trace
// replayer — identified by name in the run's statistics.
func NewCoreWithSource(cfg Config, name string, src workload.InstrSource) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if src == nil {
		panic("pipeline: nil instruction source")
	}
	c := &Core{
		cfg:  cfg,
		topo: cfg.topo(),
		eng:  event.NewEngine(),
		gen:  src,
		pred: bpred.New(cfg.Bpred),
		mem:  cache.NewHierarchy(cfg.Caches),
		mtr:  power.NewMeter(cfg.Power),
		rat:  rename.New(cfg.PhysInt, cfg.PhysFP),
		rob:  rob.New(cfg.ROBSize),
	}
	c.stats.Kind = c.topo.kind()
	c.stats.Benchmark = name
	c.lastFetchLine = ^uint64(0)
	for l := cfg.Caches.L1I.LineBytes; l > 1; l >>= 1 {
		c.l1iLineShift++
	}

	// Install the instruction arena when the source can allocate from it;
	// sources outside this package's contract (UsePool returning false
	// covers wrappers around them) keep heap allocation and the core then
	// must not recycle — it cannot know where records came from.
	if pu, ok := src.(workload.PoolUser); ok {
		pool := isa.NewPool()
		if pu.UsePool(pool) {
			c.pool = pool
		}
	}

	c.buildClocks()
	c.buildLinks()
	c.dvfs.target = make([]float64, len(c.domClocks))
	c.dvfs.pending = make([]bool, len(c.domClocks))
	c.dvfs.frozen = make([]int, len(c.domClocks))
	for g, dom := range c.topo.Domains {
		if dom.Scalable {
			c.scalable = append(c.scalable, g)
		}
	}

	for d := range c.readyAt {
		c.readyAt[d] = make([]simtime.Time, c.rat.NumPhys())
	}
	c.exec[DomInt] = &execUnit{dom: DomInt, queue: iq.New("int-iq", cfg.IntIQSize),
		fuBusyUntil: make([]simtime.Time, cfg.IntIssueWidth)}
	c.exec[DomFP] = &execUnit{dom: DomFP, queue: iq.New("fp-iq", cfg.FPIQSize),
		fuBusyUntil: make([]simtime.Time, cfg.FPIssueWidth)}
	c.exec[DomMem] = &execUnit{dom: DomMem, queue: iq.New("mem-iq", cfg.MemIQSize),
		fuBusyUntil: make([]simtime.Time, cfg.MemIssueWidth)}

	c.buildScratch()
	return c
}

// buildScratch precomputes the per-cycle link groups, ready closures and
// squash callbacks, and sizes the reusable selection buffers — everything
// the steady-state loop would otherwise allocate.
func (c *Core) buildScratch() {
	c.wakeIn[DomInt] = []fifo.Link[wakeTag]{c.wakeMemToInt}
	c.wakeIn[DomFP] = []fifo.Link[wakeTag]{c.wakeMemToFP}
	c.wakeIn[DomMem] = []fifo.Link[wakeTag]{c.wakeIntToMem, c.wakeFPToMem}
	c.wakeOut[DomInt] = []fifo.Link[wakeTag]{c.wakeIntToMem}
	c.wakeOut[DomFP] = []fifo.Link[wakeTag]{c.wakeFPToMem}
	c.wakeOut[DomMem] = []fifo.Link[wakeTag]{c.wakeMemToInt}
	c.wakeOutFP = []fifo.Link[wakeTag]{c.wakeMemToFP}

	maxWidth := c.cfg.IntIssueWidth
	if c.cfg.FPIssueWidth > maxWidth {
		maxWidth = c.cfg.FPIssueWidth
	}
	if c.cfg.MemIssueWidth > maxWidth {
		maxWidth = c.cfg.MemIssueWidth
	}
	c.selScratch = make([]*isa.Instr, 0, maxWidth)
	c.memSel.pendingAddrs = make([]uint64, 0, c.cfg.MemIQSize)

	for _, d := range execDomains {
		d := d
		c.readyFn[d] = func(p int) bool { return p < 0 || c.readyAt[d][p] <= c.readyNow }
	}
	memReady := c.readyFn[DomMem]
	c.memTake = func(in *isa.Instr) bool {
		opsReady := memReady(in.PhysSrc[0]) && memReady(in.PhysSrc[1])
		if in.Class == isa.ClassStore {
			if opsReady {
				return true // store issues; its address is now known
			}
			c.memSel.pendingStores++
			c.memSel.pendingAddrs = append(c.memSel.pendingAddrs, in.Addr&^7)
			return false
		}
		if !opsReady {
			return false
		}
		switch c.cfg.MemDisambig {
		case DisambigConservative:
			if c.memSel.pendingStores > 0 {
				c.stats.LoadsBlockedByStores++
				return false
			}
		case DisambigAddrMatch:
			for _, a := range c.memSel.pendingAddrs {
				if a == in.Addr&^7 {
					c.stats.LoadsBlockedByStores++
					return false
				}
			}
		}
		return true
	}

	c.doomedFn = c.doomed
	c.doomedFlush = func(in *isa.Instr) bool {
		if c.doomed(in) {
			c.releaseInstr(in)
			return true
		}
		return false
	}
	c.doomedTagFlush = c.doomedTag
	c.undoRelease = func(in *isa.Instr) {
		c.rat.Undo(in)
		c.releaseInstr(in)
	}
}

// buildClocks creates one physical clock per topology domain, applies the
// (per-domain-equal) slowdowns and their voltages, draws the starting
// phases, and aliases the per-structure clock table onto the domain clocks.
func (c *Core) buildClocks() {
	vnom := c.cfg.DVFS.VNominal
	c.domClocks = make([]*clock.Domain, len(c.topo.Domains))
	periods := make([]simtime.Duration, len(c.topo.Domains))
	for g, dom := range c.topo.Domains {
		d := clock.NewDomain(dom.Name, c.topo.nominalPeriod(g, c.cfg), 0, vnom)
		// Validate guaranteed every structure of the domain carries the same
		// slowdown; read it off the first one.
		if s := c.cfg.Slowdowns[c.topo.structuresOf(g)[0]]; s != 1 {
			d.SetSlowdown(s)
			if c.cfg.AutoVoltage {
				d.SetVoltage(c.voltageFor(g, s))
			}
		}
		periods[g] = d.Period()
		c.domClocks[g] = d
	}
	phases := c.topo.randomPhases(c.cfg, periods)
	for g, d := range c.domClocks {
		d.SetPhase(phases[g])
	}
	for d := DomainID(0); d < NumDomains; d++ {
		c.clocks[d] = c.domClocks[c.topo.Of[d]]
	}
}

// voltageFor returns clock domain g's supply voltage at the given slowdown:
// interpolated from the domain's voltage table when one is configured,
// otherwise solved from the Equation 1 delay model.
func (c *Core) voltageFor(g int, slow float64) float64 {
	if tbl := c.topo.Domains[g].VoltTable; len(tbl) > 0 {
		return voltFromTable(tbl, slow)
	}
	return c.cfg.DVFS.VoltageForSlowdown(slow)
}

// voltFromTable interpolates a voltage table (sorted by ascending slowdown)
// piecewise-linearly, clamping outside the table's slowdown range.
func voltFromTable(tbl []VoltPoint, slow float64) float64 {
	if slow <= tbl[0].Slowdown {
		return tbl[0].Voltage
	}
	for i := 1; i < len(tbl); i++ {
		if slow <= tbl[i].Slowdown {
			lo, hi := tbl[i-1], tbl[i]
			f := (slow - lo.Slowdown) / (hi.Slowdown - lo.Slowdown)
			return lo.Voltage + f*(hi.Voltage-lo.Voltage)
		}
	}
	return tbl[len(tbl)-1].Voltage
}

// buildLinks creates the communication fabric. A link between structures on
// one clock is a synchronous pipe latch; a link crossing clock domains is a
// mixed-clock FIFO (or a stretchable-clock handshake). decodeToRename never
// crosses a boundary, so it is a latch under every topology.
func (c *Core) buildLinks() {
	edges := func(class LinkClass) int {
		if c.cfg.debugEdges != nil {
			return c.cfg.debugEdges[class]
		}
		if e := c.topo.Links[class].SyncEdges; e > 0 {
			return e
		}
		return c.cfg.FIFOSyncEdges
	}
	capOf := func(class LinkClass, def int) int {
		if v := c.topo.Links[class].Capacity; v > 0 {
			return v
		}
		return def
	}
	handshake := c.cfg.StretchHandshake
	if handshake == 0 {
		handshake = c.cfg.NominalPeriod + c.cfg.NominalPeriod/2
	}
	stretchWidth := c.cfg.StretchWidth
	if stretchWidth == 0 {
		stretchWidth = 4
	}
	instrLink := func(name string, from, to DomainID, class LinkClass) fifo.Link[*isa.Instr] {
		switch {
		case !c.topo.Cross(from, to):
			return fifo.NewSyncLatch[*isa.Instr](name, c.clocks[from], capOf(class, c.cfg.LatchCapacity))
		case c.cfg.LinkStyle == LinkStretch:
			return fifo.NewStretchLink[*isa.Instr](name, c.clocks[from], c.clocks[to],
				handshake, stretchWidth)
		default:
			return fifo.NewMixedClockFIFO[*isa.Instr](name, c.clocks[from], c.clocks[to],
				capOf(class, c.cfg.FIFOCapacity), edges(class))
		}
	}
	wakeLink := func(name string, from, to DomainID) fifo.Link[wakeTag] {
		switch {
		case !c.topo.Cross(from, to):
			return fifo.NewSyncLatch[wakeTag](name, c.clocks[from], capOf(LinkClassWakeup, 2*c.cfg.FIFOCapacity))
		case c.cfg.LinkStyle == LinkStretch:
			return fifo.NewStretchLink[wakeTag](name, c.clocks[from], c.clocks[to],
				handshake, stretchWidth)
		default:
			return fifo.NewMixedClockFIFO[wakeTag](name, c.clocks[from], c.clocks[to],
				capOf(LinkClassWakeup, 2*c.cfg.FIFOCapacity), edges(LinkClassWakeup))
		}
	}

	c.fetchToDecode = instrLink("fetch->decode", DomFetch, DomDecode, LinkClassFetch)
	c.decodeToRename = fifo.NewSyncLatch[*isa.Instr]("decode->rename", c.clocks[DomDecode], c.cfg.LatchCapacity)
	for _, d := range execDomains {
		c.dispatch[d] = instrLink(fmt.Sprintf("dispatch->%v", d), DomDecode, d, LinkClassDispatch)
		c.complete[d] = instrLink(fmt.Sprintf("complete<-%v", d), d, DomDecode, LinkClassComplete)
	}
	c.wakeIntToMem = wakeLink("wake int->mem", DomInt, DomMem)
	c.wakeFPToMem = wakeLink("wake fp->mem", DomFP, DomMem)
	c.wakeMemToInt = wakeLink("wake mem->int", DomMem, DomInt)
	c.wakeMemToFP = wakeLink("wake mem->fp", DomMem, DomFP)
}

// doomed reports whether an instruction belongs to an already-resolved
// wrong-path excursion and must be discarded wherever it is found.
func (c *Core) doomed(in *isa.Instr) bool {
	return in.WrongPath && in.WPID <= c.resolvedWPID
}

func (c *Core) doomedTag(t wakeTag) bool {
	return t.wrongPath && t.wpid <= c.resolvedWPID
}

// execDomainOf maps an instruction class to its execution domain.
func execDomainOf(cl isa.Class) DomainID {
	switch {
	case cl.IsFP():
		return DomFP
	case cl.IsMem():
		return DomMem
	default:
		return DomInt
	}
}

// iqBlock maps an execution domain to its issue-window power block.
func iqBlock(d DomainID) power.Block {
	switch d {
	case DomInt:
		return power.BlockIntIQ
	case DomFP:
		return power.BlockFPIQ
	case DomMem:
		return power.BlockMemIQ
	default:
		panic(fmt.Sprintf("pipeline: no issue queue in domain %v", d))
	}
}

// gridBlock maps a domain to its local clock grid block.
func gridBlock(d DomainID) power.Block {
	switch d {
	case DomFetch:
		return power.BlockFetchClock
	case DomDecode:
		return power.BlockDecodeClock
	case DomInt:
		return power.BlockIntClock
	case DomFP:
		return power.BlockFPClock
	case DomMem:
		return power.BlockMemClock
	default:
		panic(fmt.Sprintf("pipeline: no grid for domain %v", d))
	}
}

// activityBlocksTab lists the non-clock blocks owned by each domain,
// precomputed at package level so ending a cycle allocates nothing.
var activityBlocksTab = [NumDomains][]power.Block{
	DomFetch:  {power.BlockICache, power.BlockBPred},
	DomDecode: {power.BlockRename, power.BlockRegfile},
	DomInt:    {power.BlockIntIQ, power.BlockALUs},
	DomFP:     {power.BlockFPIQ, power.BlockFPALUs},
	DomMem:    {power.BlockMemIQ, power.BlockDCache, power.BlockL2},
}

// activityBlocks lists the non-clock blocks owned by a domain. The returned
// slice is shared; callers must not mutate it.
func activityBlocks(d DomainID) []power.Block {
	if int(d) >= len(activityBlocksTab) {
		panic(fmt.Sprintf("pipeline: unknown domain %v", d))
	}
	return activityBlocksTab[d]
}

// postSquash is called by the integer domain when a mispredicted
// correct-path branch resolves: it broadcasts the squash and flushes the
// resolving domain's own structures immediately.
func (c *Core) postSquash(br *isa.Instr, now simtime.Time) {
	if c.sq.active {
		panic(fmt.Sprintf("pipeline: overlapping squash at %v (branch %d over %d)", now, br.Seq, c.sq.seq))
	}
	c.sq.active = true
	c.sq.seq = br.Seq
	c.sq.time = now
	c.sq.observed = [NumDomains]bool{}
	c.resolvedWPID = br.WPID
	c.stats.Recoveries++
	if c.tl != nil {
		c.tl.squashBegin(now, int64(br.Seq))
	}
	c.doObserve(DomInt, now)
}

// observeSquash lets structure d act on a pending squash once its
// synchronized copy of the signal has arrived: the resolving structure sees
// it immediately, structures sharing the resolver's clock one edge later (a
// synchronous broadcast), and structures in other clock domains after
// FIFOSyncEdges edges of their own clock (the squash bus crosses a flag
// synchronizer, like any other cross-domain signal).
func (c *Core) observeSquash(d DomainID, now simtime.Time) {
	if !c.sq.active || c.sq.observed[d] {
		return
	}
	edges := int64(1)
	if c.topo.Cross(d, DomInt) {
		edges = int64(c.cfg.FIFOSyncEdges)
	}
	if now < c.clocks[d].NthEdgeAfter(c.sq.time, edges) {
		return
	}
	c.doObserve(d, now)
}

// doObserve performs domain d's squash actions.
func (c *Core) doObserve(d DomainID, now simtime.Time) {
	c.sq.observed[d] = true
	if c.tl != nil {
		c.tl.observe(d, now)
	}
	switch d {
	case DomFetch:
		// Redirect: abandon the wrong path and resume the correct one. The
		// speculative gshare history bits inserted by wrong-path lookups are
		// rolled back to the checkpoint taken at the misprediction.
		if c.gen.InWrongPath() {
			c.gen.EndWrongPath()
		}
		c.pred.RestoreHistory(c.histSnapshot)
		c.inWrongPath = false
		c.lastFetchLine = ^uint64(0)
		c.icacheStallTo = 0
	case DomDecode:
		c.fetchToDecode.FlushMatching(c.doomedFlush)
		c.decodeToRename.FlushMatching(c.doomedFlush)
		for _, ed := range execDomains {
			c.complete[ed].FlushMatching(c.doomedFlush)
		}
		n := c.rob.SquashTail(c.doomedFn, c.undoRelease)
		c.stats.SquashedROB += uint64(n)
	case DomInt:
		c.exec[DomInt].queue.FlushWrongPath(c.doomedFlush)
		c.dispatch[DomInt].FlushMatching(c.doomedFlush)
		c.wakeMemToInt.FlushMatching(c.doomedTagFlush)
	case DomFP:
		c.exec[DomFP].queue.FlushWrongPath(c.doomedFlush)
		c.dispatch[DomFP].FlushMatching(c.doomedFlush)
		c.wakeMemToFP.FlushMatching(c.doomedTagFlush)
	case DomMem:
		c.exec[DomMem].queue.FlushWrongPath(c.doomedFlush)
		c.dispatch[DomMem].FlushMatching(c.doomedFlush)
		c.wakeIntToMem.FlushMatching(c.doomedTagFlush)
		c.wakeFPToMem.FlushMatching(c.doomedTagFlush)
	}
	for i := range c.sq.observed {
		if !c.sq.observed[i] {
			return
		}
	}
	c.sq.active = false
	if c.tl != nil {
		c.tl.squashEnd(now)
	}
}

// resetReady marks a freshly allocated physical register not-ready in every
// execution domain.
func (c *Core) resetReady(phys int) {
	for _, d := range execDomains {
		c.readyAt[d][phys] = simtime.Never
	}
}

// endCycle closes one cycle of domain d: activity blocks plus the domain's
// local clock grid, at the domain's current voltage (read live, since
// dynamic DVFS may change it mid-run).
func (c *Core) endCycle(d DomainID) {
	scale := c.clocks[d].EnergyScale()
	c.mtr.EndCycle(activityBlocks(d), scale)
	c.mtr.EndClockCycle(gridBlock(d), scale)
	c.stats.Cycles[d]++
}

// domainTick builds clock domain g's edge handler: every stage of every
// structure the domain owns, in reverse pipeline order. For the paper's two
// machines this reproduces the classic handlers exactly — the five
// single-structure GALS ticks, and the one all-structure synchronous tick
// that also charges the global clock grid.
func (c *Core) domainTick(g int) func(simtime.Time) {
	owned := c.topo.structuresOf(g)
	hasFetch, hasDecode := false, false
	var execs []DomainID
	for _, d := range owned {
		switch d {
		case DomFetch:
			hasFetch = true
		case DomDecode:
			hasDecode = true
		default:
			execs = append(execs, d)
		}
	}
	globalGrid := c.topo.GlobalGrid
	dc := c.domClocks[g]
	return func(now simtime.Time) {
		if hasDecode && c.snapFn != nil {
			c.maybeSnapshot(g, now)
		}
		c.maybeRetune(g, now)
		for _, d := range owned {
			c.observeSquash(d, now)
		}
		if hasDecode {
			c.watchdogAndSamples()
			if c.cfg.SampleInterval != 0 {
				c.maybeSample()
			}
			c.dvfsController()
			c.stageCommit(now)
			c.stageDrainCompletions(now)
		}
		for _, d := range execs {
			c.stageComplete(d, now)
			c.stageDrainWakeups(d, now)
			c.stageDrainDispatch(d, now)
			c.stageIssue(d, now)
		}
		if hasDecode {
			c.stageRenameDispatch(now)
			c.stageDecode(now)
		}
		if hasFetch {
			c.stageFetch(now)
		}
		if c.tl != nil {
			c.tl.observeOccupancy(c, hasFetch, hasDecode, execs, now)
		}
		for _, d := range owned {
			c.endCycle(d)
		}
		if globalGrid {
			c.mtr.EndClockCycle(power.BlockGlobalClock, dc.EnergyScale())
		}
	}
}

// Run simulates until n instructions have committed and returns the
// statistics. Run may be called once per Core.
func (c *Core) Run(n uint64) Stats {
	if c.started {
		panic("pipeline: Run called twice")
	}
	if n == 0 {
		panic("pipeline: Run of zero instructions")
	}
	if n <= c.stats.Committed {
		panic(fmt.Sprintf("pipeline: Run target %d does not exceed the restored snapshot's %d committed instructions",
			n, c.stats.Committed))
	}
	c.started = true
	c.targetCommits = n

	for _, d := range c.domClocks {
		if !d.Started() {
			d.MarkStarted()
		}
	}

	// Priorities order simultaneous edges commit-side first; any fixed
	// order is legal for truly asynchronous clocks.
	prio := c.topo.priorities()
	c.tickEvents = make([]*event.Event, len(c.domClocks))
	c.tickFns = make([]func(simtime.Time), len(c.domClocks))
	for g := range c.domClocks {
		c.tickFns[g] = c.domainTick(g)
	}
	for g, dc := range c.domClocks {
		start, period := dc.Phase(), dc.Period()
		if c.restoreWhen != nil {
			// Restored core: resume the captured absolute event schedule
			// instead of starting each clock at its initial phase.
			start, period = c.restoreWhen[g], c.restorePeriod[g]
		}
		c.tickEvents[g] = c.eng.SchedulePeriodic(start, period, prio[g],
			dc.Name()+"-clock", c.tickFns[g])
	}

	c.eng.Run()
	c.finalize()
	return c.stats
}

// watchdogAndSamples advances the decode-cycle counter, samples occupancy
// statistics, and aborts on commit starvation (a structural deadlock would
// otherwise spin forever).
func (c *Core) watchdogAndSamples() {
	c.decodeCycles++
	c.rat.Sample()
	c.rob.Tick()
	if c.tl != nil {
		c.tl.checkStallTrigger(c)
	}
	if c.decodeCycles-c.lastProgress > uint64(c.cfg.MaxStallCycles) {
		panic(fmt.Sprintf(
			"pipeline: no commit in %d cycles (%s/%s): committed=%d rob=%d/%d head=%v iqs=%d/%d/%d sqActive=%v",
			c.cfg.MaxStallCycles, c.stats.Kind, c.stats.Benchmark,
			c.stats.Committed, c.rob.Len(), c.rob.Cap(), c.rob.Head(),
			c.exec[DomInt].queue.Len(), c.exec[DomFP].queue.Len(), c.exec[DomMem].queue.Len(),
			c.sq.active))
	}
}
