package pipeline

import (
	"testing"

	"galsim/internal/workload"
)

// runDyn runs perl (no FP instructions at all) with and without the dynamic
// controller: the FP domain should be detected idle and slowed to the
// configured maximum, saving energy at minimal performance cost.
func TestDynamicDVFSSlowsIdleDomain(t *testing.T) {
	prof, _ := workload.ByName("perl")

	static := NewCore(DefaultConfig(GALS), prof).Run(80_000)

	cfg := DefaultConfig(GALS)
	cfg.DynamicDVFS = DefaultDynamicDVFS()
	dyn := NewCore(cfg, prof).Run(80_000)

	if dyn.Retunes == 0 {
		t.Fatal("controller never retuned a domain")
	}
	// The probe-and-revert guard is conservative, so the exact endpoint
	// varies; the idle FP cluster must end clearly below full speed while
	// the busy int/mem domains stay at (or near) it.
	if got := dyn.FinalSlowdowns[DomFP]; got < 1.25 {
		t.Errorf("FP domain final slowdown %.2f; controller should have slowed the idle FP cluster", got)
	}
	if got := dyn.FinalSlowdowns[DomInt]; got > 1.7 {
		t.Errorf("int domain slowed to %.2f on an int benchmark", got)
	}
	if dyn.EnergyPJ >= static.EnergyPJ {
		t.Errorf("dynamic DVFS energy %.3g not below static GALS %.3g", dyn.EnergyPJ, static.EnergyPJ)
	}
	perfLoss := dyn.SimTime.Seconds()/static.SimTime.Seconds() - 1
	if perfLoss > 0.10 {
		t.Errorf("dynamic DVFS cost %.1f%% performance on a no-FP benchmark", 100*perfLoss)
	}
}

// A busy domain must not be slowed into the ground: on an FP-heavy
// benchmark the controller should keep the FP domain near full speed.
func TestDynamicDVFSKeepsBusyDomainFast(t *testing.T) {
	prof, _ := workload.ByName("swim")
	cfg := DefaultConfig(GALS)
	cfg.DynamicDVFS = DefaultDynamicDVFS()
	dyn := NewCore(cfg, prof).Run(40_000)
	if got := dyn.FinalSlowdowns[DomFP]; got > 1.7 {
		t.Errorf("FP domain slowed to %.2f on an FP-heavy benchmark", got)
	}

	// And the run completes with commit order intact (Retune rebases clock
	// edges; this checks nothing desynchronized).
	if dyn.Committed != 40_000 {
		t.Errorf("committed %d", dyn.Committed)
	}
}

func TestDynamicDVFSRejectedOnBase(t *testing.T) {
	cfg := DefaultConfig(Base)
	cfg.DynamicDVFS = DefaultDynamicDVFS()
	if err := cfg.Validate(); err == nil {
		t.Error("dynamic DVFS accepted on the base machine")
	}
}

func TestDynamicDVFSConfigValidation(t *testing.T) {
	bad := []DynamicDVFSConfig{
		{Enable: true, IntervalCycles: 10, LowOcc: 0.1, HighOcc: 0.5, Step: 1.3, MaxSlowdown: 3},
		{Enable: true, IntervalCycles: 2000, LowOcc: 0.5, HighOcc: 0.2, Step: 1.3, MaxSlowdown: 3},
		{Enable: true, IntervalCycles: 2000, LowOcc: 0.1, HighOcc: 0.5, Step: 1.0, MaxSlowdown: 3},
		{Enable: true, IntervalCycles: 2000, LowOcc: 0.1, HighOcc: 0.5, Step: 1.3, MaxSlowdown: 0.5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if (DynamicDVFSConfig{}).Validate() != nil {
		t.Error("disabled controller should validate")
	}
	if DefaultDynamicDVFS().Validate() != nil {
		t.Error("default controller config invalid")
	}
}

// Determinism must survive retuning (events are replaced mid-run).
func TestDynamicDVFSDeterministic(t *testing.T) {
	prof, _ := workload.ByName("perl")
	runIt := func() Stats {
		cfg := DefaultConfig(GALS)
		cfg.DynamicDVFS = DefaultDynamicDVFS()
		return NewCore(cfg, prof).Run(20_000)
	}
	a, b := runIt(), runIt()
	if a.SimTime != b.SimTime || a.EnergyPJ != b.EnergyPJ || a.Retunes != b.Retunes {
		t.Errorf("dynamic DVFS nondeterministic: %v/%v, %g/%g, %d/%d",
			a.SimTime, b.SimTime, a.EnergyPJ, b.EnergyPJ, a.Retunes, b.Retunes)
	}
}
