package pipeline

import (
	"galsim/internal/fifo"
	"galsim/internal/isa"
	"galsim/internal/power"
	"galsim/internal/simtime"
)

// stageFetch models pipe stage 1: I-cache access, branch prediction, and
// delivery into the fetch→decode link. On discovering a misprediction (the
// generator supplies ground truth at fetch) the front end enters wrong-path
// mode and keeps fetching junk until the branch resolves and the redirect
// arrives — exactly the behaviour whose cost grows with the GALS machine's
// longer recovery pipeline.
func (c *Core) stageFetch(now simtime.Time) {
	if c.done {
		return
	}
	if now < c.icacheStallTo {
		c.stats.FetchStallICache++
		if c.tl != nil {
			c.tl.icacheStallBegin(now)
		}
		return
	}
	if c.tl != nil {
		c.tl.icacheStallEnd(now)
	}
	for i := 0; i < c.cfg.FetchWidth; i++ {
		if !c.fetchToDecode.CanPut(now) {
			c.stats.FetchStallLinkFull++
			if c.tl != nil {
				c.tl.fetchLinkStallBegin(now)
			}
			break
		}
		if c.tl != nil {
			c.tl.fetchLinkStallEnd(now)
		}
		pc := c.gen.CurrentPC()
		if line := pc >> c.l1iLineShift; line != c.lastFetchLine {
			lat := c.mem.L1I.Access(pc, false)
			c.mtr.Access(power.BlockICache, 1)
			c.lastFetchLine = line
			if lat > c.cfg.Caches.L1I.HitLatency {
				c.mtr.Access(power.BlockL2, 1)
				c.icacheStallTo = now + simtime.Time(lat)*c.clocks[DomFetch].Period()
				c.stats.ICacheMisses++
				break
			}
		}
		var in *isa.Instr
		if c.inWrongPath {
			in = c.gen.NextWrongPath()
			in.WPID = c.currentWPID
		} else {
			in = c.gen.Next()
		}
		in.Seq = c.nextSeq
		c.nextSeq++
		in.FetchTime = now
		c.stats.Fetched++
		if in.WrongPath {
			c.stats.WrongPathFetched++
		}

		stopAfter := false
		if in.Class == isa.ClassBranch {
			pred := c.pred.Predict(in.PC)
			c.mtr.Access(power.BlockBPred, 1)
			in.PredTaken, in.PredTarget = pred.Taken, pred.Target
			if !in.WrongPath {
				// Train with ground truth; trace-driven front ends resolve
				// predictor state at fetch so base and GALS see identical
				// prediction accuracy and differ only in recovery cost.
				c.pred.Resolve(in.PC, pred, in.Taken, in.Target)
				mis := pred.Taken != in.Taken
				in.Mispredicted = mis
				switch {
				case mis:
					c.stats.Mispredicts++
					c.currentWPID++
					in.WPID = c.currentWPID
					wrongTarget := in.PC + 4 // predicted fallthrough
					if pred.Taken && pred.BTBHit {
						wrongTarget = pred.Target
					}
					c.gen.StartWrongPath(wrongTarget)
					c.inWrongPath = true
					c.histSnapshot = c.pred.HistorySnapshot()
				case in.Taken && (!pred.BTBHit || pred.Target != in.Target):
					// Correct direction but the target must be computed at
					// decode: a fetch bubble, not a recovery.
					c.stats.BTBBubbles++
					c.icacheStallTo = now + c.clocks[DomFetch].Period()
					stopAfter = true
				}
			}
			stopAfter = stopAfter || pred.Taken // taken-branch fetch break
		}
		c.fetchToDecode.Put(now, in.Seq, in)
		if c.tl != nil && c.tl.detail {
			c.tl.push(c.tl.trkF2D, now, int64(in.Seq))
		}
		if stopAfter {
			break
		}
	}
}

// stageDecode models pipe stage 2: move instructions from the fetch link
// into the decode→rename latch.
func (c *Core) stageDecode(now simtime.Time) {
	for i := 0; i < c.cfg.DecodeWidth; i++ {
		if !c.decodeToRename.CanPut(now) {
			break
		}
		if _, ok := c.fetchToDecode.Peek(now); !ok {
			break
		}
		in, wait, _ := c.fetchToDecode.Get(now)
		if c.tl != nil && c.tl.detail {
			c.tl.pop(c.tl.trkF2D, now, int64(in.Seq))
		}
		if c.doomed(in) {
			c.releaseInstr(in)
			continue
		}
		in.DecodeTime = now
		in.FIFOTime += wait
		c.mtr.Access(power.BlockRename, 1) // decode+rename logic are lumped
		c.decodeToRename.Put(now, in.Seq, in)
	}
}

// stageRenameDispatch models pipe stages 3-4: register rename, regfile read,
// ROB allocation, and dispatch into the per-cluster links. Stalls keep the
// instruction in the latch (in-order front end).
func (c *Core) stageRenameDispatch(now simtime.Time) {
	for i := 0; i < c.cfg.RenameWidth; i++ {
		in, ok := c.decodeToRename.Peek(now)
		if !ok {
			break
		}
		if c.doomed(in) {
			c.decodeToRename.Get(now)
			c.releaseInstr(in)
			continue
		}
		if c.rob.Full() {
			c.stats.RenameStallROB++
			break
		}
		if !c.rat.CanRename(in) {
			c.stats.RenameStallRegs++
			break
		}
		dd := execDomainOf(in.Class)
		link := c.dispatch[dd]
		if !link.CanPut(now) {
			c.stats.RenameStallDispatch++
			if c.tl != nil {
				c.tl.dispatchStallBegin(dd, now)
			}
			break
		}
		if c.tl != nil {
			c.tl.dispatchStallEnd(dd, now)
		}
		_, wait, _ := c.decodeToRename.Get(now)
		in.FIFOTime += wait
		c.rat.Rename(in)
		c.mtr.Access(power.BlockRename, 1)
		c.mtr.Access(power.BlockRegfile, 2) // source reads
		if in.PhysDest >= 0 {
			c.resetReady(in.PhysDest)
		}
		// The record now lives in two structures at once: the ROB (until
		// commit or squash) and the dispatch path. Take the second arena
		// reference for the ROB's hold.
		c.retainInstr(in)
		c.rob.Push(in)
		link.Put(now, in.Seq, in)
		if c.tl != nil && c.tl.detail {
			c.tl.push(c.tl.trkDispatch[dd], now, int64(in.Seq))
		}
	}
}

// stageCommit models pipe stage 8: in-order retirement from the ROB head.
// Stores perform their D-cache write here (no speculative stores).
func (c *Core) stageCommit(now simtime.Time) {
	for i := 0; i < c.cfg.CommitWidth && !c.rob.Empty(); i++ {
		h := c.rob.Head()
		if h.WrongPath {
			// Wrong-path entries at the head are awaiting this domain's
			// squash observation; nothing can ever commit past them.
			break
		}
		if !h.Done {
			break
		}
		if h.Class == isa.ClassStore {
			lat := c.mem.L1D.Access(h.Addr, true)
			c.mtr.Access(power.BlockDCache, 1)
			if lat > c.cfg.Caches.L1D.HitLatency {
				c.mtr.Access(power.BlockL2, 1)
			}
		}
		if h.PhysDest >= 0 {
			c.mtr.Access(power.BlockRegfile, 1) // architectural write
		}
		c.rat.Commit(h)
		h.CommitTime = now
		c.rob.PopHead()
		c.stats.Committed++
		c.stats.SlipSum += h.Slip()
		c.stats.FIFOSlipSum += h.FIFOTime
		c.stats.SumFetchToDecode += h.DecodeTime - h.FetchTime
		c.stats.SumDecodeToDispatch += h.DispatchTime - h.DecodeTime
		c.stats.SumDispatchToIssue += h.IssueTime - h.DispatchTime
		c.stats.SumIssueToComplete += h.CompleteTime - h.IssueTime
		c.stats.SumCompleteToCommit += h.CommitTime - h.CompleteTime
		c.lastProgress = c.decodeCycles
		if c.commitHook != nil {
			c.commitHook(h)
		}
		// Retirement drops the last reference (the completion drain released
		// the flow side when it marked the instruction done): the record
		// returns to the arena for the fetch stage to reuse.
		c.releaseInstr(h)
		if c.stats.Committed >= c.targetCommits {
			c.done = true
			c.eng.Stop()
			return
		}
	}
}

// stageDrainCompletions models pipe stage 7's ROB side: completion
// notifications arriving from the execution domains mark instructions done.
func (c *Core) stageDrainCompletions(now simtime.Time) {
	for _, d := range execDomains {
		link := c.complete[d]
		for i := 0; i < 2*c.cfg.CommitWidth; i++ {
			if _, ok := link.Peek(now); !ok {
				break
			}
			in, wait, _ := link.Get(now)
			if c.tl != nil && c.tl.detail {
				c.tl.pop(c.tl.trkComplete[d], now, int64(in.Seq))
			}
			if c.doomed(in) {
				c.releaseInstr(in)
				continue
			}
			in.Done = true
			in.FIFOTime += wait
			// The completion left the flow structures; only the ROB still
			// holds the record.
			c.releaseInstr(in)
		}
	}
}

// wakeLinksFor returns the wakeup links a completed result must traverse to
// reach its remote consumers (precomputed shared slices; callers must not
// mutate). Same-domain consumers are woken directly at issue time
// (back-to-back issue within a cluster, §4.1).
func (c *Core) wakeLinksFor(d DomainID, in *isa.Instr) []fifo.Link[wakeTag] {
	if in.PhysDest < 0 {
		return nil
	}
	switch d {
	case DomInt, DomFP:
		return c.wakeOut[d]
	case DomMem:
		if in.Dest.File == isa.RegFP {
			return c.wakeOutFP
		}
		return c.wakeOut[DomMem]
	default:
		return nil
	}
}

// stageComplete finishes issued operations whose latency has elapsed:
// completion notification toward the ROB, wakeup tags toward remote
// domains, and — for a mispredicted correct-path branch — the squash.
// Backpressure on any required link defers the completion a cycle.
func (c *Core) stageComplete(d DomainID, now simtime.Time) {
	u := c.exec[d]
	kept := u.inflight[:0]
	for _, op := range u.inflight {
		if op.doneAt > now {
			kept = append(kept, op)
			continue
		}
		in := op.in
		if c.doomed(in) {
			c.releaseInstr(in) // squashed in flight; result discarded
			continue
		}
		wls := c.wakeLinksFor(d, in)
		blocked := !c.complete[d].CanPut(now)
		for _, wl := range wls {
			if !wl.CanPut(now) {
				blocked = true
			}
		}
		if blocked {
			c.stats.CompleteBackpressure++
			if c.tl != nil {
				c.tl.backpressureBegin(d, now)
			}
			kept = append(kept, op)
			continue
		}
		if c.tl != nil {
			c.tl.backpressureEnd(d, now)
		}
		in.CompleteTime = now
		for _, wl := range wls {
			wl.Put(now, in.Seq, wakeTag{phys: in.PhysDest, seq: in.Seq,
				wrongPath: in.WrongPath, wpid: in.WPID})
		}
		c.complete[d].Put(now, in.Seq, in)
		if c.tl != nil && c.tl.detail {
			c.tl.push(c.tl.trkComplete[d], now, int64(in.Seq))
		}
		if in.Class == isa.ClassBranch && in.Mispredicted && !in.WrongPath {
			c.stats.ResolutionSum += now - in.FetchTime
			c.postSquash(in, now)
		}
	}
	u.inflight = kept
}

// stageDrainWakeups delivers remote results into this domain's operand
// readiness table.
func (c *Core) stageDrainWakeups(d DomainID, now simtime.Time) {
	for _, l := range c.wakeIn[d] {
		for {
			if _, ok := l.Peek(now); !ok {
				break
			}
			tag, _, _ := l.Get(now)
			if c.doomedTag(tag) {
				continue
			}
			if now < c.readyAt[d][tag.phys] {
				c.readyAt[d][tag.phys] = now
			}
			c.mtr.Access(iqBlock(d), 1) // wakeup CAM broadcast
		}
	}
}

// stageDrainDispatch moves dispatched instructions into the issue queue.
func (c *Core) stageDrainDispatch(d DomainID, now simtime.Time) {
	u := c.exec[d]
	for !u.queue.Full() {
		if _, ok := c.dispatch[d].Peek(now); !ok {
			break
		}
		in, wait, _ := c.dispatch[d].Get(now)
		if c.tl != nil && c.tl.detail {
			c.tl.pop(c.tl.trkDispatch[d], now, int64(in.Seq))
		}
		if c.doomed(in) {
			c.releaseInstr(in)
			continue
		}
		in.DispatchTime = now
		in.FIFOTime += wait
		u.queue.Insert(in)
		c.mtr.Access(iqBlock(d), 1) // window write
	}
}

// selectMemOps applies the configured load/store ordering policy while
// selecting from the memory issue queue: program order is walked once,
// tracking older stores whose addresses are still unknown (their operands
// not ready), and loads that conflict under the policy stay queued. The walk
// state and the callback itself live on the Core (reset here, built once in
// buildScratch) so a steady-state cycle performs no allocation.
func (c *Core) selectMemOps(dst []*isa.Instr, u *execUnit, width int) []*isa.Instr {
	c.memSel.pendingStores = 0
	c.memSel.pendingAddrs = c.memSel.pendingAddrs[:0]
	return u.queue.Scan(dst, width, c.memTake)
}

// stageIssue models pipe stages 5-6: select ready instructions oldest-first,
// claim functional units, access the D-cache for loads, and schedule
// completion. Same-domain consumers become ready exactly when the result
// does, giving back-to-back dependent issue within a cluster.
func (c *Core) stageIssue(d DomainID, now simtime.Time) {
	u := c.exec[d]
	u.queue.Tick()
	free := 0
	for _, b := range u.fuBusyUntil {
		if b <= now {
			free++
		}
	}
	if free == 0 {
		return
	}
	c.readyNow = now // observation instant for the prebuilt ready closures
	sel := c.selScratch[:0]
	if d == DomMem && c.cfg.MemDisambig != DisambigPerfect {
		sel = c.selectMemOps(sel, u, free)
	} else {
		sel = u.queue.SelectReady(sel, free, c.readyFn[d])
	}
	period := c.clocks[d].Period()
	for _, in := range sel {
		fu := -1
		for fi, b := range u.fuBusyUntil {
			if b <= now {
				fu = fi
				break
			}
		}
		in.IssueTime = now
		latCycles := int64(in.Class.ExecLatency())
		switch in.Class {
		case isa.ClassLoad:
			clat := c.mem.L1D.Access(in.Addr, false)
			c.mtr.Access(power.BlockDCache, 1)
			if clat > c.cfg.Caches.L1D.HitLatency {
				c.mtr.Access(power.BlockL2, 1)
			}
			in.DCacheHit = clat == c.cfg.Caches.L1D.HitLatency
			latCycles = 1 + int64(clat) // AGU + cache
		case isa.ClassStore:
			latCycles = 1 // AGU only; the write happens at commit
		}
		occupancy := int64(1) // pipelined units
		if in.Class == isa.ClassFPDiv || in.Class == isa.ClassIntMul {
			occupancy = latCycles // iterative units block
		}
		u.fuBusyUntil[fu] = now + simtime.Time(occupancy)*period
		doneAt := now + simtime.Time(latCycles)*period
		if in.PhysDest >= 0 {
			c.readyAt[d][in.PhysDest] = doneAt
		}
		switch d {
		case DomInt:
			c.mtr.Access(power.BlockALUs, 1)
		case DomFP:
			c.mtr.Access(power.BlockFPALUs, 1)
		}
		c.mtr.Access(iqBlock(d), 1) // select + window read
		u.inflight = append(u.inflight, inflightOp{in: in, doneAt: doneAt})
	}
}
