package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"galsim/internal/isa"
	"galsim/internal/pipeline"
)

// Execute runs one unit directly, bypassing any cache. onCommit, when
// non-nil, receives every committed instruction in program order. Panics
// from the simulator core (e.g. the deadlock guard) are converted to errors
// so a malformed unit cannot take down a whole campaign or a server.
func Execute(spec RunSpec, onCommit func(*isa.Instr)) (st pipeline.Stats, err error) {
	cfg, prof, err := spec.PipelineConfig()
	if err != nil {
		return pipeline.Stats{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: run %s/%s failed: %v", spec.Machine, spec.Benchmark, r)
		}
	}()
	core := pipeline.NewCore(cfg, prof)
	if onCommit != nil {
		core.OnCommit(onCommit)
	}
	return core.Run(spec.Canonical().Instructions), nil
}

// CacheStats snapshots the engine's memoization counters.
type CacheStats struct {
	Hits    uint64 `json:"hits"`    // runs served from the cache (or joined in flight)
	Misses  uint64 `json:"misses"`  // runs actually simulated
	Entries int    `json:"entries"` // completed runs currently held
}

// entry is one cached (or in-flight) run; done is closed when st/err are set.
type entry struct {
	done chan struct{}
	st   pipeline.Stats
	err  error
}

const numShards = 32

// shard is one lock-striped slice of the content-addressed cache.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// Engine executes RunSpecs with bounded concurrency and memoizes every
// completed run in a sharded in-memory cache keyed by RunSpec.Key. At most
// `workers` simulations execute at any moment, across all concurrent Run
// and RunAll callers. It is safe for concurrent use; concurrent requests
// for the same key share a single simulation (singleflight).
type Engine struct {
	workers int
	sem     chan struct{} // global simulation-concurrency bound
	shards  [numShards]shard
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewEngine builds an engine with the given worker-pool width; workers <= 0
// selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, sem: make(chan struct{}, workers)}
	for i := range e.shards {
		e.shards[i].entries = map[string]*entry{}
	}
	return e
}

// Workers returns the pool width.
func (e *Engine) Workers() int { return e.workers }

var (
	sharedOnce   sync.Once
	sharedEngine *Engine
)

// Shared returns the process-wide default engine (GOMAXPROCS workers).
// galsim.RunMany and the experiment drivers both execute through it, so
// overlapping specs issued via either API are simulated exactly once per
// process and share one result cache.
func Shared() *Engine {
	sharedOnce.Do(func() { sharedEngine = NewEngine(0) })
	return sharedEngine
}

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() CacheStats {
	s := CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load()}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

func (e *Engine) shardFor(key string) *shard {
	// key is hex SHA-256: decode the leading byte (two nibbles) so the
	// index is uniform over 0..255 rather than over the 16 hex digits.
	return &e.shards[(hexNibble(key[0])<<4|hexNibble(key[1]))%numShards]
}

func hexNibble(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// Run executes one unit through the cache: a previously completed identical
// spec returns instantly, an in-flight one is joined, and a new one is
// simulated on the calling goroutine once a worker slot frees up, so
// concurrent callers never exceed the engine's worker bound. ctx
// cancellation abandons the wait (an already-started simulation still
// completes and populates the cache).
func (e *Engine) Run(ctx context.Context, spec RunSpec) (pipeline.Stats, error) {
	if err := spec.Validate(); err != nil {
		return pipeline.Stats{}, err
	}
	key := spec.Key()
	sh := e.shardFor(key)
	for {
		if err := ctx.Err(); err != nil {
			return pipeline.Stats{}, err
		}
		sh.mu.Lock()
		if ent, ok := sh.entries[key]; ok {
			sh.mu.Unlock()
			e.hits.Add(1)
			select {
			case <-ent.done:
				// The owner may have given up waiting for a worker slot
				// because ITS context was cancelled; that must not poison
				// a joiner whose context is still live. The failed entry
				// was already deleted, so loop and take ownership.
				if (errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)) && ctx.Err() == nil {
					continue
				}
				return ent.st, ent.err
			case <-ctx.Done():
				return pipeline.Stats{}, ctx.Err()
			}
		}
		ent := &entry{done: make(chan struct{})}
		sh.entries[key] = ent
		sh.mu.Unlock()

		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			ent.err = ctx.Err()
		}
		if ent.err == nil {
			e.misses.Add(1)
			ent.st, ent.err = Execute(spec, nil)
			<-e.sem
		}
		if ent.err != nil {
			// Do not cache failures: a later identical request re-validates.
			sh.mu.Lock()
			delete(sh.entries, key)
			sh.mu.Unlock()
		}
		close(ent.done)
		return ent.st, ent.err
	}
}

// RunAll fans specs out over the worker pool and returns their stats in
// input order. The first error cancels the remaining units and is returned;
// a cancelled ctx stops the pool promptly (units not yet started are never
// simulated). Duplicate specs within one call are simulated once.
func (e *Engine) RunAll(ctx context.Context, specs []RunSpec) ([]pipeline.Stats, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]pipeline.Stats, len(specs))
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	next := make(chan int)
	workers := min(e.workers, len(specs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				st, err := e.Run(ctx, specs[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("campaign: unit %d (%s/%s): %w",
							i, specs[i].Machine, specs[i].Benchmark, err)
						cancel()
					})
					return
				}
				results[i] = st
			}
		}()
	}
feed:
	for i := range specs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
