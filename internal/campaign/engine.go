package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"galsim/internal/isa"
	"galsim/internal/pipeline"
	"galsim/internal/timeline"
	"galsim/internal/trace"
)

// Execute runs one unit directly, bypassing any cache. onCommit, when
// non-nil, receives every committed instruction in program order. Panics
// from the simulator core (e.g. the deadlock guard) are converted to errors
// so a malformed unit cannot take down a whole campaign or a server.
func Execute(spec RunSpec, onCommit func(*isa.Instr)) (pipeline.Stats, error) {
	return ExecuteRecording(spec, onCommit, nil)
}

// ExecuteRecording is Execute with an optional capture tap: when traceOut
// is non-nil the workload stream delivered to the pipeline is recorded to
// it in the trace format, so the run can later be replayed (see
// internal/trace). Recording never alters the simulation.
func ExecuteRecording(spec RunSpec, onCommit func(*isa.Instr), traceOut io.Writer) (pipeline.Stats, error) {
	return ExecuteTimeline(spec, onCommit, traceOut, TimelineTap{})
}

// TimelineTap configures the microarchitecture timeline of one execution.
// Timelines are a local observation tap, like OnCommit and trace capture:
// they never join RunSpec, so they cannot perturb cache keys or results.
type TimelineTap struct {
	Recorder *timeline.Recorder
	// Detail records per-item push/pop instants on cross-domain links.
	Detail bool
	// StallThreshold (decode cycles without a commit) marks the recorder
	// triggered for a flight-recorder dump; 0 disables.
	StallThreshold uint64
}

// ExecuteTimeline is ExecuteRecording with an optional timeline tracer
// attached to the core for the duration of the run.
func ExecuteTimeline(spec RunSpec, onCommit func(*isa.Instr), traceOut io.Writer, tap TimelineTap) (st pipeline.Stats, err error) {
	// Canonicalize once: pins trace digests (so the later Validate detects
	// a file swapped underneath us) and spares repeated default-filling.
	spec = spec.Canonical()
	cfg, err := spec.PipelineConfig()
	if err != nil {
		return pipeline.Stats{}, err
	}
	src, name, err := spec.NewSource()
	if err != nil {
		return pipeline.Stats{}, err
	}
	var rec *trace.Recorder
	if traceOut != nil {
		specJSON, merr := json.Marshal(spec)
		if merr != nil {
			return pipeline.Stats{}, fmt.Errorf("campaign: marshaling spec for trace header: %w", merr)
		}
		tw, werr := trace.NewWriter(traceOut, trace.Meta{
			Name:          name,
			Instructions:  spec.Instructions,
			SpecJSON:      specJSON,
			MachineDigest: spec.MachineDigest(),
		})
		if werr != nil {
			return pipeline.Stats{}, werr
		}
		rec = trace.NewRecorder(src, tw)
		src = rec
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: run %s/%s failed: %v", spec.MachineName(), spec.WorkloadName(), r)
		}
	}()
	core := pipeline.NewCoreWithSource(cfg, name, src)
	if onCommit != nil {
		core.OnCommit(onCommit)
	}
	if tap.Recorder != nil {
		core.AttachTimeline(tap.Recorder, tap.Detail, tap.StallThreshold)
	}
	st = core.Run(spec.Instructions)
	if rec != nil {
		if cerr := rec.Close(); cerr != nil {
			return pipeline.Stats{}, fmt.Errorf("campaign: writing trace: %w", cerr)
		}
	}
	return st, nil
}

// CacheStats snapshots the engine's memoization counters.
type CacheStats struct {
	Hits    uint64 `json:"hits"`    // runs served from the cache (or joined in flight)
	Misses  uint64 `json:"misses"`  // runs actually simulated
	Entries int    `json:"entries"` // completed runs currently held
}

// entry is one cached (or in-flight) run; done is closed when st/err are set.
type entry struct {
	done chan struct{}
	st   pipeline.Stats
	err  error
}

const numShards = 32

// shard is one lock-striped slice of the content-addressed cache.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// Engine executes RunSpecs with bounded concurrency and memoizes every
// completed run in a sharded in-memory cache keyed by RunSpec.Key. At most
// `workers` simulations execute at any moment, across all concurrent Run
// and RunAll callers. It is safe for concurrent use; concurrent requests
// for the same key share a single simulation (singleflight).
type Engine struct {
	workers int
	sem     chan struct{} // global simulation-concurrency bound
	shards  [numShards]shard
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewEngine builds an engine with the given worker-pool width; workers <= 0
// selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, sem: make(chan struct{}, workers)}
	for i := range e.shards {
		e.shards[i].entries = map[string]*entry{}
	}
	return e
}

// Workers returns the pool width.
func (e *Engine) Workers() int { return e.workers }

var (
	sharedOnce   sync.Once
	sharedEngine *Engine
)

// Shared returns the process-wide default engine (GOMAXPROCS workers).
// galsim.RunMany and the experiment drivers both execute through it, so
// overlapping specs issued via either API are simulated exactly once per
// process and share one result cache.
func Shared() *Engine {
	sharedOnce.Do(func() { sharedEngine = NewEngine(0) })
	return sharedEngine
}

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() CacheStats {
	s := CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load()}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

func (e *Engine) shardFor(key string) *shard {
	// key is hex SHA-256: decode the leading byte (two nibbles) so the
	// index is uniform over 0..255 rather than over the 16 hex digits.
	return &e.shards[(hexNibble(key[0])<<4|hexNibble(key[1]))%numShards]
}

func hexNibble(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// Run executes one unit through the cache: a previously completed identical
// spec returns instantly, an in-flight one is joined, and a new one is
// simulated on the calling goroutine once a worker slot frees up, so
// concurrent callers never exceed the engine's worker bound. ctx
// cancellation abandons the wait (an already-started simulation still
// completes and populates the cache).
func (e *Engine) Run(ctx context.Context, spec RunSpec) (pipeline.Stats, error) {
	st, _, err := e.run(ctx, spec, TimelineTap{})
	return st, err
}

// RunTimeline is Run with a cache-hit report and a timeline tap attached
// when this call actually simulates. A unit served from the cache (or
// joined in flight) reports hit=true and leaves the recorder empty — the
// cached result was produced elsewhere and a timeline is an observation
// of one execution, not part of the memoized value.
func (e *Engine) RunTimeline(ctx context.Context, spec RunSpec, tap TimelineTap) (pipeline.Stats, bool, error) {
	return e.run(ctx, spec, tap)
}

// run is Run plus a cache-hit report: hit is true when the result came from
// a completed cache entry or joined an in-flight simulation — the signal
// Progress.CacheHits aggregates.
func (e *Engine) run(ctx context.Context, spec RunSpec, tap TimelineTap) (pipeline.Stats, bool, error) {
	// Canonicalize once up front: this pins a trace's content digest, so
	// the cache key below and the execution's own Validate see the same
	// content. A trace file swapped between keying and execution then fails
	// the digest check with an explicit error instead of caching the new
	// content's results under the old content's key.
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return pipeline.Stats{}, false, err
	}
	key := spec.Key()
	sh := e.shardFor(key)
	for {
		if err := ctx.Err(); err != nil {
			return pipeline.Stats{}, false, err
		}
		sh.mu.Lock()
		if ent, ok := sh.entries[key]; ok {
			sh.mu.Unlock()
			e.hits.Add(1)
			select {
			case <-ent.done:
				// The owner may have given up waiting for a worker slot
				// because ITS context was cancelled; that must not poison
				// a joiner whose context is still live. The failed entry
				// was already deleted, so loop and take ownership.
				if (errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)) && ctx.Err() == nil {
					continue
				}
				return ent.st, true, ent.err
			case <-ctx.Done():
				return pipeline.Stats{}, false, ctx.Err()
			}
		}
		ent := &entry{done: make(chan struct{})}
		sh.entries[key] = ent
		sh.mu.Unlock()

		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			ent.err = ctx.Err()
		}
		if ent.err == nil {
			e.misses.Add(1)
			ent.st, ent.err = ExecuteTimeline(spec, nil, nil, tap)
			<-e.sem
		}
		if ent.err != nil {
			// Do not cache failures: a later identical request re-validates.
			sh.mu.Lock()
			delete(sh.entries, key)
			sh.mu.Unlock()
		}
		close(ent.done)
		return ent.st, false, ent.err
	}
}

// RunAll fans specs out over the worker pool and returns their stats in
// input order. The first error cancels the remaining units and is returned;
// a cancelled ctx stops the pool promptly (units not yet started are never
// simulated). Duplicate specs within one call are simulated once.
func (e *Engine) RunAll(ctx context.Context, specs []RunSpec) ([]pipeline.Stats, error) {
	return e.RunAllProgress(ctx, specs, nil)
}

// RunAllProgress is RunAll with live progress reporting: fn (when non-nil)
// receives a monotone Progress snapshot after every completed unit, from
// the completing worker goroutines. Implements ProgressBackend.
func (e *Engine) RunAllProgress(ctx context.Context, specs []RunSpec, fn ProgressFunc) ([]pipeline.Stats, error) {
	if len(specs) == 0 {
		if fn != nil {
			fn(Progress{})
		}
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		progMu sync.Mutex
		prog   = Progress{Total: len(specs)}
	)
	report := func(mutate func(*Progress)) {
		if fn == nil {
			return
		}
		progMu.Lock()
		mutate(&prog)
		snap := prog
		progMu.Unlock()
		fn(snap)
	}

	results := make([]pipeline.Stats, len(specs))
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	next := make(chan int)
	workers := min(e.workers, len(specs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				st, hit, err := e.run(ctx, specs[i], TimelineTap{})
				if err != nil {
					// Only the winning (first) error counts as a failed
					// unit; the cancellation errors it induces in the other
					// workers are not failures of their units.
					won := false
					errOnce.Do(func() {
						firstErr = fmt.Errorf("campaign: unit %d (%s/%s): %w",
							i, specs[i].MachineName(), specs[i].WorkloadName(), err)
						cancel()
						won = true
					})
					if won {
						report(func(p *Progress) { p.Failed++ })
					}
					return
				}
				results[i] = st
				report(func(p *Progress) {
					p.Completed++
					if hit {
						p.CacheHits++
					}
				})
			}
		}()
	}
feed:
	for i := range specs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
