package campaign

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"

	"galsim/internal/pipeline"
	"galsim/internal/snapshot"
	"galsim/internal/timeline"
)

// TimelineTap configures the microarchitecture timeline of one execution.
// Timelines are a local observation tap, like OnCommit and trace capture:
// they never join RunSpec, so they cannot perturb cache keys or results.
type TimelineTap struct {
	Recorder *timeline.Recorder
	// Detail records per-item push/pop instants on cross-domain links.
	Detail bool
	// StallThreshold (decode cycles without a commit) marks the recorder
	// triggered for a flight-recorder dump; 0 disables.
	StallThreshold uint64
}

// CacheStats snapshots the engine's memoization counters.
type CacheStats struct {
	Hits    uint64 `json:"hits"`    // runs served from the cache (or joined in flight)
	Misses  uint64 `json:"misses"`  // runs actually simulated
	Entries int    `json:"entries"` // completed runs currently held
}

// entry is one cached (or in-flight) run; done is closed when st/err are set.
type entry struct {
	done chan struct{}
	st   pipeline.Stats
	err  error
}

const numShards = 32

// shard is one lock-striped slice of the content-addressed cache.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// Engine executes RunSpecs with bounded concurrency and memoizes every
// completed run in a sharded in-memory cache keyed by RunSpec.Key. At most
// `workers` simulations execute at any moment, across all concurrent Run
// and RunAll callers. It is safe for concurrent use; concurrent requests
// for the same key share a single simulation (singleflight).
type Engine struct {
	workers int
	sem     chan struct{} // global simulation-concurrency bound
	shards  [numShards]shard
	hits    atomic.Uint64
	misses  atomic.Uint64

	// Warm-up sharing counters (see RunAllWarm).
	warmGroups atomic.Uint64 // prefix groups that actually shared a snapshot
	warmSaved  atomic.Uint64 // warm-up instructions not re-simulated
}

// NewEngine builds an engine with the given worker-pool width; workers <= 0
// selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, sem: make(chan struct{}, workers)}
	for i := range e.shards {
		e.shards[i].entries = map[string]*entry{}
	}
	return e
}

// Workers returns the pool width.
func (e *Engine) Workers() int { return e.workers }

var (
	sharedOnce   sync.Once
	sharedEngine *Engine
)

// Shared returns the process-wide default engine (GOMAXPROCS workers).
// galsim.RunMany and the experiment drivers both execute through it, so
// overlapping specs issued via either API are simulated exactly once per
// process and share one result cache.
func Shared() *Engine {
	sharedOnce.Do(func() { sharedEngine = NewEngine(0) })
	return sharedEngine
}

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() CacheStats {
	s := CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load()}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

func (e *Engine) shardFor(key string) *shard {
	// key is hex SHA-256: decode the leading byte (two nibbles) so the
	// index is uniform over 0..255 rather than over the 16 hex digits.
	return &e.shards[(hexNibble(key[0])<<4|hexNibble(key[1]))%numShards]
}

func hexNibble(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// Run executes one unit through the cache: a previously completed identical
// spec returns instantly, an in-flight one is joined, and a new one is
// simulated on the calling goroutine once a worker slot frees up, so
// concurrent callers never exceed the engine's worker bound. ctx
// cancellation abandons the wait (an already-started simulation still
// completes and populates the cache).
func (e *Engine) Run(ctx context.Context, spec RunSpec) (pipeline.Stats, error) {
	st, _, err := e.run(ctx, spec, TimelineTap{})
	return st, err
}

// RunTimeline is Run with a cache-hit report and a timeline tap attached
// when this call actually simulates. A unit served from the cache (or
// joined in flight) reports hit=true and leaves the recorder empty — the
// cached result was produced elsewhere and a timeline is an observation
// of one execution, not part of the memoized value.
func (e *Engine) RunTimeline(ctx context.Context, spec RunSpec, tap TimelineTap) (pipeline.Stats, bool, error) {
	return e.run(ctx, spec, tap)
}

// run is Run plus a cache-hit report: hit is true when the result came from
// a completed cache entry or joined an in-flight simulation — the signal
// Progress.CacheHits aggregates.
func (e *Engine) run(ctx context.Context, spec RunSpec, tap TimelineTap) (pipeline.Stats, bool, error) {
	return e.runWith(ctx, spec, func(s RunSpec) (pipeline.Stats, error) {
		return ExecuteOpts(s, ExecOpts{Tap: tap})
	})
}

// runWith is the cache/singleflight core of run with the execution itself
// pluggable: warm-up sharing swaps in executors that capture or resume a
// snapshot, whose results are cache-grade because the pipeline differential
// gate proves them byte-identical to cold executions.
func (e *Engine) runWith(ctx context.Context, spec RunSpec, exec func(RunSpec) (pipeline.Stats, error)) (pipeline.Stats, bool, error) {
	// Canonicalize once up front: this pins a trace's content digest, so
	// the cache key below and the execution's own Validate see the same
	// content. A trace file swapped between keying and execution then fails
	// the digest check with an explicit error instead of caching the new
	// content's results under the old content's key.
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return pipeline.Stats{}, false, err
	}
	key := spec.Key()
	sh := e.shardFor(key)
	for {
		if err := ctx.Err(); err != nil {
			return pipeline.Stats{}, false, err
		}
		sh.mu.Lock()
		if ent, ok := sh.entries[key]; ok {
			sh.mu.Unlock()
			e.hits.Add(1)
			select {
			case <-ent.done:
				// The owner may have given up waiting for a worker slot
				// because ITS context was cancelled; that must not poison
				// a joiner whose context is still live. The failed entry
				// was already deleted, so loop and take ownership.
				if (errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)) && ctx.Err() == nil {
					continue
				}
				return ent.st, true, ent.err
			case <-ctx.Done():
				return pipeline.Stats{}, false, ctx.Err()
			}
		}
		ent := &entry{done: make(chan struct{})}
		sh.entries[key] = ent
		sh.mu.Unlock()

		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			ent.err = ctx.Err()
		}
		if ent.err == nil {
			e.misses.Add(1)
			ent.st, ent.err = exec(spec)
			<-e.sem
		}
		if ent.err != nil {
			// Do not cache failures: a later identical request re-validates.
			sh.mu.Lock()
			delete(sh.entries, key)
			sh.mu.Unlock()
		}
		close(ent.done)
		return ent.st, false, ent.err
	}
}

// RunAll fans specs out over the worker pool and returns their stats in
// input order. The first error cancels the remaining units and is returned;
// a cancelled ctx stops the pool promptly (units not yet started are never
// simulated). Duplicate specs within one call are simulated once.
func (e *Engine) RunAll(ctx context.Context, specs []RunSpec) ([]pipeline.Stats, error) {
	return e.RunAllProgress(ctx, specs, nil)
}

// RunAllProgress is RunAll with live progress reporting: fn (when non-nil)
// receives a monotone Progress snapshot after every completed unit, from
// the completing worker goroutines. Implements ProgressBackend.
func (e *Engine) RunAllProgress(ctx context.Context, specs []RunSpec, fn ProgressFunc) ([]pipeline.Stats, error) {
	if len(specs) == 0 {
		if fn != nil {
			fn(Progress{})
		}
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		progMu sync.Mutex
		prog   = Progress{Total: len(specs)}
	)
	report := func(mutate func(*Progress)) {
		if fn == nil {
			return
		}
		progMu.Lock()
		mutate(&prog)
		snap := prog
		progMu.Unlock()
		fn(snap)
	}

	results := make([]pipeline.Stats, len(specs))
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	next := make(chan int)
	workers := min(e.workers, len(specs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				st, hit, err := e.run(ctx, specs[i], TimelineTap{})
				if err != nil {
					// Only the winning (first) error counts as a failed
					// unit; the cancellation errors it induces in the other
					// workers are not failures of their units.
					won := false
					errOnce.Do(func() {
						firstErr = fmt.Errorf("campaign: unit %d (%s/%s): %w",
							i, specs[i].MachineName(), specs[i].WorkloadName(), err)
						cancel()
						won = true
					})
					if won {
						report(func(p *Progress) { p.Failed++ })
					}
					return
				}
				results[i] = st
				report(func(p *Progress) {
					p.Completed++
					if hit {
						p.CacheHits++
					}
				})
			}
		}()
	}
feed:
	for i := range specs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// WarmSharing reports the engine's lifetime warm-up sharing activity: how
// many prefix groups actually forked a shared snapshot, and how many
// committed warm-up instructions resumed runs skipped re-simulating.
func (e *Engine) WarmSharing() (groups, savedInstructions uint64) {
	return e.warmGroups.Load(), e.warmSaved.Load()
}

// RunCheckpointed is Run with periodic checkpoint capture and optional
// resume — the cluster worker's seam for long jobs. Every `every` committed
// instructions the execution delivers its full state to onSnap; a non-nil
// resume skips straight past its Committed prefix. A cache hit (or joined
// in-flight run) returns instantly and onSnap never fires: nothing was
// simulated. Results are cache-grade — the pipeline differential gate
// proves a resumed execution byte-identical to a cold one.
func (e *Engine) RunCheckpointed(ctx context.Context, spec RunSpec, every uint64, onSnap func(*snapshot.Snapshot), resume *snapshot.Snapshot) (pipeline.Stats, bool, error) {
	return e.runWith(ctx, spec, func(s RunSpec) (pipeline.Stats, error) {
		return ExecuteOpts(s, ExecOpts{CheckpointEvery: every, OnSnapshot: onSnap, Resume: resume})
	})
}

// maxWarmUnits bounds RunAllWarm's per-group orchestration goroutines;
// batches beyond it fall back to the plain worker pool.
const maxWarmUnits = 1 << 16

// RunAllWarm is RunAllProgress with warm-up sharing: units that share a
// warm identity (WarmKey — same machine, workload and run settings, any
// instruction budget) simulate their common prefix once. The first unit of
// each group runs cold and captures a snapshot at `warmup` committed
// instructions — a pure observation, so its own result is untouched — and
// the group's other units resume from that snapshot instead of re-warming.
// Results are byte-identical to RunAll's (the pipeline differential gate
// proves restore ≡ straight-line run) and populate the same cache. Units
// with no prefix peers — machine- or workload-divergent points — warm
// independently, and the engine says so on the log.
func (e *Engine) RunAllWarm(ctx context.Context, specs []RunSpec, warmup uint64, fn ProgressFunc) ([]pipeline.Stats, error) {
	if warmup == 0 || len(specs) < 2 {
		return e.RunAllProgress(ctx, specs, fn)
	}
	if len(specs) > maxWarmUnits {
		slog.Default().Info("campaign: batch too large for warm-up sharing; running unshared",
			"units", len(specs), "max", maxWarmUnits)
		return e.RunAllProgress(ctx, specs, fn)
	}
	canon := make([]RunSpec, len(specs))
	for i := range specs {
		canon[i] = specs[i].Canonical()
		if err := canon[i].Validate(); err != nil {
			return nil, fmt.Errorf("campaign: unit %d (%s/%s): %w",
				i, specs[i].MachineName(), specs[i].WorkloadName(), err)
		}
	}
	// Group by warm identity. A unit that cannot share a prefix — already
	// snapshot-seeded, or its whole budget inside the warm-up — gets a
	// private group and runs cold.
	groups := map[string][]int{}
	var order []string
	for i, s := range canon {
		key := fmt.Sprintf("cold!%d", i) // '!' is not hex: never collides with a warm key
		if s.Snapshot == nil && warmup < s.Instructions {
			key = s.WarmKey()
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	sharedGroups := 0
	for _, members := range groups {
		if len(members) > 1 {
			sharedGroups++
		}
	}
	slog.Default().Info("campaign: warm-up sharing plan",
		"units", len(specs), "shared_groups", sharedGroups,
		"independent", len(groups)-sharedGroups, "warmup", warmup)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		progMu sync.Mutex
		prog   = Progress{Total: len(specs)}
	)
	report := func(mutate func(*Progress)) {
		if fn == nil {
			return
		}
		progMu.Lock()
		mutate(&prog)
		snap := prog
		progMu.Unlock()
		fn(snap)
	}
	results := make([]pipeline.Stats, len(specs))
	var (
		firstErr error
		errOnce  sync.Once
	)
	// runOne executes unit i through the cache with the given executor,
	// recording its result and progress; false means failed or cancelled.
	runOne := func(i int, exec func(RunSpec) (pipeline.Stats, error)) bool {
		if ctx.Err() != nil {
			return false
		}
		st, hit, err := e.runWith(ctx, canon[i], exec)
		if err != nil {
			won := false
			errOnce.Do(func() {
				firstErr = fmt.Errorf("campaign: unit %d (%s/%s): %w",
					i, specs[i].MachineName(), specs[i].WorkloadName(), err)
				cancel()
				won = true
			})
			if won {
				report(func(p *Progress) { p.Failed++ })
			}
			return false
		}
		results[i] = st
		report(func(p *Progress) {
			p.Completed++
			if hit {
				p.CacheHits++
			}
		})
		return true
	}
	cold := func(s RunSpec) (pipeline.Stats, error) { return ExecuteOpts(s, ExecOpts{}) }
	var wg sync.WaitGroup
	for _, key := range order {
		members := groups[key]
		wg.Add(1)
		go func(key string, members []int) {
			defer wg.Done()
			if len(members) == 1 {
				i := members[0]
				slog.Default().Debug("campaign: warming independently (no prefix peers)",
					"unit", i, "machine", canon[i].MachineName(), "workload", canon[i].WorkloadName())
				runOne(i, cold)
				return
			}
			// Leader runs cold and captures the group's shared warm state.
			// A cache hit leaves snap nil (nothing was simulated, so nothing
			// was captured) and the followers simply run cold too — results
			// are identical either way.
			var snap *snapshot.Snapshot
			leader := members[0]
			if !runOne(leader, func(s RunSpec) (pipeline.Stats, error) {
				return ExecuteOpts(s, ExecOpts{
					Warmup:     warmup,
					OnSnapshot: func(sn *snapshot.Snapshot) { snap = sn },
				})
			}) {
				return
			}
			var resumed atomic.Uint64
			var fwg sync.WaitGroup
			for _, m := range members[1:] {
				fwg.Add(1)
				go func(m int) {
					defer fwg.Done()
					exec := cold
					if sn := snap; sn != nil {
						exec = func(s RunSpec) (pipeline.Stats, error) {
							st, err := ExecuteOpts(s, ExecOpts{Resume: sn})
							if err == nil {
								resumed.Add(1)
								e.warmSaved.Add(sn.Committed)
							}
							return st, err
						}
					}
					runOne(m, exec)
				}(m)
			}
			fwg.Wait()
			if snap != nil {
				e.warmGroups.Add(1)
				slog.Default().Info("campaign: warm-up prefix shared",
					"group", key[:12], "peers", len(members), "resumed", resumed.Load(),
					"warmup_committed", snap.Committed,
					"instructions_saved", resumed.Load()*snap.Committed)
			}
		}(key, members)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
