package campaign

import (
	"context"
	"testing"
)

// benchSweep expands to 56 units: 14 benchmarks x 2 machines x 2 phase
// seeds, kept short so one serial pass stays in benchmark-friendly range.
func benchSweep() Sweep {
	return Sweep{
		Benchmarks: []string{
			"adpcm", "applu", "compress", "epic", "fpppp", "g721", "gcc",
			"ijpeg", "li", "m88ksim", "mpeg2", "perl", "swim", "vortex",
		},
		Machines:     []string{"base", "gals"},
		PhaseSeeds:   []int64{1, 2},
		Instructions: 4_000,
	}
}

// BenchmarkSweep compares a 56-unit campaign executed serially (one worker)
// against the pooled engine. Run with -cpu 4 to see the parallel speedup the
// engine exists for:
//
//	go test ./internal/campaign -bench BenchmarkSweep -cpu 4
//
// A fresh engine per iteration keeps the content-addressed cache cold, so
// the benchmark measures simulation throughput, not memoization.
func BenchmarkSweep(b *testing.B) {
	b.ReportAllocs()
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS, i.e. the -cpu value
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			sweep := benchSweep()
			units, err := sweep.Units()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(bc.workers)
				if _, err := e.RunAll(context.Background(), units); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(units)), "units")
		})
	}
}

// BenchmarkSweepCached measures the memoized path: every unit after the
// first iteration is a cache hit.
func BenchmarkSweepCached(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(0)
	units, err := benchSweep().Units()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.RunAll(context.Background(), units); err != nil {
		b.Fatal(err) // warm the cache outside the timed region
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunAll(context.Background(), units); err != nil {
			b.Fatal(err)
		}
	}
	st := e.Stats()
	b.ReportMetric(float64(st.Hits), "cache-hits")
}
