package campaign

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"galsim/internal/pipeline"
	"galsim/internal/workload"
)

func TestKeyCanonicalization(t *testing.T) {
	sparse := RunSpec{Benchmark: "gcc"}
	explicit := RunSpec{
		Benchmark:      "gcc",
		Machine:        "base",
		Instructions:   100_000,
		WorkloadSeed:   42,
		PhaseSeed:      1,
		MemoryOrdering: "perfect",
		LinkStyle:      "fifo",
		Predictor:      "gshare",
		Slowdowns:      map[string]float64{"all": 1}, // a no-op stretch
	}
	if sparse.Key() != explicit.Key() {
		t.Errorf("sparse and explicit-default specs hash differently:\n%s\n%s", sparse.Key(), explicit.Key())
	}
	variants := []RunSpec{
		{Benchmark: "gcc", Machine: "gals"},
		{Benchmark: "perl"},
		{Benchmark: "gcc", Instructions: 50_000},
		{Benchmark: "gcc", WorkloadSeed: 7},
		{Benchmark: "gcc", Machine: "gals", PhaseSeed: 9},
		{Benchmark: "gcc", Machine: "gals", Slowdowns: map[string]float64{"fp": 2}},
		{Benchmark: "gcc", FreqOnly: true},
	}
	seen := map[string]int{sparse.Key(): -1}
	for i, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: %+v", i, prev, v)
		}
		seen[k] = i
	}
	// The base machine ignores clock phases and link style entirely, so
	// those fields must not fragment its cache keys.
	basePhase2 := RunSpec{Benchmark: "gcc", PhaseSeed: 2, ZeroPhases: true, LinkStyle: "stretch"}
	if basePhase2.Key() != sparse.Key() {
		t.Error("phase/link settings changed a base-machine cache key")
	}
	galsPhase1 := RunSpec{Benchmark: "gcc", Machine: "gals"}
	galsPhase2 := RunSpec{Benchmark: "gcc", Machine: "gals", PhaseSeed: 2}
	if galsPhase1.Key() == galsPhase2.Key() {
		t.Error("phase seed did not change a GALS cache key")
	}
}

func TestSweepNumUnitsSaturates(t *testing.T) {
	big := make([]int64, 200_000)
	for i := range big {
		big[i] = int64(i + 1)
	}
	s := Sweep{WorkloadSeeds: big, PhaseSeeds: big} // ~1.2e12 cross product
	if n := s.NumUnits(); n <= MaxUnits {
		t.Fatalf("NumUnits = %d, want saturation above %d", n, MaxUnits)
	}
	if _, err := s.Units(); err == nil {
		t.Fatal("astronomical sweep expanded without error")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		spec RunSpec
		want string // substring of the error
	}{
		{RunSpec{}, "benchmark is required"},
		{RunSpec{Benchmark: "nope"}, "nope"},
		{RunSpec{Benchmark: "gcc", Machine: "warp"}, "unknown machine"},
		{RunSpec{Benchmark: "gcc", Machine: "gals", Slowdowns: map[string]float64{"warp": 2}}, "unknown clock domain"},
		{RunSpec{Benchmark: "gcc", Machine: "gals", Slowdowns: map[string]float64{"fp": 0.5}}, ">= 1"},
		{RunSpec{Benchmark: "gcc", Machine: "gals", Slowdowns: map[string]float64{"fp": math.NaN()}}, "finite"},
		{RunSpec{Benchmark: "gcc", Machine: "gals", Slowdowns: map[string]float64{"fp": math.Inf(1)}}, "finite"},
		{RunSpec{Benchmark: "gcc", Machine: "base", Slowdowns: map[string]float64{"fp": 2}}, "single clock"},
		{RunSpec{Benchmark: "gcc", MemoryOrdering: "psychic"}, "memory ordering"},
		{RunSpec{Benchmark: "gcc", LinkStyle: "tachyon"}, "link style"},
		{RunSpec{Benchmark: "gcc", Predictor: "oracle"}, "predictor"},
		{RunSpec{Benchmark: "gcc", DynamicDVFS: true}, "gals machine"},
	}
	for i, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("case %d: no error for %+v", i, c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.want)
		}
	}
	// The unknown-domain error must list every valid domain, so API users
	// can self-correct.
	err := RunSpec{Benchmark: "gcc", Machine: "gals",
		Slowdowns: map[string]float64{"warp": 2}}.Validate()
	for _, d := range DomainNames() {
		if !strings.Contains(err.Error(), d) {
			t.Errorf("unknown-domain error %q does not list domain %q", err, d)
		}
	}
}

func TestDomainNamesMatchPipeline(t *testing.T) {
	want := []string{"fetch", "decode", "int", "fp", "mem"}
	if got := DomainNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("DomainNames() = %v, want %v", got, want)
	}
}

// TestExecuteMatchesDirectRun pins the campaign translation layer to the
// simulator: a spec routed through PipelineConfig must reproduce the exact
// stats of a hand-built pipeline run.
func TestExecuteMatchesDirectRun(t *testing.T) {
	spec := RunSpec{
		Benchmark:    "perl",
		Machine:      "gals",
		Instructions: 10_000,
		Slowdowns:    map[string]float64{"fp": 3},
	}
	got, err := Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig(pipeline.GALS)
	cfg.WorkloadSeed = 42
	cfg.PhaseSeed = 1
	cfg.Slowdowns[pipeline.DomFP] = 3
	prof, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	want := pipeline.NewCore(cfg, prof).Run(10_000)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("campaign run diverged from direct pipeline run:\ncampaign: %+v\ndirect:   %+v", got, want)
	}
}

// testSweep is a 12-unit grid used by the determinism tests.
func testSweep() Sweep {
	return Sweep{
		Benchmarks:   []string{"gcc", "swim", "compress"},
		Machines:     []string{"base", "gals"},
		SlowdownGrid: []map[string]float64{nil, {"all": 1.5}},
		Instructions: 6_000,
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the campaign determinism
// contract: identical spec + seeds must produce byte-identical aggregated
// results no matter how the units are scheduled.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4, 16} {
		results, err := NewEngine(workers).RunSweep(context.Background(), testSweep())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
			continue
		}
		if string(b) != string(ref) {
			t.Errorf("workers=%d: aggregated results differ from workers=1 run", workers)
		}
	}
}

func TestSweepUnitsExpansionOrder(t *testing.T) {
	units, err := testSweep().Units()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 12 {
		t.Fatalf("units = %d, want 12", len(units))
	}
	// Benchmarks vary slowest, then machines, then the grid.
	if units[0].Benchmark != "gcc" || units[0].Machine != "base" || units[0].Slowdowns != nil {
		t.Errorf("unit 0 = %+v", units[0])
	}
	if units[1].Slowdowns["all"] != 1.5 {
		t.Errorf("unit 1 = %+v", units[1])
	}
	if units[2].Machine != "gals" || units[4].Benchmark != "swim" {
		t.Errorf("units out of order: %+v / %+v", units[2], units[4])
	}
	// An invalid point anywhere in the grid fails the whole expansion.
	bad := testSweep()
	bad.SlowdownGrid = append(bad.SlowdownGrid, map[string]float64{"warp": 2})
	if _, err := bad.Units(); err == nil {
		t.Error("sweep with invalid grid point expanded without error")
	}
}

// TestSweepBaseMachineGrid: per-domain grid points must not reject a sweep
// that also covers the single-clock base machine — base units keep only the
// "all" key, giving a full-speed reference against each slowed GALS point.
func TestSweepBaseMachineGrid(t *testing.T) {
	s := Sweep{
		Benchmarks:   []string{"gcc"},
		SlowdownGrid: []map[string]float64{{"fp": 1.5}, {"fp": 3, "all": 1.2}},
		Instructions: 5_000,
	}
	units, err := s.Units() // machines default to [base, gals]
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 4 {
		t.Fatalf("units = %d, want 4", len(units))
	}
	for _, u := range units {
		switch u.Machine {
		case "base":
			if _, ok := u.Slowdowns["fp"]; ok {
				t.Errorf("base unit kept a per-domain slowdown: %+v", u)
			}
		case "gals":
			if u.Slowdowns["fp"] == 0 {
				t.Errorf("gals unit lost its per-domain slowdown: %+v", u)
			}
		}
	}
	if units[1].Slowdowns["all"] != 1.2 {
		t.Errorf("base unit dropped the uniform slowdown: %+v", units[1])
	}
}

func TestEngineMemoizes(t *testing.T) {
	e := NewEngine(2)
	spec := RunSpec{Benchmark: "li", Instructions: 5_000}
	first, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached result differs from original")
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry", st)
	}
	// Duplicates within one RunAll batch also collapse to one simulation.
	if _, err := e.RunAll(context.Background(), []RunSpec{spec, spec, spec}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 1 {
		t.Errorf("RunAll re-simulated a cached spec: %+v", st)
	}
}

// TestEngineBoundsConcurrentRuns drives many independent Run callers (the
// POST /run pattern) through a narrow engine: all must complete, and the
// semaphore must never admit more simulations than workers. The bound
// itself is asserted structurally (capacity of the semaphore); this test
// guards against deadlock between Run callers and the singleflight path.
func TestEngineBoundsConcurrentRuns(t *testing.T) {
	e := NewEngine(2)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := RunSpec{Benchmark: "adpcm", Instructions: 4_000, WorkloadSeed: int64(1 + i%4)}
			_, errs[i] = e.Run(context.Background(), spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	if st := e.Stats(); st.Misses != 4 || st.Hits != 4 {
		t.Errorf("stats = %+v, want 4 misses (distinct seeds) and 4 singleflight hits", st)
	}
}

func TestEngineDoesNotCacheFailures(t *testing.T) {
	e := NewEngine(1)
	spec := RunSpec{Benchmark: "gcc", Machine: "gals", FIFOSyncEdges: -1}
	if _, err := e.Run(context.Background(), spec); err == nil {
		t.Fatal("invalid spec ran without error")
	}
	if st := e.Stats(); st.Entries != 0 {
		t.Errorf("failed run left a cache entry: %+v", st)
	}
}

func TestRunAllCancellation(t *testing.T) {
	e := NewEngine(4)
	sweep := Sweep{
		Benchmarks:   Benchmarks(), // 15 benchmarks...
		Machines:     []string{"base", "gals"},
		PhaseSeeds:   []int64{1, 2, 3}, // ... x 2 x 3 = 90 units
		Instructions: 30_000,
	}
	units, err := sweep.Units()
	if err != nil {
		t.Fatal(err)
	}
	// Already-cancelled context: nothing must be simulated.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunAll(cancelled, units); err == nil {
		t.Error("RunAll with cancelled context returned no error")
	}
	if st := e.Stats(); st.Misses != 0 {
		t.Errorf("cancelled RunAll simulated %d units", st.Misses)
	}
	// Mid-flight cancellation: the pool must stop promptly, far short of
	// the full grid.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() { _, err := e.RunAll(ctx, units); done <- err }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled RunAll returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunAll did not stop within 10s of cancellation")
	}
	elapsed := time.Since(start)
	if st := e.Stats(); st.Misses >= uint64(len(units)) {
		t.Errorf("pool ran the whole %d-unit grid (%d simulated in %v) despite cancellation",
			len(units), st.Misses, elapsed)
	}
}
