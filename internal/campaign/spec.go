// Package campaign turns the simulator into a sweep engine: a declarative
// Sweep spec (benchmarks × machines × slowdown grids × seeds) expands into
// deterministic RunSpec units, an Engine fans the units out over a worker
// pool with context cancellation, and a sharded content-addressed cache
// memoizes every completed run so identical specs — whether issued by the
// experiment drivers, the RunMany library API, or concurrent HTTP requests
// against cmd/galsimd — are simulated exactly once per process.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"galsim/internal/bpred"
	"galsim/internal/machine"
	"galsim/internal/pipeline"
	"galsim/internal/snapshot"
	"galsim/internal/trace"
	"galsim/internal/workload"
)

// DomainNames lists the clock domain names accepted as Slowdowns keys, in
// pipeline order. The returned slice is a fresh copy on every call.
func DomainNames() []string {
	names := make([]string, 0, int(pipeline.NumDomains))
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		names = append(names, d.String())
	}
	return names
}

// TraceRef names a recorded instruction trace (see internal/trace) to
// replay as a run's workload. The cache identity of a trace-driven run is
// the trace's *content* (SHA256), never its path: copying or renaming a
// trace file does not change which runs it names.
type TraceRef struct {
	// Path locates the trace file.
	Path string `json:"path,omitempty"`
	// SHA256 is the hex content digest; filled automatically from Path when
	// empty. Callers that already know it can pin it to detect file drift.
	SHA256 string `json:"sha256,omitempty"`
}

// SnapshotRef names a captured simulation state (see internal/snapshot) to
// restore as a run's starting point instead of a cold machine. Like traces,
// the cache identity of a snapshot-seeded run is the snapshot's *content*
// (SHA256), never its path: a run restored from different state can never
// alias a cached cold-start result.
type SnapshotRef struct {
	// Path locates the snapshot file.
	Path string `json:"path,omitempty"`
	// SHA256 is the hex content digest of the snapshot file; filled
	// automatically from Path when empty. Callers that already know it can
	// pin it to detect file drift.
	SHA256 string `json:"sha256,omitempty"`
}

// RunSpec describes one simulation unit declaratively. It is the campaign
// engine's unit of work and unit of caching: two specs that canonicalize to
// the same bytes name the same deterministic run. The zero value of every
// optional field selects the paper's default machine.
//
// Exactly one workload source must be set: Benchmark (a built-in), Profile
// (a user-defined, possibly phased profile), or Trace (a recorded run).
type RunSpec struct {
	// Benchmark is a built-in workload name.
	Benchmark string `json:"benchmark,omitempty"`
	// Profile is a user-defined workload: one or more instruction-mix
	// phases. Its full content participates in the cache key, so two runs
	// of equal profiles hit the same cache entry regardless of naming.
	Profile *workload.ProfileSpec `json:"profile,omitempty"`
	// Trace replays a recorded instruction stream as the workload.
	Trace *TraceRef `json:"trace,omitempty"`
	// Snapshot restores a captured simulation state (see internal/snapshot)
	// as the run's starting point: the machine resumes at the snapshot's
	// committed-instruction count and runs on to Instructions. The snapshot
	// must have been captured under this spec's own warm identity (WarmKey),
	// which makes the result byte-identical to a cold-start run — the
	// golden differential gate in internal/pipeline proves it.
	Snapshot *SnapshotRef `json:"snapshot,omitempty"`
	// Machine names a built-in machine: "base" or "gals" (default "base").
	// Mutually exclusive with MachineSpec.
	Machine string `json:"machine,omitempty"`
	// MachineSpec is a full user-defined machine declaration: named clock
	// domains, a structure-to-domain assignment, and per-link FIFO settings
	// (see internal/machine). Its canonical content participates in the
	// cache key and travels with cluster jobs, so equal machines dedup
	// fleet-wide regardless of naming or upload path. A spec equal to a
	// built-in canonicalizes to the built-in's name.
	MachineSpec *machine.Spec `json:"machine_spec,omitempty"`
	// Instructions is the committed-instruction budget (default 100000).
	Instructions uint64 `json:"instructions,omitempty"`
	// Slowdowns stretches named clock domains (keys from DomainNames, or
	// "all" for a uniform stretch; values >= 1).
	Slowdowns map[string]float64 `json:"slowdowns,omitempty"`
	// FreqOnly disables the automatic voltage scaling of slowed domains.
	FreqOnly bool `json:"freq_only,omitempty"`
	// WorkloadSeed seeds the synthetic instruction stream (default 42).
	WorkloadSeed int64 `json:"workload_seed,omitempty"`
	// PhaseSeed seeds the GALS local-clock phases (default 1).
	PhaseSeed int64 `json:"phase_seed,omitempty"`
	// MemoryOrdering is "perfect", "conservative" or "addr-match".
	MemoryOrdering string `json:"memory_ordering,omitempty"`
	// LinkStyle is "fifo" or "stretch" (GALS inter-domain links).
	LinkStyle string `json:"link_style,omitempty"`
	// DynamicDVFS enables the online per-domain frequency/voltage controller.
	DynamicDVFS bool `json:"dynamic_dvfs,omitempty"`
	// SampleInterval, when non-zero, records an interval time-series of the
	// machine's internal state every that many decode cycles (see
	// pipeline.Sample). Zero — the default — disables sampling; the
	// omitempty tag keeps every pre-existing spec's cache key unchanged.
	SampleInterval uint64 `json:"sample_interval,omitempty"`

	// Ablation knobs; zero selects the paper's machine.
	FIFOSyncEdges int    `json:"fifo_sync_edges,omitempty"`
	FIFOCapacity  int    `json:"fifo_capacity,omitempty"`
	ZeroPhases    bool   `json:"zero_phases,omitempty"`
	Predictor     string `json:"predictor,omitempty"` // gshare|bimodal|taken|nottaken
}

// Canonical defaults, matching galsim.Run's zero-value behaviour.
const (
	defaultInstructions   = 100_000
	defaultWorkloadSeed   = 42
	defaultPhaseSeed      = 1
	defaultMemoryOrdering = "perfect"
	defaultLinkStyle      = "fifo"
	defaultPredictor      = "gshare"
)

// Canonical returns the spec with every default made explicit and
// no-op slowdown entries (factor exactly 1) removed, so that equal runs
// hash equally regardless of how sparsely the caller filled the struct.
// A trace reference gains its content digest here (reading the file if
// needed); an unreadable file leaves the digest empty for Validate to
// report.
func (s RunSpec) Canonical() RunSpec {
	if s.MachineSpec != nil && s.Machine == "" {
		// An inline spec equal to a built-in collapses to the built-in's
		// name, so uploads of (say) the literal gals machine share the
		// built-in's cache entries; anything else is carried in canonical
		// form. A spec alongside an explicit Machine name is left for
		// Validate to reject.
		ms := s.MachineSpec.Canonical()
		if name, ok := builtinByDigest[ms.Digest()]; ok {
			s.Machine = name
			s.MachineSpec = nil
		} else {
			s.MachineSpec = &ms
		}
	}
	if s.Machine == "" && s.MachineSpec == nil {
		s.Machine = pipeline.Base.String()
	}
	if s.Trace != nil && s.Instructions == 0 {
		// A replay's natural budget is the recorded run's length, not the
		// generic default: defaulting to 100000 against a shorter trace would
		// silently wrap it (see TraceLengthError). An unreadable file falls
		// through to the generic default for Validate to report.
		if meta, err := trace.ReadMeta(s.Trace.Path); err == nil && meta.Instructions > 0 {
			s.Instructions = meta.Instructions
		}
	}
	if s.Instructions == 0 {
		s.Instructions = defaultInstructions
	}
	if s.WorkloadSeed == 0 {
		s.WorkloadSeed = defaultWorkloadSeed
	}
	if s.Trace != nil {
		t := *s.Trace
		if t.SHA256 == "" {
			t.SHA256, _ = trace.FileDigest(t.Path) // unreadable: Validate reports
		}
		s.Trace = &t
		// A replayed stream is fixed; the workload seed cannot influence it.
		s.WorkloadSeed = defaultWorkloadSeed
	}
	if s.Snapshot != nil {
		sn := *s.Snapshot
		if sn.SHA256 == "" {
			sn.SHA256, _ = snapshot.FileDigest(sn.Path) // unreadable: Validate reports
		}
		s.Snapshot = &sn
	}
	if s.PhaseSeed == 0 {
		s.PhaseSeed = defaultPhaseSeed
	}
	if s.MemoryOrdering == "" {
		s.MemoryOrdering = defaultMemoryOrdering
	}
	if s.LinkStyle == "" {
		s.LinkStyle = defaultLinkStyle
	}
	if s.Predictor == "" {
		s.Predictor = defaultPredictor
	}
	// A fully synchronous machine (the base built-in, or any user spec with
	// a single clock domain) has one clock at phase zero and no
	// inter-domain links: phase and link settings cannot influence the run,
	// so normalize them away to keep its cache keys collision-rich —
	// sweeping phase seeds over both machines must simulate the
	// synchronous reference once, not once per seed. An unresolvable
	// machine is left alone for Validate to report.
	synchronous := false
	if ms, err := s.machineSpec(); err == nil {
		synchronous = len(ms.Domains) == 1
	}
	if s.FIFOSyncEdges == 0 || synchronous {
		s.FIFOSyncEdges = pipeline.DefaultConfig(pipeline.Base).FIFOSyncEdges
	}
	if s.FIFOCapacity == 0 || synchronous {
		s.FIFOCapacity = pipeline.DefaultConfig(pipeline.Base).FIFOCapacity
	}
	if synchronous {
		s.PhaseSeed = defaultPhaseSeed
		s.ZeroPhases = false
		s.LinkStyle = defaultLinkStyle
	}
	var slow map[string]float64
	for name, f := range s.Slowdowns {
		if f == 1 {
			continue
		}
		if slow == nil {
			slow = make(map[string]float64, len(s.Slowdowns))
		}
		slow[name] = f
	}
	s.Slowdowns = slow
	return s
}

// Key returns the spec's content address: a hex SHA-256 of its canonical
// JSON form. encoding/json writes map keys in sorted order, so the hash is
// stable across equal specs. Trace-driven runs are keyed by the trace's
// content digest, with the path stripped, so equal trace bytes at
// different paths share one cache entry. (A trace whose digest cannot be
// computed keeps its path as a fallback identity; Validate rejects such
// specs before they reach the engine.)
func (s RunSpec) Key() string {
	c := s.Canonical()
	if c.Trace != nil && c.Trace.SHA256 != "" {
		c.Trace = &TraceRef{SHA256: c.Trace.SHA256}
	}
	if c.Snapshot != nil && c.Snapshot.SHA256 != "" {
		c.Snapshot = &SnapshotRef{SHA256: c.Snapshot.SHA256}
	}
	b, err := json.Marshal(c)
	if err != nil {
		// RunSpec contains only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("campaign: marshaling RunSpec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WarmKey returns the spec's warm-up identity: the content address of the
// run with the instruction budget and any snapshot seed normalized away.
// Two runs that share a WarmKey execute bit-identical prefixes, so a
// snapshot captured under one resumes the other exactly — the grouping
// relation behind sweep warm-up sharing and the compatibility check behind
// RunSpec.Snapshot restores.
func (s RunSpec) WarmKey() string {
	c := s.Canonical()
	c.Instructions = 0 // Key re-canonicalizes; both sides land on the default
	c.Snapshot = nil
	return c.Key()
}

// TraceLengthError reports a same-configuration replay asking for more
// instructions than the trace recorded. Wrapping the stream back to its
// start is sound for an explicitly divergent what-if replay (the stream
// already departs from the recording), but under the recorded configuration
// it would fabricate provenance: the run would claim to replay the
// recording while simulating instructions the recording never contained.
type TraceLengthError struct {
	Path      string
	Requested uint64
	Recorded  uint64
}

func (e *TraceLengthError) Error() string {
	return fmt.Sprintf("campaign: trace %s records %d instructions but the replay requests %d under the recorded configuration; lower the budget, or change the machine configuration to make the divergence explicit (a divergent replay wraps the stream)",
		e.Path, e.Recorded, e.Requested)
}

// replayConfigEquals reports whether this spec replays a trace under the
// exact configuration that recorded it — machine topology and every
// stream-shaping setting equal, only the workload source and budget
// differing. It decides whether an over-length replay is provenance
// fabrication (same config: TraceLengthError) or an explicit what-if
// (divergent config: the stream wraps).
func (s RunSpec) replayConfigEquals(meta trace.Meta) bool {
	if meta.MachineDigest != "" && s.MachineDigest() != meta.MachineDigest {
		return false
	}
	var rec RunSpec
	if len(meta.SpecJSON) == 0 || json.Unmarshal(meta.SpecJSON, &rec) != nil {
		// No recorded spec to compare against: the topology digest is the
		// only provenance we have, and it matched (or was absent).
		return true
	}
	return stripReplayIdentity(rec) == stripReplayIdentity(s)
}

// stripReplayIdentity reduces a spec to the settings that shape the
// instruction stream a machine executes: everything except the workload
// source, the budget, and pure observation taps.
func stripReplayIdentity(s RunSpec) string {
	c := s.Canonical()
	c.Benchmark = ""
	c.Profile = nil
	c.Trace = nil
	c.Snapshot = nil
	c.WorkloadSeed = 0
	c.Instructions = 0
	c.SampleInterval = 0
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("campaign: marshaling RunSpec: %v", err))
	}
	return string(b)
}

// builtinByDigest maps the canonical digest of each built-in machine to its
// name, for the Canonical collapse; baseMachineDigest is the default
// machine's identity, which replay provenance checks against.
var builtinByDigest = func() map[string]string {
	m := map[string]string{}
	for _, sp := range machine.Builtins() {
		m[sp.Canonical().Digest()] = sp.Name
	}
	return m
}()

var baseMachineDigest = machine.Base().Digest()

// machineSpec resolves the spec's machine — the inline declaration, or the
// built-in the Machine field names — validated either way.
func (s RunSpec) machineSpec() (machine.Spec, error) {
	if s.MachineSpec != nil {
		if s.Machine != "" {
			return machine.Spec{}, fmt.Errorf("campaign: machine %q and an inline machine spec are mutually exclusive; set one", s.Machine)
		}
		if err := s.MachineSpec.Validate(); err != nil {
			return machine.Spec{}, err
		}
		return *s.MachineSpec, nil
	}
	sp, err := machine.ByName(s.Machine)
	if err != nil {
		return machine.Spec{}, fmt.Errorf("campaign: %w", err)
	}
	return sp, nil
}

// MachineName returns the human-readable machine label: the built-in name
// or the inline spec's name.
func (s RunSpec) MachineName() string {
	switch {
	case s.MachineSpec != nil:
		return s.MachineSpec.Name
	case s.Machine == "":
		return pipeline.Base.String()
	default:
		return s.Machine
	}
}

// MachineDigest returns the canonical content digest of the spec's machine
// ("" when the machine cannot be resolved) — the topology identity recorded
// in trace provenance headers.
func (s RunSpec) MachineDigest() string {
	ms, err := s.machineSpec()
	if err != nil {
		return ""
	}
	return ms.Canonical().Digest()
}

// WorkloadName returns the human-readable name of the spec's workload
// source: the benchmark, the profile-spec name, or the replayed trace's
// recorded name (falling back to the path when the file is unreadable).
func (s RunSpec) WorkloadName() string {
	switch {
	case s.Profile != nil:
		return s.Profile.Name
	case s.Trace != nil:
		if meta, err := trace.ReadMeta(s.Trace.Path); err == nil && meta.Name != "" {
			return "replay:" + meta.Name
		}
		return "replay:" + s.Trace.Path
	default:
		return s.Benchmark
	}
}

// Validate reports the first problem with the spec, with errors phrased for
// end users of the library and the HTTP API alike.
func (s RunSpec) Validate() error {
	sources := 0
	for _, set := range []bool{s.Benchmark != "", s.Profile != nil, s.Trace != nil} {
		if set {
			sources++
		}
	}
	switch {
	case sources == 0:
		return fmt.Errorf("campaign: benchmark is required (one of %v) unless a custom profile or a trace is given", workload.Names())
	case sources > 1:
		return fmt.Errorf("campaign: benchmark, profile and trace are mutually exclusive; set exactly one")
	}
	switch {
	case s.Benchmark != "":
		if _, err := workload.ByName(s.Benchmark); err != nil {
			return err
		}
	case s.Profile != nil:
		if err := s.Profile.Validate(); err != nil {
			return err
		}
	case s.Trace != nil:
		if s.Trace.Path == "" {
			return fmt.Errorf("campaign: trace requires a path")
		}
		t, err := trace.Load(s.Trace.Path) // full decode: every record must parse
		if err != nil {
			return fmt.Errorf("campaign: trace: %w", err)
		}
		if digest := t.Digest(); s.Trace.SHA256 != "" && s.Trace.SHA256 != digest {
			return fmt.Errorf("campaign: trace %s content digest %s does not match the requested %s (file changed?)",
				s.Trace.Path, digest, s.Trace.SHA256)
		}
		// Topology provenance: a replay that names no machine runs on the
		// default base topology. If the trace records a different topology,
		// that default would silently change the machine underneath the
		// replay — error loudly instead. Choosing a machine explicitly is an
		// intentional what-if ("what would this exact program have done
		// there") and is always allowed.
		if s.Machine == "" && s.MachineSpec == nil &&
			t.Meta.MachineDigest != "" && t.Meta.MachineDigest != baseMachineDigest {
			recorded := "an unknown machine"
			var rs RunSpec
			if json.Unmarshal(t.Meta.SpecJSON, &rs) == nil && rs.MachineName() != "" {
				recorded = fmt.Sprintf("machine %q", rs.MachineName())
			}
			return fmt.Errorf("campaign: trace %s was recorded on %s (topology digest %.12s...), not the default base machine; set the machine explicitly — the recorded one to reproduce the run, or any other for a what-if replay",
				s.Trace.Path, recorded, t.Meta.MachineDigest)
		}
		// Budget vs recorded length: under the recorded configuration an
		// over-length replay would silently wrap the stream and fabricate
		// provenance; an explicitly divergent replay keeps the wrap (its
		// stream already departs from the recording). The canonical budget
		// is what matters — a zero budget defaults to the recorded length.
		if want := s.Canonical().Instructions; t.Meta.Instructions > 0 && want > t.Meta.Instructions && s.replayConfigEquals(t.Meta) {
			return &TraceLengthError{Path: s.Trace.Path, Requested: want, Recorded: t.Meta.Instructions}
		}
	}
	if s.Snapshot != nil {
		if s.Snapshot.Path == "" {
			return fmt.Errorf("campaign: snapshot requires a path")
		}
		snap, err := snapshot.ReadFile(s.Snapshot.Path)
		if err != nil {
			return fmt.Errorf("campaign: snapshot %s: %w", s.Snapshot.Path, err)
		}
		if s.Snapshot.SHA256 != "" {
			if digest, derr := snapshot.FileDigest(s.Snapshot.Path); derr == nil && digest != s.Snapshot.SHA256 {
				return fmt.Errorf("campaign: snapshot %s content digest %s does not match the requested %s (file changed?)",
					s.Snapshot.Path, digest, s.Snapshot.SHA256)
			}
		}
		if want := s.WarmKey(); snap.SpecKey != want {
			return fmt.Errorf("campaign: snapshot %s was captured under a different run configuration (its spec key %.12s..., this run's warm key %.12s...); restoring it here would not reproduce this run — re-capture under this configuration",
				s.Snapshot.Path, snap.SpecKey, want)
		}
		if budget := s.Canonical().Instructions; snap.Committed >= budget {
			return fmt.Errorf("campaign: snapshot %s already holds %d committed instructions, at or beyond this run's %d-instruction budget; raise Instructions or use an earlier snapshot",
				s.Snapshot.Path, snap.Committed, budget)
		}
	}
	ms, err := s.machineSpec()
	if err != nil {
		return err
	}
	if err := ValidateSlowdownsFor(ms, s.Slowdowns); err != nil {
		return err
	}
	if _, err := s.disambig(); err != nil {
		return err
	}
	if _, err := s.linkStyle(); err != nil {
		return err
	}
	if _, err := s.predictor(); err != nil {
		return err
	}
	if s.FIFOSyncEdges < 0 || s.FIFOCapacity < 0 {
		return fmt.Errorf("campaign: FIFO sync edges (%d) and capacity (%d) must be non-negative",
			s.FIFOSyncEdges, s.FIFOCapacity)
	}
	if s.SampleInterval != 0 && s.SampleInterval < 100 {
		return fmt.Errorf("campaign: sample_interval %d is too short (minimum 100 decode cycles, or 0 to disable sampling)", s.SampleInterval)
	}
	if s.DynamicDVFS && !ms.DynamicCapable() {
		return fmt.Errorf("campaign: dynamic DVFS requires a machine with a dynamic-capable clock domain; %q has none (use the gals machine, or declare a domain with \"dvfs\": \"dynamic\")", ms.Name)
	}
	return nil
}

// ValidateSlowdowns checks a slowdown map against a built-in machine named
// by string, preserving the pre-MachineSpec call shape. Prefer
// ValidateSlowdownsFor with a resolved spec.
func ValidateSlowdowns(machineName string, slowdowns map[string]float64) error {
	ms, err := machine.ByName(machineName)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return ValidateSlowdownsFor(ms, slowdowns)
}

// ValidateSlowdownsFor checks a slowdown map against a machine's clock
// structure: keys must name the machine's clock domains (or be "all" for a
// uniform stretch) and factors must be >= 1. A single-clock machine
// therefore accepts only "all" and its own domain's name.
func ValidateSlowdownsFor(ms machine.Spec, slowdowns map[string]float64) error {
	valid := map[string]bool{"all": true}
	for _, d := range ms.DomainNames() {
		valid[d] = true
	}
	for name, f := range slowdowns {
		if !valid[name] {
			if len(ms.Domains) == 1 {
				return fmt.Errorf("campaign: unknown clock domain %q in slowdowns: machine %q has a single clock (domain %q); use \"all\" for a uniform slowdown",
					name, ms.Name, ms.Domains[0].Name)
			}
			return fmt.Errorf("campaign: unknown clock domain %q for machine %q in slowdowns (its domains: %v, or \"all\" for a uniform slowdown)",
				name, ms.Name, ms.DomainNames())
		}
		// !(f >= 1) also rejects NaN, which would otherwise pass every
		// comparison and blow up later in the JSON content hash.
		if math.IsInf(f, 0) || !(f >= 1) {
			return fmt.Errorf("campaign: slowdown %q = %v must be a finite factor >= 1 (1 = full speed, 2 = half frequency)", name, f)
		}
	}
	return nil
}

func (s RunSpec) disambig() (pipeline.MemDisambiguation, error) {
	switch s.MemoryOrdering {
	case "", "perfect":
		return pipeline.DisambigPerfect, nil
	case "conservative":
		return pipeline.DisambigConservative, nil
	case "addr-match":
		return pipeline.DisambigAddrMatch, nil
	default:
		return 0, fmt.Errorf("campaign: unknown memory ordering %q (want perfect, conservative or addr-match)", s.MemoryOrdering)
	}
}

func (s RunSpec) linkStyle() (pipeline.LinkStyle, error) {
	switch s.LinkStyle {
	case "", "fifo":
		return pipeline.LinkFIFO, nil
	case "stretch":
		return pipeline.LinkStretch, nil
	default:
		return 0, fmt.Errorf("campaign: unknown link style %q (want fifo or stretch)", s.LinkStyle)
	}
}

func (s RunSpec) predictor() (bpred.Kind, error) {
	switch s.Predictor {
	case "", bpred.GShare.String():
		return bpred.GShare, nil
	case bpred.Bimodal.String():
		return bpred.Bimodal, nil
	case bpred.Taken.String():
		return bpred.Taken, nil
	case bpred.NotTaken.String():
		return bpred.NotTaken, nil
	default:
		return 0, fmt.Errorf("campaign: unknown predictor %q (want gshare, bimodal, taken or nottaken)", s.Predictor)
	}
}

// NewSource builds the spec's workload instruction source — synthetic
// generator, phased profile generator, or trace replayer — along with the
// workload's display name.
func (s RunSpec) NewSource() (workload.InstrSource, string, error) {
	s = s.Canonical()
	switch {
	case s.Profile != nil:
		src, err := workload.NewSpecSource(*s.Profile, s.WorkloadSeed)
		if err != nil {
			return nil, "", err
		}
		return src, s.Profile.Name, nil
	case s.Trace != nil:
		t, err := trace.Load(s.Trace.Path)
		if err != nil {
			return nil, "", fmt.Errorf("campaign: trace: %w", err)
		}
		name := "replay:" + t.Meta.Name
		if t.Meta.Name == "" {
			name = "replay:" + s.Trace.Path
		}
		return trace.NewReplaySource(t), name, nil
	default:
		prof, err := workload.ByName(s.Benchmark)
		if err != nil {
			return nil, "", err
		}
		return workload.NewGenerator(prof, s.WorkloadSeed), s.Benchmark, nil
	}
}

// PipelineConfig translates the spec into a full machine configuration:
// the resolved MachineSpec becomes the pipeline's clock topology, and the
// run settings (seeds, slowdowns, link ablations) are layered on top.
func (s RunSpec) PipelineConfig() (pipeline.Config, error) {
	if err := s.Validate(); err != nil {
		return pipeline.Config{}, err
	}
	s = s.Canonical()
	ms, _ := s.machineSpec() // Validate above vouched for it
	topo, err := ms.Topology()
	if err != nil {
		return pipeline.Config{}, err
	}
	kind := pipeline.Base
	if len(topo.Domains) > 1 {
		kind = pipeline.GALS
	}
	cfg := pipeline.DefaultConfig(kind)
	cfg.Topology = &topo
	cfg.WorkloadSeed = s.WorkloadSeed
	cfg.PhaseSeed = s.PhaseSeed
	cfg.AutoVoltage = !s.FreqOnly
	cfg.ZeroPhases = s.ZeroPhases
	cfg.FIFOSyncEdges = s.FIFOSyncEdges
	cfg.FIFOCapacity = s.FIFOCapacity
	cfg.MemDisambig, _ = s.disambig()
	cfg.LinkStyle, _ = s.linkStyle()
	cfg.Bpred.Kind, _ = s.predictor()
	if s.DynamicDVFS {
		cfg.DynamicDVFS = pipeline.DefaultDynamicDVFS()
	}
	cfg.SampleInterval = s.SampleInterval
	// A slowdown key names a clock domain of the machine; it stretches
	// every structure the domain owns. Apply "all" first so a per-domain
	// entry may refine a uniform stretch.
	structsOf := map[string][]pipeline.DomainID{}
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		name := topo.Domains[topo.Of[d]].Name
		structsOf[name] = append(structsOf[name], d)
	}
	if f, ok := s.Slowdowns["all"]; ok {
		cfg.SetUniformSlowdown(f)
	}
	names := make([]string, 0, len(s.Slowdowns))
	for name := range s.Slowdowns {
		if name != "all" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		for _, d := range structsOf[name] {
			cfg.Slowdowns[d] = s.Slowdowns[name]
		}
	}
	if err := cfg.Validate(); err != nil {
		return pipeline.Config{}, err
	}
	return cfg, nil
}
