package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"galsim/internal/workload"
)

func customProfile(name string) *workload.ProfileSpec {
	return &workload.ProfileSpec{
		Name: name,
		Phases: []workload.PhaseSpec{
			{Benchmark: "adpcm", Instructions: 2000},
			{Benchmark: "fpppp", Instructions: 2000},
		},
	}
}

// TestCustomProfileCacheHit is the acceptance criterion for user-defined
// workloads: two identical custom-profile runs — built from separate spec
// values — must share one cache entry, because the key covers the profile's
// content, not a name or pointer.
func TestCustomProfileCacheHit(t *testing.T) {
	eng := NewEngine(2)
	specA := RunSpec{Profile: customProfile("mine"), Instructions: 4000}
	specB := RunSpec{Profile: customProfile("mine"), Instructions: 4000}
	if specA.Key() != specB.Key() {
		t.Fatalf("equal profiles keyed differently: %s vs %s", specA.Key(), specB.Key())
	}

	stA, err := eng.Run(context.Background(), specA)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := eng.Run(context.Background(), specB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stA, stB) {
		t.Error("identical profile specs produced different stats")
	}
	cs := eng.Stats()
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Errorf("cache = %+v, want exactly 1 miss and 1 hit", cs)
	}

	// A semantically different profile must miss.
	specC := RunSpec{Profile: customProfile("mine"), Instructions: 4000}
	specC.Profile.Phases[0].Instructions = 2001
	if specC.Key() == specA.Key() {
		t.Error("different profile contents share a cache key")
	}
}

func TestRunSpecSourceExclusivity(t *testing.T) {
	cases := []RunSpec{
		{}, // no source at all
		{Benchmark: "gcc", Profile: customProfile("x")},
		{Benchmark: "gcc", Trace: &TraceRef{Path: "nope"}},
		{Profile: customProfile("x"), Trace: &TraceRef{Path: "nope"}},
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: spec with %d sources validated", i, i)
		}
	}
}

func TestTraceSpecValidationAndKey(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")

	// Missing file: a clear error, not a panic.
	if err := (RunSpec{Trace: &TraceRef{Path: path}}).Validate(); err == nil {
		t.Error("missing trace file validated")
	}

	// Record a real trace through the capture tap.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteRecording(RunSpec{Benchmark: "adpcm", Instructions: 3000}, nil, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Trace: &TraceRef{Path: path}, Instructions: 3000}
	if err := spec.Validate(); err != nil {
		t.Fatalf("recorded trace failed validation: %v", err)
	}
	if got := spec.WorkloadName(); got != "replay:adpcm" {
		t.Errorf("WorkloadName() = %q", got)
	}

	// The key is content-addressed: a copy at another path keys equally...
	copyPath := filepath.Join(dir, "copy.trace")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	spec2 := RunSpec{Trace: &TraceRef{Path: copyPath}, Instructions: 3000}
	if spec.Key() != spec2.Key() {
		t.Error("same trace content at different paths keyed differently")
	}

	// ...and a pinned digest that no longer matches the file is rejected.
	bad := RunSpec{Trace: &TraceRef{Path: path, SHA256: strings.Repeat("0", 64)}, Instructions: 3000}
	if err := bad.Validate(); err == nil {
		t.Error("stale pinned digest validated")
	}

	// A mangled file fails validation outright (dropping the final byte
	// always cuts the last record mid-field).
	if err := os.WriteFile(copyPath, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := (RunSpec{Trace: &TraceRef{Path: copyPath}}).Validate(); err == nil {
		t.Error("truncated trace validated")
	}
}

// TestProfileRunThroughEngine exercises the full campaign path for a phased
// profile, including the canonical JSON round trip the HTTP API relies on.
func TestProfileRunThroughEngine(t *testing.T) {
	spec := RunSpec{Profile: customProfile("roundtrip"), Machine: "gals", Instructions: 5000}
	st, err := Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 5000 {
		t.Errorf("committed = %d", st.Committed)
	}
	if st.Benchmark != "roundtrip" {
		t.Errorf("stats carry benchmark %q, want the profile name", st.Benchmark)
	}
	sum := Summarize(spec, st)
	if sum.Benchmark != "roundtrip" {
		t.Errorf("summary benchmark = %q", sum.Benchmark)
	}
}
