package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"galsim/internal/isa"
	"galsim/internal/pipeline"
	"galsim/internal/snapshot"
	"galsim/internal/trace"
)

// ExecOpts bundles the observation taps and snapshot controls of one
// execution. Everything here observes or seeds a single run without joining
// its cache identity: commit hooks, trace capture and timelines never alter
// results, warm-up capture is a pure read of the machine state (proved
// non-perturbing by the pipeline differential gate), and a Resume restore
// is byte-equivalent to having simulated the prefix (same gate) — only a
// RunSpec.Snapshot file reference, whose content the engine cannot vouch
// for, joins the spec's key.
type ExecOpts struct {
	// OnCommit receives every committed instruction in program order.
	OnCommit func(*isa.Instr)
	// TraceOut records the workload stream in the trace format.
	TraceOut io.Writer
	// Tap attaches a microarchitecture timeline recorder.
	Tap TimelineTap
	// Warmup, when non-zero, captures the full machine state at the first
	// decode-cycle boundary with at least this many committed instructions.
	// It must be below the spec's instruction budget and needs at least one
	// sink (SnapshotOut or OnSnapshot).
	Warmup uint64
	// SnapshotOut writes the Warmup capture to this file in envelope form.
	SnapshotOut string
	// OnSnapshot receives each capture in memory — the Warmup capture, and
	// every CheckpointEvery capture when periodic checkpointing is on.
	OnSnapshot func(*snapshot.Snapshot)
	// CheckpointEvery, when non-zero, captures a snapshot at every multiple
	// of this many committed instructions below the budget (resuming runs
	// start above the restored count), delivered to OnSnapshot — the cluster
	// worker's crash-recovery cadence.
	CheckpointEvery uint64
	// Resume restores this in-memory snapshot as the run's starting state:
	// the programmatic equivalent of RunSpec.Snapshot, used where the
	// snapshot never touches disk (sweep warm-up sharing, cluster job
	// checkpoints). The snapshot must carry the spec's own WarmKey.
	Resume *snapshot.Snapshot
}

// Execute runs one unit directly, bypassing any cache. onCommit, when
// non-nil, receives every committed instruction in program order. Panics
// from the simulator core (e.g. the deadlock guard) are converted to errors
// so a malformed unit cannot take down a whole campaign or a server.
func Execute(spec RunSpec, onCommit func(*isa.Instr)) (pipeline.Stats, error) {
	return ExecuteOpts(spec, ExecOpts{OnCommit: onCommit})
}

// ExecuteRecording is Execute with an optional capture tap: when traceOut
// is non-nil the workload stream delivered to the pipeline is recorded to
// it in the trace format, so the run can later be replayed (see
// internal/trace). Recording never alters the simulation.
func ExecuteRecording(spec RunSpec, onCommit func(*isa.Instr), traceOut io.Writer) (pipeline.Stats, error) {
	return ExecuteOpts(spec, ExecOpts{OnCommit: onCommit, TraceOut: traceOut})
}

// ExecuteTimeline is ExecuteRecording with an optional timeline tracer
// attached to the core for the duration of the run.
func ExecuteTimeline(spec RunSpec, onCommit func(*isa.Instr), traceOut io.Writer, tap TimelineTap) (pipeline.Stats, error) {
	return ExecuteOpts(spec, ExecOpts{OnCommit: onCommit, TraceOut: traceOut, Tap: tap})
}

// ExecuteOpts runs one unit with the full set of taps and snapshot
// controls. It is the single execution path under Execute, the engine cache
// and the cluster worker.
func ExecuteOpts(spec RunSpec, opts ExecOpts) (st pipeline.Stats, err error) {
	// Canonicalize once: pins trace and snapshot digests (so the later
	// Validate detects a file swapped underneath us) and spares repeated
	// default-filling.
	spec = spec.Canonical()
	cfg, err := spec.PipelineConfig()
	if err != nil {
		return pipeline.Stats{}, err
	}
	resume, err := resumeSnapshot(spec, opts)
	if err != nil {
		return pipeline.Stats{}, err
	}
	src, name, err := spec.NewSource()
	if err != nil {
		return pipeline.Stats{}, err
	}
	var rec *trace.Recorder
	if opts.TraceOut != nil {
		if resume != nil {
			return pipeline.Stats{}, fmt.Errorf("campaign: cannot record a trace of a resumed run: the stream before the snapshot was consumed by the capturing run; record from a cold start")
		}
		specJSON, merr := json.Marshal(spec)
		if merr != nil {
			return pipeline.Stats{}, fmt.Errorf("campaign: marshaling spec for trace header: %w", merr)
		}
		tw, werr := trace.NewWriter(opts.TraceOut, trace.Meta{
			Name:          name,
			Instructions:  spec.Instructions,
			SpecJSON:      specJSON,
			MachineDigest: spec.MachineDigest(),
		})
		if werr != nil {
			return pipeline.Stats{}, werr
		}
		rec = trace.NewRecorder(src, tw)
		src = rec
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: run %s/%s failed: %v", spec.MachineName(), spec.WorkloadName(), r)
		}
	}()
	var core *pipeline.Core
	if resume != nil {
		var cs pipeline.CoreState
		if uerr := json.Unmarshal(resume.State, &cs); uerr != nil {
			return pipeline.Stats{}, fmt.Errorf("campaign: decoding snapshot state: %w", uerr)
		}
		core, err = pipeline.RestoreCore(cfg, name, src, &cs)
		if err != nil {
			return pipeline.Stats{}, fmt.Errorf("campaign: restoring snapshot: %w", err)
		}
	} else {
		core = pipeline.NewCoreWithSource(cfg, name, src)
	}
	var snapErr error
	targets, err := snapshotTargets(spec, opts, resume)
	if err != nil {
		return pipeline.Stats{}, err
	}
	if len(targets) > 0 {
		capture := func(commits uint64, cs *pipeline.CoreState) {
			if snapErr != nil {
				return
			}
			snapErr = deliverSnapshot(spec, opts, commits, cs)
		}
		if serr := core.SnapshotAt(targets, capture); serr != nil {
			return pipeline.Stats{}, serr
		}
	}
	if opts.OnCommit != nil {
		core.OnCommit(opts.OnCommit)
	}
	if opts.Tap.Recorder != nil {
		core.AttachTimeline(opts.Tap.Recorder, opts.Tap.Detail, opts.Tap.StallThreshold)
	}
	st = core.Run(spec.Instructions)
	if snapErr != nil {
		return pipeline.Stats{}, fmt.Errorf("campaign: writing snapshot: %w", snapErr)
	}
	if rec != nil {
		if cerr := rec.Close(); cerr != nil {
			return pipeline.Stats{}, fmt.Errorf("campaign: writing trace: %w", cerr)
		}
	}
	return st, nil
}

// resumeSnapshot resolves the run's starting state: the in-memory Resume
// snapshot, or the spec's snapshot file, or nil for a cold start. The
// returned snapshot has been verified to carry this spec's warm identity.
func resumeSnapshot(spec RunSpec, opts ExecOpts) (*snapshot.Snapshot, error) {
	if opts.Resume != nil && spec.Snapshot != nil {
		return nil, fmt.Errorf("campaign: both an in-memory resume snapshot and RunSpec.Snapshot are set; use one")
	}
	snap := opts.Resume
	if spec.Snapshot != nil {
		// Validate (via PipelineConfig) already vouched for envelope
		// integrity, digest pin, warm-key match and committed-vs-budget.
		var err error
		if snap, err = snapshot.ReadFile(spec.Snapshot.Path); err != nil {
			return nil, fmt.Errorf("campaign: snapshot %s: %w", spec.Snapshot.Path, err)
		}
		return snap, nil
	}
	if snap == nil {
		return nil, nil
	}
	if want := spec.WarmKey(); snap.SpecKey != want {
		return nil, fmt.Errorf("campaign: resume snapshot was captured under a different run configuration (its spec key %.12s..., this run's warm key %.12s...)",
			snap.SpecKey, want)
	}
	if snap.Committed >= spec.Instructions {
		return nil, fmt.Errorf("campaign: resume snapshot already holds %d committed instructions, at or beyond this run's %d-instruction budget",
			snap.Committed, spec.Instructions)
	}
	return snap, nil
}

// snapshotTargets expands the Warmup and CheckpointEvery settings into the
// ascending commit-count trigger list SnapshotAt takes.
func snapshotTargets(spec RunSpec, opts ExecOpts, resume *snapshot.Snapshot) ([]uint64, error) {
	if opts.Warmup == 0 && opts.CheckpointEvery == 0 {
		if opts.OnSnapshot != nil {
			return nil, fmt.Errorf("campaign: OnSnapshot is set but neither Warmup nor CheckpointEvery says when to capture")
		}
		return nil, nil
	}
	if opts.SnapshotOut == "" && opts.OnSnapshot == nil {
		return nil, fmt.Errorf("campaign: Warmup/CheckpointEvery need a snapshot sink; set SnapshotOut or OnSnapshot")
	}
	var from uint64
	if resume != nil {
		from = resume.Committed
	}
	set := map[uint64]bool{}
	if w := opts.Warmup; w > 0 {
		if w >= spec.Instructions {
			return nil, fmt.Errorf("campaign: warmup %d must be below the run's %d-instruction budget", w, spec.Instructions)
		}
		if w > from {
			set[w] = true
		}
	}
	if opts.CheckpointEvery > 0 {
		if opts.SnapshotOut != "" {
			return nil, fmt.Errorf("campaign: periodic checkpoints deliver multiple snapshots; use OnSnapshot, not SnapshotOut")
		}
		for n := opts.CheckpointEvery; n < spec.Instructions; n += opts.CheckpointEvery {
			if n > from {
				set[n] = true
			}
		}
	}
	targets := make([]uint64, 0, len(set))
	for n := range set {
		targets = append(targets, n)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	return targets, nil
}

// deliverSnapshot wraps one captured core state in the envelope and hands
// it to the configured sinks.
func deliverSnapshot(spec RunSpec, opts ExecOpts, commits uint64, cs *pipeline.CoreState) error {
	stateJSON, err := json.Marshal(cs)
	if err != nil {
		return fmt.Errorf("encoding state: %w", err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("encoding spec: %w", err)
	}
	snap := &snapshot.Snapshot{
		SpecKey:   spec.WarmKey(),
		SpecJSON:  specJSON,
		Committed: commits,
		State:     stateJSON,
	}
	if opts.SnapshotOut != "" {
		if err := snapshot.WriteFile(opts.SnapshotOut, snap); err != nil {
			return err
		}
	}
	if opts.OnSnapshot != nil {
		opts.OnSnapshot(snap)
	}
	return nil
}
