package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"galsim/internal/snapshot"
)

// TestSweepWarmSharingByteIdentical is the sweep half of the PR's golden
// differential gate: a warmed-snapshot-shared sweep must reproduce the
// unshared sweep's JSON output exactly, while actually sharing (the engine
// counters prove instructions were saved).
func TestSweepWarmSharingByteIdentical(t *testing.T) {
	sweep := Sweep{
		Benchmarks:       []string{"gcc", "swim"},
		Machines:         []string{"base", "gals"},
		InstructionsGrid: []uint64{12_000, 18_000, 24_000},
	}

	cold := NewEngine(4)
	unshared, err := cold.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.MarshalIndent(unshared, "", " ")
	if err != nil {
		t.Fatal(err)
	}

	warm := NewEngine(4)
	sweep.Warmup = 6_000
	shared, err := warm.RunSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.MarshalIndent(shared, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("warm-shared sweep output differs from unshared sweep output\nunshared: %.400s\nshared:   %.400s", wantJSON, gotJSON)
	}
	groups, saved := warm.WarmSharing()
	// 2 benchmarks x 2 machines = 4 prefix groups, each with 3 budgets: 2
	// resumed units per group, each skipping >= 6000 warm-up instructions.
	if groups != 4 {
		t.Errorf("WarmSharing groups = %d, want 4", groups)
	}
	if saved < 4*2*6_000 {
		t.Errorf("WarmSharing saved = %d instructions, want >= %d", saved, 4*2*6_000)
	}
	if g, s := cold.WarmSharing(); g != 0 || s != 0 {
		t.Errorf("unshared engine reports warm sharing (groups=%d saved=%d), want none", g, s)
	}
}

// TestRunAllWarmDivergentUnitsWarmIndependently pins the fallback: units
// with no prefix peers (machine-divergent operating points) still run, cold,
// with results identical to plain RunAll.
func TestRunAllWarmDivergentUnitsWarmIndependently(t *testing.T) {
	specs := []RunSpec{
		{Benchmark: "gcc", Machine: "gals", Instructions: 10_000},
		{Benchmark: "gcc", Machine: "gals", Instructions: 10_000, Slowdowns: map[string]float64{"fp": 2}},
		{Benchmark: "gcc", Machine: "gals", Instructions: 10_000, Slowdowns: map[string]float64{"fp": 3}},
	}
	want, err := NewEngine(2).RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewEngine(2)
	got, err := warm.RunAllWarm(context.Background(), specs, 4_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("divergent warm batch differs from RunAll")
	}
	if groups, saved := warm.WarmSharing(); groups != 0 || saved != 0 {
		t.Errorf("divergent units reported sharing (groups=%d saved=%d), want none", groups, saved)
	}
}

// TestSnapshotSpecRoundTrip drives the file-based path: capture a warm-up
// snapshot via ExecOpts, then seed a RunSpec.Snapshot run from it and check
// the stats match a straight cold run — and that the snapshot joins the
// spec's cache key by content.
func TestSnapshotSpecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warm.gsnp")
	spec := RunSpec{Benchmark: "perl", Machine: "gals", Instructions: 15_000}

	straight, err := Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	capStats, err := ExecuteOpts(spec, ExecOpts{Warmup: 5_000, SnapshotOut: path})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(straight)
	if got, _ := json.Marshal(capStats); !bytes.Equal(got, wantJSON) {
		t.Errorf("capturing run perturbed stats")
	}

	seeded := spec
	seeded.Snapshot = &SnapshotRef{Path: path}
	if err := seeded.Validate(); err != nil {
		t.Fatalf("snapshot-seeded spec invalid: %v", err)
	}
	if seeded.Key() == spec.Key() {
		t.Error("snapshot-seeded spec shares the cold spec's cache key; the snapshot content must join it")
	}
	resumed, err := Execute(seeded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(resumed); !bytes.Equal(got, wantJSON) {
		t.Errorf("snapshot-seeded run differs from straight run")
	}

	// A snapshot captured under one configuration must not restore another.
	foreign := RunSpec{Benchmark: "gcc", Machine: "gals", Instructions: 15_000,
		Snapshot: &SnapshotRef{Path: path}}
	if err := foreign.Validate(); err == nil {
		t.Error("spec with a foreign-configuration snapshot validated")
	}

	// Corruption fails typed, never a partial restore.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	bad := filepath.Join(dir, "bad.gsnp")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	seeded.Snapshot = &SnapshotRef{Path: bad}
	var corrupt *snapshot.CorruptError
	if err := seeded.Validate(); !errors.As(err, &corrupt) {
		t.Errorf("corrupted snapshot: got %v, want *snapshot.CorruptError", err)
	}
}

// TestTraceLengthError is the satellite regression: a same-configuration
// replay must not silently wrap a shorter trace, while an explicitly
// divergent replay keeps the wrap.
func TestTraceLengthError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short.trace")
	rec := RunSpec{Benchmark: "gcc", Machine: "gals", Instructions: 3_000}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteRecording(rec, nil, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Same configuration, over-length: typed error.
	over := RunSpec{Trace: &TraceRef{Path: path}, Machine: "gals", Instructions: 5_000}
	var tle *TraceLengthError
	if err := over.Validate(); !errors.As(err, &tle) {
		t.Fatalf("same-config over-length replay: got %v, want *TraceLengthError", err)
	} else if tle.Requested != 5_000 || tle.Recorded != 3_000 {
		t.Errorf("TraceLengthError = %+v, want Requested 5000, Recorded 3000", tle)
	}

	// Zero budget defaults to the recorded length: valid, no wrap.
	def := RunSpec{Trace: &TraceRef{Path: path}, Machine: "gals"}
	if err := def.Validate(); err != nil {
		t.Errorf("defaulted replay budget: %v", err)
	}
	if got := def.Canonical().Instructions; got != 3_000 {
		t.Errorf("canonical replay budget = %d, want the recorded 3000", got)
	}

	// Within the recorded length: fine.
	under := RunSpec{Trace: &TraceRef{Path: path}, Machine: "gals", Instructions: 2_000}
	if err := under.Validate(); err != nil {
		t.Errorf("under-length replay: %v", err)
	}

	// Explicitly divergent configuration (slowed domain): the wrap is the
	// documented what-if behaviour and must keep working end to end.
	divergent := RunSpec{Trace: &TraceRef{Path: path}, Machine: "gals", Instructions: 5_000,
		Slowdowns: map[string]float64{"fp": 2}}
	if err := divergent.Validate(); err != nil {
		t.Fatalf("divergent over-length replay rejected: %v", err)
	}
	if st, err := Execute(divergent, nil); err != nil {
		t.Errorf("divergent over-length replay failed: %v", err)
	} else if st.Committed != 5_000 {
		t.Errorf("divergent replay committed %d, want 5000", st.Committed)
	}
}
