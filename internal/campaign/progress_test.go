package campaign

import (
	"context"
	"sync"
	"testing"

	"galsim/internal/pipeline"
)

// TestEngineRunAllProgress: every unit produces exactly one snapshot,
// snapshots are monotone, the terminal snapshot accounts for the whole
// batch, and duplicate specs surface as cache hits.
func TestEngineRunAllProgress(t *testing.T) {
	e := NewEngine(4)
	specs := []RunSpec{
		{Benchmark: "gcc", Machine: "base", Instructions: 2000},
		{Benchmark: "gcc", Machine: "gals", Instructions: 2000},
		{Benchmark: "li", Machine: "base", Instructions: 2000},
		{Benchmark: "gcc", Machine: "base", Instructions: 2000}, // dup of unit 0
	}

	var (
		mu    sync.Mutex
		snaps []Progress
	)
	stats, err := e.RunAllProgress(context.Background(), specs, func(p Progress) {
		mu.Lock()
		snaps = append(snaps, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(specs) {
		t.Fatalf("got %d stats", len(stats))
	}
	if len(snaps) != len(specs) {
		t.Fatalf("got %d progress snapshots, want %d", len(snaps), len(specs))
	}
	last := -1
	for i, p := range snaps {
		if p.Total != len(specs) {
			t.Errorf("snapshot %d total = %d", i, p.Total)
		}
		if done := p.Completed + p.Failed; done <= last {
			t.Errorf("snapshot %d not monotone: %+v", i, p)
		} else {
			last = done
		}
	}
	final := snaps[len(snaps)-1]
	if final.Completed != len(specs) || final.Failed != 0 {
		t.Errorf("terminal snapshot %+v", final)
	}
	if final.CacheHits == 0 {
		t.Errorf("duplicate unit did not register a cache hit: %+v", final)
	}

	// A failing unit reports Failed exactly once and the batch errors.
	bad := []RunSpec{
		{Benchmark: "gcc", Instructions: 1000},
		{Benchmark: "no-such-benchmark", Instructions: 1000},
	}
	var failed int
	_, err = e.RunAllProgress(context.Background(), bad, func(p Progress) {
		mu.Lock()
		failed = p.Failed
		mu.Unlock()
	})
	if err == nil {
		t.Fatal("bad batch succeeded")
	}
	if failed != 1 {
		t.Errorf("terminal Failed = %d, want 1", failed)
	}
}

// TestRunAllOnFallback: a Backend that lacks progress support still works
// through RunAllOn, delivering a single terminal snapshot.
func TestRunAllOnFallback(t *testing.T) {
	b := plainBackend{NewEngine(2)}
	var snaps []Progress
	stats, err := RunAllOn(context.Background(), b,
		[]RunSpec{{Benchmark: "gcc", Instructions: 1000}},
		func(p Progress) { snaps = append(snaps, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("got %d stats", len(stats))
	}
	if len(snaps) != 1 || snaps[0].Completed != 1 || snaps[0].Total != 1 {
		t.Errorf("fallback snapshots = %+v", snaps)
	}
}

// plainBackend hides the engine's ProgressBackend implementation.
type plainBackend struct{ e *Engine }

func (b plainBackend) RunAll(ctx context.Context, specs []RunSpec) ([]pipeline.Stats, error) {
	return b.e.RunAll(ctx, specs)
}
