package campaign

import (
	"context"
	"fmt"
	"log/slog"
	"sort"

	"galsim/internal/machine"
	"galsim/internal/pipeline"
	"galsim/internal/report"
	"galsim/internal/workload"
)

// Sweep declares a grid of runs: the cross product of benchmarks, machines,
// slowdown assignments and seeds, every point sharing the scalar settings.
// The zero value of each scalar selects the same default as RunSpec.
type Sweep struct {
	// Benchmarks to run; empty means every registered benchmark.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Machines to run, by name: built-ins, or (through the galsimd service)
	// previously uploaded machine specs. Empty means both "base" and "gals"
	// unless MachineSpecs is set.
	Machines []string `json:"machines,omitempty"`
	// MachineSpecs lists inline user-defined machines to cross in alongside
	// Machines: the partitioning-study axis.
	MachineSpecs []machine.Spec `json:"machine_specs,omitempty"`
	// SlowdownGrid lists slowdown assignments to cross in; empty means one
	// full-speed point. Each unit keeps only the entries that name one of
	// its own machine's clock domains (plus "all"), so a grid written for
	// one machine's domains crosses cleanly with others — e.g. a sweep over
	// both built-ins naturally yields a full-speed base reference against
	// each slowed GALS point (the base machine's single clock answers only
	// to "all").
	SlowdownGrid []map[string]float64 `json:"slowdown_grid,omitempty"`
	// WorkloadSeeds to cross in; empty means the default seed.
	WorkloadSeeds []int64 `json:"workload_seeds,omitempty"`
	// PhaseSeeds to cross in; empty means the default seed.
	PhaseSeeds []int64 `json:"phase_seeds,omitempty"`
	// InstructionsGrid lists committed-instruction budgets to cross in —
	// convergence studies over one configuration. Empty means the single
	// scalar Instructions value. Grid points differing only in budget share
	// their whole simulated prefix, which Warmup exploits.
	InstructionsGrid []uint64 `json:"instructions_grid,omitempty"`

	// Scalar settings shared by every unit (see RunSpec).
	Instructions   uint64 `json:"instructions,omitempty"`
	FreqOnly       bool   `json:"freq_only,omitempty"`
	MemoryOrdering string `json:"memory_ordering,omitempty"`
	LinkStyle      string `json:"link_style,omitempty"`
	DynamicDVFS    bool   `json:"dynamic_dvfs,omitempty"`

	// Warmup, when non-zero, enables warm-up sharing on backends that
	// support it: units sharing a warm identity (same configuration, any
	// budget) simulate their first Warmup instructions once, fork the
	// snapshot, and resume per unit. Execution tuning only — it never joins
	// unit identities, and results are byte-identical with or without it.
	Warmup uint64 `json:"warmup,omitempty"`
}

// MaxUnits bounds a single sweep expansion: a backstop against accidental
// cross products (a few seed lists can multiply into billions of units)
// far above any campaign a process could actually simulate.
const MaxUnits = 1 << 20

// machinePoint is one entry of the machine axis: a name or an inline spec.
type machinePoint struct {
	name string
	spec *machine.Spec
}

func (s Sweep) axes() (benchmarks []string, machines []machinePoint, grid []map[string]float64, wseeds, pseeds []int64, instrs []uint64) {
	benchmarks = s.Benchmarks
	if len(benchmarks) == 0 {
		benchmarks = Benchmarks()
	}
	names := s.Machines
	if len(names) == 0 && len(s.MachineSpecs) == 0 {
		names = []string{pipeline.Base.String(), pipeline.GALS.String()}
	}
	for _, n := range names {
		machines = append(machines, machinePoint{name: n})
	}
	for i := range s.MachineSpecs {
		machines = append(machines, machinePoint{spec: &s.MachineSpecs[i]})
	}
	grid = s.SlowdownGrid
	if len(grid) == 0 {
		grid = []map[string]float64{nil}
	}
	wseeds = s.WorkloadSeeds
	if len(wseeds) == 0 {
		wseeds = []int64{defaultWorkloadSeed}
	}
	pseeds = s.PhaseSeeds
	if len(pseeds) == 0 {
		pseeds = []int64{defaultPhaseSeed}
	}
	instrs = s.InstructionsGrid
	if len(instrs) == 0 {
		instrs = []uint64{s.Instructions}
	}
	return benchmarks, machines, grid, wseeds, pseeds, instrs
}

// NumUnits returns the sweep's expansion size without materializing it, so
// servers can enforce limits before any allocation or validation happens.
func (s Sweep) NumUnits() int {
	benchmarks, machines, grid, wseeds, pseeds, instrs := s.axes()
	n := 1
	for _, axis := range []int{len(benchmarks), len(machines), len(grid), len(wseeds), len(pseeds), len(instrs)} {
		if axis == 0 {
			return 0
		}
		if n > MaxUnits/axis {
			return MaxUnits + 1 // saturate: already over any acceptable size
		}
		n *= axis
	}
	return n
}

// Units expands the sweep into run units in deterministic order: benchmarks
// outermost, then machines, slowdown grid points, workload seeds, phase
// seeds, instruction budgets innermost. Every unit is validated before any
// is returned.
func (s Sweep) Units() ([]RunSpec, error) {
	if n := s.NumUnits(); n > MaxUnits {
		return nil, fmt.Errorf("campaign: sweep expands to more than %d units; split it", MaxUnits)
	}
	benchmarks, machines, grid, wseeds, pseeds, instrs := s.axes()
	units := make([]RunSpec, 0, len(benchmarks)*len(machines)*len(grid)*len(wseeds)*len(pseeds)*len(instrs))
	// Resolve each machine point once, to scope grid entries and the
	// dynamic-DVFS flag to it; an unresolvable machine skips the scoping
	// and fails unit validation below with the real error.
	resolved := make([]*machine.Spec, len(machines))
	anyResolved := false
	for i, m := range machines {
		if m.spec != nil {
			if err := m.spec.Validate(); err == nil {
				resolved[i] = m.spec
			}
		} else if sp, err := machine.ByName(m.name); err == nil {
			resolved[i] = &sp
		}
		anyResolved = anyResolved || resolved[i] != nil
	}
	// A grid key must name a clock domain of at least one swept machine (or
	// "all"): per-machine scoping drops foreign keys silently, so a typo'd
	// domain would otherwise vanish instead of failing loudly.
	if anyResolved {
		valid := map[string]bool{"all": true}
		var domains []string
		for _, ms := range resolved {
			if ms == nil {
				continue
			}
			for _, d := range ms.DomainNames() {
				if !valid[d] {
					valid[d] = true
					domains = append(domains, d)
				}
			}
		}
		for _, slow := range grid {
			for name := range slow {
				if !valid[name] {
					return nil, fmt.Errorf("campaign: sweep slowdown grid names clock domain %q, which belongs to none of the swept machines (their domains: %v, or \"all\" for a uniform slowdown)",
						name, domains)
				}
			}
		}
	}
	for _, b := range benchmarks {
		for mi, m := range machines {
			var ms machine.Spec
			if resolved[mi] != nil {
				ms = *resolved[mi]
			}
			for _, slow := range grid {
				if resolved[mi] != nil {
					slow = scopedSlowdowns(ms, slow)
				}
				for _, ws := range wseeds {
					for _, ps := range pseeds {
						for _, in := range instrs {
							u := RunSpec{
								Benchmark:      b,
								Machine:        m.name,
								MachineSpec:    m.spec,
								Instructions:   in,
								Slowdowns:      slow,
								FreqOnly:       s.FreqOnly,
								WorkloadSeed:   ws,
								PhaseSeed:      ps,
								MemoryOrdering: s.MemoryOrdering,
								LinkStyle:      s.LinkStyle,
								DynamicDVFS:    s.DynamicDVFS && resolved[mi] != nil && ms.DynamicCapable(),
							}
							if err := u.Validate(); err != nil {
								return nil, fmt.Errorf("campaign: sweep unit %d: %w", len(units), err)
							}
							units = append(units, u)
						}
					}
				}
			}
		}
	}
	return units, nil
}

// scopedSlowdowns keeps the grid entries addressed to this machine: "all"
// plus keys naming one of its clock domains.
func scopedSlowdowns(ms machine.Spec, slow map[string]float64) map[string]float64 {
	valid := map[string]bool{"all": true}
	for _, d := range ms.DomainNames() {
		valid[d] = true
	}
	var out map[string]float64
	for name, f := range slow {
		if !valid[name] {
			continue
		}
		if out == nil {
			out = make(map[string]float64, len(slow))
		}
		out[name] = f
	}
	return out
}

// Benchmarks returns the registered benchmark names (the sweep default).
func Benchmarks() []string { return workload.Names() }

// Summary is the JSON-friendly digest of one completed unit: the headline
// metrics of the paper's evaluation. Field order (and therefore encoded
// byte order) is fixed, which the determinism tests rely on.
type Summary struct {
	Benchmark            string  `json:"benchmark"`
	Machine              string  `json:"machine"`
	Committed            uint64  `json:"committed"`
	SimSeconds           float64 `json:"sim_seconds"`
	IPC                  float64 `json:"ipc"`
	AvgSlipNs            float64 `json:"avg_slip_ns"`
	FIFOSlipShare        float64 `json:"fifo_slip_share"`
	MisspeculationFrac   float64 `json:"misspeculation_frac"`
	BranchMispredictRate float64 `json:"branch_mispredict_rate"`
	EnergyJoules         float64 `json:"energy_joules"`
	PowerWatts           float64 `json:"power_watts"`
	L1IHitRate           float64 `json:"l1i_hit_rate"`
	L1DHitRate           float64 `json:"l1d_hit_rate"`
	L2HitRate            float64 `json:"l2_hit_rate"`
	Retunes              uint64  `json:"retunes,omitempty"`
}

// Summarize digests one unit's stats.
func Summarize(spec RunSpec, st pipeline.Stats) Summary {
	spec = spec.Canonical()
	return Summary{
		Benchmark:            spec.WorkloadName(),
		Machine:              spec.MachineName(),
		Committed:            st.Committed,
		SimSeconds:           st.SimTime.Seconds(),
		IPC:                  st.IPC(),
		AvgSlipNs:            st.AvgSlip().Nanoseconds(),
		FIFOSlipShare:        st.FIFOSlipShare(),
		MisspeculationFrac:   st.MisspeculationFrac(),
		BranchMispredictRate: st.MispredictRate(),
		EnergyJoules:         st.EnergyJoules(),
		PowerWatts:           st.AvgPowerWatts(),
		L1IHitRate:           st.L1I.HitRate(),
		L1DHitRate:           st.L1D.HitRate(),
		L2HitRate:            st.L2.HitRate(),
		Retunes:              st.Retunes,
	}
}

// UnitResult pairs a unit with its digest for aggregated output.
type UnitResult struct {
	Key     string  `json:"key"`
	Spec    RunSpec `json:"spec"`
	Summary Summary `json:"summary"`
}

// RunSweep expands the sweep, executes every unit on the engine, and
// returns the aggregated results in expansion order.
func (e *Engine) RunSweep(ctx context.Context, s Sweep) ([]UnitResult, error) {
	return RunSweepOn(ctx, e, s)
}

// RunSweepOn expands the sweep, executes every unit on the given backend —
// the local engine or a distributed cluster coordinator — and returns the
// aggregated results in expansion order. Results are merged by unit index,
// never by completion order, so the output is byte-identical across
// backends and worker counts.
func RunSweepOn(ctx context.Context, b Backend, s Sweep) ([]UnitResult, error) {
	return RunSweepProgress(ctx, b, s, nil)
}

// RunSweepProgress is RunSweepOn with a live progress callback (see
// ProgressFunc); fn may be nil. When the sweep sets Warmup and the backend
// supports warm-up sharing (WarmBackend), units sharing a warm identity
// fork one warmed snapshot instead of each re-simulating the prefix; the
// aggregated output is byte-identical either way.
func RunSweepProgress(ctx context.Context, b Backend, s Sweep, fn ProgressFunc) ([]UnitResult, error) {
	units, err := s.Units()
	if err != nil {
		return nil, err
	}
	var stats []pipeline.Stats
	if s.Warmup > 0 {
		if wb, ok := b.(WarmBackend); ok {
			stats, err = wb.RunAllWarm(ctx, units, s.Warmup, fn)
		} else {
			slog.Default().Info("campaign: backend does not support warm-up sharing; running the sweep unshared",
				"units", len(units), "warmup", s.Warmup)
			stats, err = RunAllOn(ctx, b, units, fn)
		}
	} else {
		stats, err = RunAllOn(ctx, b, units, fn)
	}
	if err != nil {
		return nil, err
	}
	out := make([]UnitResult, len(units))
	for i, u := range units {
		out[i] = UnitResult{Key: u.Key(), Spec: u.Canonical(), Summary: Summarize(u, stats[i])}
	}
	return out, nil
}

// Table renders aggregated sweep results as a report table, one row per
// unit, suitable for the text, JSON and CSV encoders alike.
func Table(results []UnitResult) *report.Table {
	t := &report.Table{
		ID:      "Sweep",
		Title:   fmt.Sprintf("Campaign results (%d units)", len(results)),
		Headers: []string{"benchmark", "machine", "slowdowns", "wseed", "pseed", "ipc", "time-us", "energy-mj", "power-w", "slip-ns", "misspec"},
	}
	for _, r := range results {
		t.AddRow(
			r.Summary.Benchmark,
			r.Spec.MachineName(),
			slowdownLabel(r.Spec.Slowdowns),
			fmt.Sprintf("%d", r.Spec.WorkloadSeed),
			fmt.Sprintf("%d", r.Spec.PhaseSeed),
			report.F2(r.Summary.IPC),
			report.F(r.Summary.SimSeconds*1e6),
			report.F(r.Summary.EnergyJoules*1e3),
			report.F2(r.Summary.PowerWatts),
			report.F(r.Summary.AvgSlipNs),
			report.Pct(r.Summary.MisspeculationFrac),
		)
	}
	return t
}

func slowdownLabel(slow map[string]float64) string {
	if len(slow) == 0 {
		return "-"
	}
	label := ""
	add := func(name string, f float64) {
		if label != "" {
			label += ","
		}
		label += fmt.Sprintf("%s=%.2g", name, f)
	}
	known := map[string]bool{}
	for _, name := range append(DomainNames(), "all") {
		known[name] = true
		if f, ok := slow[name]; ok {
			add(name, f)
		}
	}
	// User machines may name domains outside the built-in set; list those
	// keys too, sorted for determinism.
	var rest []string
	for name := range slow {
		if !known[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		add(name, slow[name])
	}
	return label
}
