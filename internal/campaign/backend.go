package campaign

import (
	"context"

	"galsim/internal/pipeline"
)

// Backend executes a batch of RunSpecs and returns their stats in input
// order. It is the campaign engine's execution seam: the local Engine (a
// GOMAXPROCS worker pool with a content-addressed result cache) is the
// default, and internal/cluster provides a distributed implementation that
// shards the batch across a fleet of galsimd workers. Both must be
// deterministic — for a given spec batch the returned stats are
// byte-identical regardless of scheduling, worker count, or retries — which
// the differential tests in internal/cluster enforce.
//
// Implementations must be safe for concurrent use and must honour ctx
// cancellation by returning promptly with the context's error.
type Backend interface {
	RunAll(ctx context.Context, specs []RunSpec) ([]pipeline.Stats, error)
}

// Engine is the local, in-process Backend.
var _ Backend = (*Engine)(nil)
