package campaign

import (
	"context"
	"errors"

	"galsim/internal/pipeline"
)

// ErrBackendBusy is the sentinel wrapped by backends whose admission queue
// is full: the batch was rejected up front, nothing was enqueued, and the
// caller should retry later (the galsimd service maps it to HTTP 429 with a
// Retry-After header). The local Engine never returns it; the cluster
// Coordinator does when Config.MaxQueuedJobs is set.
var ErrBackendBusy = errors.New("backend queue is full")

// Priority classifies a batch for backends with priority-aware queues: an
// interactive request (a human waiting on POST /run) is leased ahead of
// bulk work (sweep grids). Backends without lanes — the local Engine —
// ignore it.
type Priority int

const (
	// PriorityBulk is the default: throughput work, leased after any
	// pending interactive jobs.
	PriorityBulk Priority = iota
	// PriorityInteractive jumps the bulk queue.
	PriorityInteractive
)

func (p Priority) String() string {
	if p == PriorityInteractive {
		return "interactive"
	}
	return "bulk"
}

type priorityKey struct{}

// WithPriority returns ctx carrying the batch priority for RunAll calls.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityOf returns the priority carried by ctx (PriorityBulk if none).
func PriorityOf(ctx context.Context) Priority {
	if p, ok := ctx.Value(priorityKey{}).(Priority); ok {
		return p
	}
	return PriorityBulk
}

// Backend executes a batch of RunSpecs and returns their stats in input
// order. It is the campaign engine's execution seam: the local Engine (a
// GOMAXPROCS worker pool with a content-addressed result cache) is the
// default, and internal/cluster provides a distributed implementation that
// shards the batch across a fleet of galsimd workers. Both must be
// deterministic — for a given spec batch the returned stats are
// byte-identical regardless of scheduling, worker count, or retries — which
// the differential tests in internal/cluster enforce.
//
// Implementations must be safe for concurrent use and must honour ctx
// cancellation by returning promptly with the context's error.
type Backend interface {
	RunAll(ctx context.Context, specs []RunSpec) ([]pipeline.Stats, error)
}

// Progress is a point-in-time view of a batch execution. Completed counts
// units whose stats are final (including cache hits); Failed counts units
// whose execution errored (at most one for backends that stop at the first
// error). Completed+Failed never exceeds Total, and snapshots delivered to
// one callback are monotone in Completed+Failed.
type Progress struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// CacheHits counts completed units served from a result cache rather
	// than simulated. Backends without cache visibility (e.g. a cluster
	// coordinator, whose workers cache locally) report zero.
	CacheHits int `json:"cache_hits"`
}

// ProgressFunc receives progress snapshots during a batch execution. It may
// be called concurrently from worker goroutines and must not block for
// long; it must not call back into the backend.
type ProgressFunc func(Progress)

// ProgressBackend is optionally implemented by backends that can report
// per-unit completion while a batch runs. Both the local Engine and the
// cluster Coordinator implement it; the base Backend interface stays
// unchanged so third-party backends keep working.
type ProgressBackend interface {
	Backend
	RunAllProgress(ctx context.Context, specs []RunSpec, fn ProgressFunc) ([]pipeline.Stats, error)
}

// WarmBackend is optionally implemented by backends that can share warm-up
// prefixes across a batch: units with equal warm identities (RunSpec.WarmKey)
// simulate their first `warmup` committed instructions once, fork the
// captured snapshot, and resume per unit. Sharing is pure execution tuning —
// a WarmBackend must return stats byte-identical to RunAll's for the same
// batch. The local Engine implements it; the cluster Coordinator does not
// (its workers hold no shared memory), so sweeps fall back to unshared
// execution there.
type WarmBackend interface {
	Backend
	RunAllWarm(ctx context.Context, specs []RunSpec, warmup uint64, fn ProgressFunc) ([]pipeline.Stats, error)
}

// RunAllOn executes specs on b, routing through RunAllProgress when fn is
// non-nil and b supports it. A backend without progress support still runs
// the batch; fn then only sees the terminal snapshot.
func RunAllOn(ctx context.Context, b Backend, specs []RunSpec, fn ProgressFunc) ([]pipeline.Stats, error) {
	if pb, ok := b.(ProgressBackend); ok && fn != nil {
		return pb.RunAllProgress(ctx, specs, fn)
	}
	stats, err := b.RunAll(ctx, specs)
	if fn != nil {
		p := Progress{Total: len(specs), Completed: len(specs)}
		if err != nil {
			p.Completed, p.Failed = 0, 1
		}
		fn(p)
	}
	return stats, err
}

// Engine is the local, in-process Backend.
var (
	_ ProgressBackend = (*Engine)(nil)
	_ WarmBackend     = (*Engine)(nil)
)
