package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"galsim/internal/machine"
)

// TestMachineSpecGoldenEquivalence is the API-redesign contract: the
// built-in machines re-expressed as explicit MachineSpecs — the new
// topology-driven construction path — reproduce the PR 3 golden Stats
// snapshots byte-for-byte. Any divergence means the declarative path builds
// a subtly different machine than the classic variant switch did.
func TestMachineSpecGoldenEquivalence(t *testing.T) {
	cases := []struct {
		golden string // snapshot name under internal/pipeline/testdata
		spec   machine.Spec
		bench  string
		dvfs   bool
	}{
		{"base_gcc", machine.Base(), "gcc", false},
		{"base_swim", machine.Base(), "swim", false},
		{"base_perl", machine.Base(), "perl", false},
		{"gals_gcc", machine.GALS(), "gcc", false},
		{"gals_swim", machine.GALS(), "swim", false},
		{"gals_perl", machine.GALS(), "perl", false},
		{"gals_dyndvfs_perl", machine.GALS(), "perl", true},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			spec := tc.spec
			spec.Name = "user-" + spec.Name // a user spec, not the built-in name
			st, err := Execute(RunSpec{
				Benchmark:    tc.bench,
				MachineSpec:  &spec,
				Instructions: 20_000,
				DynamicDVFS:  tc.dvfs,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("..", "pipeline", "testdata", "golden_"+tc.golden+".json")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				wl := bytes.Split(want, []byte("\n"))
				gl := bytes.Split(got, []byte("\n"))
				for i := 0; i < len(wl) && i < len(gl); i++ {
					if !bytes.Equal(wl[i], gl[i]) {
						t.Fatalf("MachineSpec-built %s diverged from golden at line %d:\n  golden: %s\n  got:    %s",
							tc.golden, i+1, wl[i], gl[i])
					}
				}
				t.Fatalf("MachineSpec-built %s diverged from golden (line counts %d vs %d)", tc.golden, len(wl), len(gl))
			}
		})
	}
}

// TestMachineSpecBuiltinCacheCollapse: a spec equal to a built-in machine
// canonicalizes to the built-in's name, so both forms share one cache
// identity — uploading the literal gals machine must not fork the cache.
func TestMachineSpecBuiltinCacheCollapse(t *testing.T) {
	gals := machine.GALS()
	byName := RunSpec{Benchmark: "gcc", Machine: "gals"}
	bySpec := RunSpec{Benchmark: "gcc", MachineSpec: &gals}
	if byName.Key() != bySpec.Key() {
		t.Errorf("built-in-equal spec has key %s, named machine %s; want equal", bySpec.Key(), byName.Key())
	}
	c := bySpec.Canonical()
	if c.MachineSpec != nil || c.Machine != "gals" {
		t.Errorf("canonical form did not collapse to the built-in name: %+v", c)
	}

	// A genuinely different machine must not collapse, and its key must be
	// stable across spec copies (the upload-twice case).
	tri := triDomainSpec()
	a := RunSpec{Benchmark: "gcc", MachineSpec: &tri}
	tri2 := triDomainSpec()
	b := RunSpec{Benchmark: "gcc", MachineSpec: &tri2}
	if a.Key() != b.Key() {
		t.Error("equal custom machines produced different cache keys")
	}
	if a.Key() == byName.Key() {
		t.Error("custom machine collided with the built-in's cache key")
	}
	if c := a.Canonical(); c.MachineSpec == nil {
		t.Error("custom machine was collapsed away")
	}
}

// triDomainSpec is the user-authored 3-domain machine the acceptance
// criteria exercise end to end.
func triDomainSpec() machine.Spec {
	return machine.Spec{
		Name: "tri",
		Domains: []machine.DomainSpec{
			{Name: "front"},
			{Name: "exec", DVFS: machine.PolicyDynamic},
			{Name: "memsys"},
		},
		Assign: map[string]string{
			"fetch": "front", "decode": "front",
			"int": "exec", "fp": "exec",
			"mem": "memsys",
		},
	}
}

// TestTriDomainMachineRuns: a 3-domain machine simulates deterministically,
// accepts slowdowns keyed by its own domain names, and rejects keys from
// machines it is not.
func TestTriDomainMachineRuns(t *testing.T) {
	tri := triDomainSpec()
	spec := RunSpec{Benchmark: "gcc", MachineSpec: &tri, Instructions: 6_000,
		Slowdowns: map[string]float64{"exec": 1.5}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	st1, err := Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(st1)
	b2, _ := json.Marshal(st2)
	if !bytes.Equal(b1, b2) {
		t.Error("3-domain machine is not deterministic")
	}
	if st1.Committed != 6_000 {
		t.Errorf("committed = %d", st1.Committed)
	}
	// int and fp share the exec clock; the slowdown must land on both.
	if st1.FinalSlowdowns[2] != 1.5 || st1.FinalSlowdowns[3] != 1.5 {
		t.Errorf("exec slowdown not applied to both structures: %v", st1.FinalSlowdowns)
	}
	if st1.FinalSlowdowns[0] != 1 || st1.FinalSlowdowns[4] != 1 {
		t.Errorf("slowdown leaked outside the exec domain: %v", st1.FinalSlowdowns)
	}

	bad := spec
	bad.Slowdowns = map[string]float64{"fp": 2} // a gals domain, not a tri domain
	err = bad.Validate()
	if err == nil || !strings.Contains(err.Error(), "front") {
		t.Errorf("foreign slowdown key error = %v, want one listing tri's domains", err)
	}
}

// TestUnknownMachineTypedError: an unknown machine surfaces as
// machine.UnknownError at Validate time, before anything runs.
func TestUnknownMachineTypedError(t *testing.T) {
	err := RunSpec{Benchmark: "gcc", Machine: "warp9"}.Validate()
	var unknown machine.UnknownError
	if !errors.As(err, &unknown) || unknown.Name != "warp9" {
		t.Fatalf("error = %#v, want machine.UnknownError for warp9", err)
	}
	for _, b := range machine.BuiltinNames() {
		if !strings.Contains(err.Error(), b) {
			t.Errorf("error %q does not list built-in %q", err, b)
		}
	}
	// Machine and MachineSpec together are ambiguous.
	tri := triDomainSpec()
	err = RunSpec{Benchmark: "gcc", Machine: "gals", MachineSpec: &tri}.Validate()
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both-set error = %v", err)
	}
}

// TestTraceTopologyProvenance: a trace records its machine's canonical
// digest; replaying it without choosing a machine must error loudly when
// the recorded topology is not the default, while an explicit machine
// choice (reproduction or what-if) is honoured.
func TestTraceTopologyProvenance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gals.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := RunSpec{Benchmark: "gcc", Machine: "gals", Instructions: 4_000}
	recStats, err := ExecuteRecording(rec, nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// No machine named: the silent base default would change the topology.
	err = RunSpec{Trace: &TraceRef{Path: path}, Instructions: 4_000}.Validate()
	if err == nil || !strings.Contains(err.Error(), "recorded on") {
		t.Fatalf("silent cross-topology replay error = %v", err)
	}

	// The recorded machine reproduces the run.
	st, err := Execute(RunSpec{Trace: &TraceRef{Path: path}, Machine: "gals", Instructions: 4_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Benchmark = recStats.Benchmark // replays are labeled "replay:<name>"
	b1, _ := json.Marshal(recStats)
	b2, _ := json.Marshal(st)
	if !bytes.Equal(b1, b2) {
		t.Error("explicit-machine replay did not reproduce the recorded run")
	}

	// An explicit different machine is an intentional what-if.
	if err := (RunSpec{Trace: &TraceRef{Path: path}, Machine: "base", Instructions: 4_000}).Validate(); err != nil {
		t.Errorf("explicit what-if replay rejected: %v", err)
	}

	// A base-machine recording keeps replaying with no machine named.
	basePath := filepath.Join(dir, "base.trace")
	bf, err := os.Create(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteRecording(RunSpec{Benchmark: "gcc", Instructions: 4_000}, nil, bf); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := (RunSpec{Trace: &TraceRef{Path: basePath}, Instructions: 4_000}).Validate(); err != nil {
		t.Errorf("default-topology replay rejected: %v", err)
	}
}
