package report

import (
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tbl := &Table{
		ID:      "Figure X",
		Title:   "demo",
		Note:    "a note",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1.000")
	tbl.AddRow("beta", "0.500")
	s := tbl.String()
	for _, want := range []string{"Figure X", "demo", "alpha", "0.500", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q in:\n%s", want, s)
		}
	}
	// Columns aligned: header line and row lines have equal prefix widths.
	lines := strings.Split(s, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
			row = lines[i+2]
		}
	}
	if idxH, idxR := strings.Index(header, "value"), strings.Index(row, "1.000"); idxH != idxR {
		t.Errorf("columns misaligned: %d vs %d", idxH, idxR)
	}
}

func TestAddRowArityPanics(t *testing.T) {
	tbl := &Table{ID: "t", Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("wrong arity did not panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if F2(1.23456) != "1.23" {
		t.Errorf("F2 = %q", F2(1.23456))
	}
	if Pct(0.1234) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
	if Int(42) != "42" {
		t.Errorf("Int = %q", Int(42))
	}
}
