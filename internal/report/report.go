// Package report renders experiment results as fixed-width text tables: the
// form in which this repository regenerates each of the paper's tables and
// figures (bar charts become labeled numeric series).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	// ID identifies the paper artifact, e.g. "Figure 5" or "Table 1".
	ID string
	// Title describes the content.
	Title string
	// Note holds provenance or caveats printed under the table.
	Note string
	// Headers are the column names; the first column is the row label.
	Headers []string
	// Rows hold the cells; each row must have len(Headers) cells.
	Rows [][]string
}

// AddRow appends a row, checking arity.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: table %q row has %d cells, want %d", t.ID, len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}

	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintln(w, strings.Repeat("=", total))
	for i, h := range t.Headers {
		fmt.Fprintf(w, "%-*s", widths[i]+2, h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		for i, c := range row {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// F formats a float with 3 decimal places.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// F2 formats a float with 2 decimal places.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Int formats an integer.
func Int(v uint64) string { return fmt.Sprintf("%d", v) }
