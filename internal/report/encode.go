package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// tableJSON is the wire form of a Table: a stable field set so encoded
// tables are byte-identical for identical results.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON encodes the table as {id, title, note, headers, rows}.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{
		ID: t.ID, Title: t.Title, Note: t.Note, Headers: t.Headers, Rows: rows,
	})
}

// UnmarshalJSON decodes the MarshalJSON form.
func (t *Table) UnmarshalJSON(b []byte) error {
	var v tableJSON
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*t = Table{ID: v.ID, Title: v.Title, Note: v.Note, Headers: v.Headers, Rows: v.Rows}
	return nil
}

// WriteJSON writes the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteCSV writes the table as RFC-4180 CSV: one header record followed by
// the data rows. ID, title and note are not part of the CSV payload (they
// travel in filenames or HTTP headers).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
