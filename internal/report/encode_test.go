package report

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:      "Figure 0",
		Title:   "A sample",
		Note:    "note text",
		Headers: []string{"benchmark", "value"},
	}
	t.AddRow("gcc", "1.000")
	t.AddRow("with,comma", `with "quotes"`)
	return t
}

func TestJSONRoundTrip(t *testing.T) {
	orig := sampleTable()
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, orig) {
		t.Errorf("round trip changed the table:\ngot  %+v\nwant %+v", got, *orig)
	}
	// Encoding is deterministic: same table, same bytes.
	b2, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("repeated marshals differ")
	}
}

func TestJSONEmptyRows(t *testing.T) {
	empty := &Table{ID: "x", Title: "y", Headers: []string{"a"}}
	b, err := json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"rows":[]`)) {
		t.Errorf("empty table encodes rows as null: %s", b)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "benchmark,value\n" +
		"gcc,1.000\n" +
		"\"with,comma\",\"with \"\"quotes\"\"\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteJSONIndented(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if got.ID != "Figure 0" || len(got.Rows) != 2 {
		t.Errorf("decoded = %+v", got)
	}
}
