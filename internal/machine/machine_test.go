package machine

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"galsim/internal/pipeline"
)

// triDomain is a 3-domain partitioning: a merged front end, a merged
// int+fp execution cluster, and the memory system on its own clock.
func triDomain() Spec {
	return Spec{
		Name: "tri",
		Domains: []DomainSpec{
			{Name: "front"},
			{Name: "exec", DVFS: PolicyDynamic},
			{Name: "memsys"},
		},
		Assign: map[string]string{
			"fetch": "front", "decode": "front",
			"int": "exec", "fp": "exec",
			"mem": "memsys",
		},
	}
}

func TestBuiltinsValidateAndTranslate(t *testing.T) {
	for _, sp := range Builtins() {
		if err := sp.Validate(); err != nil {
			t.Fatalf("builtin %s: %v", sp.Name, err)
		}
		topo, err := sp.Topology()
		if err != nil {
			t.Fatalf("builtin %s topology: %v", sp.Name, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("builtin %s pipeline topology: %v", sp.Name, err)
		}
	}
	base, _ := Base().Topology()
	if len(base.Domains) != 1 || !base.GlobalGrid || !base.Synchronous() {
		t.Errorf("base topology = %+v, want one global-grid domain", base)
	}
	gals, _ := GALS().Topology()
	if len(gals.Domains) != int(pipeline.NumDomains) || gals.GlobalGrid {
		t.Errorf("gals topology = %+v, want five local-grid domains", gals)
	}
	scalable := 0
	for _, d := range gals.Domains {
		if d.Scalable {
			scalable++
		}
	}
	if scalable != 3 {
		t.Errorf("gals scalable domains = %d, want the three execution domains", scalable)
	}
}

func TestByName(t *testing.T) {
	if sp, err := ByName(""); err != nil || sp.Name != "base" {
		t.Errorf(`ByName("") = %v, %v; want the base machine`, sp.Name, err)
	}
	_, err := ByName("warp9")
	var unknown UnknownError
	if !errors.As(err, &unknown) || unknown.Name != "warp9" {
		t.Fatalf("ByName(warp9) error = %#v, want UnknownError", err)
	}
	for _, builtin := range BuiltinNames() {
		if !strings.Contains(err.Error(), builtin) {
			t.Errorf("unknown-machine error %q does not list built-in %q", err, builtin)
		}
	}
}

func TestTriDomainTopology(t *testing.T) {
	topo, err := triDomain().Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Domains) != 3 {
		t.Fatalf("domains = %d, want 3", len(topo.Domains))
	}
	// fetch and decode share a clock; int and fp share a clock; mem is alone.
	if topo.Cross(pipeline.DomFetch, pipeline.DomDecode) || topo.Cross(pipeline.DomInt, pipeline.DomFP) {
		t.Error("merged structures must not cross a clock boundary")
	}
	if !topo.Cross(pipeline.DomDecode, pipeline.DomInt) || !topo.Cross(pipeline.DomFP, pipeline.DomMem) {
		t.Error("separate domains must cross a clock boundary")
	}
	if !topo.Domains[1].Scalable || topo.Domains[0].Scalable || topo.Domains[2].Scalable {
		t.Errorf("scalable flags = %+v, want only the exec domain", topo.Domains)
	}
}

func TestValidateRejects(t *testing.T) {
	mutate := func(f func(*Spec)) Spec {
		s := triDomain()
		f(&s)
		return s
	}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no name", mutate(func(s *Spec) { s.Name = "" }), "without name"},
		{"no domains", Spec{Name: "x"}, "no clock domains"},
		{"dup domain", mutate(func(s *Spec) { s.Domains[2].Name = "front"; s.Assign["mem"] = "front" }), "duplicate"},
		{"reserved all", mutate(func(s *Spec) { s.Domains[2].Name = "all"; s.Assign["mem"] = "all" }), "reserved"},
		{"unassigned structure", mutate(func(s *Spec) { delete(s.Assign, "mem") }), "not assigned"},
		{"unknown structure", mutate(func(s *Spec) { s.Assign["alu9"] = "front" }), "unknown pipeline structure"},
		{"undeclared domain", mutate(func(s *Spec) { s.Assign["mem"] = "warp" }), "undeclared domain"},
		{"orphan domain", mutate(func(s *Spec) { s.Assign["mem"] = "front" }), "owns no pipeline structure"},
		{"dynamic non-exec", mutate(func(s *Spec) { s.Domains[0].DVFS = PolicyDynamic }), "only execution structures"},
		{"bad policy", mutate(func(s *Spec) { s.Domains[1].DVFS = "warp" }), "dvfs policy"},
		{"bad freq", mutate(func(s *Spec) { s.Domains[0].FreqGHz = 1000 }), "frequency"},
		{"bad link class", mutate(func(s *Spec) { s.Links = map[string]LinkSpec{"hyperlane": {Depth: 4}} }), "unknown link class"},
		{"deep link", mutate(func(s *Spec) { s.Links = map[string]LinkSpec{"wakeup": {Depth: 1 << 20}} }), "depth"},
		{"many edges", mutate(func(s *Spec) { s.Links = map[string]LinkSpec{"fetch": {SyncEdges: 1000}} }), "sync edges"},
		{"grid multi-domain", mutate(func(s *Spec) { s.GlobalClockGrid = true }), "global clock grid"},
		{"volt above nominal", mutate(func(s *Spec) {
			s.Domains[1].Voltages = []VoltPoint{{Slowdown: 1, Voltage: 2.5}}
		}), "voltage"},
		{"volt not increasing", mutate(func(s *Spec) {
			s.Domains[1].Voltages = []VoltPoint{{Slowdown: 2, Voltage: 1.2}, {Slowdown: 1.5, Voltage: 1.4}}
		}), "strictly increasing"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCanonicalIdempotentAndDigestStable(t *testing.T) {
	s := triDomain()
	s.Links = map[string]LinkSpec{"wakeup": {}, "fetch": {Depth: 8}} // one no-op entry
	c1 := s.Canonical()
	c2 := c1.Canonical()
	b1, _ := json.Marshal(c1)
	b2, _ := json.Marshal(c2)
	if string(b1) != string(b2) {
		t.Errorf("canonicalization is not idempotent:\n%s\n%s", b1, b2)
	}
	if c1.Domains[0].FreqGHz != 1.0 || c1.Domains[0].DVFS != PolicyStatic {
		t.Errorf("canonical defaults not filled: %+v", c1.Domains[0])
	}
	if _, ok := c1.Links["wakeup"]; ok {
		t.Error("no-op link override survived canonicalization")
	}
	if s.Digest() != c1.Digest() {
		t.Error("digest differs between a spec and its canonical form")
	}
	// Round-trip through JSON preserves the digest: the upload-twice case.
	var back Spec
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Digest() != s.Digest() {
		t.Error("digest unstable across JSON round-trip")
	}
	// Different content, different digest.
	mod := triDomain()
	mod.Domains[0].FreqGHz = 0.5
	if mod.Digest() == s.Digest() {
		t.Error("distinct machines share a digest")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","domains":[{"name":"core","turbo":9}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	data, _ := json.Marshal(triDomain())
	if _, err := Parse(data); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestDomainNamesFresh(t *testing.T) {
	s := triDomain()
	names := s.DomainNames()
	names[0] = "clobbered"
	if s.DomainNames()[0] != "front" {
		t.Error("DomainNames does not return a fresh copy")
	}
	if Structures()[0] != "fetch" {
		t.Errorf("Structures = %v", Structures())
	}
}
