package machine

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzMachineSpec drives untrusted bytes through the full machine-spec
// surface: parse -> validate -> canonicalize -> digest -> re-parse. The
// contracts under test: nothing panics; canonicalization is idempotent and
// digest-preserving; a canonical spec survives a JSON round-trip with its
// validity and digest intact (the property fleet-wide cache dedup and
// stable upload keys rest on); and the anti-DoS caps hold, so a hostile
// spec cannot smuggle unbounded state past Validate.
func FuzzMachineSpec(f *testing.F) {
	for _, sp := range Builtins() {
		seed, _ := json.Marshal(sp)
		f.Add(seed)
	}
	tri, _ := json.Marshal(Spec{
		Name: "tri",
		Domains: []DomainSpec{
			{Name: "front", FreqGHz: 2},
			{Name: "exec", DVFS: PolicyDynamic, Voltages: []VoltPoint{{Slowdown: 1, Voltage: 1.65}, {Slowdown: 3, Voltage: 1.1}}},
			{Name: "memsys"},
		},
		Assign: map[string]string{"fetch": "front", "decode": "front", "int": "exec", "fp": "exec", "mem": "memsys"},
		Links:  map[string]LinkSpec{"wakeup": {Depth: 8, SyncEdges: 3}},
	})
	f.Add(tri)
	f.Add([]byte(`{"name":"x","domains":[{"name":"core"}],"assign":{}}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // malformed or invalid input must only ever yield an error
		}
		// Parse vouched for validity; everything downstream must agree.
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a spec Validate rejects: %v", err)
		}
		c := s.Canonical()
		if err := c.Validate(); err != nil {
			t.Fatalf("canonicalization broke validity: %v", err)
		}
		b1, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("canonical spec does not marshal: %v", err)
		}
		b2, err := json.Marshal(c.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonicalization not idempotent:\n%s\n%s", b1, b2)
		}
		if s.Digest() != c.Digest() {
			t.Fatal("digest differs between a spec and its canonical form")
		}
		back, err := Parse(b1)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v", err)
		}
		if back.Digest() != s.Digest() {
			t.Fatal("digest unstable across a canonical JSON round-trip")
		}
		if _, err := s.Topology(); err != nil {
			t.Fatalf("valid spec has no topology: %v", err)
		}
	})
}
