// Package machine defines the declarative machine-configuration surface of
// the simulator: a MachineSpec names clock domains (each with a nominal
// frequency, an optional voltage table and a DVFS policy), assigns every
// pipeline structure — fetch, decode/rename/ROB/commit, integer, FP,
// load/store — to one of them, and tunes the synchronization FIFOs on each
// link class. The paper's two machines are just the two built-in specs:
// "base" puts all five structures in one domain under a global clock grid,
// "gals" gives each structure its own domain. Any other partitioning of the
// pipeline — the design space the paper's methodology explores — is a spec
// a user can write in JSON and run through the library, the galsimd
// service, or a galsim-fleet worker fleet.
//
// Specs are validated (with anti-DoS caps, since they cross the HTTP
// boundary), canonicalized (defaults made explicit so equal machines hash
// equally), and content-addressed by Digest, which is how campaign cache
// keys and trace provenance identify a topology.
package machine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"galsim/internal/dvfs"
	"galsim/internal/pipeline"
	"galsim/internal/simtime"
)

// Structures lists the pipeline structures a spec assigns to clock domains,
// in pipeline order. The returned slice is a fresh copy on every call.
func Structures() []string {
	names := make([]string, 0, int(pipeline.NumDomains))
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		names = append(names, d.String())
	}
	return names
}

// DVFS policies.
const (
	// PolicyStatic fixes the domain's frequency and voltage for the run
	// (the per-run slowdown still applies). The default.
	PolicyStatic = "static"
	// PolicyDynamic lets the online DVFS controller retune the domain at
	// runtime (when the run enables it). Only domains consisting solely of
	// execution structures (int, fp, mem) may be dynamic: their issue
	// queues provide the controller's feedback signal.
	PolicyDynamic = "dynamic"
)

// Validation caps. Specs are untrusted input (they arrive over HTTP), so
// every variable-size axis has a ceiling.
const (
	maxNameLen    = 64
	maxVoltPoints = 64
	maxFreqGHz    = 100.0
	minFreqGHz    = 0.01
	maxLinkDepth  = 4096
	maxSyncEdges  = 64
)

// VoltPoint is one entry of a domain's voltage table.
type VoltPoint struct {
	// Slowdown is the clock slowdown factor this point applies at (1 = full
	// speed).
	Slowdown float64 `json:"slowdown"`
	// Voltage is the supply voltage in volts; at most the nominal supply.
	Voltage float64 `json:"voltage"`
}

// DomainSpec declares one clock domain.
type DomainSpec struct {
	// Name labels the domain: the key used by slowdown maps and diagnostics.
	Name string `json:"name"`
	// FreqGHz is the domain's nominal (full-speed) clock frequency; 0
	// selects the machine's 1 GHz nominal.
	FreqGHz float64 `json:"freq_ghz,omitempty"`
	// DVFS is the domain's scaling policy: "static" (default) or "dynamic".
	DVFS string `json:"dvfs,omitempty"`
	// Voltages, when non-empty, is the domain's voltage table: the supply
	// voltage at each slowdown, interpolated piecewise-linearly and clamped
	// at the ends (discrete silicon operating points). Empty selects the
	// paper's Equation 1 delay model.
	Voltages []VoltPoint `json:"voltages,omitempty"`
}

// LinkSpec overrides one link class's synchronization FIFO geometry; zero
// fields keep the machine defaults (16-deep FIFOs, two-flop synchronizers).
type LinkSpec struct {
	// Depth is the FIFO capacity in entries (same-domain links use it as
	// their pipe-latch depth).
	Depth int `json:"depth,omitempty"`
	// SyncEdges is the flag-synchronizer depth in consumer clock edges: the
	// latency a cross-domain transfer pays (2 = two-flop).
	SyncEdges int `json:"sync_edges,omitempty"`
}

// LinkClasses lists the link-class names accepted by Spec.Links, in
// pipeline order. The returned slice is a fresh copy on every call.
func LinkClasses() []string {
	names := make([]string, 0, int(pipeline.NumLinkClasses))
	for cl := pipeline.LinkClass(0); cl < pipeline.NumLinkClasses; cl++ {
		names = append(names, cl.String())
	}
	return names
}

// Spec is a complete machine declaration. The JSON form is the wire format
// accepted by galsim.Options, the galsimd /machines endpoint and the CLI
// -machine flag.
type Spec struct {
	// Name identifies the machine (registry key, result label).
	Name string `json:"name"`
	// Domains lists the clock domains. Order is semantic: it fixes the
	// random starting-phase draws of the local clocks, the ordering of
	// simultaneous clock edges, and the DVFS controller's scan order.
	Domains []DomainSpec `json:"domains"`
	// Assign maps every pipeline structure (see Structures) to a domain
	// name.
	Assign map[string]string `json:"assign"`
	// Links optionally overrides link classes (see LinkClasses).
	Links map[string]LinkSpec `json:"links,omitempty"`
	// GlobalClockGrid charges a chip-wide clock distribution grid every
	// cycle — the fully synchronous machine's hierarchy. Requires a single
	// domain; partitioned machines have only per-structure local grids.
	GlobalClockGrid bool `json:"global_clock_grid,omitempty"`
}

// UnknownError reports a machine name that names neither a built-in spec
// nor (where a registry applies) an uploaded one.
type UnknownError struct{ Name string }

// Error implements error.
func (e UnknownError) Error() string {
	return fmt.Sprintf("unknown machine %q (built-in machines: %s; or supply a full machine spec)",
		e.Name, strings.Join(BuiltinNames(), ", "))
}

// Base returns the built-in fully synchronous machine: every structure on
// one "core" clock behind a global distribution grid.
func Base() Spec {
	assign := map[string]string{}
	for _, st := range Structures() {
		assign[st] = "core"
	}
	return Spec{
		Name:            "base",
		Domains:         []DomainSpec{{Name: "core"}},
		Assign:          assign,
		GlobalClockGrid: true,
	}
}

// GALS returns the built-in five-domain machine of the paper's Figure 3(b):
// one clock domain per structure, execution domains dynamically scalable.
func GALS() Spec {
	domains := make([]DomainSpec, 0, int(pipeline.NumDomains))
	assign := map[string]string{}
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		ds := DomainSpec{Name: d.String()}
		if d == pipeline.DomInt || d == pipeline.DomFP || d == pipeline.DomMem {
			ds.DVFS = PolicyDynamic
		}
		domains = append(domains, ds)
		assign[d.String()] = d.String()
	}
	return Spec{Name: "gals", Domains: domains, Assign: assign}
}

// BuiltinNames lists the built-in machine names. The returned slice is a
// fresh copy on every call.
func BuiltinNames() []string { return []string{"base", "gals"} }

// Builtins returns the built-in machine specs, in BuiltinNames order.
func Builtins() []Spec { return []Spec{Base(), GALS()} }

// ByName resolves a built-in machine name; "" selects base, matching the
// zero-value default everywhere else in the API. Unknown names yield an
// UnknownError (errors.As-able), so callers can list the alternatives.
func ByName(name string) (Spec, error) {
	switch name {
	case "", "base":
		return Base(), nil
	case "gals":
		return GALS(), nil
	default:
		return Spec{}, UnknownError{Name: name}
	}
}

// execStructures marks the structures whose issue queues feed the dynamic
// DVFS controller.
func execStructure(d pipeline.DomainID) bool {
	return d == pipeline.DomInt || d == pipeline.DomFP || d == pipeline.DomMem
}

// Validate reports the first problem with the spec, phrased for end users
// of the library, the CLI and the HTTP API alike.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("machine: spec without name")
	}
	if len(s.Name) > maxNameLen {
		return fmt.Errorf("machine: name longer than %d bytes", maxNameLen)
	}
	if len(s.Domains) == 0 {
		return fmt.Errorf("machine: %s: no clock domains", s.Name)
	}
	if len(s.Domains) > int(pipeline.NumDomains) {
		return fmt.Errorf("machine: %s: %d clock domains for %d structures; every domain must own at least one structure",
			s.Name, len(s.Domains), pipeline.NumDomains)
	}
	domIdx := map[string]int{}
	for i, d := range s.Domains {
		if d.Name == "" {
			return fmt.Errorf("machine: %s: domain %d has no name", s.Name, i)
		}
		if len(d.Name) > maxNameLen {
			return fmt.Errorf("machine: %s: domain %d name longer than %d bytes", s.Name, i, maxNameLen)
		}
		if d.Name == "all" {
			return fmt.Errorf("machine: %s: domain name %q is reserved for uniform slowdowns", s.Name, d.Name)
		}
		if _, dup := domIdx[d.Name]; dup {
			return fmt.Errorf("machine: %s: duplicate domain name %q", s.Name, d.Name)
		}
		domIdx[d.Name] = i
		if f := d.FreqGHz; f != 0 && (math.IsNaN(f) || f < minFreqGHz || f > maxFreqGHz) {
			return fmt.Errorf("machine: %s: domain %q frequency %v GHz outside [%v, %v]",
				s.Name, d.Name, f, minFreqGHz, maxFreqGHz)
		}
		switch d.DVFS {
		case "", PolicyStatic, PolicyDynamic:
		default:
			return fmt.Errorf("machine: %s: domain %q has unknown dvfs policy %q (want %q or %q)",
				s.Name, d.Name, d.DVFS, PolicyStatic, PolicyDynamic)
		}
		if len(d.Voltages) > maxVoltPoints {
			return fmt.Errorf("machine: %s: domain %q voltage table has %d points, above the %d limit",
				s.Name, d.Name, len(d.Voltages), maxVoltPoints)
		}
		for i, p := range d.Voltages {
			switch {
			case math.IsNaN(p.Slowdown) || math.IsInf(p.Slowdown, 0) || p.Slowdown < 1:
				return fmt.Errorf("machine: %s: domain %q voltage point %d: slowdown %v must be a finite factor >= 1",
					s.Name, d.Name, i, p.Slowdown)
			case i > 0 && p.Slowdown <= d.Voltages[i-1].Slowdown:
				return fmt.Errorf("machine: %s: domain %q voltage table must list strictly increasing slowdowns", s.Name, d.Name)
			case math.IsNaN(p.Voltage) || p.Voltage <= 0 || p.Voltage > dvfs.Default.VNominal:
				return fmt.Errorf("machine: %s: domain %q voltage point %d: voltage %v outside (0, %v] (the nominal supply)",
					s.Name, d.Name, i, p.Voltage, dvfs.Default.VNominal)
			}
		}
	}
	owned := make([]bool, len(s.Domains))
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		domName, ok := s.Assign[d.String()]
		if !ok {
			return fmt.Errorf("machine: %s: structure %q is not assigned to a clock domain (assign all of %v)",
				s.Name, d.String(), Structures())
		}
		g, ok := domIdx[domName]
		if !ok {
			return fmt.Errorf("machine: %s: structure %q assigned to undeclared domain %q (declared: %v)",
				s.Name, d.String(), domName, s.domainNames())
		}
		owned[g] = true
	}
	for st := range s.Assign {
		if _, err := structureByName(st); err != nil {
			return fmt.Errorf("machine: %s: %w", s.Name, err)
		}
	}
	for g, ok := range owned {
		if !ok {
			return fmt.Errorf("machine: %s: clock domain %q owns no pipeline structure", s.Name, s.Domains[g].Name)
		}
	}
	for g, d := range s.Domains {
		if d.DVFS != PolicyDynamic {
			continue
		}
		for st, domName := range s.Assign {
			if domIdx[domName] != g {
				continue
			}
			if sd, _ := structureByName(st); !execStructure(sd) {
				return fmt.Errorf("machine: %s: domain %q is dynamic but owns structure %q; only execution structures (int, fp, mem) provide the issue-queue feedback dynamic DVFS needs",
					s.Name, d.Name, st)
			}
		}
	}
	for class, lp := range s.Links {
		if _, err := linkClassByName(class); err != nil {
			return fmt.Errorf("machine: %s: %w", s.Name, err)
		}
		if lp.Depth < 0 || lp.Depth > maxLinkDepth {
			return fmt.Errorf("machine: %s: link %q depth %d outside [0, %d]", s.Name, class, lp.Depth, maxLinkDepth)
		}
		if lp.SyncEdges < 0 || lp.SyncEdges > maxSyncEdges {
			return fmt.Errorf("machine: %s: link %q sync edges %d outside [0, %d]", s.Name, class, lp.SyncEdges, maxSyncEdges)
		}
	}
	if s.GlobalClockGrid && len(s.Domains) != 1 {
		return fmt.Errorf("machine: %s: a global clock grid implies a single clock domain (got %d); partitioned machines have only local grids",
			s.Name, len(s.Domains))
	}
	return nil
}

// domainNames returns the declared domain names in declaration order.
func (s Spec) domainNames() []string {
	names := make([]string, 0, len(s.Domains))
	for _, d := range s.Domains {
		names = append(names, d.Name)
	}
	return names
}

// DomainNames lists the spec's clock domain names in declaration order —
// the keys its runs accept as per-domain slowdowns. The returned slice is a
// fresh copy on every call.
func (s Spec) DomainNames() []string { return s.domainNames() }

// DynamicCapable reports whether any domain opts into the online DVFS
// controller.
func (s Spec) DynamicCapable() bool {
	for _, d := range s.Domains {
		if d.DVFS == PolicyDynamic {
			return true
		}
	}
	return false
}

// Canonical returns the spec with every default made explicit — frequencies
// at 1 GHz, policies at "static", no-op link overrides removed — so that
// equal machines marshal to equal bytes and hash equally regardless of how
// sparsely they were written.
func (s Spec) Canonical() Spec {
	domains := make([]DomainSpec, len(s.Domains))
	for i, d := range s.Domains {
		if d.FreqGHz == 0 {
			d.FreqGHz = 1.0
		}
		if d.DVFS == "" {
			d.DVFS = PolicyStatic
		}
		if len(d.Voltages) > 0 {
			d.Voltages = append([]VoltPoint(nil), d.Voltages...)
		}
		domains[i] = d
	}
	s.Domains = domains
	assign := make(map[string]string, len(s.Assign))
	for k, v := range s.Assign {
		assign[k] = v
	}
	s.Assign = assign
	var links map[string]LinkSpec
	for class, lp := range s.Links {
		if lp == (LinkSpec{}) {
			continue
		}
		if links == nil {
			links = make(map[string]LinkSpec, len(s.Links))
		}
		links[class] = lp
	}
	s.Links = links
	return s
}

// Digest returns the spec's content address: a hex SHA-256 of its canonical
// JSON form (encoding/json writes map keys sorted, so equal specs hash
// equally). The digest is what campaign cache keys and trace provenance
// record as "which machine".
func (s Spec) Digest() string {
	b, err := json.Marshal(s.Canonical())
	if err != nil {
		// Validated specs contain only marshalable fields; unvalidated ones
		// may carry NaN/Inf floats, which must not panic a Digest used in
		// logs — fall back to hashing the error text.
		b = []byte("unmarshalable:" + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Parse decodes and validates a JSON machine spec, rejecting unknown fields
// so typos in hand-written machines fail loudly.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("machine: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Topology translates a validated spec into the pipeline's clock topology.
func (s Spec) Topology() (pipeline.Topology, error) {
	if err := s.Validate(); err != nil {
		return pipeline.Topology{}, err
	}
	s = s.Canonical()
	t := pipeline.Topology{
		Domains:    make([]pipeline.TopoDomain, len(s.Domains)),
		GlobalGrid: s.GlobalClockGrid,
	}
	domIdx := map[string]int{}
	for i, d := range s.Domains {
		domIdx[d.Name] = i
		td := pipeline.TopoDomain{
			Name:     d.Name,
			Nominal:  periodFor(d.FreqGHz),
			Scalable: d.DVFS == PolicyDynamic,
		}
		for _, p := range d.Voltages {
			td.VoltTable = append(td.VoltTable, pipeline.VoltPoint{Slowdown: p.Slowdown, Voltage: p.Voltage})
		}
		t.Domains[i] = td
	}
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		t.Of[d] = domIdx[s.Assign[d.String()]]
	}
	for class, lp := range s.Links {
		cl, _ := linkClassByName(class)
		t.Links[cl] = pipeline.LinkParams{Capacity: lp.Depth, SyncEdges: lp.SyncEdges}
	}
	return t, nil
}

// periodFor converts a nominal frequency to a clock period.
func periodFor(ghz float64) simtime.Duration {
	return simtime.Duration(math.Round(float64(simtime.Nanosecond) / ghz))
}

// structureByName resolves a pipeline structure name.
func structureByName(name string) (pipeline.DomainID, error) {
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown pipeline structure %q (structures: %v)", name, Structures())
}

// linkClassByName resolves a link-class name.
func linkClassByName(name string) (pipeline.LinkClass, error) {
	for cl := pipeline.LinkClass(0); cl < pipeline.NumLinkClasses; cl++ {
		if cl.String() == name {
			return cl, nil
		}
	}
	return 0, fmt.Errorf("unknown link class %q (classes: %v)", name, LinkClasses())
}
