package cache

import "fmt"

// WayState is one cache way in snapshot form.
type WayState struct {
	Tag        uint64 `json:"tag"`
	Valid      bool   `json:"valid,omitempty"`
	LRU        uint64 `json:"lru,omitempty"`
	Prefetched bool   `json:"pf,omitempty"`
	Dirty      bool   `json:"dirty,omitempty"`
}

// State is one cache's snapshot form: the full tag store (sets × ways, in
// index order) plus the LRU tick and the counters.
type State struct {
	Sets  [][]WayState `json:"sets"`
	Tick  uint64       `json:"tick"`
	Stats Stats        `json:"stats"`
}

// CaptureState snapshots the cache.
func (c *Cache) CaptureState() State {
	st := State{Tick: c.tick, Stats: c.stats, Sets: make([][]WayState, len(c.sets))}
	for s, set := range c.sets {
		ws := make([]WayState, len(set))
		for w, way := range set {
			ws[w] = WayState{Tag: way.tag, Valid: way.valid, LRU: way.lru,
				Prefetched: way.prefetched, Dirty: c.dirty[s][w]}
		}
		st.Sets[s] = ws
	}
	return st
}

// RestoreState reinstates a captured state into a cache built with the same
// geometry.
func (c *Cache) RestoreState(st State) error {
	if len(st.Sets) != len(c.sets) {
		return fmt.Errorf("cache %q: restored set count %d does not match geometry (%d sets)",
			c.cfg.Name, len(st.Sets), len(c.sets))
	}
	for s, ws := range st.Sets {
		if len(ws) != len(c.sets[s]) {
			return fmt.Errorf("cache %q: restored set %d has %d ways, geometry has %d",
				c.cfg.Name, s, len(ws), len(c.sets[s]))
		}
	}
	for s, ws := range st.Sets {
		for w, wst := range ws {
			c.sets[s][w] = way{tag: wst.Tag, valid: wst.Valid, lru: wst.LRU, prefetched: wst.Prefetched}
			c.dirty[s][w] = wst.Dirty
		}
	}
	c.tick = st.Tick
	c.stats = st.Stats
	return nil
}

// MemoryState is main memory's snapshot form.
type MemoryState struct {
	Accesses uint64 `json:"accesses"`
}

// CaptureState snapshots the memory level.
func (m *Memory) CaptureState() MemoryState { return MemoryState{Accesses: m.accesses} }

// RestoreState reinstates a captured state.
func (m *Memory) RestoreState(st MemoryState) { m.accesses = st.Accesses }

// HierarchyState is the full memory system's snapshot form.
type HierarchyState struct {
	L1I State       `json:"l1i"`
	L1D State       `json:"l1d"`
	L2  State       `json:"l2"`
	Mem MemoryState `json:"mem"`
}

// CaptureState snapshots all levels.
func (h *Hierarchy) CaptureState() HierarchyState {
	return HierarchyState{
		L1I: h.L1I.CaptureState(),
		L1D: h.L1D.CaptureState(),
		L2:  h.L2.CaptureState(),
		Mem: h.Mem.CaptureState(),
	}
}

// RestoreState reinstates a captured state into a hierarchy of the same
// geometry.
func (h *Hierarchy) RestoreState(st HierarchyState) error {
	if err := h.L1I.RestoreState(st.L1I); err != nil {
		return err
	}
	if err := h.L1D.RestoreState(st.L1D); err != nil {
		return err
	}
	if err := h.L2.RestoreState(st.L2); err != nil {
		return err
	}
	h.Mem.RestoreState(st.Mem)
	return nil
}
