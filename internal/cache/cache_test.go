package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache(assoc int) (*Cache, *Memory) {
	mem := NewMemory(50)
	c := New(Config{
		Name: "t", SizeBytes: 8 * 32 * assoc, LineBytes: 32, Assoc: assoc, HitLatency: 1,
	}, mem) // 8 sets
	return c, mem
}

func TestColdMissThenHit(t *testing.T) {
	c, mem := smallCache(2)
	if lat := c.Access(0x1000, false); lat != 51 {
		t.Errorf("cold miss latency = %d, want 51", lat)
	}
	if lat := c.Access(0x1000, false); lat != 1 {
		t.Errorf("hit latency = %d, want 1", lat)
	}
	if lat := c.Access(0x101f, false); lat != 1 {
		t.Errorf("same-line hit latency = %d, want 1", lat)
	}
	if mem.Accesses() != 1 {
		t.Errorf("memory accesses = %d, want 1", mem.Accesses())
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c, _ := smallCache(1)
	// 8 sets of 32B lines => addresses 0 and 8*32=256 conflict.
	c.Access(0, false)
	c.Access(256, false)
	if lat := c.Access(0, false); lat == 1 {
		t.Error("conflicting line should have been evicted")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	c, _ := smallCache(2)
	c.Access(0, false)
	c.Access(512, false) // same set (8 sets), different way
	if lat := c.Access(0, false); lat != 1 {
		t.Error("2-way cache should hold both conflicting lines")
	}
	if lat := c.Access(512, false); lat != 1 {
		t.Error("second line evicted unexpectedly")
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _ := smallCache(2)
	a, b, d := uint64(0), uint64(512), uint64(1024) // all map to set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if lat := c.Access(a, false); lat != 1 {
		t.Error("MRU line a was evicted")
	}
	if lat := c.Access(b, false); lat == 1 {
		t.Error("LRU line b should have been evicted")
	}
}

func TestWritebackCounting(t *testing.T) {
	c, _ := smallCache(1)
	c.Access(0, true)    // dirty line in set 0
	c.Access(256, false) // evicts dirty line
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
	c.Access(512, false) // evicts clean line
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1 (clean eviction)", wb)
	}
}

func TestProbe(t *testing.T) {
	c, _ := smallCache(2)
	if c.Probe(0x40) {
		t.Error("cold probe hit")
	}
	st := c.Stats()
	c.Access(0x40, false)
	if !c.Probe(0x40) {
		t.Error("probe miss after access")
	}
	if c.Stats().Accesses != st.Accesses+1 {
		t.Error("Probe perturbed statistics")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold: L1 miss + L2 miss + memory = 1 + 5 + 60.
	if lat := h.L1D.Access(0x8000, false); lat != 66 {
		t.Errorf("cold load latency = %d, want 66", lat)
	}
	// L1 hit.
	if lat := h.L1D.Access(0x8000, false); lat != 1 {
		t.Errorf("L1 hit latency = %d, want 1", lat)
	}
	// L1I cold miss but L2 now holds the (64B) line only if it covers the
	// same L2 line; use an address in the same 64B block.
	if lat := h.L1I.Access(0x8020, false); lat != 6 {
		t.Errorf("L1 miss/L2 hit latency = %d, want 6 (Table 3)", lat)
	}
}

func TestDefaultGeometryMatchesTable3(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if cfg.L1D.SizeBytes != 16<<10 || cfg.L1D.Assoc != 4 {
		t.Error("L1D geometry mismatch with Table 3")
	}
	if cfg.L1I.SizeBytes != 16<<10 || cfg.L1I.Assoc != 1 {
		t.Error("L1I geometry mismatch with Table 3")
	}
	if cfg.L2.SizeBytes != 256<<10 || cfg.L2.Assoc != 4 {
		t.Error("L2 geometry mismatch with Table 3")
	}
	for _, c := range []Config{cfg.L1I, cfg.L1D, cfg.L2} {
		if err := c.Validate(); err != nil {
			t.Errorf("default config invalid: %v", err)
		}
	}
}

func TestSequentialStreamHitsAfterWarmup(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Walk a 4KB region twice; second pass should be all L1 hits.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 8 {
			h.L1D.Access(a, false)
		}
	}
	st := h.L1D.Stats()
	// With the tagged next-line prefetcher only the very first line misses;
	// every later line of the stream is prefetched ahead of use.
	if st.Misses > 4 {
		t.Errorf("misses = %d, want <= 4 with next-line prefetch", st.Misses)
	}
	if hr := st.HitRate(); hr < 0.99 {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestPrefetchDisabledColdMisses(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1D.NextLinePrefetch = false
	h := NewHierarchy(cfg)
	for a := uint64(0); a < 4096; a += 8 {
		h.L1D.Access(a, false)
	}
	// 128 distinct 32-byte lines, one cold miss each.
	if m := h.L1D.Stats().Misses; m != 128 {
		t.Errorf("misses = %d, want 128 without prefetch", m)
	}
}

func TestTaggedPrefetchChains(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	// Touch line 0: miss, prefetches line 1.
	h.L1D.Access(0, false)
	if !h.L1D.Probe(32) {
		t.Fatal("next line not prefetched on miss")
	}
	if h.L1D.Probe(64) {
		t.Fatal("line 2 prefetched prematurely")
	}
	// First hit on prefetched line 1 chains the prefetch to line 2.
	if lat := h.L1D.Access(32, false); lat != 1 {
		t.Fatalf("prefetched line missed (lat %d)", lat)
	}
	if !h.L1D.Probe(64) {
		t.Error("tagged prefetch did not chain on first hit")
	}
}

func TestRandomLargeFootprintMissesOften(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20_000; i++ {
		h.L1D.Access(uint64(rng.Intn(64<<20)), false) // 64MB working set
	}
	if hr := h.L1D.Stats().HitRate(); hr > 0.2 {
		t.Errorf("random 64MB stream hit rate = %v, want tiny", hr)
	}
}

func TestStatsConservation(t *testing.T) {
	f := func(addrs []uint32) bool {
		c, _ := smallCache(4)
		for _, a := range addrs {
			c.Access(uint64(a), a%3 == 0)
		}
		st := c.Stats()
		return st.Accesses == uint64(len(addrs)) && st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than the cache never misses after one
// full warmup pass (true LRU, power-of-two sets).
func TestLRUInclusionProperty(t *testing.T) {
	c, _ := smallCache(4) // 8 sets * 4 ways * 32B = 1KB
	var addrs []uint64
	for a := uint64(0); a < 1024; a += 32 {
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		c.Access(a, false)
	}
	before := c.Stats().Misses
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10_000; i++ {
		c.Access(addrs[rng.Intn(len(addrs))], false)
	}
	if c.Stats().Misses != before {
		t.Errorf("resident working set missed: %d -> %d", before, c.Stats().Misses)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, LineBytes: 32, Assoc: 1, HitLatency: 1},
		{Name: "b", SizeBytes: 1024, LineBytes: 24, Assoc: 1, HitLatency: 1},
		{Name: "c", SizeBytes: 1000, LineBytes: 32, Assoc: 1, HitLatency: 1},
		{Name: "d", SizeBytes: 96 * 32, LineBytes: 32, Assoc: 1, HitLatency: 1}, // 96 sets, not 2^n
		{Name: "e", SizeBytes: 1024, LineBytes: 32, Assoc: 1, HitLatency: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q should be invalid", cfg.Name)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{Name: "bad"}, NewMemory(10))
}

func TestMemoryLevel(t *testing.T) {
	m := NewMemory(42)
	if m.Access(0, false) != 42 || m.Access(1<<40, true) != 42 {
		t.Error("memory latency not constant")
	}
	if m.Accesses() != 2 {
		t.Errorf("accesses = %d", m.Accesses())
	}
	if m.Name() != "memory" {
		t.Error("name")
	}
}
