// Package cache implements the simulated memory hierarchy: set-associative
// caches with LRU replacement arranged in levels (L1 instruction, L1 data,
// unified L2, main memory), with the geometry and latencies of the paper's
// Table 3:
//
//	L1 data:        16 KB, 4-way,          1-cycle latency
//	L1 instruction: 16 KB, direct-mapped,  1-cycle latency
//	L2 unified:     256 KB, 4-way,         6-cycle latency
//
// Timing is the only observable: an access returns the total latency, in
// cycles of the clock domain that owns the first-level cache, and records
// which level served it. Contents are not modeled (the simulator is
// trace-driven); tags are.
package cache

import "fmt"

// Level is anything that can serve a memory access: a Cache or main Memory.
type Level interface {
	// Access performs a read or write of the line containing addr and
	// returns the total latency in cycles, including lower levels.
	Access(addr uint64, write bool) int
	// Name returns the level's diagnostic name.
	Name() string
}

// Config describes one cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int // 1 = direct-mapped
	HitLatency int // cycles for a hit in this level

	// NextLinePrefetch enables a tagged next-line prefetcher: a miss fills
	// the demanded line and prefetches its successor; the first hit to a
	// prefetched line prefetches the next one, so a sequential stream keeps
	// exactly one line of headroom regardless of the issue order of the
	// individual accesses. Prefetch fills are charged no latency (they
	// complete off the critical path).
	NextLinePrefetch bool
}

// Validate reports an error if the geometry is malformed.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache %q: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	case c.HitLatency < 0:
		return fmt.Errorf("cache %q: negative hit latency", c.Name)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

type way struct {
	tag        uint64
	valid      bool
	lru        uint64 // timestamp of last touch; larger = more recent
	prefetched bool   // installed by prefetch and not yet demanded
}

// Stats counts cache activity; Writebacks counts dirty-line evictions (we
// track dirtiness but charge no extra latency for the writeback, which
// happens off the critical path).
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// HitRate returns Hits/Accesses, or 1 when the cache is untouched.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is one set-associative level backed by a lower Level.
type Cache struct {
	cfg      Config
	sets     [][]way
	dirty    [][]bool
	lower    Level
	tick     uint64
	stats    Stats
	setMask  uint64
	lineBits uint
}

// New builds a cache over the given lower level (which must not be nil).
func New(cfg Config, lower Level) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if lower == nil {
		panic(fmt.Sprintf("cache %q: nil lower level", cfg.Name))
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]way, nsets),
		dirty:   make([][]bool, nsets),
		lower:   lower,
		setMask: uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Assoc)
		c.dirty[i] = make([]bool, cfg.Assoc)
	}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineBits++
	}
	return c
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Access implements Level: look up the line containing addr; on a miss,
// fetch it from the lower level and install it, evicting the LRU way.
func (c *Cache) Access(addr uint64, write bool) int {
	c.tick++
	c.stats.Accesses++
	lineAddr := addr >> c.lineBits
	setIdx := lineAddr & c.setMask
	tag := lineAddr >> uint(popcount(c.setMask))
	set := c.sets[setIdx]

	for w := range set {
		if set[w].valid && set[w].tag == tag {
			c.stats.Hits++
			set[w].lru = c.tick
			if write {
				c.dirty[setIdx][w] = true
			}
			if set[w].prefetched {
				// Tagged prefetch: the stream reached this line; keep one
				// line of headroom.
				set[w].prefetched = false
				c.Prefetch(addr + uint64(c.cfg.LineBytes))
			}
			return c.cfg.HitLatency
		}
	}

	c.stats.Misses++
	lowerLat := c.lower.Access(addr, write)
	if c.cfg.NextLinePrefetch {
		c.Prefetch(addr + uint64(c.cfg.LineBytes))
	}

	victim := -1
	for w := range set {
		if !set[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		for w := 1; w < len(set); w++ {
			if set[w].lru < set[victim].lru {
				victim = w
			}
		}
	}
	if set[victim].valid && c.dirty[setIdx][victim] {
		c.stats.Writebacks++
	}
	set[victim] = way{tag: tag, valid: true, lru: c.tick}
	c.dirty[setIdx][victim] = write
	return c.cfg.HitLatency + lowerLat
}

// Prefetch installs the line containing addr into this cache and every
// lower cache level without charging latency or perturbing demand
// statistics; the line is marked so that a later demand hit extends the
// prefetch stream (tagged next-line prefetching). Fills complete off the
// critical path.
func (c *Cache) Prefetch(addr uint64) {
	if lower, ok := c.lower.(*Cache); ok {
		lower.Prefetch(addr)
	}
	c.tick++
	lineAddr := addr >> c.lineBits
	setIdx := lineAddr & c.setMask
	tag := lineAddr >> uint(popcount(c.setMask))
	set := c.sets[setIdx]
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			return // already resident; leave LRU alone
		}
	}
	victim := -1
	for w := range set {
		if !set[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		for w := 1; w < len(set); w++ {
			if set[w].lru < set[victim].lru {
				victim = w
			}
		}
	}
	if set[victim].valid && c.dirty[setIdx][victim] {
		c.stats.Writebacks++
	}
	set[victim] = way{tag: tag, valid: true, lru: c.tick, prefetched: c.cfg.NextLinePrefetch}
	c.dirty[setIdx][victim] = false
}

// Probe reports whether the line containing addr is present, without
// touching LRU state or statistics. Used by tests and by the fetch stage's
// next-line prefetch heuristic check.
func (c *Cache) Probe(addr uint64) bool {
	lineAddr := addr >> c.lineBits
	setIdx := lineAddr & c.setMask
	tag := lineAddr >> uint(popcount(c.setMask))
	for _, w := range c.sets[setIdx] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Memory is the bottom of the hierarchy: a fixed-latency DRAM model.
type Memory struct {
	Latency  int // cycles
	accesses uint64
}

// NewMemory builds a main-memory level with the given access latency.
func NewMemory(latency int) *Memory {
	if latency < 0 {
		panic(fmt.Sprintf("cache: negative memory latency %d", latency))
	}
	return &Memory{Latency: latency}
}

// Name implements Level.
func (m *Memory) Name() string { return "memory" }

// Access implements Level.
func (m *Memory) Access(addr uint64, write bool) int {
	m.accesses++
	return m.Latency
}

// Accesses returns the number of requests that reached main memory.
func (m *Memory) Accesses() uint64 { return m.accesses }

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Hierarchy bundles the standard three-cache configuration of Table 3 plus
// main memory, shared between the base and GALS machines.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Mem *Memory
}

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLatency   int
}

// DefaultHierarchyConfig returns the paper's Table 3 memory system. The
// 6-cycle L2 latency in the table is the total load-to-use time for an L1
// miss/L2 hit, so the L2's own latency is 6 − 1.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "l1i", SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1, HitLatency: 1, NextLinePrefetch: true},
		L1D:        Config{Name: "l1d", SizeBytes: 16 << 10, LineBytes: 32, Assoc: 4, HitLatency: 1, NextLinePrefetch: true},
		L2:         Config{Name: "l2", SizeBytes: 256 << 10, LineBytes: 64, Assoc: 4, HitLatency: 5},
		MemLatency: 60,
	}
}

// NewHierarchy builds the L1I/L1D → shared L2 → memory structure.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	mem := NewMemory(cfg.MemLatency)
	l2 := New(cfg.L2, mem)
	return &Hierarchy{
		L1I: New(cfg.L1I, l2),
		L1D: New(cfg.L1D, l2),
		L2:  l2,
		Mem: mem,
	}
}
