package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestAblationLinkStyleStretchLoses(t *testing.T) {
	tbl := AblationLinkStyle(smallCfg(), "gcc")
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	basePerf := parseF(t, tbl.Rows[0][1])
	fifoPerf := parseF(t, tbl.Rows[1][1])
	stretchPerf := parseF(t, tbl.Rows[2][1])
	if basePerf != 1.0 {
		t.Errorf("base relative performance = %v", basePerf)
	}
	// The paper's §3.2 argument quantified: the stretch-clocked machine must
	// be clearly worse than the FIFO machine.
	if stretchPerf >= fifoPerf {
		t.Errorf("stretch (%.3f) should underperform FIFO (%.3f)", stretchPerf, fifoPerf)
	}
	if stretchPerf > 0.85 {
		t.Errorf("stretch relative performance %.3f suspiciously good", stretchPerf)
	}
}

func TestAblationSyncEdgesMonotone(t *testing.T) {
	tbl := AblationSyncEdges(smallCfg(), "compress")
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	p1 := parseF(t, tbl.Rows[0][1])
	p3 := parseF(t, tbl.Rows[2][1])
	if p3 >= p1 {
		t.Errorf("3-flop sync (%.3f) should cost performance vs 1-flop (%.3f)", p3, p1)
	}
}

func TestAblationFIFOCapacityHelpsThenSaturates(t *testing.T) {
	tbl := AblationFIFOCapacity(smallCfg(), "swim")
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	p4 := parseF(t, tbl.Rows[0][1])
	p16 := parseF(t, tbl.Rows[2][1])
	if p16 <= p4 {
		t.Errorf("capacity 16 (%.3f) should beat capacity 4 (%.3f) on a streaming benchmark", p16, p4)
	}
}

func TestAblationClockPhases(t *testing.T) {
	tbl := AblationClockPhases(smallCfg(), "li")
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	random := parseF(t, tbl.Rows[0][1])
	aligned := parseF(t, tbl.Rows[1][1])
	// Aligned clocks pay the full 2-edge latency each crossing.
	if aligned >= random {
		t.Errorf("aligned (%.3f) should not beat random phases (%.3f)", aligned, random)
	}
}

func TestDynamicDVFSDemo(t *testing.T) {
	tbl := DynamicDVFSDemo(smallCfg())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		energy := parseF(t, row[2])
		if energy > 1.1 {
			t.Errorf("%s: dynamic DVFS energy %.3f far above base", row[0], energy)
		}
	}
	// perl (no FP) must save energy relative to base.
	if e := parseF(t, tbl.Rows[0][2]); e >= 1.0 {
		t.Errorf("perl dynamic DVFS energy %.3f not below base", e)
	}
}

func TestAblationPredictor(t *testing.T) {
	tbl := AblationPredictor(smallCfg(), "gcc")
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	gshareIPC := parseF(t, tbl.Rows[0][1])
	notTakenIPC := parseF(t, tbl.Rows[3][1])
	if gshareIPC <= notTakenIPC {
		t.Errorf("gshare IPC (%.2f) should beat static not-taken (%.2f)", gshareIPC, notTakenIPC)
	}
	gshareRate := parseF(t, tbl.Rows[0][2])
	notTakenRate := parseF(t, tbl.Rows[3][2])
	if gshareRate >= notTakenRate {
		t.Errorf("gshare mispredict rate (%v%%) should be below not-taken (%v%%)", gshareRate, notTakenRate)
	}
}
