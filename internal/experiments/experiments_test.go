package experiments

import (
	"strings"
	"testing"
)

// smallCfg keeps test runtime modest while preserving the paper's shapes.
func smallCfg(benchmarks ...string) Config {
	cfg := DefaultConfig()
	cfg.Instructions = 25_000
	cfg.Benchmarks = benchmarks
	return cfg
}

func TestFig5ShapeHolds(t *testing.T) {
	c := RunCorpus(smallCfg("gcc", "fpppp", "compress"))
	for _, b := range c.Benchmarks() {
		rel := c.Pair(b).RelPerformance()
		if rel >= 1.0 {
			t.Errorf("%s: GALS not slower (rel %.3f)", b, rel)
		}
		if rel < 0.75 {
			t.Errorf("%s: GALS unreasonably slow (rel %.3f)", b, rel)
		}
	}
	if c.Pair("fpppp").RelPerformance() <= c.Pair("gcc").RelPerformance() {
		t.Error("fpppp should be less affected than gcc (Figure 5)")
	}
	tbl := Fig5Performance(c)
	if len(tbl.Rows) != 4 { // 3 benchmarks + average
		t.Errorf("Fig5 rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "AVERAGE") {
		t.Error("Fig5 missing average row")
	}
}

func TestFig6SlipGrows(t *testing.T) {
	c := RunCorpus(smallCfg("gcc", "ijpeg", "swim"))
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		if p.GALS.AvgSlip() <= p.Base.AvgSlip() {
			t.Errorf("%s: GALS slip %v not above base %v", b, p.GALS.AvgSlip(), p.Base.AvgSlip())
		}
	}
	tbl := Fig6Slip(c)
	if len(tbl.Rows) != 4 {
		t.Errorf("Fig6 rows = %d", len(tbl.Rows))
	}
}

func TestFig7FIFOShareGrows(t *testing.T) {
	c := RunCorpus(smallCfg("gcc", "compress"))
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		if p.GALS.FIFOSlipShare() <= p.Base.FIFOSlipShare() {
			t.Errorf("%s: GALS FIFO share %.3f not above base %.3f",
				b, p.GALS.FIFOSlipShare(), p.Base.FIFOSlipShare())
		}
		// The paper's point: FIFO residency alone cannot account for the
		// whole slip increase.
		fifoGrowth := float64(p.GALS.FIFOSlipSum - p.Base.FIFOSlipSum)
		slipGrowth := float64(p.GALS.SlipSum - p.Base.SlipSum)
		if slipGrowth <= fifoGrowth {
			t.Errorf("%s: slip growth fully explained by FIFO residency; paper says it is not", b)
		}
	}
	Fig7RelativeSlip(c) // render without panic
}

func TestFig8MisspeculationGrows(t *testing.T) {
	c := RunCorpus(smallCfg("gcc", "compress", "li"))
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		if p.GALS.MisspeculationFrac() <= p.Base.MisspeculationFrac() {
			t.Errorf("%s: GALS misspeculation %.3f not above base %.3f",
				b, p.GALS.MisspeculationFrac(), p.Base.MisspeculationFrac())
		}
	}
	tbl := Fig8Speculation(c)
	if !strings.Contains(tbl.String(), "INT-AVERAGE") {
		t.Error("Fig8 missing integer average")
	}
}

func TestFig9EnergyNearUnityPowerBelow(t *testing.T) {
	c := RunCorpus(smallCfg("gcc", "compress", "fpppp", "ijpeg"))
	sumE, sumP := 0.0, 0.0
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		sumE += p.RelEnergy()
		sumP += p.RelPower()
	}
	n := float64(len(c.Benchmarks()))
	avgE, avgP := sumE/n, sumP/n
	// Paper: energy ~+1% (GALS is NOT a net energy win); power below 1
	// because the run stretches.
	if avgE < 0.92 || avgE > 1.12 {
		t.Errorf("average relative energy %.3f outside [0.92, 1.12]", avgE)
	}
	if avgP >= 1.0 {
		t.Errorf("average relative power %.3f not below 1", avgP)
	}
	Fig9EnergyPower(c)
}

func TestFig10Breakdown(t *testing.T) {
	cfg := smallCfg()
	tbl := Fig10Breakdown(cfg, "compress")
	if len(tbl.Rows) != 18 { // 17 block rows + total
		t.Fatalf("Fig10 rows = %d", len(tbl.Rows))
	}
	s := tbl.String()
	for _, want := range []string{"global clock", "fifos", "integer issue window", "TOTAL"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig10 missing row %q", want)
		}
	}
	// GALS has zero global clock energy and nonzero FIFO energy.
	for _, row := range tbl.Rows {
		switch row[0] {
		case "global clock":
			if row[2] != "0.000" {
				t.Errorf("GALS global clock energy %s, want 0", row[2])
			}
			if row[1] == "0.000" {
				t.Error("base global clock energy is zero")
			}
		case "fifos":
			if row[1] != "0.000" {
				t.Errorf("base FIFO energy %s, want 0", row[1])
			}
			if row[2] == "0.000" {
				t.Error("GALS FIFO energy is zero")
			}
		}
	}
}

func TestFig11SelectiveSlowdown(t *testing.T) {
	tbl := Fig11SelectiveSlowdown(smallCfg())
	if len(tbl.Rows) != 4 { // perl, ijpeg, gcc generic + perl FP/3
		t.Fatalf("Fig11 rows = %d", len(tbl.Rows))
	}
	// All cases lose performance and save power vs base.
	for _, row := range tbl.Rows {
		if row[1] >= "1.000" {
			t.Errorf("%s: relative performance %s not below 1", row[0], row[1])
		}
	}
}

func TestFig12IjpegSweepMonotonic(t *testing.T) {
	tbl := Fig12IjpegSweep(smallCfg())
	if len(tbl.Rows) != 4 {
		t.Fatalf("Fig12 rows = %d", len(tbl.Rows))
	}
	// Deeper memory slowdown must not improve performance.
	var prevPerf string
	for i, row := range tbl.Rows {
		if i > 0 && row[1] > prevPerf {
			t.Errorf("performance improved with deeper memory slowdown: %s -> %s", prevPerf, row[1])
		}
		prevPerf = row[1]
	}
}

func TestFig13GccIdealComparison(t *testing.T) {
	tbl := Fig13GccSlowdown(smallCfg())
	if len(tbl.Rows) != 2 {
		t.Fatalf("Fig13 rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] >= "1.000" {
			t.Errorf("%s: energy %s not reduced by FP slowdown + DVS", row[0], row[2])
		}
	}
}

func TestPhaseSensitivitySmall(t *testing.T) {
	cfg := smallCfg()
	tbl := PhaseSensitivity(cfg, "li", 4)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Ratios should hover near 1 (paper: ~0.5% sensitivity).
	for _, row := range tbl.Rows {
		if row[2] < "0.9" || row[2] > "1.1" {
			t.Errorf("phase seed %s ratio %s implausible", row[0], row[2])
		}
	}
}

func TestTable1(t *testing.T) {
	tbl := Table1Skew()
	if len(tbl.Rows) != 5 {
		t.Fatalf("Table1 rows = %d", len(tbl.Rows))
	}
	s := tbl.String()
	for _, want := range []string{"Alpha 21064", "Itanium", "active deskewing"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}
