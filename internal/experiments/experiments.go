// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the simulator: one driver per artifact, each
// returning a report.Table whose rows correspond to the bars/points of the
// original figure. The EXPERIMENTS.md file at the repository root records
// paper-reported versus measured values.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"galsim/internal/campaign"
	"galsim/internal/clocktree"
	"galsim/internal/dvfs"
	"galsim/internal/pipeline"
	"galsim/internal/power"
	"galsim/internal/report"
	"galsim/internal/workload"
)

// dvfsDefault is the technology operating point of the paper's second
// experiment set.
var dvfsDefault = dvfs.Default

// Config parameterizes a regeneration campaign. Zero values of the scalar
// fields select the campaign defaults (100 000 instructions, workload seed
// 42, phase seed 1) — there is no way to request a literal seed of 0, which
// matches the public galsim.Options semantics.
type Config struct {
	// Instructions committed per run.
	Instructions uint64
	// WorkloadSeed seeds the synthetic benchmark generators.
	WorkloadSeed int64
	// PhaseSeed seeds the GALS clock phases.
	PhaseSeed int64
	// Benchmarks restricts the corpus; nil means every registered benchmark.
	Benchmarks []string
	// Engine executes the runs; nil selects a process-wide shared engine, so
	// repeated figures (and concurrent galsimd requests) reuse each other's
	// completed simulations.
	Engine *campaign.Engine
	// Ctx, when non-nil, bounds the campaign: cancellation stops scheduling
	// new runs and surfaces as a panic from the driver (recovered by the
	// galsimd middleware). Nil means context.Background().
	Ctx context.Context
}

func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// DefaultConfig is the standard campaign: every benchmark, 60k instructions.
func DefaultConfig() Config {
	return Config{Instructions: 60_000, WorkloadSeed: 42, PhaseSeed: 1}
}

func (c Config) benchmarks() []string {
	if len(c.Benchmarks) > 0 {
		return c.Benchmarks
	}
	return workload.Names()
}

func (c Config) engine() *campaign.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	// The process-wide engine memoizes runs across every driver (and across
	// galsim.RunMany): regenerating Figure 9 after Figure 5 reuses the
	// corpus runs instead of re-simulating.
	return campaign.Shared()
}

// spec builds the campaign unit for one full-speed run of the campaign.
func (c Config) spec(kind pipeline.Kind, bench string) campaign.RunSpec {
	return campaign.RunSpec{
		Benchmark:    bench,
		Machine:      kind.String(),
		Instructions: c.Instructions,
		WorkloadSeed: c.WorkloadSeed,
		PhaseSeed:    c.PhaseSeed,
	}
}

// runOne executes a single simulation through the campaign engine; tweak,
// when non-nil, adjusts the declarative spec before submission.
func runOne(cfg Config, kind pipeline.Kind, bench string, tweak func(*campaign.RunSpec)) pipeline.Stats {
	spec := cfg.spec(kind, bench)
	if tweak != nil {
		tweak(&spec)
	}
	st, err := cfg.engine().Run(cfg.ctx(), spec)
	if err != nil {
		panic(err)
	}
	return st
}

// Pair is a matched base/GALS measurement for one benchmark.
type Pair struct {
	Base pipeline.Stats
	GALS pipeline.Stats
}

// RelPerformance is GALS performance normalized to base (< 1 means slower).
func (p Pair) RelPerformance() float64 {
	return p.Base.SimTime.Seconds() / p.GALS.SimTime.Seconds()
}

// RelEnergy is GALS total energy normalized to base.
func (p Pair) RelEnergy() float64 { return p.GALS.EnergyPJ / p.Base.EnergyPJ }

// RelPower is GALS average power normalized to base.
func (p Pair) RelPower() float64 { return p.GALS.AvgPowerWatts() / p.Base.AvgPowerWatts() }

// Corpus maps benchmark name to its measured pair.
type Corpus struct {
	cfg   Config
	pairs map[string]Pair
}

// RunCorpus measures every benchmark on both machines at full speed — the
// shared input of Figures 5 through 10 — by fanning the whole benchmark ×
// machine grid out over the campaign engine's worker pool.
func RunCorpus(cfg Config) *Corpus {
	benches := cfg.benchmarks()
	specs := make([]campaign.RunSpec, 0, 2*len(benches))
	for _, b := range benches {
		specs = append(specs, cfg.spec(pipeline.Base, b), cfg.spec(pipeline.GALS, b))
	}
	stats, err := cfg.engine().RunAll(cfg.ctx(), specs)
	if err != nil {
		panic(err)
	}
	c := &Corpus{cfg: cfg, pairs: map[string]Pair{}}
	for i, b := range benches {
		c.pairs[b] = Pair{Base: stats[2*i], GALS: stats[2*i+1]}
	}
	return c
}

// Benchmarks returns the corpus benchmarks in deterministic order.
func (c *Corpus) Benchmarks() []string {
	out := make([]string, 0, len(c.pairs))
	for b := range c.pairs {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Pair returns one benchmark's measurements.
func (c *Corpus) Pair(bench string) Pair { return c.pairs[bench] }

// Fig5Performance regenerates Figure 5: performance of the GALS model
// relative to the base model, per benchmark. Paper: average ≈ 0.90 (10%
// slowdown, range 5–15%), with fpppp least affected.
func Fig5Performance(c *Corpus) *report.Table {
	t := &report.Table{
		ID:      "Figure 5",
		Title:   "Performance of the GALS model relative to the base model",
		Headers: []string{"benchmark", "base-time", "gals-time", "relative-perf"},
		Note:    "paper: average relative performance ~0.90; fpppp least affected",
	}
	sum := 0.0
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		rel := p.RelPerformance()
		sum += rel
		t.AddRow(b, p.Base.SimTime.String(), p.GALS.SimTime.String(), report.F(rel))
	}
	t.AddRow("AVERAGE", "", "", report.F(sum/float64(len(c.Benchmarks()))))
	return t
}

// Fig6Slip regenerates Figure 6: average slip (fetch→commit latency) per
// instruction for base and GALS. Paper: slip increases ~65% on average.
func Fig6Slip(c *Corpus) *report.Table {
	t := &report.Table{
		ID:      "Figure 6",
		Title:   "Average slip of an instruction in the base and GALS designs",
		Headers: []string{"benchmark", "base-slip", "gals-slip", "gals/base"},
		Note:    "paper: slip increases by ~65% on average in GALS",
	}
	sum := 0.0
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		ratio := float64(p.GALS.AvgSlip()) / float64(p.Base.AvgSlip())
		sum += ratio
		t.AddRow(b, p.Base.AvgSlip().String(), p.GALS.AvgSlip().String(), report.F(ratio))
	}
	t.AddRow("AVERAGE", "", "", report.F(sum/float64(len(c.Benchmarks()))))
	return t
}

// Fig7RelativeSlip regenerates Figure 7: the share of slip spent inside the
// inter-stage FIFOs versus the rest of the pipeline.
func Fig7RelativeSlip(c *Corpus) *report.Table {
	t := &report.Table{
		ID:      "Figure 7",
		Title:   "Relative slip: proportion spent in FIFOs vs pipeline",
		Headers: []string{"benchmark", "base-fifo-share", "gals-fifo-share", "gals-pipeline-share"},
		Note:    "paper: GALS slip growth is only partly accounted for by FIFO residency; the rest is result-forwarding latency",
	}
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		t.AddRow(b, report.Pct(p.Base.FIFOSlipShare()), report.Pct(p.GALS.FIFOSlipShare()),
			report.Pct(1-p.GALS.FIFOSlipShare()))
	}
	return t
}

// Fig8Speculation regenerates Figure 8: percentage of mis-speculated
// (wrong-path) instructions among all fetched. Paper: integer applications
// rise from 13.8% (base) to 16.7% (GALS).
func Fig8Speculation(c *Corpus) *report.Table {
	t := &report.Table{
		ID:      "Figure 8",
		Title:   "Percentage of mis-speculated instructions, base vs GALS",
		Headers: []string{"benchmark", "base-misspec", "gals-misspec", "gals-int-RAT-occ", "base-int-RAT-occ"},
		Note:    "paper: integer average rises 13.8% -> 16.7%; occupancies also rise (ijpeg int RAT 15 -> 24)",
	}
	intSumB, intSumG, intN := 0.0, 0.0, 0
	intSet := map[string]bool{}
	for _, n := range workload.IntegerBenchmarks() {
		intSet[n] = true
	}
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		t.AddRow(b, report.Pct(p.Base.MisspeculationFrac()), report.Pct(p.GALS.MisspeculationFrac()),
			report.F2(p.GALS.AvgIntRAT), report.F2(p.Base.AvgIntRAT))
		if intSet[b] {
			intSumB += p.Base.MisspeculationFrac()
			intSumG += p.GALS.MisspeculationFrac()
			intN++
		}
	}
	if intN > 0 {
		t.AddRow("INT-AVERAGE", report.Pct(intSumB/float64(intN)), report.Pct(intSumG/float64(intN)), "", "")
	}
	return t
}

// Fig9EnergyPower regenerates Figure 9: GALS total energy and average power
// normalized to base. Paper: energy ≈ +1% on average, power ≈ −10%.
func Fig9EnergyPower(c *Corpus) *report.Table {
	t := &report.Table{
		ID:      "Figure 9",
		Title:   "Energy and power of the GALS processor normalized to base",
		Headers: []string{"benchmark", "rel-energy", "rel-power"},
		Note:    "paper: average energy +1%, average power -10%",
	}
	sumE, sumP := 0.0, 0.0
	for _, b := range c.Benchmarks() {
		p := c.Pair(b)
		sumE += p.RelEnergy()
		sumP += p.RelPower()
		t.AddRow(b, report.F(p.RelEnergy()), report.F(p.RelPower()))
	}
	n := float64(len(c.Benchmarks()))
	t.AddRow("AVERAGE", report.F(sumE/n), report.F(sumP/n))
	return t
}

// Fig10Breakdown regenerates Figure 10: the energy breakdown into macro
// blocks, for base and GALS, normalized to the base total. The paper's
// single "ALUs" bar merges the integer and FP units, as done here.
func Fig10Breakdown(cfg Config, bench string) *report.Table {
	base := runOne(cfg, pipeline.Base, bench, nil)
	gals := runOne(cfg, pipeline.GALS, bench, nil)
	t := &report.Table{
		ID:      "Figure 10",
		Title:   fmt.Sprintf("Energy breakdown into macro blocks (%s), normalized to base total", bench),
		Headers: []string{"block", "base", "gals"},
		Note:    "paper: the global-clock saving in GALS is offset by increased consumption of other blocks",
	}
	type rowDef struct {
		label  string
		blocks []power.Block
	}
	rows := []rowDef{
		{"global clock", []power.Block{power.BlockGlobalClock}},
		{"fetch clock", []power.Block{power.BlockFetchClock}},
		{"decode clock", []power.Block{power.BlockDecodeClock}},
		{"integer clock", []power.Block{power.BlockIntClock}},
		{"fp clock", []power.Block{power.BlockFPClock}},
		{"memory clock", []power.Block{power.BlockMemClock}},
		{"alus", []power.Block{power.BlockALUs, power.BlockFPALUs}},
		{"register file", []power.Block{power.BlockRegfile}},
		{"rename logic", []power.Block{power.BlockRename}},
		{"l2 cache", []power.Block{power.BlockL2}},
		{"d-cache", []power.Block{power.BlockDCache}},
		{"branch predictor", []power.Block{power.BlockBPred}},
		{"i-cache", []power.Block{power.BlockICache}},
		{"memory issue window", []power.Block{power.BlockMemIQ}},
		{"fp issue window", []power.Block{power.BlockFPIQ}},
		{"integer issue window", []power.Block{power.BlockIntIQ}},
		{"fifos", []power.Block{power.BlockFIFOs}},
	}
	sumOf := func(st pipeline.Stats, blocks []power.Block) float64 {
		var s float64
		for _, b := range blocks {
			s += st.EnergyBreakdown[b]
		}
		return s
	}
	for _, r := range rows {
		t.AddRow(r.label,
			report.F(sumOf(base, r.blocks)/base.EnergyPJ),
			report.F(sumOf(gals, r.blocks)/base.EnergyPJ))
	}
	t.AddRow("TOTAL", report.F(1.0), report.F(gals.EnergyPJ/base.EnergyPJ))
	return t
}

// slowdownRun measures a GALS machine with per-domain slowdowns (voltage
// scaled per Eq. 1) against the full-speed base machine. Keys are campaign
// domain names ("fetch", "decode", "int", "fp", "mem").
func slowdownRun(cfg Config, bench string, slow map[string]float64) (base, gals pipeline.Stats) {
	base = runOne(cfg, pipeline.Base, bench, nil)
	gals = runOne(cfg, pipeline.GALS, bench, func(s *campaign.RunSpec) {
		s.Slowdowns = slow
	})
	return base, gals
}

// Fig11SelectiveSlowdown regenerates Figure 11: a generic slowdown (fetch
// and memory clocks −10%, FP clock −50%) applied to three benchmarks, plus
// the perl FP÷3 case described in the text. Paper: generic case loses ~18%
// performance; perl/FP÷3 loses 9% with energy −10.8% and power −18%.
func Fig11SelectiveSlowdown(cfg Config) *report.Table {
	t := &report.Table{
		ID:      "Figure 11",
		Title:   "Selective slowdown (fetch -10%, memory -10%, FP -50%) vs base",
		Headers: []string{"case", "rel-perf", "rel-energy", "rel-power"},
		Note:    "paper: ~18% performance loss for the generic case; perl FP/3: perf -9%, energy -10.8%, power -18%",
	}
	generic := map[string]float64{"fetch": 1.10, "mem": 1.10, "fp": 1.50}
	for _, bench := range []string{"perl", "ijpeg", "gcc"} {
		base, gals := slowdownRun(cfg, bench, generic)
		t.AddRow(bench+" (generic)",
			report.F(base.SimTime.Seconds()/gals.SimTime.Seconds()),
			report.F(gals.EnergyPJ/base.EnergyPJ),
			report.F(gals.AvgPowerWatts()/base.AvgPowerWatts()))
	}
	base, gals := slowdownRun(cfg, "perl", map[string]float64{"fp": 3.0})
	t.AddRow("perl (FP/3)",
		report.F(base.SimTime.Seconds()/gals.SimTime.Seconds()),
		report.F(gals.EnergyPJ/base.EnergyPJ),
		report.F(gals.AvgPowerWatts()/base.AvgPowerWatts()))
	return t
}

// Fig12IjpegSweep regenerates Figure 12: ijpeg with fetch −10%, FP −20% and
// a memory-clock sweep of 0/10/20/50% (gals-00/10/20/50), including the
// "ideal" synchronous-DVS energy at equal performance. Paper: energy savings
// 4–13%, performance drop 15–25%.
func Fig12IjpegSweep(cfg Config) *report.Table {
	t := &report.Table{
		ID:      "Figure 12",
		Title:   "ijpeg: fetch -10%, FP -20%, memory clock swept (gals-00/10/20/50)",
		Headers: []string{"case", "rel-perf", "rel-energy", "ideal-energy", "rel-power"},
		Note:    "paper: energy savings 4-13% with performance drops 15-25%; memory slowdown is a poor tradeoff for ijpeg",
	}
	for _, mem := range []struct {
		label string
		slow  float64
	}{
		{"gals-00", 1.0}, {"gals-10", 1.1}, {"gals-20", 1.2}, {"gals-50", 1.5},
	} {
		base, gals := slowdownRun(cfg, "ijpeg", map[string]float64{
			"fetch": 1.10, "fp": 1.20, "mem": mem.slow,
		})
		perf := base.SimTime.Seconds() / gals.SimTime.Seconds()
		ideal := dvfsIdeal(perf)
		t.AddRow(mem.label, report.F(perf), report.F(gals.EnergyPJ/base.EnergyPJ),
			report.F(ideal), report.F(gals.AvgPowerWatts()/base.AvgPowerWatts()))
	}
	return t
}

// Fig13GccSlowdown regenerates Figure 13: gcc with fetch −10% and the FP
// clock slowed 50% (gals-1) or 3× (gals-2), with the "ideal" column. Paper:
// energy −11%, power −21% at a 13% performance loss.
func Fig13GccSlowdown(cfg Config) *report.Table {
	t := &report.Table{
		ID:      "Figure 13",
		Title:   "gcc: fetch -10%, FP clock -50% (gals-1) or /3 (gals-2)",
		Headers: []string{"case", "rel-perf", "rel-energy", "ideal-energy", "rel-power"},
		Note:    "paper: gals-2 achieves energy -11%, power -21% at perf -13%",
	}
	for _, v := range []struct {
		label string
		fp    float64
	}{
		{"gals-1", 1.5}, {"gals-2", 3.0},
	} {
		base, gals := slowdownRun(cfg, "gcc", map[string]float64{
			"fetch": 1.10, "fp": v.fp,
		})
		perf := base.SimTime.Seconds() / gals.SimTime.Seconds()
		t.AddRow(v.label, report.F(perf), report.F(gals.EnergyPJ/base.EnergyPJ),
			report.F(dvfsIdeal(perf)), report.F(gals.AvgPowerWatts()/base.AvgPowerWatts()))
	}
	return t
}

// PhaseSensitivity regenerates the §5.1 observation that GALS performance
// varies with the relative phase of the clocks by about 0.5%.
func PhaseSensitivity(cfg Config, bench string, seeds int) *report.Table {
	t := &report.Table{
		ID:      "Phase sensitivity (§5.1)",
		Title:   fmt.Sprintf("GALS runtime of %s across clock phase seeds", bench),
		Headers: []string{"phase-seed", "gals-time", "vs-seed-1"},
		Note:    "paper: performance varies ~0.5% with relative clock phases",
	}
	var ref float64
	for s := 1; s <= seeds; s++ {
		st := runOne(cfg, pipeline.GALS, bench, func(spec *campaign.RunSpec) {
			spec.PhaseSeed = int64(s)
		})
		secs := st.SimTime.Seconds()
		if s == 1 {
			ref = secs
		}
		t.AddRow(fmt.Sprintf("%d", s), st.SimTime.String(), report.F(ref/secs))
	}
	return t
}

// Table1Skew reproduces the paper's Table 1 and appends the Monte-Carlo
// skew estimate for each process generation.
func Table1Skew() *report.Table {
	t := &report.Table{
		ID:      "Table 1",
		Title:   "Trends in global clock skew across process generations",
		Headers: []string{"design", "tech", "devices", "cycle", "skew", "skew/cycle", "model-skew(ps)", "remarks"},
		Note:    "published data; model-skew is this repo's process-variation Monte-Carlo estimate",
	}
	for _, r := range clocktree.Table1() {
		mean, _, err := clocktree.Estimate(clocktree.ScaleForGeneration(r.TechnologyM), 1)
		if err != nil {
			panic(err)
		}
		t.AddRow(r.Design,
			fmt.Sprintf("%.2fum(%d)", r.TechnologyM, r.Year),
			fmt.Sprintf("%.1fM", r.Devices/1e6),
			fmt.Sprintf("%.2fns", r.CycleNS),
			fmt.Sprintf("%.0fps", r.SkewPS),
			report.Pct(r.SkewFraction()),
			fmt.Sprintf("%.0f", mean),
			r.Remarks)
	}
	return t
}

// dvfsIdeal is the "ideal" column of Figures 12/13: the energy of the base
// machine slowed uniformly (clock and voltage together) to the measured
// relative performance.
func dvfsIdeal(perfRatio float64) float64 {
	if perfRatio > 1 {
		perfRatio = 1
	}
	return dvfsDefault.IdealSynchronousEnergy(perfRatio)
}
