package experiments

import (
	"fmt"

	"galsim/internal/bpred"
	"galsim/internal/campaign"
	"galsim/internal/pipeline"
	"galsim/internal/report"
)

// Ablations probe the design decisions DESIGN.md calls out: the choice of
// communication mechanism (§3.2), the synchronizer depth, the FIFO sizing
// required for full streaming throughput, the clock-phase relationship, and
// the front-end predictor. Each returns a table comparing variants against
// the full-speed base machine on one benchmark.

// AblationLinkStyle compares the paper's mixed-clock FIFOs against the
// stretchable-clock handshake alternative discussed and rejected in §3.2:
// with transactions occurring practically every cycle, the effective
// frequency of a stretch-clocked machine is set by the communication rate.
func AblationLinkStyle(cfg Config, bench string) *report.Table {
	t := &report.Table{
		ID:      "Ablation: link style",
		Title:   fmt.Sprintf("Mixed-clock FIFOs vs stretchable clocks (%s)", bench),
		Headers: []string{"machine", "rel-perf", "ipc", "avg-slip"},
		Note:    "paper §3.2: stretching the clock on every transaction would let the communication rate, not the oscillator, set the effective frequency",
	}
	base := runOne(cfg, pipeline.Base, bench, nil)
	t.AddRow("base (sync)", report.F(1.0), report.F2(base.IPC()), base.AvgSlip().String())
	galsFIFO := runOne(cfg, pipeline.GALS, bench, nil)
	t.AddRow("gals fifo", report.F(base.SimTime.Seconds()/galsFIFO.SimTime.Seconds()),
		report.F2(galsFIFO.IPC()), galsFIFO.AvgSlip().String())
	galsStretch := runOne(cfg, pipeline.GALS, bench, func(s *campaign.RunSpec) {
		s.LinkStyle = "stretch"
	})
	t.AddRow("gals stretch", report.F(base.SimTime.Seconds()/galsStretch.SimTime.Seconds()),
		report.F2(galsStretch.IPC()), galsStretch.AvgSlip().String())
	return t
}

// AblationSyncEdges sweeps the flag-synchronizer depth of the mixed-clock
// FIFOs: 1 (aggressive single-flop), 2 (the safe two-flop default), 3
// (conservative).
func AblationSyncEdges(cfg Config, bench string) *report.Table {
	t := &report.Table{
		ID:      "Ablation: synchronizer depth",
		Title:   fmt.Sprintf("Mixed-clock FIFO flag synchronizer depth (%s)", bench),
		Headers: []string{"sync-edges", "rel-perf", "avg-slip", "misspec"},
		Note:    "deeper synchronizers lower metastability risk at a performance cost",
	}
	base := runOne(cfg, pipeline.Base, bench, nil)
	for _, edges := range []int{1, 2, 3} {
		gals := runOne(cfg, pipeline.GALS, bench, func(s *campaign.RunSpec) {
			s.FIFOSyncEdges = edges
		})
		t.AddRow(fmt.Sprintf("%d", edges),
			report.F(base.SimTime.Seconds()/gals.SimTime.Seconds()),
			gals.AvgSlip().String(), report.Pct(gals.MisspeculationFrac()))
	}
	return t
}

// AblationFIFOCapacity sweeps the FIFO depth. A two-flop-synchronized FIFO
// needs roughly width x (1 + syncEdges + 1) entries before its full-flag
// pessimism stops throttling a 4-wide producer.
func AblationFIFOCapacity(cfg Config, bench string) *report.Table {
	t := &report.Table{
		ID:      "Ablation: FIFO capacity",
		Title:   fmt.Sprintf("Mixed-clock FIFO depth (%s)", bench),
		Headers: []string{"capacity", "rel-perf", "avg-slip", "fifo-share"},
		Note:    "shallow FIFOs cannot stream at full width: the freed-slot news lags two producer edges",
	}
	base := runOne(cfg, pipeline.Base, bench, nil)
	for _, capa := range []int{4, 8, 16, 32} {
		gals := runOne(cfg, pipeline.GALS, bench, func(s *campaign.RunSpec) {
			s.FIFOCapacity = capa
		})
		t.AddRow(fmt.Sprintf("%d", capa),
			report.F(base.SimTime.Seconds()/gals.SimTime.Seconds()),
			gals.AvgSlip().String(), report.Pct(gals.FIFOSlipShare()))
	}
	return t
}

// AblationClockPhases compares random local-clock phases (the paper's
// setup) against artificially aligned phases, isolating the synchronizer
// cost from phase-alignment luck.
func AblationClockPhases(cfg Config, bench string) *report.Table {
	t := &report.Table{
		ID:      "Ablation: clock phases",
		Title:   fmt.Sprintf("Random vs aligned GALS clock phases (%s)", bench),
		Headers: []string{"phases", "rel-perf", "avg-slip"},
		Note:    "aligned equal-frequency clocks pay the full two-edge synchronizer latency on every crossing; random phases average lower",
	}
	base := runOne(cfg, pipeline.Base, bench, nil)
	random := runOne(cfg, pipeline.GALS, bench, nil)
	t.AddRow("random", report.F(base.SimTime.Seconds()/random.SimTime.Seconds()), random.AvgSlip().String())
	aligned := runOne(cfg, pipeline.GALS, bench, func(s *campaign.RunSpec) {
		s.ZeroPhases = true
	})
	t.AddRow("aligned", report.F(base.SimTime.Seconds()/aligned.SimTime.Seconds()), aligned.AvgSlip().String())
	return t
}

// AblationDisambiguation sweeps the memory cluster's load/store ordering
// policy: the oracle model used by the study against conservative and
// address-matching LSQ behaviours.
func AblationDisambiguation(cfg Config, bench string) *report.Table {
	t := &report.Table{
		ID:      "Ablation: memory disambiguation",
		Title:   fmt.Sprintf("Load/store ordering policy, base machine (%s)", bench),
		Headers: []string{"policy", "ipc", "loads-blocked", "avg-slip"},
		Note:    "the study's machine assumes perfect memory-dependence prediction",
	}
	for _, pol := range []pipeline.MemDisambiguation{
		pipeline.DisambigPerfect, pipeline.DisambigAddrMatch, pipeline.DisambigConservative,
	} {
		st := runOne(cfg, pipeline.Base, bench, func(s *campaign.RunSpec) {
			s.MemoryOrdering = pol.String()
		})
		t.AddRow(pol.String(), report.F2(st.IPC()),
			report.Int(st.LoadsBlockedByStores), st.AvgSlip().String())
	}
	return t
}

// DynamicDVFSDemo exercises the future direction the paper's conclusion
// points to — application-driven, multiple-domain dynamic clock/voltage
// scaling — using the online issue-queue-occupancy controller: no per-
// application tuning, the hardware finds the idle domains by itself.
func DynamicDVFSDemo(cfg Config) *report.Table {
	t := &report.Table{
		ID:      "Dynamic DVFS (conclusion / future work)",
		Title:   "Online per-domain frequency+voltage controller vs static machines",
		Headers: []string{"benchmark", "rel-perf", "rel-energy", "rel-power", "retunes", "final int/fp/mem slowdown"},
		Note:    "normalized to the full-speed base machine; controller slows domains with near-empty issue queues",
	}
	for _, bench := range []string{"perl", "gcc", "ijpeg", "swim"} {
		base := runOne(cfg, pipeline.Base, bench, nil)
		dyn := runOne(cfg, pipeline.GALS, bench, func(s *campaign.RunSpec) {
			s.DynamicDVFS = true
		})
		t.AddRow(bench,
			report.F(base.SimTime.Seconds()/dyn.SimTime.Seconds()),
			report.F(dyn.EnergyPJ/base.EnergyPJ),
			report.F(dyn.AvgPowerWatts()/base.AvgPowerWatts()),
			report.Int(dyn.Retunes),
			fmt.Sprintf("%.2f/%.2f/%.2f",
				dyn.FinalSlowdowns[pipeline.DomInt],
				dyn.FinalSlowdowns[pipeline.DomFP],
				dyn.FinalSlowdowns[pipeline.DomMem]))
	}
	return t
}

// AblationPredictor sweeps the direction predictor on the base machine,
// showing how much of the machine's behaviour rides on prediction quality.
func AblationPredictor(cfg Config, bench string) *report.Table {
	t := &report.Table{
		ID:      "Ablation: branch predictor",
		Title:   fmt.Sprintf("Direction predictor sweep, base machine (%s)", bench),
		Headers: []string{"predictor", "ipc", "mispredict-rate", "misspec"},
		Note:    "gshare is the study's predictor; static schemes bound the damage",
	}
	for _, kind := range []bpred.Kind{bpred.GShare, bpred.Bimodal, bpred.Taken, bpred.NotTaken} {
		st := runOne(cfg, pipeline.Base, bench, func(s *campaign.RunSpec) {
			s.Predictor = kind.String()
		})
		t.AddRow(kind.String(), report.F2(st.IPC()),
			report.Pct(st.MispredictRate()), report.Pct(st.MisspeculationFrac()))
	}
	return t
}
