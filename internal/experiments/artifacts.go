package experiments

import (
	"fmt"

	"galsim/internal/report"
	"galsim/internal/workload"
)

// Artifacts lists the regenerable artifact ids in presentation order: the
// single registry behind both cmd/experiments and the galsimd
// /experiments/{figure} endpoint.
func Artifacts() []string {
	return []string{"table1", "5", "6", "7", "8", "9", "10", "11", "12", "13", "phase", "ablations", "dvfs"}
}

// Validate reports a config problem (currently: an unknown or empty
// benchmark name) before any simulation starts.
func (c Config) Validate() error {
	for _, b := range c.Benchmarks {
		if _, err := workload.ByName(b); err != nil {
			return err
		}
	}
	return nil
}

// Regenerate produces the table(s) for one artifact id. The corpus figures
// (5–9) share the config's engine cache, so regenerating several of them in
// one process simulates the corpus once.
func Regenerate(cfg Config, id string) ([]*report.Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	one := func(t *report.Table) ([]*report.Table, error) { return []*report.Table{t}, nil }
	switch id {
	case "table1":
		return one(Table1Skew())
	case "5":
		return one(Fig5Performance(RunCorpus(cfg)))
	case "6":
		return one(Fig6Slip(RunCorpus(cfg)))
	case "7":
		return one(Fig7RelativeSlip(RunCorpus(cfg)))
	case "8":
		return one(Fig8Speculation(RunCorpus(cfg)))
	case "9":
		return one(Fig9EnergyPower(RunCorpus(cfg)))
	case "10":
		return one(Fig10Breakdown(cfg, "compress"))
	case "11":
		return one(Fig11SelectiveSlowdown(cfg))
	case "12":
		return one(Fig12IjpegSweep(cfg))
	case "13":
		return one(Fig13GccSlowdown(cfg))
	case "phase":
		return one(PhaseSensitivity(cfg, "li", 8))
	case "dvfs":
		return one(DynamicDVFSDemo(cfg))
	case "ablations":
		return []*report.Table{
			AblationLinkStyle(cfg, "gcc"),
			AblationSyncEdges(cfg, "compress"),
			AblationFIFOCapacity(cfg, "swim"),
			AblationClockPhases(cfg, "li"),
			AblationPredictor(cfg, "gcc"),
			AblationDisambiguation(cfg, "vortex"),
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown artifact %q (want one of %v)", id, Artifacts())
	}
}
