package simtime

import (
	"testing"
	"testing/quick"
)

func TestUnits(t *testing.T) {
	if Picosecond != 1000*Femtosecond {
		t.Errorf("Picosecond = %d fs, want 1000", int64(Picosecond))
	}
	if Nanosecond != 1000*Picosecond {
		t.Errorf("Nanosecond = %d fs, want 1e6", int64(Nanosecond))
	}
	if Second != 1e15 {
		t.Errorf("Second = %d fs, want 1e15", int64(Second))
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	cases := []float64{0, 1e-9, 2.5e-9, 1e-6, 0.001, 1.0}
	for _, s := range cases {
		got := FromSeconds(s).Seconds()
		if diff := got - s; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("FromSeconds(%g).Seconds() = %g", s, got)
		}
	}
}

func TestFromNanoseconds(t *testing.T) {
	if got := FromNanoseconds(1.25); got != 1250*Picosecond {
		t.Errorf("FromNanoseconds(1.25) = %v, want 1250ps", got)
	}
	if got := FromNanoseconds(0.5); got != 500*Picosecond {
		t.Errorf("FromNanoseconds(0.5) = %v, want 500ps", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0fs"},
		{500, "500fs"},
		{Picosecond, "1ps"},
		{1250 * Picosecond, "1.25ns"},
		{5 * Nanosecond, "5ns"},
		{3 * Microsecond, "3us"},
		{2 * Millisecond, "2ms"},
		{Second, "1s"},
		{-5 * Nanosecond, "-5ns"},
		{Never, "never"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Min(Never, 0) != 0 {
		t.Error("Min(Never, 0) != 0")
	}
}

func TestMinMaxProperties(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		mn, mx := Min(x, y), Max(x, y)
		return mn <= mx && (mn == x || mn == y) && (mx == x || mx == y) && mn+mx == x+y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
