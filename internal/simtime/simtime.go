// Package simtime defines the simulated time base shared by every subsystem.
//
// Simulated time is an integer count of femtoseconds. The nominal processor
// clock in this study is 1 GHz (period = 1e6 fs), so every clock-period
// manipulation used by the paper's experiments — a 10% or 20% or 50%
// slowdown, or a divide-by-three — is exactly representable with no
// accumulated rounding drift. int64 femtoseconds cover about 2.5 hours of
// simulated time, far beyond any run in this repository.
package simtime

import (
	"fmt"
	"math"
)

// Time is an absolute simulated time in femtoseconds.
type Time int64

// Duration is a difference between two Times, in femtoseconds.
type Duration = Time

// Convenient duration units.
const (
	Femtosecond Duration = 1
	Picosecond  Duration = 1e3
	Nanosecond  Duration = 1e6
	Microsecond Duration = 1e9
	Millisecond Duration = 1e12
	Second      Duration = 1e15
)

// Never is a sentinel meaning "no scheduled time"; it sorts after every
// representable time.
const Never Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Picoseconds converts t to floating-point picoseconds.
func (t Time) Picoseconds() float64 { return float64(t) / float64(Picosecond) }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest femtosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromNanoseconds converts floating-point nanoseconds to a Time, rounding to
// the nearest femtosecond.
func FromNanoseconds(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// String renders the time with an adaptive unit, e.g. "1.25ns" or "800ps".
func (t Time) String() string {
	neg := ""
	v := t
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v == Never:
		return "never"
	case v >= Second:
		return fmt.Sprintf("%s%.6gs", neg, float64(v)/float64(Second))
	case v >= Millisecond:
		return fmt.Sprintf("%s%.6gms", neg, float64(v)/float64(Millisecond))
	case v >= Microsecond:
		return fmt.Sprintf("%s%.6gus", neg, float64(v)/float64(Microsecond))
	case v >= Nanosecond:
		return fmt.Sprintf("%s%.6gns", neg, float64(v)/float64(Nanosecond))
	case v >= Picosecond:
		return fmt.Sprintf("%s%.6gps", neg, float64(v)/float64(Picosecond))
	default:
		return fmt.Sprintf("%s%dfs", neg, int64(v))
	}
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
