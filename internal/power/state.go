package power

import "fmt"

// State is the meter's snapshot form: accumulated energies, cycle and idle
// counts, and the accesses recorded but not yet closed by an EndCycle.
type State struct {
	Pending []float64 `json:"pending"`
	Energy  []float64 `json:"energy"`
	Cycles  []uint64  `json:"cycles"`
	Idle    []uint64  `json:"idle"`
}

// CaptureState snapshots the meter.
func (m *Meter) CaptureState() State {
	return State{
		Pending: append([]float64(nil), m.pending[:]...),
		Energy:  append([]float64(nil), m.energy[:]...),
		Cycles:  append([]uint64(nil), m.cycles[:]...),
		Idle:    append([]uint64(nil), m.idle[:]...),
	}
}

// RestoreState reinstates a captured state. The block count must match —
// a snapshot from a build with a different block set cannot be applied.
func (m *Meter) RestoreState(st State) error {
	if len(st.Pending) != NumBlocks || len(st.Energy) != NumBlocks ||
		len(st.Cycles) != NumBlocks || len(st.Idle) != NumBlocks {
		return fmt.Errorf("power: restored state has %d/%d/%d/%d entries, this build accounts %d blocks",
			len(st.Pending), len(st.Energy), len(st.Cycles), len(st.Idle), NumBlocks)
	}
	copy(m.pending[:], st.Pending)
	copy(m.energy[:], st.Energy)
	copy(m.cycles[:], st.Cycles)
	copy(m.idle[:], st.Idle)
	return nil
}
