// Package power implements the architectural power model of the study: a
// Wattch-style accounting of per-access switching energy for every macro
// block of the processor, per-cycle switching energy for the clock
// distribution grids, the paper's 10%-of-full-power charge for idle
// (clock-gated) blocks, the energy of the inter-domain FIFOs, and the
// (V/Vnom)² scaling used by the multiple-voltage experiments.
//
// Block granularity follows Figure 10 of the paper, which breaks total
// energy into: the global clock grid, the five local clock grids (fetch,
// decode, integer, FP, memory), the ALUs, register file, rename logic, L2
// cache, D-cache, branch predictor, I-cache, and the three issue windows —
// plus the mixed-clock FIFOs present only in the GALS machine.
//
// For the synchronous base machine the clock-grid constants are
// proportioned after the 21264's published clocking hierarchy: the clock
// network is roughly a third of chip power, of which the global grid is
// roughly a third and the local (major-clock) grids the rest. The GALS
// machine drops the global grid and keeps the five local grids — exactly
// the paper's §4.3 modeling decision.
package power

import (
	"fmt"
)

// Block identifies one energy-accounted macro block.
type Block uint8

// Macro blocks, in Figure 10 display order.
const (
	BlockGlobalClock Block = iota
	BlockMemClock
	BlockFPClock
	BlockIntClock
	BlockDecodeClock
	BlockFetchClock
	BlockALUs   // integer ALUs (charged by the integer domain)
	BlockFPALUs // FP units (charged by the FP domain; merged with ALUs in Figure 10)
	BlockRegfile
	BlockRename
	BlockL2
	BlockDCache
	BlockBPred
	BlockICache
	BlockMemIQ
	BlockFPIQ
	BlockIntIQ
	BlockFIFOs
	numBlocks
)

// NumBlocks is the number of accounted macro blocks.
const NumBlocks = int(numBlocks)

// String implements fmt.Stringer.
func (b Block) String() string {
	names := [...]string{
		"global-clock", "mem-clock", "fp-clock", "int-clock", "decode-clock",
		"fetch-clock", "alus", "fp-alus", "regfile", "rename", "l2", "dcache",
		"bpred", "icache", "mem-iq", "fp-iq", "int-iq", "fifos",
	}
	if int(b) < len(names) {
		return names[b]
	}
	return fmt.Sprintf("block(%d)", uint8(b))
}

// Blocks returns all accounted blocks in display order.
func Blocks() []Block {
	out := make([]Block, NumBlocks)
	for i := range out {
		out[i] = Block(i)
	}
	return out
}

// IsClock reports whether the block is a clock distribution grid.
func (b Block) IsClock() bool {
	switch b {
	case BlockGlobalClock, BlockMemClock, BlockFPClock, BlockIntClock,
		BlockDecodeClock, BlockFetchClock:
		return true
	}
	return false
}

// BlockParams gives one block's energy model.
type BlockParams struct {
	// PerAccess is the switching energy of one access, in picojoules at
	// nominal voltage. For clock grids it is the energy of one clock cycle.
	PerAccess float64
	// FullAccesses is the access count of a fully busy cycle; idle cycles
	// charge IdleFraction × FullAccesses × PerAccess. Zero for grids (a grid
	// is never idle while its clock runs) and for FIFOs.
	FullAccesses float64
}

// Params is the complete power model configuration.
type Params struct {
	// IdleFraction is the fraction of full per-cycle power an unused block
	// still burns; the paper models clock-gating overheads and leakage as
	// 10% of full power.
	IdleFraction float64
	Blocks       [NumBlocks]BlockParams
}

// DefaultParams returns the calibrated model. Absolute magnitudes are
// arbitrary (results are reported normalized to the base machine); the
// ratios encode the structure described in the package comment.
func DefaultParams() Params {
	p := Params{IdleFraction: 0.10}
	set := func(b Block, perAccess, full float64) {
		p.Blocks[b] = BlockParams{PerAccess: perAccess, FullAccesses: full}
	}
	// Clock grids: energy per cycle of their domain's clock. Proportioned so
	// that in the base machine the whole clock network is roughly a third of
	// total power and the global grid roughly a third of that (the
	// 21264-style hierarchy): global ≈ 10% of chip power.
	set(BlockGlobalClock, 750, 0)
	set(BlockFetchClock, 385, 0)
	set(BlockDecodeClock, 495, 0)
	set(BlockIntClock, 495, 0)
	set(BlockFPClock, 495, 0)
	set(BlockMemClock, 605, 0)
	// Arrays and logic: energy per access, and accesses in a saturated cycle.
	set(BlockICache, 1100, 1)  // one line fetch per cycle
	set(BlockBPred, 350, 2)    // lookup + update
	set(BlockRename, 180, 4)   // 4-wide rename
	set(BlockRegfile, 140, 12) // 8 read + 4 write ports
	set(BlockIntIQ, 200, 8)    // dispatch writes + selects + wakeups
	set(BlockFPIQ, 200, 8)     //
	set(BlockMemIQ, 200, 6)    //
	set(BlockALUs, 450, 4)     // 4 integer ALUs
	set(BlockFPALUs, 900, 4)   // 4 FP units
	set(BlockDCache, 900, 2)   // 2 ports
	set(BlockL2, 2400, 0.5)    // occasional
	set(BlockFIFOs, 30, 0)     // per put/get; GALS only
	return p
}

// Validate reports an error for malformed parameters.
func (p Params) Validate() error {
	if p.IdleFraction < 0 || p.IdleFraction > 1 {
		return fmt.Errorf("power: idle fraction %v outside [0,1]", p.IdleFraction)
	}
	for b, bp := range p.Blocks {
		if bp.PerAccess < 0 || bp.FullAccesses < 0 {
			return fmt.Errorf("power: block %v has negative parameters", Block(b))
		}
	}
	return nil
}

// Meter accumulates energy over a simulation run. One Meter serves the whole
// machine; each clock domain ends its own cycles with EndCycle over the
// blocks it owns.
type Meter struct {
	params  Params
	pending [NumBlocks]float64 // accesses recorded since the block's last EndCycle
	energy  [NumBlocks]float64 // accumulated energy in pJ
	cycles  [NumBlocks]uint64
	idle    [NumBlocks]uint64
}

// NewMeter builds a meter with the given parameters.
func NewMeter(params Params) *Meter {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Meter{params: params}
}

// Params returns the meter's configuration.
func (m *Meter) Params() Params { return m.params }

// Access records n accesses to a block within the current cycle of the
// block's owning domain.
func (m *Meter) Access(b Block, n int) {
	if n < 0 {
		panic(fmt.Sprintf("power: negative access count for %v", b))
	}
	m.pending[b] += float64(n)
}

// AccessWeighted records a fractional access (used for FP operations, which
// switch more capacitance than the blended ALU per-access constant).
func (m *Meter) AccessWeighted(b Block, weight float64) {
	if weight < 0 {
		panic(fmt.Sprintf("power: negative access weight for %v", b))
	}
	m.pending[b] += weight
}

// EndCycle closes one clock cycle for the given blocks at the given voltage
// scale factor ((V/Vnom)², see clock.Domain.EnergyScale): active blocks
// charge their recorded accesses, idle blocks charge the idle fraction of a
// full cycle.
func (m *Meter) EndCycle(blocks []Block, energyScale float64) {
	for _, b := range blocks {
		bp := m.params.Blocks[b]
		acc := m.pending[b]
		m.pending[b] = 0
		m.cycles[b]++
		var e float64
		if acc > 0 {
			e = acc * bp.PerAccess
		} else if b.IsClock() {
			// A grid switches every cycle of its clock regardless of work.
			e = bp.PerAccess
		} else {
			m.idle[b]++
			e = m.params.IdleFraction * bp.FullAccesses * bp.PerAccess
		}
		m.energy[b] += e * energyScale
	}
}

// EndClockCycle charges one cycle of a clock grid block: grids switch every
// cycle of their domain.
func (m *Meter) EndClockCycle(b Block, energyScale float64) {
	if !b.IsClock() {
		panic(fmt.Sprintf("power: EndClockCycle on non-clock block %v", b))
	}
	m.cycles[b]++
	m.energy[b] += m.params.Blocks[b].PerAccess * energyScale
}

// AddEnergy adds raw energy (pJ) to a block, already voltage-scaled. Used
// for FIFO energy computed from link statistics.
func (m *Meter) AddEnergy(b Block, pj float64) {
	if pj < 0 {
		panic(fmt.Sprintf("power: negative energy for %v", b))
	}
	m.energy[b] += pj
}

// BlockEnergy returns a block's accumulated energy in picojoules.
func (m *Meter) BlockEnergy(b Block) float64 { return m.energy[b] }

// TotalEnergy returns the machine's accumulated energy in picojoules.
func (m *Meter) TotalEnergy() float64 {
	var t float64
	for _, e := range m.energy {
		t += e
	}
	return t
}

// Breakdown returns a copy of the per-block energies, indexed by Block.
func (m *Meter) Breakdown() [NumBlocks]float64 { return m.energy }

// ClockEnergy returns the energy of all clock grids combined.
func (m *Meter) ClockEnergy() float64 {
	var t float64
	for b := Block(0); b < Block(NumBlocks); b++ {
		if b.IsClock() {
			t += m.energy[b]
		}
	}
	return t
}

// Cycles returns how many cycles a block has been accounted.
func (m *Meter) Cycles(b Block) uint64 { return m.cycles[b] }

// IdleCycles returns how many accounted cycles found the block unused.
func (m *Meter) IdleCycles(b Block) uint64 { return m.idle[b] }
