package power

import (
	"math"
	"testing"
)

func TestBlockNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Blocks() {
		s := b.String()
		if s == "" || seen[s] {
			t.Errorf("block %d name %q empty or duplicate", b, s)
		}
		seen[s] = true
	}
	if len(Blocks()) != NumBlocks {
		t.Error("Blocks() length mismatch")
	}
}

func TestClockClassification(t *testing.T) {
	clocks := 0
	for _, b := range Blocks() {
		if b.IsClock() {
			clocks++
		}
	}
	if clocks != 6 { // global + 5 locals
		t.Errorf("%d clock blocks, want 6", clocks)
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestActiveCycleCharging(t *testing.T) {
	m := NewMeter(DefaultParams())
	m.Access(BlockICache, 2)
	m.EndCycle([]Block{BlockICache}, 1.0)
	want := 2 * DefaultParams().Blocks[BlockICache].PerAccess
	if got := m.BlockEnergy(BlockICache); got != want {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestIdleCycleChargesTenPercent(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p)
	m.EndCycle([]Block{BlockALUs}, 1.0)
	bp := p.Blocks[BlockALUs]
	want := 0.10 * bp.FullAccesses * bp.PerAccess
	if got := m.BlockEnergy(BlockALUs); math.Abs(got-want) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", got, want)
	}
	if m.IdleCycles(BlockALUs) != 1 {
		t.Error("idle cycle not counted")
	}
}

func TestClockGridNeverIdle(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p)
	m.EndCycle([]Block{BlockFetchClock}, 1.0)
	if got := m.BlockEnergy(BlockFetchClock); got != p.Blocks[BlockFetchClock].PerAccess {
		t.Errorf("grid idle cycle charged %v, want full %v", got, p.Blocks[BlockFetchClock].PerAccess)
	}
}

func TestEndClockCycle(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p)
	m.EndClockCycle(BlockGlobalClock, 1.0)
	m.EndClockCycle(BlockGlobalClock, 0.25)
	want := p.Blocks[BlockGlobalClock].PerAccess * 1.25
	if got := m.BlockEnergy(BlockGlobalClock); math.Abs(got-want) > 1e-9 {
		t.Errorf("grid energy = %v, want %v", got, want)
	}
	if m.Cycles(BlockGlobalClock) != 2 {
		t.Error("cycles not counted")
	}
}

func TestEndClockCycleRejectsNonClock(t *testing.T) {
	m := NewMeter(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("EndClockCycle(ALUs) did not panic")
		}
	}()
	m.EndClockCycle(BlockALUs, 1.0)
}

func TestVoltageScaling(t *testing.T) {
	m := NewMeter(DefaultParams())
	m.Access(BlockDCache, 1)
	m.EndCycle([]Block{BlockDCache}, 0.5) // e.g. V = Vnom/sqrt(2)
	want := 0.5 * DefaultParams().Blocks[BlockDCache].PerAccess
	if got := m.BlockEnergy(BlockDCache); math.Abs(got-want) > 1e-9 {
		t.Errorf("scaled energy = %v, want %v", got, want)
	}
}

func TestPendingResetsBetweenCycles(t *testing.T) {
	m := NewMeter(DefaultParams())
	m.Access(BlockRename, 4)
	m.EndCycle([]Block{BlockRename}, 1.0)
	first := m.BlockEnergy(BlockRename)
	m.EndCycle([]Block{BlockRename}, 1.0) // idle cycle
	second := m.BlockEnergy(BlockRename) - first
	idle := 0.10 * DefaultParams().Blocks[BlockRename].FullAccesses * DefaultParams().Blocks[BlockRename].PerAccess
	if math.Abs(second-idle) > 1e-9 {
		t.Errorf("second cycle charged %v, want idle %v", second, idle)
	}
}

func TestTotalsAndBreakdown(t *testing.T) {
	m := NewMeter(DefaultParams())
	m.Access(BlockICache, 1)
	m.EndCycle([]Block{BlockICache}, 1.0)
	m.EndClockCycle(BlockGlobalClock, 1.0)
	m.AddEnergy(BlockFIFOs, 123)
	var sum float64
	for _, e := range m.Breakdown() {
		sum += e
	}
	if math.Abs(sum-m.TotalEnergy()) > 1e-9 {
		t.Error("breakdown does not sum to total")
	}
	if m.ClockEnergy() != m.BlockEnergy(BlockGlobalClock) {
		t.Error("clock energy wrong")
	}
}

func TestGlobalGridShareOfClockPower(t *testing.T) {
	// Structural check on the calibration: the global grid should be a
	// substantial minority of total clock power (the 21264-style hierarchy),
	// between 20% and 45%.
	p := DefaultParams()
	global := p.Blocks[BlockGlobalClock].PerAccess
	total := global
	for _, b := range []Block{BlockFetchClock, BlockDecodeClock, BlockIntClock, BlockFPClock, BlockMemClock} {
		total += p.Blocks[b].PerAccess
	}
	share := global / total
	if share < 0.20 || share > 0.45 {
		t.Errorf("global grid share of clock power = %.2f, want 0.20-0.45", share)
	}
}

func TestNegativeGuards(t *testing.T) {
	m := NewMeter(DefaultParams())
	for name, fn := range map[string]func(){
		"Access":         func() { m.Access(BlockALUs, -1) },
		"AccessWeighted": func() { m.AccessWeighted(BlockALUs, -0.5) },
		"AddEnergy":      func() { m.AddEnergy(BlockFIFOs, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
