// Package snapshot defines the on-disk (and on-wire) container for a
// simulation state capture: the full machine state at a decode-cycle
// boundary, serialized by internal/pipeline, wrapped here in a versioned,
// CRC-checked envelope with a content digest.
//
// The envelope is deliberately dumb: a magic number, a format version, a
// CRC-32C over the JSON body, and the body itself. Everything the body
// means — which structures, which fields, how restore reconstructs the
// machine — is owned by the packages that produce and consume it. What the
// envelope guarantees is that a reader either gets exactly the bytes the
// writer produced, under a version it understands, or a typed error; never
// a silent partial restore.
//
// Layout:
//
//	offset  size  field
//	0       4     magic "GSNP"
//	4       4     format version (little-endian uint32)
//	8       4     body length   (little-endian uint32)
//	12      4     CRC-32C (Castagnoli) of the body
//	16      n     body: JSON-encoded Snapshot
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Version is the current snapshot format version. Restoring a snapshot
// written under any other version fails with a VersionError: state layouts
// are not stable across format bumps, and a half-understood restore is
// worse than a re-run warm-up.
const Version = 1

const (
	magic      = "GSNP"
	headerSize = 16
	// maxBody bounds a decode's allocation: snapshots of the paper's
	// machine are a few hundred kilobytes of JSON; anything near this
	// limit is a corrupt length field, not a real capture.
	maxBody = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrMagic reports bytes that are not a snapshot at all.
var ErrMagic = errors.New("snapshot: bad magic (not a snapshot file)")

// VersionError reports a snapshot written under a different format version.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d not supported (this build reads version %d); re-capture the snapshot", e.Got, e.Want)
}

// CorruptError reports a snapshot whose envelope is well-formed enough to
// identify but whose contents cannot be trusted: truncation, a CRC
// mismatch, or an undecodable body.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "snapshot: corrupt: " + e.Reason }

// Snapshot is one captured simulation state plus the identity needed to
// check, at restore time, that it is being resumed under a compatible
// configuration.
type Snapshot struct {
	// SpecKey is the content address of the run configuration that produced
	// this capture, with the instruction budget normalized away: two runs
	// that share a warm-up prefix share this key. Restore refuses a
	// snapshot whose key does not match the resuming spec.
	SpecKey string `json:"spec_key"`
	// SpecJSON is the canonical spec for human inspection and error
	// messages; SpecKey is the authoritative identity.
	SpecJSON json.RawMessage `json:"spec_json,omitempty"`
	// Committed is the number of committed instructions at capture: the
	// warm-up length this snapshot encodes.
	Committed uint64 `json:"committed"`
	// State is the opaque machine state (pipeline.CoreState JSON).
	State json.RawMessage `json:"state"`
}

// Encode writes the snapshot in envelope form.
func (s *Snapshot) Encode(w io.Writer) error {
	body, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("snapshot: encoding body: %w", err)
	}
	if len(body) > maxBody {
		return fmt.Errorf("snapshot: body of %d bytes exceeds the %d-byte format limit", len(body), maxBody)
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(body, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// EncodeBytes returns the snapshot in envelope form.
func (s *Snapshot) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Digest returns the snapshot's content identity: the hex SHA-256 of its
// encoded form. It is the value that joins cache keys of snapshot-seeded
// runs, so a run restored from different state can never alias a cached
// result.
func (s *Snapshot) Digest() (string, error) {
	b, err := s.EncodeBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Decode reads one snapshot, verifying magic, version and checksum. Any
// failure is typed: ErrMagic, *VersionError, or *CorruptError. It never
// returns a partially-filled snapshot alongside a nil error.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, &CorruptError{Reason: "truncated header"}
		}
		return nil, err
	}
	if string(hdr[0:4]) != magic {
		return nil, ErrMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxBody {
		return nil, &CorruptError{Reason: fmt.Sprintf("body length %d exceeds format limit", n)}
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, &CorruptError{Reason: "truncated body"}
		}
		return nil, err
	}
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(hdr[12:16]); got != want {
		return nil, &CorruptError{Reason: fmt.Sprintf("body checksum %08x, header says %08x", got, want)}
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, &CorruptError{Reason: "undecodable body: " + err.Error()}
	}
	if len(s.State) == 0 {
		return nil, &CorruptError{Reason: "empty state"}
	}
	return &s, nil
}

// DecodeBytes decodes a snapshot from memory, additionally rejecting
// trailing garbage (a file-level concern Decode leaves to the caller).
func DecodeBytes(b []byte) (*Snapshot, error) {
	r := bytes.NewReader(b)
	s, err := Decode(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, &CorruptError{Reason: fmt.Sprintf("%d trailing bytes after body", r.Len())}
	}
	return s, nil
}

// WriteFile atomically-ish writes the snapshot to path (temp file + rename
// within the same directory), so a crash mid-write never leaves a
// truncated snapshot under the final name.
func WriteFile(path string, s *Snapshot) error {
	b, err := s.EncodeBytes()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile reads and verifies a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(b)
}

// FileDigest returns the hex SHA-256 of the file's raw bytes — for a
// well-formed snapshot file this equals the contained Snapshot's Digest(),
// without the cost of decoding it.
func FileDigest(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
