package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		SpecKey:   "abc123",
		SpecJSON:  []byte(`{"benchmark":"gcc"}`),
		Committed: 50_000,
		State:     []byte(`{"cycles":12345,"rob":[1,2,3]}`),
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample()
	b, err := s.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecKey != s.SpecKey || got.Committed != s.Committed ||
		!bytes.Equal(got.State, s.State) || !bytes.Equal(got.SpecJSON, s.SpecJSON) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
	}
	d1, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := got.Digest()
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("digest not stable across round trip: %q vs %q", d1, d2)
	}
	// Any content change must change the digest.
	s.Committed++
	if d3, _ := s.Digest(); d3 == d1 {
		t.Fatal("digest unchanged after state change")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.gsnp")
	s := sample()
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecKey != s.SpecKey {
		t.Fatalf("file round trip: got key %q", got.SpecKey)
	}
}

func TestBadMagic(t *testing.T) {
	b, _ := sample().EncodeBytes()
	b[0] = 'X'
	if _, err := DecodeBytes(b); !errors.Is(err, ErrMagic) {
		t.Fatalf("want ErrMagic, got %v", err)
	}
}

func TestVersionSkew(t *testing.T) {
	b, _ := sample().EncodeBytes()
	binary.LittleEndian.PutUint32(b[4:8], Version+1)
	var ve *VersionError
	if _, err := DecodeBytes(b); !errors.As(err, &ve) {
		t.Fatalf("want VersionError, got %v", err)
	} else if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("VersionError fields: %+v", ve)
	}
}

func TestTruncation(t *testing.T) {
	b, _ := sample().EncodeBytes()
	var ce *CorruptError
	// Every possible truncation point must produce a typed error, never a
	// partial decode.
	for n := 0; n < len(b); n++ {
		if _, err := DecodeBytes(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		} else if n >= 4 && !errors.As(err, &ce) {
			t.Fatalf("truncation to %d bytes: want CorruptError, got %v", n, err)
		}
	}
}

func TestCorruption(t *testing.T) {
	b, _ := sample().EncodeBytes()
	// Flip one body byte: CRC must catch it.
	b[headerSize+5] ^= 0x40
	var ce *CorruptError
	if _, err := DecodeBytes(b); !errors.As(err, &ce) {
		t.Fatalf("want CorruptError after body flip, got %v", err)
	}
}

func TestTrailingGarbage(t *testing.T) {
	b, _ := sample().EncodeBytes()
	b = append(b, 0xde, 0xad)
	var ce *CorruptError
	if _, err := DecodeBytes(b); !errors.As(err, &ce) {
		t.Fatalf("want CorruptError for trailing bytes, got %v", err)
	}
}

func TestOversizedLength(t *testing.T) {
	b, _ := sample().EncodeBytes()
	binary.LittleEndian.PutUint32(b[8:12], maxBody+1)
	var ce *CorruptError
	if _, err := DecodeBytes(b); !errors.As(err, &ce) {
		t.Fatalf("want CorruptError for oversized length, got %v", err)
	}
}

// FuzzSnapshot feeds arbitrary bytes to the decoder: it must never panic,
// and whenever it succeeds, re-encoding the result must decode again (the
// envelope is canonical for what it accepts).
func FuzzSnapshot(f *testing.F) {
	good, _ := sample().EncodeBytes()
	f.Add(good)
	f.Add([]byte(magic))
	f.Add([]byte{})
	bad := append([]byte{}, good...)
	bad[20] ^= 0xff
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeBytes(data)
		if err != nil {
			return
		}
		b, err := s.EncodeBytes()
		if err != nil {
			t.Fatalf("decoded snapshot fails to re-encode: %v", err)
		}
		if _, err := DecodeBytes(b); err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
	})
}
