package isa

// RestoreFrom copies every simulation field of src into in, preserving in's
// arena bookkeeping (reference count and generation). Snapshot restore uses
// it to reinstate captured records into freshly allocated ones without
// corrupting the arena's accounting.
func (in *Instr) RestoreFrom(src *Instr) {
	refs, gen := in.refs, in.gen
	*in = *src
	in.refs, in.gen = refs, gen
}
