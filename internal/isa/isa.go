// Package isa defines the abstract instruction set of the simulated
// processor: instruction classes, the register model, execution latencies,
// and the dynamic-instruction record carried through the pipeline.
//
// The machine is a generic RISC resembling the Alpha: 32 integer and 32
// floating-point architectural registers, load/store architecture, and the
// functional-unit classes of the paper's Table 3 (4 integer ALUs, 4 FP
// units, a load/store port into a 16 KB L1 D-cache).
//
// Because the simulator is trace-driven, instructions carry no values — only
// register names, class, and memory/branch metadata. The record also carries
// the lifecycle timestamps (fetch, decode, dispatch, issue, complete,
// commit) and the accumulated FIFO residency needed for the paper's slip
// analysis (Figures 6 and 7).
//
// # Instruction arena
//
// Dynamic instructions are the simulator's only high-rate heap traffic: one
// record per fetched instruction, including the wrong-path junk discarded at
// every misprediction. Pool is a chunked arena with a free list that removes
// that traffic from the garbage collector. The lifecycle is:
//
//   - allocate at fetch: Pool.Get returns a fully re-initialized *Instr
//     (identical to NewInstr) holding one reference;
//   - the pipeline takes a second reference when the instruction enters the
//     reorder buffer, because from that point the record lives in two places
//     at once (the ROB and whichever queue/link/issue structure it currently
//     occupies);
//   - free at commit and at squash: each holder calls Pool.Release as the
//     instruction leaves it — the ROB at commit or squash-undo, the flow
//     structures when a doomed entry is flushed or dropped — and the record
//     returns to the free list only when the last reference is gone, so a
//     stale *Instr can never be observed through a FIFO, issue queue or ROB.
//
// A generation counter increments on every recycle; Instr.Generation lets
// tests (and debug assertions) detect a pointer held across a free. Callers
// that intentionally retain records past commit — an OnCommit hook that
// stores *Instr, for example — must opt out of pooling entirely (the
// pipeline's RetainInstrs), falling back to NewInstr's ordinary heap
// allocations; the two allocation paths produce identical records.
package isa

import (
	"fmt"

	"galsim/internal/simtime"
)

// Class partitions instructions by the resource that executes them; it
// determines which issue queue (and, in the GALS machine, which clock
// domain) an instruction is dispatched to.
type Class uint8

// Instruction classes.
const (
	ClassNop    Class = iota // consumes a slot, executes in 1 cycle on an int ALU
	ClassIntALU              // add/sub/logic/shift/compare
	ClassIntMul              // integer multiply
	ClassFPAdd               // FP add/sub/convert
	ClassFPMul               // FP multiply
	ClassFPDiv               // FP divide / sqrt
	ClassLoad                // memory read
	ClassStore               // memory write
	ClassBranch              // conditional branch / jump / call / return
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "int-alu"
	case ClassIntMul:
		return "int-mul"
	case ClassFPAdd:
		return "fp-add"
	case ClassFPMul:
		return "fp-mul"
	case ClassFPDiv:
		return "fp-div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// IsFP reports whether the class executes on the floating-point cluster.
func (c Class) IsFP() bool { return c == ClassFPAdd || c == ClassFPMul || c == ClassFPDiv }

// IsMem reports whether the class executes on the memory cluster.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// IsInt reports whether the class executes on the integer cluster (branches
// resolve on the integer ALUs, as in the 21264).
func (c Class) IsInt() bool {
	return c == ClassNop || c == ClassIntALU || c == ClassIntMul || c == ClassBranch
}

// ExecLatency returns the occupancy of the functional unit in cycles of its
// own clock domain, excluding cache misses (the memory system adds those
// separately for loads).
func (c Class) ExecLatency() int {
	switch c {
	case ClassNop, ClassIntALU, ClassBranch:
		return 1
	case ClassIntMul:
		return 3
	case ClassFPAdd:
		return 2
	case ClassFPMul:
		return 4
	case ClassFPDiv:
		return 12
	case ClassLoad, ClassStore:
		return 1 // address generation; cache access time is added by the LSQ
	default:
		panic(fmt.Sprintf("isa: unknown class %d", uint8(c)))
	}
}

// RegFile selects which architectural register file a register name refers to.
type RegFile uint8

// Register files.
const (
	RegNone RegFile = iota // no register (absent operand)
	RegInt
	RegFP
)

// NumArchRegs is the number of architectural registers in each file.
const NumArchRegs = 32

// Reg names one architectural register.
type Reg struct {
	File  RegFile
	Index uint8 // 0..NumArchRegs-1; index 31 of the int file is hardwired zero
}

// ZeroReg is the hardwired integer zero register: writes to it are discarded
// and reads never create dependences.
var ZeroReg = Reg{File: RegInt, Index: 31}

// Valid reports whether the register is a real operand.
func (r Reg) Valid() bool { return r.File != RegNone }

// IsZero reports whether r is the hardwired zero register.
func (r Reg) IsZero() bool { return r == ZeroReg }

// String implements fmt.Stringer.
func (r Reg) String() string {
	switch r.File {
	case RegNone:
		return "-"
	case RegInt:
		return fmt.Sprintf("r%d", r.Index)
	case RegFP:
		return fmt.Sprintf("f%d", r.Index)
	default:
		return fmt.Sprintf("?%d.%d", r.File, r.Index)
	}
}

// Seq is a global dynamic-instruction sequence number; fetch order defines
// program order, and squashing discards every instruction younger than a
// given Seq.
type Seq uint64

// Instr is one dynamic instruction flowing through the pipeline. Fields are
// written by the generator (identity, operands, outcome ground truth) and by
// pipeline stages (rename results, lifecycle timestamps, statistics).
type Instr struct {
	Seq   Seq
	PC    uint64
	Class Class

	// Architectural operands.
	Src  [2]Reg
	Dest Reg

	// Memory metadata (loads/stores): effective address, filled by the
	// generator (trace-driven addressing).
	Addr uint64

	// Branch metadata (ground truth from the generator).
	Taken  bool   // actual direction
	Target uint64 // actual target

	// Branch prediction results (filled at fetch).
	PredTaken    bool
	PredTarget   uint64
	Mispredicted bool // prediction != ground truth, discovered at fetch time

	// WrongPath marks instructions fetched past a mispredicted branch; they
	// consume resources and are eventually squashed, never committed.
	WrongPath bool

	// WPID identifies the wrong-path excursion: the front end numbers each
	// misprediction's excursion, stamps the id on the mispredicted branch
	// and on every wrong-path instruction fetched during it. Squash logic
	// discards wrong-path instructions whose excursion has resolved.
	WPID uint64

	// Rename results (physical register indices; -1 when unused).
	PhysSrc  [2]int
	PhysDest int
	OldPhys  int // previous mapping of Dest, freed at commit / restored on squash

	// ROB bookkeeping.
	ROBIndex int

	// Lifecycle timestamps (simtime.Never until reached).
	FetchTime    simtime.Time
	DecodeTime   simtime.Time
	DispatchTime simtime.Time
	IssueTime    simtime.Time
	CompleteTime simtime.Time
	CommitTime   simtime.Time

	// FIFOTime accumulates the total residency of this instruction (and of
	// its completion notification) inside inter-domain FIFOs, for the slip
	// breakdown of Figure 7. In the base machine the same accounting charges
	// the single-cycle pipe latches.
	FIFOTime simtime.Duration

	// Done is set when execution has finished and the completion has reached
	// the ROB; commit waits for it.
	Done bool

	// DCacheHit / L2Hit record the memory system's verdict for loads.
	DCacheHit bool
	L2Hit     bool

	// Arena bookkeeping (see the package comment): the number of pipeline
	// structures referencing this record, and the recycle generation.
	refs int32
	gen  uint32
}

// Generation returns the record's recycle count: it increments each time the
// instruction returns to its Pool, so a caller that cached the value at hand-
// off can detect a pointer held across a free.
func (in *Instr) Generation() uint32 { return in.gen }

// reset reinitializes every simulation field, preserving the arena
// bookkeeping. It is the single definition of "blank instruction" shared by
// NewInstr and Pool.Get.
func (in *Instr) reset(seq Seq, pc uint64, class Class) {
	*in = Instr{
		Seq:          seq,
		PC:           pc,
		Class:        class,
		PhysSrc:      [2]int{-1, -1},
		PhysDest:     -1,
		OldPhys:      -1,
		ROBIndex:     -1,
		FetchTime:    simtime.Never,
		DecodeTime:   simtime.Never,
		DispatchTime: simtime.Never,
		IssueTime:    simtime.Never,
		CompleteTime: simtime.Never,
		CommitTime:   simtime.Never,
		refs:         in.refs,
		gen:          in.gen,
	}
}

// NewInstr returns a blank instruction with timestamps cleared.
func NewInstr(seq Seq, pc uint64, class Class) *Instr {
	in := &Instr{}
	in.reset(seq, pc, class)
	return in
}

// Slip returns the fetch-to-commit latency of a committed instruction: the
// paper's "slip" metric (Figure 6). It panics if the instruction has not
// committed.
func (in *Instr) Slip() simtime.Duration {
	if in.CommitTime == simtime.Never || in.FetchTime == simtime.Never {
		panic(fmt.Sprintf("isa: Slip of uncommitted instruction %d", in.Seq))
	}
	return in.CommitTime - in.FetchTime
}

// String implements fmt.Stringer for debugging.
func (in *Instr) String() string {
	wp := ""
	if in.WrongPath {
		wp = " WP"
	}
	return fmt.Sprintf("#%d %s pc=%#x dst=%v src=[%v %v]%s",
		in.Seq, in.Class, in.PC, in.Dest, in.Src[0], in.Src[1], wp)
}
