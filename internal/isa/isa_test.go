package isa

import (
	"testing"
	"testing/quick"

	"galsim/internal/simtime"
)

func TestClassPartition(t *testing.T) {
	// Every class belongs to exactly one execution cluster.
	for c := Class(0); c < Class(NumClasses); c++ {
		n := 0
		if c.IsInt() {
			n++
		}
		if c.IsFP() {
			n++
		}
		if c.IsMem() {
			n++
		}
		if n != 1 {
			t.Errorf("class %v belongs to %d clusters, want 1", c, n)
		}
	}
}

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < Class(NumClasses); c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("class %d has empty or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if Class(200).String() != "class(200)" {
		t.Errorf("unknown class name = %q", Class(200).String())
	}
}

func TestExecLatencies(t *testing.T) {
	cases := map[Class]int{
		ClassNop:    1,
		ClassIntALU: 1,
		ClassBranch: 1,
		ClassIntMul: 3,
		ClassFPAdd:  2,
		ClassFPMul:  4,
		ClassFPDiv:  12,
		ClassLoad:   1,
		ClassStore:  1,
	}
	for c, want := range cases {
		if got := c.ExecLatency(); got != want {
			t.Errorf("%v latency = %d, want %d", c, got, want)
		}
	}
}

func TestRegs(t *testing.T) {
	if !ZeroReg.IsZero() || !ZeroReg.Valid() {
		t.Error("ZeroReg misclassified")
	}
	r := Reg{File: RegInt, Index: 5}
	if r.IsZero() || !r.Valid() {
		t.Error("r5 misclassified")
	}
	if (Reg{}).Valid() {
		t.Error("zero Reg should be invalid")
	}
	if r.String() != "r5" {
		t.Errorf("r5 String = %q", r.String())
	}
	if (Reg{File: RegFP, Index: 3}).String() != "f3" {
		t.Error("f3 String wrong")
	}
	if (Reg{}).String() != "-" {
		t.Error("none String wrong")
	}
}

func TestNewInstr(t *testing.T) {
	in := NewInstr(42, 0x1000, ClassLoad)
	if in.Seq != 42 || in.PC != 0x1000 || in.Class != ClassLoad {
		t.Error("identity fields wrong")
	}
	if in.PhysDest != -1 || in.PhysSrc[0] != -1 || in.PhysSrc[1] != -1 || in.OldPhys != -1 {
		t.Error("physical registers should start unmapped")
	}
	for name, ts := range map[string]simtime.Time{
		"fetch": in.FetchTime, "decode": in.DecodeTime, "dispatch": in.DispatchTime,
		"issue": in.IssueTime, "complete": in.CompleteTime, "commit": in.CommitTime,
	} {
		if ts != simtime.Never {
			t.Errorf("%s timestamp initialized to %v, want Never", name, ts)
		}
	}
}

func TestSlip(t *testing.T) {
	in := NewInstr(1, 0, ClassIntALU)
	in.FetchTime = 100
	in.CommitTime = 900
	if s := in.Slip(); s != 800 {
		t.Errorf("Slip = %v, want 800", s)
	}
}

func TestSlipPanicsUncommitted(t *testing.T) {
	in := NewInstr(1, 0, ClassIntALU)
	in.FetchTime = 100
	defer func() {
		if recover() == nil {
			t.Error("Slip of uncommitted instruction did not panic")
		}
	}()
	_ = in.Slip()
}

func TestSlipProperty(t *testing.T) {
	f := func(fetch uint32, extra uint16) bool {
		in := NewInstr(0, 0, ClassIntALU)
		in.FetchTime = simtime.Time(fetch)
		in.CommitTime = in.FetchTime + simtime.Time(extra)
		return in.Slip() == simtime.Duration(extra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
