package isa

import "fmt"

// poolChunk is the number of instruction records allocated per arena growth.
// One chunk is ~a quarter megabyte — large enough that chunk allocation is
// invisible in steady state, small enough that a short run stays cheap.
const poolChunk = 1024

// Pool is an instruction arena: a chunked backing store plus a free list of
// recycled records. See the package comment for the lifecycle. A Pool is not
// safe for concurrent use; each simulated core owns one, matching the
// simulator's single-threaded-per-core design.
type Pool struct {
	chunks []*[poolChunk]Instr
	used   int // records handed out of the newest chunk
	free   []*Instr

	gets     uint64
	reuses   uint64
	releases uint64
}

// NewPool returns an empty arena; the first Get allocates the first chunk.
func NewPool() *Pool { return &Pool{} }

// Get returns a blank instruction (identical to NewInstr) holding one
// reference, recycling a freed record when one is available.
func (p *Pool) Get(seq Seq, pc uint64, class Class) *Instr {
	var in *Instr
	if n := len(p.free); n > 0 {
		in = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
	} else {
		if len(p.chunks) == 0 || p.used == poolChunk {
			p.chunks = append(p.chunks, new([poolChunk]Instr))
			p.used = 0
		}
		in = &p.chunks[len(p.chunks)-1][p.used]
		p.used++
	}
	in.reset(seq, pc, class)
	in.refs = 1
	p.gets++
	return in
}

// Retain adds a reference: the caller is storing the record in a second
// structure (in the pipeline, the reorder buffer at rename).
func (p *Pool) Retain(in *Instr) { in.refs++ }

// Release drops one reference; the last release recycles the record onto the
// free list and bumps its generation. Releasing more times than the record
// was retained is a use-after-free in the making and panics immediately.
func (p *Pool) Release(in *Instr) {
	in.refs--
	if in.refs > 0 {
		return
	}
	if in.refs < 0 {
		panic(fmt.Sprintf("isa: over-released instruction %d (gen %d)", in.Seq, in.gen))
	}
	in.gen++
	p.releases++
	p.free = append(p.free, in)
}

// PoolStats snapshots the arena's counters.
type PoolStats struct {
	Gets     uint64 // records handed out
	Reuses   uint64 // hand-outs served from the free list
	Releases uint64 // records fully released back to the pool
	Chunks   int    // backing chunks allocated
	FreeLen  int    // records currently on the free list
}

// Live returns the number of records currently held by callers.
func (s PoolStats) Live() uint64 { return s.Gets - s.Releases }

// Stats returns a snapshot of the arena's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Gets:     p.gets,
		Reuses:   p.reuses,
		Releases: p.releases,
		Chunks:   len(p.chunks),
		FreeLen:  len(p.free),
	}
}
