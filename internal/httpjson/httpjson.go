// Package httpjson holds the JSON-over-HTTP plumbing shared by the galsimd
// service handlers and the cluster fleet endpoints: one implementation of
// response encoding, error bodies, and strict request decoding, so a fix
// to any of them cannot silently miss a package.
package httpjson

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Write encodes v as indented JSON with the given status.
func Write(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// Error writes the canonical {"error": "..."} body.
func Error(w http.ResponseWriter, status int, err error) {
	Write(w, status, map[string]string{"error": err.Error()})
}

// ErrorCode writes {"error": "...", "code": "..."}: the stable machine-
// readable code lets clients branch on the failure class without parsing
// prose (which is free to improve).
func ErrorCode(w http.ResponseWriter, status int, code string, err error) {
	Write(w, status, map[string]string{"error": err.Error(), "code": code})
}

// CodeBodyTooLarge is the ErrorCode value for oversized request bodies.
const CodeBodyTooLarge = "body_too_large"

// Decode strictly parses a request body of at most maxBytes into v,
// rejecting unknown fields. An oversized body is answered with 413 and a
// typed code (the client must shrink the request, not fix its syntax); any
// other failure writes a 400. Returns false when a response was written.
func Decode(w http.ResponseWriter, r *http.Request, v any, maxBytes int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			ErrorCode(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooBig.Limit))
			return false
		}
		Error(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}
