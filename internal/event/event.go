// Package event implements the general-purpose event-driven simulation
// engine described in §4.2 of Iyer & Marculescu (ISCA 2002).
//
// The engine is deliberately faithful to the paper's design: an event queue
// ordered by scheduled time, where each entry carries
//
//   - a function to call at each occurrence of the event,
//   - a time at which the event is scheduled to occur,
//   - a priority number to break ties between events scheduled for the same
//     time instant, and
//   - for periodic events, a time period of repetition (used to simulate
//     clocked systems).
//
// To simulate a clocked system one inserts one periodic event per clock
// domain; when the engine processes a periodic event it schedules the next
// instance, representing the next cycle of that clock (paper Figure 4).
//
// The queue is a hand-rolled 4-ary heap of value-typed entries rather than
// the paper's singly linked list — an implementation detail that changes
// complexity, not semantics. Entries carry their ordering key (time,
// priority, insertion sequence) inline, so heap comparisons touch no event
// object, and a periodic event is rescheduled in place: its head entry's
// time is bumped by the period and sifted down, with no pop/push pair and no
// allocation per clock edge. A monotonically increasing insertion sequence
// number provides a stable, deterministic order for events with equal time
// and equal priority.
//
// Cancellation is eager: Cancel removes the entry from the heap immediately,
// so the queue never holds dead entries and NextEventTime is a pure
// accessor.
package event

import (
	"fmt"

	"galsim/internal/simtime"
)

// Func is the action invoked when an event fires, at simulated time now.
// State an event needs travels in the closure; the engine stores no
// parameter values.
type Func func(now simtime.Time)

// Event is a scheduled occurrence inside the engine. Events are owned by the
// engine once scheduled; callers hold *Event only to cancel or inspect.
type Event struct {
	fn       Func
	when     simtime.Time
	priority int
	period   simtime.Duration // 0 for one-shot events
	seq      uint64           // insertion order, for deterministic ties
	index    int              // heap index, -1 when not queued
	canceled bool
	name     string
}

// When returns the next scheduled firing time.
func (e *Event) When() simtime.Time { return e.when }

// Period returns the repetition period (0 for one-shot events).
func (e *Event) Period() simtime.Duration { return e.period }

// Priority returns the tie-break priority (lower fires first).
func (e *Event) Priority() int { return e.priority }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// String implements fmt.Stringer for diagnostics.
func (e *Event) String() string {
	kind := "once"
	if e.period > 0 {
		kind = fmt.Sprintf("every %v", e.period)
	}
	return fmt.Sprintf("event %q at %v (prio %d, %s)", e.name, e.when, e.priority, kind)
}

// entry is one heap slot: the ordering key held by value (so comparisons are
// pointer-chase-free) plus the event it stands for. The key fields mirror
// ev.when / ev.priority / ev.seq; reschedules update both.
type entry struct {
	when     simtime.Time
	seq      uint64
	priority int
	ev       *Event
}

// before reports whether a fires before b: ordered by (time, priority,
// insertion sequence). Sequence numbers are unique, so the order is total
// and the execution schedule deterministic.
func (a *entry) before(b *entry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

// Engine is the event-driven simulation core: a clock-independent scheduler
// that drives any mixture of asynchronous and clocked components.
//
// Engine is not safe for concurrent use; the whole simulator is
// single-threaded by design so that results are exactly reproducible.
type Engine struct {
	heap      []entry // 4-ary min-heap
	now       simtime.Time
	seq       uint64
	processed uint64
	running   bool
	stopped   bool
}

// NewEngine returns an engine with an empty queue at time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time: the timestamp of the event being
// processed, or of the last processed event when the engine is idle.
func (g *Engine) Now() simtime.Time { return g.now }

// Len returns the number of pending events. Canceled events are removed
// eagerly and never counted.
func (g *Engine) Len() int { return len(g.heap) }

// Processed returns the total number of events executed so far.
func (g *Engine) Processed() uint64 { return g.processed }

// heap primitives — a 4-ary min-heap. The wider node trades deeper
// comparisons for fewer levels and fewer swaps; with entries held by value
// the four-child scan is contiguous memory, which is the layout the per-edge
// sift-down in step rewards.

const heapArity = 4

// siftUp moves the entry at index i toward the root until its parent fires
// no later than it does.
func (g *Engine) siftUp(i int) {
	h := g.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].ev.index = i
		i = parent
	}
	h[i] = e
	e.ev.index = i
}

// siftDown moves the entry at index i toward the leaves until no child fires
// before it.
func (g *Engine) siftDown(i int) {
	h := g.heap
	n := len(h)
	e := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := first
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[min]) {
				min = c
			}
		}
		if !h[min].before(&e) {
			break
		}
		h[i] = h[min]
		h[i].ev.index = i
		i = min
	}
	h[i] = e
	e.ev.index = i
}

// push inserts an entry and restores heap order.
func (g *Engine) push(e entry) {
	g.heap = append(g.heap, e)
	g.siftUp(len(g.heap) - 1)
}

// remove deletes the entry at index i and restores heap order.
func (g *Engine) remove(i int) {
	h := g.heap
	n := len(h) - 1
	h[i].ev.index = -1
	if i != n {
		h[i] = h[n]
		h[i].ev.index = i
	}
	h[n] = entry{}
	g.heap = h[:n]
	if i < n {
		g.siftDown(i)
		g.siftUp(i)
	}
}

// Schedule inserts a one-shot event. It panics if when precedes the current
// time, since time travel would silently corrupt causality.
func (g *Engine) Schedule(when simtime.Time, priority int, name string, fn Func) *Event {
	return g.schedule(when, priority, 0, name, fn)
}

// SchedulePeriodic inserts a periodic event: the paper's mechanism for
// simulating a clock domain. start is the first firing time (the clock's
// initial phase) and period the repetition interval; period must be > 0.
func (g *Engine) SchedulePeriodic(start simtime.Time, period simtime.Duration, priority int, name string, fn Func) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("event: periodic event %q requires positive period, got %v", name, period))
	}
	return g.schedule(start, priority, period, name, fn)
}

func (g *Engine) schedule(when simtime.Time, priority int, period simtime.Duration, name string, fn Func) *Event {
	if fn == nil {
		panic(fmt.Sprintf("event: nil function for event %q", name))
	}
	if when < g.now {
		panic(fmt.Sprintf("event: cannot schedule %q at %v, now is %v", name, when, g.now))
	}
	e := &Event{
		fn:       fn,
		when:     when,
		priority: priority,
		period:   period,
		seq:      g.seq,
		name:     name,
	}
	g.seq++
	g.push(entry{when: e.when, seq: e.seq, priority: e.priority, ev: e})
	return e
}

// Cancel removes an event from future processing, deleting its queue entry
// immediately. Canceling an already canceled or already fired one-shot event
// is a harmless no-op. A canceled periodic event never fires again.
func (g *Engine) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		g.remove(e.index)
	}
}

// SetPeriod changes the repetition period of a periodic event, taking effect
// at its next rescheduling. This is the hook dynamic frequency scaling uses
// to retune a clock domain mid-run.
func (g *Engine) SetPeriod(e *Event, period simtime.Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("event: SetPeriod(%q) requires positive period, got %v", e.name, period))
	}
	if e.period == 0 {
		panic(fmt.Sprintf("event: SetPeriod on one-shot event %q", e.name))
	}
	e.period = period
}

// Stop makes the engine return from Run/RunUntil after the current event
// completes. Pending events remain queued.
func (g *Engine) Stop() { g.stopped = true }

// step processes exactly one event. It reports false when no event at or
// before limit remains.
func (g *Engine) step(limit simtime.Time) bool {
	if len(g.heap) == 0 || g.heap[0].when > limit {
		return false
	}
	ev := g.heap[0].ev
	g.now = ev.when
	g.processed++
	// Reschedule periodic events (in place: bump the head's key and sift it
	// down) before invoking the handler, so the handler may Cancel or
	// SetPeriod its own event.
	if ev.period > 0 {
		ev.when += ev.period
		ev.seq = g.seq
		g.seq++
		g.heap[0].when = ev.when
		g.heap[0].seq = ev.seq
		g.siftDown(0)
	} else {
		g.remove(0)
	}
	ev.fn(g.now)
	return true
}

// Run processes events until the queue is empty or Stop is called. It is the
// paper's process_event_queue(). Returns the final simulated time.
func (g *Engine) Run() simtime.Time {
	return g.RunUntil(simtime.Never)
}

// RunUntil processes events with timestamps <= limit, stopping earlier if
// Stop is called or the queue drains. Time is left at the last processed
// event (or advanced to limit if nothing remained to process at or before
// it and limit is not Never).
func (g *Engine) RunUntil(limit simtime.Time) simtime.Time {
	if g.running {
		panic("event: RunUntil called re-entrantly from an event handler")
	}
	g.running = true
	g.stopped = false
	defer func() { g.running = false }()
	for !g.stopped {
		if !g.step(limit) {
			break
		}
	}
	if !g.stopped && limit != simtime.Never && limit > g.now {
		g.now = limit
	}
	return g.now
}

// NextEventTime returns the timestamp of the earliest pending event, or
// simtime.Never when the queue is empty. It is a pure accessor: cancellation
// removes entries eagerly, so the head of the heap is always live and
// peeking at it mutates nothing.
func (g *Engine) NextEventTime() simtime.Time {
	if len(g.heap) == 0 {
		return simtime.Never
	}
	return g.heap[0].when
}
