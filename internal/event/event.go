// Package event implements the general-purpose event-driven simulation
// engine described in §4.2 of Iyer & Marculescu (ISCA 2002).
//
// The engine is deliberately faithful to the paper's design: an event queue
// ordered by scheduled time, where each entry carries
//
//   - a function to call at each occurrence of the event,
//   - a parameter to call the function with,
//   - a time at which the event is scheduled to occur,
//   - a priority number to break ties between events scheduled for the same
//     time instant, and
//   - for periodic events, a time period of repetition (used to simulate
//     clocked systems).
//
// To simulate a clocked system one inserts one periodic event per clock
// domain; when the engine processes a periodic event it schedules the next
// instance, representing the next cycle of that clock (paper Figure 4).
//
// The queue is a binary heap rather than the paper's singly linked list —
// an implementation detail that changes complexity, not semantics. A
// monotonically increasing insertion sequence number provides a stable,
// deterministic order for events with equal time and equal priority.
package event

import (
	"container/heap"
	"fmt"

	"galsim/internal/simtime"
)

// Func is the action invoked when an event fires. now is the current
// simulated time and param is the value supplied when the event was
// scheduled.
type Func func(now simtime.Time, param any)

// Event is a scheduled occurrence inside the engine. Events are owned by the
// engine once scheduled; callers hold *Event only to cancel or inspect.
type Event struct {
	fn       Func
	param    any
	when     simtime.Time
	priority int
	period   simtime.Duration // 0 for one-shot events
	seq      uint64           // insertion order, for deterministic ties
	index    int              // heap index, -1 when not queued
	canceled bool
	name     string
}

// When returns the next scheduled firing time.
func (e *Event) When() simtime.Time { return e.when }

// Period returns the repetition period (0 for one-shot events).
func (e *Event) Period() simtime.Duration { return e.period }

// Priority returns the tie-break priority (lower fires first).
func (e *Event) Priority() int { return e.priority }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// String implements fmt.Stringer for diagnostics.
func (e *Event) String() string {
	kind := "once"
	if e.period > 0 {
		kind = fmt.Sprintf("every %v", e.period)
	}
	return fmt.Sprintf("event %q at %v (prio %d, %s)", e.name, e.when, e.priority, kind)
}

// eventHeap orders events by (time, priority, insertion sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.when != b.when {
		return a.when < b.when
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the event-driven simulation core: a clock-independent scheduler
// that drives any mixture of asynchronous and clocked components.
//
// Engine is not safe for concurrent use; the whole simulator is
// single-threaded by design so that results are exactly reproducible.
type Engine struct {
	queue     eventHeap
	now       simtime.Time
	seq       uint64
	processed uint64
	running   bool
	stopped   bool
}

// NewEngine returns an engine with an empty queue at time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time: the timestamp of the event being
// processed, or of the last processed event when the engine is idle.
func (g *Engine) Now() simtime.Time { return g.now }

// Len returns the number of pending events (canceled events may still be
// counted until they reach the head of the queue).
func (g *Engine) Len() int { return len(g.queue) }

// Processed returns the total number of events executed so far.
func (g *Engine) Processed() uint64 { return g.processed }

// Schedule inserts a one-shot event. It panics if when precedes the current
// time, since time travel would silently corrupt causality.
func (g *Engine) Schedule(when simtime.Time, priority int, name string, fn Func, param any) *Event {
	return g.schedule(when, priority, 0, name, fn, param)
}

// SchedulePeriodic inserts a periodic event: the paper's mechanism for
// simulating a clock domain. start is the first firing time (the clock's
// initial phase) and period the repetition interval; period must be > 0.
func (g *Engine) SchedulePeriodic(start simtime.Time, period simtime.Duration, priority int, name string, fn Func, param any) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("event: periodic event %q requires positive period, got %v", name, period))
	}
	return g.schedule(start, priority, period, name, fn, param)
}

func (g *Engine) schedule(when simtime.Time, priority int, period simtime.Duration, name string, fn Func, param any) *Event {
	if fn == nil {
		panic(fmt.Sprintf("event: nil function for event %q", name))
	}
	if when < g.now {
		panic(fmt.Sprintf("event: cannot schedule %q at %v, now is %v", name, when, g.now))
	}
	e := &Event{
		fn:       fn,
		param:    param,
		when:     when,
		priority: priority,
		period:   period,
		seq:      g.seq,
		name:     name,
	}
	g.seq++
	heap.Push(&g.queue, e)
	return e
}

// Cancel removes an event from future processing. Canceling an already
// canceled or already fired one-shot event is a harmless no-op. A canceled
// periodic event never fires again.
func (g *Engine) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&g.queue, e.index)
	}
}

// SetPeriod changes the repetition period of a periodic event, taking effect
// at its next rescheduling. This is the hook dynamic frequency scaling uses
// to retune a clock domain mid-run.
func (g *Engine) SetPeriod(e *Event, period simtime.Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("event: SetPeriod(%q) requires positive period, got %v", e.name, period))
	}
	if e.period == 0 {
		panic(fmt.Sprintf("event: SetPeriod on one-shot event %q", e.name))
	}
	e.period = period
}

// Stop makes the engine return from Run/RunUntil after the current event
// completes. Pending events remain queued.
func (g *Engine) Stop() { g.stopped = true }

// step processes exactly one event. It reports false when the queue is empty.
func (g *Engine) step(limit simtime.Time) bool {
	for len(g.queue) > 0 {
		head := g.queue[0]
		if head.when > limit {
			return false
		}
		heap.Pop(&g.queue)
		if head.canceled {
			continue
		}
		g.now = head.when
		g.processed++
		// Reschedule periodic events before invoking the handler so the
		// handler may Cancel or SetPeriod its own event.
		if head.period > 0 && !head.canceled {
			head.when += head.period
			head.seq = g.seq
			g.seq++
			heap.Push(&g.queue, head)
		}
		head.fn(g.now, head.param)
		return true
	}
	return false
}

// Run processes events until the queue is empty or Stop is called. It is the
// paper's process_event_queue(). Returns the final simulated time.
func (g *Engine) Run() simtime.Time {
	return g.RunUntil(simtime.Never)
}

// RunUntil processes events with timestamps <= limit, stopping earlier if
// Stop is called or the queue drains. Time is left at the last processed
// event (or advanced to limit if nothing remained to process at or before
// it and limit is not Never).
func (g *Engine) RunUntil(limit simtime.Time) simtime.Time {
	if g.running {
		panic("event: RunUntil called re-entrantly from an event handler")
	}
	g.running = true
	g.stopped = false
	defer func() { g.running = false }()
	for !g.stopped {
		if !g.step(limit) {
			break
		}
	}
	if !g.stopped && limit != simtime.Never && limit > g.now {
		g.now = limit
	}
	return g.now
}

// NextEventTime returns the timestamp of the earliest pending event, or
// simtime.Never when the queue is empty. Canceled events at the head are
// skipped over without being removed.
func (g *Engine) NextEventTime() simtime.Time {
	for len(g.queue) > 0 {
		if !g.queue[0].canceled {
			return g.queue[0].when
		}
		heap.Pop(&g.queue)
	}
	return simtime.Never
}
