package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"galsim/internal/simtime"
)

func TestOneShotOrdering(t *testing.T) {
	g := NewEngine()
	var got []int
	rec := func(id int) Func {
		return func(now simtime.Time) { got = append(got, id) }
	}
	g.Schedule(30, 0, "c", rec(3))
	g.Schedule(10, 0, "a", rec(1))
	g.Schedule(20, 0, "b", rec(2))
	g.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if g.Now() != 30 {
		t.Errorf("Now() = %v, want 30", g.Now())
	}
}

func TestPriorityTieBreak(t *testing.T) {
	g := NewEngine()
	var got []string
	g.Schedule(5, 2, "low", func(simtime.Time) { got = append(got, "low") })
	g.Schedule(5, 1, "high", func(simtime.Time) { got = append(got, "high") })
	g.Schedule(5, 3, "lowest", func(simtime.Time) { got = append(got, "lowest") })
	g.Run()
	if len(got) != 3 || got[0] != "high" || got[1] != "low" || got[2] != "lowest" {
		t.Errorf("priority order = %v", got)
	}
}

func TestEqualTimePriorityStableBySeq(t *testing.T) {
	g := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		g.Schedule(7, 0, "x", func(simtime.Time) { got = append(got, i) })
	}
	g.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("insertion order not preserved: %v", got)
		}
	}
}

func TestPeriodicEvent(t *testing.T) {
	g := NewEngine()
	var times []simtime.Time
	ev := g.SchedulePeriodic(500, 2000, 0, "clock", func(now simtime.Time) {
		times = append(times, now)
	})
	g.RunUntil(10_000)
	want := []simtime.Time{500, 2500, 4500, 6500, 8500}
	if len(times) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
	if ev.When() != 10_500 {
		t.Errorf("next firing %v, want 10500", ev.When())
	}
	g.Cancel(ev)
	g.RunUntil(100_000)
	if len(times) != len(want) {
		t.Error("canceled periodic event still fired")
	}
}

func TestThreeClockFigure4(t *testing.T) {
	// Reproduces Figure 4 of the paper: clocks with periods 2ns, 3ns, 2.5ns
	// and phases 0.5ns, 1.0ns, 0ns. Check the first several firing times.
	g := NewEngine()
	type tick struct {
		clock int
		at    simtime.Time
	}
	var ticks []tick
	ns := simtime.Nanosecond
	g.SchedulePeriodic(ns/2, 2*ns, 1, "clock1", func(now simtime.Time) {
		ticks = append(ticks, tick{1, now})
	})
	g.SchedulePeriodic(ns, 3*ns, 2, "clock2", func(now simtime.Time) {
		ticks = append(ticks, tick{2, now})
	})
	g.SchedulePeriodic(0, 5*ns/2, 3, "clock3", func(now simtime.Time) {
		ticks = append(ticks, tick{3, now})
	})
	g.RunUntil(6 * ns)
	want := []tick{
		{3, 0}, {1, ns / 2}, {2, ns}, {1, 5 * ns / 2}, {3, 5 * ns / 2},
		{2, 4 * ns}, {1, 9 * ns / 2}, {3, 5 * ns},
	}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks %v, want %d", len(ticks), ticks, len(want))
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d = %+v, want %+v", i, ticks[i], want[i])
		}
	}
}

func TestScheduleInPast(t *testing.T) {
	g := NewEngine()
	g.Schedule(100, 0, "a", func(simtime.Time) {})
	g.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	g.Schedule(50, 0, "past", func(simtime.Time) {})
}

func TestScheduleFromHandler(t *testing.T) {
	g := NewEngine()
	var fired []string
	g.Schedule(10, 0, "first", func(now simtime.Time) {
		fired = append(fired, "first")
		g.Schedule(now+5, 0, "chained", func(simtime.Time) {
			fired = append(fired, "chained")
		})
	})
	g.Run()
	if len(fired) != 2 || fired[1] != "chained" {
		t.Errorf("fired = %v", fired)
	}
	if g.Now() != 15 {
		t.Errorf("Now() = %v, want 15", g.Now())
	}
}

func TestZeroDelaySelfSchedule(t *testing.T) {
	// An event may schedule another event at the same timestamp; it must run
	// in the same pass, after the current one.
	g := NewEngine()
	n := 0
	var chain Func
	chain = func(now simtime.Time) {
		n++
		if n < 5 {
			g.Schedule(now, 0, "chain", chain)
		}
	}
	g.Schedule(0, 0, "chain", chain)
	g.Run()
	if n != 5 {
		t.Errorf("chain ran %d times, want 5", n)
	}
}

func TestStop(t *testing.T) {
	g := NewEngine()
	n := 0
	g.SchedulePeriodic(0, 10, 0, "clk", func(now simtime.Time) {
		n++
		if n == 3 {
			g.Stop()
		}
	})
	g.Run()
	if n != 3 {
		t.Errorf("ran %d ticks, want 3", n)
	}
	if g.Len() == 0 {
		t.Error("pending events dropped by Stop")
	}
}

func TestSetPeriod(t *testing.T) {
	g := NewEngine()
	var times []simtime.Time
	var ev *Event
	ev = g.SchedulePeriodic(0, 10, 0, "clk", func(now simtime.Time) {
		times = append(times, now)
		if now == 20 {
			g.SetPeriod(ev, 25) // frequency scaling kicks in after this tick
		}
	})
	g.RunUntil(100)
	// Note: the tick at 20 was rescheduled (with old period 10) before the
	// handler ran, so the new period takes effect from the tick at 30.
	want := []simtime.Time{0, 10, 20, 30, 55, 80}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", times, want)
		}
	}
}

func TestCancelOneShot(t *testing.T) {
	g := NewEngine()
	fired := false
	ev := g.Schedule(10, 0, "x", func(simtime.Time) { fired = true })
	g.Cancel(ev)
	g.Cancel(ev) // double cancel is a no-op
	g.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false")
	}
}

// TestCancelSelfFromHandler: a periodic event may cancel itself while its
// handler runs (the reschedule has already happened); it must never fire
// again and the queue entry must be gone.
func TestCancelSelfFromHandler(t *testing.T) {
	g := NewEngine()
	n := 0
	var ev *Event
	ev = g.SchedulePeriodic(0, 10, 0, "clk", func(simtime.Time) {
		n++
		if n == 2 {
			g.Cancel(ev)
		}
	})
	g.Run()
	if n != 2 {
		t.Errorf("self-canceled periodic fired %d times, want 2", n)
	}
	if g.Len() != 0 {
		t.Errorf("queue holds %d entries after self-cancel, want 0", g.Len())
	}
}

func TestRunUntilAdvancesTime(t *testing.T) {
	g := NewEngine()
	g.Schedule(10, 0, "x", func(simtime.Time) {})
	end := g.RunUntil(100)
	if end != 100 || g.Now() != 100 {
		t.Errorf("RunUntil = %v, Now = %v, want 100", end, g.Now())
	}
}

func TestRunUntilDoesNotOverrun(t *testing.T) {
	g := NewEngine()
	var times []simtime.Time
	g.SchedulePeriodic(0, 7, 0, "clk", func(now simtime.Time) {
		times = append(times, now)
	})
	g.RunUntil(20)
	if len(times) != 3 { // 0, 7, 14
		t.Fatalf("ticks %v", times)
	}
	g.RunUntil(30) // resumes: 21, 28
	if len(times) != 5 || times[3] != 21 || times[4] != 28 {
		t.Fatalf("resumed ticks %v", times)
	}
}

func TestClosureCapture(t *testing.T) {
	// Event state travels in the closure (the engine stores no parameters).
	g := NewEngine()
	got := ""
	payload := "hello"
	g.Schedule(1, 0, "p", func(simtime.Time) { got = payload })
	g.Run()
	if got != "hello" {
		t.Errorf("captured = %q", got)
	}
}

// TestNextEventTimePure pins the accessor contract: NextEventTime reports
// the earliest pending timestamp without mutating the queue — repeated
// calls return the same value, Len is untouched, and cancellation of the
// head (removed eagerly by Cancel itself) exposes the next live event.
func TestNextEventTimePure(t *testing.T) {
	g := NewEngine()
	if g.NextEventTime() != simtime.Never {
		t.Error("empty queue should report Never")
	}
	e1 := g.Schedule(50, 0, "a", func(simtime.Time) {})
	g.Schedule(70, 0, "b", func(simtime.Time) {})
	for i := 0; i < 3; i++ {
		if got := g.NextEventTime(); got != 50 {
			t.Fatalf("call %d: NextEventTime = %v, want 50", i, got)
		}
		if g.Len() != 2 {
			t.Fatalf("call %d mutated the queue: Len = %d, want 2", i, g.Len())
		}
	}
	g.Cancel(e1)
	if g.Len() != 1 {
		t.Errorf("Cancel left Len = %d, want 1 (eager removal)", g.Len())
	}
	if g.NextEventTime() != 70 {
		t.Errorf("after cancel NextEventTime = %v, want 70", g.NextEventTime())
	}
	if g.Len() != 1 {
		t.Errorf("NextEventTime mutated the queue after cancel: Len = %d", g.Len())
	}
	g.Run()
	if g.NextEventTime() != simtime.Never {
		t.Error("drained queue should report Never")
	}
}

// Property: for any set of (time, priority) pairs, execution order is the
// sorted order by (time, priority, insertion index).
func TestOrderingProperty(t *testing.T) {
	type key struct {
		when uint16
		prio uint8
		idx  int
	}
	f := func(whens []uint16, prios []uint8) bool {
		n := len(whens)
		if len(prios) < n {
			n = len(prios)
		}
		if n == 0 {
			return true
		}
		g := NewEngine()
		var got []key
		keys := make([]key, n)
		for i := 0; i < n; i++ {
			k := key{whens[i], prios[i], i}
			keys[i] = k
			g.Schedule(simtime.Time(k.when), int(k.prio), "k", func(simtime.Time) {
				got = append(got, k)
			})
		}
		g.Run()
		sort.SliceStable(keys, func(a, b int) bool {
			if keys[a].when != keys[b].when {
				return keys[a].when < keys[b].when
			}
			if keys[a].prio != keys[b].prio {
				return keys[a].prio < keys[b].prio
			}
			return keys[a].idx < keys[b].idx
		})
		if len(got) != n {
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a periodic event fires exactly floor((limit-start)/period)+1
// times within [start, limit].
func TestPeriodicCountProperty(t *testing.T) {
	f := func(startRaw, periodRaw uint16, limitRaw uint32) bool {
		start := simtime.Time(startRaw)
		period := simtime.Duration(periodRaw%5000) + 1
		limit := simtime.Time(limitRaw % 1_000_000)
		if limit < start {
			start, limit = limit, start
		}
		g := NewEngine()
		n := 0
		g.SchedulePeriodic(start, period, 0, "clk", func(simtime.Time) { n++ })
		g.RunUntil(limit)
		want := int((limit-start)/period) + 1
		return n == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestManyRandomEventsDrainInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewEngine()
	last := simtime.Time(-1)
	ok := true
	for i := 0; i < 5000; i++ {
		when := simtime.Time(rng.Intn(1_000_000))
		g.Schedule(when, rng.Intn(8), "r", func(now simtime.Time) {
			if now < last {
				ok = false
			}
			last = now
		})
	}
	g.Run()
	if !ok {
		t.Error("events executed out of time order")
	}
	if g.Processed() != 5000 {
		t.Errorf("processed %d, want 5000", g.Processed())
	}
}

// TestRandomCancellations interleaves scheduling and canceling under a
// deterministic RNG and checks only live events fire, in time order.
func TestRandomCancellations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewEngine()
	var evs []*Event
	fired := map[*Event]bool{}
	for i := 0; i < 2000; i++ {
		var ev *Event
		ev = g.Schedule(simtime.Time(rng.Intn(100_000)), rng.Intn(4), "r",
			func(simtime.Time) { fired[ev] = true })
		evs = append(evs, ev)
	}
	canceled := map[*Event]bool{}
	for i := 0; i < 800; i++ {
		ev := evs[rng.Intn(len(evs))]
		g.Cancel(ev)
		canceled[ev] = true
	}
	g.Run()
	for _, ev := range evs {
		if canceled[ev] && fired[ev] {
			t.Fatal("canceled event fired")
		}
		if !canceled[ev] && !fired[ev] {
			t.Fatal("live event never fired")
		}
	}
	if g.Len() != 0 {
		t.Errorf("queue not drained: %d left", g.Len())
	}
}
