package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"galsim/internal/admission"
	"galsim/internal/campaign"
	"galsim/internal/httpjson"
	"galsim/internal/pipeline"
)

// newAdmittedServer is newTestServer plus an admission controller with a
// fake clock: tenant "acme" (1 req/s, burst 2, 4 queued units) and tenant
// "open" (unlimited).
func newAdmittedServer(t *testing.T) (*Server, *admission.Controller, *httptest.Server, func(time.Duration)) {
	t.Helper()
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	ctrl := admission.NewController(admission.Config{Tenants: []admission.Tenant{
		{Name: "acme", Key: "key-acme", RatePerSec: 1, Burst: 2, MaxQueuedUnits: 4},
		{Name: "open", Key: "key-open"},
	}}, admission.Options{Now: clock})
	srv, ts := newTestServer(t)
	srv.Admission = ctrl
	advance := func(d time.Duration) { now = now.Add(d) }
	return srv, ctrl, ts, advance
}

func postKey(t *testing.T, url, key, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

const runBody = `{"benchmark":"gcc","instructions":5000}`

// TestAdmissionEndToEnd drives the gate through the real /run and /sweep
// handlers: 401 without a key, 200 with one, 429 + Retry-After past the
// burst, quota rejections for oversized sweeps, refill after the clock
// advances.
func TestAdmissionEndToEnd(t *testing.T) {
	_, _, ts, advance := newAdmittedServer(t)

	resp, body := postKey(t, ts.URL+"/run", "", runBody)
	if resp.StatusCode != http.StatusUnauthorized || !strings.Contains(string(body), admission.CodeUnauthorized) {
		t.Fatalf("no key: %d %s, want 401 %s", resp.StatusCode, body, admission.CodeUnauthorized)
	}
	resp, body = postKey(t, ts.URL+"/run", "key-bogus", runBody)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad key: %d %s, want 401", resp.StatusCode, body)
	}

	// Burst 2: two runs pass, the third throttles with a Retry-After hint.
	for i := 0; i < 2; i++ {
		if resp, body := postKey(t, ts.URL+"/run", "key-acme", runBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body = postKey(t, ts.URL+"/run", "key-acme", runBody)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), admission.CodeThrottled) {
		t.Fatalf("throttled run: %d %s, want 429 %s", resp.StatusCode, body, admission.CodeThrottled)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("throttled response missing Retry-After")
	}
	advance(time.Second) // refill one token
	if resp, body := postKey(t, ts.URL+"/run", "key-acme", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("run after refill: %d %s", resp.StatusCode, body)
	}

	// The unlimited tenant never throttles.
	for i := 0; i < 5; i++ {
		if resp, body := postKey(t, ts.URL+"/run", "key-open", runBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("open run %d: %d %s", i, resp.StatusCode, body)
		}
	}
}

func TestAdmissionSweepQuota(t *testing.T) {
	_, ctrl, ts, _ := newAdmittedServer(t)

	// 2 benchmarks × 3 machines = 6 units, over acme's 4-unit quota. The
	// request passes the rate check (burst 2) but fails the quota check.
	sweep := `{"benchmarks":["gcc","li"],"machines":["base","gals","base"],"instructions":5000}`
	resp, body := postKey(t, ts.URL+"/sweep", "key-acme", sweep)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), admission.CodeQuota) {
		t.Fatalf("over-quota sweep: %d %s, want 429 %s", resp.StatusCode, body, admission.CodeQuota)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota response missing Retry-After")
	}
	if q := ctrl.QueuedUnits("acme"); q != 0 {
		t.Errorf("rejected sweep left %d queued units charged", q)
	}

	// A 4-unit sweep fits exactly, and its units are released afterwards.
	resp, body = postKey(t, ts.URL+"/sweep", "key-acme",
		`{"benchmarks":["gcc","li"],"machines":["base","gals"],"instructions":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-quota sweep: %d %s", resp.StatusCode, body)
	}
	if q := ctrl.QueuedUnits("acme"); q != 0 {
		t.Errorf("finished sweep left %d queued units charged", q)
	}
}

// busyBackend refuses every batch the way a full coordinator queue does.
type busyBackend struct{}

func (busyBackend) RunAll(context.Context, []campaign.RunSpec) ([]pipeline.Stats, error) {
	return nil, campaign.ErrBackendBusy
}

func TestBackendBusyMapsTo429(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Backend = busyBackend{}
	for _, route := range []string{"/run", "/sweep"} {
		body := runBody
		if route == "/sweep" {
			body = `{"benchmarks":["gcc"],"instructions":5000}`
		}
		resp, b := post(t, ts.URL+route, body)
		if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(b), "backend_busy") {
			t.Errorf("%s: %d %s, want 429 backend_busy", route, resp.StatusCode, b)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: busy response missing Retry-After", route)
		}
	}
}

// priorityBackend records the priority each batch arrived with.
type priorityBackend struct {
	engine *campaign.Engine
	prios  []campaign.Priority
}

func (b *priorityBackend) RunAll(ctx context.Context, specs []campaign.RunSpec) ([]pipeline.Stats, error) {
	b.prios = append(b.prios, campaign.PriorityOf(ctx))
	return b.engine.RunAll(ctx, specs)
}

// TestRunCarriesInteractivePriority: /run marks its batch interactive so a
// priority-aware backend can jump it past queued bulk sweeps; /sweep stays
// bulk.
func TestRunCarriesInteractivePriority(t *testing.T) {
	srv, ts := newTestServer(t)
	backend := &priorityBackend{engine: campaign.NewEngine(1)}
	srv.Backend = backend
	if resp, body := post(t, ts.URL+"/run", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	if resp, body := post(t, ts.URL+"/sweep", `{"benchmarks":["gcc"],"instructions":5000}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	want := []campaign.Priority{campaign.PriorityInteractive, campaign.PriorityBulk}
	if len(backend.prios) != 2 || backend.prios[0] != want[0] || backend.prios[1] != want[1] {
		t.Errorf("backend priorities = %v, want %v", backend.prios, want)
	}
}

// TestServiceEndpointBodyLimits: every JSON POST route answers an oversized
// body with 413 and the typed body_too_large code.
func TestServiceEndpointBodyLimits(t *testing.T) {
	_, ts := newTestServer(t)
	// Valid JSON throughout so the decoder reads up to the cap instead of
	// bailing on a syntax error.
	big := `{"pad":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	for _, route := range []string{"/run", "/sweep", "/workloads", "/machines"} {
		t.Run(route, func(t *testing.T) {
			resp, body := post(t, ts.URL+route, big)
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Errorf("status = %d, want 413", resp.StatusCode)
			}
			if !strings.Contains(string(body), httpjson.CodeBodyTooLarge) {
				t.Errorf("body %s missing code %q", body, httpjson.CodeBodyTooLarge)
			}
		})
	}
}
