package service

import (
	"context"
	"fmt"
	"net/http"

	"galsim/internal/campaign"
	"galsim/internal/telemetry"
	"galsim/internal/timeline"
)

// maxTrackedSweeps bounds the progress tracker: once the table is full the
// oldest *settled* sweep is evicted first, so an unauthenticated client
// hammering /sweep cannot grow server memory through the tracker — and
// cannot push a still-running sweep's progress handle out of the API while
// its owner is polling it. Only when every tracked sweep is still running
// does the oldest running one go.
const maxTrackedSweeps = 256

// sweepStatus is one tracked sweep as served by GET /sweeps and
// GET /sweeps/{id}/progress. Progress is updated live while the sweep runs
// (one snapshot per finished unit), so a client can poll mid-flight.
type sweepStatus struct {
	ID    string `json:"id"`
	Units int    `json:"units"`
	// State is "running", "done" or "failed".
	State    string            `json:"state"`
	Progress campaign.Progress `json:"progress"`
	Error    string            `json:"error,omitempty"`
	// RequestID and TraceID echo the sweep's correlation identity (see
	// telemetry.Instrument): the IDs a client can grep fleet logs by and
	// fetch the distributed trace with (GET /sweeps/{id}/trace).
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
}

// trackSweep registers a new sweep and returns its status handle, capturing
// the request's correlation IDs from ctx. The returned pointer must only be
// mutated under sweepsMu.
func (s *Server) trackSweep(ctx context.Context, units int) *sweepStatus {
	s.sweepsMu.Lock()
	defer s.sweepsMu.Unlock()
	s.sweepNext++
	st := &sweepStatus{
		ID:        fmt.Sprintf("s%d", s.sweepNext),
		Units:     units,
		State:     "running",
		Progress:  campaign.Progress{Total: units},
		RequestID: telemetry.RequestID(ctx),
		TraceID:   telemetry.Trace(ctx).TraceID,
	}
	s.sweeps[st.ID] = st
	s.sweepIDs = append(s.sweepIDs, st.ID)
	if len(s.sweepIDs) > maxTrackedSweeps {
		s.evictSweepLocked()
	}
	return st
}

// evictSweepLocked drops one sweep from the tracker: the oldest settled
// ("done"/"failed") sweep if any, else the oldest running one (the table
// must stay bounded even when a client opens hundreds of concurrent
// sweeps). sweepsMu must be held.
func (s *Server) evictSweepLocked() {
	victim := -1
	for i, id := range s.sweepIDs {
		if s.sweeps[id].State != "running" {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
	}
	delete(s.sweeps, s.sweepIDs[victim])
	s.sweepIDs = append(s.sweepIDs[:victim], s.sweepIDs[victim+1:]...)
}

// sweepProgress records one progress snapshot for st.
func (s *Server) sweepProgress(st *sweepStatus, p campaign.Progress) {
	s.sweepsMu.Lock()
	st.Progress = p
	s.sweepsMu.Unlock()
}

// sweepDone marks st terminal. A sweep evicted from the tracker while still
// running settles harmlessly: the handle stays valid, it is just no longer
// reachable through the API.
func (s *Server) sweepDone(st *sweepStatus, err error) {
	s.sweepsMu.Lock()
	if err != nil {
		st.State = "failed"
		st.Error = err.Error()
	} else {
		st.State = "done"
	}
	s.sweepsMu.Unlock()
}

// SweepsResponse is the GET /sweeps payload: tracked sweeps in submission
// order, oldest first.
type SweepsResponse struct {
	Sweeps []sweepStatus `json:"sweeps"`
}

func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	s.sweepsMu.Lock()
	resp := SweepsResponse{Sweeps: make([]sweepStatus, 0, len(s.sweepIDs))}
	for _, id := range s.sweepIDs {
		resp.Sweeps = append(resp.Sweeps, *s.sweeps[id])
	}
	s.sweepsMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSweepProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sweepsMu.Lock()
	st, ok := s.sweeps[id]
	var snapshot sweepStatus
	if ok {
		snapshot = *st
	}
	s.sweepsMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown sweep %q (the tracker keeps the most recent %d sweeps)", id, maxTrackedSweeps))
		return
	}
	writeJSON(w, http.StatusOK, snapshot)
}

// handleSweepTrace serves one sweep's distributed trace as Chrome
// trace-event JSON: the coordinator's campaign/lease/merge spans plus every
// worker's execute/simulate spans and in-sim windows, all sharing the
// sweep's trace ID. Requires a span collector (fleet front ends install
// one) and a sweep that ran with tracing on.
func (s *Server) handleSweepTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sweepsMu.Lock()
	st, ok := s.sweeps[id]
	var traceID string
	if ok {
		traceID = st.TraceID
	}
	s.sweepsMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown sweep %q (the tracker keeps the most recent %d sweeps)", id, maxTrackedSweeps))
		return
	}
	if s.Spans == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("span tracing is not enabled on this server (run a fleet front end, e.g. galsim-fleet)"))
		return
	}
	if traceID == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("sweep %q has no trace ID", id))
		return
	}
	spans := s.Spans.ForTrace(traceID)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no spans recorded for sweep %q (trace %s); the collector keeps a bounded window", id, traceID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := timeline.WriteSpansTrace(w, spans); err != nil {
		// Headers are gone; all we can do is cut the stream.
		return
	}
}
