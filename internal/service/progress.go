package service

import (
	"fmt"
	"net/http"

	"galsim/internal/campaign"
)

// maxTrackedSweeps bounds the progress tracker: the oldest sweep is evicted
// once the table is full, so an unauthenticated client hammering /sweep
// cannot grow server memory through the tracker.
const maxTrackedSweeps = 256

// sweepStatus is one tracked sweep as served by GET /sweeps and
// GET /sweeps/{id}/progress. Progress is updated live while the sweep runs
// (one snapshot per finished unit), so a client can poll mid-flight.
type sweepStatus struct {
	ID    string `json:"id"`
	Units int    `json:"units"`
	// State is "running", "done" or "failed".
	State    string            `json:"state"`
	Progress campaign.Progress `json:"progress"`
	Error    string            `json:"error,omitempty"`
}

// trackSweep registers a new sweep and returns its status handle. The
// returned pointer must only be mutated under sweepsMu.
func (s *Server) trackSweep(units int) *sweepStatus {
	s.sweepsMu.Lock()
	defer s.sweepsMu.Unlock()
	s.sweepNext++
	st := &sweepStatus{
		ID:       fmt.Sprintf("s%d", s.sweepNext),
		Units:    units,
		State:    "running",
		Progress: campaign.Progress{Total: units},
	}
	s.sweeps[st.ID] = st
	s.sweepIDs = append(s.sweepIDs, st.ID)
	if len(s.sweepIDs) > maxTrackedSweeps {
		delete(s.sweeps, s.sweepIDs[0])
		s.sweepIDs = s.sweepIDs[1:]
	}
	return st
}

// sweepProgress records one progress snapshot for st.
func (s *Server) sweepProgress(st *sweepStatus, p campaign.Progress) {
	s.sweepsMu.Lock()
	st.Progress = p
	s.sweepsMu.Unlock()
}

// sweepDone marks st terminal. A sweep evicted from the tracker while still
// running settles harmlessly: the handle stays valid, it is just no longer
// reachable through the API.
func (s *Server) sweepDone(st *sweepStatus, err error) {
	s.sweepsMu.Lock()
	if err != nil {
		st.State = "failed"
		st.Error = err.Error()
	} else {
		st.State = "done"
	}
	s.sweepsMu.Unlock()
}

// SweepsResponse is the GET /sweeps payload: tracked sweeps in submission
// order, oldest first.
type SweepsResponse struct {
	Sweeps []sweepStatus `json:"sweeps"`
}

func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	s.sweepsMu.Lock()
	resp := SweepsResponse{Sweeps: make([]sweepStatus, 0, len(s.sweepIDs))}
	for _, id := range s.sweepIDs {
		resp.Sweeps = append(resp.Sweeps, *s.sweeps[id])
	}
	s.sweepsMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSweepProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sweepsMu.Lock()
	st, ok := s.sweeps[id]
	var snapshot sweepStatus
	if ok {
		snapshot = *st
	}
	s.sweepsMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown sweep %q (the tracker keeps the most recent %d sweeps)", id, maxTrackedSweeps))
		return
	}
	writeJSON(w, http.StatusOK, snapshot)
}
